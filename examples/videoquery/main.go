// Video indexing & retrieval: the paper's §II-E storing-metadata stage.
// A dinner is analysed once into a persistent metadata repository; the
// repository is then closed, reopened (exercising crash-safe recovery),
// and queried with the semantic vocabulary the paper promises — scenes
// by participant, emotion, time window and tags — without touching the
// video again.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/dievent"
)

func main() {
	dir, err := os.MkdirTemp("", "dievent-repo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Pass 1: ingest. Analyse a dinner and persist every extracted
	// record.
	sc, err := dievent.DinnerScenario(dievent.DinnerOptions{
		Persons: 5, Frames: 2500, Seed: 4242, Enjoyment: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := dievent.New(dievent.Config{
		Scenario: sc,
		Mode:     dievent.GeometricVision,
		Gaze:     dievent.GazeOptions{Seed: 4242},
		RepoDir:  dir,
		// Small segments so a single dinner exercises the segmented
		// store: the active segment seals and rolls as records land.
		RepoOptions: []dievent.RepoOption{dievent.WithSegmentSize(128 << 10)},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}
	ingested := res.Repo.Len()
	if err := res.Repo.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d metadata records into %s\n\n", ingested, dir)

	// Pass 2: retrieval. Reopen the repository cold — recovery replays
	// the sealed segments in parallel — and answer the sociologist's
	// questions.
	repo, err := dievent.OpenRepository(dir, dievent.WithSegmentSize(128<<10))
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	st, err := repo.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened repository: %d records recovered from %d segment(s), %d bytes\n",
		st.Records, len(st.Segments), st.DiskBytes)
	// Background-merge the sealed segments; appends and open cursors
	// would keep running while this rewrites.
	if err := repo.Compact(); err != nil {
		log.Fatal(err)
	}
	if st, err = repo.Stats(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted to %d segment(s), %d bytes\n\n", len(st.Segments), st.DiskBytes)

	queries := []struct {
		question string
		q        string
	}{
		{"When was P2 visibly happy?",
			"kind = observation AND label = 'happy' AND person = 2"},
		{"Any eye contact in the first 30 seconds?",
			"label = 'eye-contact' AND frame < 750"},
		{"High-confidence negative moments (disgust)?",
			"label = 'disgust' AND value > 0.85"},
		{"Which alerts should the kitchen see?",
			"label = 'alert-negative-spike'"},
		{"Who are the registered participants?",
			"kind = context AND label = 'participant'"},
	}
	for _, qq := range queries {
		// Stream through the planned engine: count everything, but keep
		// only the first row and only the fields the answer needs.
		n, err := repo.Count(qq.q)
		if err != nil {
			log.Fatal(err)
		}
		it, err := repo.QueryIter(qq.q, dievent.QueryOpts{
			Limit:   1,
			Order:   dievent.OrderFrame,
			Project: []string{"id", "kind", "frame", "person", "other", "label", "value"},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\n   %s\n   → %d rows", qq.question, qq.q, n)
		if rec, ok := it.Next(); ok {
			fmt.Printf("; first: %v", rec)
		}
		if err := it.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Println()
	}

	// EXPLAIN shows how the planner answers a selective question: index
	// intersection plus a frame-range filter instead of a full scan.
	plan, err := repo.Explain("label = 'happy' AND person = 2 AND frame < 750",
		dievent.QueryOpts{Limit: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("How a selective query executes:")
	fmt.Print(plan)
}
