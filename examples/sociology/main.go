// Sociology study: the paper's second audience. A sociologist analyses
// the prototype meeting's social structure from gaze alone: who holds
// the floor (dominance via look-at column sums, §III), which pairs seek
// each other's eyes (Argyle & Dean's eye-contact functions, §II-D.1),
// and where the interesting moments are (highlights), without watching
// 40 seconds of four-camera footage.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dievent"
)

func main() {
	pipe, err := dievent.New(dievent.Config{
		Scenario: dievent.PrototypeScenario(),
		Mode:     dievent.GeometricVision,
		Gaze:     dievent.GazeOptions{Seed: 20180416},
		// Plug the attention-span analyzer into the stage graph: a
		// derived layer of per-person gaze fixations (§5 below).
		Stages: []string{dievent.StageAttention},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}
	defer res.Repo.Close()

	fmt.Println("DiEvent sociology report — prototype meeting (4 participants, 40 s)")
	fmt.Println("====================================================================")

	// 1. Attention structure: the Fig. 9 summary matrix.
	sum := res.Layers.Summary
	fmt.Println("\nwho looked at whom (frames):")
	fmt.Print(sum.String())

	// 2. Dominance: the paper reads the maximal column sum as meeting
	//    dominance.
	cols := sum.ColumnSums()
	fmt.Println("\nreceived attention per participant:")
	for j, id := range sum.IDs {
		p, _ := res.Context.Participant(id)
		share := float64(cols[j]) / float64(3*res.FramesAnalyzed) * 100
		fmt.Printf("  %-4s (%-6s) %5d frames  (%.0f%% of possible gaze)\n",
			p.Name, p.Color, cols[j], share)
	}
	dom, _ := res.Context.Participant(sum.Dominant())
	fmt.Printf("dominant participant: %s (%s)\n", dom.Name, dom.Color)

	// 3. Eye-contact episodes: Argyle & Dean — more contact, more
	//    engagement between the pair.
	fmt.Println("\neye-contact episodes (≥ 0.5 s):")
	for _, e := range res.Layers.Events {
		a, _ := res.Context.Participant(e.A)
		b, _ := res.Context.Participant(e.B)
		fmt.Printf("  %s ↔ %s  frames [%d,%d)  ≈ %.1f s\n",
			a.Name, b.Name, e.Start, e.End, float64(e.Frames())/25)
	}

	// 4. Where to look first: highlight windows from the fused layers.
	fmt.Println("\nsuggested review order (highlights):")
	for i, h := range res.Summary.Highlights {
		fmt.Printf("  %d. t=%v..%v  evidence: %v\n", i+1,
			(time.Duration(h.Start) * 40 * time.Millisecond).Round(time.Millisecond),
			(time.Duration(h.End) * 40 * time.Millisecond).Round(time.Millisecond),
			h.Reasons)
	}

	// 5. Attention spans: how long each participant holds a fixation —
	//    short spans read as distraction, long ones as engagement. The
	//    layer comes from the pluggable attention-span stage.
	fmt.Println("\nattention spans (gaze fixations ≥ 0.5 s):")
	for _, st := range res.Attention.Stats {
		if st.Spans == 0 {
			continue
		}
		p, _ := res.Context.Participant(st.Person)
		fmt.Printf("  %-4s %2d fixations, mean %4.1f s, longest %4.1f s\n",
			p.Name, st.Spans, st.MeanFrames/25, float64(st.LongestFrames)/25)
	}

	// 6. Floor-holding: who spoke, inferred purely from received gaze.
	floor := map[int]int{}
	for _, sp := range res.Layers.InferredSpeakers {
		if sp >= 0 {
			floor[sp]++
		}
	}
	fmt.Println("\ninferred floor time (from gaze alone):")
	for _, id := range sum.IDs {
		p, _ := res.Context.Participant(id)
		fmt.Printf("  %-4s %5.1f s\n", p.Name, float64(floor[id])/25)
	}

	// 7. Drill-down via the metadata repository: all mutual-gaze events
	//    involving the dominant participant in the first half.
	q := fmt.Sprintf("label = 'eye-contact' AND person = %d AND frame < %d",
		sum.Dominant()+1, res.FramesAnalyzed/2)
	recs, err := res.Repo.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %q → %d events\n", q, len(recs))
}
