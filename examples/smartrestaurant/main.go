// Smart restaurant: the paper's motivating application. Two tables are
// served different recipes; DiEvent quantifies customer satisfaction
// indirectly — no questionnaires — by analysing facial expressions over
// each dinner and fusing them into the overall-happiness score (Fig. 5).
// The restaurant compares recipes by the resulting satisfaction numbers
// and watches for negative-affect alerts in (simulated) real time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dievent"
)

// table describes one party and the recipe they were served. Enjoyment
// is the hidden ground truth the pipeline must recover from expressions.
type table struct {
	name      string
	recipe    string
	persons   int
	enjoyment float64
}

func main() {
	tables := []table{
		{name: "table 3", recipe: "chef's new tasting menu", persons: 4, enjoyment: 0.85},
		{name: "table 7", recipe: "reheated fallback dish", persons: 4, enjoyment: 0.15},
	}

	fmt.Println("DiEvent smart-restaurant service report")
	fmt.Println("=======================================")
	type outcome struct {
		t      table
		score  float64
		oh     float64
		alerts int
	}
	var outcomes []outcome

	for _, t := range tables {
		sc, err := dievent.DinnerScenario(dievent.DinnerOptions{
			Persons:   t.persons,
			Frames:    2000, // 80 s of service at 25 fps
			Seed:      777,
			Enjoyment: t.enjoyment,
		})
		if err != nil {
			log.Fatal(err)
		}
		pipe, err := dievent.New(dievent.Config{
			Scenario: sc,
			Mode:     dievent.GeometricVision,
			Gaze:     dievent.GazeOptions{Seed: 777},
			// Keep the run manifest and raw gaze layer so tonight's
			// footage can be re-scored without re-analysing it (see the
			// recalibration pass below).
			Incremental: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.Run()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s — %s (%d guests)\n", t.name, t.recipe, t.persons)
		fmt.Printf("  mean overall happiness: %.1f%%\n", res.Layers.MeanOH())
		fmt.Printf("  satisfaction score:     %.1f / 100\n", res.Layers.SatisfactionScore())

		negatives := 0
		for _, a := range res.Layers.Alerts {
			if a.Kind.String() == "negative-spike" {
				negatives++
				fmt.Printf("  ⚠ kitchen alert at %v: %s\n",
					a.Time.Round(time.Second), a.Detail)
			}
		}
		outcomes = append(outcomes, outcome{
			t: t, score: res.Layers.SatisfactionScore(),
			oh: res.Layers.MeanOH(), alerts: negatives,
		})

		// Nightly recalibration: the kitchen swaps in a re-tuned
		// emotion model and re-scores the table. RunIncremental diffs
		// the new configuration against the run's manifest, replays
		// the (expensive) gaze chain from the stored records, and
		// re-derives only the emotion layer and everything downstream.
		tuned, err := dievent.New(dievent.Config{
			Scenario:     sc,
			Mode:         dievent.GeometricVision,
			Gaze:         dievent.GazeOptions{Seed: 777},
			EmotionNoise: 0.12, // recalibrated classifier error profile
			Incremental:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rescored, err := tuned.RunIncremental(res.Repo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  recalibrated score:     %.1f / 100 (re-ran %v; reused %v)\n",
			rescored.Layers.SatisfactionScore(), rescored.StaleStages, rescored.ReusedStages)
		rescored.Repo.Close()
		res.Repo.Close()
	}

	// Recipe comparison: the indirect measurement the paper's intro
	// promises ("cooking recipe evaluation ... by analysis customers'
	// facial expression").
	fmt.Println("\nrecipe comparison")
	fmt.Println("-----------------")
	best := outcomes[0]
	for _, o := range outcomes {
		fmt.Printf("  %-28s satisfaction %.1f  (OH %.1f%%, %d alerts)\n",
			o.t.recipe, o.score, o.oh, o.alerts)
		if o.score > best.score {
			best = o
		}
	}
	fmt.Printf("winner: %s\n", best.t.recipe)
}
