// Quickstart: simulate the paper's four-person prototype meeting, run
// the full DiEvent pipeline, and print the analysis digest plus one
// semantic metadata query — the minimal end-to-end tour of the public
// API.
package main

import (
	"fmt"
	"log"

	"repro/dievent"
)

func main() {
	// 1. Configure the pipeline over the paper's §III prototype: four
	//    participants, four corner cameras, 610 frames at 25 fps.
	//    The pipeline is a registry-driven stage graph — add analyzers
	//    with Config.Stages (e.g. dievent.StageAttention) and keep a
	//    run manifest for incremental re-runs with Config.Incremental
	//    (see the sociology and smartrestaurant examples).
	pipe, err := dievent.New(dievent.Config{
		Scenario: dievent.PrototypeScenario(),
		Mode:     dievent.GeometricVision,
		Gaze:     dievent.GazeOptions{Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run acquisition → feature extraction → multilayer analysis →
	//    metadata storage → summarisation.
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}
	defer res.Repo.Close()

	// 3. The digest: look-at summary (paper Fig. 9), dominance, overall
	//    happiness, eye-contact events.
	fmt.Println(res.Summary.Digest)

	// 4. The metadata repository answers semantic queries (paper §II-E):
	//    when was the dominant participant in eye contact?
	recs, err := res.Repo.Query("label = 'eye-contact' AND person = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eye-contact events involving P1:\n")
	for _, r := range recs {
		fmt.Printf("  %v\n", r)
	}
}
