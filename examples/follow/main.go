// Online streaming extraction & live subscriptions (DESIGN.md §10): the
// pipeline runs as an unbounded stream — the scripted dinner cycles past
// its end with continuing frame indexes — while windowed stages decode
// dining phases, roll attention spans and publish live summaries
// mid-stream. Followers subscribe to the very repository the run is
// still writing: Follow yields matching history first, then new appends
// as they happen, exactly once and in order. The whole ingest is
// bounded-memory — per-frame artifacts live in a ring sized to the
// widest stage window, and derived state drains at emit cadences — so
// the same program could run forever.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/dievent"
)

func main() {
	sc, err := dievent.DinnerScenario(dievent.DinnerOptions{
		Persons: 4, Frames: 1200, Seed: 7, Enjoyment: 0.55,
	})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := dievent.New(dievent.Config{
		Scenario: sc,
		Mode:     dievent.GeometricVision,
		Gaze:     dievent.GazeOptions{Seed: 7},
		// The online stages: sliding-window HMM phase decoding, the
		// rolling happiness/dominance digest, attention spans.
		Stages: []string{
			dievent.StageDiningPhase,
			dievent.StageLiveSummary,
			dievent.StageAttention,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The stream ingests into a caller-owned repository so followers can
	// Tail it concurrently, in-process.
	repo := dievent.NewMemRepository()
	defer repo.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *dievent.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = pipe.RunStream(dievent.StreamOptions{
			Ctx:    ctx,
			Frames: 4800, Cycle: true, // 4× the script: an unbounded-style stream
			Live: true, Bounded: true, // emit mid-stream, hold memory flat
			FlushEvery: 32, // bound the append→follower latency
			Repo:       repo,
		})
	}()

	// Two independent followers over the same live repository. The
	// FOLLOW suffix is the dieventql surface for the same subscription.
	var wg sync.WaitGroup
	followers := []struct{ name, query string }{
		{"phases", "label = 'live-phase' FOLLOW"},
		{"alerts", "label = 'alert-negative-spike' OR label = 'alert-emotion-change' FOLLOW"},
	}
	for _, f := range followers {
		// The live feed carries every append (filtering is consumer-side)
		// and never blocks the ingest: a follower that falls more than
		// Buffer records behind is dropped with ErrLagging. This ingest
		// runs at full synthetic speed — far faster than real-time video —
		// so size the buffer for the whole burst.
		cur, err := dievent.Follow(repo, f.query, dievent.TailOpts{Buffer: 1 << 15})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(name string, cur *dievent.TailCursor) {
			defer wg.Done()
			defer cur.Close()
			n := 0
			for {
				rec, err := cur.Next(ctx)
				if err != nil {
					fmt.Printf("[%s] feed closed after %d rows (%v)\n", name, n, err)
					return
				}
				n++
				if n <= 5 || n%25 == 0 {
					fmt.Printf("[%s] %v\n", name, rec)
				}
			}
		}(f.name, cur)
	}

	// Let the stream run to completion, then give the followers a moment
	// to drain their queued tails before cancelling their contexts.
	<-done
	if runErr != nil {
		log.Fatal(runErr)
	}
	time.Sleep(100 * time.Millisecond)
	cancel()
	wg.Wait()

	fmt.Printf("\nstreamed %d frames into %d records, memory bounded\n",
		res.FramesAnalyzed, repo.Len())
	for _, sp := range res.Phases {
		fmt.Printf("  phase %-10s frames [%d, %d)\n", sp.Phase, sp.Start, sp.End)
	}
	fmt.Printf("satisfaction score: %.1f (aggregates exact despite trimmed series)\n",
		res.Layers.SatisfactionScore())
}
