// Package client is the Go client for dieventd (DESIGN.md §11): typed
// ingest/query/follow calls over the HTTP API with context deadlines,
// exponential backoff with full jitter honouring Retry-After, and a
// strict idempotency discipline — explicit server refusals (429/503)
// are retried for every operation because the server rejected the
// request before applying it, while ambiguous transport failures are
// retried only on safe (read) operations, never on appends.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/metadata"
	"repro/internal/service"
)

// Record is the client-side record type (the repository's own).
type Record = metadata.Record

// Sentinel errors mapped from terminal stream envelopes and refusal
// statuses once retries are exhausted.
var (
	// ErrLagging ends a Follow stream whose server-side queue (or
	// spill quota) overflowed; re-subscribe to resume from history.
	ErrLagging = metadata.ErrLagging
	// ErrDraining reports the server is shutting down; retry against
	// another instance or after the restart.
	ErrDraining = errors.New("client: server draining")
	// ErrOverloaded reports admission/quota refusals that persisted
	// through every retry.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrDegraded reports the tenant is read-only degraded (disk
	// quota or ENOSPC); appends will fail until an operator intervenes.
	ErrDegraded = errors.New("client: tenant degraded read-only")
	// ErrEnded marks the clean end of a follow against a read-only
	// repository (no live phase).
	ErrEnded = errors.New("client: follow ended")
)

// Config tunes a Client.
type Config struct {
	// Base is the server's base URL (e.g. "http://127.0.0.1:8080").
	Base string
	// Tenant is the tenant every call addresses.
	Tenant string
	// HTTP is the transport (default: a client with sane timeouts for
	// unary calls; streaming calls strip the overall timeout).
	HTTP *http.Client
	// MaxRetries bounds retry attempts after the first try (default 4;
	// negative = no retries).
	MaxRetries int
	// Backoff is the base backoff step (default 100ms). Attempt n
	// sleeps Retry-After + rand(0, Backoff·2ⁿ), capped at MaxBackoff
	// (default 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// Client calls one tenant's dieventd API. Safe for concurrent use.
type Client struct {
	cfg Config
}

// New builds a Client with defaults applied.
func New(cfg Config) (*Client, error) {
	if cfg.Base == "" {
		return nil, errors.New("client: Config.Base is required")
	}
	if cfg.Tenant == "" {
		return nil, errors.New("client: Config.Tenant is required")
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Client{cfg: cfg}, nil
}

// retryable classifies a response status: explicit refusals the server
// issued before doing any work.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoff sleeps before retry attempt (1-based), honouring the
// server's Retry-After as a floor and adding full jitter on top of the
// exponential step. Returns ctx.Err if the deadline lands first.
func (c *Client) backoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	step := c.cfg.Backoff << (attempt - 1)
	if step > c.cfg.MaxBackoff {
		step = c.cfg.MaxBackoff
	}
	sleep := retryAfter + rand.N(step)
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads the Retry-After header (seconds form).
func parseRetryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// do runs one request with the retry discipline. body is re-sent from
// the byte slice on each attempt. retryTransport permits retrying
// ambiguous transport errors (safe operations only — for appends the
// request may have been applied, so ambiguity is surfaced, not
// retried). The caller owns the returned response body.
func (c *Client) do(ctx context.Context, method, u string, body []byte, retryTransport bool) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("client: building request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.cfg.HTTP.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, u, err)
			if !retryTransport {
				return nil, lastErr
			}
		case retryable(resp.StatusCode):
			ra := parseRetryAfter(resp)
			msg := readError(resp)
			lastErr = fmt.Errorf("client: %s (HTTP %d): %w", msg, resp.StatusCode, refusalErr(resp.StatusCode))
			if attempt >= c.cfg.MaxRetries {
				return nil, lastErr
			}
			if err := c.backoff(ctx, attempt+1, ra); err != nil {
				return nil, err
			}
			continue
		default:
			return resp, nil
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, lastErr
		}
		if err := c.backoff(ctx, attempt+1, 0); err != nil {
			return nil, err
		}
	}
}

// refusalErr maps a refusal status to its sentinel.
func refusalErr(status int) error {
	if status == http.StatusServiceUnavailable {
		return ErrDraining
	}
	return ErrOverloaded
}

// readError extracts the JSON error body (best effort) and closes it.
func readError(resp *http.Response) string {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return resp.Status
}

// url builds a tenant endpoint with query values.
func (c *Client) url(endpoint string, vals url.Values) string {
	u := fmt.Sprintf("%s/v1/tenants/%s/%s", c.cfg.Base, url.PathEscape(c.cfg.Tenant), endpoint)
	if len(vals) > 0 {
		u += "?" + vals.Encode()
	}
	return u
}

// Append ingests a batch of records. Explicit refusals (429 quota, 503
// draining) are retried with backoff — the server refused before
// applying, so the retry cannot double-append. Transport errors are
// NOT retried (the batch may have landed); callers needing exactly-once
// must deduplicate at a higher layer.
func (c *Client) Append(ctx context.Context, recs []Record) error {
	wires := make([]service.WireRecord, len(recs))
	for i, rec := range recs {
		wires[i] = service.ToWire(rec)
	}
	body, err := json.Marshal(wires)
	if err != nil {
		return fmt.Errorf("client: encoding batch: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, c.url("records", nil), body, false)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		io.Copy(io.Discard, resp.Body)
		return nil
	case http.StatusInsufficientStorage:
		return fmt.Errorf("client: %s: %w", readErrorKeepOpen(resp), ErrDegraded)
	default:
		return fmt.Errorf("client: append: %s (HTTP %d)", readErrorKeepOpen(resp), resp.StatusCode)
	}
}

// readErrorKeepOpen reads the error body without double-closing (the
// caller's defer owns the close).
func readErrorKeepOpen(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return resp.Status
}

// QueryOpts tunes a one-shot query.
type QueryOpts struct {
	// Limit caps results (0 = unlimited).
	Limit int
	// Order is "frame" (default) or "id".
	Order string
	// Timeout is a server-side deadline propagated into the executor
	// (0 = request context only).
	Timeout time.Duration
}

// Query runs a one-shot query and returns every match. Safe operation:
// transport errors retry too.
func (c *Client) Query(ctx context.Context, q string, opts QueryOpts) ([]Record, error) {
	vals := url.Values{"q": {q}}
	if opts.Limit > 0 {
		vals.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Order != "" {
		vals.Set("order", opts.Order)
	}
	if opts.Timeout > 0 {
		vals.Set("timeout", opts.Timeout.String())
	}
	resp, err := c.do(ctx, http.MethodGet, c.url("query", vals), nil, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: query: %s (HTTP %d)", readErrorKeepOpen(resp), resp.StatusCode)
	}
	var out []Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	sawEOF := false
	for sc.Scan() {
		var env service.Envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			return nil, fmt.Errorf("client: decoding stream: %w", err)
		}
		switch {
		case env.Record != nil:
			rec, err := service.FromWire(*env.Record)
			if err != nil {
				return nil, err
			}
			rec.ID = env.Record.ID
			out = append(out, rec)
		case env.Error != "":
			return out, fmt.Errorf("client: query failed mid-stream: %s", env.Error)
		case env.EOF:
			sawEOF = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading stream: %w", err)
	}
	if !sawEOF {
		return nil, errors.New("client: query stream truncated (no EOF envelope)")
	}
	return out, nil
}

// Stats fetches the tenant's status.
func (c *Client) Stats(ctx context.Context) (service.TenantStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, c.url("stats", nil), nil, true)
	if err != nil {
		return service.TenantStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.TenantStatus{}, fmt.Errorf("client: stats: %s (HTTP %d)", readErrorKeepOpen(resp), resp.StatusCode)
	}
	var st service.TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.TenantStatus{}, fmt.Errorf("client: decoding stats: %w", err)
	}
	return st, nil
}

// Health fetches the server-wide health report (all tenants).
func (c *Client) Health(ctx context.Context) (service.HealthReport, error) {
	resp, err := c.do(ctx, http.MethodGet, c.cfg.Base+"/healthz", nil, true)
	if err != nil {
		return service.HealthReport{}, err
	}
	defer resp.Body.Close()
	var rep service.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return service.HealthReport{}, fmt.Errorf("client: decoding health: %w", err)
	}
	return rep, nil
}

// FollowStream is a live subscription: history first, then matching
// appends as the server publishes them. Single-consumer; Close when
// done.
type FollowStream struct {
	resp *http.Response
	sc   *bufio.Scanner
	err  error
}

// Follow opens a FOLLOW stream for q. The initial subscribe retries
// explicit refusals (429 follower cap, 503 draining); once streaming,
// a broken stream is surfaced, not resumed — callers re-Follow, which
// replays history for a consistent restart.
func (c *Client) Follow(ctx context.Context, q string) (*FollowStream, error) {
	resp, err := c.do(ctx, http.MethodGet, c.url("follow", url.Values{"q": {q}}), nil, true)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: follow: %s (HTTP %d)", readErrorKeepOpen(resp), resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	return &FollowStream{resp: resp, sc: sc}, nil
}

// Next returns the next record. Terminal errors: ErrLagging (server
// dropped the subscription or its spill quota ran out), ErrDraining
// (server shutdown), ErrEnded (read-only tail exhausted), io.EOF-style
// stream end without a terminal envelope is reported as an error.
func (f *FollowStream) Next() (Record, error) {
	if f.err != nil {
		return Record{}, f.err
	}
	for f.sc.Scan() {
		var env service.Envelope
		if err := json.Unmarshal(f.sc.Bytes(), &env); err != nil {
			f.err = fmt.Errorf("client: decoding follow stream: %w", err)
			return Record{}, f.err
		}
		switch {
		case env.Record != nil:
			rec, err := service.FromWire(*env.Record)
			if err != nil {
				f.err = err
				return Record{}, f.err
			}
			rec.ID = env.Record.ID
			return rec, nil
		case env.Error != "":
			f.err = envelopeErr(env)
			return Record{}, f.err
		}
	}
	if err := f.sc.Err(); err != nil {
		f.err = fmt.Errorf("client: follow stream broke: %w", err)
	} else {
		f.err = errors.New("client: follow stream ended without terminal envelope")
	}
	return Record{}, f.err
}

// envelopeErr maps a terminal envelope to its sentinel.
func envelopeErr(env service.Envelope) error {
	switch env.Code {
	case service.CodeLagging:
		return fmt.Errorf("client: %s: %w", env.Error, ErrLagging)
	case service.CodeDraining:
		return fmt.Errorf("client: %s: %w", env.Error, ErrDraining)
	case service.CodeEnded:
		return fmt.Errorf("client: %s: %w", env.Error, ErrEnded)
	default:
		return fmt.Errorf("client: follow terminated: %s (%s)", env.Error, env.Code)
	}
}

// Err returns the stream's terminal error, if any.
func (f *FollowStream) Err() error { return f.err }

// Close releases the stream. Idempotent.
func (f *FollowStream) Close() error {
	if f.resp != nil {
		f.resp.Body.Close()
		f.resp = nil
	}
	return nil
}
