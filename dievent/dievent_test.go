package dievent_test

import (
	"testing"

	"repro/dievent"
)

// TestPublicAPIQuickstart exercises the documented quick-start path
// end-to-end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	pipe, err := dievent.New(dievent.Config{
		Scenario: dievent.PrototypeScenario(),
		Mode:     dievent.GeometricVision,
		Gaze:     dievent.GazeOptions{Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()

	if res.Summary == nil || res.Summary.Digest == "" {
		t.Error("digest missing")
	}
	if res.Layers.Summary.Dominant() != 0 {
		t.Errorf("dominant = %d, want 0 (P1)", res.Layers.Summary.Dominant())
	}
	recs, err := res.Repo.Query("label = 'eye-contact' AND person = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("no eye-contact records via public API")
	}

	// The documented streaming path: a cursor with limit and ordering
	// must yield a prefix of the collected result set.
	it, err := res.Repo.QueryIter("label = 'eye-contact' AND person = 1",
		dievent.QueryOpts{Limit: 2, Order: dievent.OrderFrame})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var streamed []dievent.Record
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		streamed = append(streamed, rec)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	wantN := 2
	if len(recs) < wantN {
		wantN = len(recs)
	}
	if len(streamed) != wantN {
		t.Fatalf("streamed %d rows, want %d", len(streamed), wantN)
	}
	for i, rec := range streamed {
		if rec.ID != recs[i].ID {
			t.Errorf("streamed row %d = #%d, want #%d", i, rec.ID, recs[i].ID)
		}
	}

	// Explain renders a plan through the facade without executing.
	plan, err := res.Repo.Explain("label = 'eye-contact' AND person = 1", dievent.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Error("empty explain output")
	}
}

func TestPublicAPIDinnerScenario(t *testing.T) {
	sc, err := dievent.DinnerScenario(dievent.DinnerOptions{
		Persons: 3, Frames: 600, Seed: 2, Enjoyment: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Persons) != 3 {
		t.Errorf("persons = %d", len(sc.Persons))
	}
	pipe, err := dievent.New(dievent.Config{Scenario: sc, MaxFrames: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if res.FramesAnalyzed != 200 {
		t.Errorf("frames = %d", res.FramesAnalyzed)
	}
}

func TestPublicAPIRigs(t *testing.T) {
	paper, err := dievent.PaperRig(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paper.Cameras) != 2 {
		t.Errorf("paper rig cameras = %d", len(paper.Cameras))
	}
	proto, err := dievent.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(proto.Cameras) != 4 {
		t.Errorf("prototype rig cameras = %d", len(proto.Cameras))
	}
}

func TestPublicAPIEmotionClassifier(t *testing.T) {
	clf, err := dievent.NewEmotionClassifier(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := dievent.GenerateEmotionDataset(8, 1)
	train, test := ds.Split(0.25)
	opts := dievent.EmotionTrainOptions{Epochs: 30, Seed: 2, LearningRate: 0.01}
	if _, err := clf.Train(train, opts); err != nil {
		t.Fatal(err)
	}
	m, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.3 {
		t.Errorf("tiny classifier accuracy = %v, want above chance", m.Accuracy())
	}
}

// TestPublicAPIStageGraph drives the stage-graph surface end to end:
// a pluggable analyzer via Config.Stages, the run manifest via
// Config.Incremental, and an incremental re-run that reuses the gaze
// chain after an emotion-model change.
func TestPublicAPIStageGraph(t *testing.T) {
	cfg := dievent.Config{
		Scenario:    dievent.PrototypeScenario(),
		Mode:        dievent.GeometricVision,
		Gaze:        dievent.GazeOptions{Seed: 7},
		MaxFrames:   200,
		Stages:      []string{dievent.StageAttention},
		Incremental: true,
	}
	pipe, err := dievent.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := pipe.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer prev.Repo.Close()

	if prev.Attention == nil || len(prev.Attention.Spans) == 0 {
		t.Fatalf("attention stage produced no spans: %+v", prev.Attention)
	}
	spans, err := prev.Repo.Query("label = 'attention-span'")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(prev.Attention.Spans) {
		t.Errorf("%d attention-span records, want %d", len(spans), len(prev.Attention.Spans))
	}

	tuned := cfg
	tuned.EmotionNoise = 0.2 // "retrained" emotion model
	tp, err := dievent.New(tuned)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tp.RunIncremental(prev.Repo)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Repo.Close()
	if len(res.ReusedStages) == 0 {
		t.Errorf("incremental re-run reused nothing: stale=%v", res.StaleStages)
	}
	if res.Layers == nil || res.Summary == nil {
		t.Error("incremental run missing derived outputs")
	}
}
