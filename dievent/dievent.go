// Package dievent is the public API of the DiEvent framework — an
// automated analysis system for dining social events reproducing
// Qodseya, Washha & Sèdes, "DiEvent: Towards an Automated Framework for
// Analyzing Dining Events" (ICDEW 2018).
//
// The pipeline runs five sequenced stages (paper Fig. 1): video
// acquisition over a calibrated multi-camera rig, video composition
// analysis, feature extraction (face detection/tracking/recognition,
// LBP+NN emotion recognition, head pose and gaze), multilayer analysis
// (eye-contact detection via frame transforms and ray–sphere
// intersection, overall-emotion estimation, alerting), and a queryable
// metadata repository.
//
// Quick start:
//
//	pipe, err := dievent.New(dievent.Config{
//	    Scenario: dievent.PrototypeScenario(),
//	})
//	if err != nil { ... }
//	res, err := pipe.Run()
//	if err != nil { ... }
//	defer res.Repo.Close()
//	fmt.Println(res.Summary.Digest)
//
// Queries run on a planned, parallel engine. QueryIter streams results
// through a cursor with limit, order and projection pushdown:
//
//	it, err := res.Repo.QueryIter("label = 'eye-contact' AND person = 1",
//	    dievent.QueryOpts{Limit: 10, Order: dievent.OrderFrame})
//	if err != nil { ... }
//	defer it.Close()
//	for {
//	    rec, ok := it.Next()
//	    if !ok { break }
//	    fmt.Println(rec)
//	}
//
// Query collects the full frame-ordered result set in one call, and
// Explain renders a query's plan without executing it.
//
// Persistent repositories (OpenRepository, Config.RepoDir) store
// records in a segmented append-only log — fixed-size sealed segments
// plus a checksummed manifest — recovered by replay on open and
// compacted in the background without blocking appends or queries
// (DESIGN.md §5). WithSegmentSize and WithSyncPolicy tune the engine;
// Repository.Stats and Repository.Compact expose maintenance.
//
// The pipeline itself is a registry-driven stage graph (DESIGN.md §7):
// extraction, analysis and derivation run as named stages over shared
// per-(camera, frame) artifacts. Plug additional analyzers in by name:
//
//	pipe, err := dievent.New(dievent.Config{
//	    Scenario: dievent.PrototypeScenario(),
//	    Stages:   []string{dievent.StageAttention}, // per-person gaze fixations
//	})
//
// and register your own with NewStageRegistry + Registry.Register +
// Config.Registry. Runs with Config.Incremental persist a manifest of
// every stage's version and config hash; Pipeline.RunIncremental then
// diffs a new configuration against a previous run's repository and
// re-runs only the stale stages, replaying fresh raw layers from the
// stored records — re-deriving one layer without re-decoding video:
//
//	prev, _ := pipe.Run()                    // Config.Incremental: true
//	tuned, _ := dievent.New(tunedCfg)        // e.g. retrained emotions
//	res, err := tuned.RunIncremental(prev.Repo)
//
// For multi-process deployments, cmd/dieventd serves many tenant
// repositories over HTTP — ingest, planned queries, live FOLLOW
// streams — with admission control, per-tenant quotas and graceful
// drain; repro/dievent/client is its retrying Go client (DESIGN.md
// §11).
//
// The types below are aliases into the implementation packages, so the
// whole framework is drivable from this single import; advanced users
// can reach the subsystem packages directly.
package dievent

import (
	"repro/internal/camera"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/layers"
	"repro/internal/metadata"
	"repro/internal/scene"
	"repro/internal/summarize"
	"repro/internal/video"
)

// Config assembles a pipeline run. See core.Config for field docs.
type Config = core.Config

// Pipeline is a configured DiEvent pipeline.
type Pipeline = core.Pipeline

// Result carries everything a run produces: the multilayer analysis,
// the digest, per-stage timings, and the populated metadata repository.
type Result = core.Result

// Vision modes.
const (
	// GeometricVision uses calibrated noisy estimators in place of the
	// pixel pipeline (fast; the documented OpenFace substitution).
	GeometricVision = core.GeometricVision
	// PixelVision runs the full pixel path: render, detect, track,
	// recognize, classify.
	PixelVision = core.PixelVision
)

// New validates a configuration and prepares a pipeline.
func New(cfg Config) (*Pipeline, error) { return core.New(cfg) }

// Stage graph (DESIGN.md §7).
type (
	// Stage is one unit of pipeline work over the shared artifact
	// stores; register custom stages via Registry.
	Stage = core.Stage
	// StageRegistry resolves stage names (Config.Registry).
	StageRegistry = core.Registry
	// StageFactory builds a fresh Stage instance for one run.
	StageFactory = core.StageFactory
	// StageBuild is the build context handed to stage factories.
	StageBuild = core.StageBuild
	// StageEnv is the per-run state handed to stage callbacks.
	StageEnv = core.Env
	// ArtifactKey names one per-(camera, frame) artifact.
	ArtifactKey = core.ArtifactKey
	// Artifacts is the per-(camera, frame) artifact store.
	Artifacts = core.Artifacts
	// FrameArtifacts is the merged per-frame artifact store.
	FrameArtifacts = core.FrameArtifacts
	// AttentionResult is the attention-span analyzer's derived layer.
	AttentionResult = core.AttentionResult
	// AttentionSpan is one contiguous gaze fixation.
	AttentionSpan = core.AttentionSpan
	// AttentionStat summarises one participant's gaze persistence.
	AttentionStat = core.AttentionStat
	// StageFailure reports one stage quarantined during a degraded run
	// (Config.Degraded): the stage, why it was isolated, and the
	// downstream stages disabled with it (Result.Quarantined).
	StageFailure = core.StageFailure
)

// NewStageRegistry returns a registry seeded with every built-in
// stage; Register additions and pass it as Config.Registry.
func NewStageRegistry() *StageRegistry { return core.NewRegistry() }

// StageAttention is the built-in per-person attention-span analyzer,
// enabled via Config.Stages.
const StageAttention = core.StageAttention

// Online stages (DESIGN.md §10), enabled via Config.Stages: the sliding
// window HMM dining-phase decoder and the rolling happiness/dominance
// digest. Both publish live- records mid-stream on Live streams.
const (
	StageDiningPhase = core.StageDiningPhase
	StageLiveSummary = core.StageLiveSummary
)

// Streaming execution (DESIGN.md §10). RunStream drives the pipeline as
// an online process over a finite or cycled-unbounded frame stream:
//
//	repo := dievent.NewMemRepository()
//	go pipe.RunStream(dievent.StreamOptions{
//	    Repo: repo, Live: true, FlushEvery: 32,
//	    Frames: 100000, Cycle: true, Bounded: true,
//	})
//	cur, _ := dievent.Follow(repo, "label = 'live-phase' FOLLOW", dievent.TailOpts{})
//	for { rec, _ := cur.Next(ctx); ... }
type (
	// StreamOptions configures Pipeline.RunStream (live emission,
	// bounded memory, cycling, cancellation, a caller-owned repository).
	StreamOptions = core.StreamOptions
	// PhaseSpan is one contiguous decoded dining phase in Result.Phases.
	PhaseSpan = core.PhaseSpan
)

// ErrNoManifest reports that a repository holds no run manifest, so
// RunIncremental cannot diff against it (run with Config.Incremental
// to write one).
var ErrNoManifest = core.ErrNoManifest

// Scenario scripting.
type (
	// Scenario is a scripted dining event.
	Scenario = scene.Scenario
	// PersonSpec describes one participant.
	PersonSpec = scene.PersonSpec
	// Segment scripts behaviour from a start frame.
	Segment = scene.Segment
	// GazeTarget is a scripted gaze destination.
	GazeTarget = scene.GazeTarget
	// DinnerOptions parameterises generated restaurant dinners.
	DinnerOptions = scene.DinnerOptions
)

// PrototypeScenario returns the paper's §III prototype: four
// participants, four corner cameras, 610 frames at 25 fps, scripted so
// Figs. 7, 8 and 9 reproduce exactly.
func PrototypeScenario() Scenario { return scene.PrototypeScenario() }

// DinnerScenario generates a synthetic restaurant dinner with the five
// dining phases and emotion dynamics biased by opt.Enjoyment.
func DinnerScenario(opt DinnerOptions) (Scenario, error) { return scene.DinnerScenario(opt) }

// Gaze targets for custom scripts.
var (
	// AtPerson aims a participant's gaze at another participant.
	AtPerson = scene.AtPerson
	// AtTable aims the gaze at the participant's plate.
	AtTable = scene.AtTable
	// Away aims the gaze off-table (distraction).
	Away = scene.Away
)

// Camera rigs.
type Rig = camera.Rig

// PaperRig builds the two-camera acquisition platform of paper Fig. 2
// (2.5 m mounts, −15° pitch, 25 fps, 640×480).
func PaperRig(separation float64) (*Rig, error) { return camera.PaperRig(separation) }

// PrototypeRig builds the four-corner prototype rig of §III.
func PrototypeRig(roomW, roomD float64) (*Rig, error) { return camera.PrototypeRig(roomW, roomD) }

// Analysis outputs.
type (
	// AnalysisResult is the multilayer analysis output.
	AnalysisResult = layers.Result
	// ECEvent is a detected eye-contact episode.
	ECEvent = layers.ECEvent
	// Alert is an analysis alert (emotion change, EC start, negative
	// spike).
	Alert = layers.Alert
	// OverallEmotion is the per-frame Fig. 5 estimate.
	OverallEmotion = layers.OverallEmotion
	// Summary is the event digest.
	Summary = summarize.Summary
	// LookAtSummary is the accumulated Fig. 9 matrix.
	LookAtSummary = gaze.Summary
)

// Metadata repository.
type (
	// Repository is the embedded metadata store.
	Repository = metadata.Repository
	// Record is one unit of stored metadata.
	Record = metadata.Record
	// QueryOpts tunes planned query execution (limit, order, projection).
	QueryOpts = metadata.QueryOpts
	// QueryIter streams planned-query results (see Repository.QueryIter).
	QueryIter = metadata.Iter
	// QueryOrder selects the result ordering of a planned query.
	QueryOrder = metadata.Order
	// RepoOption configures OpenRepository (segment size, sync policy).
	RepoOption = metadata.Option
	// RepoSyncPolicy selects when the repository fsyncs appended data.
	RepoSyncPolicy = metadata.SyncPolicy
	// RepoStats reports repository storage statistics (Repository.Stats).
	RepoStats = metadata.Stats
	// RepoSegmentStat describes one on-disk segment in RepoStats.
	RepoSegmentStat = metadata.SegmentStat
	// RepoHealth reports degradation: quarantined segments, record gaps,
	// acknowledged-but-not-yet-durable appends (Repository.Health).
	RepoHealth = metadata.Health
	// RepoSegmentHealth describes one quarantined segment in RepoHealth.
	RepoSegmentHealth = metadata.SegmentHealth
	// FsckReport is the result of an offline integrity check (Fsck).
	FsckReport = metadata.FsckReport
	// FsckSegment is one file's verification result in an FsckReport.
	FsckSegment = metadata.FsckSegment
	// QueryExpr is a compiled query predicate (see ParseQuery) — usable
	// with Repository.QueryExprIter and WithOpenFilter.
	QueryExpr = metadata.Expr
	// TailCursor is a live query subscription (Repository.Tail, Follow):
	// matching history first, then new appends as they happen.
	TailCursor = metadata.TailCursor
	// TailOpts tunes a tail subscription (per-subscriber buffer,
	// overflow policy).
	TailOpts = metadata.TailOpts
	// TailOverflow is a pluggable backpressure policy for tail
	// subscriptions (TailOpts.Overflow): when a subscriber's channel
	// fills, records divert through the policy — e.g. spooled to disk —
	// instead of killing the subscription with ErrLagging. The dieventd
	// service's SpillToDisk backpressure mode is built on it.
	TailOverflow = metadata.TailOverflow
)

// ErrLagging terminates a tail cursor whose consumer fell behind the
// append rate past its buffer; re-subscribe to resume from current
// history.
var ErrLagging = metadata.ErrLagging

// ErrTailEnded ends a tail cursor on a read-only repository once the
// matching history is exhausted: without the writer lease there is no
// live feed to wait on, so the cursor reports a clean end instead of
// blocking forever. TailCursor.Close returns nil for it.
var ErrTailEnded = metadata.ErrTailEnded

// ParseFollowQuery compiles a query that may carry a trailing FOLLOW
// keyword, reporting whether it did — the dieventql grammar behind
// "QUERY ... FOLLOW".
func ParseFollowQuery(q string) (QueryExpr, bool, error) { return metadata.ParseFollow(q) }

// Follow subscribes to a repository as a live query: the cursor yields
// the matching history, then matching records as they are appended — in
// order, exactly once, across segment rolls and compactions. The query
// may (but need not) end with the FOLLOW keyword.
func Follow(repo *Repository, q string, opts TailOpts) (*TailCursor, error) {
	expr, _, err := metadata.ParseFollow(q)
	if err != nil {
		return nil, err
	}
	return repo.Tail(expr, opts)
}

// NewMemRepository builds an empty in-memory repository — the natural
// sink for a live RunStream that in-process followers Tail.
func NewMemRepository() *Repository { return metadata.NewMem() }

// Storage-engine options for OpenRepository / Config.RepoOptions.
var (
	// WithSegmentSize sets the active-segment roll threshold in bytes.
	WithSegmentSize = metadata.WithSegmentSize
	// WithSyncPolicy sets the fsync policy for appended data.
	WithSyncPolicy = metadata.WithSyncPolicy
	// WithReadOnly opens a repository for reading under a shared lease
	// (mutations return ErrRepoReadOnly).
	WithReadOnly = metadata.WithReadOnly
	// WithQuarantine opens in degraded mode: corrupt sealed segments are
	// isolated instead of failing the open; the surviving records stay
	// queryable and Repository.Health reports the loss.
	WithQuarantine = metadata.WithQuarantine
	// WithLockWait makes OpenRepository wait (bounded, context-aware)
	// for a busy directory lease instead of failing immediately.
	WithLockWait = metadata.WithLockWait
	// WithOpenFilter restricts a read-only open to the segments a query
	// predicate cannot exclude via their seal-time statistics (zone
	// maps, bloom filters) — the cold-open pushdown path. Requires
	// WithReadOnly; results for queries the predicate implies are
	// byte-identical to a full open.
	WithOpenFilter = metadata.WithOpenFilter
	// ParseQuery compiles the query language into a QueryExpr.
	ParseQuery = metadata.Parse
)

// Sync policies for WithSyncPolicy.
const (
	// RepoSyncOnSeal (the default) fsyncs segments as they seal.
	RepoSyncOnSeal = metadata.SyncOnSeal
	// RepoSyncAlways fsyncs after every append — maximum durability.
	RepoSyncAlways = metadata.SyncAlways
	// RepoSyncNone skips per-append fsyncs (bulk loads); seals and
	// compaction still fsync.
	RepoSyncNone = metadata.SyncNone
)

// ErrRepoLocked reports that another process holds a conflicting
// lease on a repository directory.
var ErrRepoLocked = metadata.ErrLocked

// ErrRepoReadOnly rejects mutations on a repository opened with
// WithReadOnly.
var ErrRepoReadOnly = metadata.ErrReadOnly

// ErrRepoCorrupt reports unrecoverable on-disk damage (strict open of
// a corrupt segment, a bad manifest checksum, a lost manifest).
var ErrRepoCorrupt = metadata.ErrCorrupt

// ErrRepoQuarantined marks operations refused because they would
// touch quarantined data (e.g. compacting a degraded repository).
var ErrRepoQuarantined = metadata.ErrQuarantined

// Result orderings for QueryOpts.Order.
const (
	// OrderFrame sorts by (frame, ID) ascending — the default.
	OrderFrame = metadata.OrderFrame
	// OrderID yields append (ID) order.
	OrderID = metadata.OrderID
	// OrderFrameDesc sorts by (frame, ID) descending — latest first.
	OrderFrameDesc = metadata.OrderFrameDesc
)

// OpenRepository opens (or creates) a persistent metadata repository,
// taking the directory's exclusive lease (ErrRepoLocked when another
// process holds it). Storage is a segmented append-only log: see
// WithSegmentSize and WithSyncPolicy for the tuning knobs and
// Repository.Stats / Repository.Compact for maintenance.
func OpenRepository(dir string, opts ...RepoOption) (*Repository, error) {
	return metadata.Open(dir, opts...)
}

// Fsck verifies a repository directory offline — manifest checksum,
// strict decode of every sealed segment, the active segment's valid
// prefix — without opening or mutating it. The report lists per-file
// findings and which sealed segments WithQuarantine would isolate.
func Fsck(dir string) (*FsckReport, error) { return metadata.Fsck(dir) }

// Emotion recognition.
type (
	// EmotionLabel is one of the six basic emotions plus neutral.
	EmotionLabel = emotion.Label
	// EmotionClassifier is the LBP+NN recogniser.
	EmotionClassifier = emotion.Classifier
	// EmotionTrainOptions configure classifier training.
	EmotionTrainOptions = emotion.TrainOptions
)

// NewEmotionClassifier builds an untrained LBP+NN classifier.
func NewEmotionClassifier(hidden int, seed int64) (*EmotionClassifier, error) {
	return emotion.NewClassifier(hidden, seed)
}

// GenerateEmotionDataset renders a labelled synthetic face corpus.
var GenerateEmotionDataset = emotion.GenerateDataset

// RenderOptions tune the synthetic sensor.
type RenderOptions = video.RenderOptions

// GazeOptions tune the gaze estimator's noise model.
type GazeOptions = gaze.EstimatorOptions

// Dataset export/import — the paper's planned annotated-dataset
// artefact (see internal/dataset).
type (
	// Dataset is a loaded annotated dataset.
	Dataset = dataset.Dataset
	// DatasetManifest describes an exported dataset.
	DatasetManifest = dataset.Manifest
	// DatasetOptions tune exports.
	DatasetOptions = dataset.ExportOptions
)

// ExportDataset renders a scenario through a rig into dir with
// ground-truth annotations.
func ExportDataset(dir string, sc Scenario, rig *Rig, opt DatasetOptions) (*DatasetManifest, error) {
	return dataset.Export(dir, sc, rig, opt)
}

// LoadDataset opens a previously exported dataset.
func LoadDataset(dir string) (*Dataset, error) { return dataset.Load(dir) }
