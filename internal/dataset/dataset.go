// Package dataset builds annotated dining-event datasets — the paper's
// stated future work ("We are planning to collect and annotate a
// dataset customized for our task"). An exported dataset bundles
// synchronized multi-camera footage (raw video containers) with
// frame-accurate ground-truth annotations (gaze targets, eye contact,
// emotions, activity phases, head poses) in a metadata repository, plus
// a JSON manifest. Datasets round-trip: Load returns the footage and a
// queryable annotation store.
package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/camera"
	"repro/internal/metadata"
	"repro/internal/scene"
	"repro/internal/video"
)

// ManifestName is the dataset manifest file name.
const ManifestName = "manifest.json"

// annotationsDir holds the metadata repository.
const annotationsDir = "annotations"

// Manifest describes an exported dataset.
type Manifest struct {
	// Name is the scenario name.
	Name string `json:"name"`
	// Frames is the per-camera frame count.
	Frames int `json:"frames"`
	// FPS is the capture rate.
	FPS float64 `json:"fps"`
	// Cameras lists the camera names, one container file each
	// ("<name>.diev").
	Cameras []string `json:"cameras"`
	// Participants maps 1-based labels to display colours.
	Participants map[string]string `json:"participants"`
	// AnnotationCount is the number of ground-truth records.
	AnnotationCount int `json:"annotation_count"`
}

// ExportOptions tune the export.
type ExportOptions struct {
	// Render tunes the synthetic sensor.
	Render video.RenderOptions
	// MaxFrames truncates the export (0 = all frames).
	MaxFrames int
	// Stride annotates every Stride-th frame (default 1 = every frame);
	// footage is always complete.
	Stride int
}

// ErrBadDataset reports a malformed dataset directory.
var ErrBadDataset = errors.New("dataset: bad dataset")

// Export renders the scenario through every camera of the rig into dir
// and writes ground-truth annotations alongside.
func Export(dir string, sc scene.Scenario, rig *camera.Rig, opt ExportOptions) (*Manifest, error) {
	sim, err := scene.NewSimulator(sc)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if opt.Stride <= 0 {
		opt.Stride = 1
	}
	numFrames := sim.NumFrames()
	if opt.MaxFrames > 0 && opt.MaxFrames < numFrames {
		numFrames = opt.MaxFrames
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: creating %s: %w", dir, err)
	}

	m := &Manifest{
		Name:         sc.Name,
		Frames:       numFrames,
		FPS:          sc.FPS,
		Participants: make(map[string]string, len(sc.Persons)),
	}
	for _, p := range sim.Persons() {
		m.Participants[p.Name] = p.Color
	}

	// Footage: one container per camera, rendered concurrently —
	// cameras are independent and rendering is the dominant cost.
	errs := make([]error, len(rig.Cameras))
	var wg sync.WaitGroup
	for ci, cam := range rig.Cameras {
		m.Cameras = append(m.Cameras, cam.Name)
		wg.Add(1)
		go func(ci int, cam *camera.Camera) {
			defer wg.Done()
			renderer := video.NewRenderer(sim, cam, opt.Render)
			frames := make([]video.Frame, 0, numFrames)
			for i := 0; i < numFrames; i++ {
				frames = append(frames, renderer.Render(i))
			}
			path := filepath.Join(dir, cam.Name+".diev")
			f, err := os.Create(path)
			if err != nil {
				errs[ci] = fmt.Errorf("dataset: creating %s: %w", path, err)
				return
			}
			if err := video.WriteContainer(f, rig.FPS, frames); err != nil {
				f.Close()
				errs[ci] = fmt.Errorf("dataset: writing %s: %w", path, err)
				return
			}
			if err := f.Close(); err != nil {
				errs[ci] = fmt.Errorf("dataset: closing %s: %w", path, err)
			}
		}(ci, cam)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Annotations.
	repo, err := metadata.Open(filepath.Join(dir, annotationsDir))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer repo.Close()
	if err := writeAnnotations(repo, sim, numFrames, opt.Stride); err != nil {
		return nil, err
	}
	if err := repo.Sync(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	m.AnnotationCount = repo.Len()

	// Manifest last: its presence marks a complete export.
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dataset: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), raw, 0o644); err != nil {
		return nil, fmt.Errorf("dataset: writing manifest: %w", err)
	}
	return m, nil
}

// writeAnnotations stores the ground truth for every annotated frame.
func writeAnnotations(repo *metadata.Repository, sim *scene.Simulator, numFrames, stride int) error {
	var batch []metadata.Record
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := repo.AppendBatch(batch); err != nil {
			return fmt.Errorf("dataset: writing annotations: %w", err)
		}
		batch = batch[:0]
		return nil
	}
	for f := 0; f < numFrames; f += stride {
		fs := sim.FrameState(f)
		// Phase annotation.
		batch = append(batch, metadata.Record{
			Kind: metadata.KindAnnotation, Frame: f, FrameEnd: f + 1,
			Time: fs.Time, Person: -1, Other: -1,
			Label: "phase", Tags: map[string]string{"value": fs.Phase.String()},
		})
		for _, p := range fs.Persons {
			// Emotion ground truth.
			batch = append(batch, metadata.Record{
				Kind: metadata.KindAnnotation, Frame: f, FrameEnd: f + 1,
				Time: fs.Time, Person: p.ID, Other: -1,
				Label: "true-emotion", Value: 1,
				Tags: map[string]string{"value": p.Emotion.String()},
			})
			// Gaze target ground truth.
			rec := metadata.Record{
				Kind: metadata.KindAnnotation, Frame: f, FrameEnd: f + 1,
				Time: fs.Time, Person: p.ID, Other: -1,
				Label: "true-gaze",
			}
			switch p.Target.Kind {
			case scene.LookAtPerson:
				rec.Other = p.Target.Person
				rec.Tags = map[string]string{"value": "person"}
			case scene.LookAtTable:
				rec.Tags = map[string]string{"value": "table"}
			default:
				rec.Tags = map[string]string{"value": "away"}
			}
			batch = append(batch, rec)
		}
		// Mutual eye contact.
		truth := fs.TrueLookAt()
		for i := range fs.Persons {
			for j := i + 1; j < len(fs.Persons); j++ {
				if truth[i][j] == 1 && truth[j][i] == 1 {
					batch = append(batch, metadata.Record{
						Kind: metadata.KindAnnotation, Frame: f, FrameEnd: f + 1,
						Time: fs.Time, Person: fs.Persons[i].ID, Other: fs.Persons[j].ID,
						Label: "true-eye-contact", Value: 1,
					})
				}
			}
		}
		if len(batch) >= 1024 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Dataset is a loaded dataset: footage per camera plus the annotation
// store. The caller owns Close on Annotations.
type Dataset struct {
	Manifest Manifest
	// Footage maps camera name → decoded frames.
	Footage map[string][]video.Frame
	// Annotations is the ground-truth repository.
	Annotations *metadata.Repository
}

// Load opens a dataset directory.
func Load(dir string) (*Dataset, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("dataset: decoding manifest: %w", err)
	}
	if m.Frames <= 0 || len(m.Cameras) == 0 {
		return nil, fmt.Errorf("dataset: empty manifest: %w", ErrBadDataset)
	}
	ds := &Dataset{Manifest: m, Footage: make(map[string][]video.Frame, len(m.Cameras))}
	for _, cam := range m.Cameras {
		f, err := os.Open(filepath.Join(dir, cam+".diev"))
		if err != nil {
			return nil, fmt.Errorf("dataset: opening footage %s: %w", cam, err)
		}
		frames, fps, err := video.ReadContainer(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading footage %s: %w", cam, err)
		}
		if fps != m.FPS {
			return nil, fmt.Errorf("dataset: footage %s at %v fps, manifest says %v: %w",
				cam, fps, m.FPS, ErrBadDataset)
		}
		if len(frames) != m.Frames {
			return nil, fmt.Errorf("dataset: footage %s has %d frames, manifest says %d: %w",
				cam, len(frames), m.Frames, ErrBadDataset)
		}
		ds.Footage[cam] = frames
	}
	// Datasets are immutable artifacts: open the annotations read-only
	// (shared lease) so any number of consumers can load the same
	// export concurrently.
	repo, err := metadata.Open(filepath.Join(dir, annotationsDir), metadata.WithReadOnly())
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	ds.Annotations = repo
	return ds, nil
}

// TrueEmotion returns the annotated emotion name for a person at a
// frame, or "" when the frame is not annotated.
func (d *Dataset) TrueEmotion(frame, person int) (string, error) {
	recs, err := d.Annotations.Query(fmt.Sprintf(
		"label = 'true-emotion' AND frame = %d AND person = %d", frame, person+1))
	if err != nil {
		return "", err
	}
	if len(recs) == 0 {
		return "", nil
	}
	return recs[0].Tags["value"], nil
}

// Duration returns the dataset length.
func (d *Dataset) Duration() time.Duration {
	return time.Duration(float64(d.Manifest.Frames) / d.Manifest.FPS * float64(time.Second))
}
