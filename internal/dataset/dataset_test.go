package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/camera"
	"repro/internal/scene"
	"repro/internal/video"
)

func exportSmall(t *testing.T, dir string) *Manifest {
	t.Helper()
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Export(dir, scene.PrototypeScenario(), rig, ExportOptions{
		Render:    video.RenderOptions{NoiseSigma: 1},
		MaxFrames: 30,
		Stride:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExportLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := exportSmall(t, dir)
	if m.Frames != 30 || len(m.Cameras) != 4 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Participants["P1"] != "yellow" {
		t.Errorf("participants = %v", m.Participants)
	}

	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Annotations.Close()
	if len(ds.Footage) != 4 {
		t.Fatalf("footage cameras = %d", len(ds.Footage))
	}
	for cam, frames := range ds.Footage {
		if len(frames) != 30 {
			t.Errorf("%s has %d frames", cam, len(frames))
		}
		if frames[0].Pixels.W != 640 || frames[0].Pixels.H != 480 {
			t.Errorf("%s resolution %dx%d", cam, frames[0].Pixels.W, frames[0].Pixels.H)
		}
	}
	if ds.Annotations.Len() != m.AnnotationCount {
		t.Errorf("annotations = %d, manifest says %d", ds.Annotations.Len(), m.AnnotationCount)
	}
	if ds.Duration() <= 0 {
		t.Error("duration should be positive")
	}
}

func TestAnnotationsMatchSimulator(t *testing.T) {
	dir := t.TempDir()
	exportSmall(t, dir)
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Annotations.Close()

	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{0, 15, 29} {
		fs := sim.FrameState(f)
		for _, p := range fs.Persons {
			got, err := ds.TrueEmotion(f, p.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got != p.Emotion.String() {
				t.Errorf("frame %d P%d emotion = %q, want %q", f, p.ID+1, got, p.Emotion)
			}
		}
	}
	// Gaze annotations: P2 (ID 1) looks at P1 (ID 0) during the first
	// segment.
	recs, err := ds.Annotations.Query("label = 'true-gaze' AND person = 2 AND frame = 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Other != 0 || recs[0].Tags["value"] != "person" {
		t.Errorf("P2 gaze annotation = %v", recs)
	}
}

func TestExportStride(t *testing.T) {
	dir := t.TempDir()
	rig, _ := camera.PrototypeRig(6, 5)
	m, err := Export(dir, scene.PrototypeScenario(), rig, ExportOptions{
		MaxFrames: 30, Stride: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Annotations.Close()
	// Only frames 0, 10, 20 annotated — but footage stays complete.
	recs, err := ds.Annotations.Query("label = 'phase'")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("phase annotations = %d, want 3", len(recs))
	}
	if len(ds.Footage[m.Cameras[0]]) != 30 {
		t.Error("footage must not be strided")
	}
}

func TestLoadRejectsMissingAndCorrupt(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	dir := t.TempDir()
	exportSmall(t, dir)
	// Corrupt a footage file's tail.
	path := filepath.Join(dir, "C1.diev")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt footage should fail to load")
	}

	// Manifest/footage count mismatch.
	dir2 := t.TempDir()
	exportSmall(t, dir2)
	m, _ := os.ReadFile(filepath.Join(dir2, ManifestName))
	bad := []byte(string(m))
	bad = []byte(replaceOnce(string(bad), "\"frames\": 30", "\"frames\": 99"))
	if err := os.WriteFile(filepath.Join(dir2, ManifestName), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); !errors.Is(err, ErrBadDataset) {
		t.Errorf("mismatched manifest err = %v", err)
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
