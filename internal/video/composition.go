package video

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/img"
)

// Composition assembles an edited multi-shot video from several camera
// sources — the input class the paper's video-composition analysis
// (§II-B, Fig. 3) decomposes back into scenes, shots and key frames.
// Each shot takes frames from one source; consecutive shots are joined
// either by a hard cut or by a gradual dissolve, both of which the shot
// boundary detector must find.

// TransitionKind is how one shot hands over to the next.
type TransitionKind uint8

// Transition kinds.
const (
	// Cut is an instantaneous shot change.
	Cut TransitionKind = iota
	// Dissolve cross-fades over DissolveLen frames.
	Dissolve
)

// DissolveLen is the length of a gradual transition in frames.
const DissolveLen = 12

// Shot scripts one segment of the composition.
type Shot struct {
	// Source index into the composition's source list.
	Source int
	// Len is the shot length in frames (must be positive).
	Len int
	// TransitionIn is how this shot is entered (ignored for the first
	// shot).
	TransitionIn TransitionKind
}

// ErrBadComposition reports an invalid composition script.
var ErrBadComposition = errors.New("video: bad composition")

// Composition is a scripted edit over frame sources.
type Composition struct {
	frames []Frame
	// cutIndexes are the first frame index of every shot after the
	// first — the ground truth for shot-boundary detection.
	cutIndexes []int
	// dissolves marks which of those boundaries are gradual.
	dissolves map[int]bool
}

// Compose materialises the edit. Sources must all yield identically
// sized frames and have at least the per-shot requested length remaining.
func Compose(sources []Source, shots []Shot) (*Composition, error) {
	if len(sources) == 0 || len(shots) == 0 {
		return nil, fmt.Errorf("video: empty sources or shots: %w", ErrBadComposition)
	}
	// Drain every source fully first (simplest correct approach; the
	// compositions used in experiments are small).
	mat := make([][]Frame, len(sources))
	for i, s := range sources {
		fs, err := Collect(s)
		if err != nil {
			return nil, fmt.Errorf("video: draining source %d: %w", i, err)
		}
		if len(fs) == 0 {
			return nil, fmt.Errorf("video: source %d empty: %w", i, ErrBadComposition)
		}
		mat[i] = fs
	}
	c := &Composition{dissolves: make(map[int]bool)}
	cursor := make([]int, len(sources)) // next unused frame per source
	var prevTail *img.Gray
	for si, shot := range shots {
		if shot.Source < 0 || shot.Source >= len(sources) {
			return nil, fmt.Errorf("video: shot %d references source %d: %w", si, shot.Source, ErrBadComposition)
		}
		if shot.Len <= 0 {
			return nil, fmt.Errorf("video: shot %d has length %d: %w", si, shot.Len, ErrBadComposition)
		}
		src := mat[shot.Source]
		if cursor[shot.Source]+shot.Len > len(src) {
			return nil, fmt.Errorf("video: shot %d exhausts source %d: %w", si, shot.Source, ErrBadComposition)
		}
		start := len(c.frames)
		if si > 0 {
			c.cutIndexes = append(c.cutIndexes, start)
			if shot.TransitionIn == Dissolve {
				c.dissolves[start] = true
			}
		}
		for k := 0; k < shot.Len; k++ {
			f := src[cursor[shot.Source]+k]
			px := f.Pixels
			// Gradual entry: blend with the previous shot's tail frame.
			if si > 0 && shot.TransitionIn == Dissolve && k < DissolveLen && prevTail != nil {
				alpha := float64(k+1) / float64(DissolveLen+1)
				px = blend(prevTail, px, alpha)
			}
			c.frames = append(c.frames, Frame{
				Index:  len(c.frames),
				Time:   f.Time,
				Camera: f.Camera,
				Pixels: px,
			})
		}
		cursor[shot.Source] += shot.Len
		prevTail = c.frames[len(c.frames)-1].Pixels
	}
	return c, nil
}

// blend returns (1−α)·a + α·b.
func blend(a, b *img.Gray, alpha float64) *img.Gray {
	if a.W != b.W || a.H != b.H {
		b = b.Resize(a.W, a.H)
	}
	out := img.New(a.W, a.H)
	for i := range a.Pix {
		v := (1-alpha)*float64(a.Pix[i]) + alpha*float64(b.Pix[i])
		out.Pix[i] = uint8(math.Round(v))
	}
	return out
}

// Frames returns the composed frames.
func (c *Composition) Frames() []Frame { return c.frames }

// TrueBoundaries returns the ground-truth first-frame indexes of every
// shot after the first.
func (c *Composition) TrueBoundaries() []int {
	out := make([]int, len(c.cutIndexes))
	copy(out, c.cutIndexes)
	return out
}

// IsDissolve reports whether the boundary at frame index i was gradual.
func (c *Composition) IsDissolve(i int) bool { return c.dissolves[i] }

// Source returns the composition as a Source.
func (c *Composition) Source() Source {
	return &sliceSource{frames: c.frames}
}

// sliceSource serves frames from memory.
type sliceSource struct {
	frames []Frame
	i      int
}

// NewSliceSource wraps pre-rendered frames as a Source.
func NewSliceSource(frames []Frame) Source {
	return &sliceSource{frames: frames}
}

func (s *sliceSource) Next() (Frame, error) {
	if s.i >= len(s.frames) {
		return Frame{}, ErrEnd
	}
	f := s.frames[s.i]
	s.i++
	return f, nil
}

func (s *sliceSource) Len() int { return len(s.frames) }
