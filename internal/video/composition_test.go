package video

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/img"
)

func TestComposeCutsAndBoundaries(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	s0, _ := NewSourceRange(NewRenderer(sim, rig.Cameras[0], RenderOptions{}), 0, 60)
	s1, _ := NewSourceRange(NewRenderer(sim, rig.Cameras[2], RenderOptions{}), 0, 60)
	comp, err := Compose([]Source{s0, s1}, []Shot{
		{Source: 0, Len: 30},
		{Source: 1, Len: 25, TransitionIn: Cut},
		{Source: 0, Len: 30, TransitionIn: Dissolve},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(comp.Frames()); got != 85 {
		t.Fatalf("composed %d frames, want 85", got)
	}
	b := comp.TrueBoundaries()
	if len(b) != 2 || b[0] != 30 || b[1] != 55 {
		t.Fatalf("boundaries = %v, want [30 55]", b)
	}
	if comp.IsDissolve(30) {
		t.Error("boundary 30 is a hard cut")
	}
	if !comp.IsDissolve(55) {
		t.Error("boundary 55 is a dissolve")
	}
	// Dissolve frames actually blend: the first dissolve frame should
	// differ from both the pure previous tail and the pure new shot.
	fr := comp.Frames()
	if img.MeanAbsDiff(fr[55].Pixels, fr[54].Pixels) == 0 {
		t.Error("dissolve should change pixels gradually")
	}
}

func TestComposeValidation(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	mk := func() Source {
		s, _ := NewSourceRange(NewRenderer(sim, rig.Cameras[0], RenderOptions{}), 0, 20)
		return s
	}
	if _, err := Compose(nil, []Shot{{Source: 0, Len: 5}}); !errors.Is(err, ErrBadComposition) {
		t.Error("empty sources should fail")
	}
	if _, err := Compose([]Source{mk()}, nil); !errors.Is(err, ErrBadComposition) {
		t.Error("empty shots should fail")
	}
	if _, err := Compose([]Source{mk()}, []Shot{{Source: 5, Len: 5}}); !errors.Is(err, ErrBadComposition) {
		t.Error("bad source index should fail")
	}
	if _, err := Compose([]Source{mk()}, []Shot{{Source: 0, Len: 0}}); !errors.Is(err, ErrBadComposition) {
		t.Error("zero-length shot should fail")
	}
	if _, err := Compose([]Source{mk()}, []Shot{{Source: 0, Len: 999}}); !errors.Is(err, ErrBadComposition) {
		t.Error("overlong shot should fail")
	}
}

func TestSliceSource(t *testing.T) {
	f := Frame{Index: 0, Pixels: img.New(4, 4)}
	s := NewSliceSource([]Frame{f, f, f})
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	got, err := Collect(s)
	if err != nil || len(got) != 3 {
		t.Errorf("collect = %d frames, err %v", len(got), err)
	}
	if _, err := s.Next(); !errors.Is(err, ErrEnd) {
		t.Error("exhausted source should return ErrEnd")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	src, _ := NewSourceRange(NewRenderer(sim, rig.Cameras[1], RenderOptions{NoiseSigma: 1}), 0, 10)
	frames, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 25, frames); err != nil {
		t.Fatal(err)
	}
	got, fps, err := ReadContainer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fps != 25 {
		t.Errorf("fps = %v", fps)
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i := range got {
		if got[i].Camera != frames[i].Camera {
			t.Errorf("frame %d camera %q != %q", i, got[i].Camera, frames[i].Camera)
		}
		if got[i].Time != frames[i].Time {
			t.Errorf("frame %d time mismatch", i)
		}
		for j := range got[i].Pixels.Pix {
			if got[i].Pixels.Pix[j] != frames[i].Pixels.Pix[j] {
				t.Fatalf("frame %d pixel %d mismatch", i, j)
			}
		}
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	g := img.New(8, 8)
	g.Fill(100)
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 25, []Frame{{Camera: "C1", Pixels: g}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a pixel byte near the end (before the CRC).
	raw[len(raw)-10] ^= 0xFF
	_, _, err := ReadContainer(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("corrupted payload error = %v, want ErrCorruptFrame", err)
	}
}

func TestContainerRejectsBadMagic(t *testing.T) {
	_, _, err := ReadContainer(bytes.NewReader([]byte("NOPE-not-a-container")))
	if !errors.Is(err, ErrBadContainer) {
		t.Errorf("bad magic error = %v", err)
	}
}

func TestContainerRejectsEmptyAndMixedSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 25, nil); !errors.Is(err, ErrBadContainer) {
		t.Error("empty write should fail")
	}
	a := img.New(8, 8)
	b := img.New(4, 4)
	err := WriteContainer(&buf, 25, []Frame{{Pixels: a}, {Pixels: b}})
	if !errors.Is(err, ErrBadContainer) {
		t.Error("mixed sizes should fail")
	}
}

func TestContainerTruncatedStream(t *testing.T) {
	g := img.New(8, 8)
	var buf bytes.Buffer
	if err := WriteContainer(&buf, 25, []Frame{{Camera: "C1", Pixels: g}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-20] // chop the tail
	if _, _, err := ReadContainer(bytes.NewReader(raw)); err == nil {
		t.Error("truncated container should fail")
	}
}
