// Package video implements DiEvent's acquisition substrate: a synthetic
// frame renderer that turns simulated scene states into the 640×480
// grayscale frames the paper's surveillance cameras produced, sensor
// noise and lighting drift, multi-camera capture, an editable multi-shot
// composition for the video-parsing experiments, and a raw container
// codec for persistence.
package video

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/camera"
	"repro/internal/emotion"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/scene"
)

// Frame is one captured video frame with its provenance.
type Frame struct {
	// Index is the frame number within its stream.
	Index int
	// Time is the capture timestamp.
	Time time.Duration
	// Camera is the name of the capturing camera.
	Camera string
	// Pixels is the grayscale image.
	Pixels *img.Gray
}

// Source is a pull-based stream of frames. Next returns io-style
// semantics: (frame, nil) until exhaustion, then (zero, ErrEnd).
type Source interface {
	// Next returns the next frame or ErrEnd after the last one.
	Next() (Frame, error)
	// Len returns the total number of frames the source will deliver,
	// or -1 when unknown.
	Len() int
}

// ErrEnd signals stream exhaustion.
var ErrEnd = errors.New("video: end of stream")

// RenderOptions tune the synthetic sensor.
type RenderOptions struct {
	// NoiseSigma is the Gaussian sensor-noise σ in intensity levels
	// (0 disables).
	NoiseSigma float64
	// LightDrift is the amplitude (levels) of slow sinusoidal global
	// lighting variation (0 disables).
	LightDrift float64
	// LightPeriod is the drift period in frames (default 500).
	LightPeriod int
	// Background is the wall gray level (default 45).
	Background uint8
	// TableTone is the table-surface gray level (default 95).
	TableTone uint8
}

func (o RenderOptions) withDefaults() RenderOptions {
	if o.LightPeriod <= 0 {
		o.LightPeriod = 500
	}
	if o.Background == 0 {
		o.Background = 45
	}
	if o.TableTone == 0 {
		o.TableTone = 95
	}
	return o
}

// Renderer draws simulated frame states as seen by one camera. All
// Render methods are safe for concurrent use — rendering is a pure
// function of the frame state, and the frame pool is its own
// synchronisation.
type Renderer struct {
	cam *camera.Camera
	sim *scene.Simulator
	opt RenderOptions

	// frames recycles full-size frame buffers between AcquireFrame and
	// ReleaseFrame so steady-state rendering allocates no pixel memory.
	frames sync.Pool
}

// NewRenderer builds a renderer for one camera over a simulation.
func NewRenderer(sim *scene.Simulator, cam *camera.Camera, opt RenderOptions) *Renderer {
	return &Renderer{cam: cam, sim: sim, opt: opt.withDefaults()}
}

// AcquireFrame returns a frame-sized buffer from the renderer's pool
// (allocating when the pool is empty). Pair with ReleaseFrame.
func (r *Renderer) AcquireFrame() *img.Gray {
	if g, ok := r.frames.Get().(*img.Gray); ok {
		return g
	}
	return img.New(r.cam.In.W, r.cam.In.H)
}

// ReleaseFrame returns a buffer obtained from AcquireFrame (or any
// frame-sized image) to the pool. The caller must not use g afterwards.
func (r *Renderer) ReleaseFrame(g *img.Gray) {
	if g != nil && g.W == r.cam.In.W && g.H == r.cam.In.H {
		r.frames.Put(g)
	}
}

// RenderState draws an arbitrary frame state (useful for single-frame
// tooling); frame index governs noise seeding and lighting phase.
func (r *Renderer) RenderState(fs scene.FrameState) *img.Gray {
	return r.RenderStateInto(fs, nil)
}

// RenderStateInto is RenderState drawing into g (reused when its buffer
// is large enough; nil allocates). It returns the rendered frame.
func (r *Renderer) RenderStateInto(fs scene.FrameState, g *img.Gray) *img.Gray {
	o := r.opt
	g = img.Ensure(g, r.cam.In.W, r.cam.In.H)
	g.Fill(o.Background)

	r.drawTable(g)

	// Draw persons far-to-near so nearer heads occlude farther ones.
	order := make([]int, len(fs.Persons))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			di := r.cam.Depth(fs.Persons[order[i]].Head.Position)
			dj := r.cam.Depth(fs.Persons[order[j]].Head.Position)
			if dj > di {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, idx := range order {
		p := fs.Persons[idx]
		r.drawPerson(g, p)
	}

	// Global lighting drift then sensor noise, seeded per (frame,
	// camera) so every render of the same frame is identical.
	if o.LightDrift > 0 {
		phase := 2 * math.Pi * float64(fs.Index) / float64(o.LightPeriod)
		g.AdjustBrightness(int(o.LightDrift * math.Sin(phase)))
	}
	if o.NoiseSigma > 0 {
		rng := newNoiseRand(fs.Index, r.cam.Name)
		g.AddNoise(o.NoiseSigma, rng.NormFloat64)
	}
	return g
}

// Render draws frame i of the simulation.
func (r *Renderer) Render(i int) Frame {
	fs := r.sim.FrameState(i)
	return Frame{
		Index:  i,
		Time:   fs.Time,
		Camera: r.cam.Name,
		Pixels: r.RenderState(fs),
	}
}

// drawTable projects the table outline onto the image and fills it.
func (r *Renderer) drawTable(g *img.Gray) {
	sc := r.sim.Scenario()
	hw, hd := sc.TableW/2, sc.TableD/2
	corners := [4]geom.Vec3{
		{X: -hw, Y: -hd, Z: sc.TableH},
		{X: hw, Y: -hd, Z: sc.TableH},
		{X: hw, Y: hd, Z: sc.TableH},
		{X: -hw, Y: hd, Z: sc.TableH},
	}
	// Project corners; if any is behind the camera, skip the table
	// (cannot happen with the standard rigs).
	var px [4]geom.Vec2
	for i, c := range corners {
		p, err := r.cam.Project(c)
		if err != nil {
			return
		}
		px[i] = p
	}
	fillQuad(g, px[:], r.opt.TableTone)
}

// drawPerson draws a participant: a dark torso ellipse under an
// expressive face whose geometry comes from the shared emotion renderer.
func (r *Renderer) drawPerson(g *img.Gray, p scene.PersonState) {
	headPx, err := r.cam.Project(p.Head.Position)
	if err != nil || !r.cam.InFrame(headPx) {
		return
	}
	rad := r.cam.ProjectedRadius(p.Head.Position, p.HeadRadius)
	if rad < 1.5 {
		return
	}
	// Torso: an ellipse below the head, slightly darker than the face.
	torsoTone := uint8(maxInt(10, int(p.FaceTone)-70))
	g.FillEllipse(headPx.X, headPx.Y+3.1*rad, 2.0*rad, 2.4*rad, 0, torsoTone)

	// Face: shared expressive renderer; variant keyed on person ID so
	// each participant has a stable individual face.
	box := img.Rect{
		X: int(headPx.X - rad),
		Y: int(headPx.Y - rad*1.2),
		W: int(2 * rad),
		H: int(2.4 * rad),
	}
	emotion.RenderFaceInto(g, box, p.FaceTone, p.Emotion, uint64(p.ID)*7919+1)
}

// fillQuad rasterises a convex quadrilateral by scanline.
func fillQuad(g *img.Gray, pts []geom.Vec2, tone uint8) {
	if len(pts) != 4 {
		return
	}
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	y0 := maxInt(0, int(minY))
	y1 := minInt(g.H-1, int(maxY))
	for y := y0; y <= y1; y++ {
		fy := float64(y) + 0.5
		// Collect intersections of the scanline with quad edges (a
		// convex quad crosses a scanline at most 4 times — fixed array
		// keeps this off the heap).
		var xs [4]float64
		nx := 0
		for i := 0; i < 4; i++ {
			a, b := pts[i], pts[(i+1)%4]
			if (a.Y <= fy && b.Y > fy) || (b.Y <= fy && a.Y > fy) {
				t := (fy - a.Y) / (b.Y - a.Y)
				xs[nx] = a.X + t*(b.X-a.X)
				nx++
			}
		}
		if nx < 2 {
			continue
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs[1:nx] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		for x := maxInt(0, int(lo)); x <= minInt(g.W-1, int(hi)); x++ {
			g.Pix[y*g.W+x] = tone
		}
	}
}

// renderSource streams rendered frames in order.
type renderSource struct {
	r   *Renderer
	i   int
	n   int
	off int
}

// NewSource returns a Source streaming every simulated frame through the
// renderer in order.
func NewSource(r *Renderer) Source {
	return &renderSource{r: r, n: r.sim.NumFrames()}
}

// NewSourceRange streams frames [from, to).
func NewSourceRange(r *Renderer, from, to int) (Source, error) {
	if from < 0 || to > r.sim.NumFrames() || from >= to {
		return nil, fmt.Errorf("video: range [%d,%d) invalid for %d frames: %w",
			from, to, r.sim.NumFrames(), ErrEnd)
	}
	return &renderSource{r: r, i: 0, n: to - from, off: from}, nil
}

func (s *renderSource) Next() (Frame, error) {
	if s.i >= s.n {
		return Frame{}, ErrEnd
	}
	f := s.r.Render(s.off + s.i)
	f.Index = s.i
	s.i++
	return f, nil
}

func (s *renderSource) Len() int { return s.n }

// Capture renders the full event from every camera of a rig, returning
// one Source per camera in rig order — the paper's synchronized
// multi-camera acquisition.
func Capture(sim *scene.Simulator, rig *camera.Rig, opt RenderOptions) []Source {
	out := make([]Source, len(rig.Cameras))
	for i, c := range rig.Cameras {
		out[i] = NewSource(NewRenderer(sim, c, opt))
	}
	return out
}

// Collect drains a source into a slice (testing/tooling helper).
func Collect(s Source) ([]Frame, error) {
	var out []Frame
	if n := s.Len(); n > 0 {
		out = make([]Frame, 0, n)
	}
	for {
		f, err := s.Next()
		if errors.Is(err, ErrEnd) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

// noiseRand gives per-(frame, camera) deterministic Gaussian noise.
type noiseRand struct{ state uint64 }

func newNoiseRand(frame int, cam string) *noiseRand {
	h := uint64(14695981039346656037)
	for _, b := range []byte(cam) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return &noiseRand{state: h ^ uint64(frame)*0x9E3779B97F4A7C15}
}

func (r *noiseRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NormFloat64 returns an approximately standard-normal sample
// (Irwin–Hall sum of 12 uniforms; exact tails don't matter for sensor
// noise).
func (r *noiseRand) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += float64(r.next()>>11) / (1 << 53)
	}
	return s - 6
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
