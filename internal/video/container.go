package video

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/img"
)

// Raw video container: a minimal seekless stream format for persisting
// rendered footage (the paper's acquisition platform stores recordings
// for later analysis). Layout, all little-endian:
//
//	magic   [4]byte  "DIEV"
//	version uint16   (1)
//	width   uint16
//	height  uint16
//	fpsMilli uint32  (fps × 1000)
//	count   uint32   frame count
//	frames  count × (camLen uint8, camName [camLen]byte,
//	                 timeNanos int64, pixels [w*h]byte, crc uint32)
//
// Each frame carries a CRC-32 of its pixel payload so corrupted tails
// are detected on read — the same defensive posture the metadata
// repository takes with its segment log.

var containerMagic = [4]byte{'D', 'I', 'E', 'V'}

const containerVersion = 1

// Container codec errors.
var (
	ErrBadContainer = errors.New("video: bad container")
	ErrCorruptFrame = errors.New("video: corrupt frame payload")
)

// WriteContainer encodes frames to w. All frames must share one size.
func WriteContainer(w io.Writer, fps float64, frames []Frame) error {
	if len(frames) == 0 {
		return fmt.Errorf("video: nothing to write: %w", ErrBadContainer)
	}
	fw := bufio.NewWriter(w)
	w0, h0 := frames[0].Pixels.W, frames[0].Pixels.H
	if _, err := fw.Write(containerMagic[:]); err != nil {
		return fmt.Errorf("video: writing magic: %w", err)
	}
	hdr := []any{
		uint16(containerVersion), uint16(w0), uint16(h0),
		uint32(fps * 1000), uint32(len(frames)),
	}
	for _, v := range hdr {
		if err := binary.Write(fw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("video: writing header: %w", err)
		}
	}
	for i, f := range frames {
		if f.Pixels.W != w0 || f.Pixels.H != h0 {
			return fmt.Errorf("video: frame %d size %dx%d != %dx%d: %w",
				i, f.Pixels.W, f.Pixels.H, w0, h0, ErrBadContainer)
		}
		name := []byte(f.Camera)
		if len(name) > 255 {
			name = name[:255]
		}
		if err := fw.WriteByte(uint8(len(name))); err != nil {
			return fmt.Errorf("video: frame %d: %w", i, err)
		}
		if _, err := fw.Write(name); err != nil {
			return fmt.Errorf("video: frame %d: %w", i, err)
		}
		if err := binary.Write(fw, binary.LittleEndian, f.Time.Nanoseconds()); err != nil {
			return fmt.Errorf("video: frame %d: %w", i, err)
		}
		if _, err := fw.Write(f.Pixels.Pix); err != nil {
			return fmt.Errorf("video: frame %d: %w", i, err)
		}
		crc := crc32.ChecksumIEEE(f.Pixels.Pix)
		if err := binary.Write(fw, binary.LittleEndian, crc); err != nil {
			return fmt.Errorf("video: frame %d crc: %w", i, err)
		}
	}
	if err := fw.Flush(); err != nil {
		return fmt.Errorf("video: flushing container: %w", err)
	}
	return nil
}

// ReadContainer decodes a container, returning the frames and the fps.
func ReadContainer(r io.Reader) ([]Frame, float64, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("video: reading magic: %w", err)
	}
	if magic != containerMagic {
		return nil, 0, fmt.Errorf("video: magic %q: %w", magic, ErrBadContainer)
	}
	var version, w0, h0 uint16
	var fpsMilli, count uint32
	for _, p := range []any{&version, &w0, &h0, &fpsMilli, &count} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, 0, fmt.Errorf("video: reading header: %w", err)
		}
	}
	if version != containerVersion {
		return nil, 0, fmt.Errorf("video: version %d: %w", version, ErrBadContainer)
	}
	if w0 == 0 || h0 == 0 {
		return nil, 0, fmt.Errorf("video: zero dimensions: %w", ErrBadContainer)
	}
	frames := make([]Frame, 0, count)
	for i := 0; i < int(count); i++ {
		nameLen, err := br.ReadByte()
		if err != nil {
			return frames, 0, fmt.Errorf("video: frame %d name: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return frames, 0, fmt.Errorf("video: frame %d name: %w", i, err)
		}
		var nanos int64
		if err := binary.Read(br, binary.LittleEndian, &nanos); err != nil {
			return frames, 0, fmt.Errorf("video: frame %d time: %w", i, err)
		}
		pix := make([]uint8, int(w0)*int(h0))
		if _, err := io.ReadFull(br, pix); err != nil {
			return frames, 0, fmt.Errorf("video: frame %d pixels: %w", i, err)
		}
		var crc uint32
		if err := binary.Read(br, binary.LittleEndian, &crc); err != nil {
			return frames, 0, fmt.Errorf("video: frame %d crc: %w", i, err)
		}
		if crc32.ChecksumIEEE(pix) != crc {
			return frames, 0, fmt.Errorf("video: frame %d: %w", i, ErrCorruptFrame)
		}
		g, err := img.FromPix(int(w0), int(h0), pix)
		if err != nil {
			return frames, 0, fmt.Errorf("video: frame %d: %w", i, err)
		}
		frames = append(frames, Frame{
			Index:  i,
			Time:   time.Duration(nanos),
			Camera: string(name),
			Pixels: g,
		})
	}
	return frames, float64(fpsMilli) / 1000, nil
}
