package video

import (
	"errors"
	"testing"

	"repro/internal/camera"
	"repro/internal/img"
	"repro/internal/scene"
)

func protoSim(t testing.TB) *scene.Simulator {
	t.Helper()
	s, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func protoRig(t testing.TB) *camera.Rig {
	t.Helper()
	r, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRenderDeterministic(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	r := NewRenderer(sim, rig.Cameras[0], RenderOptions{NoiseSigma: 2, LightDrift: 5})
	a := r.Render(100)
	b := r.Render(100)
	for i := range a.Pixels.Pix {
		if a.Pixels.Pix[i] != b.Pixels.Pix[i] {
			t.Fatal("same frame rendered differently")
		}
	}
}

func TestRenderHasFacesAtProjectedPositions(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	cam := rig.Cameras[0]
	r := NewRenderer(sim, cam, RenderOptions{}) // no noise
	f := r.Render(250)
	fs := sim.FrameState(250)
	found := 0
	for _, p := range fs.Persons {
		px, err := cam.Project(p.Head.Position)
		if err != nil || !cam.InFrame(px) {
			continue
		}
		// The face tone should appear at (or near) the projected head.
		got := f.Pixels.At(int(px.X), int(px.Y))
		if got >= p.FaceTone-40 && got <= p.FaceTone+40 {
			found++
		}
	}
	if found < 3 {
		t.Errorf("only %d faces found at projected positions", found)
	}
}

func TestRenderBackgroundAndTable(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	r := NewRenderer(sim, rig.Cameras[0], RenderOptions{})
	f := r.Render(0)
	// Top corner: wall background.
	if got := f.Pixels.At(2, 2); got != 45 {
		t.Errorf("background = %d, want 45", got)
	}
	// Frame must contain some table-tone pixels.
	hist := f.Pixels.Hist()
	if hist[95] == 0 {
		t.Error("no table pixels rendered")
	}
}

func TestRenderNoiseChangesPixelsAcrossFrames(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	r := NewRenderer(sim, rig.Cameras[0], RenderOptions{NoiseSigma: 3})
	a := r.Render(0).Pixels
	b := r.Render(1).Pixels
	if img.MeanAbsDiff(a, b) == 0 {
		t.Error("consecutive noisy frames should differ")
	}
}

func TestSourceStreamsAll(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	src := NewSource(NewRenderer(sim, rig.Cameras[0], RenderOptions{}))
	if src.Len() != 610 {
		t.Fatalf("len = %d, want 610", src.Len())
	}
	n := 0
	for {
		f, err := src.Next()
		if errors.Is(err, ErrEnd) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Index != n {
			t.Fatalf("frame %d at position %d", f.Index, n)
		}
		n++
		if n > 610 {
			t.Fatal("source overran")
		}
	}
	if n != 610 {
		t.Errorf("streamed %d frames", n)
	}
}

func TestSourceRange(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	r := NewRenderer(sim, rig.Cameras[0], RenderOptions{})
	src, err := NewSourceRange(r, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 50 {
		t.Errorf("collected %d frames, want 50", len(fs))
	}
	if _, err := NewSourceRange(r, 500, 100); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := NewSourceRange(r, 0, 10000); err == nil {
		t.Error("overlong range should fail")
	}
}

func TestCaptureAllCameras(t *testing.T) {
	sim := protoSim(t)
	rig := protoRig(t)
	srcs := Capture(sim, rig, RenderOptions{})
	if len(srcs) != 4 {
		t.Fatalf("capture gave %d sources, want 4", len(srcs))
	}
	// Same frame index from different cameras: same timestamp,
	// different camera names (synchronized capture).
	f0, err := srcs[0].Next()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := srcs[1].Next()
	if err != nil {
		t.Fatal(err)
	}
	if f0.Time != f1.Time {
		t.Error("synchronized cameras must share timestamps")
	}
	if f0.Camera == f1.Camera {
		t.Error("sources should identify their cameras")
	}
}
