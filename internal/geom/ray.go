package geom

import "math"

// Ray is a half-line x = Origin + d·Dir for d ≥ 0 (paper Eq. 4). Dir need
// not be unit length; intersection distances are reported in units of
// ‖Dir‖.
type Ray struct {
	Origin Vec3
	Dir    Vec3
}

// NewRay constructs a ray.
func NewRay(origin, dir Vec3) Ray { return Ray{Origin: origin, Dir: dir} }

// At returns the point at parameter d along the ray.
func (r Ray) At(d float64) Vec3 { return r.Origin.Add(r.Dir.Scale(d)) }

// Transformed returns the ray expressed in another frame via tr (rotating
// the direction and transforming the origin), as in paper Eq. 2.
func (r Ray) Transformed(tr Transform) Ray {
	return Ray{Origin: tr.ApplyPoint(r.Origin), Dir: tr.ApplyDir(r.Dir)}
}

// Sphere is the head model of paper Eq. 3: ‖x − C‖² = R².
type Sphere struct {
	C Vec3    // center (head position)
	R float64 // radius (head radius, metres)
}

// NewSphere constructs a sphere.
func NewSphere(c Vec3, r float64) Sphere { return Sphere{C: c, R: r} }

// Contains reports whether p lies inside or on the sphere.
func (s Sphere) Contains(p Vec3) bool { return p.Dist(s.C) <= s.R+Epsilon }

// SphereHit is the result of a ray–sphere intersection test.
type SphereHit struct {
	// Hit is true when the ray's supporting line crosses the sphere with
	// positive discriminant (the paper's w ∈ ℝ⁺ condition) and at least
	// one intersection lies on the forward half of the ray.
	Hit bool
	// D1, D2 are the two intersection parameters along the ray (D1 ≤ D2),
	// valid only when the discriminant is non-negative.
	D1, D2 float64
	// W is the discriminant of paper Eq. 5; Hit requires W > 0.
	W float64
}

// IntersectSphere solves paper Eq. 5: substitute the line equation (Eq. 4)
// into the sphere equation (Eq. 3) and solve the quadratic for d:
//
//	d = (−(V·(O−C)) ± √w) / ‖V‖²
//	w = (V·(O−C))² − ‖V‖²·(‖O−C‖² − r²)
//
// where O is the ray origin, V the ray direction, C the sphere centre and
// r its radius. The paper declares a hit when w ∈ ℝ⁺ (two crossing
// points); tangency (w = 0) and misses (w < 0) are not eye contact. We
// additionally require the intersection to lie forward along the gaze ray
// (d ≥ 0) — a person does not look backwards out of their skull.
func (r Ray) IntersectSphere(s Sphere) SphereHit {
	oc := r.Origin.Sub(s.C)
	v2 := r.Dir.NormSq()
	if v2 < Epsilon*Epsilon {
		return SphereHit{W: -1}
	}
	b := r.Dir.Dot(oc)
	w := b*b - v2*(oc.NormSq()-s.R*s.R)
	if w <= 0 {
		return SphereHit{W: w}
	}
	sq := math.Sqrt(w)
	d1 := (-b - sq) / v2
	d2 := (-b + sq) / v2
	hit := d2 >= 0 // at least the far intersection is in front
	return SphereHit{Hit: hit, D1: d1, D2: d2, W: w}
}

// DistanceToPoint returns the shortest distance from point p to the
// forward half of the ray (used for angular diagnostics in gaze tests).
func (r Ray) DistanceToPoint(p Vec3) float64 {
	u := r.Dir.Unit()
	if u.IsZero() {
		return r.Origin.Dist(p)
	}
	w := p.Sub(r.Origin)
	d := w.Dot(u)
	if d < 0 {
		return r.Origin.Dist(p)
	}
	return r.Origin.Add(u.Scale(d)).Sub(p).Norm()
}

// AngularOffset returns the angle (radians) between the ray direction and
// the direction from the ray origin to p. Useful for noise-sweep
// experiments: eye contact at tolerance θ means AngularOffset ≤ θ.
func (r Ray) AngularOffset(p Vec3) float64 {
	return r.Dir.AngleTo(p.Sub(r.Origin))
}

// Plane is an infinite plane through Point with unit Normal, used for
// table-surface and floor tests in the scene simulator.
type Plane struct {
	Point  Vec3
	Normal Vec3
}

// IntersectPlane returns the ray parameter d where the ray crosses the
// plane, and whether such a forward crossing exists.
func (r Ray) IntersectPlane(pl Plane) (float64, bool) {
	denom := pl.Normal.Dot(r.Dir)
	if math.Abs(denom) < Epsilon {
		return 0, false
	}
	d := pl.Normal.Dot(pl.Point.Sub(r.Origin)) / denom
	if d < 0 {
		return 0, false
	}
	return d, true
}
