package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Basics(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, -5, 6)
	if got := a.Add(b); got != V3(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V3(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := V3(1, 0, 0)
	b := V3(0, 1, 0)
	if got := a.Cross(b); !got.ApproxEq(V3(0, 0, 1), Epsilon) {
		t.Errorf("x cross y = %v, want z", got)
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Bound inputs: enormous magnitudes only test float overflow,
		// not the algebra.
		a := V3(bound(ax), bound(ay), bound(az))
		b = V3(bound(bx), bound(by), bound(bz))
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.NormSq()) * (1 + b.NormSq())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestVec3UnitNorm(t *testing.T) {
	v := V3(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	u := v.Unit()
	if math.Abs(u.Norm()-1) > Epsilon {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if !Zero3.Unit().IsZero() {
		t.Error("zero Unit should stay zero")
	}
}

func TestVec3AngleTo(t *testing.T) {
	if got := V3(1, 0, 0).AngleTo(V3(0, 1, 0)); math.Abs(got-math.Pi/2) > Epsilon {
		t.Errorf("angle = %v, want π/2", got)
	}
	if got := V3(1, 0, 0).AngleTo(V3(-2, 0, 0)); math.Abs(got-math.Pi) > Epsilon {
		t.Errorf("angle = %v, want π", got)
	}
	if got := V3(1, 1, 1).AngleTo(V3(2, 2, 2)); got > 1e-7 {
		t.Errorf("parallel angle = %v, want 0", got)
	}
	if got := Zero3.AngleTo(V3(1, 0, 0)); got != 0 {
		t.Errorf("zero angle = %v", got)
	}
}

func TestVec3ProjectOnto(t *testing.T) {
	p := V3(3, 4, 0).ProjectOnto(V3(1, 0, 0))
	if !p.ApproxEq(V3(3, 0, 0), Epsilon) {
		t.Errorf("project = %v", p)
	}
	if !V3(1, 2, 3).ProjectOnto(Zero3).IsZero() {
		t.Error("projection onto zero should be zero")
	}
}

func TestVec3Lerp(t *testing.T) {
	a, b := V3(0, 0, 0), V3(10, -10, 2)
	if got := a.Lerp(b, 0); !got.ApproxEq(a, Epsilon) {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !got.ApproxEq(b, Epsilon) {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.ApproxEq(V3(5, -5, 1), Epsilon) {
		t.Errorf("lerp .5 = %v", got)
	}
}

func TestVec2Basics(t *testing.T) {
	a := V2(3, 4)
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	if got := a.Unit().Norm(); math.Abs(got-1) > Epsilon {
		t.Errorf("unit norm = %v", got)
	}
	if got := a.Add(V2(1, 1)); got != V2(4, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(V2(1, 1)); got != V2(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(V2(2, 0)); got != 6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Dist(V2(0, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if !V2(0, 0).Unit().ApproxEq(V2(0, 0), Epsilon) {
		t.Error("zero Unit should stay zero")
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{-180, -15, 0, 45, 90, 360} {
		if got := Rad2Deg(Deg2Rad(d)); math.Abs(got-d) > 1e-9 {
			t.Errorf("round trip %v = %v", d, got)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

// quickCfg returns a small deterministic config for property tests.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200}
}

// bound maps an arbitrary float (possibly ±Inf/NaN) into [-100, 100] so
// property tests exercise algebra rather than float overflow.
func bound(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 100)
}
