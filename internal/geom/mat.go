package geom

import (
	"fmt"
	"math"
)

// Mat3 is a 3×3 matrix in row-major order, used for rotations and general
// linear maps on Vec3.
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// NewMat3 builds a matrix from rows.
func NewMat3(r0, r1, r2 Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{r0.X, r0.Y, r0.Z},
		{r1.X, r1.Y, r1.Z},
		{r2.X, r2.Y, r2.Z},
	}}
}

// Mat3FromCols builds a matrix from column vectors.
func Mat3FromCols(c0, c1, c2 Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{c0.X, c1.X, c2.X},
		{c0.Y, c1.Y, c2.Y},
		{c0.Z, c1.Z, c2.Z},
	}}
}

// Row returns row i as a Vec3.
func (m Mat3) Row(i int) Vec3 { return Vec3{m.M[i][0], m.M[i][1], m.M[i][2]} }

// Col returns column j as a Vec3.
func (m Mat3) Col(j int) Vec3 { return Vec3{m.M[0][j], m.M[1][j], m.M[2][j]} }

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m.M[i][k] * n.M[k][j]
			}
			out.M[i][j] = s
		}
	}
	return out
}

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z,
		Y: m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z,
		Z: m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z,
	}
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = m.M[j][i]
		}
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	a := m.M
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

// Inverse returns m⁻¹ and true, or the identity and false when m is
// singular (|det| < Epsilon).
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < Epsilon {
		return Identity3(), false
	}
	a := m.M
	inv := Mat3{}
	inv.M[0][0] = (a[1][1]*a[2][2] - a[1][2]*a[2][1]) / d
	inv.M[0][1] = (a[0][2]*a[2][1] - a[0][1]*a[2][2]) / d
	inv.M[0][2] = (a[0][1]*a[1][2] - a[0][2]*a[1][1]) / d
	inv.M[1][0] = (a[1][2]*a[2][0] - a[1][0]*a[2][2]) / d
	inv.M[1][1] = (a[0][0]*a[2][2] - a[0][2]*a[2][0]) / d
	inv.M[1][2] = (a[0][2]*a[1][0] - a[0][0]*a[1][2]) / d
	inv.M[2][0] = (a[1][0]*a[2][1] - a[1][1]*a[2][0]) / d
	inv.M[2][1] = (a[0][1]*a[2][0] - a[0][0]*a[2][1]) / d
	inv.M[2][2] = (a[0][0]*a[1][1] - a[0][1]*a[1][0]) / d
	return inv, true
}

// ApproxEq reports element-wise agreement within tol.
func (m Mat3) ApproxEq(n Mat3, tol float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(m.M[i][j]-n.M[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// IsRotation reports whether m is a proper rotation matrix: orthonormal
// with determinant +1, within tol.
func (m Mat3) IsRotation(tol float64) bool {
	if math.Abs(m.Det()-1) > tol {
		return false
	}
	mt := m.Transpose().Mul(m)
	return mt.ApproxEq(Identity3(), tol)
}

// String renders the matrix over three lines.
func (m Mat3) String() string {
	return fmt.Sprintf("[%7.3f %7.3f %7.3f]\n[%7.3f %7.3f %7.3f]\n[%7.3f %7.3f %7.3f]",
		m.M[0][0], m.M[0][1], m.M[0][2],
		m.M[1][0], m.M[1][1], m.M[1][2],
		m.M[2][0], m.M[2][1], m.M[2][2])
}

// RotX returns the rotation by angle a (radians) about the X axis.
func RotX(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{M: [3][3]float64{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}}
}

// RotY returns the rotation by angle a about the Y axis.
func RotY(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{M: [3][3]float64{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}}
}

// RotZ returns the rotation by angle a about the Z axis.
func RotZ(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{M: [3][3]float64{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}}
}

// EulerZYX builds a rotation from yaw (about Z), pitch (about Y), and roll
// (about X), applied in Z·Y·X order — the convention used for camera and
// head poses throughout DiEvent.
func EulerZYX(yaw, pitch, roll float64) Mat3 {
	return RotZ(yaw).Mul(RotY(pitch)).Mul(RotX(roll))
}

// ToEulerZYX decomposes a rotation into (yaw, pitch, roll) matching
// EulerZYX. At gimbal lock (|pitch| = π/2) roll is fixed to 0.
func (m Mat3) ToEulerZYX() (yaw, pitch, roll float64) {
	// m = Rz(yaw)·Ry(pitch)·Rx(roll)
	sp := -m.M[2][0]
	sp = Clamp(sp, -1, 1)
	pitch = math.Asin(sp)
	if math.Abs(sp) > 1-1e-12 {
		// Gimbal lock: only yaw±roll observable; fix roll = 0.
		yaw = math.Atan2(-m.M[0][1], m.M[1][1])
		roll = 0
		return yaw, pitch, roll
	}
	yaw = math.Atan2(m.M[1][0], m.M[0][0])
	roll = math.Atan2(m.M[2][1], m.M[2][2])
	return yaw, pitch, roll
}

// AxisAngle builds the rotation of angle a about the (normalised) axis.
// A zero axis yields the identity.
func AxisAngle(axis Vec3, a float64) Mat3 {
	u := axis.Unit()
	if u.IsZero() {
		return Identity3()
	}
	c, s := math.Cos(a), math.Sin(a)
	t := 1 - c
	x, y, z := u.X, u.Y, u.Z
	return Mat3{M: [3][3]float64{
		{t*x*x + c, t*x*y - s*z, t*x*z + s*y},
		{t*x*y + s*z, t*y*y + c, t*y*z - s*x},
		{t*x*z - s*y, t*y*z + s*x, t*z*z + c},
	}}
}

// RotationBetween returns a rotation taking unit direction a to unit
// direction b. Antiparallel inputs rotate π about an arbitrary orthogonal
// axis.
func RotationBetween(a, b Vec3) Mat3 {
	ua, ub := a.Unit(), b.Unit()
	if ua.IsZero() || ub.IsZero() {
		return Identity3()
	}
	d := Clamp(ua.Dot(ub), -1, 1)
	if d > 1-1e-12 {
		return Identity3()
	}
	if d < -1+1e-12 {
		// Pick any axis orthogonal to a.
		axis := ua.Cross(V3(1, 0, 0))
		if axis.Norm() < 1e-6 {
			axis = ua.Cross(V3(0, 1, 0))
		}
		return AxisAngle(axis, math.Pi)
	}
	axis := ua.Cross(ub)
	return AxisAngle(axis, math.Acos(d))
}
