package geom

import (
	"fmt"
	"math"
)

// Quat is a unit quaternion w + xi + yj + zk representing a 3-D rotation.
// Quaternions are used for smooth head-pose interpolation in the scene
// simulator; rotation matrices remain the interchange format.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the quaternion rotating by angle a about axis.
// A zero axis yields the identity.
func QuatFromAxisAngle(axis Vec3, a float64) Quat {
	u := axis.Unit()
	if u.IsZero() {
		return QuatIdentity()
	}
	s := math.Sin(a / 2)
	return Quat{W: math.Cos(a / 2), X: u.X * s, Y: u.Y * s, Z: u.Z * s}
}

// QuatFromMat converts a rotation matrix to a quaternion (Shepperd's
// method, numerically stable for all rotations).
func QuatFromMat(m Mat3) Quat {
	a := m.M
	tr := a[0][0] + a[1][1] + a[2][2]
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{
			W: s / 4,
			X: (a[2][1] - a[1][2]) / s,
			Y: (a[0][2] - a[2][0]) / s,
			Z: (a[1][0] - a[0][1]) / s,
		}
	case a[0][0] > a[1][1] && a[0][0] > a[2][2]:
		s := math.Sqrt(1+a[0][0]-a[1][1]-a[2][2]) * 2
		q = Quat{
			W: (a[2][1] - a[1][2]) / s,
			X: s / 4,
			Y: (a[0][1] + a[1][0]) / s,
			Z: (a[0][2] + a[2][0]) / s,
		}
	case a[1][1] > a[2][2]:
		s := math.Sqrt(1+a[1][1]-a[0][0]-a[2][2]) * 2
		q = Quat{
			W: (a[0][2] - a[2][0]) / s,
			X: (a[0][1] + a[1][0]) / s,
			Y: s / 4,
			Z: (a[1][2] + a[2][1]) / s,
		}
	default:
		s := math.Sqrt(1+a[2][2]-a[0][0]-a[1][1]) * 2
		q = Quat{
			W: (a[1][0] - a[0][1]) / s,
			X: (a[0][2] + a[2][0]) / s,
			Y: (a[1][2] + a[2][1]) / s,
			Z: s / 4,
		}
	}
	return q.Normalize()
}

// Mat converts q to a rotation matrix.
func (q Quat) Mat() Mat3 {
	q = q.Normalize()
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{M: [3][3]float64{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}}
}

// Mul returns the Hamilton product q·p (apply p, then q).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize scales q to unit norm; a zero quaternion becomes the identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n < Epsilon {
		return QuatIdentity()
	}
	return Quat{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation q to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q · (0,v) · q⁻¹, expanded for efficiency.
	u := Vec3{q.X, q.Y, q.Z}
	s := q.W
	return u.Scale(2 * u.Dot(v)).
		Add(v.Scale(s*s - u.Dot(u))).
		Add(u.Cross(v).Scale(2 * s))
}

// Slerp spherically interpolates from q to p by t ∈ [0,1], taking the
// shortest arc.
func (q Quat) Slerp(p Quat, t float64) Quat {
	q, p = q.Normalize(), p.Normalize()
	dot := q.W*p.W + q.X*p.X + q.Y*p.Y + q.Z*p.Z
	if dot < 0 { // take the short way around
		p = Quat{-p.W, -p.X, -p.Y, -p.Z}
		dot = -dot
	}
	if dot > 1-1e-9 {
		// Nearly identical: fall back to normalised lerp.
		return Quat{
			W: q.W + t*(p.W-q.W),
			X: q.X + t*(p.X-q.X),
			Y: q.Y + t*(p.Y-q.Y),
			Z: q.Z + t*(p.Z-q.Z),
		}.Normalize()
	}
	theta := math.Acos(Clamp(dot, -1, 1))
	sinT := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sinT
	b := math.Sin(t*theta) / sinT
	return Quat{
		W: a*q.W + b*p.W,
		X: a*q.X + b*p.X,
		Y: a*q.Y + b*p.Y,
		Z: a*q.Z + b*p.Z,
	}.Normalize()
}

// AngleTo returns the rotation angle (radians, in [0, π]) between q and p.
func (q Quat) AngleTo(p Quat) float64 {
	d := q.Conj().Mul(p).Normalize()
	return 2 * math.Acos(Clamp(math.Abs(d.W), 0, 1))
}

// String renders the quaternion components.
func (q Quat) String() string {
	return fmt.Sprintf("quat(w=%.4f, x=%.4f, y=%.4f, z=%.4f)", q.W, q.X, q.Y, q.Z)
}
