package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randTransform(rng *rand.Rand) Transform {
	return NewTransform(randRotation(rng), V3(
		rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5))
}

func TestTransformIdentity(t *testing.T) {
	id := IdentityTransform()
	p := V3(1, 2, 3)
	if !id.ApplyPoint(p).ApproxEq(p, Epsilon) {
		t.Error("identity moved a point")
	}
	if !id.ApplyDir(p).ApproxEq(p, Epsilon) {
		t.Error("identity rotated a direction")
	}
}

func TestTransformInverseProperty(t *testing.T) {
	// iTj.Compose(jTi) == identity — the invariant behind frame-graph
	// bidirectional edges.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tr := randTransform(rng)
		if !tr.Compose(tr.Inverse()).ApproxEq(IdentityTransform(), 1e-9) {
			t.Fatal("T·T⁻¹ != I")
		}
		if !tr.Inverse().Compose(tr).ApproxEq(IdentityTransform(), 1e-9) {
			t.Fatal("T⁻¹·T != I")
		}
	}
}

func TestTransformComposeMatchesSequentialApply(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		a, b := randTransform(rng), randTransform(rng)
		p := V3(rng.Float64(), rng.Float64(), rng.Float64())
		seq := a.ApplyPoint(b.ApplyPoint(p))
		comp := a.Compose(b).ApplyPoint(p)
		if !seq.ApproxEq(comp, 1e-9) {
			t.Fatal("compose != sequential application")
		}
	}
}

func TestTransformPreservesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		tr := randTransform(rng)
		p, q := V3(rng.Float64(), rng.Float64(), rng.Float64()), V3(rng.Float64()*3, -rng.Float64(), 2)
		d0 := p.Dist(q)
		d1 := tr.ApplyPoint(p).Dist(tr.ApplyPoint(q))
		if math.Abs(d0-d1) > 1e-9 {
			t.Fatal("rigid transform changed a distance")
		}
	}
}

func TestApplyDirIgnoresTranslation(t *testing.T) {
	tr := NewTransform(Identity3(), V3(100, 200, 300))
	d := V3(1, 0, 0)
	if !tr.ApplyDir(d).ApproxEq(d, Epsilon) {
		t.Error("direction should not be translated")
	}
	if !tr.ApplyPoint(d).ApproxEq(V3(101, 200, 300), Epsilon) {
		t.Error("point should be translated")
	}
}

func TestPaperEquation2Chain(t *testing.T) {
	// Reproduce the exact chain of paper Eq. 2: ¹Vl = ¹T₂ · ²T₄ · ⁴Vl.
	// F1 = camera 1 (reference), F2 = camera 2, F4 = P2's head w.r.t. F2.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		t12 := randTransform(rng) // ¹T₂
		t24 := randTransform(rng) // ²T₄
		v4 := V3(rng.Float64(), rng.Float64(), rng.Float64()).Unit()

		// Chain via Compose.
		v1 := t12.Compose(t24).ApplyDir(v4)
		// Step-by-step (the paper's reading).
		v2 := t24.ApplyDir(v4)
		v1b := t12.ApplyDir(v2)
		if !v1.ApproxEq(v1b, 1e-9) {
			t.Fatal("Eq. 2 chain mismatch")
		}
	}
}

func TestPoseForwardLeftUpOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		p := Pose{Position: V3(0, 0, 0), Orientation: randRotation(rng)}
		f, l, u := p.Forward(), p.Left(), p.Up()
		if math.Abs(f.Dot(l)) > 1e-9 || math.Abs(f.Dot(u)) > 1e-9 || math.Abs(l.Dot(u)) > 1e-9 {
			t.Fatal("pose axes not orthogonal")
		}
		if !f.Cross(l).ApproxEq(u, 1e-9) {
			t.Fatal("pose axes not right-handed")
		}
	}
}

func TestLookAt(t *testing.T) {
	eye := V3(0, 0, 2.5)
	target := V3(3, 0, 1.2)
	p := LookAt(eye, target)
	want := target.Sub(eye).Unit()
	if !p.Forward().ApproxEq(want, 1e-9) {
		t.Errorf("forward = %v, want %v", p.Forward(), want)
	}
	if !p.Orientation.IsRotation(1e-9) {
		t.Error("LookAt orientation not a rotation")
	}
	// Up should have non-negative world-Z (head kept upright).
	if p.Up().Z < 0 {
		t.Errorf("up = %v points downwards", p.Up())
	}
	// Degenerate: looking at self.
	self := LookAt(eye, eye)
	if !self.Orientation.ApproxEq(Identity3(), Epsilon) {
		t.Error("LookAt(self) should be identity orientation")
	}
	// Straight down — must still return a valid rotation.
	down := LookAt(V3(0, 0, 2), V3(0, 0, 0))
	if !down.Orientation.IsRotation(1e-9) {
		t.Error("LookAt straight down should be a rotation")
	}
}

func TestPoseTransformRoundTrip(t *testing.T) {
	p := LookAt(V3(1, 2, 3), V3(4, 5, 6))
	tr := p.Transform()
	// Local origin maps to the pose position.
	if !tr.ApplyPoint(Zero3).ApproxEq(p.Position, 1e-12) {
		t.Error("local origin should map to pose position")
	}
	// Local +X maps to Forward.
	if !tr.ApplyDir(V3(1, 0, 0)).ApproxEq(p.Forward(), 1e-12) {
		t.Error("local +X should map to Forward")
	}
}

func TestTransformIsRigid(t *testing.T) {
	if !IdentityTransform().IsRigid(Epsilon) {
		t.Error("identity should be rigid")
	}
	bad := NewTransform(Mat3{M: [3][3]float64{{2, 0, 0}, {0, 1, 0}, {0, 0, 1}}}, Zero3)
	if bad.IsRigid(1e-9) {
		t.Error("scaling transform should not be rigid")
	}
}
