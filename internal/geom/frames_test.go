package geom

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestFrameGraphDirectEdge(t *testing.T) {
	g := NewFrameGraph()
	tr := NewTransform(RotZ(0.5), V3(1, 2, 3))
	g.Set("F1", "F2", tr)
	got, err := g.Resolve("F1", "F2")
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(tr, 1e-12) {
		t.Error("direct edge not returned verbatim")
	}
	inv, err := g.Resolve("F2", "F1")
	if err != nil {
		t.Fatal(err)
	}
	if !inv.ApproxEq(tr.Inverse(), 1e-12) {
		t.Error("reverse edge should be the inverse")
	}
}

func TestFrameGraphChain(t *testing.T) {
	// Paper Fig. 6 topology: F1 (camera 1) — F2 (camera 2) — F4 (P2 head).
	rng := rand.New(rand.NewSource(41))
	t12 := randTransform(rng)
	t24 := randTransform(rng)
	g := NewFrameGraph()
	g.Set("F1", "F2", t12)
	g.Set("F2", "F4", t24)

	got, err := g.Resolve("F1", "F4")
	if err != nil {
		t.Fatal(err)
	}
	want := t12.Compose(t24)
	if !got.ApproxEq(want, 1e-9) {
		t.Error("chained resolve != composed transforms (Eq. 2)")
	}
}

func TestFrameGraphSelf(t *testing.T) {
	g := NewFrameGraph()
	g.Set("A", "B", IdentityTransform())
	tr, err := g.Resolve("A", "A")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ApproxEq(IdentityTransform(), Epsilon) {
		t.Error("self-resolve should be identity")
	}
	if _, err := g.Resolve("Z", "Z"); !errors.Is(err, ErrNoPath) {
		t.Error("unknown self frame should error")
	}
}

func TestFrameGraphNoPath(t *testing.T) {
	g := NewFrameGraph()
	g.Set("A", "B", IdentityTransform())
	g.Set("C", "D", IdentityTransform())
	if _, err := g.Resolve("A", "C"); !errors.Is(err, ErrNoPath) {
		t.Errorf("expected ErrNoPath, got %v", err)
	}
	if _, err := g.Resolve("A", "nope"); !errors.Is(err, ErrNoPath) {
		t.Errorf("expected ErrNoPath for unknown frame, got %v", err)
	}
}

func TestFrameGraphCycleConsistency(t *testing.T) {
	// A triangle of consistent transforms must resolve identically along
	// either path.
	rng := rand.New(rand.NewSource(42))
	tab := randTransform(rng)
	tbc := randTransform(rng)
	tac := tab.Compose(tbc)
	g := NewFrameGraph()
	g.Set("A", "B", tab)
	g.Set("B", "C", tbc)
	g.Set("A", "C", tac)
	got, err := g.Resolve("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(tac, 1e-9) {
		t.Error("cycle-consistent graph resolved inconsistently")
	}
}

func TestFrameGraphTransformHelpers(t *testing.T) {
	g := NewFrameGraph()
	// F2 sits 10 along world-X, facing back toward origin (rotated π
	// about Z).
	g.Set("world", "F2", NewTransform(RotZ(3.14159265358979), V3(10, 0, 0)))
	p, err := g.TransformPoint("world", "F2", V3(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ApproxEq(V3(9, 0, 0), 1e-6) {
		t.Errorf("point = %v, want (9,0,0)", p)
	}
	d, err := g.TransformDir("world", "F2", V3(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !d.ApproxEq(V3(-1, 0, 0), 1e-6) {
		t.Errorf("dir = %v, want (-1,0,0)", d)
	}
	r, err := g.TransformRay("world", "F2", NewRay(Zero3, V3(1, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Origin.ApproxEq(V3(10, 0, 0), 1e-6) || !r.Dir.ApproxEq(V3(-1, 0, 0), 1e-6) {
		t.Errorf("ray = %+v", r)
	}
}

func TestFrameGraphFrames(t *testing.T) {
	g := NewFrameGraph()
	g.Set("b", "a", IdentityTransform())
	g.Set("c", "a", IdentityTransform())
	got := g.Frames()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("frames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frames = %v, want %v", got, want)
		}
	}
}

func TestFrameGraphConcurrent(t *testing.T) {
	g := NewFrameGraph()
	g.Set("A", "B", IdentityTransform())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			g.Set("A", "B", NewTransform(RotZ(float64(i)), Zero3))
		}(i)
		go func() {
			defer wg.Done()
			_, _ = g.Resolve("A", "B")
		}()
	}
	wg.Wait()
}

func TestMustResolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustResolve should panic on missing path")
		}
	}()
	NewFrameGraph().MustResolve("x", "y")
}
