// Package geom provides the 3-D geometry substrate for DiEvent: vectors,
// rotation matrices, quaternions, rigid transforms between reference
// frames (the paper's iTj operators, Eq. 1–2), and the ray–sphere
// intersection test used for eye-contact detection (Eq. 3–5).
//
// Conventions: right-handed coordinate system, column vectors, transforms
// compose left to right onto vectors (v' = T * v). Angles are radians
// unless a function name says degrees.
package geom

import (
	"fmt"
	"math"
)

// Epsilon is the default tolerance for approximate float comparisons
// throughout the geometry package.
const Epsilon = 1e-9

// Vec3 is a 3-D vector or point.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Zero3 is the zero vector.
var Zero3 = Vec3{}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns −v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length ‖v‖.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns ‖v‖².
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised to unit length. The zero vector is returned
// unchanged (callers that need to distinguish should test IsZero first).
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n < Epsilon {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// IsZero reports whether every component of v is within Epsilon of zero.
func (v Vec3) IsZero() bool {
	return math.Abs(v.X) < Epsilon && math.Abs(v.Y) < Epsilon && math.Abs(v.Z) < Epsilon
}

// ApproxEq reports whether v and w agree component-wise within tol.
func (v Vec3) ApproxEq(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol && math.Abs(v.Z-w.Z) <= tol
}

// Lerp linearly interpolates from v to w by t in [0,1].
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Add(w.Sub(v).Scale(t))
}

// AngleTo returns the angle between v and w in radians, in [0, π].
// Returns 0 when either vector is (near) zero.
func (v Vec3) AngleTo(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv < Epsilon || nw < Epsilon {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// ProjectOnto returns the projection of v onto w. Returns the zero vector
// when w is (near) zero.
func (v Vec3) ProjectOnto(w Vec3) Vec3 {
	d := w.NormSq()
	if d < Epsilon {
		return Vec3{}
	}
	return w.Scale(v.Dot(w) / d)
}

// String renders v as "(x, y, z)" with three decimals.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// Vec2 is a 2-D vector, used for image-plane coordinates and top-view maps.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v − w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns ‖v‖.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised; the zero vector is returned unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n < Epsilon {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// ApproxEq reports whether v and w agree component-wise within tol.
func (v Vec2) ApproxEq(w Vec2, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol
}

// String renders v as "(x, y)" with three decimals.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
