package geom

import "fmt"

// Transform is a rigid transform (rotation + translation) between two
// reference frames — the paper's iTj operator. For frames Fi and Fj,
// a Transform T = iTj maps coordinates expressed in Fj into Fi:
//
//	iV = iTj · jV            (paper Eq. 1)
//
// Transforms compose by matrix semantics: iTk = iTj.Compose(jTk), exactly
// the chain the paper uses in Eq. 2 (¹Vl = ¹T₂ · ²T₄ · ⁴Vl).
type Transform struct {
	// R is the rotation part (basis of the source frame expressed in the
	// destination frame).
	R Mat3
	// T is the translation part (origin of the source frame expressed in
	// the destination frame).
	T Vec3
}

// IdentityTransform returns the identity rigid transform.
func IdentityTransform() Transform {
	return Transform{R: Identity3()}
}

// NewTransform builds a transform from a rotation and translation.
func NewTransform(r Mat3, t Vec3) Transform { return Transform{R: r, T: t} }

// TransformFromPose builds the transform worldTlocal for an object whose
// local frame sits at position p with orientation r in the world: it maps
// local coordinates to world coordinates.
func TransformFromPose(p Vec3, r Mat3) Transform { return Transform{R: r, T: p} }

// ApplyPoint maps a point from the source frame into the destination
// frame: x' = R·x + T.
func (tr Transform) ApplyPoint(p Vec3) Vec3 {
	return tr.R.MulVec(p).Add(tr.T)
}

// ApplyDir maps a direction (free vector) — rotation only, no translation.
// This is what the paper's Eq. 2 does to gaze vectors.
func (tr Transform) ApplyDir(d Vec3) Vec3 { return tr.R.MulVec(d) }

// Compose returns the composition tr∘o: first apply o, then tr. If
// tr = iTj and o = jTk then the result is iTk.
func (tr Transform) Compose(o Transform) Transform {
	return Transform{
		R: tr.R.Mul(o.R),
		T: tr.R.MulVec(o.T).Add(tr.T),
	}
}

// Inverse returns the transform mapping the opposite way (jTi from iTj).
// Rigid transforms are always invertible: R⁻¹ = Rᵀ.
func (tr Transform) Inverse() Transform {
	rt := tr.R.Transpose()
	return Transform{R: rt, T: rt.MulVec(tr.T).Neg()}
}

// ApproxEq reports whether both rotation and translation agree within tol.
func (tr Transform) ApproxEq(o Transform, tol float64) bool {
	return tr.R.ApproxEq(o.R, tol) && tr.T.ApproxEq(o.T, tol)
}

// IsRigid reports whether the rotation part is a proper rotation within
// tol — transforms read from external data should be validated with this.
func (tr Transform) IsRigid(tol float64) bool { return tr.R.IsRotation(tol) }

// String renders the transform as translation plus ZYX Euler angles in
// degrees, the most readable form for camera/head poses.
func (tr Transform) String() string {
	yaw, pitch, roll := tr.R.ToEulerZYX()
	return fmt.Sprintf("T{t=%v, ypr=(%.1f°, %.1f°, %.1f°)}",
		tr.T, Rad2Deg(yaw), Rad2Deg(pitch), Rad2Deg(roll))
}

// Pose is a named position + orientation in some parent frame. It is the
// unit of head-pose and camera-pose bookkeeping: Pose.Transform() is the
// parentTlocal operator.
type Pose struct {
	// Position of the frame origin in the parent frame.
	Position Vec3
	// Orientation of the frame axes in the parent frame.
	Orientation Mat3
}

// IdentityPose returns a pose at the origin with identity orientation.
func IdentityPose() Pose { return Pose{Orientation: Identity3()} }

// Transform returns the parentTlocal operator for this pose.
func (p Pose) Transform() Transform {
	return TransformFromPose(p.Position, p.Orientation)
}

// Forward returns the local +X axis expressed in the parent frame.
// DiEvent convention: a person or camera "looks along" its local +X.
func (p Pose) Forward() Vec3 { return p.Orientation.Col(0) }

// Left returns the local +Y axis in the parent frame.
func (p Pose) Left() Vec3 { return p.Orientation.Col(1) }

// Up returns the local +Z axis in the parent frame.
func (p Pose) Up() Vec3 { return p.Orientation.Col(2) }

// LookAt returns a pose positioned at eye whose forward (+X) axis points
// at target, with +Z kept as close to world-up (0,0,1) as possible.
func LookAt(eye, target Vec3) Pose {
	fwd := target.Sub(eye).Unit()
	if fwd.IsZero() {
		return Pose{Position: eye, Orientation: Identity3()}
	}
	worldUp := V3(0, 0, 1)
	left := worldUp.Cross(fwd).Unit()
	if left.IsZero() {
		// Looking straight up/down: pick an arbitrary left.
		left = V3(0, 1, 0)
	}
	up := fwd.Cross(left).Unit()
	return Pose{Position: eye, Orientation: Mat3FromCols(fwd, left, up)}
}

// ApproxEq reports approximate pose equality within tol.
func (p Pose) ApproxEq(o Pose, tol float64) bool {
	return p.Position.ApproxEq(o.Position, tol) && p.Orientation.ApproxEq(o.Orientation, tol)
}

// String renders the pose.
func (p Pose) String() string {
	yaw, pitch, roll := p.Orientation.ToEulerZYX()
	return fmt.Sprintf("Pose{p=%v, ypr=(%.1f°, %.1f°, %.1f°)}",
		p.Position, Rad2Deg(yaw), Rad2Deg(pitch), Rad2Deg(roll))
}
