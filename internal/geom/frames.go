package geom

import (
	"fmt"
	"sort"
	"sync"
)

// FrameGraph tracks a set of named reference frames (cameras, heads, the
// world) and the rigid transforms between them, and answers queries of the
// form "give me iTj" by chaining known edges — the bookkeeping behind the
// paper's Eq. 2, where a gaze vector observed by camera 2 is re-expressed
// in camera 1's frame via ¹T₂ · ²T₄.
//
// The graph is safe for concurrent use.
type FrameGraph struct {
	mu    sync.RWMutex
	edges map[string]map[string]Transform // edges[i][j] = iTj
	// cache holds previously resolved (i,j) pairs. Rigs are static
	// during a run, so after warm-up every Resolve is a single map hit
	// instead of an allocating breadth-first search. Set invalidates it.
	cache map[[2]string]Transform
}

// NewFrameGraph returns an empty frame graph.
func NewFrameGraph() *FrameGraph {
	return &FrameGraph{edges: make(map[string]map[string]Transform)}
}

// ErrNoPath is returned (wrapped) when two frames are not connected.
var ErrNoPath = fmt.Errorf("geom: no transform path between frames")

// Set records iTj (and its inverse jTi). Re-setting an edge overwrites it.
func (g *FrameGraph) Set(i, j string, iTj Transform) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setLocked(i, j, iTj)
	g.setLocked(j, i, iTj.Inverse())
	g.cache = nil // any cached path may now be stale
}

func (g *FrameGraph) setLocked(i, j string, t Transform) {
	m, ok := g.edges[i]
	if !ok {
		m = make(map[string]Transform)
		g.edges[i] = m
	}
	m[j] = t
}

// Frames returns the sorted set of frame names known to the graph.
func (g *FrameGraph) Frames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	names := make([]string, 0, len(g.edges))
	for n := range g.edges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve returns iTj, chaining intermediate frames when no direct edge
// exists (breadth-first over recorded edges, so the composition uses the
// fewest hops). It returns a wrapped ErrNoPath when the frames are not
// connected.
func (g *FrameGraph) Resolve(i, j string) (Transform, error) {
	g.mu.RLock()
	if t, ok := g.cache[[2]string{i, j}]; ok {
		g.mu.RUnlock()
		return t, nil
	}
	t, err := g.resolveLocked(i, j)
	g.mu.RUnlock()
	if err != nil {
		return t, err
	}
	g.mu.Lock()
	if g.cache == nil {
		g.cache = make(map[[2]string]Transform)
	}
	g.cache[[2]string{i, j}] = t
	g.mu.Unlock()
	return t, nil
}

func (g *FrameGraph) resolveLocked(i, j string) (Transform, error) {
	if i == j {
		if _, ok := g.edges[i]; !ok {
			return IdentityTransform(), fmt.Errorf("geom: unknown frame %q: %w", i, ErrNoPath)
		}
		return IdentityTransform(), nil
	}
	if _, ok := g.edges[i]; !ok {
		return IdentityTransform(), fmt.Errorf("geom: unknown frame %q: %w", i, ErrNoPath)
	}
	type node struct {
		name string
		t    Transform // iTname accumulated so far
	}
	visited := map[string]bool{i: true}
	queue := []node{{name: i, t: IdentityTransform()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Deterministic order for reproducible compositions.
		next := make([]string, 0, len(g.edges[cur.name]))
		for n := range g.edges[cur.name] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if visited[n] {
				continue
			}
			t := cur.t.Compose(g.edges[cur.name][n]) // iTcur ∘ curTn = iTn
			if n == j {
				return t, nil
			}
			visited[n] = true
			queue = append(queue, node{name: n, t: t})
		}
	}
	return IdentityTransform(), fmt.Errorf("geom: frames %q and %q not connected: %w", i, j, ErrNoPath)
}

// MustResolve is Resolve that panics on error — for statically-known rigs
// in tests and examples.
func (g *FrameGraph) MustResolve(i, j string) Transform {
	t, err := g.Resolve(i, j)
	if err != nil {
		panic(err)
	}
	return t
}

// TransformPoint re-expresses a point given in frame j into frame i.
func (g *FrameGraph) TransformPoint(i, j string, p Vec3) (Vec3, error) {
	t, err := g.Resolve(i, j)
	if err != nil {
		return Vec3{}, err
	}
	return t.ApplyPoint(p), nil
}

// TransformDir re-expresses a direction given in frame j into frame i.
func (g *FrameGraph) TransformDir(i, j string, d Vec3) (Vec3, error) {
	t, err := g.Resolve(i, j)
	if err != nil {
		return Vec3{}, err
	}
	return t.ApplyDir(d), nil
}

// TransformRay re-expresses a ray given in frame j into frame i.
func (g *FrameGraph) TransformRay(i, j string, r Ray) (Ray, error) {
	t, err := g.Resolve(i, j)
	if err != nil {
		return Ray{}, err
	}
	return r.Transformed(t), nil
}
