package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRayAt(t *testing.T) {
	r := NewRay(V3(1, 0, 0), V3(0, 2, 0))
	if !r.At(0.5).ApproxEq(V3(1, 1, 0), Epsilon) {
		t.Errorf("At(0.5) = %v", r.At(0.5))
	}
}

func TestIntersectSphereHeadOn(t *testing.T) {
	// Ray from origin along +X at a unit sphere centred 5 away: hits at 4 and 6.
	r := NewRay(Zero3, V3(1, 0, 0))
	hit := r.IntersectSphere(NewSphere(V3(5, 0, 0), 1))
	if !hit.Hit {
		t.Fatal("expected hit")
	}
	if math.Abs(hit.D1-4) > 1e-9 || math.Abs(hit.D2-6) > 1e-9 {
		t.Errorf("d1,d2 = %v,%v want 4,6", hit.D1, hit.D2)
	}
	if hit.W <= 0 {
		t.Errorf("w = %v, want positive (paper condition)", hit.W)
	}
}

func TestIntersectSphereMiss(t *testing.T) {
	r := NewRay(Zero3, V3(1, 0, 0))
	hit := r.IntersectSphere(NewSphere(V3(5, 3, 0), 1))
	if hit.Hit {
		t.Fatal("should miss")
	}
	if hit.W >= 0 {
		t.Errorf("w = %v, want negative on a miss", hit.W)
	}
}

func TestIntersectSphereTangent(t *testing.T) {
	// Tangent: w == 0 exactly — the paper counts this as NOT looking
	// (requires w ∈ ℝ⁺, i.e. two crossing points).
	r := NewRay(Zero3, V3(1, 0, 0))
	hit := r.IntersectSphere(NewSphere(V3(5, 1, 0), 1))
	if hit.Hit {
		t.Error("tangent should not count as a hit")
	}
	if math.Abs(hit.W) > 1e-9 {
		t.Errorf("w = %v, want 0 at tangency", hit.W)
	}
}

func TestIntersectSphereBehind(t *testing.T) {
	// Sphere entirely behind the ray origin: geometric line crosses, but
	// the forward ray does not.
	r := NewRay(Zero3, V3(1, 0, 0))
	hit := r.IntersectSphere(NewSphere(V3(-5, 0, 0), 1))
	if hit.Hit {
		t.Error("sphere behind the gaze should not be eye contact")
	}
}

func TestIntersectSphereOriginInside(t *testing.T) {
	// Origin inside the sphere: one forward intersection — counts as a hit.
	r := NewRay(Zero3, V3(1, 0, 0))
	hit := r.IntersectSphere(NewSphere(V3(0.1, 0, 0), 1))
	if !hit.Hit {
		t.Error("ray from inside should hit")
	}
	if hit.D1 > 0 {
		t.Errorf("d1 = %v, want negative (entry behind)", hit.D1)
	}
}

func TestIntersectSphereZeroDir(t *testing.T) {
	r := NewRay(Zero3, Zero3)
	if r.IntersectSphere(NewSphere(V3(1, 0, 0), 5)).Hit {
		t.Error("zero-direction ray cannot hit")
	}
}

func TestIntersectSphereScaleInvariance(t *testing.T) {
	// Hit/miss must not depend on the direction's magnitude (paper Eq. 5
	// normalises by ‖V‖²).
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		o := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		d := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		c := V3(rng.NormFloat64()*3, rng.NormFloat64()*3, rng.NormFloat64()*3)
		s := NewSphere(c, 0.5+rng.Float64())
		h1 := NewRay(o, d).IntersectSphere(s)
		h2 := NewRay(o, d.Scale(7.3)).IntersectSphere(s)
		if h1.Hit != h2.Hit {
			t.Fatalf("hit depends on direction scale at iter %d", i)
		}
		if h1.Hit && math.Abs(h1.D1*1-(h2.D1*7.3)) > 1e-6 {
			t.Fatalf("distances should scale inversely with ‖V‖")
		}
	}
}

func TestIntersectSphereInvariantUnderRigidTransform(t *testing.T) {
	// The eye-contact predicate is frame-independent: transforming the
	// ray and sphere by the same rigid transform must not change the
	// outcome. This is the correctness basis for Eq. 2.
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		o := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		d := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		c := V3(rng.NormFloat64()*2, rng.NormFloat64()*2, rng.NormFloat64()*2)
		sph := NewSphere(c, 0.3+rng.Float64())
		tr := randTransform(rng)
		h1 := NewRay(o, d).IntersectSphere(sph)
		h2 := NewRay(o, d).Transformed(tr).
			IntersectSphere(NewSphere(tr.ApplyPoint(c), sph.R))
		if h1.Hit != h2.Hit {
			t.Fatalf("eye-contact predicate not rigid-invariant at iter %d", i)
		}
	}
}

func TestSphereContains(t *testing.T) {
	s := NewSphere(V3(1, 1, 1), 2)
	if !s.Contains(V3(1, 1, 2.9)) || s.Contains(V3(1, 1, 3.1)) {
		t.Error("Contains misbehaves")
	}
}

func TestDistanceToPoint(t *testing.T) {
	r := NewRay(Zero3, V3(1, 0, 0))
	if got := r.DistanceToPoint(V3(5, 3, 0)); math.Abs(got-3) > 1e-9 {
		t.Errorf("distance = %v, want 3", got)
	}
	// Point behind the origin: distance to origin.
	if got := r.DistanceToPoint(V3(-4, 3, 0)); math.Abs(got-5) > 1e-9 {
		t.Errorf("behind distance = %v, want 5", got)
	}
}

func TestAngularOffset(t *testing.T) {
	r := NewRay(Zero3, V3(1, 0, 0))
	if got := r.AngularOffset(V3(1, 1, 0)); math.Abs(got-math.Pi/4) > 1e-9 {
		t.Errorf("offset = %v, want π/4", got)
	}
}

func TestIntersectPlane(t *testing.T) {
	floor := Plane{Point: Zero3, Normal: V3(0, 0, 1)}
	r := NewRay(V3(0, 0, 2), V3(1, 0, -1))
	d, ok := r.IntersectPlane(floor)
	if !ok {
		t.Fatal("expected plane hit")
	}
	if !r.At(d).ApproxEq(V3(2, 0, 0), 1e-9) {
		t.Errorf("hit at %v", r.At(d))
	}
	// Parallel ray misses.
	if _, ok := NewRay(V3(0, 0, 2), V3(1, 0, 0)).IntersectPlane(floor); ok {
		t.Error("parallel ray should miss plane")
	}
	// Backward crossing rejected.
	if _, ok := NewRay(V3(0, 0, 2), V3(0, 0, 1)).IntersectPlane(floor); ok {
		t.Error("backward crossing should be rejected")
	}
}

func TestHitSymmetryProperty(t *testing.T) {
	// Property: if a ray from A towards B's centre is tested against the
	// sphere at B, it always hits (for any radius > 0 and A outside B).
	f := func(ax, ay, az, bx, by, bz float64, r8 uint8) bool {
		a := V3(bound(ax), bound(ay), bound(az))
		b := V3(bound(bx), bound(by), bound(bz))
		r := 0.05 + float64(r8%100)/200.0
		if a.Dist(b) <= r+1e-6 {
			return true // skip degenerate: origin inside target sphere
		}
		ray := NewRay(a, b.Sub(a))
		return ray.IntersectSphere(NewSphere(b, r)).Hit
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
