package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuatIdentity(t *testing.T) {
	q := QuatIdentity()
	v := V3(1, 2, 3)
	if !q.Rotate(v).ApproxEq(v, Epsilon) {
		t.Error("identity quat moved a vector")
	}
	if !q.Mat().ApproxEq(Identity3(), Epsilon) {
		t.Error("identity quat matrix should be I")
	}
}

func TestQuatMatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		m := randRotation(rng)
		q := QuatFromMat(m)
		if !q.Mat().ApproxEq(m, 1e-9) {
			t.Fatalf("quat<->mat round trip failed at iter %d", i)
		}
	}
}

func TestQuatRotateMatchesMat(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 200; i++ {
		m := randRotation(rng)
		q := QuatFromMat(m)
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if !q.Rotate(v).ApproxEq(m.MulVec(v), 1e-9) {
			t.Fatalf("quat rotate != matrix rotate at iter %d", i)
		}
	}
}

func TestQuatMulComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 100; i++ {
		a, b := randRotation(rng), randRotation(rng)
		qa, qb := QuatFromMat(a), QuatFromMat(b)
		if !qa.Mul(qb).Mat().ApproxEq(a.Mul(b), 1e-9) {
			t.Fatalf("quat composition mismatch at iter %d", i)
		}
	}
}

func TestQuatConjInverse(t *testing.T) {
	q := QuatFromAxisAngle(V3(1, 2, 3), 1.1)
	id := q.Mul(q.Conj()).Normalize()
	if math.Abs(math.Abs(id.W)-1) > 1e-9 {
		t.Errorf("q·q* should be identity, got %v", id)
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	a := QuatFromAxisAngle(V3(0, 0, 1), 0)
	b := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	if got := a.Slerp(b, 0); got.AngleTo(a) > 1e-9 {
		t.Errorf("slerp(0) = %v", got)
	}
	if got := a.Slerp(b, 1); got.AngleTo(b) > 1e-9 {
		t.Errorf("slerp(1) = %v", got)
	}
	// Midpoint is 45° about Z.
	mid := a.Slerp(b, 0.5)
	want := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/4)
	if mid.AngleTo(want) > 1e-9 {
		t.Errorf("slerp midpoint off by %v rad", mid.AngleTo(want))
	}
}

func TestQuatSlerpShortestArc(t *testing.T) {
	// q and −q are the same rotation; slerp must take the short way.
	a := QuatFromAxisAngle(V3(0, 0, 1), 0.1)
	b := QuatFromAxisAngle(V3(0, 0, 1), 0.2)
	bneg := Quat{-b.W, -b.X, -b.Y, -b.Z}
	mid := a.Slerp(bneg, 0.5)
	want := QuatFromAxisAngle(V3(0, 0, 1), 0.15)
	if mid.AngleTo(want) > 1e-6 {
		t.Errorf("slerp did not take shortest arc, off by %v", mid.AngleTo(want))
	}
}

func TestQuatSlerpNearlyIdentical(t *testing.T) {
	a := QuatFromAxisAngle(V3(0, 0, 1), 0.1)
	b := QuatFromAxisAngle(V3(0, 0, 1), 0.1+1e-12)
	mid := a.Slerp(b, 0.5)
	if mid.AngleTo(a) > 1e-6 {
		t.Error("slerp of nearly identical quats should stay put")
	}
}

func TestQuatNormalizeZero(t *testing.T) {
	var z Quat
	if z.Normalize() != QuatIdentity() {
		t.Error("zero quat should normalise to identity")
	}
}

func TestQuatAngleTo(t *testing.T) {
	a := QuatIdentity()
	b := QuatFromAxisAngle(V3(0, 1, 0), 0.7)
	if got := a.AngleTo(b); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("AngleTo = %v, want 0.7", got)
	}
}
