package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randRotation(rng *rand.Rand) Mat3 {
	return EulerZYX(
		rng.Float64()*2*math.Pi-math.Pi,
		rng.Float64()*math.Pi-math.Pi/2,
		rng.Float64()*2*math.Pi-math.Pi,
	)
}

func TestIdentity3(t *testing.T) {
	id := Identity3()
	v := V3(1, 2, 3)
	if !id.MulVec(v).ApproxEq(v, Epsilon) {
		t.Error("identity should not move vectors")
	}
	if id.Det() != 1 {
		t.Errorf("det = %v", id.Det())
	}
}

func TestMat3MulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b, c := randRotation(rng), randRotation(rng), randRotation(rng)
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		if !l.ApproxEq(r, 1e-9) {
			t.Fatalf("not associative at iter %d", i)
		}
	}
}

func TestRotationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		r := randRotation(rng)
		if !r.IsRotation(1e-9) {
			t.Fatalf("EulerZYX produced a non-rotation: det=%v", r.Det())
		}
		inv, ok := r.Inverse()
		if !ok {
			t.Fatal("rotation should be invertible")
		}
		if !inv.ApproxEq(r.Transpose(), 1e-9) {
			t.Fatal("inverse of rotation should equal transpose")
		}
		if !r.Mul(inv).ApproxEq(Identity3(), 1e-9) {
			t.Fatal("R·R⁻¹ should be identity")
		}
	}
}

func TestSingularInverse(t *testing.T) {
	var z Mat3 // zero matrix
	if _, ok := z.Inverse(); ok {
		t.Error("zero matrix should not invert")
	}
}

func TestRotXYZ(t *testing.T) {
	// RotZ(90°) maps +X to +Y.
	if got := RotZ(math.Pi / 2).MulVec(V3(1, 0, 0)); !got.ApproxEq(V3(0, 1, 0), 1e-12) {
		t.Errorf("RotZ(90°)·x = %v", got)
	}
	// RotX(90°) maps +Y to +Z.
	if got := RotX(math.Pi / 2).MulVec(V3(0, 1, 0)); !got.ApproxEq(V3(0, 0, 1), 1e-12) {
		t.Errorf("RotX(90°)·y = %v", got)
	}
	// RotY(90°) maps +Z to +X.
	if got := RotY(math.Pi / 2).MulVec(V3(0, 0, 1)); !got.ApproxEq(V3(1, 0, 0), 1e-12) {
		t.Errorf("RotY(90°)·z = %v", got)
	}
}

func TestEulerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		yaw := rng.Float64()*2*math.Pi - math.Pi
		pitch := rng.Float64()*math.Pi*0.98 - math.Pi/2*0.98 // avoid gimbal lock
		roll := rng.Float64()*2*math.Pi - math.Pi
		m := EulerZYX(yaw, pitch, roll)
		y2, p2, r2 := m.ToEulerZYX()
		m2 := EulerZYX(y2, p2, r2)
		if !m.ApproxEq(m2, 1e-9) {
			t.Fatalf("euler round trip failed: (%v,%v,%v) -> (%v,%v,%v)", yaw, pitch, roll, y2, p2, r2)
		}
	}
}

func TestEulerGimbalLock(t *testing.T) {
	m := EulerZYX(0.7, math.Pi/2, 0.3)
	y, p, r := m.ToEulerZYX()
	m2 := EulerZYX(y, p, r)
	if !m.ApproxEq(m2, 1e-6) {
		t.Errorf("gimbal-lock decomposition should still reproduce the rotation")
	}
}

func TestAxisAngle(t *testing.T) {
	// 90° about Z equals RotZ(90°).
	if !AxisAngle(V3(0, 0, 1), math.Pi/2).ApproxEq(RotZ(math.Pi/2), 1e-12) {
		t.Error("AxisAngle(z, 90°) != RotZ(90°)")
	}
	// Zero axis gives identity.
	if !AxisAngle(Zero3, 1).ApproxEq(Identity3(), Epsilon) {
		t.Error("zero axis should give identity")
	}
}

func TestRotationBetween(t *testing.T) {
	cases := []struct{ a, b Vec3 }{
		{V3(1, 0, 0), V3(0, 1, 0)},
		{V3(1, 2, 3), V3(-3, 1, 2)},
		{V3(1, 0, 0), V3(1, 0, 0)},   // identical
		{V3(1, 0, 0), V3(-1, 0, 0)},  // antiparallel
		{V3(0, 0, 2), V3(0, 0, -99)}, // antiparallel, non-unit
	}
	for _, c := range cases {
		r := RotationBetween(c.a, c.b)
		if !r.IsRotation(1e-9) {
			t.Errorf("RotationBetween(%v,%v) not a rotation", c.a, c.b)
		}
		got := r.MulVec(c.a.Unit())
		if !got.ApproxEq(c.b.Unit(), 1e-9) {
			t.Errorf("RotationBetween(%v,%v) maps a to %v, want %v", c.a, c.b, got, c.b.Unit())
		}
	}
}

func TestMat3RowsCols(t *testing.T) {
	m := NewMat3(V3(1, 2, 3), V3(4, 5, 6), V3(7, 8, 9))
	if m.Row(1) != V3(4, 5, 6) {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
	if m.Col(2) != V3(3, 6, 9) {
		t.Errorf("Col(2) = %v", m.Col(2))
	}
	if got := Mat3FromCols(m.Col(0), m.Col(1), m.Col(2)); !got.ApproxEq(m, 0) {
		t.Error("Mat3FromCols should rebuild the matrix")
	}
}

func TestDetTransposeInvariant(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i, j float64) bool {
		m := Mat3{M: [3][3]float64{
			{bound(a), bound(b), bound(c)},
			{bound(d), bound(e), bound(g)},
			{bound(h), bound(i), bound(j)},
		}}
		return math.Abs(m.Det()-m.Transpose().Det()) <= 1e-6*(1+math.Abs(m.Det()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
