package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Sizes: []int{4}}); !errors.Is(err, ErrBadConfig) {
		t.Error("single layer should fail")
	}
	if _, err := New(Config{Sizes: []int{4, 0, 2}}); !errors.Is(err, ErrBadConfig) {
		t.Error("zero width should fail")
	}
	n, err := New(Config{Sizes: []int{4, 8, 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.NumParams(); got != 4*8+8+8*3+3 {
		t.Errorf("params = %d", got)
	}
}

func TestPredictShapeAndSimplex(t *testing.T) {
	n, _ := New(Config{Sizes: []int{3, 5, 4}, Seed: 2})
	p, err := n.Predict([]float64{0.1, -0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("output size %d", len(p))
	}
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %v outside [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if _, err := n.Predict([]float64{1}); !errors.Is(err, ErrBadInput) {
		t.Error("wrong input size should fail")
	}
}

func TestSoftmaxStability(t *testing.T) {
	z := []float64{1000, 1001, 999}
	softmaxInPlace(z)
	var sum float64
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflow")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
	if !(z[1] > z[0] && z[0] > z[2]) {
		t.Error("softmax ordering wrong")
	}
}

// TestGradientCheck verifies analytic backprop gradients against central
// finite differences — the canonical correctness test for a hand-written
// network.
func TestGradientCheck(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh, Sigmoid} {
		n, _ := New(Config{Sizes: []int{3, 4, 3}, Hidden: act, Seed: 3})
		x := []float64{0.3, -0.7, 0.5}
		label := 1

		g := n.newGrads()
		if _, err := n.backward(x, label, g); err != nil {
			t.Fatal(err)
		}

		const h = 1e-6
		lossAt := func() float64 {
			p, err := n.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			return -math.Log(math.Max(p[label], 1e-15))
		}
		checked := 0
		for l := range n.w {
			for i := range n.w[l] {
				old := n.w[l][i]
				n.w[l][i] = old + h
				lp := lossAt()
				n.w[l][i] = old - h
				lm := lossAt()
				n.w[l][i] = old
				num := (lp - lm) / (2 * h)
				ana := g.w[l][i]
				if diff := math.Abs(num - ana); diff > 1e-4*(1+math.Abs(num)) {
					t.Errorf("%v w[%d][%d]: numeric %v vs analytic %v", act, l, i, num, ana)
				}
				checked++
			}
			for i := range n.b[l] {
				old := n.b[l][i]
				n.b[l][i] = old + h
				lp := lossAt()
				n.b[l][i] = old - h
				lm := lossAt()
				n.b[l][i] = old
				num := (lp - lm) / (2 * h)
				if diff := math.Abs(num - g.b[l][i]); diff > 1e-4*(1+math.Abs(num)) {
					t.Errorf("%v b[%d][%d]: numeric %v vs analytic %v", act, l, i, num, g.b[l][i])
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no parameters checked")
		}
	}
}

// xorData builds the XOR problem, the classic nonlinear sanity check.
func xorData() ([][]float64, []int) {
	samples := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	return samples, labels
}

func TestTrainLearnsXOR(t *testing.T) {
	for _, opt := range []Optimizer{SGD, Adam} {
		n, _ := New(Config{Sizes: []int{2, 8, 2}, Hidden: Tanh, Seed: 4})
		samples, labels := xorData()
		hist, err := n.Train(samples, labels, TrainOptions{
			Epochs: 800, BatchSize: 4, Optimizer: opt, Seed: 5, L2: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := n.Evaluate(samples, labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc != 1 {
			t.Errorf("%v: XOR accuracy = %v, want 1 (final loss %v)", opt, acc, hist[len(hist)-1])
		}
		if hist[len(hist)-1] >= hist[0] {
			t.Errorf("%v: loss did not decrease: %v -> %v", opt, hist[0], hist[len(hist)-1])
		}
	}
}

func TestTrainGaussianBlobs(t *testing.T) {
	// Three well-separated Gaussian blobs: must reach ≥95% accuracy.
	rng := rand.New(rand.NewSource(6))
	centers := [][]float64{{0, 0}, {4, 4}, {-4, 4}}
	var samples [][]float64
	var labels []int
	for c, ctr := range centers {
		for i := 0; i < 100; i++ {
			samples = append(samples, []float64{
				ctr[0] + rng.NormFloat64()*0.6,
				ctr[1] + rng.NormFloat64()*0.6,
			})
			labels = append(labels, c)
		}
	}
	n, _ := New(Config{Sizes: []int{2, 16, 3}, Hidden: ReLU, Seed: 7})
	if _, err := n.Train(samples, labels, TrainOptions{Epochs: 60, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	acc, _ := n.Evaluate(samples, labels)
	if acc < 0.95 {
		t.Errorf("blob accuracy = %v", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	n, _ := New(Config{Sizes: []int{2, 2}, Seed: 1})
	if _, err := n.Train(nil, nil, TrainOptions{}); !errors.Is(err, ErrBadData) {
		t.Error("empty data should fail")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{0, 1}, TrainOptions{}); !errors.Is(err, ErrBadData) {
		t.Error("length mismatch should fail")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{9}, TrainOptions{Epochs: 1}); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, err := n.Evaluate(nil, nil); !errors.Is(err, ErrBadData) {
		t.Error("empty evaluate should fail")
	}
	if _, err := n.Loss([][]float64{{1, 2}}, []int{7}); err == nil {
		t.Error("loss with bad label should fail")
	}
}

func TestEarlyStopping(t *testing.T) {
	n, _ := New(Config{Sizes: []int{2, 4, 2}, Seed: 9})
	samples, labels := xorData()
	epochs := 0
	hist, err := n.Train(samples, labels, TrainOptions{
		Epochs: 100,
		OnEpoch: func(e int, loss float64) bool {
			epochs++
			return e < 4 // stop after 5 epochs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5 || epochs != 5 {
		t.Errorf("ran %d epochs (history %d), want 5", epochs, len(hist))
	}
}

func TestTrainDeterministic(t *testing.T) {
	run := func() []float64 {
		n, _ := New(Config{Sizes: []int{2, 6, 2}, Seed: 10})
		samples, labels := xorData()
		h, err := n.Train(samples, labels, TrainOptions{Epochs: 30, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic under fixed seeds")
		}
	}
}
