// Package nn implements the feed-forward neural network DiEvent uses as
// its emotion classifier (paper §II-C: "neural network as a classifier").
// It is a from-scratch multilayer perceptron: dense layers, ReLU/tanh/
// sigmoid activations, a softmax + cross-entropy head, SGD with momentum
// and Adam optimisers, minibatch training, and binary serialisation for
// shipping trained models.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Activation selects the hidden-layer nonlinearity.
type Activation uint8

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
	Sigmoid
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	}
	return fmt.Sprintf("activation(%d)", uint8(a))
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Tanh:
		return math.Tanh(x)
	default: // Sigmoid
		return 1 / (1 + math.Exp(-x))
	}
}

// derivFromOut computes the activation derivative from the *activated*
// output value (all three supported activations allow this).
func (a Activation) derivFromOut(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default: // Sigmoid
		return y * (1 - y)
	}
}

// Config describes a network.
type Config struct {
	// Sizes lists layer widths, input first, output (class count) last.
	// Must have ≥ 2 entries, all positive.
	Sizes []int
	// Hidden is the hidden-layer activation (output is always softmax).
	Hidden Activation
	// Seed drives weight initialisation.
	Seed int64
}

// Network is a trained or trainable MLP. The output layer applies
// softmax; training minimises cross-entropy. Predict and Classify are
// safe for concurrent callers — forward passes borrow activation
// scratch from a pool instead of mutating shared state.
type Network struct {
	sizes  []int
	hidden Activation
	// w[l] is the (sizes[l+1] × sizes[l]) weight matrix, row-major;
	// b[l] the bias vector of layer l+1.
	w, b [][]float64

	// actPool recycles per-call activation sets so the inference hot
	// path stops allocating a full [][]float64 per Classify; batchPool
	// does the same for PredictBatch/ClassifyBatch activation matrices.
	actPool   sync.Pool
	batchPool sync.Pool
}

// Package errors.
var (
	ErrBadConfig = errors.New("nn: bad configuration")
	ErrBadInput  = errors.New("nn: input size mismatch")
)

// New initialises a network with He/Xavier-scaled random weights.
func New(cfg Config) (*Network, error) {
	if len(cfg.Sizes) < 2 {
		return nil, fmt.Errorf("nn: need ≥2 layer sizes, got %d: %w", len(cfg.Sizes), ErrBadConfig)
	}
	for _, s := range cfg.Sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: layer size %d: %w", s, ErrBadConfig)
		}
	}
	n := &Network{
		sizes:  append([]int(nil), cfg.Sizes...),
		hidden: cfg.Hidden,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for l := 0; l+1 < len(cfg.Sizes); l++ {
		in, out := cfg.Sizes[l], cfg.Sizes[l+1]
		// He initialisation for ReLU, Xavier otherwise.
		scale := math.Sqrt(2 / float64(in))
		if cfg.Hidden != ReLU {
			scale = math.Sqrt(1 / float64(in))
		}
		w := make([]float64, in*out)
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		n.w = append(n.w, w)
		n.b = append(n.b, make([]float64, out))
	}
	return n, nil
}

// Sizes returns the layer widths.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// NumParams returns the total parameter count.
func (n *Network) NumParams() int {
	t := 0
	for l := range n.w {
		t += len(n.w[l]) + len(n.b[l])
	}
	return t
}

// actSet boxes a pooled activation set behind a stable pointer so
// sync.Pool round-trips don't re-box the slice header (which would cost
// one allocation per forward pass).
type actSet struct{ a [][]float64 }

// acquireActs returns a pooled activation set: a[0] is left nil for the
// caller's input, a[1..] are preallocated to the layer widths.
func (n *Network) acquireActs() *actSet {
	if v := n.actPool.Get(); v != nil {
		return v.(*actSet)
	}
	s := &actSet{a: make([][]float64, len(n.sizes))}
	for l := 1; l < len(n.sizes); l++ {
		s.a[l] = make([]float64, n.sizes[l])
	}
	return s
}

// releaseActs returns an activation set to the pool, dropping the input
// reference so pooled scratch never pins caller data.
func (n *Network) releaseActs(s *actSet) {
	s.a[0] = nil
	n.actPool.Put(s)
}

// forward runs the network into a pooled activation set, returning every
// layer's activated output (a[0] is the input itself, a[last] the
// softmax probabilities). The caller must releaseActs the result.
func (n *Network) forward(x []float64) (*actSet, error) {
	if len(x) != n.sizes[0] {
		return nil, fmt.Errorf("nn: input %d, want %d: %w", len(x), n.sizes[0], ErrBadInput)
	}
	s := n.acquireActs()
	acts := s.a
	acts[0] = x
	for l := 0; l+1 < len(n.sizes); l++ {
		in, out := n.sizes[l], n.sizes[l+1]
		a := acts[l+1]
		for j := 0; j < out; j++ {
			s := n.b[l][j]
			row := n.w[l][j*in : (j+1)*in]
			for i, xi := range acts[l] {
				s += row[i] * xi
			}
			a[j] = s
		}
		if l+2 < len(n.sizes) { // hidden layer
			for j := range a {
				a[j] = n.hidden.apply(a[j])
			}
		} else { // output: softmax
			softmaxInPlace(a)
		}
	}
	return s, nil
}

// Predict returns the softmax class probabilities for x.
func (n *Network) Predict(x []float64) ([]float64, error) {
	s, err := n.forward(x)
	if err != nil {
		return nil, err
	}
	out := s.a[len(s.a)-1]
	cp := make([]float64, len(out))
	copy(cp, out)
	n.releaseActs(s)
	return cp, nil
}

// Classify returns the argmax class and its probability. It allocates
// nothing once the scratch pool is warm.
func (n *Network) Classify(x []float64) (int, float64, error) {
	s, err := n.forward(x)
	if err != nil {
		return 0, 0, err
	}
	p := s.a[len(s.a)-1]
	best, bp := 0, p[0]
	for i, v := range p[1:] {
		if v > bp {
			best, bp = i+1, v
		}
	}
	n.releaseActs(s)
	return best, bp, nil
}

// softmaxInPlace converts logits to probabilities, stably.
func softmaxInPlace(z []float64) {
	maxz := z[0]
	for _, v := range z[1:] {
		if v > maxz {
			maxz = v
		}
	}
	var sum float64
	for i, v := range z {
		z[i] = math.Exp(v - maxz)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
}

// grads holds per-layer parameter gradients with the same shapes as the
// network's weights.
type grads struct {
	w, b [][]float64
}

func (n *Network) newGrads() *grads {
	g := &grads{}
	for l := range n.w {
		g.w = append(g.w, make([]float64, len(n.w[l])))
		g.b = append(g.b, make([]float64, len(n.b[l])))
	}
	return g
}

// backward accumulates gradients of the cross-entropy loss for one
// sample into g and returns the sample's loss.
func (n *Network) backward(x []float64, label int, g *grads) (float64, error) {
	s, err := n.forward(x)
	if err != nil {
		return 0, err
	}
	defer n.releaseActs(s)
	acts := s.a
	L := len(n.sizes) - 1 // number of weight layers
	out := acts[L]
	if label < 0 || label >= len(out) {
		return 0, fmt.Errorf("nn: label %d outside [0,%d): %w", label, len(out), ErrBadInput)
	}
	loss := -math.Log(math.Max(out[label], 1e-15))

	// Softmax + cross-entropy delta: p − onehot.
	delta := make([]float64, len(out))
	copy(delta, out)
	delta[label] -= 1

	for l := L - 1; l >= 0; l-- {
		in := n.sizes[l]
		prev := acts[l]
		// Parameter gradients.
		for j, dj := range delta {
			row := g.w[l][j*in : (j+1)*in]
			for i, pi := range prev {
				row[i] += dj * pi
			}
			g.b[l][j] += dj
		}
		if l == 0 {
			break
		}
		// Propagate delta to the previous (hidden) layer.
		nd := make([]float64, in)
		for i := 0; i < in; i++ {
			var s float64
			for j, dj := range delta {
				s += n.w[l][j*in+i] * dj
			}
			nd[i] = s * n.hidden.derivFromOut(prev[i])
		}
		delta = nd
	}
	return loss, nil
}
