package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary model format, little-endian:
//
//	magic   [4]byte "DINN"
//	version uint16 (1)
//	hidden  uint8
//	nLayers uint16
//	sizes   nLayers × uint32
//	params  float64 stream: for each layer, weights then biases
//	crc     uint32 over the raw param bytes
//
// The CRC catches truncated or bit-rotted model files at load time.

var modelMagic = [4]byte{'D', 'I', 'N', 'N'}

const modelVersion = 1

// ErrBadModel reports an unreadable model stream.
var ErrBadModel = errors.New("nn: bad model data")

// Save writes the network to w.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return fmt.Errorf("nn: writing magic: %w", err)
	}
	hdr := []any{uint16(modelVersion), uint8(n.hidden), uint16(len(n.sizes))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("nn: writing header: %w", err)
		}
	}
	for _, s := range n.sizes {
		if err := binary.Write(bw, binary.LittleEndian, uint32(s)); err != nil {
			return fmt.Errorf("nn: writing sizes: %w", err)
		}
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	buf := make([]byte, 8)
	writeF := func(xs []float64) error {
		for _, x := range xs {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if _, err := mw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}
	for l := range n.w {
		if err := writeF(n.w[l]); err != nil {
			return fmt.Errorf("nn: writing layer %d: %w", l, err)
		}
		if err := writeF(n.b[l]); err != nil {
			return fmt.Errorf("nn: writing layer %d bias: %w", l, err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("nn: writing crc: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("nn: flushing model: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: magic %q: %w", magic, ErrBadModel)
	}
	var version uint16
	var hidden uint8
	var nLayers uint16
	for _, p := range []any{&version, &hidden, &nLayers} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("nn: reading header: %w", err)
		}
	}
	if version != modelVersion {
		return nil, fmt.Errorf("nn: version %d: %w", version, ErrBadModel)
	}
	if nLayers < 2 || nLayers > 64 {
		return nil, fmt.Errorf("nn: %d layers: %w", nLayers, ErrBadModel)
	}
	sizes := make([]int, nLayers)
	for i := range sizes {
		var s uint32
		if err := binary.Read(br, binary.LittleEndian, &s); err != nil {
			return nil, fmt.Errorf("nn: reading sizes: %w", err)
		}
		if s == 0 || s > 1<<20 {
			return nil, fmt.Errorf("nn: layer size %d: %w", s, ErrBadModel)
		}
		sizes[i] = int(s)
	}
	n := &Network{sizes: sizes, hidden: Activation(hidden)}
	crc := crc32.NewIEEE()
	buf := make([]byte, 8)
	readF := func(count int) ([]float64, error) {
		out := make([]float64, count)
		for i := range out {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			crc.Write(buf)
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		return out, nil
	}
	for l := 0; l+1 < len(sizes); l++ {
		w, err := readF(sizes[l] * sizes[l+1])
		if err != nil {
			return nil, fmt.Errorf("nn: reading layer %d: %w", l, err)
		}
		b, err := readF(sizes[l+1])
		if err != nil {
			return nil, fmt.Errorf("nn: reading layer %d bias: %w", l, err)
		}
		n.w = append(n.w, w)
		n.b = append(n.b, b)
	}
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("nn: reading crc: %w", err)
	}
	if crc.Sum32() != want {
		return nil, fmt.Errorf("nn: parameter checksum mismatch: %w", ErrBadModel)
	}
	return n, nil
}
