package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Optimizer selects the parameter-update rule.
type Optimizer uint8

// Supported optimizers. Adam is the zero value and therefore the
// default for TrainOptions.
const (
	// Adam is adaptive moment estimation.
	Adam Optimizer = iota
	// SGD is stochastic gradient descent with momentum.
	SGD
)

// TrainOptions configure a training run.
type TrainOptions struct {
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// BatchSize is the minibatch size (default 32).
	BatchSize int
	// LearningRate defaults to 0.01 for SGD, 0.001 for Adam.
	LearningRate float64
	// Momentum applies to SGD only (default 0.9).
	Momentum float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// Optimizer defaults to Adam.
	Optimizer Optimizer
	// Seed drives minibatch shuffling.
	Seed int64
	// OnEpoch, when non-nil, observes (epoch, meanLoss) after each
	// epoch; returning false stops training early.
	OnEpoch func(epoch int, loss float64) bool
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.LearningRate == 0 {
		if o.Optimizer == Adam {
			o.LearningRate = 0.001
		} else {
			o.LearningRate = 0.01
		}
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
	return o
}

// ErrBadData reports inconsistent training data.
var ErrBadData = errors.New("nn: bad training data")

// Train fits the network to (samples, labels) and returns the mean loss
// per epoch. It mutates the network in place.
func (n *Network) Train(samples [][]float64, labels []int, opt TrainOptions) ([]float64, error) {
	if len(samples) == 0 || len(samples) != len(labels) {
		return nil, fmt.Errorf("nn: %d samples vs %d labels: %w", len(samples), len(labels), ErrBadData)
	}
	opt = opt.withDefaults()

	// Optimizer state.
	vel := n.newGrads() // SGD momentum / Adam first moment
	sq := n.newGrads()  // Adam second moment
	adamT := 0

	rng := rand.New(rand.NewSource(opt.Seed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}

	history := make([]float64, 0, opt.Epochs)
	for e := 0; e < opt.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += opt.BatchSize {
			end := start + opt.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g := n.newGrads()
			for _, idx := range order[start:end] {
				loss, err := n.backward(samples[idx], labels[idx], g)
				if err != nil {
					return history, fmt.Errorf("nn: sample %d: %w", idx, err)
				}
				epochLoss += loss
			}
			scale := 1 / float64(end-start)
			adamT++
			n.applyUpdate(g, vel, sq, scale, adamT, opt)
		}
		mean := epochLoss / float64(len(order))
		history = append(history, mean)
		if opt.OnEpoch != nil && !opt.OnEpoch(e, mean) {
			break
		}
	}
	return history, nil
}

// applyUpdate applies one optimizer step from accumulated batch
// gradients (scaled by 1/batch).
func (n *Network) applyUpdate(g, vel, sq *grads, scale float64, t int, opt TrainOptions) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	update := func(w, gw, vw, sw []float64) {
		for i := range w {
			grad := gw[i]*scale + opt.L2*w[i]
			switch opt.Optimizer {
			case Adam:
				vw[i] = beta1*vw[i] + (1-beta1)*grad
				sw[i] = beta2*sw[i] + (1-beta2)*grad*grad
				mHat := vw[i] / (1 - math.Pow(beta1, float64(t)))
				vHat := sw[i] / (1 - math.Pow(beta2, float64(t)))
				w[i] -= opt.LearningRate * mHat / (math.Sqrt(vHat) + eps)
			default: // SGD with momentum
				vw[i] = opt.Momentum*vw[i] - opt.LearningRate*grad
				w[i] += vw[i]
			}
		}
	}
	for l := range n.w {
		update(n.w[l], g.w[l], vel.w[l], sq.w[l])
		update(n.b[l], g.b[l], vel.b[l], sq.b[l])
	}
}

// Evaluate returns classification accuracy on a labelled set.
func (n *Network) Evaluate(samples [][]float64, labels []int) (float64, error) {
	if len(samples) == 0 || len(samples) != len(labels) {
		return 0, fmt.Errorf("nn: %d samples vs %d labels: %w", len(samples), len(labels), ErrBadData)
	}
	correct := 0
	for i, x := range samples {
		c, _, err := n.Classify(x)
		if err != nil {
			return 0, err
		}
		if c == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// Loss returns the mean cross-entropy over a labelled set without
// updating parameters.
func (n *Network) Loss(samples [][]float64, labels []int) (float64, error) {
	if len(samples) == 0 || len(samples) != len(labels) {
		return 0, fmt.Errorf("nn: %d samples vs %d labels: %w", len(samples), len(labels), ErrBadData)
	}
	var total float64
	for i, x := range samples {
		p, err := n.Predict(x)
		if err != nil {
			return 0, err
		}
		if labels[i] < 0 || labels[i] >= len(p) {
			return 0, fmt.Errorf("nn: label %d out of range: %w", labels[i], ErrBadData)
		}
		total += -math.Log(math.Max(p[labels[i]], 1e-15))
	}
	return total / float64(len(samples)), nil
}
