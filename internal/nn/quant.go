package nn

import (
	"fmt"
	"math"
	"sync"
)

// Quantized is an int8 inference view of a trained Network: weights
// are quantized once, symmetrically, with one scale per output neuron
// (scale_j = max|w_j|/127, so every row uses the full int8 range);
// inputs are quantized per sample per layer with one symmetric scale
// (max|x|/127); accumulation is exact int32 (≤ 2¹⁴ terms of |p| ≤
// 127², far from overflow); and each neuron dequantizes back to float
// as acc·scale_j·scale_x + bias before the float activation and
// softmax. Confidences therefore drift slightly from the float
// network, but argmax decisions are stable for comfortably-separated
// classes — callers gate a Quantized behind an oracle-equivalence
// check on real data before trusting it (see
// emotion.Classifier.EnableQuantized).
//
// A Quantized is immutable after construction and safe for concurrent
// use.
type Quantized struct {
	sizes  []int
	hidden Activation
	// wq[l] is the int8 weight matrix of layer l, row-major like
	// Network.w; ws[l][j] is row j's dequantization scale.
	wq [][]int8
	ws [][]float64
	b  [][]float64

	pool sync.Pool // *quantActs
}

// quantActs is the pooled per-call scratch of a quantized forward
// pass: float activations per layer and the int8 input image of the
// current layer for the whole batch.
type quantActs struct {
	f   [][]float64 // f[l]: batch × sizes[l], sample-major, l ≥ 1
	xq  []int8      // batch × sizes[l] quantized inputs of the running layer
	xs1 [][]float64 // one-sample batch header for Classify
}

// Quantize builds the int8 view of the network. The original network
// is unchanged and remains the accuracy oracle.
func (n *Network) Quantize() *Quantized {
	q := &Quantized{
		sizes:  append([]int(nil), n.sizes...),
		hidden: n.hidden,
	}
	for l := range n.w {
		in, out := n.sizes[l], n.sizes[l+1]
		wq := make([]int8, in*out)
		ws := make([]float64, out)
		for j := 0; j < out; j++ {
			row := n.w[l][j*in : (j+1)*in]
			var amax float64
			for _, v := range row {
				if a := math.Abs(v); a > amax {
					amax = a
				}
			}
			if amax == 0 {
				ws[j] = 1 // all-zero row: any scale dequantizes to 0
				continue
			}
			s := amax / 127
			ws[j] = s
			for i, v := range row {
				wq[j*in+i] = int8(math.Round(v / s))
			}
		}
		q.wq = append(q.wq, wq)
		q.ws = append(q.ws, ws)
		q.b = append(q.b, append([]float64(nil), n.b[l]...))
	}
	return q
}

// Sizes returns the layer widths.
func (q *Quantized) Sizes() []int { return append([]int(nil), q.sizes...) }

// Classify returns the argmax class and its probability under int8
// inference. Safe for concurrent callers; allocation-free once the
// scratch pool is warm.
func (q *Quantized) Classify(x []float64) (int, float64, error) {
	sc := q.acquire(1)
	defer q.release(sc)
	sc.xs1 = append(sc.xs1[:0], x)
	var cls int
	var conf float64
	err := q.forward(sc, sc.xs1, func(_ int, p []float64) {
		cls, conf = argmax(p)
	})
	if err != nil {
		return 0, 0, err
	}
	return cls, conf, nil
}

// ClassifyBatch returns the argmax class and probability for every
// input, appending into cls and conf (pass nil to allocate, retained
// buffers to reuse). Per-sample results are identical to Classify —
// the batched loops reorder only across samples, and every per-sample
// accumulation is exact integer arithmetic dequantized in one fixed
// order.
func (q *Quantized) ClassifyBatch(xs [][]float64, cls []int, conf []float64) ([]int, []float64, error) {
	cls, conf = cls[:0], conf[:0]
	sc := q.acquire(len(xs))
	defer q.release(sc)
	err := q.forward(sc, xs, func(_ int, p []float64) {
		c, p1 := argmax(p)
		cls = append(cls, c)
		conf = append(conf, p1)
	})
	if err != nil {
		return nil, nil, err
	}
	return cls, conf, nil
}

func argmax(p []float64) (int, float64) {
	best, bp := 0, p[0]
	for i, v := range p[1:] {
		if v > bp {
			best, bp = i+1, v
		}
	}
	return best, bp
}

func (q *Quantized) acquire(batch int) *quantActs {
	sc, _ := q.pool.Get().(*quantActs)
	if sc == nil {
		sc = &quantActs{f: make([][]float64, len(q.sizes))}
	}
	maxw := 0
	for l := 1; l < len(q.sizes); l++ {
		need := batch * q.sizes[l]
		if cap(sc.f[l]) < need {
			sc.f[l] = make([]float64, need)
		}
		sc.f[l] = sc.f[l][:need]
		if q.sizes[l-1] > maxw {
			maxw = q.sizes[l-1]
		}
	}
	if need := batch * maxw; cap(sc.xq) < need {
		sc.xq = make([]int8, need)
	}
	return sc
}

func (q *Quantized) release(sc *quantActs) {
	sc.xs1 = sc.xs1[:0] // don't pin caller inputs
	q.pool.Put(sc)
}

// forward runs the int8 batched forward pass, invoking emit with each
// sample's softmax row (valid only during the call) in sample order.
func (q *Quantized) forward(sc *quantActs, xs [][]float64, emit func(s int, probs []float64)) error {
	if len(xs) == 0 {
		return nil
	}
	for s, x := range xs {
		if len(x) != q.sizes[0] {
			return fmt.Errorf("nn: batch sample %d: input %d, want %d: %w", s, len(x), q.sizes[0], ErrBadInput)
		}
	}
	batch := len(xs)
	// sxs[s] is the current layer's per-sample input scale.
	sxs := make([]float64, 0, 16)
	for l := 0; l+1 < len(q.sizes); l++ {
		in, out := q.sizes[l], q.sizes[l+1]
		// Quantize this layer's inputs for the whole batch.
		sxs = sxs[:0]
		xq := sc.xq[:batch*in]
		for s := 0; s < batch; s++ {
			x := xs[s]
			if l > 0 {
				x = sc.f[l][s*in : (s+1)*in]
			}
			sxs = append(sxs, quantizeRow(x, xq[s*in:(s+1)*in]))
		}
		cur := sc.f[l+1]
		for j := 0; j < out; j++ {
			row := q.wq[l][j*in : (j+1)*in]
			wsj := q.ws[l][j]
			bj := q.b[l][j]
			for s := 0; s < batch; s++ {
				acc := dotI8(row, xq[s*in:(s+1)*in])
				cur[s*out+j] = float64(acc)*wsj*sxs[s] + bj
			}
		}
		if l+2 < len(q.sizes) {
			for i, v := range cur {
				cur[i] = q.hidden.apply(v)
			}
		} else {
			for s := 0; s < batch; s++ {
				softmaxInPlace(cur[s*out : (s+1)*out])
			}
		}
	}
	last := len(q.sizes) - 1
	width := q.sizes[last]
	for s := 0; s < batch; s++ {
		emit(s, sc.f[last][s*width:(s+1)*width])
	}
	return nil
}

// quantizeRow fills xq with the symmetric int8 image of x and returns
// the dequantization scale (0 when x is all zero, in which case xq is
// zeroed).
func quantizeRow(x []float64, xq []int8) float64 {
	var amax float64
	for _, v := range x {
		if a := math.Abs(v); a > amax {
			amax = a
		}
	}
	if amax == 0 {
		for i := range xq {
			xq[i] = 0
		}
		return 0
	}
	s := amax / 127
	inv := 1 / s
	for i, v := range x {
		xq[i] = int8(math.Round(v * inv))
	}
	return s
}

// dotI8 is the exact int32 inner product of two int8 vectors.
func dotI8(a []int8, b []int8) int32 {
	b = b[:len(a)]
	var p0, p1, p2, p3 int32
	i := 0
	for ; i <= len(a)-4; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		p0 += int32(aa[0]) * int32(bb[0])
		p1 += int32(aa[1]) * int32(bb[1])
		p2 += int32(aa[2]) * int32(bb[2])
		p3 += int32(aa[3]) * int32(bb[3])
	}
	for ; i < len(a); i++ {
		p0 += int32(a[i]) * int32(b[i])
	}
	return (p0 + p1) + (p2 + p3)
}
