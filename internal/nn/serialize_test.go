package nn

import (
	"bytes"
	"errors"
	"testing"
)

func trainedNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(Config{Sizes: []int{2, 8, 2}, Hidden: Tanh, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	samples, labels := xorData()
	if _, err := n.Train(samples, labels, TrainOptions{Epochs: 300, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n := trainedNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same predictions bit-for-bit.
	samples, _ := xorData()
	for _, x := range samples {
		pa, _ := n.Predict(x)
		pb, _ := m.Predict(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("prediction drift after round trip: %v vs %v", pa, pb)
			}
		}
	}
	// Loaded net remains trainable.
	if _, err := m.Train(samples, []int{0, 1, 1, 0}, TrainOptions{Epochs: 1}); err != nil {
		t.Errorf("loaded model not trainable: %v", err)
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model at all"))); !errors.Is(err, ErrBadModel) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadRejectsCorruptParams(t *testing.T) {
	n := trainedNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-12] ^= 0x55 // corrupt a parameter byte near the tail
	if _, err := Load(bytes.NewReader(raw)); !errors.Is(err, ErrBadModel) {
		t.Errorf("corrupt params error = %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	n := trainedNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Error("truncated model should fail")
	}
}
