package nn

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func randomInputs(rng *rand.Rand, n, width int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, width)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

// TestPredictBatchMatchesPredict checks the batched forward pass is
// bit-identical to the single-sample path across activations, depths
// and batch sizes — the contract that lets callers switch freely.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, act := range []Activation{ReLU, Tanh, Sigmoid} {
		for _, sizes := range [][]int{{5, 7, 3}, {9, 12, 8, 4}, {3, 2}} {
			n, err := New(Config{Sizes: sizes, Hidden: act, Seed: int64(act) + int64(len(sizes))})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{1, 2, 7, 33} {
				xs := randomInputs(rng, batch, sizes[0])
				got, err := n.PredictBatch(xs)
				if err != nil {
					t.Fatal(err)
				}
				cls, conf, err := n.ClassifyBatch(xs, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				for s, x := range xs {
					want, err := n.Predict(x)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[s][i] != want[i] {
							t.Fatalf("act=%v sizes=%v batch=%d sample %d out %d: %v != %v",
								act, sizes, batch, s, i, got[s][i], want[i])
						}
					}
					wc, wp, _ := n.Classify(x)
					if cls[s] != wc || conf[s] != wp {
						t.Fatalf("act=%v sample %d: ClassifyBatch (%d,%v) != Classify (%d,%v)",
							act, s, cls[s], conf[s], wc, wp)
					}
				}
			}
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	n, _ := New(Config{Sizes: []int{4, 3}, Seed: 1})
	if out, err := n.PredictBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	if _, err := n.PredictBatch([][]float64{{1, 2, 3, 4}, {1}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short sample: err = %v", err)
	}
}

// TestQuantizedMatchesClassify checks Quantized.Classify and
// Quantized.ClassifyBatch agree with each other exactly, and that the
// quantized probabilities track the float network within the coarse
// tolerance int8 affords on random (well-scaled) nets.
func TestQuantizedMatchesClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, act := range []Activation{ReLU, Tanh, Sigmoid} {
		n, err := New(Config{Sizes: []int{6, 10, 5}, Hidden: act, Seed: 17 + int64(act)})
		if err != nil {
			t.Fatal(err)
		}
		q := n.Quantize()
		if got, want := q.Sizes(), n.sizes; len(got) != len(want) {
			t.Fatalf("sizes %v", got)
		}
		xs := randomInputs(rng, 25, 6)
		cls, conf, err := q.ClassifyBatch(xs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for s, x := range xs {
			c1, p1, err := q.Classify(x)
			if err != nil {
				t.Fatal(err)
			}
			if c1 != cls[s] || p1 != conf[s] {
				t.Fatalf("act=%v sample %d: Classify (%d,%v) != ClassifyBatch (%d,%v)",
					act, s, c1, p1, cls[s], conf[s])
			}
			_, pf, _ := n.Classify(x)
			if math.Abs(p1-pf) > 0.25 {
				t.Fatalf("act=%v sample %d: quantized conf %v far from float %v", act, s, p1, pf)
			}
		}
	}
}

// TestQuantizeEdgeCases covers the degenerate scales: an all-zero
// weight row must dequantize to pure bias, and an all-zero input must
// produce the same output as the float path (scale 0 short-circuit).
func TestQuantizeEdgeCases(t *testing.T) {
	n, _ := New(Config{Sizes: []int{4, 3, 2}, Seed: 5})
	for i := 0; i < 4; i++ {
		n.w[0][i] = 0 // zero out neuron 0's row in layer 0
	}
	q := n.Quantize()
	zero := []float64{0, 0, 0, 0}
	cq, _, err := q.Classify(zero)
	if err != nil {
		t.Fatal(err)
	}
	cf, _, _ := n.Classify(zero)
	if cq != cf {
		t.Fatalf("zero input: quantized class %d != float %d", cq, cf)
	}
	// The zero-input path must also be exact on probabilities: every
	// layer-0 accumulator reduces to its bias in both paths.
	pq := make([]float64, 0, 2)
	_, pc, _ := q.Classify(zero)
	pq = append(pq, pc)
	pf, _ := n.Predict(zero)
	if _, bp := argmax(pf); pq[0] != bp {
		t.Fatalf("zero input conf: quantized %v != float %v", pq[0], bp)
	}
}

// TestQuantizedConcurrent hammers one shared Quantized from many
// goroutines (run with -race): scratch pooling must not leak state
// across callers.
func TestQuantizedConcurrent(t *testing.T) {
	n, _ := New(Config{Sizes: []int{6, 9, 4}, Seed: 23})
	q := n.Quantize()
	rng := rand.New(rand.NewSource(99))
	xs := randomInputs(rng, 40, 6)
	wantCls, wantConf, err := q.ClassifyBatch(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wc := append([]int(nil), wantCls...)
	wp := append([]float64(nil), wantConf...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var cls []int
			var conf []float64
			for iter := 0; iter < 30; iter++ {
				var err error
				cls, conf, err = q.ClassifyBatch(xs, cls, conf)
				if err != nil {
					t.Error(err)
					return
				}
				for s := range xs {
					if cls[s] != wc[s] || conf[s] != wp[s] {
						t.Errorf("goroutine %d iter %d sample %d: (%d,%v) != (%d,%v)",
							g, iter, s, cls[s], conf[s], wc[s], wp[s])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNetworkBatchConcurrent does the same for the float batched path.
func TestNetworkBatchConcurrent(t *testing.T) {
	n, _ := New(Config{Sizes: []int{6, 9, 4}, Seed: 29})
	rng := rand.New(rand.NewSource(101))
	xs := randomInputs(rng, 24, 6)
	wantCls, wantConf, err := n.ClassifyBatch(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wc := append([]int(nil), wantCls...)
	wp := append([]float64(nil), wantConf...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cls []int
			var conf []float64
			for iter := 0; iter < 30; iter++ {
				var err error
				cls, conf, err = n.ClassifyBatch(xs, cls, conf)
				if err != nil {
					t.Error(err)
					return
				}
				for s := range xs {
					if cls[s] != wc[s] || conf[s] != wp[s] {
						t.Error("batch result drifted across concurrent calls")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestQuantizeRowEdges(t *testing.T) {
	xq := make([]int8, 3)
	if s := quantizeRow([]float64{0, 0, 0}, xq); s != 0 {
		t.Fatalf("zero row scale = %v", s)
	}
	for _, v := range xq {
		if v != 0 {
			t.Fatal("zero row must zero xq")
		}
	}
	s := quantizeRow([]float64{-2, 1, 2}, xq)
	if s != 2.0/127 {
		t.Fatalf("scale = %v", s)
	}
	if xq[0] != -127 || xq[2] != 127 {
		t.Fatalf("extremes map to ±127, got %v", xq)
	}
}
