package nn

import "fmt"

// batchActs is a pooled set of flat batch activation matrices: m[l]
// holds batch×sizes[l] values, sample-major, for layer l ≥ 1 (the
// input layer is read straight from the caller's slices). Buffers grow
// to the largest batch seen and are reused verbatim afterwards.
type batchActs struct{ m [][]float64 }

// acquireBatch returns a pooled batch activation set with capacity for
// batch samples.
func (n *Network) acquireBatch(batch int) *batchActs {
	s, _ := n.batchPool.Get().(*batchActs)
	if s == nil {
		s = &batchActs{m: make([][]float64, len(n.sizes))}
	}
	for l := 1; l < len(n.sizes); l++ {
		need := batch * n.sizes[l]
		if cap(s.m[l]) < need {
			s.m[l] = make([]float64, need)
		}
		s.m[l] = s.m[l][:need]
	}
	return s
}

// PredictBatch returns the softmax class probabilities for every input
// in xs, in order. Results are bit-identical to calling Predict on
// each input: the batched loops keep each sample's per-neuron
// accumulation in the exact order of the single-sample path and only
// restructure which of them run back to back — one weight-row walk now
// serves the whole batch instead of being re-streamed from memory per
// sample, which is where the batch speedup comes from.
func (n *Network) PredictBatch(xs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(xs))
	last := n.sizes[len(n.sizes)-1]
	flat := make([]float64, len(xs)*last)
	if err := n.forwardBatch(xs, func(s int, p []float64) {
		out[s] = flat[s*last : (s+1)*last]
		copy(out[s], p)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ClassifyBatch returns the argmax class and its probability for every
// input in xs, appending into cls and conf (pass nil to allocate, or
// retained buffers to reuse their capacity). Results are bit-identical
// to per-sample Classify calls.
func (n *Network) ClassifyBatch(xs [][]float64, cls []int, conf []float64) ([]int, []float64, error) {
	cls, conf = cls[:0], conf[:0]
	if err := n.forwardBatch(xs, func(_ int, p []float64) {
		best, bp := 0, p[0]
		for i, v := range p[1:] {
			if v > bp {
				best, bp = i+1, v
			}
		}
		cls = append(cls, best)
		conf = append(conf, bp)
	}); err != nil {
		return nil, nil, err
	}
	return cls, conf, nil
}

// forwardBatch runs the batched forward pass, invoking emit with each
// sample's softmax row (valid only during the call) in sample order.
func (n *Network) forwardBatch(xs [][]float64, emit func(s int, probs []float64)) error {
	if len(xs) == 0 {
		return nil
	}
	for s, x := range xs {
		if len(x) != n.sizes[0] {
			return fmt.Errorf("nn: batch sample %d: input %d, want %d: %w", s, len(x), n.sizes[0], ErrBadInput)
		}
	}
	batch := len(xs)
	sc := n.acquireBatch(batch)
	defer n.batchPool.Put(sc)
	for l := 0; l+1 < len(n.sizes); l++ {
		in, out := n.sizes[l], n.sizes[l+1]
		prev := sc.m[l] // nil for l == 0; xs is read directly
		cur := sc.m[l+1]
		// Neuron-outer, sample-inner: the weight row stays hot in cache
		// across the whole batch. Each sample's accumulation (bias
		// first, then inputs in index order) matches forward exactly,
		// so the sums round identically.
		for j := 0; j < out; j++ {
			row := n.w[l][j*in : (j+1)*in]
			bj := n.b[l][j]
			for s := 0; s < batch; s++ {
				x := xs[s]
				if l > 0 {
					x = prev[s*in : (s+1)*in]
				}
				acc := bj
				for i, xi := range x {
					acc += row[i] * xi
				}
				cur[s*out+j] = acc
			}
		}
		if l+2 < len(n.sizes) { // hidden layer
			for i, v := range cur {
				cur[i] = n.hidden.apply(v)
			}
		} else { // output: softmax per sample
			for s := 0; s < batch; s++ {
				softmaxInPlace(cur[s*out : (s+1)*out])
			}
		}
	}
	last := len(n.sizes) - 1
	width := n.sizes[last]
	for s := 0; s < batch; s++ {
		emit(s, sc.m[last][s*width:(s+1)*width])
	}
	return nil
}
