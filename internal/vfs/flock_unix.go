//go:build unix

package vfs

import (
	"io"
	"os"
	"syscall"
)

// Flock takes the path's advisory flock. Locking a directory's own fd
// means shared read-only opens create nothing on disk, and the kernel
// releases the lease when the handle closes — including on crash — so
// no stale-lock recovery is needed on flock platforms.
func (OsFS) Flock(path string, exclusive bool) (io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	if err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, ErrLockHeld
		}
		return nil, err
	}
	return f, nil
}
