//go:build !unix

package vfs

import (
	"errors"
	"io"
)

// Flock is unsupported off unix; callers fall back to the lease-file
// protocol (see metadata's lockfile.go).
func (OsFS) Flock(path string, exclusive bool) (io.Closer, error) {
	return nil, errors.ErrUnsupported
}
