package vfs

import (
	"errors"
	"io"
	"os"
	"syscall"
	"testing"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// write creates name with data on f, synced and dir-synced.
func write(t *testing.T, f *FaultFS, name string, data []byte) {
	t.Helper()
	h, err := f.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	must(t, err)
	_, err = h.Write(data)
	must(t, err)
	must(t, h.Sync())
	must(t, h.Close())
}

func TestFaultFSBasics(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	write(t, f, "repo/a", []byte("hello"))
	must(t, f.SyncDir("repo"))

	got, err := f.ReadFile("repo/a")
	must(t, err)
	if string(got) != "hello" {
		t.Fatalf("ReadFile = %q", got)
	}
	info, err := f.Stat("repo/a")
	must(t, err)
	if info.Size() != 5 || info.IsDir() {
		t.Fatalf("stat: size=%d dir=%v", info.Size(), info.IsDir())
	}
	if _, err := f.Stat("repo/missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
	if _, err := f.OpenFile("repo/a", os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); !errors.Is(err, os.ErrExist) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}

	write(t, f, "repo/b", []byte("x"))
	ents, err := f.ReadDir("repo")
	must(t, err)
	if len(ents) != 2 || ents[0].Name() != "a" || ents[1].Name() != "b" {
		t.Fatalf("ReadDir = %v", ents)
	}

	// Read-back through a handle, including Seek.
	h, err := f.OpenFile("repo/a", os.O_RDONLY, 0)
	must(t, err)
	if _, err := h.Seek(1, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(h)
	must(t, err)
	if string(buf) != "ello" {
		t.Fatalf("read after seek = %q", buf)
	}
	must(t, h.Close())
}

func TestFaultFSCrashDropsUnsynced(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	write(t, f, "repo/a", []byte("durable"))
	must(t, f.SyncDir("repo"))

	// Append without fsync, create a file without dir-fsync.
	h, err := f.OpenFile("repo/a", os.O_WRONLY, 0)
	must(t, err)
	_, err = h.Seek(0, io.SeekEnd)
	must(t, err)
	_, err = h.Write([]byte("+tail"))
	must(t, err)
	write(t, f, "repo/new", []byte("ghost")) // file-synced but not dir-synced

	f.Crash(0)

	got, err := f.ReadFile("repo/a")
	must(t, err)
	if string(got) != "durable" {
		t.Fatalf("after crash a = %q", got)
	}
	if _, err := f.ReadFile("repo/new"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("un-dir-synced file survived crash: %v", err)
	}
}

func TestFaultFSCrashTornTail(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	write(t, f, "repo/a", []byte("base"))
	must(t, f.SyncDir("repo"))
	h, err := f.OpenFile("repo/a", os.O_WRONLY, 0)
	must(t, err)
	_, err = h.Seek(0, io.SeekEnd)
	must(t, err)
	_, err = h.Write([]byte("unsynced"))
	must(t, err)

	f.Crash(3)
	got, err := f.ReadFile("repo/a")
	must(t, err)
	if string(got) != "baseuns" {
		t.Fatalf("torn crash = %q", got)
	}
}

func TestFaultFSCrashRevertsRename(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	write(t, f, "repo/MANIFEST", []byte("v1"))
	must(t, f.SyncDir("repo"))

	write(t, f, "repo/MANIFEST.tmp", []byte("v2"))
	must(t, f.Rename("repo/MANIFEST.tmp", "repo/MANIFEST"))

	// Rename landed but no dir fsync: crash rolls it back.
	g := f.Clone()
	g.Crash(0)
	got, err := g.ReadFile("repo/MANIFEST")
	must(t, err)
	if string(got) != "v1" {
		t.Fatalf("un-dir-synced rename survived: %q", got)
	}

	// With the dir fsync it sticks.
	must(t, f.SyncDir("repo"))
	f.Crash(0)
	got, err = f.ReadFile("repo/MANIFEST")
	must(t, err)
	if string(got) != "v2" {
		t.Fatalf("dir-synced rename lost: %q", got)
	}
	if _, err := f.ReadFile("repo/MANIFEST.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp resurrected: %v", err)
	}
}

func TestFaultFSInjectAndShortWrite(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	h, err := f.OpenFile("repo/a", os.O_CREATE|os.O_WRONLY, 0o644) // op 1: create
	must(t, err)

	boom := errors.New("boom")
	f.FailOp(2, boom)
	if _, err := h.Write([]byte("data")); !errors.Is(err, boom) {
		t.Fatalf("injected write fault: %v", err)
	}
	f.Inject = nil
	_, err = h.Write([]byte("data"))
	must(t, err)

	// Short write: half the buffer lands, error wraps both sentinels.
	f.FailOp(4, errors.Join(io.ErrShortWrite, syscall.ENOSPC))
	n, err := h.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	f.Inject = nil
	got, err := f.ReadFile("repo/a")
	must(t, err)
	if string(got) != "dataabcd" {
		t.Fatalf("content after short write = %q", got)
	}
}

func TestFaultFSOnOpSnapshotIsIsolated(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	var snaps []*FaultFS
	f.OnOp = func(n int, op Op, path string, snap *FaultFS) {
		snaps = append(snaps, snap)
	}
	write(t, f, "repo/a", []byte("one"))
	write(t, f, "repo/a", []byte("two"))
	if len(snaps) < 4 {
		t.Fatalf("expected ≥4 counted ops, got %d", len(snaps))
	}
	// The snapshot taken before the second create still holds "one",
	// synced — mutating the live fs must not leak into it.
	s := snaps[3] // ops: create, write, sync, create, write, sync
	got, err := s.ReadFile("repo/a")
	must(t, err)
	if string(got) != "one" {
		t.Fatalf("snapshot content = %q", got)
	}
}

func TestFaultFSFlock(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))

	ex, err := f.Flock("repo", true)
	must(t, err)
	if _, err := f.Flock("repo", false); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("shared under exclusive: %v", err)
	}
	must(t, ex.Close())

	s1, err := f.Flock("repo", false)
	must(t, err)
	s2, err := f.Flock("repo", false)
	must(t, err)
	if _, err := f.Flock("repo", true); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("exclusive under shared: %v", err)
	}
	must(t, s1.Close())
	must(t, s2.Close())
	ex2, err := f.Flock("repo", true)
	must(t, err)
	must(t, ex2.Close())

	f.NoFlock = true
	if _, err := f.Flock("repo", true); !errors.Is(err, errors.ErrUnsupported) {
		t.Fatalf("NoFlock: %v", err)
	}
}

func TestFaultFSFlockClearedByCrash(t *testing.T) {
	f := NewFaultFS()
	must(t, f.MkdirAll("repo", 0o755))
	_, err := f.Flock("repo", true)
	must(t, err)
	f.Crash(0)
	l, err := f.Flock("repo", true)
	must(t, err)
	must(t, l.Close())
}

func TestOsFSSatisfiesSeam(t *testing.T) {
	dir := t.TempDir()
	var f FS = OS
	h, err := f.OpenFile(dir+"/x", os.O_CREATE|os.O_WRONLY, 0o644)
	must(t, err)
	_, err = h.Write([]byte("y"))
	must(t, err)
	must(t, h.Sync())
	must(t, h.Close())
	must(t, f.SyncDir(dir))
	got, err := f.ReadFile(dir + "/x")
	must(t, err)
	if string(got) != "y" {
		t.Fatalf("roundtrip = %q", got)
	}
}
