// Package vfs is the filesystem seam under the metadata store: every
// filesystem operation the store performs — open/create, write, sync,
// rename, remove, readdir, directory fsync, advisory locking — goes
// through the FS interface. OsFS passes straight through to the os
// package and is what production uses; FaultFS (faultfs.go) is a
// deterministic in-memory filesystem that can fail the Nth operation,
// short-write, report ENOSPC and simulate a power cut, and is what the
// crash-consistency harness drives the store with (DESIGN.md §8).
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
)

// File is one open file handle. *os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Stat() (fs.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface the metadata store runs on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (os.O_* flags).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Stat describes a file or directory.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory path.
	MkdirAll(dir string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renames and file creations
	// within it durable.
	SyncDir(dir string) error
	// Flock takes the advisory lock on path — exclusive or shared —
	// without blocking. A busy lock fails with ErrLockHeld; a platform
	// without flock support fails with errors.ErrUnsupported (callers
	// fall back to a lease-file protocol). Closing the returned handle
	// releases the lock.
	Flock(path string, exclusive bool) (io.Closer, error)
}

// ErrLockHeld reports that Flock found the lock held by someone else.
var ErrLockHeld = errors.New("vfs: lock held")

// OS is the passthrough filesystem production code uses.
var OS FS = OsFS{}

// OsFS implements FS directly on the os package.
type OsFS struct{}

// OpenFile opens name via os.OpenFile.
func (OsFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames via os.Rename.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes via os.Remove.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// ReadDir lists via os.ReadDir.
func (OsFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// ReadFile reads via os.ReadFile.
func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Stat stats via os.Stat.
func (OsFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// MkdirAll creates via os.MkdirAll.
func (OsFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir opens the directory and fsyncs it.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
