package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrNoSpace is the canonical disk-full error for Inject hooks — the
// same ENOSPC value the real filesystem produces, so production code
// cannot tell injected exhaustion from the real thing.
var ErrNoSpace error = syscall.ENOSPC

// Op classifies the counted (mutating or durability-relevant)
// filesystem operations FaultFS can inject faults into. Read-only
// operations are not counted, so operation numbers stay deterministic
// even when the store replays segments on parallel readers.
type Op uint8

// Counted operations.
const (
	// OpCreate is an OpenFile call that creates or truncates a file.
	OpCreate Op = iota
	// OpWrite is one File.Write call.
	OpWrite
	// OpSync is a File.Sync (fsync) call.
	OpSync
	// OpTruncate is a File.Truncate call.
	OpTruncate
	// OpRename is a Rename call.
	OpRename
	// OpRemove is a Remove call.
	OpRemove
	// OpSyncDir is a SyncDir (directory fsync) call.
	OpSyncDir

	numOps
)

var opNames = [numOps]string{"create", "write", "sync", "truncate", "rename", "remove", "syncdir"}

// String names the operation.
func (o Op) String() string {
	if int(o) >= int(numOps) {
		return "op(?)"
	}
	return opNames[o]
}

// fnode is one file's contents: the live data plus the prefix made
// durable by the last fsync. A power cut reverts data to synced (plus
// an optional torn prefix of the un-synced tail).
type fnode struct {
	data   []byte
	synced []byte
}

// FaultFS is a deterministic in-memory filesystem with an injectable
// fault surface and a two-level durability model:
//
//   - file *data* becomes durable on File.Sync — a power cut reverts
//     each file to its last-synced content (optionally keeping a torn
//     prefix of the un-synced tail, modelling a partial platter write);
//   - directory *entries* (creations, renames, removals) become durable
//     on SyncDir — a power cut reverts the namespace to the last
//     directory fsync, so an un-synced rename rolls back and an
//     un-synced creation disappears, exactly the pessimistic POSIX
//     crash contract the store must survive.
//
// Every counted operation (see Op) first reports to OnOp (with a deep
// snapshot of the pre-operation state — the crash-consistency matrix
// enumerates these) and then consults Inject, which may fail it.
// Returning an error wrapping io.ErrShortWrite from Inject on an
// OpWrite makes the write consume half the buffer before failing.
//
// Safe for concurrent use; directories created via MkdirAll are
// considered durable immediately (the store only ever creates its root).
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*fnode
	durable map[string]*fnode
	dirs    map[string]bool
	locks   map[string]*flockState
	n       int

	// Inject, when set, is consulted before every counted operation
	// with the 1-based operation number; a non-nil return fails the
	// operation with that error.
	Inject func(n int, op Op, path string) error
	// OnOp, when set, observes every counted operation just before it
	// executes, with a deep snapshot of the filesystem state (hooks
	// must not call back into the receiver).
	OnOp func(n int, op Op, path string, snapshot *FaultFS)
	// NoFlock makes Flock fail with errors.ErrUnsupported, forcing
	// callers onto their lease-file fallback path.
	NoFlock bool
}

type flockState struct {
	excl    bool
	holders int
}

// NewFaultFS returns an empty in-memory filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		files:   make(map[string]*fnode),
		durable: make(map[string]*fnode),
		dirs:    make(map[string]bool),
		locks:   make(map[string]*flockState),
	}
}

// FailOp arranges operation n to fail with err (a one-line Inject).
func (f *FaultFS) FailOp(n int, err error) {
	f.Inject = func(i int, _ Op, _ string) error {
		if i == n {
			return err
		}
		return nil
	}
}

// Ops returns the number of counted operations performed so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// beginOp assigns the operation number, fires OnOp and consults
// Inject. Caller holds f.mu.
func (f *FaultFS) beginOp(op Op, path string) error {
	f.n++
	if f.OnOp != nil {
		f.OnOp(f.n, op, path, f.cloneLocked())
	}
	if f.Inject != nil {
		return f.Inject(f.n, op, path)
	}
	return nil
}

// Clone returns a deep copy of the filesystem state (hooks and lock
// holders are not carried over — a snapshot is inert).
func (f *FaultFS) Clone() *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cloneLocked()
}

func (f *FaultFS) cloneLocked() *FaultFS {
	nf := NewFaultFS()
	nf.n = f.n
	seen := make(map[*fnode]*fnode, len(f.files)+len(f.durable))
	cp := func(nd *fnode) *fnode {
		if c, ok := seen[nd]; ok {
			return c
		}
		c := &fnode{data: append([]byte(nil), nd.data...), synced: append([]byte(nil), nd.synced...)}
		seen[nd] = c
		return c
	}
	for name, nd := range f.files {
		nf.files[name] = cp(nd)
	}
	for name, nd := range f.durable {
		nf.durable[name] = cp(nd)
	}
	for d := range f.dirs {
		nf.dirs[d] = true
	}
	return nf
}

// Crash simulates a power cut: the namespace reverts to the last
// directory fsync, every file's data reverts to its last fsync, and
// all advisory locks are released. tornBytes > 0 additionally keeps
// that many bytes of each file's un-synced tail — a torn write that
// made it to the platter before the power died.
func (f *FaultFS) Crash(tornBytes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.locks = make(map[string]*flockState)
	files := make(map[string]*fnode, len(f.durable))
	for name, nd := range f.durable {
		data := append([]byte(nil), nd.synced...)
		if tornBytes > 0 && len(nd.data) > len(nd.synced) {
			tail := nd.data[len(nd.synced):]
			data = append(data, tail[:min(tornBytes, len(tail))]...)
		}
		nd.data = data
		nd.synced = append([]byte(nil), data...)
		files[name] = nd
	}
	f.files = files
	f.durable = make(map[string]*fnode, len(files))
	for name, nd := range files {
		f.durable[name] = nd
	}
}

// --- FS implementation ---

func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

// OpenFile opens name. O_CREATE creates missing files, O_EXCL rejects
// existing ones, O_TRUNC empties; creation and truncation count as one
// OpCreate operation.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	nd, exists := f.files[name]
	switch {
	case exists && flag&os.O_EXCL != 0 && flag&os.O_CREATE != 0:
		return nil, pathErr("open", name, fs.ErrExist)
	case !exists && flag&os.O_CREATE == 0:
		return nil, pathErr("open", name, fs.ErrNotExist)
	}
	mutates := !exists || (flag&os.O_TRUNC != 0 && len(nd.data) > 0)
	if mutates {
		if err := f.beginOp(OpCreate, name); err != nil {
			return nil, pathErr("open", name, err)
		}
	}
	if !exists {
		nd = &fnode{}
		f.files[name] = nd
	} else if flag&os.O_TRUNC != 0 {
		nd.data = nil
	}
	return &memFile{fs: f, node: nd, path: name}, nil
}

// Rename replaces newpath with oldpath (atomic, like POSIX rename).
func (f *FaultFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f.mu.Lock()
	defer f.mu.Unlock()
	nd, ok := f.files[oldpath]
	if !ok {
		return pathErr("rename", oldpath, fs.ErrNotExist)
	}
	if err := f.beginOp(OpRename, newpath); err != nil {
		return pathErr("rename", newpath, err)
	}
	delete(f.files, oldpath)
	f.files[newpath] = nd
	return nil
}

// Remove deletes a file.
func (f *FaultFS) Remove(name string) error {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		return pathErr("remove", name, fs.ErrNotExist)
	}
	if err := f.beginOp(OpRemove, name); err != nil {
		return pathErr("remove", name, err)
	}
	delete(f.files, name)
	return nil
}

// ReadDir lists dir's direct children, sorted by name.
func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dirs[dir] {
		return nil, pathErr("readdir", dir, fs.ErrNotExist)
	}
	var out []fs.DirEntry
	add := func(name string, isDir bool) {
		rest, ok := childOf(dir, name)
		if ok {
			out = append(out, memDirEntry{name: rest, dir: isDir})
		}
	}
	for name := range f.files {
		add(name, false)
	}
	for name := range f.dirs {
		add(name, true)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// childOf reports whether name is a direct child of dir, returning the
// base name.
func childOf(dir, name string) (string, bool) {
	prefix := dir + string(filepath.Separator)
	if dir == "." {
		prefix = ""
	}
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok || rest == "" || strings.ContainsRune(rest, filepath.Separator) {
		return "", false
	}
	return rest, true
}

// ReadFile reads a whole file.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	nd, ok := f.files[name]
	if !ok {
		return nil, pathErr("open", name, fs.ErrNotExist)
	}
	return append([]byte(nil), nd.data...), nil
}

// Stat describes a file or directory.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if nd, ok := f.files[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(nd.data))}, nil
	}
	if f.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, pathErr("stat", name, fs.ErrNotExist)
}

// MkdirAll creates dir and its parents. Directories are modelled as
// immediately durable.
func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	for d := dir; ; d = filepath.Dir(d) {
		f.dirs[d] = true
		if parent := filepath.Dir(d); parent == d {
			break
		}
	}
	return nil
}

// SyncDir makes dir's current entries durable: creations and renames
// under dir survive a Crash from here on.
func (f *FaultFS) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dirs[dir] {
		return pathErr("syncdir", dir, fs.ErrNotExist)
	}
	if err := f.beginOp(OpSyncDir, dir); err != nil {
		return pathErr("syncdir", dir, err)
	}
	for name := range f.durable {
		if _, ok := childOf(dir, name); ok {
			if _, live := f.files[name]; !live {
				delete(f.durable, name)
			}
		}
	}
	for name, nd := range f.files {
		if _, ok := childOf(dir, name); ok {
			f.durable[name] = nd
		}
	}
	return nil
}

// Flock emulates the advisory lock table (in-process; a FaultFS never
// outlives its test). NoFlock forces the lease-file fallback instead.
func (f *FaultFS) Flock(path string, exclusive bool) (io.Closer, error) {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.NoFlock {
		return nil, errors.ErrUnsupported
	}
	if _, isFile := f.files[path]; !isFile && !f.dirs[path] {
		return nil, pathErr("flock", path, fs.ErrNotExist)
	}
	st := f.locks[path]
	if st == nil {
		st = &flockState{}
		f.locks[path] = st
	}
	if st.holders > 0 && (exclusive || st.excl) {
		return nil, ErrLockHeld
	}
	st.excl = exclusive
	st.holders++
	released := false
	return closerFunc(func() error {
		f.mu.Lock()
		defer f.mu.Unlock()
		if !released {
			released = true
			st.holders--
		}
		return nil
	}), nil
}

type closerFunc func() error

func (c closerFunc) Close() error { return c() }

// --- file handle ---

type memFile struct {
	fs     *FaultFS
	node   *fnode
	path   string
	off    int64
	closed bool
}

func (m *memFile) Name() string { return m.path }

func (m *memFile) Read(p []byte) (int, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return 0, pathErr("read", m.path, fs.ErrClosed)
	}
	if m.off >= int64(len(m.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.node.data[m.off:])
	m.off += int64(n)
	return n, nil
}

// Write writes at the handle's offset, extending with zeros past EOF.
// An injected fault wrapping io.ErrShortWrite consumes half the buffer
// before failing — a short write.
func (m *memFile) Write(p []byte) (int, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return 0, pathErr("write", m.path, fs.ErrClosed)
	}
	if err := m.fs.beginOp(OpWrite, m.path); err != nil {
		if !errors.Is(err, io.ErrShortWrite) {
			return 0, pathErr("write", m.path, err)
		}
		return m.writeLocked(p[:len(p)/2]), pathErr("write", m.path, err)
	}
	return m.writeLocked(p), nil
}

// writeLocked performs the raw write. Caller holds fs.mu.
func (m *memFile) writeLocked(p []byte) int {
	end := m.off + int64(len(p))
	for int64(len(m.node.data)) < m.off {
		m.node.data = append(m.node.data, 0)
	}
	if end > int64(len(m.node.data)) {
		m.node.data = append(m.node.data[:m.off], p...)
	} else {
		copy(m.node.data[m.off:], p)
	}
	m.off = end
	return len(p)
}

func (m *memFile) Seek(offset int64, whence int) (int64, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	switch whence {
	case io.SeekStart:
		m.off = offset
	case io.SeekCurrent:
		m.off += offset
	case io.SeekEnd:
		m.off = int64(len(m.node.data)) + offset
	}
	if m.off < 0 {
		m.off = 0
	}
	return m.off, nil
}

// Sync makes the file's current data durable against Crash.
func (m *memFile) Sync() error {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if err := m.fs.beginOp(OpSync, m.path); err != nil {
		return pathErr("sync", m.path, err)
	}
	m.node.synced = append([]byte(nil), m.node.data...)
	return nil
}

func (m *memFile) Truncate(size int64) error {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if err := m.fs.beginOp(OpTruncate, m.path); err != nil {
		return pathErr("truncate", m.path, err)
	}
	for int64(len(m.node.data)) < size {
		m.node.data = append(m.node.data, 0)
	}
	m.node.data = m.node.data[:size]
	return nil
}

func (m *memFile) Stat() (fs.FileInfo, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	return memInfo{name: filepath.Base(m.path), size: int64(len(m.node.data))}, nil
}

func (m *memFile) Close() error {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	m.closed = true
	return nil
}

// --- fs.FileInfo / fs.DirEntry ---

type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

type memDirEntry struct {
	name string
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memInfo{name: e.name, dir: e.dir}, nil
}
