// Package lbp implements Local Binary Patterns, the feature extractor
// the paper specifies for emotion recognition (§II-C: "we consider the
// Local Binary Patterns as a feature extractor and neural network as a
// classifier"). It provides the basic 3×3 operator, the circular (P,R)
// generalisation with bilinear sampling, the uniform-pattern mapping,
// and spatial grid histograms — the standard LBP face-descriptor recipe.
package lbp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/img"
)

// Code3x3 computes the basic LBP code at (x,y): each of the 8 neighbours
// contributes one bit, set when the neighbour is ≥ the centre pixel.
// Neighbours are visited clockwise from the top-left, so codes are
// comparable across pixels and images. Border pixels use clamped reads.
func Code3x3(g *img.Gray, x, y int) uint8 {
	c := g.AtClamped(x, y)
	var code uint8
	// Offsets clockwise from top-left.
	offs := [8][2]int{
		{-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0},
	}
	for i, o := range offs {
		if g.AtClamped(x+o[0], y+o[1]) >= c {
			code |= 1 << uint(i)
		}
	}
	return code
}

// CodeCircular computes the circular LBP code with p sampling points on
// a radius-r circle, using bilinear interpolation for off-grid samples.
// p must be ≤ 32.
func CodeCircular(g *img.Gray, x, y, p int, r float64) (uint32, error) {
	if p < 4 || p > 32 {
		return 0, fmt.Errorf("lbp: %d sampling points outside [4,32]: %w", p, ErrBadParams)
	}
	if r <= 0 {
		return 0, fmt.Errorf("lbp: radius %v must be positive: %w", r, ErrBadParams)
	}
	c := float64(g.AtClamped(x, y))
	var code uint32
	for i := 0; i < p; i++ {
		ang := 2 * math.Pi * float64(i) / float64(p)
		sx := float64(x) + r*math.Cos(ang)
		sy := float64(y) - r*math.Sin(ang)
		// Epsilon absorbs bilinear round-off so flat regions compare
		// as "equal" (≥) exactly like the integer 3×3 operator.
		if bilinear(g, sx, sy) >= c-1e-9 {
			code |= 1 << uint(i)
		}
	}
	return code, nil
}

// ErrBadParams reports invalid operator parameters.
var ErrBadParams = errors.New("lbp: bad parameters")

// bilinear samples the image at a fractional coordinate with clamped
// borders.
func bilinear(g *img.Gray, x, y float64) float64 {
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	dx, dy := x-float64(x0), y-float64(y0)
	v00 := float64(g.AtClamped(x0, y0))
	v10 := float64(g.AtClamped(x0+1, y0))
	v01 := float64(g.AtClamped(x0, y0+1))
	v11 := float64(g.AtClamped(x0+1, y0+1))
	return v00*(1-dx)*(1-dy) + v10*dx*(1-dy) + v01*(1-dx)*dy + v11*dx*dy
}

// transitions counts 0↔1 transitions in the circular 8-bit pattern.
func transitions(code uint8) int {
	t := 0
	for i := 0; i < 8; i++ {
		a := (code >> uint(i)) & 1
		b := (code >> uint((i+1)%8)) & 1
		if a != b {
			t++
		}
	}
	return t
}

// NumUniformBins is the length of a uniform-LBP histogram: the 58
// uniform 8-bit patterns plus one shared bin for all non-uniform codes.
const NumUniformBins = 59

// uniformMap maps each of the 256 LBP codes to its uniform-histogram
// bin. Built once at package initialisation.
var uniformMap [256]uint8

func init() {
	next := uint8(0)
	for c := 0; c < 256; c++ {
		if transitions(uint8(c)) <= 2 {
			uniformMap[c] = next
			next++
		} else {
			uniformMap[c] = NumUniformBins - 1
		}
	}
	// Exactly 58 uniform patterns exist; the invariant is checked here
	// rather than trusted.
	if next != NumUniformBins-1 {
		panic(fmt.Sprintf("lbp: %d uniform patterns, want %d", next, NumUniformBins-1))
	}
}

// UniformBin maps an LBP code to its uniform-histogram bin.
func UniformBin(code uint8) int { return int(uniformMap[code]) }

// Image computes the LBP code image of g (same dimensions).
func Image(g *img.Gray) *img.Gray {
	return ImageInto(g, nil)
}

// ImageInto is Image reusing dst's buffer when possible (nil dst
// allocates). dst must not alias g.
func ImageInto(g *img.Gray, dst *img.Gray) *img.Gray {
	out := img.Ensure(dst, g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Pix[y*g.W+x] = Code3x3(g, x, y)
		}
	}
	return out
}

// Histogram computes the uniform-LBP histogram of a region of the code
// image (as produced by Image), L1-normalised to sum 1 (all-zero when
// the region is empty).
func Histogram(codes *img.Gray, r img.Rect) []float64 {
	h := make([]float64, NumUniformBins)
	histogramInto(h, codes, r)
	return h
}

// histogramInto fills h (length NumUniformBins, zeroed here) with the
// normalised histogram of the region.
func histogramInto(h []float64, codes *img.Gray, r img.Rect) {
	for i := range h {
		h[i] = 0
	}
	c := r.Intersect(img.Rect{X: 0, Y: 0, W: codes.W, H: codes.H})
	n := 0
	for y := c.Y; y < c.Y+c.H; y++ {
		for x := c.X; x < c.X+c.W; x++ {
			h[UniformBin(codes.Pix[y*codes.W+x])]++
			n++
		}
	}
	if n > 0 {
		inv := 1 / float64(n)
		for i := range h {
			h[i] *= inv
		}
	}
}

// GridDescriptor divides the image into gx×gy cells and concatenates
// the per-cell uniform-LBP histograms — the classic LBP face descriptor.
// The result has gx·gy·NumUniformBins components, each cell L1-normalised.
func GridDescriptor(g *img.Gray, gx, gy int) ([]float64, error) {
	return GridDescriptorInto(g, gx, gy, nil, nil)
}

// GridDescriptorInto is GridDescriptor with caller-owned scratch: dst
// receives the descriptor (grown as needed, contents overwritten) and
// codes holds the intermediate LBP code image. Either may be nil; the
// returned slice aliases dst when its capacity sufficed.
func GridDescriptorInto(g *img.Gray, gx, gy int, dst []float64, codes *img.Gray) ([]float64, error) {
	if gx <= 0 || gy <= 0 {
		return nil, fmt.Errorf("lbp: grid %dx%d: %w", gx, gy, ErrBadParams)
	}
	if g.W < gx || g.H < gy {
		return nil, fmt.Errorf("lbp: image %dx%d smaller than grid %dx%d: %w",
			g.W, g.H, gx, gy, ErrBadParams)
	}
	codes = ImageInto(g, codes)
	n := gx * gy * NumUniformBins
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	k := 0
	for cy := 0; cy < gy; cy++ {
		y0 := cy * g.H / gy
		y1 := (cy + 1) * g.H / gy
		for cx := 0; cx < gx; cx++ {
			x0 := cx * g.W / gx
			x1 := (cx + 1) * g.W / gx
			cell := out[k : k+NumUniformBins]
			histogramInto(cell, codes, img.Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0})
			k += NumUniformBins
		}
	}
	return out, nil
}

// ChiSquare returns the χ² distance between two equally-long descriptors.
// It panics on length mismatch — descriptors of different grids are a
// programming error, not a data condition.
func ChiSquare(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("lbp: descriptor lengths %d != %d", len(a), len(b)))
	}
	var d float64
	for i := range a {
		s := a[i] + b[i]
		if s > 0 {
			d += (a[i] - b[i]) * (a[i] - b[i]) / s
		}
	}
	return d / 2
}
