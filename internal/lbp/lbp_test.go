package lbp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/img"
)

func TestCode3x3FlatImage(t *testing.T) {
	g := img.New(5, 5)
	g.Fill(100)
	// All neighbours equal centre → all bits set (≥ comparison).
	if got := Code3x3(g, 2, 2); got != 0xFF {
		t.Errorf("flat code = %08b, want 11111111", got)
	}
}

func TestCode3x3BrightCenter(t *testing.T) {
	g := img.New(3, 3)
	g.Fill(10)
	g.Set(1, 1, 200)
	if got := Code3x3(g, 1, 1); got != 0 {
		t.Errorf("bright centre code = %08b, want 0", got)
	}
}

func TestCode3x3Gradient(t *testing.T) {
	// Horizontal ramp: right neighbours brighter than centre.
	g := img.New(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			g.Set(x, y, uint8(x*100))
		}
	}
	code := Code3x3(g, 1, 1)
	// Bits 2,3,4 (top-right, right, bottom-right) must be set; bits
	// 0,6,7 (left column) clear.
	for _, b := range []uint{2, 3, 4} {
		if code&(1<<b) == 0 {
			t.Errorf("bit %d should be set in %08b", b, code)
		}
	}
	for _, b := range []uint{0, 6, 7} {
		if code&(1<<b) != 0 {
			t.Errorf("bit %d should be clear in %08b", b, code)
		}
	}
}

func TestCodeCircularValidation(t *testing.T) {
	g := img.New(8, 8)
	if _, err := CodeCircular(g, 4, 4, 2, 1); !errors.Is(err, ErrBadParams) {
		t.Error("p=2 should fail")
	}
	if _, err := CodeCircular(g, 4, 4, 64, 1); !errors.Is(err, ErrBadParams) {
		t.Error("p=64 should fail")
	}
	if _, err := CodeCircular(g, 4, 4, 8, 0); !errors.Is(err, ErrBadParams) {
		t.Error("r=0 should fail")
	}
}

func TestCodeCircularMatchesIntuition(t *testing.T) {
	g := img.New(9, 9)
	g.Fill(10)
	g.Set(4, 4, 200) // bright centre
	code, err := CodeCircular(g, 4, 4, 8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("bright centre circular code = %b, want 0", code)
	}
	flat := img.New(9, 9)
	flat.Fill(42)
	code, _ = CodeCircular(flat, 4, 4, 8, 1.5)
	if code != 0xFF {
		t.Errorf("flat circular code = %b, want 0xFF", code)
	}
}

func TestTransitions(t *testing.T) {
	cases := map[uint8]int{
		0b00000000: 0,
		0b11111111: 0,
		0b00001111: 2,
		0b01010101: 8,
		0b00011000: 2,
		0b10000001: 2, // circular: wraps around
	}
	for code, want := range cases {
		if got := transitions(code); got != want {
			t.Errorf("transitions(%08b) = %d, want %d", code, got, want)
		}
	}
}

func TestUniformMapProperties(t *testing.T) {
	// All uniform codes get distinct bins < 58; non-uniform share 58.
	seen := make(map[uint8]bool)
	for c := 0; c < 256; c++ {
		bin := UniformBin(uint8(c))
		if transitions(uint8(c)) <= 2 {
			if bin >= NumUniformBins-1 {
				t.Errorf("uniform code %08b in overflow bin", c)
			}
			if seen[uint8(bin)] {
				t.Errorf("bin %d reused", bin)
			}
			seen[uint8(bin)] = true
		} else if bin != NumUniformBins-1 {
			t.Errorf("non-uniform code %08b in bin %d", c, bin)
		}
	}
	if len(seen) != 58 {
		t.Errorf("%d uniform bins used, want 58", len(seen))
	}
}

func TestHistogramNormalised(t *testing.T) {
	g := img.New(32, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	codes := Image(g)
	h := Histogram(codes, img.Rect{X: 0, Y: 0, W: 32, H: 32})
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative histogram entry")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram mass = %v, want 1", sum)
	}
	// Empty region: all zeros.
	empty := Histogram(codes, img.Rect{X: 100, Y: 100, W: 5, H: 5})
	for _, v := range empty {
		if v != 0 {
			t.Error("empty region histogram should be zero")
		}
	}
}

func TestGridDescriptor(t *testing.T) {
	g := img.New(64, 64)
	rng := rand.New(rand.NewSource(2))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	d, err := GridDescriptor(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 4*4*NumUniformBins {
		t.Fatalf("descriptor length %d", len(d))
	}
	// Each cell sums to 1.
	for c := 0; c < 16; c++ {
		var s float64
		for i := 0; i < NumUniformBins; i++ {
			s += d[c*NumUniformBins+i]
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("cell %d mass %v", c, s)
		}
	}
	if _, err := GridDescriptor(g, 0, 4); !errors.Is(err, ErrBadParams) {
		t.Error("zero grid should fail")
	}
	small := img.New(2, 2)
	if _, err := GridDescriptor(small, 4, 4); !errors.Is(err, ErrBadParams) {
		t.Error("grid larger than image should fail")
	}
}

func TestDescriptorDiscriminates(t *testing.T) {
	// Descriptors of structurally different images should be farther
	// apart than descriptors of the same image with mild noise.
	base := img.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			base.Set(x, y, uint8((x*4+y)%256))
		}
	}
	noisy := base.Clone()
	rng := rand.New(rand.NewSource(3))
	noisy.AddNoise(3, rng.NormFloat64)
	other := img.New(64, 64)
	other.FillCircle(32, 32, 20, 220)

	dBase, _ := GridDescriptor(base, 4, 4)
	dNoisy, _ := GridDescriptor(noisy, 4, 4)
	dOther, _ := GridDescriptor(other, 4, 4)

	near := ChiSquare(dBase, dNoisy)
	far := ChiSquare(dBase, dOther)
	if near >= far {
		t.Errorf("noise distance %v should be < structural distance %v", near, far)
	}
}

func TestChiSquareProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Build two valid histograms from the raw values.
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			av := math.Abs(math.Mod(v, 10))
			if math.IsNaN(av) || math.IsInf(av, 0) {
				av = 1
			}
			a[i] = av
			b[len(raw)-1-i] = av
		}
		dab := ChiSquare(a, b)
		dba := ChiSquare(b, a)
		return dab >= 0 && math.Abs(dab-dba) < 1e-9 && ChiSquare(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChiSquarePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	ChiSquare([]float64{1}, []float64{1, 2})
}

func TestImageDeterministic(t *testing.T) {
	g := img.New(16, 16)
	rng := rand.New(rand.NewSource(4))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	a, b := Image(g), Image(g)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("LBP image not deterministic")
		}
	}
}
