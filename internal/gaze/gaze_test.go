package gaze

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/camera"
	"repro/internal/geom"
	"repro/internal/scene"
)

func protoSetup(t testing.TB) (*scene.Simulator, *camera.Rig, []int) {
	t.Helper()
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	return sim, rig, []int{0, 1, 2, 3}
}

func TestObserveAllPersonsVisible(t *testing.T) {
	sim, rig, _ := protoSetup(t)
	est := NewEstimator(EstimatorOptions{Seed: 1})
	obs := est.Observe(sim.FrameState(250), rig)
	if len(obs) != 4 {
		t.Fatalf("observed %d persons, want 4", len(obs))
	}
	seen := map[int]bool{}
	for _, o := range obs {
		seen[o.PersonID] = true
		if o.Confidence <= 0 || o.Confidence > 1 {
			t.Errorf("confidence %v outside (0,1]", o.Confidence)
		}
		if math.Abs(o.GazeDir.Norm()-1) > 1e-9 {
			t.Errorf("gaze dir not unit: %v", o.GazeDir)
		}
	}
	if len(seen) != 4 {
		t.Error("duplicate person observations in best-view mode")
	}
}

func TestObserveAllCamerasMode(t *testing.T) {
	sim, rig, _ := protoSetup(t)
	est := NewEstimator(EstimatorOptions{Seed: 1, AllCameras: true})
	obs := est.Observe(sim.FrameState(250), rig)
	// Every person is visible to all 4 corner cameras in the prototype.
	if len(obs) != 16 {
		t.Errorf("observed %d, want 16 (4 persons × 4 cameras)", len(obs))
	}
}

func TestObservationNoiseIsDeterministic(t *testing.T) {
	sim, rig, _ := protoSetup(t)
	est1 := NewEstimator(EstimatorOptions{Seed: 7})
	est2 := NewEstimator(EstimatorOptions{Seed: 7})
	a := est1.Observe(sim.FrameState(100), rig)
	b := est2.Observe(sim.FrameState(100), rig)
	for i := range a {
		if a[i].HeadPos != b[i].HeadPos || a[i].GazeDir != b[i].GazeDir {
			t.Fatal("same seed should give identical observations")
		}
	}
	est3 := NewEstimator(EstimatorOptions{Seed: 8})
	c := est3.Observe(sim.FrameState(100), rig)
	if a[0].GazeDir == c[0].GazeDir {
		t.Error("different seeds should give different noise")
	}
}

func TestNoNoiseObservationsExact(t *testing.T) {
	sim, rig, _ := protoSetup(t)
	est := NewEstimator(NoNoise())
	fs := sim.FrameState(250)
	obs := est.Observe(fs, rig)
	for _, o := range obs {
		cam, err := rig.Camera(o.Camera)
		if err != nil {
			t.Fatal(err)
		}
		var truth scene.PersonState
		for _, p := range fs.Persons {
			if p.ID == o.PersonID {
				truth = p
			}
		}
		wantHead := cam.WorldToCam().ApplyPoint(truth.Head.Position)
		if !o.HeadPos.ApproxEq(wantHead, 1e-9) {
			t.Errorf("P%d head = %v, want %v", o.PersonID+1, o.HeadPos, wantHead)
		}
		wantGaze := cam.WorldToCam().ApplyDir(truth.Gaze).Unit()
		if !o.GazeDir.ApproxEq(wantGaze, 1e-9) {
			t.Errorf("P%d gaze = %v, want %v", o.PersonID+1, o.GazeDir, wantGaze)
		}
	}
}

func TestPerturbDirectionStatistics(t *testing.T) {
	rng := newObsRand(3, 1, 2, "C1")
	d := geom.V3(1, 0, 0)
	sigma := geom.Deg2Rad(3)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		p := perturbDirection(d, sigma, rng)
		if math.Abs(p.Norm()-1) > 1e-9 {
			t.Fatal("perturbed direction not unit")
		}
		sum += p.AngleTo(d)
	}
	meanErr := geom.Rad2Deg(sum / n)
	// Mean angular error of a 2-D Gaussian with σ=3° is σ·√(π/2) ≈ 3.76°.
	if meanErr < 2.5 || meanErr > 5 {
		t.Errorf("mean angular error = %v°, want ≈ 3.8°", meanErr)
	}
}

// TestLookAtMatchesGroundTruthNoNoise: with exact observations, the
// detected look-at matrix must equal the scripted ground truth at the
// paper's two reference frames.
func TestLookAtMatchesGroundTruthNoNoise(t *testing.T) {
	sim, rig, ids := protoSetup(t)
	est := NewEstimator(NoNoise())
	det := NewDetector()
	for _, frame := range []int{250, 375} {
		fs := sim.FrameState(frame)
		obs := est.Observe(fs, rig)
		m, err := det.LookAt(obs, rig, ids)
		if err != nil {
			t.Fatal(err)
		}
		truth := fs.TrueLookAt()
		for i := range ids {
			for j := range ids {
				if m.M[i][j] != truth[i][j] {
					t.Errorf("frame %d: M[%d][%d] = %d, truth %d",
						frame, i, j, m.M[i][j], truth[i][j])
				}
			}
		}
	}
}

func TestLookAtFig7Configuration(t *testing.T) {
	// Under realistic noise single frames flicker (long cross-table
	// edges detect at ≈85%), so, like the pipeline's temporal layer, we
	// majority-vote over a short window around t = 10 s. The window
	// stays well inside the scripted Fig. 7 segment (frames 207–299).
	sim, rig, ids := protoSetup(t)
	est := NewEstimator(EstimatorOptions{Seed: 42}) // realistic noise
	det := NewDetector()
	votes := NewSummary(ids)
	for f := 245; f <= 255; f++ {
		obs := est.Observe(sim.FrameState(f), rig)
		m, err := det.LookAt(obs, rig, ids)
		if err != nil {
			t.Fatal(err)
		}
		if err := votes.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	maj := NewMatrix(ids)
	for i := range ids {
		for j := range ids {
			if votes.Counts[i][j]*2 > votes.Frames {
				maj.M[i][j] = 1
			}
		}
	}
	// Fig. 7: yellow(0) ↔ green(2) eye contact; blue(1) → green;
	// black(3) → blue.
	if !maj.EyeContact(0, 2) {
		t.Errorf("expected yellow-green eye contact; votes: %v", votes.Counts)
	}
	pairs := maj.EyeContactPairs()
	if len(pairs) != 1 || pairs[0] != [2]int{0, 2} {
		t.Errorf("EC pairs = %v, want [[0 2]]", pairs)
	}
	if maj.At(1, 2) != 1 || maj.At(3, 1) != 1 {
		t.Errorf("Fig. 7 directed edges missing: %v", maj.M)
	}
}

func TestLookAtCrossCameraTransformChain(t *testing.T) {
	// Force observations from *different* cameras and verify the Eq. 2
	// chain still detects the scripted eye contact.
	sim, rig, ids := protoSetup(t)
	fs := sim.FrameState(250)
	det := NewDetector()

	// Build exact observations manually: P1 from C1, P3 from C3, etc.
	camFor := map[int]string{0: "C1", 1: "C2", 2: "C3", 3: "C4"}
	var obs []Observation
	for _, p := range fs.Persons {
		cam, err := rig.Camera(camFor[p.ID])
		if err != nil {
			t.Fatal(err)
		}
		w2c := cam.WorldToCam()
		obs = append(obs, Observation{
			PersonID:   p.ID,
			Camera:     cam.Name,
			HeadPos:    w2c.ApplyPoint(p.Head.Position),
			GazeDir:    w2c.ApplyDir(p.Gaze),
			HeadRadius: p.HeadRadius,
			Confidence: 1,
		})
	}
	m, err := det.LookAt(obs, rig, ids)
	if err != nil {
		t.Fatal(err)
	}
	truth := fs.TrueLookAt()
	for i := range ids {
		for j := range ids {
			if m.M[i][j] != truth[i][j] {
				t.Errorf("cross-camera M[%d][%d] = %d, truth %d", i, j, m.M[i][j], truth[i][j])
			}
		}
	}
}

func TestLookAtHandlesMissingPerson(t *testing.T) {
	sim, rig, ids := protoSetup(t)
	est := NewEstimator(NoNoise())
	obs := est.Observe(sim.FrameState(250), rig)
	// Drop P2's observations entirely.
	var filtered []Observation
	for _, o := range obs {
		if o.PersonID != 1 {
			filtered = append(filtered, o)
		}
	}
	det := NewDetector()
	m, err := det.LookAt(filtered, rig, ids)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ids {
		if m.M[1][j] != 0 || m.M[j][1] != 0 {
			t.Error("missing person should have zero row and column")
		}
	}
	// Remaining relations survive: P1↔P3 EC still detected.
	if !m.EyeContact(0, 2) {
		t.Error("present persons should still be analysed")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix([]int{0, 2, 5})
	m.M[0][1] = 1
	if m.At(0, 2) != 1 {
		t.Error("At should address by participant ID")
	}
	if m.At(9, 0) != 0 {
		t.Error("unknown ID should read 0")
	}
	if len(m.Edges()) != 1 {
		t.Errorf("edges = %v", m.Edges())
	}
	m.M[1][0] = 1
	if !m.EyeContact(0, 2) {
		t.Error("mutual edges should be eye contact")
	}
}

func TestSummaryAccumulation(t *testing.T) {
	ids := []int{0, 1}
	s := NewSummary(ids)
	m := NewMatrix(ids)
	m.M[0][1] = 1
	for i := 0; i < 10; i++ {
		if err := s.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if s.Frames != 10 || s.Counts[0][1] != 10 || s.Counts[1][0] != 0 {
		t.Errorf("summary = %+v", s)
	}
	cols := s.ColumnSums()
	if cols[0] != 0 || cols[1] != 10 {
		t.Errorf("column sums = %v", cols)
	}
	rows := s.RowSums()
	if rows[0] != 10 || rows[1] != 0 {
		t.Errorf("row sums = %v", rows)
	}
	if s.Dominant() != 1 {
		t.Errorf("dominant = %d, want 1", s.Dominant())
	}
	// Mismatched matrix rejected.
	if err := s.Add(NewMatrix([]int{0, 1, 2})); err == nil {
		t.Error("mismatched Add should fail")
	}
	if s.String() == "" {
		t.Error("summary should render")
	}
}

func TestSortedIDs(t *testing.T) {
	got := SortedIDs(map[int]bool{3: true, 0: true, 7: true})
	want := []int{0, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
}

func TestRadiusScaleMonotonic(t *testing.T) {
	// Larger sphere radius can only add detections, never remove them
	// — the monotonicity behind the T-B ablation sweep.
	sim, rig, ids := protoSetup(t)
	est := NewEstimator(EstimatorOptions{Seed: 5, GazeNoiseDeg: 6})
	obs := est.Observe(sim.FrameState(250), rig)
	small := &Detector{RadiusScale: 0.5}
	large := &Detector{RadiusScale: 2.0}
	ms, err := small.LookAt(obs, rig, ids)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := large.LookAt(obs, rig, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		for j := range ids {
			if ms.M[i][j] == 1 && ml.M[i][j] == 0 {
				t.Errorf("radius growth removed edge (%d,%d)", i, j)
			}
		}
	}
}

// TestLookAtStructuralInvariants: for any frame and noise seed, the
// matrix is binary, has a zero diagonal, and each row has at most one
// set entry (a person looks at one head at a time).
func TestLookAtStructuralInvariants(t *testing.T) {
	sim, rig, ids := protoSetup(t)
	det := NewDetector()
	f := func(frame uint16, seed int64, noise8 uint8) bool {
		est := NewEstimator(EstimatorOptions{
			Seed: seed, GazeNoiseDeg: float64(noise8%10) + 0.1,
		})
		fs := sim.FrameState(int(frame) % 610)
		obs := est.Observe(fs, rig)
		m, err := det.LookAt(obs, rig, ids)
		if err != nil {
			return false
		}
		for i := range ids {
			row := 0
			for j := range ids {
				v := m.M[i][j]
				if v != 0 && v != 1 {
					return false
				}
				if i == j && v != 0 {
					return false
				}
				row += v
			}
			if row > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
