// Package gaze implements DiEvent's gaze layer (paper §II-D.1): head
// pose and gaze-direction estimation from camera observations, the
// cross-camera transform chain of Eq. 1–2, eye-contact detection by
// ray–sphere intersection (Eq. 3–5), per-frame look-at matrices, and the
// multi-frame summary matrix of Fig. 9.
//
// The estimator plays the role of the OpenFace toolkit in the paper's
// pipeline: it produces per-camera (head pose, gaze vector) observations
// with a calibrated angular noise model, as documented in DESIGN.md §1.
package gaze

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/camera"
	"repro/internal/geom"
	"repro/internal/scene"
)

// Observation is one person's head/gaze estimate from one camera,
// expressed in that camera's reference frame — the exact inputs of the
// paper's Fig. 6 construction.
type Observation struct {
	// PersonID is the participant this observation belongs to (assigned
	// by face recognition upstream).
	PersonID int
	// Camera is the observing camera's frame name.
	Camera string
	// HeadPos is the head centre in the camera frame (metres).
	HeadPos geom.Vec3
	// GazeDir is the unit gaze direction in the camera frame.
	GazeDir geom.Vec3
	// HeadRadius is the person's head-sphere radius (Eq. 3).
	HeadRadius float64
	// Confidence in [0,1] reflects viewing conditions (distance and
	// angle); downstream layers weigh observations by it.
	Confidence float64
}

// EstimatorOptions configure the observation noise model.
type EstimatorOptions struct {
	// GazeNoiseDeg is the σ of angular noise added to gaze directions,
	// in degrees. OpenFace reports ≈ 9° mean gaze error in the wild and
	// better in controlled settings; 3° models the paper's fixed-camera
	// meeting room (default 3).
	GazeNoiseDeg float64
	// PosNoise is the σ of head-position noise in metres (default 0.02).
	PosNoise float64
	// Seed drives the deterministic noise streams.
	Seed int64
	// AllCameras, when true, emits one observation per camera that sees
	// each person; otherwise only the best view is used (the paper's
	// "Pk seen by C1" single-observation reading).
	AllCameras bool
}

func (o EstimatorOptions) withDefaults() EstimatorOptions {
	if o.GazeNoiseDeg == 0 {
		o.GazeNoiseDeg = 3
	}
	if o.PosNoise == 0 {
		o.PosNoise = 0.02
	}
	return o
}

// NoNoise returns options that produce exact observations — useful for
// isolating geometric errors from sensor errors in ablations.
func NoNoise() EstimatorOptions {
	return EstimatorOptions{GazeNoiseDeg: -1, PosNoise: -1}
}

// Estimator converts ground-truth frame states into noisy per-camera
// observations.
type Estimator struct {
	opt EstimatorOptions
}

// NewEstimator builds an estimator.
func NewEstimator(opt EstimatorOptions) *Estimator {
	return &Estimator{opt: opt.withDefaults()}
}

// Observe produces observations for every participant visible to the
// rig at this frame. Persons seen by no camera yield no observation —
// the multilayer analysis handles such dropouts.
func (e *Estimator) Observe(fs scene.FrameState, rig *camera.Rig) []Observation {
	var out []Observation
	for _, p := range fs.Persons {
		if e.opt.AllCameras {
			for _, cam := range rig.Cameras {
				if cam.Sees(p.Head.Position) {
					out = append(out, e.observeOne(fs.Index, p, cam))
				}
			}
			continue
		}
		cam, err := rig.BestView(p.Head.Position)
		if err != nil {
			continue // occluded from every camera this frame
		}
		out = append(out, e.observeOne(fs.Index, p, cam))
	}
	return out
}

// observeOne builds one observation with deterministic noise keyed on
// (seed, frame, person, camera).
func (e *Estimator) observeOne(frame int, p scene.PersonState, cam *camera.Camera) Observation {
	w2c := cam.WorldToCam()
	headCam := w2c.ApplyPoint(p.Head.Position)
	gazeCam := w2c.ApplyDir(p.Gaze)

	rng := newObsRand(e.opt.Seed, uint64(frame), uint64(p.ID), cam.Name)
	if e.opt.PosNoise > 0 {
		headCam = headCam.Add(geom.V3(
			rng.NormFloat64()*e.opt.PosNoise,
			rng.NormFloat64()*e.opt.PosNoise,
			rng.NormFloat64()*e.opt.PosNoise,
		))
	}
	if e.opt.GazeNoiseDeg > 0 {
		gazeCam = perturbDirection(gazeCam, geom.Deg2Rad(e.opt.GazeNoiseDeg), rng)
	}

	// Confidence decays with distance (heads become small) and with
	// how far the face is turned from the camera (profile views track
	// worse) — mirroring how OpenFace confidence behaves.
	dist := headCam.Norm()
	distConf := geom.Clamp(1.5/math.Max(dist, 0.5), 0, 1)
	// Facing: angle between the person's gaze and the direction from
	// head to camera (0 = looking straight at the camera).
	toCam := headCam.Neg().Unit()
	facing := 0.5 + 0.5*gazeCam.Unit().Dot(toCam)
	conf := geom.Clamp(0.3+0.5*distConf+0.2*facing, 0, 1)

	return Observation{
		PersonID:   p.ID,
		Camera:     cam.Name,
		HeadPos:    headCam,
		GazeDir:    gazeCam.Unit(),
		HeadRadius: p.HeadRadius,
		Confidence: conf,
	}
}

// perturbDirection rotates a unit direction by a random small angle
// (σ radians) about a random orthogonal axis.
func perturbDirection(d geom.Vec3, sigma float64, rng *obsRand) geom.Vec3 {
	u := d.Unit()
	// Build an orthonormal basis {u, a, b}.
	ref := geom.V3(0, 0, 1)
	if math.Abs(u.Dot(ref)) > 0.99 {
		ref = geom.V3(0, 1, 0)
	}
	a := u.Cross(ref).Unit()
	b := u.Cross(a).Unit()
	// Small-angle offsets in the two orthogonal directions.
	da := rng.NormFloat64() * sigma
	db := rng.NormFloat64() * sigma
	return u.Add(a.Scale(math.Tan(da))).Add(b.Scale(math.Tan(db))).Unit()
}

// ErrNoObservation is returned when a required person has no usable
// observation in a frame.
var ErrNoObservation = errors.New("gaze: no observation for person")

// obsRand is the counter-based PRNG for observation noise.
type obsRand struct {
	state    uint64
	spare    float64
	hasSpare bool
}

func newObsRand(seed int64, frame, person uint64, cam string) *obsRand {
	h := uint64(14695981039346656037)
	for _, c := range []byte(cam) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return &obsRand{state: uint64(seed) ^ h ^ frame*0x9E3779B97F4A7C15 ^ person*0xBF58476D1CE4E5B9}
}

func (r *obsRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *obsRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *obsRand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u float64
	for {
		u = r.Float64()
		if u > 1e-12 {
			break
		}
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// String renders an observation compactly.
func (o Observation) String() string {
	return fmt.Sprintf("obs{P%d@%s head=%v gaze=%v conf=%.2f}",
		o.PersonID+1, o.Camera, o.HeadPos, o.GazeDir, o.Confidence)
}
