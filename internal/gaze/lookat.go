package gaze

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/camera"
	"repro/internal/geom"
)

// Matrix is the paper's per-frame look-at matrix (Fig. 4): M[x][y] = 1
// iff participant x is looking at participant y, indices following the
// detector's person ordering. The diagonal is structurally zero.
type Matrix struct {
	// IDs maps matrix index → participant ID.
	IDs []int
	// M is the n×n binary matrix.
	M [][]int
}

// NewMatrix allocates an empty matrix over the given participant IDs.
// Rows share one flat backing array, so construction is three
// allocations regardless of n — this runs once per frame.
func NewMatrix(ids []int) Matrix {
	n := len(ids)
	m := make([][]int, n)
	flat := make([]int, n*n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return Matrix{IDs: append([]int(nil), ids...), M: m}
}

// index returns the matrix index of a participant ID, or -1.
func (m Matrix) index(id int) int {
	for i, v := range m.IDs {
		if v == id {
			return i
		}
	}
	return -1
}

// At returns M[x][y] by participant IDs.
func (m Matrix) At(fromID, toID int) int {
	i, j := m.index(fromID), m.index(toID)
	if i < 0 || j < 0 {
		return 0
	}
	return m.M[i][j]
}

// EyeContact reports the paper's mutual-gaze condition: both (x,y) and
// (y,x) equal 1.
func (m Matrix) EyeContact(a, b int) bool {
	return m.At(a, b) == 1 && m.At(b, a) == 1
}

// EyeContactPairs lists all mutual-gaze pairs (each once, lower ID
// first).
func (m Matrix) EyeContactPairs() [][2]int {
	var out [][2]int
	for i := range m.IDs {
		for j := i + 1; j < len(m.IDs); j++ {
			if m.M[i][j] == 1 && m.M[j][i] == 1 {
				out = append(out, [2]int{m.IDs[i], m.IDs[j]})
			}
		}
	}
	return out
}

// Edges lists all directed look-at edges as (fromID, toID).
func (m Matrix) Edges() [][2]int {
	var out [][2]int
	for i := range m.IDs {
		for j := range m.IDs {
			if m.M[i][j] == 1 {
				out = append(out, [2]int{m.IDs[i], m.IDs[j]})
			}
		}
	}
	return out
}

// Detector runs the paper's eye-contact procedure (§II-D.1): for every
// ordered pair (Pk, Pl) it re-expresses Pl's head into the frame of the
// camera observing Pk (Eq. 1–2) and intersects Pk's gaze ray with Pl's
// head sphere (Eq. 3–5). The procedure runs n(n−1) times per frame,
// exactly as the paper states.
type Detector struct {
	// RadiusScale multiplies every head radius before the sphere test.
	// 1.0 is the physical head (Eq. 3 verbatim); the default 2.0 gives
	// an effective ≈6° acceptance cone at cross-table distance, which
	// absorbs the gaze estimator's ≈3° noise while staying far below
	// the ≈90° angular separation between participants. Experiment T-B
	// ablates this choice.
	RadiusScale float64
}

// NewDetector returns a detector with the default effective radius.
func NewDetector() *Detector { return &Detector{RadiusScale: 2} }

// ErrMissingTransform reports an unresolvable camera pair.
var ErrMissingTransform = errors.New("gaze: cannot resolve camera transform")

// LookAt builds the frame's look-at matrix from per-camera observations.
// When a person has several observations (AllCameras estimators), the
// highest-confidence one represents them. Persons with no observation
// yield all-zero rows and columns.
func (d *Detector) LookAt(obs []Observation, rig *camera.Rig, ids []int) (Matrix, error) {
	m := NewMatrix(ids)
	best := make(map[int]Observation, len(ids))
	for _, o := range obs {
		if cur, ok := best[o.PersonID]; !ok || o.Confidence > cur.Confidence {
			best[o.PersonID] = o
		}
	}
	for i, kid := range ids {
		ok, have := best[kid]
		if !have {
			continue
		}
		for j, lid := range ids {
			if i == j {
				continue
			}
			ol, have := best[lid]
			if !have {
				continue
			}
			hit, err := d.test(ok, ol, rig)
			if err != nil {
				return m, fmt.Errorf("gaze: pair (P%d, P%d): %w", kid+1, lid+1, err)
			}
			if hit {
				m.M[i][j] = 1
			}
		}
	}
	return m, nil
}

// test implements the paper's Eq. 2–5 for one ordered pair: is k looking
// at l?
func (d *Detector) test(k, l Observation, rig *camera.Rig) (bool, error) {
	// Gaze ray of Pk in Pk's camera frame (Eq. 4: x = o + d·l).
	ray := geom.NewRay(k.HeadPos, k.GazeDir)

	// Pl's head position re-expressed in Pk's camera frame:
	// ¹HPl = ¹T₂ · ²HPl (Eq. 1/2).
	var headK geom.Vec3
	if k.Camera == l.Camera {
		headK = l.HeadPos
	} else {
		t, err := rig.Transform(k.Camera, l.Camera)
		if err != nil {
			return false, fmt.Errorf("%v: %w", err, ErrMissingTransform)
		}
		headK = t.ApplyPoint(l.HeadPos)
	}

	// Sphere test (Eq. 3, 5): w ∈ ℝ⁺ means two crossing points.
	sphere := geom.NewSphere(headK, l.HeadRadius*d.RadiusScale)
	return ray.IntersectSphere(sphere).Hit, nil
}

// Summary accumulates look-at matrices over frames — the paper's Fig. 9
// matrix, whose (x,y) entry counts frames where Px looked at Py.
type Summary struct {
	IDs    []int
	Counts [][]int
	Frames int
}

// NewSummary allocates a summary over participant IDs.
func NewSummary(ids []int) *Summary {
	n := len(ids)
	c := make([][]int, n)
	for i := range c {
		c[i] = make([]int, n)
	}
	return &Summary{IDs: append([]int(nil), ids...), Counts: c}
}

// Add accumulates one frame's matrix. Matrices over different ID sets
// are rejected.
func (s *Summary) Add(m Matrix) error {
	if len(m.IDs) != len(s.IDs) {
		return fmt.Errorf("gaze: summary over %d ids given %d: %w",
			len(s.IDs), len(m.IDs), ErrNoObservation)
	}
	for i := range s.IDs {
		if m.IDs[i] != s.IDs[i] {
			return fmt.Errorf("gaze: summary id mismatch at %d: %w", i, ErrNoObservation)
		}
	}
	for i := range s.Counts {
		for j := range s.Counts[i] {
			s.Counts[i][j] += m.M[i][j]
		}
	}
	s.Frames++
	return nil
}

// ColumnSums returns per-participant "was looked at" totals — the
// paper's dominance signal.
func (s *Summary) ColumnSums() []int {
	out := make([]int, len(s.IDs))
	for j := range s.IDs {
		for i := range s.IDs {
			out[j] += s.Counts[i][j]
		}
	}
	return out
}

// RowSums returns per-participant "looked at others" totals.
func (s *Summary) RowSums() []int {
	out := make([]int, len(s.IDs))
	for i := range s.IDs {
		for j := range s.IDs {
			out[i] += s.Counts[i][j]
		}
	}
	return out
}

// Dominant returns the participant ID with the maximal column sum — the
// paper identifies the meeting's dominant participant this way ("the
// yellow participant (P1) is the dominate of the meeting since the
// summation of the participant P1 column is the maximum").
func (s *Summary) Dominant() int {
	cols := s.ColumnSums()
	best, bestV := 0, -1
	for j, v := range cols {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return s.IDs[best]
}

// String renders the summary like the paper's Fig. 9 table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "")
	for _, id := range s.IDs {
		fmt.Fprintf(&b, "%6s", fmt.Sprintf("P%d", id+1))
	}
	b.WriteByte('\n')
	for i, id := range s.IDs {
		fmt.Fprintf(&b, "%6s", fmt.Sprintf("P%d", id+1))
		for j := range s.IDs {
			fmt.Fprintf(&b, "%6d", s.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	cols := s.ColumnSums()
	fmt.Fprintf(&b, "%6s", "Σcol")
	for _, v := range cols {
		fmt.Fprintf(&b, "%6d", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// SortedIDs returns a sorted copy of arbitrary participant IDs (helper
// for building stable matrices from detection maps).
func SortedIDs(ids map[int]bool) []int {
	out := make([]int, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
