package summarize

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/img"

	"repro/internal/emotion"
	"repro/internal/gaze"
	"repro/internal/layers"
	"repro/internal/parsing"
)

// buildResult fabricates a multilayer result with one strong EC episode
// and an emotion swing.
func buildResult(t *testing.T) *layers.Result {
	t.Helper()
	ctx := layers.Context{
		Location: "lab", Occasion: "meeting",
		Participants: []layers.Participant{
			{ID: 0, Name: "P1", Color: "yellow"},
			{ID: 1, Name: "P2", Color: "blue"},
			{ID: 2, Name: "P3", Color: "green"},
		},
	}
	a, err := layers.NewAnalyzer(ctx, layers.Options{SmoothWindow: 3, MinECFrames: 10})
	if err != nil {
		t.Fatal(err)
	}
	ids := ctx.IDs()
	for i := 0; i < 300; i++ {
		m := gaze.NewMatrix(ids)
		// Strong EC episode frames 100-160 between P1 and P3; others
		// look at P1 throughout (dominance).
		m.M[1][0] = 1
		m.M[2][0] = 1
		if i >= 100 && i < 160 {
			m.M[0][2] = 1
		}
		emo := emotion.Neutral
		if i >= 150 {
			emo = emotion.Happy
		}
		in := layers.FrameInput{
			Index: i, Time: time.Duration(i) * 40 * time.Millisecond,
			LookAt: m,
			Emotions: map[int]layers.EmotionObs{
				0: {Label: emo, Confidence: 0.9},
				1: {Label: emotion.Neutral, Confidence: 0.9},
			},
		}
		if err := a.Push(in); err != nil {
			t.Fatal(err)
		}
	}
	return a.Finalize()
}

func TestSummarizeBasics(t *testing.T) {
	res := buildResult(t)
	s, err := Summarize(res, nil, Options{TopK: 3, WindowLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Highlights) == 0 {
		t.Fatal("no highlights")
	}
	// The best highlight must overlap the EC episode [100,160).
	h := s.Highlights[0]
	if h.End <= 95 || h.Start >= 165 {
		t.Errorf("top highlight [%d,%d) misses the EC episode", h.Start, h.End)
	}
	if len(h.Reasons) == 0 {
		t.Error("highlight should carry reasons")
	}
	// P1 receives all gaze: dominant.
	if s.Dominant != 0 {
		t.Errorf("dominant = %d, want 0", s.Dominant)
	}
	if s.DominanceShare <= 0.5 {
		t.Errorf("dominance share = %v", s.DominanceShare)
	}
	if !strings.Contains(s.Digest, "P1") {
		t.Error("digest should mention the dominant participant")
	}
}

func TestSummarizeWindowsDisjoint(t *testing.T) {
	res := buildResult(t)
	s, err := Summarize(res, nil, Options{TopK: 5, WindowLen: 30, MinGap: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(s.Highlights); i++ {
		for j := i + 1; j < len(s.Highlights); j++ {
			a, b := s.Highlights[i], s.Highlights[j]
			if a.Start < b.End+10 && b.Start < a.End+10 {
				t.Errorf("highlights %v and %v violate spacing", a, b)
			}
		}
	}
	// Ordered by score.
	for i := 1; i < len(s.Highlights); i++ {
		if s.Highlights[i].Score > s.Highlights[i-1].Score {
			t.Error("highlights not score-ordered")
		}
	}
}

func TestSummarizeWithParse(t *testing.T) {
	res := buildResult(t)
	parse := &parsing.Parse{
		NumFrames: 300,
		Shots: []parsing.Shot{
			{Start: 0, End: 150, KeyFrame: 70},
			{Start: 150, End: 300, KeyFrame: 220},
		},
	}
	s, err := Summarize(res, parse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.KeyFrames) != 2 || s.KeyFrames[0] != 70 || s.KeyFrames[1] != 220 {
		t.Errorf("keyframes = %v", s.KeyFrames)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("nil result err = %v", err)
	}
	if _, err := Summarize(&layers.Result{}, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty result err = %v", err)
	}
}

func TestSummarizeShortEvent(t *testing.T) {
	// Window longer than the event must clamp, not panic.
	ctx := layers.Context{Participants: []layers.Participant{{ID: 0, Name: "P1"}, {ID: 1, Name: "P2"}}}
	a, _ := layers.NewAnalyzer(ctx, layers.Options{SmoothWindow: 1, MinECFrames: 2})
	ids := ctx.IDs()
	for i := 0; i < 10; i++ {
		m := gaze.NewMatrix(ids)
		m.M[0][1], m.M[1][0] = 1, 1
		if err := a.Push(layers.FrameInput{Index: i, LookAt: m,
			Emotions: map[int]layers.EmotionObs{}}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Summarize(a.Finalize(), nil, Options{WindowLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Highlights) == 0 {
		t.Error("short event should still produce a highlight")
	}
	if s.Highlights[0].End > 10 {
		t.Errorf("highlight exceeds event length: %+v", s.Highlights[0])
	}
}

func TestContactSheet(t *testing.T) {
	frames := make([]*img.Gray, 5)
	for i := range frames {
		frames[i] = img.New(64, 48)
		frames[i].Fill(uint8(50 + i*40))
	}
	sheet, err := ContactSheet(frames, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	// 3 columns × 2 rows of 32×24 thumbs + gutters.
	if sheet.W != 3*32+4*2 || sheet.H != 2*24+3*2 {
		t.Fatalf("sheet dims %dx%d", sheet.W, sheet.H)
	}
	// First thumb content present at its cell.
	if sheet.At(2+5, 2+5) != 50 {
		t.Errorf("thumb 0 pixel = %d", sheet.At(7, 7))
	}
	// Last cell of an incomplete row stays background.
	if sheet.At(2+2*(32+2)+5, 2+24+2+5) == 210 {
		t.Error("empty cell should stay background")
	}
	if _, err := ContactSheet(nil, 3, 32); !errors.Is(err, ErrNoData) {
		t.Error("empty frames should fail")
	}
	if _, err := ContactSheet(frames, 0, 32); !errors.Is(err, ErrNoData) {
		t.Error("zero cols should fail")
	}
}
