// Package summarize implements DiEvent's video-summarisation component
// (paper §I: "detecting and highlighting the most important scenes,
// shots, and events inside videos; and reducing the time needed for
// analyzing a video by sociologists"). Importance is scored from the
// fused multilayer evidence — eye-contact events, emotion dynamics and
// overall-emotion swings — then the top non-overlapping highlight
// windows and per-shot key frames form the digest, alongside the Fig. 9
// look-at summary and dominance analysis.
package summarize

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/layers"
	"repro/internal/parsing"
)

// Options tune the summariser.
type Options struct {
	// TopK is the number of highlight windows to report (default 5).
	TopK int
	// WindowLen is the highlight window length in frames (default 50,
	// two seconds at 25 fps).
	WindowLen int
	// MinGap is the minimum spacing between chosen windows (default
	// WindowLen).
	MinGap int
}

func (o Options) withDefaults() Options {
	if o.TopK == 0 {
		o.TopK = 5
	}
	if o.WindowLen == 0 {
		o.WindowLen = 50
	}
	if o.MinGap == 0 {
		o.MinGap = o.WindowLen
	}
	return o
}

// Highlight is one selected important window.
type Highlight struct {
	// Start, End delimit the window as [Start, End).
	Start, End int
	// Score is the accumulated importance.
	Score float64
	// Reasons lists the evidence kinds that contributed.
	Reasons []string
}

// Summary is the event digest.
type Summary struct {
	// Highlights are the top windows, best first.
	Highlights []Highlight
	// KeyFrames are representative frames, one per detected shot (empty
	// when no parse was supplied).
	KeyFrames []int
	// Dominant is the participant ID with the maximal look-at column
	// sum (the paper's dominance rule), -1 when nothing was observed.
	Dominant int
	// DominanceShare is the dominant participant's share of all
	// look-at counts.
	DominanceShare float64
	// Digest is a human-readable report.
	Digest string
}

// ErrNoData is returned when the analysis result is empty.
var ErrNoData = errors.New("summarize: no analysis data")

// Summarize builds the digest from a multilayer result and (optionally)
// a composition parse.
func Summarize(res *layers.Result, parse *parsing.Parse, opt Options) (*Summary, error) {
	if res == nil || res.Frames == 0 {
		return nil, ErrNoData
	}
	opt = opt.withDefaults()

	importance, reasons := scoreFrames(res)

	s := &Summary{Dominant: -1}
	s.Highlights = pickWindows(importance, reasons, opt)

	if parse != nil {
		for _, shot := range parse.Shots {
			s.KeyFrames = append(s.KeyFrames, shot.KeyFrame)
		}
	}

	// Dominance from the raw (unsmoothed) summary, matching Fig. 9.
	cols := res.Summary.ColumnSums()
	total := 0
	bestIdx, bestV := -1, 0
	for j, v := range cols {
		total += v
		if v > bestV {
			bestIdx, bestV = j, v
		}
	}
	if bestIdx >= 0 && total > 0 {
		s.Dominant = res.Summary.IDs[bestIdx]
		s.DominanceShare = float64(bestV) / float64(total)
	}

	s.Digest = digest(res, s)
	return s, nil
}

// scoreFrames accumulates per-frame importance from the multilayer
// evidence.
func scoreFrames(res *layers.Result) ([]float64, []map[string]bool) {
	n := res.Frames
	imp := make([]float64, n)
	why := make([]map[string]bool, n)
	mark := func(f int, w float64, reason string) {
		if f < 0 || f >= n {
			return
		}
		imp[f] += w
		if why[f] == nil {
			why[f] = make(map[string]bool, 2)
		}
		why[f][reason] = true
	}

	// Eye-contact events: weight every covered frame, bonus at onset.
	for _, e := range res.Events {
		for f := e.Start; f < e.End && f < n; f++ {
			mark(f, 1, "eye-contact")
		}
		mark(e.Start, 2, "eye-contact-start")
	}
	// Alerts: strong local spikes.
	for _, a := range res.Alerts {
		w := 2.0
		if a.Kind == layers.AlertNegativeSpike {
			w = 4
		}
		for off := -5; off <= 5; off++ {
			mark(a.Frame+off, w/(1+math.Abs(float64(off))), a.Kind.String())
		}
	}
	// Overall-emotion swings: |ΔOH| between consecutive frames.
	for i := 1; i < len(res.Overall); i++ {
		d := math.Abs(res.Overall[i].OH - res.Overall[i-1].OH)
		if d > 5 {
			mark(res.Overall[i].Index, d/10, "emotion-swing")
		}
	}
	return imp, why
}

// pickWindows selects the TopK highest-scoring non-overlapping windows.
func pickWindows(imp []float64, why []map[string]bool, opt Options) []Highlight {
	n := len(imp)
	if n == 0 {
		return nil
	}
	w := opt.WindowLen
	if w > n {
		w = n
	}
	// Sliding-window sums.
	sums := make([]float64, n-w+1)
	var run float64
	for i := 0; i < w; i++ {
		run += imp[i]
	}
	sums[0] = run
	for i := 1; i < len(sums); i++ {
		run += imp[i+w-1] - imp[i-1]
		sums[i] = run
	}
	type cand struct {
		start int
		score float64
	}
	cands := make([]cand, len(sums))
	for i, s := range sums {
		cands[i] = cand{start: i, score: s}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })

	var out []Highlight
	for _, c := range cands {
		if len(out) >= opt.TopK || c.score <= 0 {
			break
		}
		clash := false
		for _, h := range out {
			// Windows must not overlap and must keep MinGap spacing.
			if c.start < h.End+opt.MinGap && h.Start < c.start+w+opt.MinGap {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		reasons := map[string]bool{}
		for f := c.start; f < c.start+w; f++ {
			for r := range why[f] {
				reasons[r] = true
			}
		}
		rs := make([]string, 0, len(reasons))
		for r := range reasons {
			rs = append(rs, r)
		}
		sort.Strings(rs)
		out = append(out, Highlight{Start: c.start, End: c.start + w, Score: c.score, Reasons: rs})
	}
	return out
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// digest renders the human-readable report.
func digest(res *layers.Result, s *Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Event: %s", res.Context.Occasion)
	if res.Context.Location != "" {
		fmt.Fprintf(&b, " @ %s", res.Context.Location)
	}
	fmt.Fprintf(&b, " — %d participants, %d frames\n",
		len(res.Context.Participants), res.Frames)
	fmt.Fprintf(&b, "Mean overall happiness: %.1f%%  satisfaction: %.1f/100\n",
		res.MeanOH(), res.SatisfactionScore())
	fmt.Fprintf(&b, "Eye-contact events: %d  alerts: %d\n", len(res.Events), len(res.Alerts))
	if s.Dominant >= 0 {
		name := fmt.Sprintf("P%d", s.Dominant+1)
		if p, ok := res.Context.Participant(s.Dominant); ok && p.Name != "" {
			name = p.Name
			if p.Color != "" {
				name += " (" + p.Color + ")"
			}
		}
		fmt.Fprintf(&b, "Dominant participant: %s with %.0f%% of received gaze\n",
			name, s.DominanceShare*100)
	}
	if len(s.Highlights) > 0 {
		b.WriteString("Highlights:\n")
		for i, h := range s.Highlights {
			fmt.Fprintf(&b, "  %d. frames [%d,%d) score %.1f (%s)\n",
				i+1, h.Start, h.End, h.Score, strings.Join(h.Reasons, ", "))
		}
	}
	b.WriteString("Look-at summary (rows look at columns):\n")
	b.WriteString(res.Summary.String())
	return b.String()
}
