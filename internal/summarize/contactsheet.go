package summarize

import (
	"fmt"

	"repro/internal/img"
)

// ContactSheet tiles thumbnails of selected frames into one image — the
// visual digest a reviewer skims instead of the footage. Thumbnails are
// scaled to thumbW wide (aspect preserved), laid out cols per row,
// left-to-right then top-to-bottom, separated by a 2-pixel gutter.
func ContactSheet(frames []*img.Gray, cols, thumbW int) (*img.Gray, error) {
	if len(frames) == 0 {
		return nil, ErrNoData
	}
	if cols <= 0 || thumbW <= 0 {
		return nil, fmt.Errorf("summarize: sheet cols=%d thumbW=%d: %w", cols, thumbW, ErrNoData)
	}
	const gutter = 2
	// Uniform thumbnail height from the first frame's aspect ratio; all
	// frames from one rig share dimensions, and strays are resized.
	thumbH := thumbW * frames[0].H / frames[0].W
	if thumbH < 1 {
		thumbH = 1
	}
	rows := (len(frames) + cols - 1) / cols
	sheet := img.New(cols*thumbW+(cols+1)*gutter, rows*thumbH+(rows+1)*gutter)
	sheet.Fill(20)
	for i, f := range frames {
		t := f.Resize(thumbW, thumbH)
		r := i / cols
		c := i % cols
		x0 := gutter + c*(thumbW+gutter)
		y0 := gutter + r*(thumbH+gutter)
		for y := 0; y < thumbH; y++ {
			copy(sheet.Pix[(y0+y)*sheet.W+x0:(y0+y)*sheet.W+x0+thumbW],
				t.Pix[y*thumbW:(y+1)*thumbW])
		}
	}
	return sheet, nil
}
