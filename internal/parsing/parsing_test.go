package parsing

import (
	"errors"
	"testing"

	"repro/internal/camera"
	"repro/internal/img"
	"repro/internal/scene"
	"repro/internal/video"
)

var compCache = map[float64]*video.Composition{}

// buildComposition renders a multi-shot edit from two very different
// camera angles with known boundaries. Compositions are cached per noise
// level — rendering 640×480 frames dominates test time otherwise.
func buildComposition(t testing.TB, noise float64) *video.Composition {
	t.Helper()
	if c, ok := compCache[noise]; ok {
		return c
	}
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := video.RenderOptions{NoiseSigma: noise}
	mk := func(cam int, from, to int) video.Source {
		s, err := video.NewSourceRange(video.NewRenderer(sim, rig.Cameras[cam], opt), from, to)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	comp, err := video.Compose(
		[]video.Source{mk(0, 0, 200), mk(2, 0, 200), mk(1, 0, 120)},
		[]video.Shot{
			{Source: 0, Len: 60},
			{Source: 1, Len: 50, TransitionIn: video.Cut},
			{Source: 2, Len: 45, TransitionIn: video.Cut},
			{Source: 0, Len: 60, TransitionIn: video.Dissolve},
		})
	if err != nil {
		t.Fatal(err)
	}
	compCache[noise] = comp
	return comp
}

func TestDetectHardCuts(t *testing.T) {
	comp := buildComposition(t, 1.5)
	p, err := NewAnalyzer(Options{}).Analyze(comp.Source())
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(p.Boundaries, comp.TrueBoundaries(), 6)
	if m.Recall < 0.99 {
		t.Errorf("recall = %v (metrics %+v, detected %v, truth %v)",
			m.Recall, m, p.Boundaries, comp.TrueBoundaries())
	}
	if m.Precision < 0.7 {
		t.Errorf("precision = %v (detected %v)", m.Precision, p.Boundaries)
	}
}

func TestShotsPartitionStream(t *testing.T) {
	comp := buildComposition(t, 1)
	p, err := NewAnalyzer(Options{}).Analyze(comp.Source())
	if err != nil {
		t.Fatal(err)
	}
	if p.Shots[0].Start != 0 {
		t.Error("first shot must start at 0")
	}
	if p.Shots[len(p.Shots)-1].End != p.NumFrames {
		t.Error("last shot must end at stream end")
	}
	for i := 1; i < len(p.Shots); i++ {
		if p.Shots[i].Start != p.Shots[i-1].End {
			t.Errorf("gap between shot %d and %d", i-1, i)
		}
	}
	for _, s := range p.Shots {
		if s.KeyFrame < s.Start || s.KeyFrame >= s.End {
			t.Errorf("keyframe %d outside shot [%d,%d)", s.KeyFrame, s.Start, s.End)
		}
	}
}

func TestScenesCoverShots(t *testing.T) {
	comp := buildComposition(t, 1)
	p, err := NewAnalyzer(Options{}).Analyze(comp.Source())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scenes) == 0 {
		t.Fatal("no scenes")
	}
	seen := make(map[int]bool)
	for _, sc := range p.Scenes {
		for _, si := range sc.Shots {
			if seen[si] {
				t.Errorf("shot %d in two scenes", si)
			}
			seen[si] = true
		}
	}
	if len(seen) != len(p.Shots) {
		t.Errorf("scenes cover %d shots of %d", len(seen), len(p.Shots))
	}
	// Shots from the same camera returning later should be able to fold
	// into a similar scene — at minimum, scene count ≤ shot count.
	if len(p.Scenes) > len(p.Shots) {
		t.Error("more scenes than shots")
	}
}

func TestStaticVideoHasOneShot(t *testing.T) {
	// An uncut noisy stream must produce exactly one shot: no false
	// positives from sensor noise alone.
	sim, _ := scene.NewSimulator(scene.PrototypeScenario())
	rig, _ := camera.PrototypeRig(6, 5)
	src, _ := video.NewSourceRange(
		video.NewRenderer(sim, rig.Cameras[0], video.RenderOptions{NoiseSigma: 2, LightDrift: 4}),
		0, 180)
	p, err := NewAnalyzer(Options{}).Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shots) != 1 {
		t.Errorf("static stream produced %d shots: %v", len(p.Shots), p.Boundaries)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	_, err := NewAnalyzer(Options{}).AnalyzeFrames(nil)
	if !errors.Is(err, ErrEmptyStream) {
		t.Errorf("err = %v", err)
	}
}

func TestSingleFrame(t *testing.T) {
	f := video.Frame{Pixels: img.New(16, 16)}
	p, err := NewAnalyzer(Options{}).AnalyzeFrames([]video.Frame{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shots) != 1 || p.Shots[0].KeyFrame != 0 {
		t.Errorf("single-frame parse = %+v", p)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	det := []Boundary{{Frame: 10}, {Frame: 52}, {Frame: 200}}
	truth := []int{10, 50, 120}
	m := Evaluate(det, truth, 3)
	if m.TruePositives != 2 || m.FalsePositives != 1 || m.FalseNegatives != 1 {
		t.Errorf("metrics = %+v", m)
	}
	wantP, wantR := 2.0/3, 2.0/3
	if m.Precision != wantP || m.Recall != wantR {
		t.Errorf("P=%v R=%v", m.Precision, m.Recall)
	}
	// Perfect detection.
	perfect := Evaluate([]Boundary{{Frame: 5}}, []int{5}, 0)
	if perfect.F1 != 1 {
		t.Errorf("perfect F1 = %v", perfect.F1)
	}
	// Empty cases must not divide by zero.
	empty := Evaluate(nil, nil, 3)
	if empty.F1 != 0 || empty.Precision != 0 {
		t.Errorf("empty metrics = %+v", empty)
	}
}

func TestGradualDetection(t *testing.T) {
	comp := buildComposition(t, 1)
	p, err := NewAnalyzer(Options{}).Analyze(comp.Source())
	if err != nil {
		t.Fatal(err)
	}
	// The dissolve boundary (last truth) must be detected by either
	// detector within the dissolve span.
	truthDissolve := comp.TrueBoundaries()[2]
	found := false
	for _, b := range p.Boundaries {
		if b.Frame >= truthDissolve-3 && b.Frame <= truthDissolve+video.DissolveLen+3 {
			found = true
		}
	}
	if !found {
		t.Errorf("dissolve at %d not detected: %v", truthDissolve, p.Boundaries)
	}
}

func TestMinShotLenRespected(t *testing.T) {
	comp := buildComposition(t, 1)
	p, err := NewAnalyzer(Options{MinShotLen: 8}).Analyze(comp.Source())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Boundaries); i++ {
		if p.Boundaries[i].Frame-p.Boundaries[i-1].Frame < 8 {
			t.Errorf("boundaries %d and %d closer than MinShotLen",
				p.Boundaries[i-1].Frame, p.Boundaries[i].Frame)
		}
	}
}

// TestSceneSegmentationSplitsDistinctSettings verifies that shots from
// visually distinct settings (different lighting/background) land in
// different scenes, while return-shots to the same setting can rejoin.
func TestSceneSegmentationSplitsDistinctSettings(t *testing.T) {
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Source A: normal room. Source B: much brighter "second location".
	mk := func(opt video.RenderOptions, to int) video.Source {
		s, err := video.NewSourceRange(video.NewRenderer(sim, rig.Cameras[0], opt), 0, to)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	dark := video.RenderOptions{Background: 40, TableTone: 90}
	bright := video.RenderOptions{Background: 190, TableTone: 230}
	comp, err := video.Compose(
		[]video.Source{mk(dark, 120), mk(bright, 60)},
		[]video.Shot{
			{Source: 0, Len: 50},
			{Source: 1, Len: 50, TransitionIn: video.Cut},
			{Source: 0, Len: 50, TransitionIn: video.Cut},
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewAnalyzer(Options{}).Analyze(comp.Source())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shots) != 3 {
		t.Fatalf("detected %d shots, want 3 (%v)", len(p.Shots), p.Boundaries)
	}
	if len(p.Scenes) < 2 {
		t.Errorf("distinct settings should split scenes, got %d", len(p.Scenes))
	}
	// The bright shot must sit alone in its scene.
	for _, sc := range p.Scenes {
		for _, si := range sc.Shots {
			if si == 1 && len(sc.Shots) != 1 {
				t.Errorf("bright shot shares a scene: %v", sc.Shots)
			}
		}
	}
}
