// Package parsing implements DiEvent's video-composition analysis (paper
// §II-B): shot-boundary detection (hard cuts and gradual dissolves),
// key-frame extraction, and scene segmentation, producing the
// video → scene → shot → key-frame hierarchy of Fig. 3.
//
// Detection uses the classic dual-signal approach surveyed in the
// paper's reference [19]: per-frame χ² histogram distance plus mean
// absolute pixel difference, against an adaptive sliding-window
// threshold; gradual transitions use a twin-threshold accumulator.
package parsing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/img"
	"repro/internal/video"
)

// Options tune the analyzer. Zero values select calibrated defaults.
// The thresholds are relative to a trailing-window baseline so the
// detector adapts to each stream's noise floor.
type Options struct {
	// CutChiRel declares a hard-cut candidate when the χ² distance
	// exceeds CutChiRel × the window mean (default 3).
	CutChiRel float64
	// CutMadRel additionally requires the pixel difference to exceed
	// CutMadRel × the window mean MAD — the second opinion that keeps
	// global lighting flicker from registering as cuts (default 1.5).
	CutMadRel float64
	// ChiFloor and MadFloor are absolute minimums for the two cut
	// signals (defaults 5e-4 and 0.004) so near-zero baselines on
	// clean synthetic footage don't make the relative test hair-
	// triggered.
	ChiFloor, MadFloor float64
	// Window is the sliding window length in frames for the adaptive
	// baseline (default 24).
	Window int
	// MinShotLen suppresses boundaries closer than this to the
	// previous one (default 8 frames).
	MinShotLen int
	// GradualRel starts a gradual-transition candidate while χ² stays
	// above GradualRel × the window mean (default 8, with a 0.002
	// absolute floor); GradualHigh confirms the transition once the
	// accumulated χ² exceeds it across ≥3 frames (default 0.12).
	GradualRel, GradualHigh float64
	// SceneSim is the histogram-intersection similarity above which
	// two adjacent shots belong to the same scene (default 0.55).
	SceneSim float64
}

func (o Options) withDefaults() Options {
	if o.CutChiRel == 0 {
		o.CutChiRel = 3
	}
	if o.CutMadRel == 0 {
		o.CutMadRel = 1.5
	}
	if o.ChiFloor == 0 {
		o.ChiFloor = 5e-4
	}
	if o.MadFloor == 0 {
		o.MadFloor = 0.004
	}
	if o.Window == 0 {
		o.Window = 24
	}
	if o.MinShotLen == 0 {
		o.MinShotLen = 8
	}
	if o.GradualRel == 0 {
		o.GradualRel = 8
	}
	if o.GradualHigh == 0 {
		o.GradualHigh = 0.12
	}
	if o.SceneSim == 0 {
		o.SceneSim = 0.55
	}
	return o
}

// Boundary is a detected shot boundary.
type Boundary struct {
	// Frame is the first frame of the new shot.
	Frame int
	// Gradual reports whether the boundary was found by the
	// twin-threshold (dissolve) detector rather than the cut detector.
	Gradual bool
	// Score is the distance evidence at the boundary.
	Score float64
}

// Shot is a maximal run of frames between boundaries.
type Shot struct {
	// Start and End delimit the shot as [Start, End).
	Start, End int
	// KeyFrame is the index of the shot's representative frame.
	KeyFrame int
}

// Len returns the shot length in frames.
func (s Shot) Len() int { return s.End - s.Start }

// Scene is a group of visually similar consecutive shots.
type Scene struct {
	// Shots are indexes into the parse's Shots slice.
	Shots []int
	// Start and End delimit the scene as [Start, End) in frames.
	Start, End int
}

// Parse is the full composition hierarchy of Fig. 3.
type Parse struct {
	// NumFrames is the analyzed stream length.
	NumFrames int
	// Boundaries are the detected shot boundaries in order.
	Boundaries []Boundary
	// Shots partition [0, NumFrames).
	Shots []Shot
	// Scenes partition the shots.
	Scenes []Scene
}

// ErrEmptyStream is returned when the source has no frames.
var ErrEmptyStream = errors.New("parsing: empty stream")

// Analyzer decomposes a video stream.
type Analyzer struct {
	opt Options
}

// NewAnalyzer returns an analyzer with the given options.
func NewAnalyzer(opt Options) *Analyzer {
	return &Analyzer{opt: opt.withDefaults()}
}

// Analyze consumes the source and produces the composition hierarchy.
func (a *Analyzer) Analyze(src video.Source) (*Parse, error) {
	frames, err := video.Collect(src)
	if err != nil {
		return nil, fmt.Errorf("parsing: draining source: %w", err)
	}
	return a.AnalyzeFrames(frames)
}

// AnalyzeFrames is Analyze over pre-collected frames.
func (a *Analyzer) AnalyzeFrames(frames []video.Frame) (*Parse, error) {
	if len(frames) == 0 {
		return nil, ErrEmptyStream
	}
	hists := make([]img.Histogram, len(frames))
	for i, f := range frames {
		hists[i] = f.Pixels.Hist()
	}
	// Per-transition distances: d[i] is the distance between frame i-1
	// and frame i, i ≥ 1.
	chi := make([]float64, len(frames))
	mad := make([]float64, len(frames))
	for i := 1; i < len(frames); i++ {
		chi[i] = hists[i-1].ChiSquare(hists[i])
		mad[i] = img.MeanAbsDiff(frames[i-1].Pixels, frames[i].Pixels) / 255
	}

	boundaries := a.detectBoundaries(chi, mad)
	shots := a.buildShots(len(frames), boundaries, hists)
	scenes := a.groupScenes(shots, hists)

	return &Parse{
		NumFrames:  len(frames),
		Boundaries: boundaries,
		Shots:      shots,
		Scenes:     scenes,
	}, nil
}

// detectBoundaries runs the cut detector and the gradual detector and
// merges their findings.
func (a *Analyzer) detectBoundaries(chi, mad []float64) []Boundary {
	n := len(chi)
	var out []Boundary
	lastBoundary := -a.opt.MinShotLen

	// State for the gradual (twin-threshold) detector.
	gradStart := -1
	gradAccum := 0.0

	for i := 1; i < n; i++ {
		// Baseline from the trailing window, excluding i. The window
		// deliberately includes past boundary frames: one outlier among
		// Window samples barely moves the mean.
		lo := i - a.opt.Window
		if lo < 1 {
			lo = 1
		}
		meanChi, _ := meanStd(chi[lo:i])
		meanMad, _ := meanStd(mad[lo:i])
		chiThresh := math.Max(a.opt.CutChiRel*meanChi, a.opt.ChiFloor)
		madThresh := math.Max(a.opt.CutMadRel*meanMad, a.opt.MadFloor)

		isCut := chi[i] > chiThresh && mad[i] > madThresh
		if isCut && i-lastBoundary >= a.opt.MinShotLen {
			out = append(out, Boundary{Frame: i, Score: chi[i]})
			lastBoundary = i
			gradStart, gradAccum = -1, 0
			continue
		}

		// Gradual: sustained moderate χ² elevation accumulating to a
		// large total change (dissolves move the histogram steadily
		// without big per-frame pixel jumps).
		gradLow := math.Max(a.opt.GradualRel*meanChi, 0.002)
		if chi[i] > gradLow {
			if gradStart < 0 {
				gradStart = i
				gradAccum = 0
			}
			gradAccum += chi[i]
			if gradAccum > a.opt.GradualHigh && i-gradStart >= 2 &&
				gradStart-lastBoundary >= a.opt.MinShotLen {
				out = append(out, Boundary{Frame: gradStart, Gradual: true, Score: gradAccum})
				lastBoundary = gradStart
				gradStart, gradAccum = -1, 0
			}
		} else {
			gradStart, gradAccum = -1, 0
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Frame < out[y].Frame })
	return out
}

// buildShots partitions the stream at the boundaries and picks key
// frames.
func (a *Analyzer) buildShots(n int, bs []Boundary, hists []img.Histogram) []Shot {
	starts := []int{0}
	for _, b := range bs {
		if b.Frame > starts[len(starts)-1] {
			starts = append(starts, b.Frame)
		}
	}
	shots := make([]Shot, 0, len(starts))
	for i, s := range starts {
		e := n
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		shots = append(shots, Shot{
			Start:    s,
			End:      e,
			KeyFrame: keyFrame(hists, s, e),
		})
	}
	return shots
}

// keyFrame picks the frame of [start, end) whose histogram is closest to
// the shot's mean histogram — the standard centroid key-frame rule.
func keyFrame(hists []img.Histogram, start, end int) int {
	if end-start == 1 {
		return start
	}
	// Mean histogram.
	var mean [256]float64
	for i := start; i < end; i++ {
		t := float64(hists[i].Total())
		if t == 0 {
			continue
		}
		for b := 0; b < 256; b++ {
			mean[b] += float64(hists[i][b]) / t
		}
	}
	cnt := float64(end - start)
	for b := range mean {
		mean[b] /= cnt
	}
	best, bestD := start, math.Inf(1)
	for i := start; i < end; i++ {
		t := float64(hists[i].Total())
		var d float64
		for b := 0; b < 256; b++ {
			p := float64(hists[i][b]) / t
			q := mean[b]
			if p+q > 0 {
				d += (p - q) * (p - q) / (p + q)
			}
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// groupScenes merges consecutive shots whose key-frame histograms are
// similar (histogram intersection above SceneSim).
func (a *Analyzer) groupScenes(shots []Shot, hists []img.Histogram) []Scene {
	if len(shots) == 0 {
		return nil
	}
	scenes := []Scene{{Shots: []int{0}, Start: shots[0].Start, End: shots[0].End}}
	for i := 1; i < len(shots); i++ {
		cur := &scenes[len(scenes)-1]
		prevKey := hists[shots[i-1].KeyFrame]
		curKey := hists[shots[i].KeyFrame]
		if prevKey.Intersection(curKey) >= a.opt.SceneSim {
			cur.Shots = append(cur.Shots, i)
			cur.End = shots[i].End
		} else {
			scenes = append(scenes, Scene{Shots: []int{i}, Start: shots[i].Start, End: shots[i].End})
		}
	}
	return scenes
}

// meanStd returns the mean and standard deviation of xs (0,0 when empty).
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Metrics quantifies boundary detection against ground truth.
type Metrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	F1             float64
}

// Evaluate matches detected boundaries to ground-truth boundaries within
// a tolerance window (frames) and computes precision/recall/F1 — the
// standard shot-boundary benchmark protocol.
func Evaluate(detected []Boundary, truth []int, tolerance int) Metrics {
	var m Metrics
	usedDet := make([]bool, len(detected))
	for _, tb := range truth {
		matched := false
		for i, d := range detected {
			if usedDet[i] {
				continue
			}
			diff := d.Frame - tb
			if diff < 0 {
				diff = -diff
			}
			if diff <= tolerance {
				usedDet[i] = true
				matched = true
				break
			}
		}
		if matched {
			m.TruePositives++
		} else {
			m.FalseNegatives++
		}
	}
	for i := range detected {
		if !usedDet[i] {
			m.FalsePositives++
		}
	}
	if m.TruePositives+m.FalsePositives > 0 {
		m.Precision = float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
	}
	if m.TruePositives+m.FalseNegatives > 0 {
		m.Recall = float64(m.TruePositives) / float64(m.TruePositives+m.FalseNegatives)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
