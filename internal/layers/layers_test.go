package layers

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/emotion"
	"repro/internal/gaze"
)

func testContext() Context {
	return Context{
		Location: "meeting room",
		Occasion: "team dinner",
		Participants: []Participant{
			{ID: 0, Name: "P1", Color: "yellow"},
			{ID: 1, Name: "P2", Color: "blue"},
			{ID: 2, Name: "P3", Color: "green"},
			{ID: 3, Name: "P4", Color: "black"},
		},
		Relations: []Relation{{A: 0, B: 2, Kind: "colleagues"}},
	}
}

// frameWithEC builds a frame where a↔b are in mutual gaze.
func frameWithEC(idx int, ids []int, a, b int) FrameInput {
	m := gaze.NewMatrix(ids)
	ia, ib := -1, -1
	for i, id := range ids {
		if id == a {
			ia = i
		}
		if id == b {
			ib = i
		}
	}
	m.M[ia][ib] = 1
	m.M[ib][ia] = 1
	return FrameInput{
		Index: idx, Time: time.Duration(idx) * 40 * time.Millisecond,
		LookAt: m, Emotions: map[int]EmotionObs{},
	}
}

func emptyFrame(idx int, ids []int) FrameInput {
	return FrameInput{
		Index: idx, Time: time.Duration(idx) * 40 * time.Millisecond,
		LookAt: gaze.NewMatrix(ids), Emotions: map[int]EmotionObs{},
	}
}

func TestAnalyzerRequiresParticipants(t *testing.T) {
	if _, err := NewAnalyzer(Context{}, Options{}); err == nil {
		t.Error("empty context should fail")
	}
}

func TestPushOrderEnforced(t *testing.T) {
	ctx := testContext()
	a, err := NewAnalyzer(ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := ctx.IDs()
	if err := a.Push(emptyFrame(5, ids)); err != nil {
		t.Fatal(err)
	}
	if err := a.Push(emptyFrame(5, ids)); err == nil {
		t.Error("duplicate frame index should fail")
	}
	if err := a.Push(emptyFrame(3, ids)); err == nil {
		t.Error("out-of-order frame should fail")
	}
	a.Finalize()
	if err := a.Push(emptyFrame(9, ids)); !errors.Is(err, ErrClosed) {
		t.Errorf("push after finalize err = %v", err)
	}
}

func TestECEventDetection(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{SmoothWindow: 3, MinECFrames: 10})
	// 30 frames of P1↔P3 contact, then 30 empty frames.
	for i := 0; i < 30; i++ {
		if err := a.Push(frameWithEC(i, ids, 0, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 30; i < 60; i++ {
		if err := a.Push(emptyFrame(i, ids)); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Finalize()
	if len(r.Events) != 1 {
		t.Fatalf("events = %+v, want 1", r.Events)
	}
	e := r.Events[0]
	if e.A != 0 || e.B != 2 {
		t.Errorf("event pair = (%d,%d)", e.A, e.B)
	}
	// Smoothing delays onset by ≈ window/2; run must cover most of the
	// scripted 30 frames and end within the window after frame 30.
	if e.Start > 3 || e.End < 28 || e.End > 34 {
		t.Errorf("event span [%d,%d), want ≈ [0,30)", e.Start, e.End)
	}
	// An ECStart alert must exist.
	foundAlert := false
	for _, al := range r.Alerts {
		if al.Kind == AlertECStart && al.Person == 0 && al.Other == 2 {
			foundAlert = true
		}
	}
	if !foundAlert {
		t.Error("missing eye-contact alert")
	}
}

func TestSmoothingAbsorbsFlicker(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{SmoothWindow: 9, MinECFrames: 10})
	// P1↔P3 contact for 40 frames with every 5th frame dropped (the
	// detector flicker measured in the gaze tests).
	for i := 0; i < 40; i++ {
		if i%5 == 0 {
			if err := a.Push(emptyFrame(i, ids)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := a.Push(frameWithEC(i, ids, 0, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 40; i < 60; i++ {
		if err := a.Push(emptyFrame(i, ids)); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Finalize()
	if len(r.Events) != 1 {
		t.Fatalf("flickery contact should fuse into one event, got %d: %+v",
			len(r.Events), r.Events)
	}
}

func TestShortContactSuppressed(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{SmoothWindow: 1, MinECFrames: 12})
	for i := 0; i < 5; i++ {
		if err := a.Push(frameWithEC(i, ids, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < 20; i++ {
		if err := a.Push(emptyFrame(i, ids)); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Finalize()
	if len(r.Events) != 0 {
		t.Errorf("5-frame glance should not be an event: %+v", r.Events)
	}
}

func TestOverallEmotionFig5(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{})
	in := emptyFrame(0, ids)
	in.Emotions = map[int]EmotionObs{
		0: {Label: emotion.Happy, Confidence: 1},
		1: {Label: emotion.Happy, Confidence: 1},
		2: {Label: emotion.Neutral, Confidence: 1},
		3: {Label: emotion.Sad, Confidence: 1},
	}
	if err := a.Push(in); err != nil {
		t.Fatal(err)
	}
	r := a.Finalize()
	oe := r.Overall[0]
	if oe.Observed != 4 {
		t.Errorf("observed = %d", oe.Observed)
	}
	if math.Abs(oe.OH-50) > 1e-9 {
		t.Errorf("OH = %v, want 50%%", oe.OH)
	}
	if math.Abs(oe.Share[emotion.Sad]-0.25) > 1e-9 {
		t.Errorf("sad share = %v", oe.Share[emotion.Sad])
	}
}

func TestOverallEmotionConfidenceWeighting(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{})
	in := emptyFrame(0, ids)
	in.Emotions = map[int]EmotionObs{
		0: {Label: emotion.Happy, Confidence: 0.9},
		1: {Label: emotion.Sad, Confidence: 0.1},
	}
	if err := a.Push(in); err != nil {
		t.Fatal(err)
	}
	r := a.Finalize()
	if got := r.Overall[0].OH; math.Abs(got-90) > 1e-9 {
		t.Errorf("weighted OH = %v, want 90", got)
	}
}

func TestEmotionChangeAlert(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{EmotionHold: 3})
	push := func(idx int, l emotion.Label) {
		in := emptyFrame(idx, ids)
		in.Emotions = map[int]EmotionObs{0: {Label: l, Confidence: 1}}
		if err := a.Push(in); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		push(i, emotion.Neutral)
	}
	// A 2-frame blip must NOT alert (hold is 3).
	push(10, emotion.Happy)
	push(11, emotion.Happy)
	for i := 12; i < 16; i++ {
		push(i, emotion.Neutral)
	}
	// A sustained switch must alert once.
	for i := 16; i < 26; i++ {
		push(i, emotion.Happy)
	}
	r := a.Finalize()
	changes := 0
	for _, al := range r.Alerts {
		if al.Kind == AlertEmotionChange {
			changes++
			if al.Person != 0 {
				t.Errorf("alert person = %d", al.Person)
			}
		}
	}
	if changes != 1 {
		t.Errorf("%d emotion-change alerts, want 1: %+v", changes, r.Alerts)
	}
}

func TestNegativeSpikeLatch(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{})
	push := func(idx int, neg bool) {
		in := emptyFrame(idx, ids)
		l := emotion.Happy
		if neg {
			l = emotion.Disgust
		}
		in.Emotions = map[int]EmotionObs{
			0: {Label: l, Confidence: 1},
			1: {Label: l, Confidence: 1},
			2: {Label: l, Confidence: 1},
		}
		if err := a.Push(in); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		push(i, false)
	}
	for i := 5; i < 15; i++ {
		push(i, true) // sustained negative episode: ONE alert
	}
	for i := 15; i < 20; i++ {
		push(i, false)
	}
	for i := 20; i < 25; i++ {
		push(i, true) // second episode: second alert
	}
	r := a.Finalize()
	spikes := 0
	for _, al := range r.Alerts {
		if al.Kind == AlertNegativeSpike {
			spikes++
		}
	}
	if spikes != 2 {
		t.Errorf("%d negative-spike alerts, want 2", spikes)
	}
}

func TestSatisfactionScoreOrdersDinners(t *testing.T) {
	mk := func(happyFrac float64) float64 {
		ctx := testContext()
		ids := ctx.IDs()
		a, _ := NewAnalyzer(ctx, Options{})
		n := 100
		for i := 0; i < n; i++ {
			in := emptyFrame(i, ids)
			l := emotion.Disgust
			if float64(i) < happyFrac*float64(n) {
				l = emotion.Happy
			}
			in.Emotions = map[int]EmotionObs{0: {Label: l, Confidence: 1}}
			if err := a.Push(in); err != nil {
				t.Fatal(err)
			}
		}
		return a.Finalize().SatisfactionScore()
	}
	good := mk(0.9)
	bad := mk(0.1)
	if good <= bad {
		t.Errorf("satisfaction good=%v should exceed bad=%v", good, bad)
	}
	if good < 50 || bad > 50 {
		t.Errorf("scores good=%v bad=%v should straddle neutral 50", good, bad)
	}
}

func TestContextAccessors(t *testing.T) {
	ctx := testContext()
	if got := ctx.IDs(); len(got) != 4 || got[0] != 0 {
		t.Errorf("IDs = %v", got)
	}
	if p, ok := ctx.Participant(2); !ok || p.Color != "green" {
		t.Errorf("participant 2 = %+v, %v", p, ok)
	}
	if _, ok := ctx.Participant(42); ok {
		t.Error("unknown participant should miss")
	}
}

func TestFinalizeClosesOpenRuns(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{SmoothWindow: 1, MinECFrames: 10})
	for i := 0; i < 20; i++ {
		if err := a.Push(frameWithEC(i, ids, 1, 3)); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Finalize()
	if len(r.Events) != 1 {
		t.Fatalf("open run should close at finalize: %+v", r.Events)
	}
	if r.Events[0].End < 20 {
		t.Errorf("event end = %d, want 20", r.Events[0].End)
	}
	// Idempotent finalize.
	if r2 := a.Finalize(); r2 != r {
		t.Error("second finalize should return the same result")
	}
}

func TestMeanOHEmpty(t *testing.T) {
	r := &Result{}
	if r.MeanOH() != 0 || r.SatisfactionScore() != 0 {
		t.Error("empty result scores should be 0")
	}
}

func TestInferSpeaker(t *testing.T) {
	ids := []int{0, 1, 2, 3}
	m := gaze.NewMatrix(ids)
	// Everyone looks at P1 (ID 0): clear speaker.
	m.M[1][0], m.M[2][0], m.M[3][0] = 1, 1, 1
	if got := inferSpeaker(m); got != 0 {
		t.Errorf("speaker = %d, want 0", got)
	}
	// Split attention 1 vs 1: below the half-quorum of 3 others → none.
	m2 := gaze.NewMatrix(ids)
	m2.M[1][0] = 1
	m2.M[0][2] = 1
	if got := inferSpeaker(m2); got != -1 {
		t.Errorf("split attention speaker = %d, want -1", got)
	}
	// Exactly half the others (2 of 3) suffices.
	m3 := gaze.NewMatrix(ids)
	m3.M[1][2], m3.M[3][2] = 1, 1
	if got := inferSpeaker(m3); got != 2 {
		t.Errorf("quorum speaker = %d, want 2", got)
	}
	// Degenerate single-person matrix.
	if got := inferSpeaker(gaze.NewMatrix([]int{5})); got != -1 {
		t.Errorf("solo speaker = %d, want -1", got)
	}
}

func TestInferredSpeakersSeries(t *testing.T) {
	ctx := testContext()
	ids := ctx.IDs()
	a, _ := NewAnalyzer(ctx, Options{SmoothWindow: 1})
	for i := 0; i < 10; i++ {
		m := gaze.NewMatrix(ids)
		target := 0
		if i >= 5 {
			target = 2
		}
		for _, from := range []int{0, 1, 2, 3} {
			if from != target {
				idx := from // ids are 0..3 so index == id
				m.M[idx][target] = 1
			}
		}
		if err := a.Push(FrameInput{Index: i, LookAt: m, Emotions: map[int]EmotionObs{}}); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Finalize()
	if len(r.InferredSpeakers) != 10 {
		t.Fatalf("series length %d", len(r.InferredSpeakers))
	}
	truth := []int{0, 0, 0, 0, 0, 2, 2, 2, 2, 2}
	if acc := SpeakerAccuracy(r.InferredSpeakers, truth); acc != 1 {
		t.Errorf("accuracy = %v, inferred %v", acc, r.InferredSpeakers)
	}
}

func TestSpeakerAccuracyEdges(t *testing.T) {
	if SpeakerAccuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if SpeakerAccuracy([]int{1, 2}, []int{-1, -1}) != 0 {
		t.Error("all-silence truth should be 0")
	}
	if got := SpeakerAccuracy([]int{1, 9, 2}, []int{1, -1, 3}); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
}
