// Package layers implements DiEvent's multilayer analysis (paper §II-D):
// fusing time-variant information sources (per-frame gaze matrices and
// per-person emotions) with time-invariant context (location, menu,
// occasion, participants, social relations) into smoothed eye-contact
// events, the overall-emotion estimate of Fig. 5, and alerts for the
// sociologist-facing functionality the paper's conclusion names
// ("alerting functionalities like the emotion state changes, and the
// eye contact detection").
package layers

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/emotion"
	"repro/internal/gaze"
)

// Participant is the time-invariant description of one diner.
type Participant struct {
	ID    int
	Name  string
	Color string
	// Role is free-form social information ("host", "guest", …).
	Role string
}

// Relation is a declared social relationship between two participants.
type Relation struct {
	A, B int
	// Kind is free-form ("couple", "colleagues", "family", …).
	Kind string
}

// Context is the time-invariant layer (paper: "location, menu, date,
// occasion type, number of participants and their social information and
// relationships").
type Context struct {
	Location     string
	Occasion     string
	Menu         string
	Date         time.Time
	Temperature  float64
	Participants []Participant
	Relations    []Relation
}

// IDs returns the participant IDs in declaration order.
func (c Context) IDs() []int {
	out := make([]int, len(c.Participants))
	for i, p := range c.Participants {
		out[i] = p.ID
	}
	return out
}

// Participant returns the participant with the given ID.
func (c Context) Participant(id int) (Participant, bool) {
	for _, p := range c.Participants {
		if p.ID == id {
			return p, true
		}
	}
	return Participant{}, false
}

// EmotionObs is one person's recognized emotion in one frame.
type EmotionObs struct {
	Label emotion.Label
	// Confidence in [0,1] from the classifier softmax.
	Confidence float64
}

// FrameInput is the time-variant evidence for one frame.
type FrameInput struct {
	Index int
	Time  time.Duration
	// LookAt is the frame's raw look-at matrix from the gaze detector.
	LookAt gaze.Matrix
	// Emotions maps participant ID → recognized emotion; persons whose
	// face was not classified this frame are simply absent.
	Emotions map[int]EmotionObs
}

// OverallEmotion is the Fig. 5 estimate for one frame: the
// confidence-weighted share of each emotion across participants, and OH,
// the overall-happiness percentage the figure highlights.
type OverallEmotion struct {
	Index int
	Time  time.Duration
	// Share[l] is the weighted fraction of participants showing l.
	Share [emotion.NumLabels]float64
	// OH is Share[Happy] expressed in percent (the paper's "overall
	// happiness percentage").
	OH float64
	// Observed is how many participants contributed evidence.
	Observed int
}

// ECEvent is a contiguous run of (smoothed) mutual eye contact between
// two participants.
type ECEvent struct {
	A, B int
	// Start and End are frame indexes, [Start, End).
	Start, End int
	// StartTime and EndTime are the corresponding timestamps.
	StartTime, EndTime time.Duration
}

// Duration returns the event length in frames.
func (e ECEvent) Frames() int { return e.End - e.Start }

// AlertKind classifies alerts.
type AlertKind uint8

// Alert kinds.
const (
	// AlertEmotionChange fires when a participant's sustained emotion
	// switches.
	AlertEmotionChange AlertKind = iota
	// AlertECStart fires when a new eye-contact event begins.
	AlertECStart
	// AlertNegativeSpike fires when the negative-affect share crosses
	// 0.5 — the smart-restaurant "table unhappy" signal.
	AlertNegativeSpike
)

// String names the kind.
func (k AlertKind) String() string {
	switch k {
	case AlertEmotionChange:
		return "emotion-change"
	case AlertECStart:
		return "eye-contact"
	case AlertNegativeSpike:
		return "negative-spike"
	}
	return fmt.Sprintf("alert(%d)", uint8(k))
}

// Alert is one analysis alert.
type Alert struct {
	Kind  AlertKind
	Frame int
	Time  time.Duration
	// Person is the participant concerned (−1 for table-level alerts).
	Person int
	// Other is the second participant for EC alerts (−1 otherwise).
	Other int
	// Detail is a human-readable explanation.
	Detail string
}

// Result is the multilayer analysis output for an event.
type Result struct {
	Context Context
	// Summary is the accumulated raw look-at summary (Fig. 9).
	Summary *gaze.Summary
	// SmoothedSummary accumulates the temporally smoothed matrices.
	SmoothedSummary *gaze.Summary
	// Overall is the per-frame overall emotion series (Fig. 5).
	Overall []OverallEmotion
	// Events are the detected eye-contact events.
	Events []ECEvent
	// Alerts in frame order.
	Alerts []Alert
	// InferredSpeakers estimates who holds the floor in each frame from
	// the smoothed gaze layer: listeners look at the speaker (the
	// paper's §II-D social reading of gaze). −1 means no clear speaker.
	InferredSpeakers []int
	// Frames is the number of frames analysed.
	Frames int

	// Streaming bookkeeping. emittedEvents/emittedAlerts mark the prefix
	// already drained live (DrainDerived), so end-of-run consumers can
	// write only the remainder and each event surfaces exactly once.
	// trimmedOH/trimmedNeg/trimmedFrames carry the contribution of
	// Overall entries evicted by TrimSeries, keeping MeanOH and
	// SatisfactionScore exact on bounded streams whose series were cut.
	emittedEvents, emittedAlerts int
	trimmedOH, trimmedNeg        float64
	trimmedFrames                int
}

// FreshEvents returns the events not yet drained live — everything for
// a plain end-of-run analysis, only the tail closed since the last
// DrainDerived on a live stream.
func (r *Result) FreshEvents() []ECEvent { return r.Events[r.emittedEvents:] }

// FreshAlerts is FreshEvents for alerts.
func (r *Result) FreshAlerts() []Alert { return r.Alerts[r.emittedAlerts:] }

// Options tune the analyzer.
type Options struct {
	// SmoothWindow is the trailing majority-vote window (frames) for
	// the gaze layer; it absorbs per-frame detector flicker (default 9).
	SmoothWindow int
	// MinECFrames is the minimum smoothed run length to report an
	// eye-contact event (default 12 ≈ 0.5 s at 25 fps, matching how
	// briefly humans must lock eyes for "contact").
	MinECFrames int
	// EmotionHold is how many consecutive frames a new emotion must
	// persist before an emotion-change alert fires (default 5).
	EmotionHold int
}

func (o Options) withDefaults() Options {
	if o.SmoothWindow == 0 {
		o.SmoothWindow = 9
	}
	if o.MinECFrames == 0 {
		o.MinECFrames = 12
	}
	if o.EmotionHold == 0 {
		o.EmotionHold = 5
	}
	return o
}

// ErrClosed is returned when pushing after Finalize.
var ErrClosed = errors.New("layers: analyzer already finalized")

// Analyzer consumes frame inputs and produces the multilayer Result.
// It is a streaming single-goroutine component: Push frames in order,
// then Finalize.
type Analyzer struct {
	opt    Options
	ctx    Context
	ids    []int
	result *Result
	closed bool

	// Ring of recent raw matrices for majority smoothing.
	window []gaze.Matrix
	// Eye-contact run tracking keyed by pair.
	openRuns map[[2]int]int // pair → start frame
	// Emotion state per person for change alerts.
	curEmotion  map[int]emotion.Label
	candEmotion map[int]emotion.Label
	candCount   map[int]int
	// Negative-spike latch so one episode produces one alert.
	negativeLatched bool

	lastIndex int
	lastTime  time.Duration
}

// NewAnalyzer builds an analyzer over a context.
func NewAnalyzer(ctx Context, opt Options) (*Analyzer, error) {
	if len(ctx.Participants) == 0 {
		return nil, fmt.Errorf("layers: context has no participants: %w", ErrClosed)
	}
	ids := ctx.IDs()
	return &Analyzer{
		opt: opt.withDefaults(),
		ctx: ctx,
		ids: ids,
		result: &Result{
			Context:         ctx,
			Summary:         gaze.NewSummary(ids),
			SmoothedSummary: gaze.NewSummary(ids),
		},
		openRuns:    make(map[[2]int]int),
		curEmotion:  make(map[int]emotion.Label),
		candEmotion: make(map[int]emotion.Label),
		candCount:   make(map[int]int),
		lastIndex:   -1,
	}, nil
}

// Push feeds one frame of evidence. Frames must arrive in index order.
func (a *Analyzer) Push(in FrameInput) error {
	if a.closed {
		return ErrClosed
	}
	if in.Index <= a.lastIndex {
		return fmt.Errorf("layers: frame %d after %d: %w", in.Index, a.lastIndex, ErrClosed)
	}
	a.lastIndex = in.Index
	a.lastTime = in.Time
	a.result.Frames++

	// Raw gaze layer.
	if err := a.result.Summary.Add(in.LookAt); err != nil {
		return fmt.Errorf("layers: frame %d: %w", in.Index, err)
	}

	// Temporal smoothing: trailing majority over the window.
	a.window = append(a.window, in.LookAt)
	if len(a.window) > a.opt.SmoothWindow {
		a.window = a.window[1:]
	}
	smoothed := a.majority()
	if err := a.result.SmoothedSummary.Add(smoothed); err != nil {
		return fmt.Errorf("layers: frame %d: %w", in.Index, err)
	}

	// Eye-contact events over the smoothed matrix.
	a.updateECRuns(smoothed, in)

	// Speaker inference: the participant receiving gaze from at least
	// half of the other participants is read as holding the floor.
	a.result.InferredSpeakers = append(a.result.InferredSpeakers, inferSpeaker(smoothed))

	// Overall emotion (Fig. 5).
	a.result.Overall = append(a.result.Overall, a.overall(in))

	// Emotion-change alerts.
	a.updateEmotionAlerts(in)

	return nil
}

// majority computes the element-wise majority matrix of the window.
func (a *Analyzer) majority() gaze.Matrix {
	out := gaze.NewMatrix(a.ids)
	half := len(a.window) / 2
	for i := range a.ids {
		for j := range a.ids {
			votes := 0
			for _, m := range a.window {
				votes += m.M[i][j]
			}
			if votes > half {
				out.M[i][j] = 1
			}
		}
	}
	return out
}

// updateECRuns opens/extends/closes eye-contact runs from the smoothed
// matrix.
func (a *Analyzer) updateECRuns(m gaze.Matrix, in FrameInput) {
	active := make(map[[2]int]bool)
	for _, p := range m.EyeContactPairs() {
		active[p] = true
		if _, open := a.openRuns[p]; !open {
			a.openRuns[p] = in.Index
			a.result.Alerts = append(a.result.Alerts, Alert{
				Kind: AlertECStart, Frame: in.Index, Time: in.Time,
				Person: p[0], Other: p[1],
				Detail: fmt.Sprintf("eye contact P%d↔P%d begins", p[0]+1, p[1]+1),
			})
		}
	}
	for p, start := range a.openRuns {
		if !active[p] {
			a.closeRun(p, start, in.Index, in.Time)
		}
	}
}

// closeRun finalises an EC run if it is long enough.
func (a *Analyzer) closeRun(p [2]int, start, end int, now time.Duration) {
	delete(a.openRuns, p)
	// Runs shorter than MinECFrames are dropped: alerts are a live
	// feed, but the event list is the curated record.
	if end-start < a.opt.MinECFrames {
		return
	}
	a.result.Events = append(a.result.Events, ECEvent{
		A: p[0], B: p[1], Start: start, End: end,
		StartTime: scaleTime(now, start, a.lastIndex),
		EndTime:   scaleTime(now, end, a.lastIndex),
	})
}

// scaleTime estimates the timestamp of a frame from the latest (frame,
// time) pair, assuming a uniform frame rate.
func scaleTime(now time.Duration, frame, lastIndex int) time.Duration {
	if lastIndex <= 0 {
		return 0
	}
	return time.Duration(float64(now) * float64(frame) / float64(lastIndex))
}

// overall computes the Fig. 5 estimate for one frame.
func (a *Analyzer) overall(in FrameInput) OverallEmotion {
	oe := OverallEmotion{Index: in.Index, Time: in.Time}
	var total float64
	for _, id := range a.ids {
		obs, ok := in.Emotions[id]
		if !ok || obs.Confidence <= 0 {
			continue
		}
		oe.Observed++
		oe.Share[obs.Label] += obs.Confidence
		total += obs.Confidence
	}
	if total > 0 {
		for l := range oe.Share {
			oe.Share[l] /= total
		}
	}
	oe.OH = oe.Share[emotion.Happy] * 100

	// Table-level negative spike alert with a latch.
	var negative float64
	for _, l := range emotion.AllLabels() {
		if l.Negative() {
			negative += oe.Share[l]
		}
	}
	if negative > 0.5 && !a.negativeLatched {
		a.negativeLatched = true
		a.result.Alerts = append(a.result.Alerts, Alert{
			Kind: AlertNegativeSpike, Frame: in.Index, Time: in.Time,
			Person: -1, Other: -1,
			Detail: fmt.Sprintf("negative affect at %.0f%% of the table", negative*100),
		})
	} else if negative < 0.3 {
		a.negativeLatched = false
	}
	return oe
}

// updateEmotionAlerts fires a change alert when a participant's emotion
// switches and holds for EmotionHold frames.
func (a *Analyzer) updateEmotionAlerts(in FrameInput) {
	for _, id := range a.ids {
		obs, ok := in.Emotions[id]
		if !ok {
			continue
		}
		cur, has := a.curEmotion[id]
		if !has {
			a.curEmotion[id] = obs.Label
			continue
		}
		if obs.Label == cur {
			a.candCount[id] = 0
			continue
		}
		if a.candEmotion[id] == obs.Label {
			a.candCount[id]++
		} else {
			a.candEmotion[id] = obs.Label
			a.candCount[id] = 1
		}
		if a.candCount[id] >= a.opt.EmotionHold {
			a.result.Alerts = append(a.result.Alerts, Alert{
				Kind: AlertEmotionChange, Frame: in.Index, Time: in.Time,
				Person: id, Other: -1,
				Detail: fmt.Sprintf("P%d: %v → %v", id+1, cur, obs.Label),
			})
			a.curEmotion[id] = obs.Label
			a.candCount[id] = 0
		}
	}
}

// DrainDerived returns the eye-contact events and alerts closed since
// the last drain — the live feed a streaming run emits at its window
// cadence. With trim set (bounded streams) the drained entries leave
// the retained lists entirely; otherwise they stay, marked emitted, so
// FreshEvents/FreshAlerts exclude them at end of run. Either way each
// event and alert is surfaced exactly once across the rolling and
// final passes.
func (a *Analyzer) DrainDerived(trim bool) ([]ECEvent, []Alert) {
	r := a.result
	ev, al := r.Events[r.emittedEvents:], r.Alerts[r.emittedAlerts:]
	if trim {
		ev = append([]ECEvent(nil), ev...)
		al = append([]Alert(nil), al...)
		r.Events = r.Events[:0]
		r.Alerts = r.Alerts[:0]
		r.emittedEvents, r.emittedAlerts = 0, 0
	} else {
		r.emittedEvents = len(r.Events)
		r.emittedAlerts = len(r.Alerts)
	}
	return ev, al
}

// TrimSeries evicts all but the last keep entries of the per-frame
// series (Overall, InferredSpeakers), folding the dropped Overall
// contribution into running counters so MeanOH and SatisfactionScore
// still aggregate over every frame ever analysed. The copy compacts in
// place, so the backing arrays stop growing — the bounded-memory lever
// for unbounded streams.
func (a *Analyzer) TrimSeries(keep int) {
	if keep < 0 {
		keep = 0
	}
	r := a.result
	if drop := len(r.Overall) - keep; drop > 0 {
		for _, o := range r.Overall[:drop] {
			r.trimmedOH += o.OH
			for _, l := range emotion.AllLabels() {
				if l.Negative() {
					r.trimmedNeg += o.Share[l] * 100
				}
			}
		}
		r.trimmedFrames += drop
		copy(r.Overall, r.Overall[drop:])
		r.Overall = r.Overall[:keep]
	}
	if drop := len(r.InferredSpeakers) - keep; drop > 0 {
		copy(r.InferredSpeakers, r.InferredSpeakers[drop:])
		r.InferredSpeakers = r.InferredSpeakers[:keep]
	}
}

// Finalize closes open runs and returns the result. The analyzer cannot
// be reused afterwards.
func (a *Analyzer) Finalize() *Result {
	if a.closed {
		return a.result
	}
	a.closed = true
	for p, start := range a.openRuns {
		a.closeRun(p, start, a.lastIndex+1, a.lastTime)
	}
	// Only the undrained tail may be reordered: the drained prefix was
	// already emitted downstream in close order. A plain analysis has an
	// empty prefix, so this is the full historical sort.
	sortEvents(a.result.Events[a.result.emittedEvents:])
	return a.result
}

// sortEvents orders events by start frame (stable enough for tests and
// reports).
func sortEvents(ev []ECEvent) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].Start < ev[j-1].Start; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// MeanOH returns the average overall happiness over the event — the
// scalar satisfaction score the smart-restaurant application reads per
// table.
func (r *Result) MeanOH() float64 {
	n := len(r.Overall) + r.trimmedFrames
	if n == 0 {
		return 0
	}
	s := r.trimmedOH
	for _, o := range r.Overall {
		s += o.OH
	}
	return s / float64(n)
}

// SatisfactionScore is MeanOH minus the mean negative-affect share (in
// percent), clamped to [0, 100] — a single customer-satisfaction number
// per the paper's smart-restaurant motivation.
func (r *Result) SatisfactionScore() float64 {
	n := len(r.Overall) + r.trimmedFrames
	if n == 0 {
		return 0
	}
	neg := r.trimmedNeg
	for _, o := range r.Overall {
		for _, l := range emotion.AllLabels() {
			if l.Negative() {
				neg += o.Share[l] * 100
			}
		}
	}
	neg /= float64(n)
	score := r.MeanOH() - neg + 50
	if score < 0 {
		return 0
	}
	if score > 100 {
		return 100
	}
	return score
}

// inferSpeaker returns the participant ID drawing gaze from ≥ half of
// the other participants (ties broken toward the lower ID), or −1.
func inferSpeaker(m gaze.Matrix) int {
	n := len(m.IDs)
	if n < 2 {
		return -1
	}
	best, bestVotes := -1, 0
	for j := range m.IDs {
		votes := 0
		for i := range m.IDs {
			votes += m.M[i][j]
		}
		if votes > bestVotes {
			best, bestVotes = m.IDs[j], votes
		}
	}
	if 2*bestVotes < n-1 {
		return -1
	}
	return best
}

// SpeakerAccuracy compares inferred speakers to a ground-truth series
// (−1 = silence) over the frames where truth names a speaker, returning
// the fraction inferred correctly. Series of different lengths compare
// over the shorter prefix.
func SpeakerAccuracy(inferred, truth []int) float64 {
	n := len(inferred)
	if len(truth) < n {
		n = len(truth)
	}
	considered, correct := 0, 0
	for i := 0; i < n; i++ {
		if truth[i] < 0 {
			continue
		}
		considered++
		if inferred[i] == truth[i] {
			correct++
		}
	}
	if considered == 0 {
		return 0
	}
	return float64(correct) / float64(considered)
}
