package camera

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// Rig is a synchronised set of calibrated cameras plus the frame graph
// relating their reference frames — the acquisition platform of paper
// §II-A. All cameras in a rig share one shutter clock (FPS), matching the
// paper's "synchronized videos".
type Rig struct {
	Cameras []*Camera
	// FPS is the shared frame rate (paper: 25 fps).
	FPS float64
	// Frames is the graph of camera-to-camera and camera-to-world
	// transforms; frame "world" is always present.
	Frames *geom.FrameGraph
}

// WorldFrame is the name of the shared world reference frame in every
// rig's frame graph.
const WorldFrame = "world"

// ErrUnknownCamera is returned when a rig lookup names a camera that does
// not exist.
var ErrUnknownCamera = errors.New("camera: unknown camera")

// NewRig assembles a rig from cameras, registering worldTcam edges for
// each camera in a shared frame graph.
func NewRig(fps float64, cams ...*Camera) (*Rig, error) {
	if fps <= 0 {
		return nil, fmt.Errorf("camera: fps must be positive, got %v", fps)
	}
	if len(cams) == 0 {
		return nil, errors.New("camera: rig needs at least one camera")
	}
	g := geom.NewFrameGraph()
	seen := make(map[string]bool, len(cams))
	for _, c := range cams {
		if c.Name == "" || c.Name == WorldFrame {
			return nil, fmt.Errorf("camera: invalid camera name %q", c.Name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("camera: duplicate camera name %q", c.Name)
		}
		seen[c.Name] = true
		g.Set(WorldFrame, c.Name, c.CamToWorld())
	}
	return &Rig{Cameras: cams, FPS: fps, Frames: g}, nil
}

// Camera returns the named camera.
func (r *Rig) Camera(name string) (*Camera, error) {
	for _, c := range r.Cameras {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("camera: %q: %w", name, ErrUnknownCamera)
}

// TimeAt returns the capture timestamp of frame index i.
func (r *Rig) TimeAt(i int) time.Duration {
	return time.Duration(float64(i) / r.FPS * float64(time.Second))
}

// FrameAt returns the frame index covering timestamp t.
func (r *Rig) FrameAt(t time.Duration) int {
	return int(t.Seconds() * r.FPS)
}

// BestView returns the camera that sees the world point with the greatest
// margin (most central projection), or an error when no camera sees it.
// This is how multi-camera DiEvent picks the observation to trust for a
// given head.
func (r *Rig) BestView(p geom.Vec3) (*Camera, error) {
	var best *Camera
	bestScore := math.Inf(-1)
	for _, c := range r.Cameras {
		px, err := c.Project(p)
		if err != nil || !c.InFrame(px) {
			continue
		}
		// Margin: distance from the nearest image border, normalised.
		mx := math.Min(px.X, float64(c.In.W)-px.X) / float64(c.In.W)
		my := math.Min(px.Y, float64(c.In.H)-px.Y) / float64(c.In.H)
		score := math.Min(mx, my)
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	if best == nil {
		return nil, fmt.Errorf("camera: no camera sees %v: %w", p, ErrUnknownCamera)
	}
	return best, nil
}

// Transform returns iTj between two frames known to the rig (camera names
// or "world") — the paper's iTj lookup.
func (r *Rig) Transform(i, j string) (geom.Transform, error) {
	return r.Frames.Resolve(i, j)
}

// standardIntrinsics matches the paper's sensors: 640×480 with a typical
// surveillance-lens 70° horizontal FOV.
func standardIntrinsics() Intrinsics {
	return IntrinsicsFromFOV(640, 480, geom.Deg2Rad(70))
}

// PaperRig builds the two-camera acquisition platform of Fig. 2: cameras
// facing each other across the table at height 2.5 m with −15° pitch,
// 25 fps, 640×480. separation is the distance between the two mounts
// along the world X axis; the table centre sits at the origin.
func PaperRig(separation float64) (*Rig, error) {
	if separation <= 0 {
		return nil, fmt.Errorf("camera: separation must be positive, got %v", separation)
	}
	in := standardIntrinsics()
	mk := func(name string, x float64, yaw float64) *Camera {
		// −15° pitch: look downwards toward the table.
		orient := geom.EulerZYX(yaw, geom.Deg2Rad(15), 0)
		// Pitch sign: our EulerZYX pitch rotates +X toward −Z for
		// positive values (RotY), which is "looking down" — matching
		// the paper's −15° camera pitch.
		return &Camera{
			Name: name,
			Pose: geom.Pose{Position: geom.V3(x, 0, 2.5), Orientation: orient},
			In:   in,
		}
	}
	c1 := mk("C1", -separation/2, 0)      // looks along +X
	c2 := mk("C2", separation/2, math.Pi) // looks along −X, facing C1
	return NewRig(25, c1, c2)
}

// PrototypeRig builds the four-camera prototype of §III: cameras on the
// four corners of a roomW×roomD metre room at 2.5 m elevation, each aimed
// at the table centre (room centre, table height 0.75 m), 25 fps.
func PrototypeRig(roomW, roomD float64) (*Rig, error) {
	if roomW <= 0 || roomD <= 0 {
		return nil, fmt.Errorf("camera: room dimensions must be positive, got %v x %v", roomW, roomD)
	}
	in := standardIntrinsics()
	target := geom.V3(0, 0, 0.75)
	corners := []struct {
		name string
		pos  geom.Vec3
	}{
		{"C1", geom.V3(-roomW/2, -roomD/2, 2.5)},
		{"C2", geom.V3(roomW/2, -roomD/2, 2.5)},
		{"C3", geom.V3(roomW/2, roomD/2, 2.5)},
		{"C4", geom.V3(-roomW/2, roomD/2, 2.5)},
	}
	cams := make([]*Camera, len(corners))
	for i, c := range corners {
		cams[i] = &Camera{
			Name: c.name,
			Pose: geom.LookAt(c.pos, target),
			In:   in,
		}
	}
	return NewRig(25, cams...)
}
