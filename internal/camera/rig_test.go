package camera

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/geom"
)

func TestNewRigValidation(t *testing.T) {
	c := testCam()
	if _, err := NewRig(0, c); err == nil {
		t.Error("zero fps should fail")
	}
	if _, err := NewRig(25); err == nil {
		t.Error("empty rig should fail")
	}
	dup := testCam()
	if _, err := NewRig(25, c, dup); err == nil {
		t.Error("duplicate names should fail")
	}
	bad := testCam()
	bad.Name = WorldFrame
	if _, err := NewRig(25, bad); err == nil {
		t.Error("camera named 'world' should fail")
	}
}

func TestRigCameraLookup(t *testing.T) {
	r, err := PaperRig(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Camera("C1"); err != nil {
		t.Errorf("C1 lookup: %v", err)
	}
	if _, err := r.Camera("C9"); !errors.Is(err, ErrUnknownCamera) {
		t.Errorf("unknown lookup error = %v", err)
	}
}

func TestRigTiming(t *testing.T) {
	r, _ := PaperRig(4)
	if got := r.TimeAt(25); got != time.Second {
		t.Errorf("frame 25 at %v, want 1s", got)
	}
	// Paper prototype: frame 250 at 10 s means fps 25.
	if got := r.TimeAt(250); got != 10*time.Second {
		t.Errorf("frame 250 at %v, want 10s", got)
	}
	if got := r.FrameAt(10 * time.Second); got != 250 {
		t.Errorf("FrameAt(10s) = %v, want 250", got)
	}
}

func TestPaperRigGeometry(t *testing.T) {
	// Fig. 2: both cameras at 2.5 m, facing each other, pitched down 15°.
	r, err := PaperRig(4)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := r.Camera("C1")
	c2, _ := r.Camera("C2")
	if c1.Pose.Position.Z != 2.5 || c2.Pose.Position.Z != 2.5 {
		t.Error("cameras must be at 2.5 m height")
	}
	// Facing each other: forward x-components have opposite signs.
	if c1.Pose.Forward().X <= 0 || c2.Pose.Forward().X >= 0 {
		t.Errorf("cameras not facing each other: %v vs %v",
			c1.Pose.Forward(), c2.Pose.Forward())
	}
	// Pitched down 15°: forward Z component = −sin(15°).
	wantZ := -math.Sin(geom.Deg2Rad(15))
	if math.Abs(c1.Pose.Forward().Z-wantZ) > 1e-9 {
		t.Errorf("C1 pitch z = %v, want %v", c1.Pose.Forward().Z, wantZ)
	}
	// Both cameras must see a person's head across the table.
	head := geom.V3(0.5, 0, 1.2)
	if !c1.Sees(head) || !c2.Sees(head) {
		t.Error("both paper cameras should see a seated head at the table")
	}
	if _, err := PaperRig(-1); err == nil {
		t.Error("negative separation should fail")
	}
}

func TestPrototypeRigGeometry(t *testing.T) {
	// §III: four cameras on room corners at 2.5 m elevation.
	r, err := PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cameras) != 4 {
		t.Fatalf("prototype rig has %d cameras, want 4", len(r.Cameras))
	}
	for _, c := range r.Cameras {
		if c.Pose.Position.Z != 2.5 {
			t.Errorf("%s at height %v, want 2.5", c.Name, c.Pose.Position.Z)
		}
		// Each camera must see the table centre.
		if !c.Sees(geom.V3(0, 0, 0.75)) {
			t.Errorf("%s does not see the table centre", c.Name)
		}
		// And see seated heads around the table.
		for _, head := range []geom.Vec3{
			{X: 0.9, Y: 0, Z: 1.2}, {X: -0.9, Y: 0, Z: 1.2},
			{X: 0, Y: 0.6, Z: 1.2}, {X: 0, Y: -0.6, Z: 1.2},
		} {
			if !c.Sees(head) {
				t.Errorf("%s does not see head at %v", c.Name, head)
			}
		}
	}
	if _, err := PrototypeRig(0, 5); err == nil {
		t.Error("zero room size should fail")
	}
}

func TestRigTransformChain(t *testing.T) {
	// The rig frame graph must satisfy Eq. 1: a point expressed in C2's
	// frame re-expressed in C1's frame matches direct computation.
	r, _ := PaperRig(4)
	c1, _ := r.Camera("C1")
	c2, _ := r.Camera("C2")
	world := geom.V3(0.3, -0.2, 1.1)
	inC2 := c2.WorldToCam().ApplyPoint(world)
	t12, err := r.Transform("C1", "C2") // ¹T₂
	if err != nil {
		t.Fatal(err)
	}
	got := t12.ApplyPoint(inC2)
	want := c1.WorldToCam().ApplyPoint(world)
	if !got.ApproxEq(want, 1e-9) {
		t.Errorf("¹T₂·²p = %v, want %v", got, want)
	}
}

func TestBestView(t *testing.T) {
	r, _ := PrototypeRig(6, 5)
	// A head near camera C1's corner is seen most centrally by the
	// opposite camera C3.
	head := geom.V3(-1.2, -1.0, 1.2)
	best, err := r.BestView(head)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("nil best view")
	}
	// Must at least see it.
	if !best.Sees(head) {
		t.Error("best view does not see the point")
	}
	// No camera sees a point high above the rig: every camera pitches
	// down toward the table.
	if _, err := r.BestView(geom.V3(0, 0, 100)); err == nil {
		t.Error("BestView of invisible point should fail")
	}
}
