// Package camera models the DiEvent video-acquisition platform (paper
// §II-A, Fig. 2): calibrated pinhole cameras with known extrinsics,
// multi-camera rigs, and frame-time synchronisation.
//
// World frame convention: X/Y span the floor, Z points up, units are
// metres. Camera local frame: +X is the optical axis (forward), +Y is
// left, +Z is up; pixel u grows rightward, v grows downward.
package camera

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Intrinsics holds the pinhole projection parameters of a camera.
type Intrinsics struct {
	// Fx, Fy are focal lengths in pixels.
	Fx, Fy float64
	// Cx, Cy are the principal point in pixels.
	Cx, Cy float64
	// W, H are the sensor resolution in pixels.
	W, H int
}

// ErrBehindCamera is returned when projecting a point at or behind the
// image plane.
var ErrBehindCamera = errors.New("camera: point behind camera")

// IntrinsicsFromFOV builds intrinsics for a w×h sensor with the given
// horizontal field of view (radians). Vertical FOV follows from square
// pixels.
func IntrinsicsFromFOV(w, h int, hfov float64) Intrinsics {
	f := float64(w) / 2 / math.Tan(hfov/2)
	return Intrinsics{
		Fx: f, Fy: f,
		Cx: float64(w) / 2, Cy: float64(h) / 2,
		W: w, H: h,
	}
}

// HFOV returns the horizontal field of view in radians.
func (in Intrinsics) HFOV() float64 { return 2 * math.Atan(float64(in.W)/2/in.Fx) }

// VFOV returns the vertical field of view in radians.
func (in Intrinsics) VFOV() float64 { return 2 * math.Atan(float64(in.H)/2/in.Fy) }

// Camera is a calibrated camera: a name (its reference-frame label in the
// rig's frame graph), a pose in the world frame, and intrinsics.
type Camera struct {
	Name string
	Pose geom.Pose
	In   Intrinsics
}

// WorldToCam returns the transform taking world coordinates into this
// camera's frame (camTworld).
func (c *Camera) WorldToCam() geom.Transform {
	return c.Pose.Transform().Inverse()
}

// CamToWorld returns worldTcam.
func (c *Camera) CamToWorld() geom.Transform {
	return c.Pose.Transform()
}

// Project maps a world point to pixel coordinates. It returns
// ErrBehindCamera when the point is on or behind the image plane; points
// outside the sensor bounds still project (callers use InFrame to test
// visibility) so sub-pixel tracking near borders keeps working.
func (c *Camera) Project(world geom.Vec3) (geom.Vec2, error) {
	p := c.WorldToCam().ApplyPoint(world)
	if p.X <= 1e-9 {
		return geom.Vec2{}, fmt.Errorf("camera %s: depth %.3f: %w", c.Name, p.X, ErrBehindCamera)
	}
	u := c.In.Cx - c.In.Fx*(p.Y/p.X)
	v := c.In.Cy - c.In.Fy*(p.Z/p.X)
	return geom.V2(u, v), nil
}

// Depth returns the forward distance (camera-frame X) of a world point.
func (c *Camera) Depth(world geom.Vec3) float64 {
	return c.WorldToCam().ApplyPoint(world).X
}

// InFrame reports whether the pixel lies inside the sensor bounds.
func (c *Camera) InFrame(px geom.Vec2) bool {
	return px.X >= 0 && px.X < float64(c.In.W) && px.Y >= 0 && px.Y < float64(c.In.H)
}

// Sees reports whether a world point projects inside the frame in front
// of the camera.
func (c *Camera) Sees(world geom.Vec3) bool {
	px, err := c.Project(world)
	return err == nil && c.InFrame(px)
}

// BackProject returns the world-frame ray through the given pixel,
// originating at the camera centre.
func (c *Camera) BackProject(px geom.Vec2) geom.Ray {
	// Camera-frame direction for the pixel.
	d := geom.V3(
		1,
		(c.In.Cx-px.X)/c.In.Fx,
		(c.In.Cy-px.Y)/c.In.Fy,
	)
	return geom.NewRay(geom.Zero3, d).Transformed(c.CamToWorld())
}

// ProjectedRadius returns the apparent pixel radius of a world sphere of
// radius r at the given world centre, or 0 if behind the camera.
func (c *Camera) ProjectedRadius(center geom.Vec3, r float64) float64 {
	d := c.Depth(center)
	if d <= 1e-9 {
		return 0
	}
	return c.In.Fx * r / d
}
