package camera

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
)

func testCam() *Camera {
	return &Camera{
		Name: "C1",
		Pose: geom.IdentityPose(), // at origin looking along +X
		In:   IntrinsicsFromFOV(640, 480, geom.Deg2Rad(70)),
	}
}

func TestIntrinsicsFOVRoundTrip(t *testing.T) {
	in := IntrinsicsFromFOV(640, 480, geom.Deg2Rad(70))
	if got := geom.Rad2Deg(in.HFOV()); math.Abs(got-70) > 1e-9 {
		t.Errorf("HFOV = %v, want 70", got)
	}
	if in.VFOV() >= in.HFOV() {
		t.Error("VFOV should be smaller than HFOV for a landscape sensor")
	}
	if in.Cx != 320 || in.Cy != 240 {
		t.Errorf("principal point = (%v,%v)", in.Cx, in.Cy)
	}
}

func TestProjectCenter(t *testing.T) {
	c := testCam()
	// A point straight ahead projects to the principal point.
	px, err := c.Project(geom.V3(3, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !px.ApproxEq(geom.V2(320, 240), 1e-9) {
		t.Errorf("centre projection = %v", px)
	}
}

func TestProjectDirections(t *testing.T) {
	c := testCam()
	// Point to the camera's left (+Y) lands left of centre (u < cx).
	left, err := c.Project(geom.V3(3, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if left.X >= 320 {
		t.Errorf("left point projected at u=%v, want < 320", left.X)
	}
	// Point above (+Z) lands above centre (v < cy).
	up, err := c.Project(geom.V3(3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if up.Y >= 240 {
		t.Errorf("up point projected at v=%v, want < 240", up.Y)
	}
}

func TestProjectBehind(t *testing.T) {
	c := testCam()
	if _, err := c.Project(geom.V3(-1, 0, 0)); !errors.Is(err, ErrBehindCamera) {
		t.Errorf("behind-camera projection error = %v", err)
	}
	if _, err := c.Project(geom.Zero3); !errors.Is(err, ErrBehindCamera) {
		t.Error("point at camera centre should be ErrBehindCamera")
	}
}

func TestBackProjectRoundTrip(t *testing.T) {
	c := &Camera{
		Name: "C",
		Pose: geom.LookAt(geom.V3(-2, 1, 2.5), geom.V3(0, 0, 0.75)),
		In:   IntrinsicsFromFOV(640, 480, geom.Deg2Rad(70)),
	}
	pts := []geom.Vec3{
		{X: 0, Y: 0, Z: 0.75},
		{X: 0.5, Y: -0.3, Z: 1.1},
		{X: -0.2, Y: 0.4, Z: 0.9},
	}
	for _, p := range pts {
		px, err := c.Project(p)
		if err != nil {
			t.Fatalf("project %v: %v", p, err)
		}
		ray := c.BackProject(px)
		// The ray must pass (numerically) through the original point.
		if d := ray.DistanceToPoint(p); d > 1e-6 {
			t.Errorf("back-projected ray misses %v by %v m", p, d)
		}
		// Ray originates at the camera centre.
		if !ray.Origin.ApproxEq(c.Pose.Position, 1e-9) {
			t.Errorf("ray origin = %v, want camera centre", ray.Origin)
		}
	}
}

func TestSeesAndInFrame(t *testing.T) {
	c := testCam()
	if !c.Sees(geom.V3(3, 0, 0)) {
		t.Error("camera should see straight-ahead point")
	}
	if c.Sees(geom.V3(-3, 0, 0)) {
		t.Error("camera should not see behind itself")
	}
	if c.Sees(geom.V3(0.1, 5, 0)) {
		t.Error("extreme off-axis point should be out of frame")
	}
	if !c.InFrame(geom.V2(0, 0)) || c.InFrame(geom.V2(640, 100)) {
		t.Error("InFrame boundary handling wrong")
	}
}

func TestDepthAndProjectedRadius(t *testing.T) {
	c := testCam()
	if d := c.Depth(geom.V3(4, 1, 2)); math.Abs(d-4) > 1e-12 {
		t.Errorf("depth = %v, want 4", d)
	}
	r1 := c.ProjectedRadius(geom.V3(2, 0, 0), 0.12)
	r2 := c.ProjectedRadius(geom.V3(4, 0, 0), 0.12)
	if r1 <= r2 || r2 <= 0 {
		t.Errorf("apparent radius should shrink with depth: %v vs %v", r1, r2)
	}
	if c.ProjectedRadius(geom.V3(-1, 0, 0), 0.12) != 0 {
		t.Error("behind-camera radius should be 0")
	}
}
