// Package hmm implements a discrete hidden Markov model — forward/
// backward with scaling, Viterbi decoding, and Baum–Welch training —
// plus the dining-activity observation model of Gao et al. [16] ("Dining
// activity analysis using a hidden Markov model", ICPR 2004), the prior
// automated-dining-analysis system the paper cites. DiEvent's multilayer
// analysis is compared against this baseline in experiment T-E.
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// HMM is a discrete-observation hidden Markov model with N states and M
// symbols.
type HMM struct {
	N, M int
	// Pi[i] is the initial state distribution.
	Pi []float64
	// A[i][j] is the transition probability i → j.
	A [][]float64
	// B[i][k] is the emission probability of symbol k in state i.
	B [][]float64
}

// Package errors.
var (
	ErrBadModel = errors.New("hmm: bad model")
	ErrBadObs   = errors.New("hmm: bad observation sequence")
)

// New initialises a model with slightly perturbed uniform parameters
// (exact uniformity is a saddle point for Baum–Welch).
func New(n, m int, seed int64) (*HMM, error) {
	if n < 1 || m < 2 {
		return nil, fmt.Errorf("hmm: n=%d m=%d: %w", n, m, ErrBadModel)
	}
	rng := rand.New(rand.NewSource(seed))
	h := &HMM{N: n, M: m}
	h.Pi = randDist(n, rng)
	h.A = make([][]float64, n)
	h.B = make([][]float64, n)
	for i := 0; i < n; i++ {
		h.A[i] = randDist(n, rng)
		h.B[i] = randDist(m, rng)
	}
	return h, nil
}

// NewLeftRight initialises a left-to-right model (each state transitions
// to itself or the next), the natural topology for dining phases that
// progress arriving → ordering → eating → talking → paying.
func NewLeftRight(n, m int, seed int64) (*HMM, error) {
	h, err := New(n, m, seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i && j != i+1 {
				h.A[i][j] = 0
			}
		}
		normalize(h.A[i])
	}
	// Start in the first state.
	for i := range h.Pi {
		h.Pi[i] = 0
	}
	h.Pi[0] = 1
	return h, nil
}

func randDist(n int, rng *rand.Rand) []float64 {
	d := make([]float64, n)
	var s float64
	for i := range d {
		d[i] = 1 + 0.1*rng.Float64()
		s += d[i]
	}
	for i := range d {
		d[i] /= s
	}
	return d
}

func normalize(d []float64) {
	var s float64
	for _, v := range d {
		s += v
	}
	if s == 0 {
		for i := range d {
			d[i] = 1 / float64(len(d))
		}
		return
	}
	for i := range d {
		d[i] /= s
	}
}

// Validate checks that all distributions are proper.
func (h *HMM) Validate() error {
	check := func(d []float64, what string) error {
		var s float64
		for _, v := range d {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("hmm: negative/NaN in %s: %w", what, ErrBadModel)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			return fmt.Errorf("hmm: %s sums to %v: %w", what, s, ErrBadModel)
		}
		return nil
	}
	if len(h.Pi) != h.N || len(h.A) != h.N || len(h.B) != h.N {
		return fmt.Errorf("hmm: shape mismatch: %w", ErrBadModel)
	}
	if err := check(h.Pi, "pi"); err != nil {
		return err
	}
	for i := 0; i < h.N; i++ {
		if err := check(h.A[i], fmt.Sprintf("A[%d]", i)); err != nil {
			return err
		}
		if err := check(h.B[i], fmt.Sprintf("B[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// checkObs validates a sequence.
func (h *HMM) checkObs(obs []int) error {
	if len(obs) == 0 {
		return fmt.Errorf("hmm: empty sequence: %w", ErrBadObs)
	}
	for t, o := range obs {
		if o < 0 || o >= h.M {
			return fmt.Errorf("hmm: symbol %d at %d outside [0,%d): %w", o, t, h.M, ErrBadObs)
		}
	}
	return nil
}

// forwardScaled runs the scaled forward pass, returning alpha, the
// per-step scale factors, and the log-likelihood.
func (h *HMM) forwardScaled(obs []int) (alpha [][]float64, scales []float64, logLik float64) {
	T := len(obs)
	alpha = make([][]float64, T)
	scales = make([]float64, T)
	alpha[0] = make([]float64, h.N)
	var c0 float64
	for i := 0; i < h.N; i++ {
		alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
		c0 += alpha[0][i]
	}
	if c0 == 0 {
		c0 = 1e-300
	}
	scales[0] = c0
	for i := range alpha[0] {
		alpha[0][i] /= c0
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, h.N)
		var ct float64
		for j := 0; j < h.N; j++ {
			var s float64
			for i := 0; i < h.N; i++ {
				s += alpha[t-1][i] * h.A[i][j]
			}
			alpha[t][j] = s * h.B[j][obs[t]]
			ct += alpha[t][j]
		}
		if ct == 0 {
			ct = 1e-300
		}
		scales[t] = ct
		for j := range alpha[t] {
			alpha[t][j] /= ct
		}
	}
	for _, c := range scales {
		logLik += math.Log(c)
	}
	return alpha, scales, logLik
}

// backwardScaled runs the scaled backward pass using forward scales.
func (h *HMM) backwardScaled(obs []int, scales []float64) [][]float64 {
	T := len(obs)
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, h.N)
	for i := range beta[T-1] {
		beta[T-1][i] = 1 / scales[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, h.N)
		for i := 0; i < h.N; i++ {
			var s float64
			for j := 0; j < h.N; j++ {
				s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / scales[t]
		}
	}
	return beta
}

// LogLikelihood returns log P(obs | model).
func (h *HMM) LogLikelihood(obs []int) (float64, error) {
	if err := h.checkObs(obs); err != nil {
		return 0, err
	}
	_, _, ll := h.forwardScaled(obs)
	return ll, nil
}

// Viterbi returns the most likely hidden state sequence (log-space).
func (h *HMM) Viterbi(obs []int) ([]int, error) {
	if err := h.checkObs(obs); err != nil {
		return nil, err
	}
	T := len(obs)
	negInf := math.Inf(-1)
	logA := make([][]float64, h.N)
	logB := make([][]float64, h.N)
	logPi := make([]float64, h.N)
	lg := func(x float64) float64 {
		if x <= 0 {
			return negInf
		}
		return math.Log(x)
	}
	for i := 0; i < h.N; i++ {
		logPi[i] = lg(h.Pi[i])
		logA[i] = make([]float64, h.N)
		logB[i] = make([]float64, h.M)
		for j := 0; j < h.N; j++ {
			logA[i][j] = lg(h.A[i][j])
		}
		for k := 0; k < h.M; k++ {
			logB[i][k] = lg(h.B[i][k])
		}
	}
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, h.N)
	psi[0] = make([]int, h.N)
	for i := 0; i < h.N; i++ {
		delta[0][i] = logPi[i] + logB[i][obs[0]]
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, h.N)
		psi[t] = make([]int, h.N)
		for j := 0; j < h.N; j++ {
			best, arg := negInf, 0
			for i := 0; i < h.N; i++ {
				v := delta[t-1][i] + logA[i][j]
				if v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + logB[j][obs[t]]
			psi[t][j] = arg
		}
	}
	// Backtrack.
	path := make([]int, T)
	best, arg := negInf, 0
	for i := 0; i < h.N; i++ {
		if delta[T-1][i] > best {
			best, arg = delta[T-1][i], i
		}
	}
	path[T-1] = arg
	for t := T - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path, nil
}

// BaumWelch trains the model on sequences for at most iters iterations,
// returning the log-likelihood after each. Training stops early when
// improvement falls below tol.
func (h *HMM) BaumWelch(seqs [][]int, iters int, tol float64) ([]float64, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("hmm: no sequences: %w", ErrBadObs)
	}
	for _, s := range seqs {
		if err := h.checkObs(s); err != nil {
			return nil, err
		}
	}
	if iters <= 0 {
		iters = 30
	}
	if tol <= 0 {
		tol = 1e-4
	}
	var history []float64
	prev := math.Inf(-1)
	for it := 0; it < iters; it++ {
		// Accumulators.
		piAcc := make([]float64, h.N)
		aNum := make([][]float64, h.N)
		aDen := make([]float64, h.N)
		bNum := make([][]float64, h.N)
		bDen := make([]float64, h.N)
		for i := 0; i < h.N; i++ {
			aNum[i] = make([]float64, h.N)
			bNum[i] = make([]float64, h.M)
		}
		var total float64
		for _, obs := range seqs {
			alpha, scales, ll := h.forwardScaled(obs)
			beta := h.backwardScaled(obs, scales)
			total += ll
			T := len(obs)
			// gamma_t(i) ∝ alpha_t(i)·beta_t(i)·scale_t
			for t := 0; t < T; t++ {
				var norm float64
				g := make([]float64, h.N)
				for i := 0; i < h.N; i++ {
					g[i] = alpha[t][i] * beta[t][i] * scales[t]
					norm += g[i]
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < h.N; i++ {
					g[i] /= norm
					if t == 0 {
						piAcc[i] += g[i]
					}
					bNum[i][obs[t]] += g[i]
					bDen[i] += g[i]
					if t < T-1 {
						aDen[i] += g[i]
					}
				}
			}
			// xi accumulators.
			for t := 0; t < T-1; t++ {
				var norm float64
				xi := make([][]float64, h.N)
				for i := 0; i < h.N; i++ {
					xi[i] = make([]float64, h.N)
					for j := 0; j < h.N; j++ {
						xi[i][j] = alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
						norm += xi[i][j]
					}
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < h.N; i++ {
					for j := 0; j < h.N; j++ {
						aNum[i][j] += xi[i][j] / norm
					}
				}
			}
		}
		// Re-estimate.
		normalize(piAcc)
		copy(h.Pi, piAcc)
		for i := 0; i < h.N; i++ {
			if aDen[i] > 0 {
				for j := 0; j < h.N; j++ {
					h.A[i][j] = aNum[i][j] / aDen[i]
				}
			}
			normalize(h.A[i])
			if bDen[i] > 0 {
				for k := 0; k < h.M; k++ {
					h.B[i][k] = bNum[i][k] / bDen[i]
				}
			}
			// Emission floor keeps unseen symbols representable and
			// Viterbi finite.
			for k := 0; k < h.M; k++ {
				if h.B[i][k] < 1e-6 {
					h.B[i][k] = 1e-6
				}
			}
			normalize(h.B[i])
		}
		history = append(history, total)
		if total-prev < tol && it > 0 {
			break
		}
		prev = total
	}
	return history, nil
}

// Posterior returns gamma[t][i] = P(state i at t | obs).
func (h *HMM) Posterior(obs []int) ([][]float64, error) {
	if err := h.checkObs(obs); err != nil {
		return nil, err
	}
	alpha, scales, _ := h.forwardScaled(obs)
	beta := h.backwardScaled(obs, scales)
	T := len(obs)
	g := make([][]float64, T)
	for t := 0; t < T; t++ {
		g[t] = make([]float64, h.N)
		var norm float64
		for i := 0; i < h.N; i++ {
			g[t][i] = alpha[t][i] * beta[t][i] * scales[t]
			norm += g[t][i]
		}
		if norm > 0 {
			for i := range g[t] {
				g[t][i] /= norm
			}
		}
	}
	return g, nil
}
