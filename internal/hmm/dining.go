package hmm

import (
	"repro/internal/scene"
)

// Dining-activity observation model after Gao et al. [16]: per-frame
// behavioural features are quantised into a small symbol alphabet the
// HMM segments into activity phases. The features available to the
// baseline are deliberately the *single-camera* cues the 2004 system
// used — how many diners face their plates, whether anyone speaks, and
// whether mutual gaze occurs — in contrast to DiEvent's full multilayer
// evidence.

// DiningSymbols is the alphabet size of the dining featurizer:
// 3 (table-gaze fraction bucket) × 2 (away-gaze present) × 2 (speaking)
// × 2 (eye contact).
const DiningSymbols = 24

// DiningSymbol quantises one ground-truth frame into a symbol.
// dropout ∈ [0,1) flips features pseudo-randomly to model detector
// noise; pass 0 for clean features.
func DiningSymbol(fs scene.FrameState, dropout float64, seed int64) int {
	n := len(fs.Persons)
	if n == 0 {
		return 0
	}
	table, away := 0, 0
	speaking := false
	for _, p := range fs.Persons {
		switch p.Target.Kind {
		case scene.LookAtTable:
			table++
		case scene.LookAway:
			away++
		}
		if p.Speaking {
			speaking = true
		}
	}
	ec := false
	m := fs.TrueLookAt()
	for i := 0; i < n && !ec; i++ {
		for j := i + 1; j < n; j++ {
			if m[i][j] == 1 && m[j][i] == 1 {
				ec = true
				break
			}
		}
	}

	if dropout > 0 {
		r := noise(seed, uint64(fs.Index))
		if r.chance(dropout) {
			table = int(r.next() % uint64(n+1))
		}
		if r.chance(dropout) {
			away = int(r.next() % uint64(n+1))
		}
		if r.chance(dropout) {
			speaking = !speaking
		}
		if r.chance(dropout) {
			ec = !ec
		}
	}

	frac := float64(table) / float64(n)
	bucket := 0
	switch {
	case frac >= 0.67:
		bucket = 2
	case frac >= 0.34:
		bucket = 1
	}
	sym := bucket
	if away > 0 {
		sym += 3
	}
	if speaking {
		sym += 6
	}
	if ec {
		sym += 12
	}
	return sym
}

// BurstModel describes bursty gaze-layer failure: with probability
// PerFrameStart a blackout begins at a frame and lasts Len frames.
// During a blackout every gaze-derived feature (table/away gaze counts,
// eye contact) reads as noise — the camera-occlusion scenario the
// paper's multilayer design targets ("reduces the ratio of total
// failure"). Speaking (audio) and affect (face readable from any
// remaining camera) are not gaze-geometry features and survive.
type BurstModel struct {
	PerFrameStart float64
	Len           int
}

// burstMask precomputes which frames of an n-frame event are blacked
// out.
func (bm BurstModel) burstMask(n int, seed int64) []bool {
	mask := make([]bool, n)
	if bm.PerFrameStart <= 0 || bm.Len <= 0 {
		return mask
	}
	r := noise(seed^0xB0B0, 0)
	for i := 0; i < n; i++ {
		if r.chance(bm.PerFrameStart) {
			for k := i; k < i+bm.Len && k < n; k++ {
				mask[k] = true
			}
		}
	}
	return mask
}

// FeaturizeScenarioBursty produces baseline and multilayer symbol
// sequences under the same bursty gaze-layer failures, plus ground-truth
// phases. During blackout frames the gaze-derived part of both symbols
// is randomised; the multilayer symbol keeps its (independently sensed)
// affect component.
func FeaturizeScenarioBursty(sim *scene.Simulator, bm BurstModel, seed int64) (base, multi []int, phases []scene.Phase) {
	n := sim.NumFrames()
	base = make([]int, n)
	multi = make([]int, n)
	phases = make([]scene.Phase, n)
	mask := bm.burstMask(n, seed)
	r := noise(seed^0xFA11, 1)
	for i := 0; i < n; i++ {
		fs := sim.FrameState(i)
		phases[i] = fs.Phase
		b := DiningSymbol(fs, 0, seed)
		m := MultilayerSymbol(fs, 0, seed)
		if mask[i] {
			// Gaze-derived bits (table bucket, away, EC) are noise;
			// speaking (bit 6..) survives in both, affect survives in
			// the multilayer symbol.
			speaking := (b / 6) % 2
			affect := m / DiningSymbols
			gazeNoise := int(r.next() % 12) // random bucket/away/EC combo
			nb := (gazeNoise % 6) + speaking*6 + (gazeNoise/6)*12
			b = nb
			m = nb + affect*DiningSymbols
		}
		base[i] = b
		multi[i] = m
	}
	return base, multi, phases
}

// FeaturizeScenario converts a whole simulated event into the symbol
// sequence plus the ground-truth phase per frame.
func FeaturizeScenario(sim *scene.Simulator, dropout float64, seed int64) (symbols []int, phases []scene.Phase) {
	n := sim.NumFrames()
	symbols = make([]int, n)
	phases = make([]scene.Phase, n)
	for i := 0; i < n; i++ {
		fs := sim.FrameState(i)
		symbols[i] = DiningSymbol(fs, dropout, seed)
		phases[i] = fs.Phase
	}
	return symbols, phases
}

// MultilayerSymbols is the alphabet of the DiEvent-side activity
// featurizer: the baseline's cues (table/away gaze, speaking, eye
// contact) enriched with the emotion layer — 24 × 3 affect buckets.
const MultilayerSymbols = DiningSymbols * 3

// MultilayerSymbol quantises a frame using DiEvent's fused layers: the
// baseline's single-camera cues plus the dominant table affect
// (positive / neutral / negative) from the emotion layer. Experiment
// T-E contrasts segmentation with this richer alphabet against the Gao
// baseline's DiningSymbol.
func MultilayerSymbol(fs scene.FrameState, dropout float64, seed int64) int {
	base := DiningSymbol(fs, dropout, seed)
	pos, neg := 0, 0
	for _, p := range fs.Persons {
		if p.Emotion.Positive() {
			pos++
		}
		if p.Emotion.Negative() {
			neg++
		}
	}
	affect := 0 // neutral table
	switch {
	case pos > neg && pos > 0:
		affect = 1
	case neg > pos && neg > 0:
		affect = 2
	}
	// The emotion layer is a different sensor chain from the gaze
	// features, so its failures are independent and rarer: the sweep
	// variable models *gaze-layer* degradation (the paper's multilayer
	// claim is exactly that other layers cover such failures).
	if dropout > 0 {
		r := noise(seed^0x5151, uint64(fs.Index))
		if r.chance(dropout / 3) {
			affect = int(r.next() % 3)
		}
	}
	return base + affect*DiningSymbols
}

// FeaturizeScenarioMultilayer converts an event into multilayer symbols
// plus ground-truth phases.
func FeaturizeScenarioMultilayer(sim *scene.Simulator, dropout float64, seed int64) (symbols []int, phases []scene.Phase) {
	n := sim.NumFrames()
	symbols = make([]int, n)
	phases = make([]scene.Phase, n)
	for i := 0; i < n; i++ {
		fs := sim.FrameState(i)
		symbols[i] = MultilayerSymbol(fs, dropout, seed)
		phases[i] = fs.Phase
	}
	return symbols, phases
}

// FitSupervised estimates HMM parameters by maximum likelihood from
// labelled sequences over an m-symbol alphabet — the protocol of Gao et
// al., who trained on annotated nursing-home footage. States are the
// phases themselves, so Viterbi output needs no state-to-phase mapping.
// Counts are Laplace-smoothed so unseen transitions stay representable.
func FitSupervised(seqs [][]int, labels [][]scene.Phase, m int) (*HMM, error) {
	if len(seqs) == 0 || len(seqs) != len(labels) {
		return nil, ErrBadObs
	}
	if m < 2 {
		return nil, ErrBadModel
	}
	n := scene.NumPhases
	h := &HMM{N: n, M: m,
		Pi: make([]float64, n),
		A:  make([][]float64, n),
		B:  make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		h.A[i] = make([]float64, n)
		h.B[i] = make([]float64, m)
		// Laplace smoothing.
		for j := 0; j < n; j++ {
			h.A[i][j] = 1
		}
		for k := 0; k < m; k++ {
			h.B[i][k] = 1
		}
		h.Pi[i] = 1
	}
	for s, seq := range seqs {
		lab := labels[s]
		if len(seq) != len(lab) {
			return nil, ErrBadObs
		}
		for t, sym := range seq {
			if sym < 0 || sym >= m {
				return nil, ErrBadObs
			}
			ph := int(lab[t])
			if ph >= n {
				return nil, ErrBadObs
			}
			h.B[ph][sym]++
			if t == 0 {
				h.Pi[ph]++
			} else {
				h.A[int(lab[t-1])][ph]++
			}
		}
	}
	normalize(h.Pi)
	for i := 0; i < n; i++ {
		normalize(h.A[i])
		normalize(h.B[i])
	}
	// Dining phases progress strictly forward (arriving → ordering →
	// eating → talking → paying), so impose the left-right topology the
	// counts already approximate: without it, Viterbi can hop backwards
	// whenever a scripted gaze segment momentarily resembles an earlier
	// phase.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i && j != i+1 {
				h.A[i][j] = 0
			}
		}
		normalize(h.A[i])
	}
	for i := range h.Pi {
		h.Pi[i] = 0
	}
	h.Pi[0] = 1
	return h, nil
}

// MapStatesToPhases maps decoded HMM states to dining phases by majority
// vote against ground truth (the standard unsupervised-HMM evaluation
// protocol), returning the per-frame phase prediction.
func MapStatesToPhases(states []int, truth []scene.Phase, numStates int) []scene.Phase {
	votes := make([][]int, numStates)
	for i := range votes {
		votes[i] = make([]int, scene.NumPhases)
	}
	for t, s := range states {
		if s >= 0 && s < numStates {
			votes[s][truth[t]]++
		}
	}
	mapping := make([]scene.Phase, numStates)
	for s := range votes {
		best, bestV := 0, -1
		for p, v := range votes[s] {
			if v > bestV {
				best, bestV = p, v
			}
		}
		mapping[s] = scene.Phase(best)
	}
	out := make([]scene.Phase, len(states))
	for t, s := range states {
		if s >= 0 && s < numStates {
			out[t] = mapping[s]
		}
	}
	return out
}

// PhaseAccuracy returns the per-frame agreement between predicted and
// true phases.
func PhaseAccuracy(pred, truth []scene.Phase) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	ok := 0
	for i := range pred {
		if pred[i] == truth[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(pred))
}

// noise is a tiny deterministic RNG for feature dropout.
type noiseRand struct{ state uint64 }

func noise(seed int64, frame uint64) *noiseRand {
	return &noiseRand{state: uint64(seed)*0x9E3779B97F4A7C15 ^ frame*0xBF58476D1CE4E5B9}
}

func (r *noiseRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *noiseRand) chance(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}
