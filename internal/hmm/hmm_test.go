package hmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/scene"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1); !errors.Is(err, ErrBadModel) {
		t.Error("n=0 should fail")
	}
	if _, err := New(3, 1, 1); !errors.Is(err, ErrBadModel) {
		t.Error("m=1 should fail")
	}
	h, err := New(3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("fresh model invalid: %v", err)
	}
}

func TestLeftRightTopology(t *testing.T) {
	h, err := NewLeftRight(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j != i && j != i+1 && h.A[i][j] != 0 {
				t.Errorf("A[%d][%d] = %v, want 0 in left-right model", i, j, h.A[i][j])
			}
		}
	}
	if h.Pi[0] != 1 {
		t.Error("left-right model should start in state 0")
	}
}

// knownHMM builds a 2-state, 2-symbol model with distinctive dynamics.
func knownHMM() *HMM {
	return &HMM{
		N: 2, M: 2,
		Pi: []float64{0.8, 0.2},
		A:  [][]float64{{0.9, 0.1}, {0.2, 0.8}},
		B:  [][]float64{{0.95, 0.05}, {0.1, 0.9}},
	}
}

// sample draws a sequence from the model.
func sample(h *HMM, T int, rng *rand.Rand) ([]int, []int) {
	draw := func(d []float64) int {
		r := rng.Float64()
		var c float64
		for i, p := range d {
			c += p
			if r < c {
				return i
			}
		}
		return len(d) - 1
	}
	obs := make([]int, T)
	states := make([]int, T)
	s := draw(h.Pi)
	for t := 0; t < T; t++ {
		states[t] = s
		obs[t] = draw(h.B[s])
		s = draw(h.A[s])
	}
	return obs, states
}

func TestForwardMatchesBruteForce(t *testing.T) {
	// Property: scaled forward log-likelihood equals brute-force
	// enumeration over all state paths for short sequences.
	h := knownHMM()
	f := func(raw []bool) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		obs := make([]int, len(raw))
		for i, b := range raw {
			if b {
				obs[i] = 1
			}
		}
		got, err := h.LogLikelihood(obs)
		if err != nil {
			return false
		}
		want := math.Log(bruteLikelihood(h, obs))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// bruteLikelihood enumerates all state paths.
func bruteLikelihood(h *HMM, obs []int) float64 {
	T := len(obs)
	var total float64
	path := make([]int, T)
	var rec func(t int, p float64)
	rec = func(t int, p float64) {
		if t == T {
			total += p
			return
		}
		for s := 0; s < h.N; s++ {
			var tp float64
			if t == 0 {
				tp = h.Pi[s]
			} else {
				tp = h.A[path[t-1]][s]
			}
			path[t] = s
			rec(t+1, p*tp*h.B[s][obs[t]])
		}
	}
	rec(0, 1)
	return total
}

func TestViterbiRecoversStates(t *testing.T) {
	h := knownHMM()
	rng := rand.New(rand.NewSource(3))
	obs, states := sample(h, 500, rng)
	dec, err := h.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range dec {
		if dec[i] == states[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(dec)); frac < 0.85 {
		t.Errorf("viterbi agreement = %v, want ≥ 0.85", frac)
	}
}

func TestPosteriorSimplex(t *testing.T) {
	h := knownHMM()
	rng := rand.New(rand.NewSource(4))
	obs, _ := sample(h, 100, rng)
	g, err := h.Posterior(obs)
	if err != nil {
		t.Fatal(err)
	}
	for t2, row := range g {
		var s float64
		for _, v := range row {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("posterior out of range at %d: %v", t2, row)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("posterior at %d sums to %v", t2, s)
		}
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	truth := knownHMM()
	rng := rand.New(rand.NewSource(5))
	var seqs [][]int
	for i := 0; i < 5; i++ {
		obs, _ := sample(truth, 200, rng)
		seqs = append(seqs, obs)
	}
	h, _ := New(2, 2, 6)
	hist, err := h.BaumWelch(seqs, 50, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) < 2 {
		t.Fatalf("history too short: %v", hist)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] < hist[i-1]-1e-6 {
			t.Errorf("likelihood decreased at iter %d: %v -> %v", i, hist[i-1], hist[i])
		}
	}
	if err := h.Validate(); err != nil {
		t.Errorf("trained model invalid: %v", err)
	}
	// The trained model should assign the data higher likelihood than
	// its random initialisation did.
	if hist[len(hist)-1] <= hist[0] {
		t.Errorf("no improvement: %v", hist)
	}
}

func TestBaumWelchValidation(t *testing.T) {
	h, _ := New(2, 3, 1)
	if _, err := h.BaumWelch(nil, 10, 0); !errors.Is(err, ErrBadObs) {
		t.Error("no sequences should fail")
	}
	if _, err := h.BaumWelch([][]int{{0, 9}}, 10, 0); !errors.Is(err, ErrBadObs) {
		t.Error("out-of-alphabet symbol should fail")
	}
	if _, err := h.Viterbi(nil); !errors.Is(err, ErrBadObs) {
		t.Error("empty viterbi should fail")
	}
	if _, err := h.LogLikelihood([]int{-1}); !errors.Is(err, ErrBadObs) {
		t.Error("negative symbol should fail")
	}
}

func TestDiningSymbolRange(t *testing.T) {
	sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1000, Seed: 7, Enjoyment: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := scene.NewSimulator(sc)
	if err != nil {
		t.Fatal(err)
	}
	syms, phases := FeaturizeScenario(sim, 0, 0)
	if len(syms) != 1000 || len(phases) != 1000 {
		t.Fatal("featurize length mismatch")
	}
	seen := map[int]bool{}
	for _, s := range syms {
		if s < 0 || s >= DiningSymbols {
			t.Fatalf("symbol %d outside alphabet", s)
		}
		seen[s] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct symbols; featurizer too coarse", len(seen))
	}
}

func TestDiningSymbolDropoutChangesSymbols(t *testing.T) {
	sc, _ := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 500, Seed: 8, Enjoyment: 0.5})
	sim, _ := scene.NewSimulator(sc)
	clean, _ := FeaturizeScenario(sim, 0, 1)
	noisy, _ := FeaturizeScenario(sim, 0.3, 1)
	diff := 0
	for i := range clean {
		if clean[i] != noisy[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("dropout should perturb symbols")
	}
	// Determinism.
	noisy2, _ := FeaturizeScenario(sim, 0.3, 1)
	for i := range noisy {
		if noisy[i] != noisy2[i] {
			t.Fatal("dropout not deterministic")
		}
	}
}

// TestHMMSegmentsDinnerPhases is the end-to-end baseline check: an HMM
// trained on dinners must beat chance substantially on phase
// segmentation of a held-out dinner.
func TestHMMSegmentsDinnerPhases(t *testing.T) {
	var train [][]int
	var labels [][]scene.Phase
	for seed := int64(0); seed < 3; seed++ {
		sc, err := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1500, Seed: 10 + seed, Enjoyment: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		sim, _ := scene.NewSimulator(sc)
		syms, phases := FeaturizeScenario(sim, 0.05, seed)
		train = append(train, syms)
		labels = append(labels, phases)
	}

	// Unsupervised variant (Baum–Welch from a left-right init) must
	// beat chance (0.2 over five phases).
	hu, _ := NewLeftRight(scene.NumPhases, DiningSymbols, 11)
	if _, err := hu.BaumWelch(train, 30, 1e-4); err != nil {
		t.Fatal(err)
	}
	sc, _ := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1500, Seed: 99, Enjoyment: 0.6})
	sim, _ := scene.NewSimulator(sc)
	syms, truth := FeaturizeScenario(sim, 0.05, 99)
	statesU, err := hu.Viterbi(syms)
	if err != nil {
		t.Fatal(err)
	}
	predU := MapStatesToPhases(statesU, truth, scene.NumPhases)
	if acc := PhaseAccuracy(predU, truth); acc < 0.3 {
		t.Errorf("unsupervised HMM accuracy = %v, want ≥ 0.3", acc)
	}

	// Supervised variant (Gao et al.'s protocol: annotated training
	// footage) must do clearly better.
	hs, err := FitSupervised(train, labels, DiningSymbols)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Validate(); err != nil {
		t.Fatal(err)
	}
	statesS, err := hs.Viterbi(syms)
	if err != nil {
		t.Fatal(err)
	}
	predS := make([]scene.Phase, len(statesS))
	for i, s := range statesS {
		predS[i] = scene.Phase(s)
	}
	if acc := PhaseAccuracy(predS, truth); acc < 0.55 {
		t.Errorf("supervised HMM accuracy = %v, want ≥ 0.55", acc)
	}
}

func TestFitSupervisedValidation(t *testing.T) {
	if _, err := FitSupervised(nil, nil, DiningSymbols); !errors.Is(err, ErrBadObs) {
		t.Error("empty fit should fail")
	}
	if _, err := FitSupervised([][]int{{0}}, [][]scene.Phase{{0, 1}}, DiningSymbols); !errors.Is(err, ErrBadObs) {
		t.Error("length mismatch should fail")
	}
	if _, err := FitSupervised([][]int{{99}}, [][]scene.Phase{{0}}, DiningSymbols); !errors.Is(err, ErrBadObs) {
		t.Error("bad symbol should fail")
	}
}

func TestPhaseAccuracyEdges(t *testing.T) {
	if PhaseAccuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if PhaseAccuracy([]scene.Phase{0}, []scene.Phase{0, 1}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if PhaseAccuracy([]scene.Phase{1, 1}, []scene.Phase{1, 0}) != 0.5 {
		t.Error("accuracy arithmetic wrong")
	}
}

func TestBurstyFeaturization(t *testing.T) {
	sc, _ := scene.DinnerScenario(scene.DinnerOptions{Persons: 4, Frames: 1000, Seed: 21, Enjoyment: 0.6})
	sim, _ := scene.NewSimulator(sc)

	// No bursts: both sequences match the clean featurizers.
	b0, m0, ph := FeaturizeScenarioBursty(sim, BurstModel{}, 1)
	cleanB, cleanPh := FeaturizeScenario(sim, 0, 1)
	cleanM, _ := FeaturizeScenarioMultilayer(sim, 0, 1)
	for i := range b0 {
		if b0[i] != cleanB[i] || m0[i] != cleanM[i] || ph[i] != cleanPh[i] {
			t.Fatalf("burst-free featurization differs at %d", i)
		}
	}

	// With bursts: symbols stay in range, some frames corrupted, and
	// the multilayer affect component survives corruption.
	bm := BurstModel{PerFrameStart: 0.01, Len: 100}
	b1, m1, _ := FeaturizeScenarioBursty(sim, bm, 1)
	corrupted := 0
	for i := range b1 {
		if b1[i] < 0 || b1[i] >= DiningSymbols {
			t.Fatalf("baseline symbol %d out of range", b1[i])
		}
		if m1[i] < 0 || m1[i] >= MultilayerSymbols {
			t.Fatalf("multilayer symbol %d out of range", m1[i])
		}
		if b1[i] != cleanB[i] {
			corrupted++
			// Affect bucket (high part of the multilayer symbol) must
			// equal the clean affect — it comes from another sensor.
			if m1[i]/DiningSymbols != cleanM[i]/DiningSymbols {
				t.Fatalf("affect corrupted during gaze blackout at %d", i)
			}
		}
	}
	if corrupted == 0 {
		t.Error("bursts corrupted nothing")
	}
	// Determinism.
	b2, m2, _ := FeaturizeScenarioBursty(sim, bm, 1)
	for i := range b1 {
		if b1[i] != b2[i] || m1[i] != m2[i] {
			t.Fatal("bursty featurization not deterministic")
		}
	}
}
