package emotion

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/img"
)

// TestClassifyBatchMatchesClassify checks the batched entry point gives
// the same label and confidence as per-face Classify, on both the
// float and int8 paths.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	clf, test := sharedClassifier(t)
	labels, confs, err := clf.ClassifyBatch(test.Faces, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(test.Faces) || len(confs) != len(test.Faces) {
		t.Fatalf("batch sizes %d/%d for %d faces", len(labels), len(confs), len(test.Faces))
	}
	for i, f := range test.Faces {
		l, p, err := clf.Classify(f)
		if err != nil {
			t.Fatal(err)
		}
		if labels[i] != l || confs[i] != p {
			t.Fatalf("face %d: batch (%v,%v) != single (%v,%v)", i, labels[i], confs[i], l, p)
		}
	}
	if _, _, err := clf.ClassifyBatch(nil, nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// quantTwins builds two bit-identical copies of the shared trained
// classifier via the exact Save/Load roundtrip, then passes one
// through the EnableQuantized oracle gate on a held-out dataset. The
// float copy is the oracle for the equivalence property; cloning (not
// retraining) keeps the suite fast and the weights provably equal.
var quantOnce struct {
	sync.Once
	quant *Classifier
	float *Classifier
	err   error
}

func quantTwins(t *testing.T) (quant, float *Classifier) {
	t.Helper()
	base, _ := sharedClassifier(t)
	quantOnce.Do(func() {
		clone := func() (*Classifier, error) {
			var buf bytes.Buffer
			if err := base.Save(&buf); err != nil {
				return nil, err
			}
			return LoadClassifier(&buf)
		}
		var err error
		if quantOnce.float, err = clone(); err != nil {
			quantOnce.err = err
			return
		}
		if quantOnce.quant, err = clone(); err != nil {
			quantOnce.err = err
			return
		}
		quantOnce.err = quantOnce.quant.EnableQuantized(GenerateDataset(12, 9), 0)
	})
	if quantOnce.err != nil {
		t.Fatal(quantOnce.err)
	}
	return quantOnce.quant, quantOnce.float
}

// TestQuantizedOracleEquivalence is the int8-vs-float property test
// over both synthetic generators: the full GenerateDataset corpus
// (several seeds, none seen by the gate) and a sweep of raw
// GenerateFace crops across labels, variants and tones. Top-1 labels
// must be identical and confidences within the gate tolerance.
func TestQuantizedOracleEquivalence(t *testing.T) {
	qc, fc := quantTwins(t)
	if !qc.Quantized() {
		t.Fatal("quantized path not installed")
	}
	check := func(name string, f *img.Gray) {
		t.Helper()
		ql, qp, err := qc.Classify(f)
		if err != nil {
			t.Fatal(err)
		}
		fl, fp, err := fc.Classify(f)
		if err != nil {
			t.Fatal(err)
		}
		if ql != fl {
			t.Fatalf("%s: int8 %v (%.3f) != float %v (%.3f)", name, ql, qp, fl, fp)
		}
		if math.Abs(qp-fp) > QuantizedTolerance {
			t.Fatalf("%s: confidence drift %.4f", name, qp-fp)
		}
	}
	for _, seed := range []uint64{4, 11, 27} {
		ds := GenerateDataset(10, seed)
		for i, f := range ds.Faces {
			check(ds.Labels[i].String(), f)
		}
	}
	for _, l := range AllLabels() {
		for variant := uint64(0); variant < 6; variant++ {
			for _, tone := range []uint8{70, 140, 210} {
				check(l.String(), GenerateFace(l, variant, tone))
			}
		}
	}
}

// TestQuantizedBatchMatchesFloatLabels runs the quantized batch path
// over a full dataset and checks labels equal the float twin's.
func TestQuantizedBatchMatchesFloatLabels(t *testing.T) {
	qc, fc := quantTwins(t)
	ds := GenerateDataset(8, 33)
	ql, _, err := qc.ClassifyBatch(ds.Faces, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, _, err := fc.ClassifyBatch(ds.Faces, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ql {
		if ql[i] != fl[i] {
			t.Fatalf("face %d: int8 label %v != float %v", i, ql[i], fl[i])
		}
	}
}

// TestQuantizedFingerprintChanges: the int8 path is part of model
// identity, so enabling it must change the fingerprint.
func TestQuantizedFingerprintChanges(t *testing.T) {
	qc, fc := quantTwins(t)
	if qc.Fingerprint() == fc.Fingerprint() {
		t.Fatal("fingerprint unchanged by quantization")
	}
}

// TestSharedClassifierConcurrentBatch hammers one classifier (float and
// quantized) from many goroutines mixing Classify and ClassifyBatch —
// run under -race, this is the shared-scratch safety gate.
func TestSharedClassifierConcurrentBatch(t *testing.T) {
	qc, fc := quantTwins(t)
	for _, tc := range []struct {
		name string
		clf  *Classifier
	}{{"float", fc}, {"quant", qc}} {
		t.Run(tc.name, func(t *testing.T) {
			ds := GenerateDataset(2, 77)
			wantL, wantC, err := tc.clf.ClassifyBatch(ds.Faces, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			wl := append([]Label(nil), wantL...)
			wp := append([]float64(nil), wantC...)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var labels []Label
					var confs []float64
					for iter := 0; iter < 6; iter++ {
						if g%2 == 0 {
							var err error
							labels, confs, err = tc.clf.ClassifyBatch(ds.Faces, labels, confs)
							if err != nil {
								t.Error(err)
								return
							}
							for i := range wl {
								if labels[i] != wl[i] || confs[i] != wp[i] {
									t.Errorf("batch result drifted at face %d", i)
									return
								}
							}
						} else {
							for i, f := range ds.Faces {
								l, p, err := tc.clf.Classify(f)
								if err != nil {
									t.Error(err)
									return
								}
								if l != wl[i] || p != wp[i] {
									t.Errorf("single result drifted at face %d", i)
									return
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
