// Package emotion implements DiEvent's emotion-recognition component
// (paper §II-C): the six basic emotions, a synthetic expressive-face
// generator standing in for recorded face crops, and a classifier using
// Local Binary Patterns as the feature extractor and a feed-forward
// neural network as the classifier — exactly the method the paper names.
package emotion

import "fmt"

// Label is one of the basic emotions the paper recognises (§II-C:
// "happy, sad, angry, disgust, fear, and surprise"), plus Neutral as the
// resting state.
type Label uint8

// The emotion vocabulary. Neutral is first so the zero value is the
// resting state.
const (
	Neutral Label = iota
	Happy
	Sad
	Angry
	Disgust
	Fear
	Surprise

	numLabels
)

// NumLabels is the size of the emotion vocabulary.
const NumLabels = int(numLabels)

var labelNames = [NumLabels]string{
	"neutral", "happy", "sad", "angry", "disgust", "fear", "surprise",
}

// String returns the lower-case emotion name.
func (l Label) String() string {
	if int(l) >= NumLabels {
		return fmt.Sprintf("emotion(%d)", uint8(l))
	}
	return labelNames[l]
}

// Valid reports whether l is a defined label.
func (l Label) Valid() bool { return int(l) < NumLabels }

// ParseLabel maps a name back to its Label.
func ParseLabel(s string) (Label, error) {
	for i, n := range labelNames {
		if n == s {
			return Label(i), nil
		}
	}
	return Neutral, fmt.Errorf("emotion: unknown label %q", s)
}

// AllLabels returns the full vocabulary in order.
func AllLabels() []Label {
	out := make([]Label, NumLabels)
	for i := range out {
		out[i] = Label(i)
	}
	return out
}

// Positive reports whether the label counts toward the paper's "overall
// happiness" metric (Fig. 5): only Happy does.
func (l Label) Positive() bool { return l == Happy }

// Negative reports whether the label is a negative affect (sad, angry,
// disgust, fear) — used by the satisfaction score in the multilayer
// analysis.
func (l Label) Negative() bool {
	switch l {
	case Sad, Angry, Disgust, Fear:
		return true
	}
	return false
}
