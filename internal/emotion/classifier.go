package emotion

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/img"
	"repro/internal/lbp"
	"repro/internal/nn"
)

// Classifier is the paper's emotion recogniser: uniform LBP grid
// histograms fed to a feed-forward neural network (§II-C). Classify is
// safe for concurrent callers: per-call scratch (resized crop, LBP code
// image, descriptor) is borrowed from an internal pool, so the hot path
// stops allocating once warm.
type Classifier struct {
	net *nn.Network
	// quant, when non-nil, is the int8 inference view Classify and
	// ClassifyBatch route through instead of the float network. It is
	// only installed by EnableQuantized after passing the float-oracle
	// equivalence gate. Installing it must not race with inference.
	quant *nn.Quantized
	// gridX, gridY are the LBP descriptor grid, fixed at construction.
	gridX, gridY int

	scratch sync.Pool // of *clfScratch
	batch   sync.Pool // of *batchScratch
}

// batchScratch is the reusable working set of ClassifyBatch: one flat
// sample-major feature matrix plus the per-face extraction scratch and
// the network's output buffers.
type batchScratch struct {
	feats []float64   // batch × featLen, sample-major
	rows  [][]float64 // row views into feats
	sc    clfScratch  // shared crop/code scratch, reused face by face
	cls   []int
	conf  []float64
}

// clfScratch is the reusable per-call working set of Classify.
type clfScratch struct {
	resized *img.Gray // face crop resampled to FaceSize²
	codes   *img.Gray // LBP code image
	feat    []float64 // grid descriptor
}

// DefaultGrid is the LBP grid used by the default classifier: 4×4 cells
// of 59 uniform bins = 944 features per face crop.
const DefaultGrid = 4

// ErrNotTrained is returned when classifying before training/loading.
var ErrNotTrained = errors.New("emotion: classifier not trained")

// NewClassifier builds an untrained classifier with the given hidden
// width (default 48 when 0).
func NewClassifier(hidden int, seed int64) (*Classifier, error) {
	if hidden == 0 {
		hidden = 48
	}
	if hidden < 0 {
		return nil, fmt.Errorf("emotion: hidden width %d: %w", hidden, nn.ErrBadConfig)
	}
	in := DefaultGrid * DefaultGrid * lbp.NumUniformBins
	net, err := nn.New(nn.Config{
		Sizes:  []int{in, hidden, NumLabels},
		Hidden: nn.ReLU,
		Seed:   seed,
	})
	if err != nil {
		return nil, fmt.Errorf("emotion: building network: %w", err)
	}
	return &Classifier{net: net, gridX: DefaultGrid, gridY: DefaultGrid}, nil
}

// Features extracts the LBP descriptor of a face crop (resized to
// FaceSize first so any detector output size works). The returned
// slice is freshly allocated and safe to retain.
func (c *Classifier) Features(face *img.Gray) ([]float64, error) {
	return c.featuresInto(face, &clfScratch{codes: &img.Gray{}})
}

// featuresInto is the shared extraction path: resize into sc's crop
// buffer when needed, then compute the grid descriptor into sc's
// descriptor and code-image scratch. The returned slice aliases
// sc.feat.
func (c *Classifier) featuresInto(face *img.Gray, sc *clfScratch) ([]float64, error) {
	if face.W != FaceSize || face.H != FaceSize {
		sc.resized = face.ResizeInto(FaceSize, FaceSize, sc.resized)
		face = sc.resized
	}
	feat, err := lbp.GridDescriptorInto(face, c.gridX, c.gridY, sc.feat, sc.codes)
	if err != nil {
		return nil, fmt.Errorf("emotion: extracting features: %w", err)
	}
	sc.feat = feat
	return feat, nil
}

// Classify returns the predicted emotion and its confidence for a face
// crop. Safe for concurrent callers.
func (c *Classifier) Classify(face *img.Gray) (Label, float64, error) {
	if c.net == nil {
		return Neutral, 0, ErrNotTrained
	}
	sc, _ := c.scratch.Get().(*clfScratch)
	if sc == nil {
		sc = &clfScratch{codes: &img.Gray{}}
	}
	feat, err := c.featuresInto(face, sc)
	if err != nil {
		c.scratch.Put(sc)
		return Neutral, 0, err
	}
	var cls int
	var p float64
	if c.quant != nil {
		cls, p, err = c.quant.Classify(feat)
	} else {
		cls, p, err = c.net.Classify(feat)
	}
	c.scratch.Put(sc)
	if err != nil {
		return Neutral, 0, fmt.Errorf("emotion: classifying: %w", err)
	}
	return Label(cls), p, nil
}

// ClassifyBatch classifies a whole set of face crops in one batched
// network pass, appending the labels and confidences to labels and
// confs (pass nil to allocate, retained buffers to reuse their
// capacity). Per-face results are identical to Classify — feature
// extraction is per face either way and the batched forward pass is
// bit-identical per sample — but one weight-row walk serves the whole
// batch, and the per-face scratch churn disappears. Safe for
// concurrent callers.
func (c *Classifier) ClassifyBatch(faces []*img.Gray, labels []Label, confs []float64) ([]Label, []float64, error) {
	labels, confs = labels[:0], confs[:0]
	if c.net == nil {
		return nil, nil, ErrNotTrained
	}
	if len(faces) == 0 {
		return labels, confs, nil
	}
	bs, _ := c.batch.Get().(*batchScratch)
	if bs == nil {
		bs = &batchScratch{sc: clfScratch{codes: &img.Gray{}}}
	}
	defer c.batch.Put(bs)
	featLen := c.gridX * c.gridY * lbp.NumUniformBins
	if need := len(faces) * featLen; cap(bs.feats) < need {
		bs.feats = make([]float64, need)
	}
	bs.rows = bs.rows[:0]
	for i, f := range faces {
		row := bs.feats[i*featLen : (i+1)*featLen : (i+1)*featLen]
		bs.sc.feat = row
		if _, err := c.featuresInto(f, &bs.sc); err != nil {
			return nil, nil, fmt.Errorf("emotion: batch face %d: %w", i, err)
		}
		bs.rows = append(bs.rows, row)
	}
	var err error
	if c.quant != nil {
		bs.cls, bs.conf, err = c.quant.ClassifyBatch(bs.rows, bs.cls, bs.conf)
	} else {
		bs.cls, bs.conf, err = c.net.ClassifyBatch(bs.rows, bs.cls, bs.conf)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("emotion: classifying batch: %w", err)
	}
	for i, cls := range bs.cls {
		labels = append(labels, Label(cls))
		confs = append(confs, bs.conf[i])
	}
	return labels, confs, nil
}

// QuantizedTolerance is the default confidence drift EnableQuantized
// accepts between the int8 path and the float oracle. Symmetric
// per-tensor input quantization measures a worst-case softmax drift of
// ≈0.145 on this model family (1008 synthetic faces, two training
// configurations, zero top-1 disagreements); 0.2 gives headroom while
// still rejecting a genuinely broken quantization, whose confidences
// scatter much wider.
const QuantizedTolerance = 0.2

// EnableQuantized builds the int8 inference view of the network and
// installs it — but only after the oracle-equivalence gate passes:
// every face of val must classify to the same top-1 label under int8
// as under the float network, with confidence within tol (≤ 0 selects
// QuantizedTolerance). On any disagreement the classifier is left
// unchanged and the error reports the first offending sample. Must not
// race with Classify/ClassifyBatch.
func (c *Classifier) EnableQuantized(val *Dataset, tol float64) error {
	if c.net == nil {
		return ErrNotTrained
	}
	if tol <= 0 {
		tol = QuantizedTolerance
	}
	q := c.net.Quantize()
	for i, f := range val.Faces {
		feat, err := c.Features(f)
		if err != nil {
			return fmt.Errorf("emotion: quantization gate sample %d: %w", i, err)
		}
		fc, fp, err := c.net.Classify(feat)
		if err != nil {
			return fmt.Errorf("emotion: quantization gate sample %d: %w", i, err)
		}
		qc, qp, err := q.Classify(feat)
		if err != nil {
			return fmt.Errorf("emotion: quantization gate sample %d: %w", i, err)
		}
		if qc != fc {
			return fmt.Errorf("emotion: quantization rejected: sample %d classifies %v (%.3f) int8 vs %v (%.3f) float",
				i, Label(qc), qp, Label(fc), fp)
		}
		if d := qp - fp; d > tol || d < -tol {
			return fmt.Errorf("emotion: quantization rejected: sample %d confidence drift %.4f exceeds %.4f",
				i, d, tol)
		}
	}
	c.quant = q
	return nil
}

// Quantized reports whether int8 inference is installed.
func (c *Classifier) Quantized() bool { return c.quant != nil }

// Dataset is a labelled set of face crops.
type Dataset struct {
	Faces  []*img.Gray
	Labels []Label
}

// GenerateDataset renders perVariant synthetic subjects for every
// emotion label across the given skin tones, with deterministic variant
// jitter — the stand-in for the paper's training corpus.
func GenerateDataset(perLabel int, seed uint64) *Dataset {
	tones := []uint8{230, 200, 170, 140, 110}
	ds := &Dataset{}
	for _, l := range AllLabels() {
		for v := 0; v < perLabel; v++ {
			variant := seed*1_000_003 + uint64(l)*10_007 + uint64(v)*101 + 1
			tone := tones[v%len(tones)]
			ds.Faces = append(ds.Faces, GenerateFace(l, variant, tone))
			ds.Labels = append(ds.Labels, l)
		}
	}
	return ds
}

// Split partitions the dataset into train/test by taking every k-th
// sample into the test set (k = 1/testFrac rounded); deterministic and
// stratified because GenerateDataset interleaves labels consistently.
func (d *Dataset) Split(testFrac float64) (train, test *Dataset) {
	if testFrac <= 0 || testFrac >= 1 {
		testFrac = 0.25
	}
	k := int(1 / testFrac)
	if k < 2 {
		k = 2
	}
	train, test = &Dataset{}, &Dataset{}
	for i := range d.Faces {
		if i%k == 0 {
			test.Faces = append(test.Faces, d.Faces[i])
			test.Labels = append(test.Labels, d.Labels[i])
		} else {
			train.Faces = append(train.Faces, d.Faces[i])
			train.Labels = append(train.Labels, d.Labels[i])
		}
	}
	return train, test
}

// TrainOptions re-exports the network training knobs.
type TrainOptions = nn.TrainOptions

// Train fits the classifier on a dataset and returns per-epoch losses.
func (c *Classifier) Train(ds *Dataset, opt TrainOptions) ([]float64, error) {
	if len(ds.Faces) == 0 || len(ds.Faces) != len(ds.Labels) {
		return nil, fmt.Errorf("emotion: dataset %d faces vs %d labels: %w",
			len(ds.Faces), len(ds.Labels), nn.ErrBadData)
	}
	samples := make([][]float64, len(ds.Faces))
	labels := make([]int, len(ds.Faces))
	for i, f := range ds.Faces {
		feat, err := c.Features(f)
		if err != nil {
			return nil, fmt.Errorf("emotion: sample %d: %w", i, err)
		}
		samples[i] = feat
		labels[i] = int(ds.Labels[i])
	}
	hist, err := c.net.Train(samples, labels, opt)
	if err != nil {
		return nil, fmt.Errorf("emotion: training: %w", err)
	}
	return hist, nil
}

// ConfusionMatrix is indexed [true][predicted].
type ConfusionMatrix [NumLabels][NumLabels]int

// Accuracy returns the trace ratio.
func (m *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
			if i == j {
				correct += m[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// String renders the matrix with row/column labels.
func (m *ConfusionMatrix) String() string {
	s := "true\\pred"
	for _, l := range AllLabels() {
		s += fmt.Sprintf("%9s", l)
	}
	s += "\n"
	for i, l := range AllLabels() {
		s += fmt.Sprintf("%-9s", l)
		for j := range m[i] {
			s += fmt.Sprintf("%9d", m[i][j])
		}
		s += "\n"
	}
	return s
}

// Evaluate classifies a dataset and returns the confusion matrix.
func (c *Classifier) Evaluate(ds *Dataset) (*ConfusionMatrix, error) {
	var m ConfusionMatrix
	for i, f := range ds.Faces {
		got, _, err := c.Classify(f)
		if err != nil {
			return nil, fmt.Errorf("emotion: evaluating sample %d: %w", i, err)
		}
		m[ds.Labels[i]][got]++
	}
	return &m, nil
}

// Fingerprint hashes the classifier's grid shape and network weights
// into a stable identity. Pipelines record it in their run manifest so
// an incremental re-run notices a retrained or swapped model and
// re-derives the emotion layer.
func (c *Classifier) Fingerprint() uint64 {
	h := fnv.New64a()
	// The quantization flag is part of the identity: int8 inference
	// produces (slightly) different confidences, so a manifest built
	// against the float path must not replay against the int8 one.
	fmt.Fprintf(h, "grid=%dx%d;quant=%t;", c.gridX, c.gridY, c.quant != nil)
	if c.net != nil {
		// Saving into an fnv hash cannot fail.
		_ = c.net.Save(h)
	}
	return h.Sum64()
}

// Save persists the trained network.
func (c *Classifier) Save(w io.Writer) error {
	if c.net == nil {
		return ErrNotTrained
	}
	return c.net.Save(w)
}

// LoadClassifier reads a classifier saved with Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("emotion: loading model: %w", err)
	}
	sizes := net.Sizes()
	want := DefaultGrid * DefaultGrid * lbp.NumUniformBins
	if sizes[0] != want {
		return nil, fmt.Errorf("emotion: model input %d, want %d: %w", sizes[0], want, nn.ErrBadModel)
	}
	if sizes[len(sizes)-1] != NumLabels {
		return nil, fmt.Errorf("emotion: model output %d, want %d: %w",
			sizes[len(sizes)-1], NumLabels, nn.ErrBadModel)
	}
	return &Classifier{net: net, gridX: DefaultGrid, gridY: DefaultGrid}, nil
}
