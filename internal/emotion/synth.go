package emotion

import (
	"math"

	"repro/internal/img"
)

// Synthetic expressive faces. The paper's emotion recogniser was trained
// on real face crops; with no dataset available we draw parametric
// cartoon faces whose geometry varies by emotion the way facial action
// units do: mouth curvature and opening, eyebrow angle and height, eye
// openness. The same drawing code renders faces into video frames, so
// the classifier trained on generated crops transfers to the pipeline by
// construction — mirroring how the paper's pre-trained model transfers
// to its recorded footage.

// faceParams are the expression parameters for one emotion.
type faceParams struct {
	mouthCurve float64 // +1 smile … −1 frown
	mouthOpen  float64 // 0 closed … 1 wide open
	browAngle  float64 // radians; positive = inner ends raised (sad), negative = lowered (angry)
	browRaise  float64 // 0 resting … 1 high (surprise/fear)
	eyeOpen    float64 // 0.4 squint … 1.6 wide
	mouthSkew  float64 // asymmetry, used by disgust
}

// params returns the canonical expression parameters for a label.
func params(l Label) faceParams {
	switch l {
	case Happy:
		return faceParams{mouthCurve: 1, mouthOpen: 0.25, browRaise: 0.2, eyeOpen: 1}
	case Sad:
		return faceParams{mouthCurve: -0.9, browAngle: 0.5, eyeOpen: 0.7}
	case Angry:
		return faceParams{mouthCurve: -0.6, browAngle: -0.7, eyeOpen: 0.8}
	case Disgust:
		return faceParams{mouthCurve: -0.5, mouthSkew: 0.6, browAngle: -0.3, eyeOpen: 0.6}
	case Fear:
		return faceParams{mouthCurve: -0.2, mouthOpen: 0.5, browAngle: 0.4, browRaise: 0.8, eyeOpen: 1.4}
	case Surprise:
		return faceParams{mouthCurve: 0, mouthOpen: 1, browRaise: 1, eyeOpen: 1.6}
	default: // Neutral
		return faceParams{eyeOpen: 1}
	}
}

// Jitter perturbs expression parameters deterministically from a variant
// number, so every generated sample differs (inter-subject variation)
// while remaining reproducible.
func (p faceParams) jitter(variant uint64) faceParams {
	h := variant
	next := func() float64 {
		// xorshift-style mix; returns in [-1, 1).
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return float64(int64(h%2000)-1000) / 1000
	}
	p.mouthCurve += 0.15 * next()
	p.mouthOpen = clamp01(p.mouthOpen + 0.1*next())
	p.browAngle += 0.1 * next()
	p.browRaise = clamp01(p.browRaise + 0.1*next())
	p.eyeOpen = math.Max(0.3, p.eyeOpen+0.15*next())
	p.mouthSkew += 0.08 * next()
	return p
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// RenderFaceInto draws an expressive face filling rectangle r of dst.
// tone is the skin gray level (identity cue); variant adds deterministic
// inter-subject jitter (0 = canonical face). The drawing is the single
// source of facial appearance for both classifier training data and the
// video renderer.
func RenderFaceInto(dst *img.Gray, r img.Rect, tone uint8, l Label, variant uint64) {
	if r.W < 4 || r.H < 4 {
		// Too small to carry any expression; draw a plain blob so the
		// face detector still sees a head.
		cx, cy := r.Center()
		dst.FillCircle(cx, cy, float64(r.W)/2, tone)
		return
	}
	p := params(l)
	if variant != 0 {
		p = p.jitter(variant)
	}
	cx, cy := r.Center()
	rw, rh := float64(r.W)/2, float64(r.H)/2

	// Head: filled ellipse of the skin tone.
	dst.FillEllipse(cx, cy, rw, rh, 0, tone)

	dark := uint8(maxInt(0, int(tone)-100))

	// Eyes: two ellipses whose vertical radius encodes openness.
	eyeY := cy - 0.25*rh
	eyeDX := 0.38 * rw
	eyeR := 0.16 * rw
	eyeV := eyeR * 0.8 * p.eyeOpen
	if eyeV < 0.5 {
		eyeV = 0.5
	}
	dst.FillEllipse(cx-eyeDX, eyeY, eyeR, eyeV, 0, dark)
	dst.FillEllipse(cx+eyeDX, eyeY, eyeR, eyeV, 0, dark)

	// Eyebrows: thick angled bars above the eyes; angle and height carry
	// the emotion signal (inner ends raised for sad/fear, lowered for
	// angry).
	browY := eyeY - (0.22+0.22*p.browRaise)*rh
	browLen := 0.34 * rw
	browThick := maxInt(2, int(0.08*rh))
	for _, side := range []float64{-1, 1} {
		bx := cx + side*eyeDX
		dy := p.browAngle * 0.3 * rh
		x0 := int(bx - browLen/2)
		x1 := int(bx + browLen/2)
		var y0, y1 int
		if side < 0 {
			y0, y1 = int(browY+dy), int(browY-dy*0.3)
		} else {
			y0, y1 = int(browY-dy*0.3), int(browY+dy)
		}
		for k := 0; k < browThick; k++ {
			dst.DrawLine(x0, y0+k, x1, y1+k, dark)
		}
	}

	// Mouth. Open mouths are ellipses; closed mouths are thick curved
	// bands whose vertical bend encodes valence. The band is drawn as a
	// parabola y = mouthY − curve·(x²-normalised) with several pixels of
	// thickness, giving LBP a strong oriented-edge signal.
	mouthY := cy + 0.45*rh
	mouthW := 0.55 * rw
	skew := p.mouthSkew * 0.2 * rw
	if p.mouthOpen > 0.15 {
		dst.FillEllipse(cx+skew, mouthY, mouthW*0.6, 0.12*rh+0.25*rh*p.mouthOpen, 0, dark)
	} else {
		bend := p.mouthCurve * 0.3 * rh
		thick := maxInt(2, int(0.1*rh))
		for xi := -int(mouthW); xi <= int(mouthW); xi++ {
			fx := float64(xi) / mouthW // in [-1,1]
			// Smile (+bend): corners above centre; frown: below.
			fy := mouthY + bend*(fx*fx) - bend*0.5
			x := int(cx + skew + float64(xi))
			for k := 0; k < thick; k++ {
				dst.Set(x, int(fy)+k, dark)
			}
		}
	}
}

// FaceSize is the side length of generated training crops.
const FaceSize = 64

// GenerateFace renders a FaceSize×FaceSize training crop for a label.
// variant selects the synthetic "subject"; tone defaults to 200 when 0.
func GenerateFace(l Label, variant uint64, tone uint8) *img.Gray {
	if tone == 0 {
		tone = 200
	}
	g := img.New(FaceSize, FaceSize)
	g.Fill(30) // dark background behind the head
	RenderFaceInto(g, img.Rect{X: 4, Y: 2, W: FaceSize - 8, H: FaceSize - 4}, tone, l, variant)
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
