package emotion

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/img"
)

func TestLabelVocabulary(t *testing.T) {
	if NumLabels != 7 {
		t.Fatalf("NumLabels = %d, want 7 (6 basic emotions + neutral)", NumLabels)
	}
	for _, l := range AllLabels() {
		if !l.Valid() {
			t.Errorf("label %d invalid", l)
		}
		back, err := ParseLabel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v failed: %v %v", l, back, err)
		}
	}
	if _, err := ParseLabel("bored"); err == nil {
		t.Error("unknown label should fail to parse")
	}
	if Label(99).Valid() {
		t.Error("label 99 should be invalid")
	}
	if Label(99).String() == "" {
		t.Error("invalid label should still render")
	}
}

func TestLabelAffect(t *testing.T) {
	if !Happy.Positive() || Sad.Positive() {
		t.Error("Positive misclassifies")
	}
	for _, l := range []Label{Sad, Angry, Disgust, Fear} {
		if !l.Negative() {
			t.Errorf("%v should be negative", l)
		}
	}
	for _, l := range []Label{Neutral, Happy, Surprise} {
		if l.Negative() {
			t.Errorf("%v should not be negative", l)
		}
	}
}

func TestGenerateFaceDeterministic(t *testing.T) {
	a := GenerateFace(Happy, 42, 200)
	b := GenerateFace(Happy, 42, 200)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same variant should render identically")
		}
	}
	c := GenerateFace(Happy, 43, 200)
	diff := img.MeanAbsDiff(a, c)
	if diff == 0 {
		t.Error("different variants should differ")
	}
}

func TestGenerateFaceEmotionsDiffer(t *testing.T) {
	// Canonical faces of different emotions must be visually distinct.
	faces := map[Label]*img.Gray{}
	for _, l := range AllLabels() {
		faces[l] = GenerateFace(l, 0, 200)
	}
	distinct := 0
	for _, a := range []Label{Happy, Sad, Surprise, Angry} {
		for _, b := range []Label{Happy, Sad, Surprise, Angry} {
			if a >= b {
				continue
			}
			if img.MeanAbsDiff(faces[a], faces[b]) > 0.5 {
				distinct++
			}
		}
	}
	if distinct < 5 {
		t.Errorf("only %d of 6 emotion pairs visually distinct", distinct)
	}
}

func TestRenderFaceIntoTinyRect(t *testing.T) {
	g := img.New(10, 10)
	// Must not panic and must draw something.
	RenderFaceInto(g, img.Rect{X: 3, Y: 3, W: 3, H: 3}, 200, Happy, 1)
	if g.Mean() == 0 {
		t.Error("tiny face should still draw a blob")
	}
}

var (
	trainedClf  *Classifier
	trainedTest *Dataset
	trainOnce   sync.Once
	trainErr    error
)

// sharedClassifier trains one classifier for all accuracy tests — LBP
// extraction over hundreds of crops dominates test time otherwise.
func sharedClassifier(t *testing.T) (*Classifier, *Dataset) {
	t.Helper()
	trainOnce.Do(func() {
		ds := GenerateDataset(40, 1)
		train, test := ds.Split(0.25)
		clf, err := NewClassifier(48, 2)
		if err != nil {
			trainErr = err
			return
		}
		_, err = clf.Train(train, TrainOptions{Epochs: 60, Seed: 3, LearningRate: 0.01})
		if err != nil {
			trainErr = err
			return
		}
		trainedClf, trainedTest = clf, test
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainedClf, trainedTest
}

func TestClassifierAccuracy(t *testing.T) {
	clf, test := sharedClassifier(t)
	m, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(); acc < 0.8 {
		t.Errorf("held-out accuracy = %v, want ≥ 0.8\n%s", acc, m)
	}
}

func TestClassifierSaveLoad(t *testing.T) {
	clf, test := sharedClassifier(t)
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on a few test faces.
	for i := 0; i < 5 && i < len(test.Faces); i++ {
		a, _, _ := clf.Classify(test.Faces[i])
		b, _, _ := loaded.Classify(test.Faces[i])
		if a != b {
			t.Errorf("face %d: prediction drift %v vs %v", i, a, b)
		}
	}
}

func TestClassifierRejectsGarbageModel(t *testing.T) {
	if _, err := LoadClassifier(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage model should fail to load")
	}
}

func TestClassifyResizesToFaceSize(t *testing.T) {
	clf, _ := sharedClassifier(t)
	big := GenerateFace(Happy, 7, 200).Resize(100, 120)
	if _, _, err := clf.Classify(big); err != nil {
		t.Errorf("classify should resize internally: %v", err)
	}
}

func TestUntrainedClassifier(t *testing.T) {
	c := &Classifier{}
	if _, _, err := c.Classify(img.New(64, 64)); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v", err)
	}
	if err := c.Save(&bytes.Buffer{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("save err = %v", err)
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := GenerateDataset(8, 2)
	train, test := ds.Split(0.25)
	if len(train.Faces)+len(test.Faces) != len(ds.Faces) {
		t.Error("split loses samples")
	}
	if len(test.Faces) == 0 || len(train.Faces) == 0 {
		t.Error("split should be non-trivial")
	}
	// Degenerate fractions fall back to defaults.
	tr2, te2 := ds.Split(0)
	if len(tr2.Faces) == 0 || len(te2.Faces) == 0 {
		t.Error("fallback split broken")
	}
}

func TestConfusionMatrixAccuracy(t *testing.T) {
	var m ConfusionMatrix
	if m.Accuracy() != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
	m[0][0] = 3
	m[1][1] = 1
	m[1][0] = 1
	if got := m.Accuracy(); got != 0.8 {
		t.Errorf("accuracy = %v, want 0.8", got)
	}
	if m.String() == "" {
		t.Error("matrix should render")
	}
}

func TestTrainValidatesDataset(t *testing.T) {
	clf, _ := NewClassifier(8, 1)
	if _, err := clf.Train(&Dataset{}, TrainOptions{Epochs: 1}); err == nil {
		t.Error("empty dataset should fail")
	}
	bad := &Dataset{Faces: []*img.Gray{img.New(64, 64)}}
	if _, err := clf.Train(bad, TrainOptions{Epochs: 1}); err == nil {
		t.Error("mismatched dataset should fail")
	}
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(-1, 1); err == nil {
		t.Error("negative hidden should fail")
	}
}
