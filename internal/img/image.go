// Package img provides the minimal grayscale image substrate DiEvent
// needs: an 8-bit image type, drawing primitives for the synthetic video
// renderer, histograms and distances for shot-boundary detection, integral
// images and filtering for face detection, and resampling for feature
// extraction. It deliberately avoids the stdlib image interfaces: frames
// are hot-path data and direct []uint8 access matters.
package img

import (
	"errors"
	"fmt"
	"math"
)

// Gray is an 8-bit grayscale image with rows stored contiguously.
type Gray struct {
	W, H int
	// Pix holds W*H bytes, row-major.
	Pix []uint8
}

// ErrBounds is returned for out-of-range crop or resample requests.
var ErrBounds = errors.New("img: region out of bounds")

// New allocates a W×H image initialised to black. It panics on
// non-positive dimensions — image sizes are static configuration, not
// runtime data.
func New(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// FromPix wraps an existing pixel buffer (not copied). len(pix) must be
// w*h.
func FromPix(w, h int, pix []uint8) (*Gray, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return nil, fmt.Errorf("img: buffer %d does not match %dx%d: %w", len(pix), w, h, ErrBounds)
	}
	return &Gray{W: w, H: h, Pix: pix}, nil
}

// At returns the pixel at (x,y); out-of-range coordinates read as 0.
func (g *Gray) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// AtClamped returns the pixel at (x,y) with coordinates clamped to the
// image border (replicate padding) — used by LBP and convolution.
func (g *Gray) AtClamped(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x,y); out-of-range writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := New(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Ensure returns g resized to w×h, reusing its pixel buffer when the
// capacity allows and allocating otherwise. A nil g allocates fresh.
// Pixel contents after Ensure are unspecified — callers overwrite them.
// This is the reuse primitive behind the *Into rendering and resampling
// variants on the pipeline hot path.
func Ensure(g *Gray, w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	if g == nil {
		return New(w, h)
	}
	if cap(g.Pix) >= w*h {
		g.Pix = g.Pix[:w*h]
	} else {
		g.Pix = make([]uint8, w*h)
	}
	g.W, g.H = w, h
	return g
}

// Rect is an integer pixel rectangle [X, X+W) × [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether (x,y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Intersect returns the overlap of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x0 := max(r.X, o.X)
	y0 := max(r.Y, o.Y)
	x1 := min(r.X+r.W, o.X+o.W)
	y1 := min(r.Y+r.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Area returns W*H (0 for empty rectangles).
func (r Rect) Area() int {
	if r.W <= 0 || r.H <= 0 {
		return 0
	}
	return r.W * r.H
}

// IoU returns intersection-over-union of two rectangles, the standard
// detection-overlap measure.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	return float64(inter) / float64(union)
}

// Center returns the rectangle centre.
func (r Rect) Center() (float64, float64) {
	return float64(r.X) + float64(r.W)/2, float64(r.Y) + float64(r.H)/2
}

// String renders the rect.
func (r Rect) String() string { return fmt.Sprintf("rect(%d,%d %dx%d)", r.X, r.Y, r.W, r.H) }

// Crop returns a copy of the given region. Regions extending outside the
// image return ErrBounds.
func (g *Gray) Crop(r Rect) (*Gray, error) {
	return g.CropInto(r, nil)
}

// CropInto is Crop reusing dst's buffer when possible (nil dst
// allocates). dst must not alias g.
func (g *Gray) CropInto(r Rect, dst *Gray) (*Gray, error) {
	if r.X < 0 || r.Y < 0 || r.W <= 0 || r.H <= 0 || r.X+r.W > g.W || r.Y+r.H > g.H {
		return nil, fmt.Errorf("img: crop %v from %dx%d: %w", r, g.W, g.H, ErrBounds)
	}
	out := Ensure(dst, r.W, r.H)
	for y := 0; y < r.H; y++ {
		src := (r.Y+y)*g.W + r.X
		copy(out.Pix[y*r.W:(y+1)*r.W], g.Pix[src:src+r.W])
	}
	return out, nil
}

// CropClamped crops the region, clamping reads at image borders, always
// succeeding for positive dimensions — used by trackers whose boxes may
// extend past the frame.
func (g *Gray) CropClamped(r Rect) *Gray {
	return g.CropClampedInto(r, nil)
}

// CropClampedInto is CropClamped reusing dst's buffer when possible (nil
// dst allocates). dst must not alias g.
func (g *Gray) CropClampedInto(r Rect, dst *Gray) *Gray {
	if r.W <= 0 || r.H <= 0 {
		out := Ensure(dst, 1, 1)
		out.Pix[0] = 0
		return out
	}
	out := Ensure(dst, r.W, r.H)
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			out.Pix[y*r.W+x] = g.AtClamped(r.X+x, r.Y+y)
		}
	}
	return out
}

// Resize returns the image resampled to w×h using bilinear interpolation.
func (g *Gray) Resize(w, h int) *Gray {
	return g.ResizeInto(w, h, nil)
}

// ResizeInto is Resize reusing dst's buffer when possible (nil dst
// allocates). dst must not alias g.
func (g *Gray) ResizeInto(w, h int, dst *Gray) *Gray {
	out := Ensure(dst, w, h)
	if w == g.W && h == g.H {
		copy(out.Pix, g.Pix)
		return out
	}
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		dy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			dx := fx - float64(x0)
			v00 := float64(g.AtClamped(x0, y0))
			v10 := float64(g.AtClamped(x0+1, y0))
			v01 := float64(g.AtClamped(x0, y0+1))
			v11 := float64(g.AtClamped(x0+1, y0+1))
			v := v00*(1-dx)*(1-dy) + v10*dx*(1-dy) + v01*(1-dx)*dy + v11*dx*dy
			out.Pix[y*w+x] = uint8(math.Round(math.Max(0, math.Min(255, v))))
		}
	}
	return out
}

// Mean returns the average pixel intensity.
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var s uint64
	for _, p := range g.Pix {
		s += uint64(p)
	}
	return float64(s) / float64(len(g.Pix))
}

// Variance returns the pixel intensity variance.
func (g *Gray) Variance() float64 {
	m := g.Mean()
	var s float64
	for _, p := range g.Pix {
		d := float64(p) - m
		s += d * d
	}
	return s / float64(len(g.Pix))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
