package img

import (
	"math"
	"math/rand"
	"testing"
)

func TestFillRectClips(t *testing.T) {
	g := New(4, 4)
	g.FillRect(Rect{-2, -2, 100, 100}, 255)
	for _, p := range g.Pix {
		if p != 255 {
			t.Fatal("FillRect should cover whole image")
		}
	}
}

func TestFillCircle(t *testing.T) {
	g := New(21, 21)
	g.FillCircle(10.5, 10.5, 5, 255)
	if g.At(10, 10) != 255 {
		t.Error("centre should be filled")
	}
	if g.At(0, 0) != 0 {
		t.Error("corner should stay black")
	}
	// Radius respected: point just outside stays black.
	if g.At(10, 17) != 0 {
		t.Error("outside radius should be black")
	}
	g.FillCircle(5, 5, 0, 9) // no-op, must not panic
}

func TestFillEllipseRotation(t *testing.T) {
	g := New(40, 40)
	// Wide flat ellipse along x.
	g.FillEllipse(20, 20, 15, 3, 0, 255)
	if g.At(33, 20) != 255 || g.At(20, 30) != 0 {
		t.Error("unrotated ellipse extent wrong")
	}
	h := New(40, 40)
	// Same ellipse rotated 90°: extents swap.
	h.FillEllipse(20, 20, 15, 3, math.Pi/2, 255)
	if h.At(20, 33) != 255 || h.At(30, 20) != 0 {
		t.Error("rotated ellipse extent wrong")
	}
}

func TestDrawLine(t *testing.T) {
	g := New(10, 10)
	g.DrawLine(0, 0, 9, 9, 255)
	for i := 0; i < 10; i++ {
		if g.At(i, i) != 255 {
			t.Fatalf("diagonal pixel (%d,%d) not set", i, i)
		}
	}
	h := New(10, 10)
	h.DrawLine(9, 5, 0, 5, 128) // right-to-left horizontal
	for i := 0; i < 10; i++ {
		if h.At(i, 5) != 128 {
			t.Fatal("horizontal line incomplete")
		}
	}
	// Line exiting the image must not panic.
	g.DrawLine(-5, -5, 20, 3, 1)
}

func TestDrawArc(t *testing.T) {
	g := New(40, 40)
	// Smile: lower half arc.
	g.DrawArc(20, 20, 10, 0.2, math.Pi-0.2, 255)
	// Some pixel near the bottom of the arc must be set.
	found := false
	for x := 15; x <= 25; x++ {
		if g.At(x, 29) == 255 || g.At(x, 30) == 255 {
			found = true
		}
	}
	if !found {
		t.Error("arc bottom missing")
	}
	g.DrawArc(5, 5, 0, 0, 1, 255) // zero radius no-op
}

func TestAddNoiseDeterministic(t *testing.T) {
	mk := func() *Gray {
		g := New(16, 16)
		g.Fill(128)
		rng := rand.New(rand.NewSource(99))
		g.AddNoise(5, rng.NormFloat64)
		return g
	}
	a, b := mk(), mk()
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("noise with same seed should be identical")
		}
	}
	// Noise actually changed something.
	changed := false
	for _, p := range a.Pix {
		if p != 128 {
			changed = true
		}
	}
	if !changed {
		t.Error("noise had no effect")
	}
	// sigma<=0 is a no-op.
	c := New(4, 4)
	c.Fill(7)
	c.AddNoise(0, func() float64 { return 100 })
	if c.At(0, 0) != 7 {
		t.Error("zero sigma should not change pixels")
	}
}

func TestAdjustBrightnessClamps(t *testing.T) {
	g := New(2, 1)
	g.Pix = []uint8{250, 5}
	g.AdjustBrightness(10)
	if g.Pix[0] != 255 {
		t.Error("should clamp high")
	}
	g.AdjustBrightness(-300)
	if g.Pix[0] != 0 || g.Pix[1] != 0 {
		t.Error("should clamp low")
	}
}
