package img

import "math"

// Histogram is a 256-bin intensity histogram.
type Histogram [256]uint32

// Hist computes the intensity histogram of the whole image.
func (g *Gray) Hist() Histogram {
	var h Histogram
	for _, p := range g.Pix {
		h[p]++
	}
	return h
}

// HistRegion computes the histogram over the (clipped) rectangle.
func (g *Gray) HistRegion(r Rect) Histogram {
	var h Histogram
	c := r.Intersect(Rect{0, 0, g.W, g.H})
	for y := c.Y; y < c.Y+c.H; y++ {
		for x := c.X; x < c.X+c.W; x++ {
			h[g.Pix[y*g.W+x]]++
		}
	}
	return h
}

// Total returns the histogram mass (pixel count).
func (h Histogram) Total() uint64 {
	var s uint64
	for _, c := range h {
		s += uint64(c)
	}
	return s
}

// ChiSquare returns the χ² distance between two histograms, each
// normalised to unit mass first; empty histograms compare as distance 0.
// This is the shot-boundary dissimilarity used by internal/parsing.
func (h Histogram) ChiSquare(o Histogram) float64 {
	th, to := float64(h.Total()), float64(o.Total())
	if th == 0 || to == 0 {
		if th == to {
			return 0
		}
		return 1
	}
	var d float64
	for i := 0; i < 256; i++ {
		a := float64(h[i]) / th
		b := float64(o[i]) / to
		if a+b > 0 {
			d += (a - b) * (a - b) / (a + b)
		}
	}
	return d / 2 // normalised to [0,1]
}

// Intersection returns the histogram-intersection similarity in [0,1]
// after normalisation (1 = identical distributions).
func (h Histogram) Intersection(o Histogram) float64 {
	th, to := float64(h.Total()), float64(o.Total())
	if th == 0 || to == 0 {
		if th == to {
			return 1
		}
		return 0
	}
	var s float64
	for i := 0; i < 256; i++ {
		s += math.Min(float64(h[i])/th, float64(o[i])/to)
	}
	return s
}

// MeanAbsDiff returns the mean absolute pixel difference between two
// equally-sized images, in intensity levels. Mismatched sizes compare the
// overlapping region after resizing the smaller to the larger — callers in
// the pipeline always pass same-sized frames, but defensive handling beats
// a panic in stream code.
func MeanAbsDiff(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		b = b.Resize(a.W, a.H)
	}
	var s uint64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		s += uint64(d)
	}
	return float64(s) / float64(len(a.Pix))
}

// Integral is a summed-area table: Sum[y][x] holds the sum of all pixels
// strictly above and left of (x,y), so region sums are four lookups.
type Integral struct {
	W, H int
	Sum  []uint64 // (W+1)*(H+1)
}

// NewIntegral builds the summed-area table of g.
func NewIntegral(g *Gray) *Integral {
	w, h := g.W, g.H
	in := &Integral{W: w, H: h, Sum: make([]uint64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		var rowSum uint64
		for x := 0; x < w; x++ {
			rowSum += uint64(g.Pix[y*w+x])
			in.Sum[(y+1)*stride+x+1] = in.Sum[y*stride+x+1] + rowSum
		}
	}
	return in
}

// RegionSum returns the sum of pixels in the rectangle (clipped to the
// image).
func (in *Integral) RegionSum(r Rect) uint64 {
	c := r.Intersect(Rect{0, 0, in.W, in.H})
	if c.Area() == 0 {
		return 0
	}
	stride := in.W + 1
	x0, y0, x1, y1 := c.X, c.Y, c.X+c.W, c.Y+c.H
	return in.Sum[y1*stride+x1] - in.Sum[y0*stride+x1] - in.Sum[y1*stride+x0] + in.Sum[y0*stride+x0]
}

// RegionMean returns the mean intensity over the rectangle (0 when empty).
func (in *Integral) RegionMean(r Rect) float64 {
	a := r.Intersect(Rect{0, 0, in.W, in.H}).Area()
	if a == 0 {
		return 0
	}
	return float64(in.RegionSum(r)) / float64(a)
}

// BoxBlur returns the image smoothed with a (2r+1)×(2r+1) box filter using
// the integral image (O(1) per pixel).
func (g *Gray) BoxBlur(r int) *Gray {
	if r <= 0 {
		return g.Clone()
	}
	in := NewIntegral(g)
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			win := Rect{X: x - r, Y: y - r, W: 2*r + 1, H: 2*r + 1}
			out.Pix[y*g.W+x] = uint8(math.Round(in.RegionMean(win)))
		}
	}
	return out
}

// SobelMag returns the Sobel gradient magnitude image (clamped to 255),
// used as an auxiliary cue by the face detector.
func (g *Gray) SobelMag() *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			gx := -int(g.AtClamped(x-1, y-1)) + int(g.AtClamped(x+1, y-1)) +
				-2*int(g.AtClamped(x-1, y)) + 2*int(g.AtClamped(x+1, y)) +
				-int(g.AtClamped(x-1, y+1)) + int(g.AtClamped(x+1, y+1))
			gy := -int(g.AtClamped(x-1, y-1)) - 2*int(g.AtClamped(x, y-1)) - int(g.AtClamped(x+1, y-1)) +
				int(g.AtClamped(x-1, y+1)) + 2*int(g.AtClamped(x, y+1)) + int(g.AtClamped(x+1, y+1))
			m := math.Hypot(float64(gx), float64(gy))
			if m > 255 {
				m = 255
			}
			out.Pix[y*g.W+x] = uint8(m)
		}
	}
	return out
}

// NCC returns the normalised cross-correlation between two equally-sized
// images in [-1, 1]; flat images correlate as 0 against anything non-flat
// and 1 against each other. Used for template-based face recognition.
func NCC(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		b = b.Resize(a.W, a.H)
	}
	ma, mb := a.Mean(), b.Mean()
	var num, da, db float64
	for i := range a.Pix {
		x := float64(a.Pix[i]) - ma
		y := float64(b.Pix[i]) - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 && db == 0 {
		return 1
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
