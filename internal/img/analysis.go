package img

import (
	"fmt"
	"math"
)

// Histogram is a 256-bin intensity histogram.
type Histogram [256]uint32

// Hist computes the intensity histogram of the whole image.
func (g *Gray) Hist() Histogram {
	var h Histogram
	for _, p := range g.Pix {
		h[p]++
	}
	return h
}

// HistRegion computes the histogram over the (clipped) rectangle.
func (g *Gray) HistRegion(r Rect) Histogram {
	var h Histogram
	c := r.Intersect(Rect{0, 0, g.W, g.H})
	for y := c.Y; y < c.Y+c.H; y++ {
		for x := c.X; x < c.X+c.W; x++ {
			h[g.Pix[y*g.W+x]]++
		}
	}
	return h
}

// Total returns the histogram mass (pixel count).
func (h Histogram) Total() uint64 {
	var s uint64
	for _, c := range h {
		s += uint64(c)
	}
	return s
}

// ChiSquare returns the χ² distance between two histograms, each
// normalised to unit mass first; empty histograms compare as distance 0.
// This is the shot-boundary dissimilarity used by internal/parsing.
func (h Histogram) ChiSquare(o Histogram) float64 {
	th, to := float64(h.Total()), float64(o.Total())
	if th == 0 || to == 0 {
		if th == to {
			return 0
		}
		return 1
	}
	var d float64
	for i := 0; i < 256; i++ {
		a := float64(h[i]) / th
		b := float64(o[i]) / to
		if a+b > 0 {
			d += (a - b) * (a - b) / (a + b)
		}
	}
	return d / 2 // normalised to [0,1]
}

// Intersection returns the histogram-intersection similarity in [0,1]
// after normalisation (1 = identical distributions).
func (h Histogram) Intersection(o Histogram) float64 {
	th, to := float64(h.Total()), float64(o.Total())
	if th == 0 || to == 0 {
		if th == to {
			return 1
		}
		return 0
	}
	var s float64
	for i := 0; i < 256; i++ {
		s += math.Min(float64(h[i])/th, float64(o[i])/to)
	}
	return s
}

// MeanAbsDiff returns the mean absolute pixel difference between two
// equally-sized images, in intensity levels. Mismatched sizes compare the
// overlapping region after resizing the smaller to the larger — callers in
// the pipeline always pass same-sized frames, but defensive handling beats
// a panic in stream code.
func MeanAbsDiff(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		b = b.Resize(a.W, a.H)
	}
	var s uint64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		s += uint64(d)
	}
	return float64(s) / float64(len(a.Pix))
}

// Integral is a summed-area table: Sum[y][x] holds the sum of all pixels
// strictly above and left of (x,y), so region sums are four lookups.
// Sums are stored as uint32 — any 8-bit image up to 16.8M pixels fits,
// and halving the table's footprint matters on the detection hot path,
// where building and probing the tables is bandwidth-bound. The
// constructors reject images whose total intensity could overflow.
type Integral struct {
	W, H int
	Sum  []uint32 // (W+1)*(H+1)
}

// maxIntegralPixels bounds W*H so that W*H*255 fits in uint32.
const maxIntegralPixels = (1<<32 - 1) / 255

// NewIntegral builds the summed-area table of g.
func NewIntegral(g *Gray) *Integral {
	return BuildIntegral(g, nil)
}

// BuildIntegral is NewIntegral reusing in's buffer when the capacity
// allows (nil in allocates) — the steady-state form for per-frame
// tables. It panics for images larger than 16.8M pixels, whose sums
// could overflow the uint32 table.
func BuildIntegral(g *Gray, in *Integral) *Integral {
	w, h := g.W, g.H
	if w*h > maxIntegralPixels {
		panic(fmt.Sprintf("img: %dx%d image too large for integral table", w, h))
	}
	if in == nil {
		in = &Integral{}
	}
	in.W, in.H = w, h
	in.Sum = ensureU32(in.Sum, (w+1)*(h+1))
	stride := w + 1
	clear(in.Sum[:stride]) // row 0 may hold stale data when reused
	for y := 0; y < h; y++ {
		var rowSum uint32
		in.Sum[(y+1)*stride] = 0
		for x := 0; x < w; x++ {
			rowSum += uint32(g.Pix[y*w+x])
			in.Sum[(y+1)*stride+x+1] = in.Sum[y*stride+x+1] + rowSum
		}
	}
	return in
}

// IntegralSq is a summed-area table of squared intensities: region
// sums of p² in four lookups. Together with Integral it gives any
// window's mean and variance in O(1), which is what lets the template
// matcher and the detector's variance gate skip per-window pixel
// passes entirely.
type IntegralSq struct {
	W, H int
	Sum  []uint64 // (W+1)*(H+1)
}

// NewIntegralSq builds the squared summed-area table of g.
func NewIntegralSq(g *Gray) *IntegralSq {
	_, sq := BuildIntegrals(g, nil, nil)
	return sq
}

// BuildIntegrals builds the plain and squared summed-area tables of g
// in one pass over the pixels, reusing in and sq (and their buffers)
// when non-nil. This is the per-frame entry point of the detection hot
// path: the extraction engine builds both tables once per
// (camera, frame) and shares them across the detector's pre-filters
// and the fused matching kernel.
func BuildIntegrals(g *Gray, in *Integral, sq *IntegralSq) (*Integral, *IntegralSq) {
	w, h := g.W, g.H
	if w*h > maxIntegralPixels {
		panic(fmt.Sprintf("img: %dx%d image too large for integral table", w, h))
	}
	if in == nil {
		in = &Integral{}
	}
	if sq == nil {
		sq = &IntegralSq{}
	}
	in.W, in.H = w, h
	sq.W, sq.H = w, h
	n := (w + 1) * (h + 1)
	in.Sum = ensureU32(in.Sum, n)
	sq.Sum = ensureU64(sq.Sum, n)
	stride := w + 1
	clear(in.Sum[:stride])
	clear(sq.Sum[:stride])
	for y := 0; y < h; y++ {
		var rowSum uint32
		var rowSq uint64
		row := g.Pix[y*w : (y+1)*w]
		// Shifted equal-length views so the inner loop indexes all four
		// streams by x with no bounds checks.
		prevIn := in.Sum[y*stride+1 : (y+1)*stride][:len(row)]
		curIn := in.Sum[(y+1)*stride+1 : (y+2)*stride][:len(row)]
		prevSq := sq.Sum[y*stride+1 : (y+1)*stride][:len(row)]
		curSq := sq.Sum[(y+1)*stride+1 : (y+2)*stride][:len(row)]
		in.Sum[(y+1)*stride], sq.Sum[(y+1)*stride] = 0, 0
		for x, pi := range prevIn {
			pv := uint64(row[x])
			rowSum += uint32(pv)
			rowSq += pv * pv
			curIn[x] = pi + rowSum
			curSq[x] = prevSq[x] + rowSq
		}
	}
	return in, sq
}

// ensureU64 returns s resized to n, reusing capacity when possible.
func ensureU64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

// ensureU32 is ensureU64 for uint32 buffers.
func ensureU32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

// RegionSum returns the sum of pixels in the rectangle (clipped to the
// image).
func (in *Integral) RegionSum(r Rect) uint64 {
	c := r.Intersect(Rect{0, 0, in.W, in.H})
	if c.Area() == 0 {
		return 0
	}
	return in.RegionSumUnclipped(c)
}

// RegionSumUnclipped is RegionSum without the clip: r must lie fully
// inside the image. It is the fast path for interior windows — the
// detector's scan windows and BoxBlur's interior pixels are in-bounds
// by construction, so they skip the two Intersect calls per lookup.
// The four-corner combination is exact in uint32 modular arithmetic
// because the true region sum always fits.
func (in *Integral) RegionSumUnclipped(r Rect) uint64 {
	stride := in.W + 1
	x0, y0, x1, y1 := r.X, r.Y, r.X+r.W, r.Y+r.H
	return uint64(in.Sum[y1*stride+x1] - in.Sum[y0*stride+x1] - in.Sum[y1*stride+x0] + in.Sum[y0*stride+x0])
}

// RegionMean returns the mean intensity over the rectangle (0 when
// empty). The rectangle is clipped once; the sum lookup reuses the
// clipped rect instead of re-intersecting.
func (in *Integral) RegionMean(r Rect) float64 {
	c := r.Intersect(Rect{0, 0, in.W, in.H})
	a := c.Area()
	if a == 0 {
		return 0
	}
	return float64(in.RegionSumUnclipped(c)) / float64(a)
}

// RegionMeanUnclipped is RegionMean for rectangles known to lie fully
// inside the image (no clipping, no emptiness check).
func (in *Integral) RegionMeanUnclipped(r Rect) float64 {
	return float64(in.RegionSumUnclipped(r)) / float64(r.Area())
}

// RegionSum returns the sum of squared pixels in the rectangle
// (clipped to the image).
func (sq *IntegralSq) RegionSum(r Rect) uint64 {
	c := r.Intersect(Rect{0, 0, sq.W, sq.H})
	if c.Area() == 0 {
		return 0
	}
	return sq.RegionSumUnclipped(c)
}

// RegionSumUnclipped is RegionSum without the clip: r must lie fully
// inside the image.
func (sq *IntegralSq) RegionSumUnclipped(r Rect) uint64 {
	stride := sq.W + 1
	x0, y0, x1, y1 := r.X, r.Y, r.X+r.W, r.Y+r.H
	return sq.Sum[y1*stride+x1] - sq.Sum[y0*stride+x1] - sq.Sum[y1*stride+x0] + sq.Sum[y0*stride+x0]
}

// RegionVariance returns the intensity variance over r, which must lie
// fully inside both tables: (n·Σp² − (Σp)²)/n², with the numerator
// exact in integer arithmetic (it is non-negative by Cauchy–Schwarz)
// before a single float division. This replaces the detector's
// per-window crop-and-Variance() pass with four lookups.
func RegionVariance(in *Integral, sq *IntegralSq, r Rect) float64 {
	n := uint64(r.Area())
	s := in.RegionSumUnclipped(r)
	q := sq.RegionSumUnclipped(r)
	return float64(n*q-s*s) / float64(n*n)
}

// BoxBlur returns the image smoothed with a (2r+1)×(2r+1) box filter using
// the integral image (O(1) per pixel).
func (g *Gray) BoxBlur(r int) *Gray {
	return g.BoxBlurInto(r, nil, nil)
}

// BoxBlurInto is BoxBlur reusing dst's pixels and in's table when
// possible (nil allocates; in is rebuilt from g either way). Interior
// pixels — where the window is fully inside the image — take the
// unclipped lookup fast path; only the r-wide border pays clipping.
func (g *Gray) BoxBlurInto(r int, dst *Gray, in *Integral) *Gray {
	if r <= 0 {
		out := Ensure(dst, g.W, g.H)
		copy(out.Pix, g.Pix)
		return out
	}
	in = BuildIntegral(g, in)
	out := Ensure(dst, g.W, g.H)
	side := 2*r + 1
	for y := 0; y < g.H; y++ {
		row := out.Pix[y*g.W : (y+1)*g.W]
		if y < r || y+r >= g.H {
			for x := range row {
				row[x] = uint8(math.Round(in.RegionMean(Rect{X: x - r, Y: y - r, W: side, H: side})))
			}
			continue
		}
		x := 0
		for ; x < r && x < g.W; x++ {
			row[x] = uint8(math.Round(in.RegionMean(Rect{X: x - r, Y: y - r, W: side, H: side})))
		}
		for ; x+r < g.W; x++ {
			row[x] = uint8(math.Round(in.RegionMeanUnclipped(Rect{X: x - r, Y: y - r, W: side, H: side})))
		}
		for ; x < g.W; x++ {
			row[x] = uint8(math.Round(in.RegionMean(Rect{X: x - r, Y: y - r, W: side, H: side})))
		}
	}
	return out
}

// SobelMag returns the Sobel gradient magnitude image (clamped to 255),
// used as an auxiliary cue by the face detector.
func (g *Gray) SobelMag() *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			gx := -int(g.AtClamped(x-1, y-1)) + int(g.AtClamped(x+1, y-1)) +
				-2*int(g.AtClamped(x-1, y)) + 2*int(g.AtClamped(x+1, y)) +
				-int(g.AtClamped(x-1, y+1)) + int(g.AtClamped(x+1, y+1))
			gy := -int(g.AtClamped(x-1, y-1)) - 2*int(g.AtClamped(x, y-1)) - int(g.AtClamped(x+1, y-1)) +
				int(g.AtClamped(x-1, y+1)) + 2*int(g.AtClamped(x, y+1)) + int(g.AtClamped(x+1, y+1))
			m := math.Hypot(float64(gx), float64(gy))
			if m > 255 {
				m = 255
			}
			out.Pix[y*g.W+x] = uint8(m)
		}
	}
	return out
}

// NCC returns the normalised cross-correlation between two equally-sized
// images in [-1, 1]; a flat image correlates as 0 against anything it
// doesn't match exactly — two flat images correlate 1 only when their
// means agree (all-50 vs all-200 is a mismatch, not a perfect match).
// Used for template-based face recognition.
func NCC(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		b = b.Resize(a.W, a.H)
	}
	ma, mb := a.Mean(), b.Mean()
	var num, da, db float64
	for i := range a.Pix {
		x := float64(a.Pix[i]) - ma
		y := float64(b.Pix[i]) - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 && db == 0 {
		if ma == mb {
			return 1
		}
		return 0
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
