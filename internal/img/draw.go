package img

import "math"

// Drawing primitives for the synthetic frame renderer. All primitives
// clip to image bounds and write opaque intensity values.

// FillRect fills the rectangle with intensity v.
func (g *Gray) FillRect(r Rect, v uint8) {
	c := r.Intersect(Rect{0, 0, g.W, g.H})
	for y := c.Y; y < c.Y+c.H; y++ {
		row := g.Pix[y*g.W : (y+1)*g.W]
		for x := c.X; x < c.X+c.W; x++ {
			row[x] = v
		}
	}
}

// FillCircle fills the disc of radius rad centred at (cx, cy).
func (g *Gray) FillCircle(cx, cy, rad float64, v uint8) {
	if rad <= 0 {
		return
	}
	x0 := int(math.Floor(cx - rad))
	x1 := int(math.Ceil(cx + rad))
	y0 := int(math.Floor(cy - rad))
	y1 := int(math.Ceil(cy + rad))
	r2 := rad * rad
	for y := max(0, y0); y <= min(g.H-1, y1); y++ {
		dy := float64(y) + 0.5 - cy
		for x := max(0, x0); x <= min(g.W-1, x1); x++ {
			dx := float64(x) + 0.5 - cx
			if dx*dx+dy*dy <= r2 {
				g.Pix[y*g.W+x] = v
			}
		}
	}
}

// FillEllipse fills the axis-aligned ellipse with semi-axes (rx, ry)
// centred at (cx, cy), rotated by angle theta (radians, CCW).
func (g *Gray) FillEllipse(cx, cy, rx, ry, theta float64, v uint8) {
	if rx <= 0 || ry <= 0 {
		return
	}
	ext := math.Max(rx, ry)
	x0, x1 := int(cx-ext)-1, int(cx+ext)+1
	y0, y1 := int(cy-ext)-1, int(cy+ext)+1
	c, s := math.Cos(theta), math.Sin(theta)
	for y := max(0, y0); y <= min(g.H-1, y1); y++ {
		py := float64(y) + 0.5 - cy
		for x := max(0, x0); x <= min(g.W-1, x1); x++ {
			px := float64(x) + 0.5 - cx
			// Rotate the point into the ellipse frame.
			ex := (px*c + py*s) / rx
			ey := (-px*s + py*c) / ry
			if ex*ex+ey*ey <= 1 {
				g.Pix[y*g.W+x] = v
			}
		}
	}
}

// DrawLine draws a 1-pixel line from (x0,y0) to (x1,y1) using Bresenham's
// algorithm.
func (g *Gray) DrawLine(x0, y0, x1, y1 int, v uint8) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		g.Set(x0, y0, v)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawArc draws a circular arc centred at (cx,cy) with radius rad between
// angles a0 and a1 (radians, CCW from +x). Used for mouths and eyebrows in
// the synthetic face generator.
func (g *Gray) DrawArc(cx, cy, rad, a0, a1 float64, v uint8) {
	if rad <= 0 {
		return
	}
	if a1 < a0 {
		a0, a1 = a1, a0
	}
	// Step fine enough that adjacent samples touch.
	step := 0.5 / rad
	for a := a0; a <= a1; a += step {
		x := int(math.Round(cx + rad*math.Cos(a)))
		y := int(math.Round(cy + rad*math.Sin(a)))
		g.Set(x, y, v)
	}
}

// AddNoise perturbs every pixel by a value drawn from src via nextGauss
// scaled by sigma, clamping to [0,255]. The caller supplies the Gaussian
// source so noise stays deterministic per stream.
func (g *Gray) AddNoise(sigma float64, nextGauss func() float64) {
	if sigma <= 0 {
		return
	}
	for i, p := range g.Pix {
		v := float64(p) + nextGauss()*sigma
		g.Pix[i] = uint8(math.Max(0, math.Min(255, math.Round(v))))
	}
}

// AdjustBrightness adds delta to every pixel, clamping to [0,255] — models
// global lighting drift.
func (g *Gray) AdjustBrightness(delta int) {
	for i, p := range g.Pix {
		v := int(p) + delta
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		g.Pix[i] = uint8(v)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
