package img

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomImage(w, h int, seed int64) *Gray {
	g := New(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

func TestHistMass(t *testing.T) {
	g := randomImage(64, 48, 1)
	h := g.Hist()
	if h.Total() != 64*48 {
		t.Errorf("hist mass = %d, want %d", h.Total(), 64*48)
	}
}

func TestHistRegion(t *testing.T) {
	g := New(10, 10)
	g.FillRect(Rect{0, 0, 5, 10}, 200)
	h := g.HistRegion(Rect{0, 0, 5, 10})
	if h[200] != 50 || h.Total() != 50 {
		t.Errorf("region hist wrong: h[200]=%d total=%d", h[200], h.Total())
	}
	// Clipped region.
	h2 := g.HistRegion(Rect{-5, -5, 10, 10})
	if h2.Total() != 25 {
		t.Errorf("clipped region total = %d, want 25", h2.Total())
	}
}

func TestChiSquareProperties(t *testing.T) {
	a := randomImage(32, 32, 2).Hist()
	b := randomImage(32, 32, 3).Hist()
	if d := a.ChiSquare(a); d > 1e-12 {
		t.Errorf("self distance = %v, want 0", d)
	}
	dab, dba := a.ChiSquare(b), b.ChiSquare(a)
	if math.Abs(dab-dba) > 1e-12 {
		t.Error("χ² should be symmetric")
	}
	if dab < 0 || dab > 1 {
		t.Errorf("χ² = %v outside [0,1]", dab)
	}
	// Disjoint supports: maximum distance 1.
	dark := New(4, 4)
	bright := New(4, 4)
	bright.Fill(255)
	if d := dark.Hist().ChiSquare(bright.Hist()); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint χ² = %v, want 1", d)
	}
	var empty Histogram
	if empty.ChiSquare(empty) != 0 {
		t.Error("two empty hists should be identical")
	}
	if empty.ChiSquare(a) != 1 {
		t.Error("empty vs non-empty should be max distance")
	}
}

func TestIntersectionSimilarity(t *testing.T) {
	a := randomImage(16, 16, 4).Hist()
	if s := a.Intersection(a); math.Abs(s-1) > 1e-12 {
		t.Errorf("self intersection = %v", s)
	}
	dark := New(4, 4).Hist()
	bright := New(4, 4)
	bright.Fill(255)
	if s := dark.Intersection(bright.Hist()); s != 0 {
		t.Errorf("disjoint intersection = %v", s)
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	b.Fill(10)
	if d := MeanAbsDiff(a, b); d != 10 {
		t.Errorf("MAD = %v, want 10", d)
	}
	if d := MeanAbsDiff(a, a); d != 0 {
		t.Errorf("self MAD = %v", d)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	g := randomImage(23, 17, 5)
	in := NewIntegral(g)
	rects := []Rect{
		{0, 0, 23, 17}, {0, 0, 1, 1}, {5, 3, 7, 9}, {22, 16, 1, 1}, {-3, -3, 10, 10},
	}
	for _, r := range rects {
		var want uint64
		c := r.Intersect(Rect{0, 0, g.W, g.H})
		for y := c.Y; y < c.Y+c.H; y++ {
			for x := c.X; x < c.X+c.W; x++ {
				want += uint64(g.At(x, y))
			}
		}
		if got := in.RegionSum(r); got != want {
			t.Errorf("RegionSum(%v) = %d, want %d", r, got, want)
		}
	}
	if in.RegionSum(Rect{50, 50, 3, 3}) != 0 {
		t.Error("fully OOB region should sum to 0")
	}
}

func TestIntegralProperty(t *testing.T) {
	g := randomImage(31, 29, 6)
	in := NewIntegral(g)
	f := func(x8, y8, w8, h8 uint8) bool {
		r := Rect{int(x8%31) - 2, int(y8%29) - 2, int(w8%12) + 1, int(h8%12) + 1}
		var want uint64
		c := r.Intersect(Rect{0, 0, g.W, g.H})
		for y := c.Y; y < c.Y+c.H; y++ {
			for x := c.X; x < c.X+c.W; x++ {
				want += uint64(g.At(x, y))
			}
		}
		return in.RegionSum(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoxBlurFlattens(t *testing.T) {
	g := New(20, 20)
	g.Set(10, 10, 255)
	b := g.BoxBlur(2)
	if b.At(10, 10) >= 255 {
		t.Error("blur should spread the impulse")
	}
	if b.At(11, 10) == 0 {
		t.Error("blur should reach neighbours")
	}
	// r=0 clones.
	c := g.BoxBlur(0)
	if c.At(10, 10) != 255 {
		t.Error("r=0 blur should be identity")
	}
}

func TestSobelMag(t *testing.T) {
	g := New(10, 10)
	g.FillRect(Rect{5, 0, 5, 10}, 255) // vertical edge at x=5
	s := g.SobelMag()
	if s.At(5, 5) == 0 && s.At(4, 5) == 0 {
		t.Error("edge should produce gradient")
	}
	if s.At(2, 5) != 0 {
		t.Error("flat region should have zero gradient")
	}
}

func TestNCC(t *testing.T) {
	a := randomImage(16, 16, 7)
	if c := NCC(a, a); math.Abs(c-1) > 1e-12 {
		t.Errorf("self NCC = %v", c)
	}
	inv := a.Clone()
	for i, p := range inv.Pix {
		inv.Pix[i] = 255 - p
	}
	if c := NCC(a, inv); c > -0.99 {
		t.Errorf("inverted NCC = %v, want ≈ -1", c)
	}
	flat := New(16, 16)
	flat.Fill(100)
	if c := NCC(flat, flat); c != 1 {
		t.Errorf("flat-flat NCC = %v, want 1", c)
	}
	if c := NCC(flat, a); c != 0 {
		t.Errorf("flat-random NCC = %v, want 0", c)
	}
}

// TestNCCFlatMismatch is the degenerate-flat regression: two flat
// images with different means used to "correlate 1"; they must only
// correlate 1 when the means match too.
func TestNCCFlatMismatch(t *testing.T) {
	dark := New(8, 8)
	dark.Fill(50)
	bright := New(8, 8)
	bright.Fill(200)
	if c := NCC(dark, bright); c != 0 {
		t.Errorf("flat-50 vs flat-200 NCC = %v, want 0", c)
	}
	same := New(8, 8)
	same.Fill(50)
	if c := NCC(dark, same); c != 1 {
		t.Errorf("flat-50 vs flat-50 NCC = %v, want 1", c)
	}
}

func TestIntegralSqMatchesBruteForce(t *testing.T) {
	g := randomImage(23, 17, 8)
	sq := NewIntegralSq(g)
	rects := []Rect{
		{0, 0, 23, 17}, {0, 0, 1, 1}, {5, 3, 7, 9}, {22, 16, 1, 1}, {-3, -3, 10, 10},
	}
	for _, r := range rects {
		var want uint64
		c := r.Intersect(Rect{0, 0, g.W, g.H})
		for y := c.Y; y < c.Y+c.H; y++ {
			for x := c.X; x < c.X+c.W; x++ {
				p := uint64(g.At(x, y))
				want += p * p
			}
		}
		if got := sq.RegionSum(r); got != want {
			t.Errorf("IntegralSq.RegionSum(%v) = %d, want %d", r, got, want)
		}
	}
}

// TestUnclippedFastPaths checks the unclipped lookups agree exactly
// with the clipped ones for in-bounds rectangles.
func TestUnclippedFastPaths(t *testing.T) {
	g := randomImage(31, 29, 9)
	in, sq := BuildIntegrals(g, nil, nil)
	rects := []Rect{
		{0, 0, 31, 29}, {0, 0, 1, 1}, {4, 7, 12, 9}, {30, 28, 1, 1}, {10, 0, 21, 5},
	}
	for _, r := range rects {
		if a, b := in.RegionSum(r), in.RegionSumUnclipped(r); a != b {
			t.Errorf("Integral clipped %d != unclipped %d for %v", a, b, r)
		}
		if a, b := sq.RegionSum(r), sq.RegionSumUnclipped(r); a != b {
			t.Errorf("IntegralSq clipped %d != unclipped %d for %v", a, b, r)
		}
		if a, b := in.RegionMean(r), in.RegionMeanUnclipped(r); a != b {
			t.Errorf("RegionMean clipped %v != unclipped %v for %v", a, b, r)
		}
	}
}

// TestRegionVariance checks the O(1) variance against Gray.Variance on
// crops (the detector's gate equivalence).
func TestRegionVariance(t *testing.T) {
	g := randomImage(40, 36, 10)
	in, sq := BuildIntegrals(g, nil, nil)
	for _, r := range []Rect{{0, 0, 40, 36}, {3, 5, 10, 12}, {20, 20, 20, 16}} {
		crop, err := g.Crop(r)
		if err != nil {
			t.Fatal(err)
		}
		want := crop.Variance()
		if got := RegionVariance(in, sq, r); math.Abs(got-want) > 1e-9 {
			t.Errorf("RegionVariance(%v) = %v, crop.Variance() = %v", r, got, want)
		}
	}
	flat := New(10, 10)
	flat.Fill(42)
	fin, fsq := BuildIntegrals(flat, nil, nil)
	if v := RegionVariance(fin, fsq, Rect{0, 0, 10, 10}); v != 0 {
		t.Errorf("flat variance = %v, want 0", v)
	}
}

// TestBuildIntegralsReuse checks that reused buffers produce identical
// tables, including across size changes (stale prefixes must clear).
func TestBuildIntegralsReuse(t *testing.T) {
	big := randomImage(40, 30, 11)
	in, sq := BuildIntegrals(big, nil, nil)
	small := randomImage(17, 13, 12)
	in, sq = BuildIntegrals(small, in, sq)
	fresh, freshSq := BuildIntegrals(small, nil, nil)
	for i := range fresh.Sum {
		if in.Sum[i] != fresh.Sum[i] {
			t.Fatalf("reused Integral differs at %d: %d vs %d", i, in.Sum[i], fresh.Sum[i])
		}
	}
	for i := range freshSq.Sum {
		if sq.Sum[i] != freshSq.Sum[i] {
			t.Fatalf("reused IntegralSq differs at %d: %d vs %d", i, sq.Sum[i], freshSq.Sum[i])
		}
	}
}

// TestBoxBlurInto checks the buffer-reusing blur matches BoxBlur and
// that the unclipped interior fast path didn't change border handling.
func TestBoxBlurInto(t *testing.T) {
	g := randomImage(33, 27, 13)
	want := g.BoxBlur(3)
	var dst *Gray
	var in *Integral
	dst = g.BoxBlurInto(3, dst, in)
	if dst.W != want.W || dst.H != want.H {
		t.Fatalf("BoxBlurInto size %dx%d, want %dx%d", dst.W, dst.H, want.W, want.H)
	}
	for i := range want.Pix {
		if dst.Pix[i] != want.Pix[i] {
			t.Fatalf("BoxBlurInto differs at %d: %d vs %d", i, dst.Pix[i], want.Pix[i])
		}
	}
	// Reuse both buffers for a second image; result must match fresh.
	g2 := randomImage(33, 27, 14)
	in = NewIntegral(g2) // pre-populated scratch gets rebuilt inside
	dst = g2.BoxBlurInto(2, dst, in)
	want2 := g2.BoxBlur(2)
	for i := range want2.Pix {
		if dst.Pix[i] != want2.Pix[i] {
			t.Fatalf("reused BoxBlurInto differs at %d", i)
		}
	}
	// Brute-force spot check against direct window means (clipped).
	r := 2
	for _, pt := range [][2]int{{0, 0}, {1, 1}, {16, 13}, {32, 26}} {
		x, y := pt[0], pt[1]
		var sum, cnt int
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				xx, yy := x+dx, y+dy
				if xx < 0 || yy < 0 || xx >= g2.W || yy >= g2.H {
					continue
				}
				sum += int(g2.At(xx, yy))
				cnt++
			}
		}
		wantPx := uint8(math.Round(float64(sum) / float64(cnt)))
		if got := dst.At(x, y); got != wantPx {
			t.Errorf("blur at (%d,%d) = %d, want %d", x, y, got, wantPx)
		}
	}
}
