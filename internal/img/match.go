package img

import (
	"math"
	"sort"
)

// TemplateMatcher scores the normalised cross-correlation of one fixed
// template against arbitrary windows of a frame, evaluated in place —
// no window crop, no per-window mean pass. Because the zero-mean
// template tpl′ = tpl − mean satisfies Σ tpl′ = 0, the NCC numerator
// collapses to Σ tpl′·f = Σ tpl·f − mean·Σf: an exact uint8 integer
// dot product plus one integral-table lookup, with the denominator's
// window term another O(1) lookup pair. Scores are semantically
// identical to img.NCC on a crop of the window (the retained oracle),
// agreeing to well within 1e-9 — the integer numerator carries two
// float roundings total where the oracle accumulates thousands.
//
// A matcher is immutable after construction and safe for concurrent
// use.
type TemplateMatcher struct {
	// W, H are the template (and therefore window) dimensions.
	W, H int
	// mean is the template's mean intensity, computed exactly as
	// Gray.Mean so the degenerate flat-vs-flat comparison matches the
	// oracle bit for bit.
	mean float64
	// norm2 is Σ tpl′², accumulated in the oracle's pixel order so the
	// denominator matches img.NCC's template term exactly.
	norm2 float64
	// tpl is the template's pixels, row-major — the integer half of
	// the fused dot product.
	tpl []uint8
	// order visits template rows by decreasing energy Σ tpl′², so the
	// remaining-template mass in the early-out bound collapses after
	// the discriminative rows instead of decaying uniformly.
	order []int32
	// tailSum[k] is Σ tpl′ over the rows order[k:] (exact) and
	// tailSqrt[k] is √(Σ tpl′² over order[k:]) — the Cauchy–Schwarz
	// factors behind the early-out bound. Both have length H+1.
	tailSum, tailSqrt []float64
	// The prescreen partitions the template into a grid of (at most)
	// 4×4 blocks. gx/gy are the column/row boundaries (gw+1 and gh+1
	// entries); blocks holds Σ tpl′, √(Σ tpl′²) and 1/area per cell in
	// row-major grid order. Window-side block sums are read off a
	// shared corner grid, so the prescreen costs 2·(gw+1)·(gh+1) table
	// loads instead of 8 per block.
	gx, gy []int32
	blocks []tplBlock
}

// tplBlock is one prescreen cell of the template partition.
type tplBlock struct {
	sum   float64 // Σ tpl′ over the block
	sqrtE float64 // √(Σ tpl′²) over the block
	n     uint64  // block area
	invN  float64 // 1 / block area
}

// NewTemplateMatcher precomputes the zero-mean form of tpl.
func NewTemplateMatcher(tpl *Gray) *TemplateMatcher {
	m := &TemplateMatcher{W: tpl.W, H: tpl.H, mean: tpl.Mean()}
	m.tpl = append([]uint8(nil), tpl.Pix...)
	for _, p := range tpl.Pix {
		z := float64(p) - m.mean
		m.norm2 += z * z
	}
	rowSum := make([]float64, tpl.H)
	rowSq := make([]float64, tpl.H)
	for j := 0; j < tpl.H; j++ {
		var rs, rq float64
		for _, p := range tpl.Pix[j*tpl.W : (j+1)*tpl.W] {
			z := float64(p) - m.mean
			rs += z
			rq += z * z
		}
		rowSum[j], rowSq[j] = rs, rq
	}
	m.order = make([]int32, tpl.H)
	for j := range m.order {
		m.order[j] = int32(j)
	}
	sort.SliceStable(m.order, func(a, b int) bool {
		return rowSq[m.order[a]] > rowSq[m.order[b]]
	})
	m.tailSum = make([]float64, tpl.H+1)
	m.tailSqrt = make([]float64, tpl.H+1)
	tailSq := make([]float64, tpl.H+1)
	for k := tpl.H - 1; k >= 0; k-- {
		j := m.order[k]
		m.tailSum[k] = m.tailSum[k+1] + rowSum[j]
		tailSq[k] = tailSq[k+1] + rowSq[j]
	}
	for k, q := range tailSq {
		m.tailSqrt[k] = math.Sqrt(q)
	}
	gw, gh := 4, 4
	if tpl.W < gw {
		gw = tpl.W
	}
	if tpl.H < gh {
		gh = tpl.H
	}
	for bx := 0; bx <= gw; bx++ {
		m.gx = append(m.gx, int32(bx*tpl.W/gw))
	}
	for by := 0; by <= gh; by++ {
		m.gy = append(m.gy, int32(by*tpl.H/gh))
	}
	for by := 0; by < gh; by++ {
		y0, y1 := int(m.gy[by]), int(m.gy[by+1])
		for bx := 0; bx < gw; bx++ {
			x0, x1 := int(m.gx[bx]), int(m.gx[bx+1])
			var bs, be float64
			for yy := y0; yy < y1; yy++ {
				for _, p := range tpl.Pix[yy*tpl.W+x0 : yy*tpl.W+x1] {
					z := float64(p) - m.mean
					bs += z
					be += z * z
				}
			}
			m.blocks = append(m.blocks, tplBlock{
				sum:   bs,
				sqrtE: math.Sqrt(be),
				n:     uint64((x1 - x0) * (y1 - y0)),
				invN:  1 / float64((x1-x0)*(y1-y0)),
			})
		}
	}
	return m
}

// Score returns NCC(window, template) for the W×H window of g anchored
// at (x, y). The window must lie fully inside g, and in/sq must be the
// summed-area tables of g.
func (m *TemplateMatcher) Score(g *Gray, in *Integral, sq *IntegralSq, x, y int) float64 {
	s, _ := m.scoreBounded(g, in, sq, x, y, -2, -1)
	return s
}

// ScoreBounded is Score with a Cauchy–Schwarz early-out: while the dot
// product accumulates row by row (template rows in decreasing-energy
// order), the unseen rows' contribution is bounded by
// mean·Σ tpl′_rem + √(Σ tpl′²_rem)·√(Σ win′²) — valid for any row
// subset since window deviation terms are non-negative. Once even that
// bound cannot reach the caller's threshold, scanning stops and
// (0, false) is returned, guaranteeing score < bound without finishing
// the window. (true, score) means score is the exact fused value. The
// bound carries a 1e-9 safety margin so float rounding in the bound
// arithmetic can never skip a window whose true score reaches the
// threshold; callers comparing the result against bound therefore make
// decisions identical to the exhaustive oracle. Pass a bound ≤ -1 to
// disable the early-out.
func (m *TemplateMatcher) ScoreBounded(g *Gray, in *Integral, sq *IntegralSq, x, y int, bound float64) (float64, bool) {
	return m.scoreBounded(g, in, sq, x, y, bound, -1)
}

// ScoreVarBounded is ScoreBounded with a variance gate folded in:
// windows whose intensity variance (the exact-integer RegionVariance
// value) is below minVar return (0, false) before any scoring work, so
// one corner-grid sample serves the gate, the prescreen and the
// kernel. Pass a negative minVar to disable the gate. Note the gate
// compares the exact-integer variance where a crop-based caller would
// compare float-accumulated Gray.Variance — the two agree to ~1e-12
// relative, so a window whose true variance sits within rounding
// distance of minVar could in principle gate differently; thresholds
// are tuning knobs, not contract boundaries, and the seeded
// equivalence suite pins the behaviour empirically.
func (m *TemplateMatcher) ScoreVarBounded(g *Gray, in *Integral, sq *IntegralSq, x, y int, bound, minVar float64) (float64, bool) {
	return m.scoreBounded(g, in, sq, x, y, bound, minVar)
}

func (m *TemplateMatcher) scoreBounded(g *Gray, in *Integral, sq *IntegralSq, x, y int, bound, minVar float64) (float64, bool) {
	w, h := m.W, m.H
	n := uint64(w * h)
	checkCut := bound > -1
	gw1, gh1 := len(m.gx), len(m.gy)
	var cin [25]uint32
	var csq [25]uint64
	var s, q uint64
	if checkCut {
		// Sample both tables once on the (gw+1)×(gh+1) block-corner
		// grid; the window sums, the variance gate and the prescreen
		// all read off it — exact integer arithmetic either way, so
		// values are identical to direct RegionSumUnclipped lookups.
		tstride := in.W + 1
		for r := 0; r < gh1; r++ {
			rowOff := (y + int(m.gy[r])) * tstride
			for c := 0; c < gw1; c++ {
				cin[r*gw1+c] = in.Sum[rowOff+x+int(m.gx[c])]
				csq[r*gw1+c] = sq.Sum[rowOff+x+int(m.gx[c])]
			}
		}
		tl, tr, bl, br := 0, gw1-1, (gh1-1)*gw1, gh1*gw1-1
		s = uint64(cin[br] - cin[tr] - cin[bl] + cin[tl])
		q = csq[br] - csq[tr] - csq[bl] + csq[tl]
	} else {
		win := Rect{X: x, Y: y, W: w, H: h}
		s = in.RegionSumUnclipped(win)
		q = sq.RegionSumUnclipped(win)
	}
	if minVar >= 0 && float64(n*q-s*s)/float64(n*n) < minVar {
		return 0, false
	}
	// Window deviation mass Σ(p−mean)² = (n·Σp² − (Σp)²)/n: numerator
	// exact in uint64 (non-negative by Cauchy–Schwarz), one rounding.
	da := float64(n*q-s*s) / float64(n)
	db := m.norm2
	if da == 0 && db == 0 {
		// Flat window, flat template: match only when the means agree
		// (the oracle's degenerate rule).
		if float64(s)/float64(n) == m.mean {
			return 1, true
		}
		return 0, true
	}
	if da == 0 || db == 0 {
		return 0, true
	}
	den := math.Sqrt(da * db)
	sqrtDa := math.Sqrt(da)
	mw := float64(s) / float64(n)
	// Early-out threshold in numerator units, with the safety margin.
	cut := (bound - 1e-9) * den
	if checkCut {
		// O(1) prescreen before any pixel is read: per template block,
		// Σ_B tpl′·f ≤ m_B·Σ_B tpl′ + √(Σ_B tpl′²)·√(Σ_B (f−m_B)²) by
		// Cauchy–Schwarz about the block's own mean, each block's
		// deviation mass exact-integer corner-grid arithmetic. Clutter
		// whose deviation concentrates in a few blocks (edges,
		// boundaries) — most of what survives the detector's contrast
		// gate — bounds far below a spread-out template and rejects
		// with zero pixel reads; genuinely face-like windows fall
		// through to the scan.
		var bb float64
		for r := 0; r < gh1-1; r++ {
			for c := 0; c < gw1-1; c++ {
				blk := &m.blocks[r*(gw1-1)+c]
				a, b2 := r*gw1+c, (r+1)*gw1+c
				sB := uint64(cin[b2+1] - cin[a+1] - cin[b2] + cin[a])
				qB := csq[b2+1] - csq[a+1] - csq[b2] + csq[a]
				devB := float64(blk.n*qB-sB*sB) * blk.invN
				bb += float64(sB)*blk.invN*blk.sum + blk.sqrtE*math.Sqrt(devB)
			}
		}
		if bb < cut {
			return 0, false
		}
	}
	stride := g.W
	base := y*stride + x
	tstride := in.W + 1
	var ip int64  // Σ tpl·f over the scanned rows — exact
	var sf uint64 // Σ f over the scanned rows — exact, from the table
	for k := 0; k < h; k++ {
		j := int(m.order[k])
		trow := m.tpl[j*w : (j+1)*w]
		// Equal-length re-slice so the compiler drops the per-element
		// bounds checks in the unrolled loop below.
		frow := g.Pix[base+j*stride : base+j*stride+w]
		frow = frow[:len(trow)]
		// Pure integer dot product — no float conversions, and four
		// accumulators keep the multiply pipeline busy.
		var p0, p1, p2, p3 int64
		i := 0
		for ; i <= len(trow)-8; i += 8 {
			t := trow[i : i+8 : i+8]
			f := frow[i : i+8 : i+8]
			p0 += int64(t[0])*int64(f[0]) + int64(t[4])*int64(f[4])
			p1 += int64(t[1])*int64(f[1]) + int64(t[5])*int64(f[5])
			p2 += int64(t[2])*int64(f[2]) + int64(t[6])*int64(f[6])
			p3 += int64(t[3])*int64(f[3]) + int64(t[7])*int64(f[7])
		}
		for ; i < len(trow); i++ {
			p0 += int64(trow[i]) * int64(frow[i])
		}
		ip += (p0 + p1) + (p2 + p3)
		if !checkCut || k == h-1 {
			continue
		}
		// Partial numerator over the scanned rows: Σ tpl′·f =
		// Σ tpl·f − mean·Σf, the row's Σf a two-load table lookup
		// (adjacent table rows, four corners).
		ro := (y+j)*tstride + x
		sf += uint64(in.Sum[ro+tstride+w] - in.Sum[ro+w] - in.Sum[ro+tstride] + in.Sum[ro])
		num := float64(ip) - m.mean*float64(sf)
		// Cauchy–Schwarz over the unseen rows, whichever they are:
		// Σ_rem (f−mw)² ≤ da holds for any row subset, so the
		// energy-ordered walk keeps a sound bound while tailSqrt
		// collapses as fast as the template's energy allows.
		if num+mw*m.tailSum[k+1]+m.tailSqrt[k+1]*sqrtDa < cut {
			return 0, false
		}
	}
	// Over the whole window Σf is the window sum itself, so the exact
	// numerator needs no per-row bookkeeping.
	num := float64(ip) - m.mean*float64(s)
	return num / den, true
}
