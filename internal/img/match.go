package img

import (
	"math"
	"sort"
)

// TemplateMatcher scores the normalised cross-correlation of one fixed
// template against arbitrary windows of a frame, evaluated in place —
// no window crop, no per-window mean pass. Because the zero-mean
// template tpl′ = tpl − mean satisfies Σ tpl′ = 0, the NCC numerator
// collapses to Σ tpl′·f = Σ tpl·f − mean·Σf: an exact uint8 integer
// dot product plus one integral-table lookup, with the denominator's
// window term another O(1) lookup pair. Scores are semantically
// identical to img.NCC on a crop of the window (the retained oracle),
// agreeing to well within 1e-9 — the integer numerator carries two
// float roundings total where the oracle accumulates thousands.
//
// A matcher is immutable after construction and safe for concurrent
// use.
type TemplateMatcher struct {
	// W, H are the template (and therefore window) dimensions.
	W, H int
	// mean is the template's mean intensity, computed exactly as
	// Gray.Mean so the degenerate flat-vs-flat comparison matches the
	// oracle bit for bit.
	mean float64
	// norm2 is Σ tpl′², accumulated in the oracle's pixel order so the
	// denominator matches img.NCC's template term exactly.
	norm2 float64
	// tpl is the template's pixels, row-major — the integer half of
	// the fused dot product.
	tpl []uint8
	// order visits template rows by decreasing energy Σ tpl′², so the
	// remaining-template mass in the early-out bound collapses after
	// the discriminative rows instead of decaying uniformly.
	order []int32
	// tailSum[k] is Σ tpl′ over the rows order[k:] (exact) and
	// tailSq[k] is Σ tpl′² over order[k:] — the Cauchy–Schwarz factors
	// behind the early-out bound. Both have length H+1.
	tailSum, tailSq []float64
	// The prescreen partitions the template into a grid of (at most)
	// 4×4 blocks. gx/gy are the column/row boundaries (gw+1 and gh+1
	// entries); blocks holds Σ tpl′, √(Σ tpl′²) and 1/area per cell in
	// row-major grid order. Window-side block sums are read off a
	// shared corner grid, so the prescreen costs 2·(gw+1)·(gh+1) table
	// loads instead of 8 per block.
	gx, gy []int32
	blocks []tplBlock
	// tiers is the pyramid reject ladder, coarsest block size first:
	// each tier bounds the NCC numerator from one block-sum level of
	// the frame pyramid, so cheap wide blocks reject the bulk of the
	// windows before the finer (4× longer) tier runs, and only its
	// survivors reach the exact kernel. See ScoreCascade.
	tiers []pyrTier
}

// pyrTier is one level of the pyramid reject ladder: the template
// projections onto the k×k block grid, one per window-anchor parity
// class (k² of them, indexed (y%k)*k + (x%k)).
type pyrTier struct {
	k   int
	par []pyrParity
}

// pyrParity is the template side of the pyramid reject tier for one
// anchor parity: template pixels grouped by the frame-aligned
// pyrK×pyrK block they fall into when the window anchor has this
// parity. t holds each group's Σ tpl′ (nby×nbx, row-major, matching
// the block grid the window covers) and p the total residual template
// energy — Σ over groups of E_G − T_G²/k² for full groups (centred:
// a full group covers its whole block, so the group's frame sum is the
// block sum exactly) and the uncentred E_G for partial edge groups.
type pyrParity struct {
	nbx, nby int
	t        []float64
	p        float64
}

// tplBlock is one prescreen cell of the template partition.
type tplBlock struct {
	sum   float64 // Σ tpl′ over the block
	sqrtE float64 // √(Σ tpl′²) over the block
	n     uint64  // block area
	invN  float64 // 1 / block area
}

// NewTemplateMatcher precomputes the zero-mean form of tpl.
func NewTemplateMatcher(tpl *Gray) *TemplateMatcher {
	m := &TemplateMatcher{W: tpl.W, H: tpl.H, mean: tpl.Mean()}
	m.tpl = append([]uint8(nil), tpl.Pix...)
	for _, p := range tpl.Pix {
		z := float64(p) - m.mean
		m.norm2 += z * z
	}
	rowSum := make([]float64, tpl.H)
	rowSq := make([]float64, tpl.H)
	for j := 0; j < tpl.H; j++ {
		var rs, rq float64
		for _, p := range tpl.Pix[j*tpl.W : (j+1)*tpl.W] {
			z := float64(p) - m.mean
			rs += z
			rq += z * z
		}
		rowSum[j], rowSq[j] = rs, rq
	}
	m.order = make([]int32, tpl.H)
	for j := range m.order {
		m.order[j] = int32(j)
	}
	sort.SliceStable(m.order, func(a, b int) bool {
		return rowSq[m.order[a]] > rowSq[m.order[b]]
	})
	m.tailSum = make([]float64, tpl.H+1)
	m.tailSq = make([]float64, tpl.H+1)
	for k := tpl.H - 1; k >= 0; k-- {
		j := m.order[k]
		m.tailSum[k] = m.tailSum[k+1] + rowSum[j]
		m.tailSq[k] = m.tailSq[k+1] + rowSq[j]
	}
	gw, gh := 4, 4
	if tpl.W < gw {
		gw = tpl.W
	}
	if tpl.H < gh {
		gh = tpl.H
	}
	for bx := 0; bx <= gw; bx++ {
		m.gx = append(m.gx, int32(bx*tpl.W/gw))
	}
	for by := 0; by <= gh; by++ {
		m.gy = append(m.gy, int32(by*tpl.H/gh))
	}
	for by := 0; by < gh; by++ {
		y0, y1 := int(m.gy[by]), int(m.gy[by+1])
		for bx := 0; bx < gw; bx++ {
			x0, x1 := int(m.gx[bx]), int(m.gx[bx+1])
			var bs, be float64
			for yy := y0; yy < y1; yy++ {
				for _, p := range tpl.Pix[yy*tpl.W+x0 : yy*tpl.W+x1] {
					z := float64(p) - m.mean
					bs += z
					be += z * z
				}
			}
			m.blocks = append(m.blocks, tplBlock{
				sum:   bs,
				sqrtE: math.Sqrt(be),
				n:     uint64((x1 - x0) * (y1 - y0)),
				invN:  1 / float64((x1-x0)*(y1-y0)),
			})
		}
	}
	// Pyramid reject ladder, coarsest first. In practice a single tier
	// per template wins: small templates bound against the 2×2 level
	// (enough blocks to discriminate), large ones against 4×4 (quarter
	// the dot-product length). Coarser first tiers (8×8, or 4×4 for
	// small templates) were measured and lost — their residual energy P
	// is too large to reject much, so both tiers end up running on most
	// windows.
	ks := []int{2}
	if tpl.H >= 48 {
		ks = []int{4}
	}
	for _, k := range ks {
		m.tiers = append(m.tiers, buildPyrTier(tpl, m.mean, k))
	}
	return m
}

// buildPyrTier precomputes the template side of one pyramid-ladder
// level: per anchor parity, the per-group Σ tpl′ projections and the
// residual template energy P (see ScoreCascade).
func buildPyrTier(tpl *Gray, mean float64, k int) pyrTier {
	tier := pyrTier{k: k, par: make([]pyrParity, k*k)}
	for py := 0; py < k; py++ {
		for px := 0; px < k; px++ {
			nbx := (px+tpl.W-1)/k + 1
			nby := (py+tpl.H-1)/k + 1
			t := make([]float64, nbx*nby)
			e := make([]float64, nbx*nby)
			cnt := make([]int32, nbx*nby)
			for ty := 0; ty < tpl.H; ty++ {
				gr := (py + ty) / k
				for tx := 0; tx < tpl.W; tx++ {
					z := float64(tpl.Pix[ty*tpl.W+tx]) - mean
					gi := gr*nbx + (px+tx)/k
					t[gi] += z
					e[gi] += z * z
					cnt[gi]++
				}
			}
			var p float64
			for gi := range t {
				if cnt[gi] == int32(k*k) {
					p += e[gi] - t[gi]*t[gi]/float64(k*k)
				} else {
					p += e[gi]
				}
			}
			if p < 0 {
				p = 0
			}
			tier.par[py*k+px] = pyrParity{nbx: nbx, nby: nby, t: t, p: p}
		}
	}
	return tier
}

// Score returns NCC(window, template) for the W×H window of g anchored
// at (x, y). The window must lie fully inside g, and in/sq must be the
// summed-area tables of g.
func (m *TemplateMatcher) Score(g *Gray, in *Integral, sq *IntegralSq, x, y int) float64 {
	s, _ := m.scoreBounded(g, in, sq, x, y, -2, -1)
	return s
}

// ScoreBounded is Score with a Cauchy–Schwarz early-out: while the dot
// product accumulates row by row (template rows in decreasing-energy
// order), the unseen rows' contribution is bounded by
// mean·Σ tpl′_rem + √(Σ tpl′²_rem)·√(Σ win′²) — valid for any row
// subset since window deviation terms are non-negative. Once even that
// bound cannot reach the caller's threshold, scanning stops and
// (0, false) is returned, guaranteeing score < bound without finishing
// the window. (true, score) means score is the exact fused value. The
// bound carries a 1e-6 safety margin so float rounding in the bound
// arithmetic can never skip a window whose true score reaches the
// threshold; callers comparing the result against bound therefore make
// decisions identical to the exhaustive oracle. Pass a bound ≤ -1 to
// disable the early-out.
func (m *TemplateMatcher) ScoreBounded(g *Gray, in *Integral, sq *IntegralSq, x, y int, bound float64) (float64, bool) {
	return m.scoreBounded(g, in, sq, x, y, bound, -1)
}

// ScoreVarBounded is ScoreBounded with a variance gate folded in:
// windows whose intensity variance (the exact-integer RegionVariance
// value) is below minVar return (0, false) before any scoring work, so
// one corner-grid sample serves the gate, the prescreen and the
// kernel. Pass a negative minVar to disable the gate. Note the gate
// compares the exact-integer variance where a crop-based caller would
// compare float-accumulated Gray.Variance — the two agree to ~1e-12
// relative, so a window whose true variance sits within rounding
// distance of minVar could in principle gate differently; thresholds
// are tuning knobs, not contract boundaries, and the seeded
// equivalence suite pins the behaviour empirically.
func (m *TemplateMatcher) ScoreVarBounded(g *Gray, in *Integral, sq *IntegralSq, x, y int, bound, minVar float64) (float64, bool) {
	return m.scoreBounded(g, in, sq, x, y, bound, minVar)
}

func (m *TemplateMatcher) scoreBounded(g *Gray, in *Integral, sq *IntegralSq, x, y int, bound, minVar float64) (float64, bool) {
	w, h := m.W, m.H
	n := uint64(w * h)
	checkCut := bound > -1
	gw1, gh1 := len(m.gx), len(m.gy)
	var cin [25]uint32
	var csq [25]uint64
	var s, q uint64
	if checkCut {
		// Sample both tables once on the (gw+1)×(gh+1) block-corner
		// grid; the window sums, the variance gate and the prescreen
		// all read off it — exact integer arithmetic either way, so
		// values are identical to direct RegionSumUnclipped lookups.
		tstride := in.W + 1
		for r := 0; r < gh1; r++ {
			rowOff := (y + int(m.gy[r])) * tstride
			for c := 0; c < gw1; c++ {
				cin[r*gw1+c] = in.Sum[rowOff+x+int(m.gx[c])]
				csq[r*gw1+c] = sq.Sum[rowOff+x+int(m.gx[c])]
			}
		}
		tl, tr, bl, br := 0, gw1-1, (gh1-1)*gw1, gh1*gw1-1
		s = uint64(cin[br] - cin[tr] - cin[bl] + cin[tl])
		q = csq[br] - csq[tr] - csq[bl] + csq[tl]
	} else {
		win := Rect{X: x, Y: y, W: w, H: h}
		s = in.RegionSumUnclipped(win)
		q = sq.RegionSumUnclipped(win)
	}
	if minVar >= 0 && float64(n*q-s*s)/float64(n*n) < minVar {
		return 0, false
	}
	// Window deviation mass Σ(p−mean)² = (n·Σp² − (Σp)²)/n: numerator
	// exact in uint64 (non-negative by Cauchy–Schwarz), one rounding.
	da := float64(n*q-s*s) / float64(n)
	db := m.norm2
	if da == 0 && db == 0 {
		// Flat window, flat template: match only when the means agree
		// (the oracle's degenerate rule).
		if float64(s)/float64(n) == m.mean {
			return 1, true
		}
		return 0, true
	}
	if da == 0 || db == 0 {
		return 0, true
	}
	den := math.Sqrt(da * db)
	mw := float64(s) / float64(n)
	// Early-out threshold in numerator units, with the safety margin.
	// 1e-6 (score units) dwarfs the float rounding the bound arithmetic
	// below can accumulate — including the per-row deviation tracking —
	// so a skip always proves score < bound; no real score sits within
	// 1e-6 of a threshold in the seeded suites (the kernel's exact
	// integer paths keep accepted scores within 1e-9 of the oracle).
	cut := (bound - 1e-6) * den
	if checkCut {
		// O(1) prescreen before any pixel is read: per template block,
		// Σ_B tpl′·f ≤ m_B·Σ_B tpl′ + √(Σ_B tpl′²)·√(Σ_B (f−m_B)²) by
		// Cauchy–Schwarz about the block's own mean, each block's
		// deviation mass exact-integer corner-grid arithmetic. Clutter
		// whose deviation concentrates in a few blocks (edges,
		// boundaries) — most of what survives the detector's contrast
		// gate — bounds far below a spread-out template and rejects
		// with zero pixel reads; genuinely face-like windows fall
		// through to the scan.
		var bb float64
		for r := 0; r < gh1-1; r++ {
			for c := 0; c < gw1-1; c++ {
				blk := &m.blocks[r*(gw1-1)+c]
				a, b2 := r*gw1+c, (r+1)*gw1+c
				sB := uint64(cin[b2+1] - cin[a+1] - cin[b2] + cin[a])
				qB := csq[b2+1] - csq[a+1] - csq[b2] + csq[a]
				devB := float64(blk.n*qB-sB*sB) * blk.invN
				bb += float64(sB)*blk.invN*blk.sum + blk.sqrtE*math.Sqrt(devB)
			}
		}
		if bb < cut {
			return 0, false
		}
	}
	stride := g.W
	base := y*stride + x
	tstride := in.W + 1
	var ip int64  // Σ tpl·f over the scanned rows — exact
	var sf uint64 // Σ f over the scanned rows — exact, from the table
	wf := float64(w)
	// daRem tracks the deviation mass Σ(f−mw)² of the rows not yet
	// scanned: each scanned row's exact deviation (from the two tables)
	// is peeled off the window total, so the Cauchy–Schwarz tail bound
	// below tightens as fast as the window's own structure is consumed
	// instead of assuming every unseen row could still carry the whole
	// window's deviation. Near-miss windows — the refinement climb's
	// staple — concentrate their deviation in the same high-energy rows
	// the scan order visits first, so the bound collapses early.
	daRem := da
	for k := 0; k < h; k++ {
		j := int(m.order[k])
		// Exact integer dot product of one template row against the
		// frame row under it — SIMD on amd64, bit-identical everywhere.
		ip += dotRow(&m.tpl[j*w], &g.Pix[base+j*stride], w)
		if !checkCut || k == h-1 {
			continue
		}
		// Partial numerator over the scanned rows: Σ tpl′·f =
		// Σ tpl·f − mean·Σf, the row's Σf and Σf² two-load table
		// lookups each (adjacent table rows, four corners).
		ro := (y+j)*tstride + x
		rowS := uint64(in.Sum[ro+tstride+w] - in.Sum[ro+w] - in.Sum[ro+tstride] + in.Sum[ro])
		rowQ := sq.Sum[ro+tstride+w] - sq.Sum[ro+w] - sq.Sum[ro+tstride] + sq.Sum[ro]
		sf += rowS
		// The row's exact deviation about the window mean:
		// Σ_x (f−mw)² = Σf² − mw·(2Σf − w·mw).
		daRem -= float64(rowQ) - mw*(2*float64(rowS)-wf*mw)
		num := float64(ip) - m.mean*float64(sf)
		// Cauchy–Schwarz over the unseen rows, whichever they are:
		// Σ_rem (f−mw)² = daRem exactly, so reject when
		// num + mw·ΣtailTpl′ + √(tailSq·daRem) < cut — compared in
		// squared form to keep √ out of the row loop.
		rem := cut - num - mw*m.tailSum[k+1]
		if rem > 0 {
			d := daRem
			if d < 0 {
				d = 0
			}
			if m.tailSq[k+1]*d < rem*rem {
				return 0, false
			}
		}
	}
	// Over the whole window Σf is the window sum itself, so the exact
	// numerator needs no per-row bookkeeping.
	num := float64(ip) - m.mean*float64(s)
	return num / den, true
}

// ScoreCascade is ScoreVarBounded with the pyramid reject tier in
// front of the corner-grid prescreen and the exact kernel: before any
// full-resolution table probing, the NCC numerator is bounded from the
// frame's block-sum pyramid (DESIGN.md §12). Per template group G
// inside block B (nominal block mean c = S_B/k²),
//
//	Σ_G tpl′·f ≤ T_G·c + √ê_G·√(Σ_B (f−c)²)
//
// by Cauchy–Schwarz (centred through the group mean for full groups,
// where Σ_G f = S_B exactly), so summing groups and applying
// Cauchy–Schwarz once more over the per-block factors,
//
//	num ≤ dot(T, S)/k² + √(P · devsum)
//
// with dot(T, S) a short contiguous dot product over the block grid,
// P the parity's residual template energy, and devsum =
// ΣQ − ΣS²/k² ≥ Σ_B Σ_G (f−c)² the covered blocks' deviation mass
// (ΣQ one squared-table probe, ΣS² accumulated inside the dot loop —
// for frame-edge partial blocks the k² denominator overestimates the
// true deviation, which only loosens the bound). When even this bound
// cannot reach the threshold, the window is rejected with zero
// full-resolution reads; skips are sound under a 1e-6 margin (the
// tier's float accumulation is coarser than the kernel's 1e-9-margin
// integer paths, and thresholds sit far from any score that close to
// the cut). Survivors fall through to scoreBounded unchanged, so
// accepted scores are bit-identical to Score.
//
// pyr must be the pyramid of g. A bound ≤ -1 disables every early-out
// and delegates straight to the exact kernel.
func (m *TemplateMatcher) ScoreCascade(g *Gray, in *Integral, sq *IntegralSq, pyr *Pyramid, x, y int, bound, minVar float64) (float64, bool) {
	if bound <= -1 {
		return m.scoreBounded(g, in, sq, x, y, bound, minVar)
	}
	w, h := m.W, m.H
	n := uint64(w * h)
	win := Rect{X: x, Y: y, W: w, H: h}
	s := in.RegionSumUnclipped(win)
	q := sq.RegionSumUnclipped(win)
	if minVar >= 0 && float64(n*q-s*s)/float64(n*n) < minVar {
		return 0, false
	}
	da := float64(n*q-s*s) / float64(n)
	db := m.norm2
	if da == 0 && db == 0 {
		if float64(s)/float64(n) == m.mean {
			return 1, true
		}
		return 0, true
	}
	if da == 0 || db == 0 {
		return 0, true
	}
	den := math.Sqrt(da * db)
	cut := (bound - 1e-6) * den
	for ti := range m.tiers {
		if m.pyrBound(&m.tiers[ti], sq, pyr, x, y) < cut {
			return 0, false
		}
	}
	// Survivors skip scoreBounded's corner-grid resampling and block
	// prescreen: the window sums, variance gate and threshold are
	// already in hand (exact integers and the same float expressions,
	// so every value the row loop sees is identical), and behind the
	// pyramid tier the block prescreen rejects almost nothing — it
	// reads fifty scattered table words and takes sixteen square roots
	// to re-derive a coarser version of the bound that just passed.
	return m.scoreRows(g, in, sq, x, y, s, da, den, cut)
}

// scoreRows is the exact row-scan kernel entered from ScoreCascade:
// the fused integer dot product with the energy-ordered early-out,
// minus scoreBounded's front matter (window sums, variance gate, block
// prescreen), which the cascade has already run. s must be the
// window's pixel sum, da its deviation mass, den the NCC denominator
// and cut the early-out threshold in numerator units. Every value the
// loop reads is computed from the same exact-integer inputs by the
// same expressions as scoreBounded, so accepted scores are
// bit-identical to Score.
func (m *TemplateMatcher) scoreRows(g *Gray, in *Integral, sq *IntegralSq, x, y int, s uint64, da, den, cut float64) (float64, bool) {
	w, h := m.W, m.H
	n := uint64(w * h)
	mw := float64(s) / float64(n)
	stride := g.W
	base := y*stride + x
	tstride := in.W + 1
	var ip int64  // Σ tpl·f over the scanned rows — exact
	var sf uint64 // Σ f over the scanned rows — exact, from the table
	wf := float64(w)
	daRem := da
	for k := 0; k < h; k++ {
		j := int(m.order[k])
		ip += dotRow(&m.tpl[j*w], &g.Pix[base+j*stride], w)
		if k == h-1 {
			continue
		}
		ro := (y+j)*tstride + x
		rowS := uint64(in.Sum[ro+tstride+w] - in.Sum[ro+w] - in.Sum[ro+tstride] + in.Sum[ro])
		rowQ := sq.Sum[ro+tstride+w] - sq.Sum[ro+w] - sq.Sum[ro+tstride] + sq.Sum[ro]
		sf += rowS
		daRem -= float64(rowQ) - mw*(2*float64(rowS)-wf*mw)
		num := float64(ip) - m.mean*float64(sf)
		rem := cut - num - mw*m.tailSum[k+1]
		if rem > 0 {
			d := daRem
			if d < 0 {
				d = 0
			}
			if m.tailSq[k+1]*d < rem*rem {
				return 0, false
			}
		}
	}
	num := float64(ip) - m.mean*float64(s)
	return num / den, true
}

// pyrBound returns the pyramid tier's upper bound on the NCC numerator
// for the window anchored at (x, y) — see ScoreCascade for the
// derivation.
func (m *TemplateMatcher) pyrBound(tier *pyrTier, sq *IntegralSq, pyr *Pyramid, x, y int) float64 {
	k := tier.k
	par := &tier.par[(y%k)*k+(x%k)]
	bx0, by0 := x/k, y/k
	sArr, sw := pyr.Level(k)
	var dot float64
	var ssq uint64
	for r := 0; r < par.nby; r++ {
		off := (by0+r)*sw + bx0
		srow := sArr[off : off+par.nbx]
		trow := par.t[r*par.nbx : (r+1)*par.nbx]
		trow = trow[:len(srow)]
		var d0, d1 float64
		var q0 uint64
		i := 0
		for ; i <= len(srow)-4; i += 4 {
			s0, s1 := uint64(srow[i]), uint64(srow[i+1])
			s2, s3 := uint64(srow[i+2]), uint64(srow[i+3])
			d0 += trow[i]*float64(s0) + trow[i+2]*float64(s2)
			d1 += trow[i+1]*float64(s1) + trow[i+3]*float64(s3)
			q0 += s0*s0 + s1*s1 + s2*s2 + s3*s3
		}
		for ; i < len(srow); i++ {
			sv := uint64(srow[i])
			d0 += trow[i] * float64(sv)
			q0 += sv * sv
		}
		dot += d0 + d1
		ssq += q0
	}
	// ΣQ over the exact pixel footprint of the covered blocks, clipped
	// to the frame for edge blocks.
	px1, py1 := (bx0+par.nbx)*k, (by0+par.nby)*k
	if px1 > pyr.W {
		px1 = pyr.W
	}
	if py1 > pyr.H {
		py1 = pyr.H
	}
	qsum := sq.RegionSumUnclipped(Rect{X: bx0 * k, Y: by0 * k, W: px1 - bx0*k, H: py1 - by0*k})
	kk := float64(k * k)
	devsum := float64(qsum) - float64(ssq)/kk
	if devsum < 0 {
		devsum = 0
	}
	return dot/kk + math.Sqrt(par.p*devsum)
}
