//go:build !amd64

package img

// dotRow returns Σ t[i]·f[i] for i in [0, n): the portable scalar
// implementation for architectures without a hand-tuned kernel. Four
// accumulators keep the multiply pipeline busy; arithmetic is exact
// integer either way, so every implementation returns the same value.
func dotRow(t, f *byte, n int) int64 {
	return dotRowGeneric(t, f, n)
}
