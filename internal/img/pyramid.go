package img

// Pyramid holds the block-sum pyramid of one frame: per-block pixel
// sums at 2×2, 4×4 and 8×8 granularity, row-major. It is the frame
// half of
// the template matcher's coarse reject tier (DESIGN.md §12): where the
// full-resolution summed-area tables span megabytes and make every
// corner probe a cache miss, the block arrays are compact (a 640×480
// frame's S2 is 150KB, S4 under 40KB) and are read as contiguous rows,
// so a downsampled correlation bound costs a fraction of one exact
// kernel evaluation.
//
// Edge blocks clipped by the frame boundary hold the sum of the pixels
// actually present; consumers account for partial blocks on the
// template side (see TemplateMatcher's parity tiers).
type Pyramid struct {
	// W, H are the source frame dimensions.
	W, H int
	// W2, H2 are the 2×2 block-grid dimensions: ⌈W/2⌉ × ⌈H/2⌉.
	W2, H2 int
	// S2 holds each 2×2 block's pixel sum (≤ 1020), row-major W2×H2.
	S2 []uint16
	// W4, H4 are the 4×4 block-grid dimensions: ⌈W/4⌉ × ⌈H/4⌉.
	W4, H4 int
	// S4 holds each 4×4 block's pixel sum (≤ 4080), row-major W4×H4.
	S4 []uint16
	// W8, H8 are the 8×8 block-grid dimensions: ⌈W/8⌉ × ⌈H/8⌉.
	W8, H8 int
	// S8 holds each 8×8 block's pixel sum (≤ 16320), row-major W8×H8.
	S8 []uint16
}

// Level returns the block-sum array and grid width for block size k
// (2, 4 or 8).
func (p *Pyramid) Level(k int) ([]uint16, int) {
	switch k {
	case 2:
		return p.S2, p.W2
	case 4:
		return p.S4, p.W4
	default:
		return p.S8, p.W8
	}
}

// BuildPyramid fills p (allocating when nil) with the block sums of g,
// reusing p's buffers when their capacity allows. in must be the
// summed-area table of g: block sums fall out of row differences of
// the table — two contiguous streams per block row — which is cheaper
// than re-reading the pixels.
func BuildPyramid(g *Gray, in *Integral, p *Pyramid) *Pyramid {
	if p == nil {
		p = &Pyramid{}
	}
	w, h := g.W, g.H
	p.W, p.H = w, h
	p.W2, p.H2 = (w+1)/2, (h+1)/2
	p.S2 = ensureU16(p.S2, p.W2*p.H2)
	stride := w + 1
	for by := 0; by < p.H2; by++ {
		y1 := 2*by + 2
		if y1 > h {
			y1 = h
		}
		// D[x] = in[y1][x] − in[y0][x] prefix-sums the two pixel rows of
		// this block row along x; each block sum is a D difference.
		r0 := in.Sum[2*by*stride : 2*by*stride+stride]
		r1 := in.Sum[y1*stride : y1*stride+stride]
		out := p.S2[by*p.W2 : (by+1)*p.W2]
		var prev uint32
		full := w / 2 // trailing odd column handled after the loop
		for bx := 0; bx < full; bx++ {
			i := 2*bx + 2
			d := r1[i] - r0[i]
			out[bx] = uint16(d - prev)
			prev = d
		}
		if full < len(out) {
			out[full] = uint16(r1[w] - r0[w] - prev)
		}
	}
	// Each coarser level folds 2×2 of the level below — identical
	// sums, no second pixel pass.
	p.W4, p.H4 = (w+3)/4, (h+3)/4
	p.S4 = ensureU16(p.S4, p.W4*p.H4)
	foldLevel(p.S4, p.W4, p.H4, p.S2, p.W2, p.H2)
	p.W8, p.H8 = (w+7)/8, (h+7)/8
	p.S8 = ensureU16(p.S8, p.W8*p.H8)
	foldLevel(p.S8, p.W8, p.H8, p.S4, p.W4, p.H4)
	return p
}

// foldLevel fills dst (dw×dh) with 2×2 sums of src (sw×sh), clipping
// at the right/bottom edges.
func foldLevel(dst []uint16, dw, dh int, src []uint16, sw, sh int) {
	for by := 0; by < dh; by++ {
		r0 := src[2*by*sw : (2*by+1)*sw]
		var r1 []uint16
		if 2*by+1 < sh {
			r1 = src[(2*by+1)*sw : (2*by+2)*sw]
		}
		out := dst[by*dw : (by+1)*dw]
		full := sw / 2 // trailing odd column handled after the loop
		if r1 != nil {
			for bx := 0; bx < full; bx++ {
				out[bx] = r0[2*bx] + r0[2*bx+1] + r1[2*bx] + r1[2*bx+1]
			}
			if full < len(out) {
				out[full] = r0[sw-1] + r1[sw-1]
			}
		} else {
			for bx := 0; bx < full; bx++ {
				out[bx] = r0[2*bx] + r0[2*bx+1]
			}
			if full < len(out) {
				out[full] = r0[sw-1]
			}
		}
	}
}

// ensureU16 is ensureU64 for uint16 buffers.
func ensureU16(s []uint16, n int) []uint16 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint16, n)
}
