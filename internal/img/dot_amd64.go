//go:build amd64

package img

// dotRow returns Σ t[i]·f[i] for i in [0, n) — the integer inner
// product of one template row against one frame row. The amd64
// implementation (dot_amd64.s) widens both byte streams to 16-bit
// lanes and uses PMADDWD, baseline SSE2 on every amd64, to form eight
// products per instruction; all arithmetic is exact integer (products
// ≤ 255², per-lane sums ≤ n·2·255² which fits int32 for any row this
// package scores), so the result is bit-identical to the scalar loop
// in dotRowGeneric.
//
//go:noescape
func dotRow(t, f *byte, n int) int64
