//go:build amd64

#include "textflag.h"

// func dotRow(t, f *byte, n int) int64
//
// Σ t[i]·f[i] over two byte rows, exact integer. SSE2 only (the amd64
// baseline): 16 bytes per iteration are widened to 16-bit lanes with
// PUNPCK{L,H}BW against zero and multiplied pairwise into 32-bit lanes
// with PMADDWL. Products are ≤ 255² and each PMADDWD lane holds the
// sum of two of them, so a 32-bit lane accumulates without overflow
// for any n below ~16k — far above the widest template row. The
// horizontal fold and the ≤3-byte scalar tail keep the result
// bit-identical to dotRowGeneric.
TEXT ·dotRow(SB), NOSPLIT, $0-32
	MOVQ t+0(FP), SI
	MOVQ f+8(FP), DI
	MOVQ n+16(FP), CX
	PXOR X7, X7 // zero lanes for byte→word widening
	PXOR X6, X6 // packed int32 accumulator
	XORQ R8, R8 // scalar tail accumulator

loop16:
	CMPQ CX, $16
	JLT  tail8
	MOVOU (SI), X0
	MOVOU (DI), X2
	MOVOA X0, X1
	MOVOA X2, X3
	PUNPCKLBW X7, X0
	PUNPCKHBW X7, X1
	PUNPCKLBW X7, X2
	PUNPCKHBW X7, X3
	PMADDWL X2, X0
	PMADDWL X3, X1
	PADDD X0, X6
	PADDD X1, X6
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  loop16

tail8:
	CMPQ CX, $8
	JLT  tail4
	MOVQ (SI), X0
	MOVQ (DI), X2
	PUNPCKLBW X7, X0
	PUNPCKLBW X7, X2
	PMADDWL X2, X0
	PADDD X0, X6
	ADDQ $8, SI
	ADDQ $8, DI
	SUBQ $8, CX

tail4:
	CMPQ CX, $4
	JLT  tail1
	MOVL (SI), AX
	MOVL AX, X0
	MOVL (DI), DX
	MOVL DX, X2
	PUNPCKLBW X7, X0
	PUNPCKLBW X7, X2
	PMADDWL X2, X0
	PADDD X0, X6
	ADDQ $4, SI
	ADDQ $4, DI
	SUBQ $4, CX

tail1:
	TESTQ CX, CX
	JEQ   fold

scalar:
	MOVBLZX (SI), AX
	MOVBLZX (DI), DX
	IMULL   DX, AX
	ADDQ    AX, R8
	INCQ    SI
	INCQ    DI
	DECQ    CX
	JNE     scalar

fold:
	// Horizontal sum of the four int32 lanes (all non-negative and
	// well under 2³¹, so 32-bit adds are exact).
	PSHUFD $0xEE, X6, X0
	PADDD  X0, X6
	PSHUFD $0x55, X6, X0
	PADDD  X0, X6
	MOVL   X6, AX
	ADDQ   R8, AX
	MOVQ   AX, ret+24(FP)
	RET
