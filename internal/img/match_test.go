package img

import (
	"math"
	"math/rand"
	"testing"
)

// oracleNCC is what the fused matcher must reproduce: img.NCC on a
// plain crop of the window.
func oracleNCC(t *testing.T, g *Gray, tpl *Gray, x, y int) float64 {
	t.Helper()
	crop, err := g.Crop(Rect{X: x, Y: y, W: tpl.W, H: tpl.H})
	if err != nil {
		t.Fatalf("crop (%d,%d) %dx%d: %v", x, y, tpl.W, tpl.H, err)
	}
	return NCC(crop, tpl)
}

// scenicImage builds a frame with structure the detector actually
// sees: flat background, noise, gradient bands, and bright blobs.
func scenicImage(w, h int, seed int64) *Gray {
	rng := rand.New(rand.NewSource(seed))
	g := New(w, h)
	g.Fill(uint8(40 + rng.Intn(40)))
	for i := range g.Pix {
		if rng.Intn(3) == 0 {
			g.Pix[i] = uint8(int(g.Pix[i]) + rng.Intn(25))
		}
	}
	for b := 0; b < 6; b++ {
		v := uint8(90 + rng.Intn(160))
		bw, bh := 10+rng.Intn(60), 10+rng.Intn(60)
		bx, by := rng.Intn(w), rng.Intn(h)
		g.FillRect(Rect{X: bx, Y: by, W: bw, H: bh}, v)
	}
	// One flat strip so some windows are exactly degenerate.
	g.FillRect(Rect{X: 0, Y: h - 12, W: w, H: 12}, 77)
	return g
}

// TestMatcherMatchesOracle is the fused-vs-oracle equivalence suite:
// random structured images × the detector's template scales × stride
// offsets including edge-hugging windows, with Score compared against
// NCC-on-a-crop at 1e-9.
func TestMatcherMatchesOracle(t *testing.T) {
	scales := []struct{ w, h int }{{20, 24}, {28, 34}, {40, 48}, {80, 96}}
	for seed := int64(1); seed <= 4; seed++ {
		g := scenicImage(160, 140, seed)
		in, sq := BuildIntegrals(g, nil, nil)
		for _, sc := range scales {
			tpl := scenicImage(sc.w, sc.h, seed*131+int64(sc.h))
			m := NewTemplateMatcher(tpl)
			stride := sc.h / 4
			for y := 0; y+sc.h <= g.H; y += stride {
				for x := 0; x+sc.w <= g.W; x += stride {
					checkWindow(t, m, g, in, sq, tpl, x, y)
				}
			}
			// Edge-hugging windows the strided grid may miss.
			for _, pos := range [][2]int{
				{0, 0}, {g.W - sc.w, 0}, {0, g.H - sc.h}, {g.W - sc.w, g.H - sc.h},
				{g.W - sc.w - 1, g.H - sc.h - 1},
			} {
				checkWindow(t, m, g, in, sq, tpl, pos[0], pos[1])
			}
		}
	}
}

func checkWindow(t *testing.T, m *TemplateMatcher, g *Gray, in *Integral, sq *IntegralSq, tpl *Gray, x, y int) {
	t.Helper()
	want := oracleNCC(t, g, tpl, x, y)
	got := m.Score(g, in, sq, x, y)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Score(%d,%d) %dx%d = %v, oracle %v (diff %g)",
			x, y, m.W, m.H, got, want, got-want)
	}
}

// TestMatcherFlatWindows pins the degenerate cases: a flat window
// against a textured template scores 0; a flat window against a flat
// template scores 1 only when the means agree.
func TestMatcherFlatWindows(t *testing.T) {
	g := New(64, 64)
	g.Fill(50)
	g.FillRect(Rect{X: 32, Y: 0, W: 32, H: 64}, 200)
	in, sq := BuildIntegrals(g, nil, nil)

	textured := scenicImage(16, 16, 9)
	m := NewTemplateMatcher(textured)
	if s := m.Score(g, in, sq, 0, 0); s != 0 {
		t.Errorf("flat window vs textured template = %v, want 0", s)
	}
	if s := oracleNCC(t, g, textured, 0, 0); s != 0 {
		t.Errorf("oracle disagrees on flat window: %v", s)
	}

	flat50 := New(16, 16)
	flat50.Fill(50)
	mf := NewTemplateMatcher(flat50)
	if s := mf.Score(g, in, sq, 0, 0); s != 1 {
		t.Errorf("flat-50 window vs flat-50 template = %v, want 1", s)
	}
	if s := mf.Score(g, in, sq, 40, 0); s != 0 {
		t.Errorf("flat-200 window vs flat-50 template = %v, want 0", s)
	}
}

// TestScoreBoundedContract checks the early-out semantics: (true, s)
// is bit-identical to Score, and (false, _) only ever happens when the
// exact score is below the bound.
func TestScoreBoundedContract(t *testing.T) {
	g := scenicImage(160, 140, 11)
	in, sq := BuildIntegrals(g, nil, nil)
	tpl := scenicImage(28, 34, 12)
	m := NewTemplateMatcher(tpl)
	bounds := []float64{0.1, 0.33, 0.55, 0.9}
	var outs, fulls int
	for y := 0; y+m.H <= g.H; y += 5 {
		for x := 0; x+m.W <= g.W; x += 5 {
			exact := m.Score(g, in, sq, x, y)
			for _, b := range bounds {
				s, ok := m.ScoreBounded(g, in, sq, x, y, b)
				if ok {
					fulls++
					if s != exact {
						t.Fatalf("ScoreBounded(%d,%d,%v) = %v, Score = %v", x, y, b, s, exact)
					}
				} else {
					outs++
					if exact >= b {
						t.Fatalf("early-out at (%d,%d) bound %v but exact score %v ≥ bound", x, y, b, exact)
					}
				}
			}
		}
	}
	if outs == 0 {
		t.Error("early-out never fired — bound is not pruning")
	}
	if fulls == 0 {
		t.Error("no full scores — bound fired on everything, suspicious")
	}
}

// TestScoreVarBoundedGate checks the fused variance gate agrees with
// RegionVariance exactly.
func TestScoreVarBoundedGate(t *testing.T) {
	g := scenicImage(120, 120, 21)
	in, sq := BuildIntegrals(g, nil, nil)
	tpl := scenicImage(20, 24, 22)
	m := NewTemplateMatcher(tpl)
	const minVar = 100
	for y := 0; y+m.H <= g.H; y += 7 {
		for x := 0; x+m.W <= g.W; x += 7 {
			win := Rect{X: x, Y: y, W: m.W, H: m.H}
			gated := RegionVariance(in, sq, win) < minVar
			s, ok := m.ScoreVarBounded(g, in, sq, x, y, 0.33, minVar)
			if gated && (ok || s != 0) {
				t.Fatalf("window (%d,%d) var %v < %v must gate out, got (%v, %v)",
					x, y, RegionVariance(in, sq, win), float64(minVar), s, ok)
			}
			if !gated {
				want, wantOK := m.ScoreBounded(g, in, sq, x, y, 0.33)
				if s != want || ok != wantOK {
					t.Fatalf("window (%d,%d): gated call (%v,%v) != plain (%v,%v)",
						x, y, s, ok, want, wantOK)
				}
			}
		}
	}
}

// --- benchmarks for the kernel pieces ---

func benchImage(w, h int, seed int64) *Gray {
	rng := rand.New(rand.NewSource(seed))
	g := New(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

// BenchmarkBuildIntegrals measures the per-frame table build the
// extraction engine pays once per (camera, frame).
func BenchmarkBuildIntegrals(b *testing.B) {
	g := benchImage(640, 480, 1)
	var in *Integral
	var sq *IntegralSq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, sq = BuildIntegrals(g, in, sq)
	}
}

// BenchmarkTemplateScore measures one full fused window score at the
// detector's largest scale (96×80), the worst-case kernel invocation.
func BenchmarkTemplateScore(b *testing.B) {
	g := benchImage(640, 480, 1)
	in, sq := BuildIntegrals(g, nil, nil)
	m := NewTemplateMatcher(benchImage(80, 96, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(g, in, sq, (i*7)%(640-80), (i*13)%(480-96))
	}
}
