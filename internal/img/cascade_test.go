package img

import (
	"math"
	"math/rand"
	"testing"
)

// naiveBlockSum computes the k×k block sum grid of g directly from
// pixels — the oracle for BuildPyramid.
func naiveBlockSum(g *Gray, k int) []uint16 {
	bw, bh := (g.W+k-1)/k, (g.H+k-1)/k
	out := make([]uint16, bw*bh)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out[(y/k)*bw+x/k] += uint16(g.Pix[y*g.W+x])
		}
	}
	return out
}

func TestBuildPyramidMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{64, 48}, {63, 47}, {65, 49}, {8, 8}, {7, 13}, {640, 480}} {
		g := New(dims[0], dims[1])
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.Intn(256))
		}
		in, _ := BuildIntegrals(g, nil, nil)
		p := BuildPyramid(g, in, nil)
		for _, lv := range []struct {
			k      int
			s      []uint16
			bw, bh int
		}{{2, p.S2, p.W2, p.H2}, {4, p.S4, p.W4, p.H4}, {8, p.S8, p.W8, p.H8}} {
			want := naiveBlockSum(g, lv.k)
			if lv.bw != (dims[0]+lv.k-1)/lv.k || lv.bh != (dims[1]+lv.k-1)/lv.k {
				t.Fatalf("%dx%d k=%d: grid %dx%d", dims[0], dims[1], lv.k, lv.bw, lv.bh)
			}
			for i := range want {
				if lv.s[i] != want[i] {
					t.Fatalf("%dx%d k=%d block %d: got %d want %d",
						dims[0], dims[1], lv.k, i, lv.s[i], want[i])
				}
			}
		}
	}
}

func TestBuildPyramidReuse(t *testing.T) {
	g := scenicImage(100, 80, 3)
	in, _ := BuildIntegrals(g, nil, nil)
	p := BuildPyramid(g, in, nil)
	s2, s4, s8 := &p.S2[0], &p.S4[0], &p.S8[0]
	BuildPyramid(g, in, p)
	if &p.S2[0] != s2 || &p.S4[0] != s4 || &p.S8[0] != s8 {
		t.Fatal("BuildPyramid reallocated buffers it could reuse")
	}
}

// TestDotRowMatchesGeneric fuzzes the architecture-specific dot kernel
// against the scalar reference for every length, including the 16/8/4
// chunk boundaries and ragged tails. The sum is exact integer, so the
// match must be exact.
func TestDotRowMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]uint8, 256)
	buf2 := make([]uint8, 256)
	for i := range buf {
		buf[i] = uint8(rng.Intn(256))
		buf2[i] = uint8(rng.Intn(256))
	}
	for n := 1; n <= 128; n++ {
		for off := 0; off < 3; off++ {
			a, b := buf[off:off+n], buf2[off:off+n]
			got := dotRow(&a[0], &b[0], n)
			want := dotRowGeneric(&a[0], &b[0], n)
			if got != want {
				t.Fatalf("n=%d off=%d: dotRow=%d generic=%d", n, off, got, want)
			}
		}
	}
	// Saturation check: all-255 rows exercise the widest lane values.
	for i := range buf {
		buf[i], buf2[i] = 255, 255
	}
	if got, want := dotRow(&buf[0], &buf2[0], 256), dotRowGeneric(&buf[0], &buf2[0], 256); got != want {
		t.Fatalf("saturated: dotRow=%d generic=%d", got, want)
	}
}

// TestPyrBoundNeverBelowNumerator is the pyramid tier's never-wrong-
// skip contract: for every tier, window and anchor parity, the tier's
// bound must sit at or above the window's true NCC numerator (up to
// the documented 1e-6·den slack the cascade budgets for float
// accumulation). A violation is exactly the failure that would let the
// cascade skip a window the oracle accepts.
func TestPyrBoundNeverBelowNumerator(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := scenicImage(160, 120, seed)
		in, sq := BuildIntegrals(g, nil, nil)
		pyr := BuildPyramid(g, in, nil)
		for _, th := range []int{12, 24, 48} {
			tpl := scenicImage(th*5/6, th, seed+100)
			m := NewTemplateMatcher(tpl)
			rng := rand.New(rand.NewSource(seed * 31))
			for trial := 0; trial < 200; trial++ {
				x := rng.Intn(g.W - m.W + 1)
				y := rng.Intn(g.H - m.H + 1)
				// True numerator Σ tpl′·(f − mw) = Σ tpl′·f (since Σ tpl′ = 0
				// exactly in exact arithmetic — reconstructed here in float,
				// hence the slack).
				var num float64
				for j := 0; j < m.H; j++ {
					for i := 0; i < m.W; i++ {
						num += (float64(m.tpl[j*m.W+i]) - m.mean) * float64(g.Pix[(y+j)*g.W+x+i])
					}
				}
				n := uint64(m.W * m.H)
				win := Rect{X: x, Y: y, W: m.W, H: m.H}
				s := in.RegionSumUnclipped(win)
				q := sq.RegionSumUnclipped(win)
				da := float64(n*q-s*s) / float64(n)
				den := math.Sqrt(da * m.norm2)
				slack := 1e-6*den + 1e-6
				for ti := range m.tiers {
					b := m.pyrBound(&m.tiers[ti], sq, pyr, x, y)
					if b < num-slack {
						t.Fatalf("seed=%d h=%d (%d,%d) tier k=%d: bound %.6f below numerator %.6f",
							seed, th, x, y, m.tiers[ti].k, b, num)
					}
				}
			}
		}
	}
}

// TestScoreCascadeSkipContract fuzzes the full cascade: an accepted
// score must be bit-identical to the exact kernel, and a skip must be
// justified — either the window truly scores below the bound, or (when
// a variance floor is given) it truly falls below the floor. This is
// the never-wrong-skip contract for every reject tier at once
// (variance gate, pyramid ladder, block prescreen, and the in-scan
// row early-out with its deviation tracking).
func TestScoreCascadeSkipContract(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := scenicImage(160, 120, seed+50)
		in, sq := BuildIntegrals(g, nil, nil)
		pyr := BuildPyramid(g, in, nil)
		for _, th := range []int{12, 24, 48} {
			tpl := scenicImage(th*5/6, th, seed+150)
			m := NewTemplateMatcher(tpl)
			rng := rand.New(rand.NewSource(seed * 37))
			for trial := 0; trial < 300; trial++ {
				x := rng.Intn(g.W - m.W + 1)
				y := rng.Intn(g.H - m.H + 1)
				bound := []float64{-0.5, 0, 0.3, 0.7, 0.95}[trial%5]
				minVar := []float64{-1, -1, 60, 400}[trial%4]
				exact := m.Score(g, in, sq, x, y)
				n := uint64(m.W * m.H)
				win := Rect{X: x, Y: y, W: m.W, H: m.H}
				s := in.RegionSumUnclipped(win)
				q := sq.RegionSumUnclipped(win)
				variance := float64(n*q-s*s) / float64(n*n)
				got, ok := m.ScoreCascade(g, in, sq, pyr, x, y, bound, minVar)
				if ok {
					if got != exact {
						t.Fatalf("seed=%d h=%d (%d,%d): accepted score %v != exact %v",
							seed, th, x, y, got, exact)
					}
					continue
				}
				if minVar >= 0 && variance < minVar {
					continue // variance-gate skip: justified
				}
				if exact >= bound {
					t.Fatalf("seed=%d h=%d (%d,%d) bound=%v minVar=%v: skipped window scores %v",
						seed, th, x, y, bound, minVar, exact)
				}
			}
		}
	}
}
