package img

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAtSet(t *testing.T) {
	g := New(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("bad dims %dx%d len=%d", g.W, g.H, len(g.Pix))
	}
	g.Set(2, 1, 200)
	if g.At(2, 1) != 200 {
		t.Error("Set/At round trip failed")
	}
	// Out of range reads 0, writes ignored.
	if g.At(-1, 0) != 0 || g.At(4, 0) != 0 || g.At(0, 3) != 0 {
		t.Error("OOB At should be 0")
	}
	g.Set(-1, -1, 9) // must not panic
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,5) should panic")
		}
	}()
	New(0, 5)
}

func TestFromPix(t *testing.T) {
	if _, err := FromPix(2, 2, []uint8{1, 2, 3}); !errors.Is(err, ErrBounds) {
		t.Error("size mismatch should be ErrBounds")
	}
	g, err := FromPix(2, 2, []uint8{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 4 {
		t.Error("FromPix layout wrong")
	}
}

func TestAtClamped(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 0, 10)
	g.Set(1, 1, 20)
	if g.AtClamped(-5, -5) != 10 {
		t.Error("clamp to top-left failed")
	}
	if g.AtClamped(10, 10) != 20 {
		t.Error("clamp to bottom-right failed")
	}
}

func TestCrop(t *testing.T) {
	g := New(10, 10)
	g.FillRect(Rect{2, 3, 4, 4}, 128)
	c, err := g.Crop(Rect{2, 3, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Pix {
		if p != 128 {
			t.Fatal("crop content wrong")
		}
	}
	if _, err := g.Crop(Rect{8, 8, 5, 5}); !errors.Is(err, ErrBounds) {
		t.Error("OOB crop should fail")
	}
	if _, err := g.Crop(Rect{0, 0, 0, 1}); !errors.Is(err, ErrBounds) {
		t.Error("empty crop should fail")
	}
}

func TestCropClamped(t *testing.T) {
	g := New(4, 4)
	g.Fill(50)
	c := g.CropClamped(Rect{-2, -2, 4, 4})
	if c.W != 4 || c.H != 4 {
		t.Fatal("clamped crop size wrong")
	}
	if c.At(0, 0) != 50 {
		t.Error("clamped crop should replicate border")
	}
	if e := g.CropClamped(Rect{0, 0, 0, 0}); e.W != 1 || e.H != 1 {
		t.Error("degenerate clamped crop should give 1x1")
	}
}

func TestResizeIdentityAndScale(t *testing.T) {
	g := New(8, 8)
	g.FillRect(Rect{0, 0, 4, 8}, 200)
	same := g.Resize(8, 8)
	for i := range g.Pix {
		if same.Pix[i] != g.Pix[i] {
			t.Fatal("identity resize should copy")
		}
	}
	half := g.Resize(4, 4)
	// Left half should stay bright, right half dark.
	if half.At(0, 2) < 150 || half.At(3, 2) > 50 {
		t.Errorf("downscale lost structure: left=%d right=%d", half.At(0, 2), half.At(3, 2))
	}
	up := g.Resize(16, 16)
	if up.At(1, 8) < 150 || up.At(14, 8) > 50 {
		t.Error("upscale lost structure")
	}
}

func TestMeanVariance(t *testing.T) {
	g := New(2, 2)
	g.Pix = []uint8{0, 0, 255, 255}
	if got := g.Mean(); got != 127.5 {
		t.Errorf("mean = %v", got)
	}
	if got := g.Variance(); got != 127.5*127.5 {
		t.Errorf("variance = %v", got)
	}
	flat := New(3, 3)
	flat.Fill(42)
	if flat.Variance() != 0 {
		t.Error("flat image variance should be 0")
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	in := a.Intersect(b)
	if in != (Rect{5, 5, 5, 5}) {
		t.Errorf("intersect = %v", in)
	}
	if a.Intersect(Rect{20, 20, 5, 5}).Area() != 0 {
		t.Error("disjoint intersect should be empty")
	}
	iou := a.IoU(b)
	want := 25.0 / 175.0
	if diff := iou - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("IoU = %v, want %v", iou, want)
	}
	if a.IoU(a) != 1 {
		t.Error("self IoU should be 1")
	}
	cx, cy := a.Center()
	if cx != 5 || cy != 5 {
		t.Errorf("center = %v,%v", cx, cy)
	}
	if !a.Contains(0, 0) || a.Contains(10, 10) {
		t.Error("Contains boundary wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(2, 2)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 0 {
		t.Error("clone should not share pixels")
	}
}

func TestCropRoundTripProperty(t *testing.T) {
	// Property: cropping then reading matches direct reads.
	rng := rand.New(rand.NewSource(5))
	g := New(32, 24)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	f := func(x8, y8, w8, h8 uint8) bool {
		r := Rect{int(x8 % 16), int(y8 % 12), 1 + int(w8%16), 1 + int(h8%12)}
		c, err := g.Crop(r)
		if err != nil {
			return true // OOB is allowed to fail
		}
		for y := 0; y < r.H; y++ {
			for x := 0; x < r.W; x++ {
				if c.At(x, y) != g.At(r.X+x, r.Y+y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := randomImage(33, 17, 9)
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != g.W || back.H != g.H {
		t.Fatalf("dims %dx%d", back.W, back.H)
	}
	for i := range g.Pix {
		if back.Pix[i] != g.Pix[i] {
			t.Fatal("pixel drift through PGM")
		}
	}
}

func TestPGMWithComments(t *testing.T) {
	raw := "P5\n# a comment\n2 1\n255\n\x10\x20"
	g, err := ReadPGM(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 0x10 || g.At(1, 0) != 0x20 {
		t.Error("comment parsing broke pixels")
	}
}

func TestPGMRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"P6\n2 2\n255\n....",     // wrong magic
		"P5\n0 2\n255\n",         // zero width
		"P5\n2 2\n70000\n",       // maxval too big
		"P5\n2 2\n255\n\x01",     // truncated pixels
		"P5\nx 2\n255\n\x01\x02", // non-numeric header
	}
	for _, c := range cases {
		if _, err := ReadPGM(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q should fail", c)
		}
	}
}
