package img

import "unsafe"

// dotRowGeneric is the portable scalar Σ t[i]·f[i] kernel — the
// reference implementation every architecture-specific dotRow must
// match bit for bit (a pure-integer sum, so "match" is exact
// equality). It also serves as the oracle in the equivalence tests.
func dotRowGeneric(t, f *byte, n int) int64 {
	ts := unsafe.Slice(t, n)
	fs := unsafe.Slice(f, n)
	var p0, p1, p2, p3 int64
	i := 0
	for ; i <= n-8; i += 8 {
		tt := ts[i : i+8 : i+8]
		ff := fs[i : i+8 : i+8]
		p0 += int64(tt[0])*int64(ff[0]) + int64(tt[4])*int64(ff[4])
		p1 += int64(tt[1])*int64(ff[1]) + int64(tt[5])*int64(ff[5])
		p2 += int64(tt[2])*int64(ff[2]) + int64(tt[6])*int64(ff[6])
		p3 += int64(tt[3])*int64(ff[3]) + int64(tt[7])*int64(ff[7])
	}
	for ; i < n; i++ {
		p0 += int64(ts[i]) * int64(fs[i])
	}
	return (p0 + p1) + (p2 + p3)
}
