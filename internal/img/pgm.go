package img

import (
	"bufio"
	"fmt"
	"io"
)

// PGM (portable graymap) codec — the simplest interchange format for
// inspecting rendered frames and face crops with standard image tools.
// Binary P5 variant, maxval 255.

// WritePGM encodes g as binary PGM.
func (g *Gray) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return fmt.Errorf("img: writing pgm header: %w", err)
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return fmt.Errorf("img: writing pgm pixels: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("img: flushing pgm: %w", err)
	}
	return nil
}

// ReadPGM decodes a binary (P5) PGM image with maxval ≤ 255.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("img: reading pgm magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("img: pgm magic %q: %w", magic, ErrBounds)
	}
	var w, h, maxval int
	for _, p := range []*int{&w, &h, &maxval} {
		if err := scanPGMInt(br, p); err != nil {
			return nil, err
		}
	}
	if w <= 0 || h <= 0 || w*h > 64<<20 {
		return nil, fmt.Errorf("img: pgm dimensions %dx%d: %w", w, h, ErrBounds)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("img: pgm maxval %d unsupported: %w", maxval, ErrBounds)
	}
	// Exactly one whitespace byte separates the header from pixels.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("img: pgm header separator: %w", err)
	}
	pix := make([]uint8, w*h)
	if _, err := io.ReadFull(br, pix); err != nil {
		return nil, fmt.Errorf("img: pgm pixels: %w", err)
	}
	return FromPix(w, h, pix)
}

// scanPGMInt reads the next integer, skipping whitespace and '#'
// comments (the PGM header grammar).
func scanPGMInt(br *bufio.Reader, out *int) error {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("img: pgm header: %w", err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return fmt.Errorf("img: pgm comment: %w", err)
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			continue
		case b >= '0' && b <= '9':
			v := int(b - '0')
			for {
				nb, err := br.ReadByte()
				if err == io.EOF {
					*out = v
					return nil
				}
				if err != nil {
					return fmt.Errorf("img: pgm header: %w", err)
				}
				if nb < '0' || nb > '9' {
					if err := br.UnreadByte(); err != nil {
						return fmt.Errorf("img: pgm header: %w", err)
					}
					*out = v
					return nil
				}
				v = v*10 + int(nb-'0')
			}
		default:
			return fmt.Errorf("img: pgm header byte %q: %w", b, ErrBounds)
		}
	}
}
