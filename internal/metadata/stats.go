package metadata

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/vfs"
)

// Per-segment statistics (DESIGN.md §9): every sealed segment carries a
// sidecar NNNNNN.sts holding zone maps (min/max frame, min/max time),
// per-kind record counts, and bloom filters over Label and Person —
// everything a conjunctive query needs to prove "no record in this
// segment can match" without decoding a single record. The sidecar is
// written at seal time and at compaction cutover, referenced from the
// segment's MANIFEST line (sts=<crc>), CRC-32 protected, and
// regenerated from the replayed records when absent or damaged, so
// pre-stats repositories upgrade in place on their first writable open.
//
// Soundness discipline mirrors keyRange's index-window widening: a
// statistics block may only ever prove absence conservatively (zone
// bounds are compared through the same widened integer key bounds the
// range indexes use; blooms have no false negatives; kind counts are
// exact), and every surviving candidate is still re-checked record by
// record (boundsOK + residual), so pruned results stay byte-identical
// to the naive full-scan oracle.

const (
	statsSuffix = ".sts"
	statsMagic  = "DiEvSTS1"
)

// statsFileName maps a segment file name to its statistics sidecar.
func statsFileName(segName string) string {
	return strings.TrimSuffix(segName, segSuffix) + statsSuffix
}

// --- bloom filter ---

// bloomFilter is a fixed double-hashing bloom filter: k probe bits per
// key derived from one 64-bit FNV-1a hash. An empty filter (no bits)
// definitely contains nothing.
type bloomFilter struct {
	bits []byte
}

// bloomBitsPerKey and bloomHashes size the filter at ~1% false
// positives; false negatives are impossible, which is the property
// pruning soundness rests on.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// newBloom sizes a filter for n distinct keys.
func newBloom(n int) bloomFilter {
	if n == 0 {
		return bloomFilter{}
	}
	return bloomFilter{bits: make([]byte, (n*bloomBitsPerKey+7)/8)}
}

func (b *bloomFilter) add(h uint64) {
	if len(b.bits) == 0 {
		return
	}
	n := uint32(len(b.bits) * 8)
	h1, h2 := uint32(h), uint32(h>>32)|1
	for i := uint32(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % n
		b.bits[bit>>3] |= 1 << (bit & 7)
	}
}

// has reports whether the key may be present (false = definitely not).
func (b bloomFilter) has(h uint64) bool {
	if len(b.bits) == 0 {
		return false
	}
	n := uint32(len(b.bits) * 8)
	h1, h2 := uint32(h), uint32(h>>32)|1
	for i := uint32(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % n
		if b.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// bloomHashString hashes a string key (FNV-1a 64).
func bloomHashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// bloomHashInt hashes an integer key through the same FNV-1a core.
func bloomHashInt(v int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range buf {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// --- segment statistics ---

// segStats is one segment's statistics block. Zone bounds are valid
// only when count > 0 (an empty segment is trivially prunable).
type segStats struct {
	count    int
	kinds    [numKinds]int
	minFrame int64
	maxFrame int64
	minTime  int64 // nanoseconds
	maxTime  int64
	labels   bloomFilter // Record.Label
	persons  bloomFilter // Record.Person and Record.Other (IDs >= 0)
}

// exclude reports whether the statistics prove no record in the
// segment can satisfy cj's absorbed conjuncts. Every check is
// one-sided: it may only return true when a match is impossible.
// Zone comparisons run through the same widened integer key bounds as
// the range-index windows (keyRange), so float query bounds can never
// exclude a record an exact re-check would accept.
func (s *segStats) exclude(cj *conjuncts) bool {
	if s.count == 0 {
		return true
	}
	if cj.frameLo.set || cj.frameHi.set {
		loK, hiK := keyRange(cj.frameLo, cj.frameHi, 1)
		if s.maxFrame < loK || s.minFrame > hiK {
			return true
		}
	}
	if cj.timeLo.set || cj.timeHi.set {
		loK, hiK := keyRange(cj.timeLo, cj.timeHi, 1e9)
		if s.maxTime < loK || s.minTime > hiK {
			return true
		}
	}
	for _, k := range cj.kinds {
		if s.kinds[k] == 0 {
			return true
		}
	}
	for _, l := range cj.labels {
		if !s.labels.has(bloomHashString(l)) {
			return true
		}
	}
	// cj.persons entries come from `person = K` conjuncts, which match
	// only Record.Person; the bloom additionally indexes Other, which
	// can only make it more inclusive — still sound, just conservative.
	for _, p := range cj.persons {
		if !s.persons.has(bloomHashInt(p)) {
			return true
		}
	}
	return false
}

// statsBuilder accumulates statistics record by record. The distinct
// key sets are kept so the blooms can be sized exactly at build time;
// build is deterministic in the record multiset (bloom bits are an OR
// of per-key masks, so insertion order is irrelevant).
type statsBuilder struct {
	count    int
	kinds    [numKinds]int
	minFrame int64
	maxFrame int64
	minTime  int64
	maxTime  int64
	labels   map[string]struct{}
	persons  map[int]struct{}
}

func newStatsBuilder() *statsBuilder {
	b := &statsBuilder{}
	b.reset()
	return b
}

func (b *statsBuilder) reset() {
	*b = statsBuilder{
		minFrame: math.MaxInt64, maxFrame: math.MinInt64,
		minTime: math.MaxInt64, maxTime: math.MinInt64,
		labels:  make(map[string]struct{}),
		persons: make(map[int]struct{}),
	}
}

func (b *statsBuilder) add(rec Record) {
	b.count++
	b.kinds[rec.Kind]++
	f := int64(rec.Frame)
	if f < b.minFrame {
		b.minFrame = f
	}
	if f > b.maxFrame {
		b.maxFrame = f
	}
	t := rec.Time.Nanoseconds()
	if t < b.minTime {
		b.minTime = t
	}
	if t > b.maxTime {
		b.maxTime = t
	}
	b.labels[rec.Label] = struct{}{}
	if rec.Person >= 0 {
		b.persons[rec.Person] = struct{}{}
	}
	if rec.Other >= 0 {
		b.persons[rec.Other] = struct{}{}
	}
}

// build finalises the accumulated statistics into a segStats.
func (b *statsBuilder) build() *segStats {
	s := &segStats{
		count: b.count, kinds: b.kinds,
		minFrame: b.minFrame, maxFrame: b.maxFrame,
		minTime: b.minTime, maxTime: b.maxTime,
		labels:  newBloom(len(b.labels)),
		persons: newBloom(len(b.persons)),
	}
	for l := range b.labels {
		s.labels.add(bloomHashString(l))
	}
	for p := range b.persons {
		s.persons.add(bloomHashInt(p))
	}
	return s
}

// statsOfSnap rebuilds the statistics block for snapshot positions
// [lo, hi) — the regeneration and validation path. The result is
// byte-identical (encoded) to what the seal-time builder produced for
// the same records.
func statsOfSnap(view snap, lo, hi int) *segStats {
	b := newStatsBuilder()
	for pos := lo; pos < hi; pos++ {
		b.add(*view.at(pos))
	}
	return b.build()
}

// statsOfRecords rebuilds a statistics block from a decoded record
// slice (Fsck's validation path).
func statsOfRecords(recs []Record) *segStats {
	b := newStatsBuilder()
	for i := range recs {
		b.add(recs[i])
	}
	return b.build()
}

// --- encoding ---

// encodeStats renders the CRC-32'd STATS block:
//
//	magic    8 bytes "DiEvSTS1"
//	count    uint32
//	kinds    numKinds × uint32
//	minFrame, maxFrame, minTimeNs, maxTimeNs  int64
//	labelBloom  uint32 len, bytes
//	personBloom uint32 len, bytes
//	crc32    uint32 over every preceding byte
//
// The trailing CRC is also the value the MANIFEST's sts= token records,
// binding the manifest to this exact sidecar version (a stale or torn
// sidecar from an interrupted seal can never be trusted by mistake).
func encodeStats(s *segStats) []byte {
	buf := make([]byte, 0, 64+len(s.labels.bits)+len(s.persons.bits))
	buf = append(buf, statsMagic...)
	var b4 [4]byte
	var b8 [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		buf = append(buf, b4[:]...)
	}
	p64 := func(v int64) {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		buf = append(buf, b8[:]...)
	}
	p32(uint32(s.count))
	for _, n := range s.kinds {
		p32(uint32(n))
	}
	p64(s.minFrame)
	p64(s.maxFrame)
	p64(s.minTime)
	p64(s.maxTime)
	p32(uint32(len(s.labels.bits)))
	buf = append(buf, s.labels.bits...)
	p32(uint32(len(s.persons.bits)))
	buf = append(buf, s.persons.bits...)
	p32(crc32.ChecksumIEEE(buf))
	return buf
}

// statsCRCOf extracts the trailing CRC of an encoded block — the value
// the manifest's sts= token carries.
func statsCRCOf(data []byte) uint32 {
	return binary.LittleEndian.Uint32(data[len(data)-4:])
}

// decodeStats parses and verifies an encoded STATS block.
func decodeStats(data []byte) (*segStats, error) {
	fail := func(what string) (*segStats, error) {
		return nil, fmt.Errorf("metadata: stats block %s: %w", what, ErrCorrupt)
	}
	if len(data) < len(statsMagic)+4 || string(data[:len(statsMagic)]) != statsMagic {
		return fail("header")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fail("checksum")
	}
	off := len(statsMagic)
	need := func(n int) bool { return off+n <= len(body) }
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	i64 := func() int64 {
		v := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		return v
	}
	if !need(4 + int(numKinds)*4 + 4*8 + 4) {
		return fail("truncated")
	}
	s := &segStats{}
	s.count = int(u32())
	for i := range s.kinds {
		s.kinds[i] = int(u32())
	}
	s.minFrame = i64()
	s.maxFrame = i64()
	s.minTime = i64()
	s.maxTime = i64()
	ln := int(u32())
	if !need(ln + 4) {
		return fail("label bloom")
	}
	if ln > 0 {
		s.labels.bits = append([]byte(nil), body[off:off+ln]...)
	}
	off += ln
	ln = int(u32())
	if !need(ln) {
		return fail("person bloom")
	}
	if ln > 0 {
		s.persons.bits = append([]byte(nil), body[off:off+ln]...)
	}
	off += ln
	if off != len(body) {
		return fail("trailing bytes")
	}
	return s, nil
}

// --- sidecar I/O ---

// writeStatsFile durably writes a segment's statistics sidecar. The
// file is written in place (no rename): until a manifest entry carries
// its CRC it is unreferenced — a torn or stale sidecar is detected by
// the CRC binding and regenerated, and the orphan sweep removes
// unreferenced sidecars at open.
func writeStatsFile(fsys vfs.FS, dir, segName string, data []byte) error {
	path := filepath.Join(dir, statsFileName(segName))
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("metadata: creating stats sidecar: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(path)
		return fmt.Errorf("metadata: writing stats sidecar: %w", werr)
	}
	return nil
}

// readStats loads and verifies a sealed segment's sidecar against the
// manifest's recorded CRC. Any failure — missing file, torn write,
// stale version — returns an error; callers regenerate (writable) or
// forgo pruning (read-only).
func readStats(fsys vfs.FS, dir string, sm segMeta) (*segStats, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, statsFileName(sm.name)))
	if err != nil {
		return nil, fmt.Errorf("metadata: reading stats sidecar for %s: %w", sm.name, err)
	}
	s, err := decodeStats(data)
	if err != nil {
		return nil, err
	}
	if got := statsCRCOf(data); got != sm.statsCRC {
		return nil, fmt.Errorf("metadata: stats sidecar for %s is version %08x, manifest expects %08x: %w",
			sm.name, got, sm.statsCRC, ErrCorrupt)
	}
	return s, nil
}
