package metadata

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"repro/internal/vfs"
)

// TestENOSPCAppendRecovers pins the disk-full contract for the active
// segment: while space is exhausted appends report ENOSPC (acknowledged
// records stay readable, the store stays open), and once space frees
// the append path repairs itself — every acknowledged record durable
// exactly once, nothing duplicated, nothing lost.
func TestENOSPCAppendRecovers(t *testing.T) {
	fsys := vfs.NewFaultFS()
	r, err := Open("repo", WithFS(fsys), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Record
	appendOne := func(frame int) (uint64, error) {
		rec := obs(frame, 0, "enospc", 1)
		id, err := r.Append(rec)
		if id != 0 {
			rec.ID = id
			oracle = append(oracle, rec)
		}
		return id, err
	}
	for i := 0; i < 10; i++ {
		if _, err := appendOne(i); err != nil {
			t.Fatal(err)
		}
	}

	// Disk full: every write to a segment file fails.
	fsys.Inject = func(n int, op vfs.Op, path string) error {
		if op == vfs.OpWrite && strings.HasSuffix(path, segSuffix) {
			return vfs.ErrNoSpace
		}
		return nil
	}
	// The first failing append is acknowledged-but-not-durable (the
	// record enters memory before its flush fails); later ones are
	// rejected outright because the repair rewrite needs space too.
	// Either way the error chains ENOSPC and the oracle tracks exactly
	// the acknowledged set (id != 0).
	for i := 10; i < 15; i++ {
		if _, err := appendOne(i); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("append %d under full disk: err = %v, want ENOSPC in chain", i, err)
		}
	}
	// The store is open and readable throughout, and reports the fault.
	if got := r.Len(); got != len(oracle) {
		t.Fatalf("Len under full disk = %d, want %d", got, len(oracle))
	}
	h, err := r.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || !h.WriteFault {
		t.Fatalf("health under full disk = %+v, want WriteFault", h)
	}

	// Space frees: the next append repairs and succeeds.
	fsys.Inject = nil
	if _, err := appendOne(100); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
	h, err = r.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.WriteFault {
		t.Fatal("WriteFault still set after successful repair")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Open("repo", WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("reopen has %d records, oracle %d — duplicate or lost records after ENOSPC", len(got), len(oracle))
	}
}

// TestShortWriteDuringAppend injects a short write (half the buffer
// lands, then ENOSPC): the rejected record must not survive, the next
// append must repair the torn tail, and a reopen must agree.
func TestShortWriteDuringAppend(t *testing.T) {
	fsys := vfs.NewFaultFS()
	// SyncNone+large buffer would hide the fault in bufio; SyncAlways
	// pushes every record through the seam.
	r, err := Open("repo", WithFS(fsys), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Record
	for i := 0; i < 10; i++ {
		rec := obs(i, 0, "short", 1)
		id, err := r.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		rec.ID = id
		oracle = append(oracle, rec)
	}
	armed := true
	fsys.Inject = func(n int, op vfs.Op, path string) error {
		if armed && op == vfs.OpWrite && strings.HasSuffix(path, segSuffix) {
			armed = false
			return errors.Join(io.ErrShortWrite, vfs.ErrNoSpace)
		}
		return nil
	}
	rec := obs(10, 0, "short", 1)
	id, err := r.Append(rec)
	if err == nil {
		t.Fatal("append through short write succeeded, want error")
	}
	if id != 0 {
		// Acknowledged despite the failed flush (SyncAlways semantics).
		rec.ID = id
		oracle = append(oracle, rec)
	}
	// Repair and continue.
	rec2 := obs(11, 0, "short", 1)
	id2, err := r.Append(rec2)
	if err != nil {
		t.Fatalf("append after short write: %v", err)
	}
	rec2.ID = id2
	oracle = append(oracle, rec2)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open("repo", WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("reopen has %d records, oracle %d", len(got), len(oracle))
	}
}

// TestENOSPCDuringManifestSwap exhausts the disk exactly when a roll
// writes MANIFEST.tmp: the roll's append is rejected, the old manifest
// still governs, and once space frees appends and the manifest swap
// proceed — reopen sees every acknowledged record exactly once.
func TestENOSPCDuringManifestSwap(t *testing.T) {
	fsys := vfs.NewFaultFS()
	r, err := Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Record
	appendOne := func(frame int) error {
		rec := obs(frame, 0, "swap", 1)
		id, err := r.Append(rec)
		if id != 0 {
			rec.ID = id
			oracle = append(oracle, rec)
		}
		return err
	}
	// Fill until the active segment is past the roll threshold, so the
	// very next append must roll (and so must swap the manifest).
	i := 0
	for {
		st, err := r.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if act := st.Segments[len(st.Segments)-1]; len(st.Segments) == 1 && act.Bytes >= 300 {
			break
		}
		if err := appendOne(i); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Next roll's manifest write hits a full disk.
	fsys.Inject = func(n int, op vfs.Op, path string) error {
		if op == vfs.OpWrite && strings.HasSuffix(path, manifestTmp) {
			return vfs.ErrNoSpace
		}
		return nil
	}
	for j := 0; j < 3; j++ {
		if err := appendOne(1000 + j); err == nil {
			t.Fatal("append requiring manifest swap succeeded under full disk")
		} else if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC in chain", err)
		}
	}
	// Space frees: the swap goes through and appends resume.
	fsys.Inject = nil
	for j := 0; j < 20; j++ {
		if err := appendOne(2000 + j); err != nil {
			t.Fatalf("append after space freed: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open("repo", WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("reopen has %d records, oracle %d — manifest-swap fault corrupted the store", len(got), len(oracle))
	}
	st, err := r2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) < 2 {
		t.Fatalf("roll never completed after recovery: %+v", st.Segments)
	}
}
