package metadata

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func seedRepo(t *testing.T) *Repository {
	t.Helper()
	r := NewMem()
	// 3 persons × 20 frames of emotion observations with known values,
	// plus two interval events.
	for f := 0; f < 20; f++ {
		for p := 0; p < 3; p++ {
			label := "neutral"
			if p == 0 && f >= 10 {
				label = "happy"
			}
			if _, err := r.Append(Record{
				Kind: KindObservation, Frame: f, FrameEnd: f + 1,
				Time:   time.Duration(f) * 40 * time.Millisecond,
				Person: p, Other: -1, Label: label,
				Value: float64(f) / 10,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, ev := range []struct{ a, b, s, e int }{
		{0, 2, 5, 12},
		{1, 2, 14, 18},
	} {
		if _, err := r.Append(Record{
			Kind: KindEvent, Frame: ev.s, FrameEnd: ev.e,
			Person: ev.a, Other: ev.b, Label: "eye-contact",
			Value: float64(ev.e - ev.s),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestCount(t *testing.T) {
	r := seedRepo(t)
	n, err := r.Count("label = 'happy'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("count = %d, want 10", n)
	}
	zero, err := r.Count("label = 'nonexistent'")
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("count = %d, want 0", zero)
	}
}

func TestAggregateGroupByLabel(t *testing.T) {
	r := seedRepo(t)
	rows, err := r.Aggregate("kind = observation", AggCount, GroupByLabel)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, row := range rows {
		got[row.Key] = row.N
	}
	if got["happy"] != 10 || got["neutral"] != 50 {
		t.Errorf("group counts = %v", got)
	}
	// Sorted keys.
	for i := 1; i < len(rows); i++ {
		if rows[i].Key < rows[i-1].Key {
			t.Error("rows not key-sorted")
		}
	}
}

func TestAggregateAvgPerPerson(t *testing.T) {
	r := seedRepo(t)
	rows, err := r.Aggregate("kind = observation", AggAvg, GroupByPerson)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Every person sees frames 0..19, values f/10 → mean 0.95.
	for _, row := range rows {
		if math.Abs(row.Value-0.95) > 1e-9 {
			t.Errorf("%s avg = %v, want 0.95", row.Key, row.Value)
		}
	}
}

func TestAggregateMinMaxSum(t *testing.T) {
	r := seedRepo(t)
	max, err := r.Aggregate("label = 'eye-contact'", AggMax, GroupNone)
	if err != nil {
		t.Fatal(err)
	}
	if max[0].Value != 7 {
		t.Errorf("max EC duration = %v, want 7", max[0].Value)
	}
	min, err := r.Aggregate("label = 'eye-contact'", AggMin, GroupNone)
	if err != nil {
		t.Fatal(err)
	}
	if min[0].Value != 4 {
		t.Errorf("min EC duration = %v, want 4", min[0].Value)
	}
	sum, err := r.Aggregate("label = 'eye-contact'", AggSum, GroupByPair)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 2 {
		t.Fatalf("pair rows = %v", sum)
	}
	// Pair keys are unordered-normalised.
	if sum[0].Key != "P1-P3" || sum[1].Key != "P2-P3" {
		t.Errorf("pair keys = %v, %v", sum[0].Key, sum[1].Key)
	}
}

func TestAggregateEmpty(t *testing.T) {
	r := seedRepo(t)
	if _, err := r.Aggregate("label = 'none'", AggMin, GroupNone); !errors.Is(err, ErrEmptyAgg) {
		t.Errorf("empty min err = %v", err)
	}
	rows, err := r.Aggregate("label = 'none'", AggSum, GroupNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Value != 0 {
		t.Errorf("empty sum rows = %v", rows)
	}
	grouped, err := r.Aggregate("label = 'none'", AggSum, GroupByLabel)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != 0 {
		t.Errorf("empty grouped rows = %v", grouped)
	}
	if _, err := r.Aggregate("bogus ===", AggCount, GroupNone); !errors.Is(err, ErrBadQuery) {
		t.Error("bad query should fail")
	}
}

func TestAggregateGroupByKind(t *testing.T) {
	r := seedRepo(t)
	rows, err := r.Aggregate("frame >= 0", AggCount, GroupByKind)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, row := range rows {
		got[row.Key] = row.N
	}
	if got["observation"] != 60 || got["event"] != 2 {
		t.Errorf("kind counts = %v", got)
	}
}

func TestTimeHistogram(t *testing.T) {
	r := seedRepo(t)
	h, err := r.TimeHistogram("kind = observation", 5)
	if err != nil {
		t.Fatal(err)
	}
	// 20 frames × 3 persons in bins of 5 frames → 4 bins × 15.
	if len(h) != 4 {
		t.Fatalf("bins = %v", h)
	}
	for bin, n := range h {
		if n != 15 {
			t.Errorf("bin %d = %d, want 15", bin, n)
		}
	}
	if _, err := r.TimeHistogram("frame >= 0", 0); !errors.Is(err, ErrBadQuery) {
		t.Error("zero bin width should fail")
	}
}

func TestFrameEndIntervalQuery(t *testing.T) {
	r := seedRepo(t)
	// Events overlapping frame window [10, 15): interval [s,e) overlaps
	// iff s < 15 AND e > 10.
	got, err := r.Query("kind = event AND frame < 15 AND frameend > 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("overlapping events = %d, want 2 (%v)", len(got), got)
	}
	// Narrower window [18, 20) overlaps nothing... the second event is
	// [14,18) which does NOT overlap (end exclusive).
	got, err = r.Query("kind = event AND frame < 20 AND frameend > 18")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("events past 18 = %v", got)
	}
}

// TestAggregateNumericKeyOrder pins the participant-index sort: with
// ten or more people a lexical sort would slot P10 between P1 and P2,
// and P10-P12 pair keys would likewise shuffle — scenes that size are
// exactly what GroupByPerson/GroupByPair serve.
func TestAggregateNumericKeyOrder(t *testing.T) {
	r := NewMem()
	defer r.Close()
	const persons = 12
	for p := 0; p < persons; p++ {
		if _, err := r.Append(obs(p, p, "crowd", 1)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := r.Aggregate("label = 'crowd'", AggCount, GroupByPerson)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != persons {
		t.Fatalf("rows = %d, want %d", len(rows), persons)
	}
	for i, row := range rows {
		if want := fmt.Sprintf("P%d", i+1); row.Key != want {
			t.Fatalf("row %d key = %s, want %s (numeric order)", i, row.Key, want)
		}
	}
	// Pairs: P1-P2, P1-P11, P3-P4, P10-P12 must come out in index order,
	// not the lexical P1-P11 < P1-P2 < P10-P12 < P3-P4.
	for _, pair := range [][2]int{{0, 1}, {0, 10}, {2, 3}, {9, 11}} {
		if _, err := r.Append(Record{
			Kind: KindEvent, Frame: 1, FrameEnd: 2,
			Person: pair[0], Other: pair[1], Label: "eye-contact", Value: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := r.Aggregate("label = 'eye-contact'", AggCount, GroupByPair)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := []string{"P1-P2", "P1-P11", "P3-P4", "P10-P12"}
	if len(pairs) != len(wantPairs) {
		t.Fatalf("pair rows = %v", pairs)
	}
	for i, row := range pairs {
		if row.Key != wantPairs[i] {
			t.Fatalf("pair row %d = %s, want %s (numeric order)", i, row.Key, wantPairs[i])
		}
	}
}

func TestAggOpStrings(t *testing.T) {
	for _, op := range []AggOp{AggCount, AggSum, AggAvg, AggMin, AggMax, AggOp(99)} {
		if op.String() == "" {
			t.Error("operator should render")
		}
	}
}
