package metadata

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/vfs"
)

// noFlockFS returns a FaultFS that refuses flock, forcing Open onto
// the lease-file fallback path regardless of platform.
func noFlockFS() *vfs.FaultFS {
	f := vfs.NewFaultFS()
	f.NoFlock = true
	return f
}

// writeLockFile plants a LOCK file with arbitrary content, as a
// crashed previous owner would have left it.
func writeLockFile(t *testing.T, fsys vfs.FS, dir, content string) {
	t.Helper()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if content != "" {
		if _, err := f.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// stubPidAlive overrides the liveness probe for the test's duration.
func stubPidAlive(t *testing.T, alive bool) {
	t.Helper()
	orig := pidAlive
	pidAlive = func(int) bool { return alive }
	t.Cleanup(func() { pidAlive = orig })
}

func TestLeaseFallbackExcludesSecondWriter(t *testing.T) {
	fsys := noFlockFS()
	dir := t.TempDir()
	r, err := Open(dir, WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	// The lease file records our pid.
	if pid, ok := leasePid(fsys, filepath.Join(dir, lockName)); !ok || pid != os.Getpid() {
		t.Fatalf("lease pid = %d ok=%v, want own pid %d", pid, ok, os.Getpid())
	}
	if _, err := Open(dir, WithFS(fsys)); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writer err = %v, want ErrLocked", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close removed the lease; reopening succeeds.
	r2, err := Open(dir, WithFS(fsys))
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	r2.Close()
}

// TestLeaseStaleTakeover is the regression test for the wedged-LOCK
// bug: a process killed while holding the O_EXCL lease used to wedge
// every later open permanently. A dead owner's lease is now detected
// and taken over.
func TestLeaseStaleTakeover(t *testing.T) {
	fsys := noFlockFS()
	dir := t.TempDir()
	writeLockFile(t, fsys, dir, "pid 999999\n")
	stubPidAlive(t, false)

	r, err := Open(dir, WithFS(fsys))
	if err != nil {
		t.Fatalf("Open over stale lease: %v", err)
	}
	if _, err := r.Append(obs(1, 0, "happy", 1)); err != nil {
		t.Fatal(err)
	}
	// The takeover re-owned the lease under our pid.
	if pid, ok := leasePid(fsys, filepath.Join(dir, lockName)); !ok || pid != os.Getpid() {
		t.Fatalf("lease pid after takeover = %d ok=%v", pid, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseLiveOwnerStillExcludes(t *testing.T) {
	fsys := noFlockFS()
	dir := t.TempDir()
	writeLockFile(t, fsys, dir, "pid 999999\n")
	stubPidAlive(t, true)
	if _, err := Open(dir, WithFS(fsys)); !errors.Is(err, ErrLocked) {
		t.Fatalf("Open under live owner err = %v, want ErrLocked", err)
	}
}

// TestLeasePidlessTakeover covers the crash window between the O_EXCL
// create and the pid write: the file exists but is empty. After the
// grace re-read it is treated as stale and taken over.
func TestLeasePidlessTakeover(t *testing.T) {
	fsys := noFlockFS()
	dir := t.TempDir()
	writeLockFile(t, fsys, dir, "")
	stubPidAlive(t, true) // liveness must not even be consulted

	r, err := Open(dir, WithFS(fsys))
	if err != nil {
		t.Fatalf("Open over pid-less lease: %v", err)
	}
	r.Close()
}

// TestLeaseCloseAfterTakeoverLeavesNewOwner: an ousted owner's Close
// must not delete a lease that has since been taken over by another
// process — that would re-open the door to a third writer.
func TestLeaseCloseAfterTakeoverLeavesNewOwner(t *testing.T) {
	fsys := noFlockFS()
	dir := t.TempDir()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := lockLease(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a takeover: the LOCK file now records another owner.
	path := filepath.Join(dir, lockName)
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	writeLockFile(t, fsys, dir, "pid 424242\n")
	if err := c.Close(); err != nil {
		t.Fatalf("Close after takeover: %v", err)
	}
	if pid, ok := leasePid(fsys, path); !ok || pid != 424242 {
		t.Fatalf("lease pid after ousted Close = %d ok=%v, want the takeover winner's 424242 intact", pid, ok)
	}

	// A vanished lease file (taken over and already re-released) is a
	// clean close too.
	c2, err := lockLease(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close after lease vanished: %v", err)
	}
}

func TestWithLockWaitOutlastsHolder(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		r.Close()
	}()
	r2, err := Open(dir, WithLockWait(context.Background(), 5*time.Second))
	if err != nil {
		t.Fatalf("Open with lock wait: %v", err)
	}
	r2.Close()
}

func TestWithLockWaitTimeoutAndCancel(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Budget exhausted: ErrLocked surfaces.
	if _, err := Open(dir, WithLockWait(context.Background(), 20*time.Millisecond)); !errors.Is(err, ErrLocked) {
		t.Fatalf("timeout err = %v, want ErrLocked", err)
	}

	// Context cancelled mid-wait: both the cause and ErrLocked chain.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = Open(dir, WithLockWait(ctx, 5*time.Second))
	if !errors.Is(err, ErrLocked) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancel err = %v, want ErrLocked and DeadlineExceeded in chain", err)
	}
}

// TestLeaseTakeoverSingleWinner races contenders over one stale lease:
// the rename-claim protocol must admit exactly one.
func TestLeaseTakeoverSingleWinner(t *testing.T) {
	fsys := noFlockFS()
	dir := t.TempDir()
	writeLockFile(t, fsys, dir, "pid 999999\n")
	stubPidAlive(t, false)

	const contenders = 8
	type result struct {
		r   *Repository
		err error
	}
	results := make(chan result, contenders)
	for i := 0; i < contenders; i++ {
		go func() {
			r, err := Open(dir, WithFS(fsys))
			results <- result{r, err}
		}()
	}
	var won int
	for i := 0; i < contenders; i++ {
		res := <-results
		if res.err == nil {
			won++
			defer res.r.Close()
		} else if !errors.Is(res.err, ErrLocked) {
			t.Fatalf("contender err = %v, want nil or ErrLocked", res.err)
		}
	}
	if won != 1 {
		t.Fatalf("%d contenders won the stale lease, want exactly 1", won)
	}
}
