package metadata

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/vfs"
)

// The crash-consistency matrix: run a representative workload
// (appends, rolls/seals, manifest swaps, compactions) on a FaultFS,
// snapshot the filesystem before *every* counted operation, then for
// each snapshot simulate a power cut (with and without a torn tail)
// and reopen, asserting the recovery invariants:
//
//  1. the recovered records are a byte-identical prefix of the oracle
//     (append order, IDs, payloads — nothing reordered or mutated);
//  2. records sealed at snapshot time are never lost;
//  3. under SyncAlways every acknowledged record survives;
//  4. the reopened store is fully writable and a post-crash append is
//     itself durable across another reopen.
//
// Invariant "the manifest is consistent" is implicit: any torn or
// contradictory manifest fails Open, which the matrix treats as a
// failure at that point.

// crashPoint is one snapshot of the filesystem just before counted
// operation n, tagged with what the store had acknowledged by then.
type crashPoint struct {
	n        int
	op       vfs.Op
	path     string
	snap     *vfs.FaultFS
	acked    int // records acknowledged (Append returned) before op n
	sealedLB int // lower bound on records sealed before op n
}

// crashWorkload drives appends with small segments (forcing rolls and
// seals) and two compactions, recording a crashPoint per counted op.
// Returns the points and the oracle (every acknowledged record, in
// order).
func crashWorkload(t *testing.T, policy SyncPolicy) ([]crashPoint, []Record) {
	t.Helper()
	fsys := vfs.NewFaultFS()
	var points []crashPoint
	acked, sealedLB := 0, 0
	fsys.OnOp = func(n int, op vfs.Op, path string, snap *vfs.FaultFS) {
		points = append(points, crashPoint{n: n, op: op, path: path, snap: snap, acked: acked, sealedLB: sealedLB})
	}
	r, err := Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Record
	for i := 0; i < 120; i++ {
		rec := obs(i, i%3, "crash", 1)
		id, err := r.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		rec.ID = id
		oracle = append(oracle, rec)
		acked = len(oracle)
		st, err := r.Stats()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range st.Segments {
			if s.Sealed {
				n += s.Records
			}
		}
		sealedLB = n
		if i == 50 || i == 100 {
			if err := r.Compact(); err != nil {
				t.Fatalf("compact at %d: %v", i, err)
			}
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	fsys.OnOp = nil
	if len(points) == 0 {
		t.Fatal("workload produced no fault points")
	}
	return points, oracle
}

func TestCrashConsistencyMatrix(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncOnSeal} {
		name := map[SyncPolicy]string{SyncAlways: "SyncAlways", SyncOnSeal: "SyncOnSeal"}[policy]
		t.Run(name, func(t *testing.T) {
			points, oracle := crashWorkload(t, policy)
			for _, torn := range []int{0, 3} {
				for _, pt := range points {
					ctx := fmt.Sprintf("op %d (%s %s) torn=%d", pt.n, pt.op, pt.path, torn)
					world := pt.snap.Clone()
					world.Crash(torn)

					r, err := Open("repo", WithFS(world), WithSegmentSize(300), WithSyncPolicy(policy))
					if err != nil {
						t.Fatalf("%s: reopen after crash: %v", ctx, err)
					}
					got := scanAll(t, r)
					if len(got) > len(oracle) {
						t.Fatalf("%s: recovered %d records, more than the %d ever acknowledged", ctx, len(got), len(oracle))
					}
					for i := range got {
						if !reflect.DeepEqual(got[i], oracle[i]) {
							t.Fatalf("%s: recovered record %d = %+v, oracle has %+v", ctx, i, got[i], oracle[i])
						}
					}
					if len(got) < pt.sealedLB {
						t.Fatalf("%s: recovered %d records, fewer than the %d sealed before the crash", ctx, len(got), pt.sealedLB)
					}
					if policy == SyncAlways && len(got) < pt.acked {
						t.Fatalf("%s: recovered %d records, fewer than the %d acknowledged under SyncAlways", ctx, len(got), pt.acked)
					}

					// The survivor is a real store: an append lands and is
					// durable across another reopen.
					probe := obs(9999, 0, "probe", 1)
					id, err := r.Append(probe)
					if err != nil {
						t.Fatalf("%s: post-crash append: %v", ctx, err)
					}
					if err := r.Close(); err != nil {
						t.Fatalf("%s: post-crash close: %v", ctx, err)
					}
					r2, err := Open("repo", WithFS(world), WithSegmentSize(300), WithSyncPolicy(policy))
					if err != nil {
						t.Fatalf("%s: second reopen: %v", ctx, err)
					}
					if got2 := scanAll(t, r2); len(got2) != len(got)+1 || got2[len(got2)-1].ID != id {
						t.Fatalf("%s: post-crash append not durable: %d records, last %+v",
							ctx, len(got2), got2[len(got2)-1])
					}
					if err := r2.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestTransientFaultMatrix re-runs a workload once per counted
// operation with exactly that operation failing (a transient I/O
// error, not a crash): the store must stay open, a single retry of a
// rejected append must succeed, and the final reopen must agree with
// memory exactly — no duplicated and no lost records, whichever
// operation faulted.
func TestTransientFaultMatrix(t *testing.T) {
	// Baseline: count the ops the workload performs.
	base := vfs.NewFaultFS()
	runTransientWorkload(t, base, 0)
	total := base.Ops()
	if total == 0 {
		t.Fatal("baseline workload performed no counted ops")
	}

	for n := 1; n <= total; n++ {
		fsys := vfs.NewFaultFS()
		runTransientWorkload(t, fsys, n)
	}
}

// runTransientWorkload appends 60 records (retrying once on a rejected
// append) with one compaction, then verifies reopen == memory. failAt
// = 0 runs clean; otherwise counted op failAt fails once with ENOSPC.
func runTransientWorkload(t *testing.T, fsys *vfs.FaultFS, failAt int) {
	t.Helper()
	ctx := fmt.Sprintf("failAt=%d", failAt)
	if failAt > 0 {
		fsys.FailOp(failAt, vfs.ErrNoSpace)
	}
	// The fault may land inside Open itself; Open must then fail cleanly
	// (lease released, directory consistent) and a retry must succeed.
	r, err := Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(SyncAlways))
	if err != nil {
		if r, err = Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(SyncAlways)); err != nil {
			t.Fatalf("%s: open failed twice: %v", ctx, err)
		}
	}
	var oracle []Record
	for i := 0; i < 60; i++ {
		rec := obs(i, i%3, "transient", 1)
		id, err := r.Append(rec)
		if err != nil && id == 0 {
			// Rejected (nothing acknowledged): one retry after a
			// transient fault must succeed.
			if id, err = r.Append(rec); err != nil && id == 0 {
				t.Fatalf("%s: append %d failed twice: %v", ctx, i, err)
			}
		}
		// id != 0 with err != nil is an acknowledged record whose
		// durability flush failed — it is in the store and must not be
		// retried (that would duplicate it); the next append repairs.
		rec.ID = id
		oracle = append(oracle, rec)
		if i == 30 {
			// A transient fault may fail this compaction; that must not
			// harm the store (later appends and the final check prove it).
			_ = r.Compact()
		}
	}
	if err := r.Sync(); err != nil {
		// Sync after the faulted op repairs; a second attempt must work.
		if err := r.Sync(); err != nil {
			t.Fatalf("%s: sync failed twice: %v", ctx, err)
		}
	}
	inMem := scanAll(t, r)
	if !reflect.DeepEqual(inMem, oracle) {
		t.Fatalf("%s: memory diverged from oracle", ctx)
	}
	// Everything acknowledged is durable (the Sync above succeeded), so
	// a close error from a fault firing inside Close loses nothing.
	_ = r.Close()
	r2, err := Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(SyncAlways))
	if err != nil {
		if r2, err = Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(SyncAlways)); err != nil {
			t.Fatalf("%s: reopen failed twice: %v", ctx, err)
		}
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("%s: reopen lost or duplicated records: %d vs %d", ctx, len(got), len(oracle))
	}
}
