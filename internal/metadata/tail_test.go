package metadata

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func tailRecord(i int, label string) Record {
	return Record{
		Kind:     KindObservation,
		Frame:    i,
		FrameEnd: i + 1,
		Person:   i % 4,
		Other:    -1,
		Label:    label,
		Value:    float64(i),
	}
}

// TestTailCursorHistoryThenLive pins the watermark contract: records
// appended before Tail arrive from the history scan, records appended
// after arrive live, exactly once each and in ID order across the seam.
func TestTailCursorHistoryThenLive(t *testing.T) {
	r := NewMem()
	defer r.Close()
	for i := 0; i < 50; i++ {
		label := "hit"
		if i%2 == 1 {
			label = "miss"
		}
		if _, err := r.Append(tailRecord(i, label)); err != nil {
			t.Fatal(err)
		}
	}
	expr, follow, err := ParseFollow("label = 'hit' FOLLOW")
	if err != nil || !follow {
		t.Fatalf("ParseFollow: follow=%v err=%v", follow, err)
	}
	cur, err := r.Tail(expr, TailOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 50; i < 100; i++ {
		label := "hit"
		if i%2 == 1 {
			label = "miss"
		}
		if _, err := r.Append(tailRecord(i, label)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	want := 0
	for got := 0; got < 50; got++ {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("Next #%d: %v", got, err)
		}
		if rec.Frame != want || rec.Label != "hit" {
			t.Fatalf("record #%d = frame %d %q, want frame %d \"hit\"", got, rec.Frame, rec.Label, want)
		}
		want += 2
	}
	// Nothing further is pending: Next must block until cancelled.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := cur.Next(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drained cursor returned %v, want deadline exceeded", err)
	}
	// A context error is not terminal; the cursor resumes.
	if _, err := r.Append(tailRecord(100, "hit")); err != nil {
		t.Fatal(err)
	}
	rec, err := cur.Next(ctx)
	if err != nil || rec.Frame != 100 {
		t.Fatalf("post-cancel Next = (%v, %v), want frame 100", rec.Frame, err)
	}
}

// TestTailCursorLagging pins the overflow contract: a consumer that
// stops draining gets the buffered prefix, then ErrLagging.
func TestTailCursorLagging(t *testing.T) {
	r := NewMem()
	defer r.Close()
	expr, _, err := ParseFollow("label = 'hit'")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := r.Tail(expr, TailOpts{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 10; i++ {
		if _, err := r.Append(tailRecord(i, "hit")); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("buffered Next #%d: %v", i, err)
		}
		if rec.Frame != i {
			t.Fatalf("buffered record %d = frame %d", i, rec.Frame)
		}
	}
	if _, err := cur.Next(ctx); !errors.Is(err, ErrLagging) {
		t.Fatalf("overflowed cursor returned %v, want ErrLagging", err)
	}
	if !errors.Is(cur.Err(), ErrLagging) {
		t.Fatalf("Err() = %v, want ErrLagging", cur.Err())
	}
	// The dropped subscription must be gone from the registry.
	r.mu.RLock()
	n := len(r.subs)
	r.mu.RUnlock()
	if n != 0 {
		t.Fatalf("%d subscribers still registered after overflow", n)
	}
}

// TestTailCursorRepoClose: closing the repository terminates cursors
// with ErrClosed after they drain what was already queued.
func TestTailCursorRepoClose(t *testing.T) {
	r := NewMem()
	expr, err := Parse("label = 'hit'")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := r.Tail(expr, TailOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := r.Append(tailRecord(0, "hit")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rec, err := cur.Next(ctx)
	if err != nil || rec.Frame != 0 {
		t.Fatalf("pre-close record: (%v, %v)", rec.Frame, err)
	}
	if _, err := cur.Next(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed repo cursor returned %v, want ErrClosed", err)
	}
	if _, err := r.Tail(expr, TailOpts{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Tail on closed repo = %v, want ErrClosed", err)
	}
}

// TestTailCursorSurvivesRollAndCompactUnderLoad extends the PR 3/6
// compact-under-load harness to the CDC path: while a writer appends
// through multiple active-segment rolls and a second goroutine drives
// incremental 3-phase Compacts, a tail cursor subscribed before the
// first append must deliver every matching record exactly once, in
// order, with no torn values. Run under -race by check.sh.
func TestTailCursorSurvivesRollAndCompactUnderLoad(t *testing.T) {
	dir := t.TempDir()
	// 4 KiB segments force many rolls over the run.
	r, err := Open(dir, WithSegmentSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const rounds, batch = 40, 25
	const total = rounds * batch
	expr, err := Parse("label = 'happy'")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := r.Tail(expr, TailOpts{Buffer: 2 * total})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	var wantMatches int
	for i := 0; i < total; i++ {
		if stressRecord(i).Label == "happy" {
			wantMatches++
		}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for b := 0; b < rounds; b++ {
			recs := make([]Record, batch)
			for i := range recs {
				recs[i] = stressRecord(b*batch + i)
			}
			if err := r.AppendBatch(recs); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := r.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var got []Record
	for len(got) < wantMatches {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(got), err)
		}
		got = append(got, rec)
	}
	wg.Wait()

	frame := 0
	var lastID uint64
	for i, rec := range got {
		for stressRecord(frame).Label != "happy" {
			frame++
		}
		if rec.Frame != frame {
			t.Fatalf("match #%d = frame %d, want %d (loss/dup/reorder)", i, rec.Frame, frame)
		}
		checkStressRecord(t, rec)
		if rec.ID <= lastID {
			t.Fatalf("match #%d: ID %d not ascending past %d", i, rec.ID, lastID)
		}
		lastID = rec.ID
		frame++
	}
	// No extra deliveries: the cursor must now be idle.
	idle, cancelIdle := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelIdle()
	if rec, err := cur.Next(idle); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("extra delivery after %d matches: (%+v, %v)", wantMatches, rec, err)
	}
}

// TestIterCloseReleasesWorkers is the goroutine-accounting regression
// test for Iter.Close: abandoning a multi-segment streaming query and
// closing it must deterministically release the scan worker pool.
func TestIterCloseReleasesWorkers(t *testing.T) {
	r := NewMem()
	defer r.Close()
	// > querySegmentSize records so the pool actually spawns workers.
	recs := make([]Record, 3*querySegmentSize)
	for i := range recs {
		recs[i] = stressRecord(i)
	}
	if err := r.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		it, err := r.QueryIter("label = 'happy' OR label = 'sad'", QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := it.Next(); !ok {
			t.Fatal("no first record")
		}
		// Abandon mid-stream; Close must block until workers exit.
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits for its pool synchronously, so no grace loop should be
	// needed; allow a couple of runtime-internal goroutines of slack.
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew %d -> %d after 8 closed queries", before, after)
	}
}

// TestQueryCtxCancel: a cancelled QueryOpts.Ctx stops iteration and
// surfaces the context error via Err.
func TestQueryCtxCancel(t *testing.T) {
	r := NewMem()
	defer r.Close()
	recs := make([]Record, 2*querySegmentSize)
	for i := range recs {
		recs[i] = stressRecord(i)
	}
	if err := r.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	it, err := r.QueryIter("frame >= 0", QueryOpts{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, ok := it.Next(); !ok {
		t.Fatalf("first Next failed: %v", it.Err())
	}
	cancel()
	for i := 0; ; i++ {
		if _, ok := it.Next(); !ok {
			break
		}
		if i > len(recs) {
			t.Fatal("iterator never observed cancellation")
		}
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", it.Err())
	}

	// A context cancelled before the query starts fails fast too.
	it2, err := r.QueryIter("frame >= 0", QueryOpts{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	if _, ok := it2.Next(); ok {
		t.Fatal("pre-cancelled query yielded a record")
	}
	if !errors.Is(it2.Err(), context.Canceled) {
		t.Fatalf("pre-cancelled Err() = %v, want context.Canceled", it2.Err())
	}
}

// TestParseFollowGrammar pins the FOLLOW suffix grammar.
func TestParseFollowGrammar(t *testing.T) {
	cases := []struct {
		q      string
		follow bool
		ok     bool
	}{
		{"label = 'alert'", false, true},
		{"label = 'alert' FOLLOW", true, true},
		{"label = 'alert' follow", true, true},
		{"frame > 10 AND person = 2 FOLLOW", true, true},
		{"label = 'alert' FOLLOW junk", false, false},
		{"FOLLOW", false, false},
	}
	for _, c := range cases {
		expr, follow, err := ParseFollow(c.q)
		if c.ok && (err != nil || expr == nil) {
			t.Errorf("ParseFollow(%q) err = %v", c.q, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseFollow(%q) succeeded, want error", c.q)
			}
			continue
		}
		if follow != c.follow {
			t.Errorf("ParseFollow(%q) follow = %v, want %v", c.q, follow, c.follow)
		}
	}
}

// TestTailManySubscribers: multiple concurrent cursors each see the
// full matching stream independently.
func TestTailManySubscribers(t *testing.T) {
	r := NewMem()
	defer r.Close()
	expr, err := Parse("person = 1")
	if err != nil {
		t.Fatal(err)
	}
	const nSubs, total = 4, 400
	curs := make([]*TailCursor, nSubs)
	for i := range curs {
		c, err := r.Tail(expr, TailOpts{Buffer: total})
		if err != nil {
			t.Fatal(err)
		}
		curs[i] = c
		defer c.Close()
	}
	var consWG sync.WaitGroup
	errCh := make(chan error, nSubs)
	for _, c := range curs {
		consWG.Add(1)
		go func(c *TailCursor) {
			defer consWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			// person = 1 is 1-based in the grammar: P1 == Person 0,
			// i.e. frames 0, 4, 8, …
			want := 0
			for n := 0; n < total/4; n++ {
				rec, err := c.Next(ctx)
				if err != nil {
					errCh <- err
					return
				}
				if rec.Frame != want {
					errCh <- fmt.Errorf("subscriber got frame %d, want %d", rec.Frame, want)
					return
				}
				want += 4
			}
		}(c)
	}
	for i := 0; i < total; i++ {
		if _, err := r.Append(stressRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	consWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
