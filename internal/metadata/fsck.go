package metadata

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/vfs"
)

// Offline integrity checking (dieventql -fsck). Fsck verifies a
// repository without opening it: the manifest parses and its CRC
// holds, every sealed segment decodes strictly (each record's length
// and checksum) and matches the manifest's byte/record counts, and
// the active segment's valid prefix is measured. It never mutates the
// store, so it can run against damage that strict Open refuses — the
// report lists exactly which sealed segments WithQuarantine would
// isolate.

// FsckSegment is one file's verification result.
type FsckSegment struct {
	// Name is the file checked (a segment, or MANIFEST itself when the
	// manifest is the problem).
	Name string
	// Sealed reports the manifest's view of the segment.
	Sealed bool
	// Records and Bytes are the decoded record count and verified
	// prefix length.
	Records int
	Bytes   int64
	// Err is the verification failure; empty when the file is intact.
	// A sealed segment with Err set is quarantinable (WithQuarantine).
	Err string
	// Note reports non-fatal findings: a torn active tail that open
	// would truncate, a legacy layout awaiting migration.
	Note string
}

// FsckReport is the result of an offline repository check.
type FsckReport struct {
	// Segments lists per-file results in manifest order.
	Segments []FsckSegment
	// Records is the total number of records that decoded cleanly.
	Records int
}

// Clean reports whether every file verified.
func (r *FsckReport) Clean() bool {
	for _, s := range r.Segments {
		if s.Err != "" {
			return false
		}
	}
	return true
}

// Quarantinable lists the sealed segments WithQuarantine would
// isolate on the next open.
func (r *FsckReport) Quarantinable() []string {
	var out []string
	for _, s := range r.Segments {
		if s.Sealed && s.Err != "" {
			out = append(out, s.Name)
		}
	}
	return out
}

// Fsck verifies the repository in dir offline. It takes the shared
// (read) lease so it never races a live writer; where flock is
// unsupported it instead probes the writer's LOCK lease file and
// refuses to run while a live owner holds it. A writer-held directory
// fails with ErrLocked. Damage is reported, not returned: the error
// return covers only environmental failures (lock, I/O on the
// directory itself).
func Fsck(dir string) (*FsckReport, error) { return fsck(vfs.OS, dir) }

// fsck is Fsck over an explicit filesystem (tests inject a FaultFS).
func fsck(fsys vfs.FS, dir string) (*FsckReport, error) {
	if c, err := fsys.Flock(dir, false); err == nil {
		defer c.Close()
	} else if errors.Is(err, vfs.ErrLockHeld) {
		return nil, fmt.Errorf("metadata: fsck %s: writer active: %w", dir, ErrLocked)
	} else if !errors.Is(err, errors.ErrUnsupported) {
		return nil, fmt.Errorf("metadata: fsck %s: %w", dir, err)
	} else if pid, ok := leasePid(fsys, filepath.Join(dir, lockName)); ok && pidAlive(pid) {
		// No flock available: the best we can do is probe the
		// lease-file protocol writers fall back to on the same builds.
		return nil, fmt.Errorf("metadata: fsck %s: writer active (pid %d): %w", dir, pid, ErrLocked)
	}

	rep := &FsckReport{}
	segs, haveManifest, err := readManifest(fsys, dir)
	if err != nil {
		rep.Segments = append(rep.Segments, FsckSegment{Name: manifestName, Err: err.Error()})
		return rep, nil
	}
	if !haveManifest {
		// No manifest: an empty or legacy directory is fine; segments
		// beyond the first mean the manifest was lost (see
		// ensureInitSafe) — that loss is the finding.
		if err := ensureInitSafe(fsys, dir); err != nil {
			rep.Segments = append(rep.Segments, FsckSegment{Name: manifestName, Err: err.Error()})
			return rep, nil
		}
		for _, name := range []string{segFileName(1), legacyLogName} {
			if _, err := fsys.Stat(filepath.Join(dir, name)); errors.Is(err, os.ErrNotExist) {
				continue
			}
			s := fsckLenient(fsys, dir, name)
			s.Note = joinNote(s.Note, "pre-manifest layout (migrated on next writable open)")
			rep.Segments = append(rep.Segments, s)
			rep.Records += s.Records
		}
		return rep, nil
	}
	for _, sm := range segs {
		if sm.sealed {
			s, recs := fsckSealed(fsys, dir, sm)
			rep.Segments = append(rep.Segments, s)
			rep.Records += s.Records
			if st := fsckStats(fsys, dir, sm, recs, s.Err == ""); st != nil {
				rep.Segments = append(rep.Segments, *st)
			}
			continue
		}
		s := fsckLenient(fsys, dir, sm.name)
		rep.Segments = append(rep.Segments, s)
		rep.Records += s.Records
	}
	return rep, nil
}

// fsckSealed strictly verifies one sealed segment against its
// manifest entry, returning the decoded records for the statistics
// cross-check (nil when the segment itself failed).
func fsckSealed(fsys vfs.FS, dir string, sm segMeta) (FsckSegment, []Record) {
	s := FsckSegment{Name: sm.name, Sealed: true}
	path := filepath.Join(dir, sm.name)
	if _, err := fsys.Stat(path); errors.Is(err, os.ErrNotExist) {
		s.Err = "segment file missing"
		return s, nil
	} else if err != nil {
		s.Err = err.Error()
		return s, nil
	}
	recs, valid, err := decodeSegment(fsys, path, true)
	if err != nil {
		s.Err = err.Error()
		return s, nil
	}
	s.Records, s.Bytes = len(recs), valid
	switch {
	case len(recs) != sm.count:
		s.Err = fmt.Sprintf("manifest expects %d records, decoded %d", sm.count, len(recs))
	case valid != sm.bytes:
		s.Err = fmt.Sprintf("manifest expects %d bytes, verified %d", sm.bytes, valid)
	}
	return s, recs
}

// fsckStats verifies a sealed segment's statistics sidecar: the file
// decodes, its CRC matches the manifest's sts= reference, and (when the
// segment itself decoded cleanly) its contents equal a deterministic
// rebuild from the decoded records. Absent statistics on a pre-stats
// manifest entry are only a note on nil return or a row when a stray
// unreferenced sidecar exists. Sidecar rows report Sealed=false so they
// are damage (Clean() = false, exit 1) but never quarantinable — the
// segment's records are fine and a writable open regenerates the
// sidecar.
func fsckStats(fsys vfs.FS, dir string, sm segMeta, recs []Record, segOK bool) *FsckSegment {
	name := statsFileName(sm.name)
	path := filepath.Join(dir, name)
	if !sm.hasStats {
		if _, err := fsys.Stat(path); err == nil {
			return &FsckSegment{Name: name,
				Note: "unreferenced statistics sidecar (removed on next writable open)"}
		}
		return &FsckSegment{Name: name,
			Note: "no statistics sidecar (generated on next writable open)"}
	}
	s := &FsckSegment{Name: name}
	regen := "; regenerated on next writable open"
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.Err = "statistics sidecar missing" + regen
		return s
	} else if err != nil {
		s.Err = err.Error()
		return s
	}
	s.Bytes = int64(len(data))
	st, err := decodeStats(data)
	if err != nil {
		s.Err = err.Error() + regen
		return s
	}
	if got := statsCRCOf(data); got != sm.statsCRC {
		s.Err = fmt.Sprintf("sidecar version %08x, manifest expects %08x%s", got, sm.statsCRC, regen)
		return s
	}
	if !segOK {
		s.Note = "segment failed verification; statistics not cross-checked"
		return s
	}
	if !bytes.Equal(encodeStats(statsOfRecords(recs)), encodeStats(st)) {
		s.Err = "statistics diverge from segment contents" + regen
	}
	return s
}

// fsckLenient measures a segment's valid prefix (the active segment,
// or a pre-manifest file), noting a torn tail open would truncate.
func fsckLenient(fsys vfs.FS, dir, name string) FsckSegment {
	s := FsckSegment{Name: name}
	path := filepath.Join(dir, name)
	info, err := fsys.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return s // an absent active segment replays as empty
	} else if err != nil {
		s.Err = err.Error()
		return s
	}
	recs, valid, err := decodeSegment(fsys, path, false)
	if err != nil {
		s.Err = err.Error()
		return s
	}
	s.Records, s.Bytes = len(recs), valid
	if torn := info.Size() - valid; torn > 0 {
		s.Note = fmt.Sprintf("torn tail: %d trailing byte(s) beyond the valid prefix (truncated on next writable open)", torn)
	}
	return s
}

func joinNote(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}
