package metadata

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"
)

// Record wire format (little-endian), one record per log entry:
//
//	length  uint32  — payload length (excluding length and crc)
//	payload:
//	  id       uint64
//	  kind     uint8
//	  frame    int64
//	  frameEnd int64
//	  timeNs   int64
//	  person   int32
//	  other    int32
//	  value    float64
//	  labelLen uint8, label bytes
//	  tagCount uint16, tagCount × (kLen uint8, k, vLen uint16, v)
//	crc     uint32 — CRC-32 (IEEE) of payload
//
// The length prefix lets recovery skip to the next entry; the CRC
// detects torn or bit-rotted writes.

// appendRecord encodes r into buf (reusing capacity) and returns it.
func appendRecord(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	p := len(buf)

	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:8]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}

	put64(r.ID)
	buf = append(buf, uint8(r.Kind))
	put64(uint64(int64(r.Frame)))
	put64(uint64(int64(r.FrameEnd)))
	put64(uint64(r.Time.Nanoseconds()))
	put32(uint32(int32(r.Person)))
	put32(uint32(int32(r.Other)))
	put64(math.Float64bits(r.Value))
	buf = append(buf, uint8(len(r.Label)))
	buf = append(buf, r.Label...)

	keys := make([]string, 0, len(r.Tags))
	for k := range r.Tags {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic encoding
	var t16 [2]byte
	binary.LittleEndian.PutUint16(t16[:], uint16(len(keys)))
	buf = append(buf, t16[:]...)
	for _, k := range keys {
		v := r.Tags[k]
		buf = append(buf, uint8(len(k)))
		buf = append(buf, k...)
		binary.LittleEndian.PutUint16(t16[:], uint16(len(v)))
		buf = append(buf, t16[:]...)
		buf = append(buf, v...)
	}

	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(payload)
	var c4 [4]byte
	binary.LittleEndian.PutUint32(c4[:], crc)
	return append(buf, c4[:]...)
}

// maxEntry bounds a single entry so recovery never allocates absurd
// buffers from a corrupt length prefix.
const maxEntry = 1 << 20

// readRecord decodes the next record from r. It returns io.EOF cleanly
// at end of stream and ErrCorrupt (wrapped) for any malformed entry.
func readRecord(r io.Reader) (Record, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("metadata: entry header: %w", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxEntry {
		return Record{}, fmt.Errorf("metadata: entry length %d: %w", n, ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("metadata: entry payload: %w", ErrCorrupt)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return Record{}, fmt.Errorf("metadata: entry crc: %w", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return Record{}, fmt.Errorf("metadata: entry checksum: %w", ErrCorrupt)
	}
	return decodePayload(payload)
}

func decodePayload(p []byte) (Record, error) {
	var rec Record
	off := 0
	need := func(n int) bool { return off+n <= len(p) }
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(p[off:])
		off += 8
		return v
	}
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(p[off:])
		off += 4
		return v
	}
	if !need(8 + 1 + 8 + 8 + 8 + 4 + 4 + 8 + 1) {
		return rec, fmt.Errorf("metadata: short payload: %w", ErrCorrupt)
	}
	rec.ID = u64()
	rec.Kind = Kind(p[off])
	off++
	rec.Frame = int(int64(u64()))
	rec.FrameEnd = int(int64(u64()))
	rec.Time = time.Duration(int64(u64()))
	rec.Person = int(int32(u32()))
	rec.Other = int(int32(u32()))
	rec.Value = math.Float64frombits(u64())
	lblLen := int(p[off])
	off++
	if !need(lblLen + 2) {
		return rec, fmt.Errorf("metadata: truncated label: %w", ErrCorrupt)
	}
	rec.Label = string(p[off : off+lblLen])
	off += lblLen
	tagCount := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if tagCount > 0 {
		rec.Tags = make(map[string]string, tagCount)
	}
	for i := 0; i < tagCount; i++ {
		if !need(1) {
			return rec, fmt.Errorf("metadata: truncated tag: %w", ErrCorrupt)
		}
		kl := int(p[off])
		off++
		if !need(kl + 2) {
			return rec, fmt.Errorf("metadata: truncated tag key: %w", ErrCorrupt)
		}
		k := string(p[off : off+kl])
		off += kl
		vl := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if !need(vl) {
			return rec, fmt.Errorf("metadata: truncated tag value: %w", ErrCorrupt)
		}
		rec.Tags[k] = string(p[off : off+vl])
		off += vl
	}
	if off != len(p) {
		return rec, fmt.Errorf("metadata: %d trailing payload bytes: %w", len(p)-off, ErrCorrupt)
	}
	return rec, nil
}
