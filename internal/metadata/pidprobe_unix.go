//go:build unix

package metadata

import (
	"errors"
	"os"
	"syscall"
)

// pidAliveImpl probes whether a pid belongs to a live process. Signal
// 0 performs permission and existence checks without delivering
// anything; EPERM still proves the process exists.
func pidAliveImpl(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, os.ErrPermission)
}
