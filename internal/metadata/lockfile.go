package metadata

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/vfs"
)

// Directory leasing. The preferred mechanism is the platform flock
// (vfs.FS.Flock on the directory itself): exclusive for writers,
// shared for read-only opens, crash-released by the kernel. Where
// flock is unsupported (non-unix builds, or a FaultFS configured
// without it) writers fall back to an O_EXCL lease file carrying the
// owner's pid; read-only opens take no lease at all there (they must
// not create files, and an O_EXCL file cannot be shared), so only
// writer-vs-writer exclusion is enforced — see WithReadOnly's caveat.

// staleLockName is the claim-rename target during stale-lease
// takeover; it is also swept as an orphan at Open.
const staleLockName = lockName + ".stale"

// lockDir acquires the directory lease for Open, honouring the
// WithLockWait backoff: a held lease retries with exponential backoff
// (1ms doubling, capped at 50ms) until the wait budget or context
// expires. Without WithLockWait a held lease fails fast with ErrLocked.
func lockDir(fsys vfs.FS, dir string, o options) (io.Closer, error) {
	ctx := o.lockCtx
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := time.Now().Add(o.lockWait)
	delay := time.Millisecond
	for {
		c, err := tryLockDir(fsys, dir, o.readOnly)
		if err == nil || !errors.Is(err, ErrLocked) {
			return c, err
		}
		if o.lockWait <= 0 || !time.Now().Before(deadline) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("metadata: lock wait cancelled: %w", errors.Join(ctx.Err(), ErrLocked))
		case <-time.After(delay):
		}
		if delay *= 2; delay > 50*time.Millisecond {
			delay = 50 * time.Millisecond
		}
	}
}

// tryLockDir makes one lease attempt: flock when the filesystem
// supports it, else the lease-file fallback (writers only).
func tryLockDir(fsys vfs.FS, dir string, readOnly bool) (io.Closer, error) {
	c, err := fsys.Flock(dir, !readOnly)
	switch {
	case err == nil:
		return c, nil
	case errors.Is(err, vfs.ErrLockHeld):
		return nil, fmt.Errorf("metadata: %s: %w", dir, ErrLocked)
	case errors.Is(err, errors.ErrUnsupported):
		if readOnly {
			return nil, nil
		}
		return lockLease(fsys, dir)
	default:
		return nil, fmt.Errorf("metadata: flock %s: %w", dir, err)
	}
}

// unlockDir releases the lease. Closing a flock handle drops the
// kernel lock; closing a lease removes the LOCK file.
func unlockDir(c io.Closer) error {
	if c == nil {
		return nil
	}
	return c.Close()
}

// pidAlive probes whether a pid belongs to a live process. The
// implementation is platform-gated (pidprobe_*.go): unix uses signal
// 0, elsewhere every pid-bearing lease is treated as live because no
// reliable probe exists. Stubbed by tests.
var pidAlive = pidAliveImpl

// lockLease takes the O_EXCL lease file, writing "pid N\n" so later
// contenders can probe the owner's liveness. A stale lease (owner pid
// dead, or the file never got its pid — a crash inside the create
// window) is taken over: the contender claims it by renaming LOCK to
// LOCK.stale — rename is atomic, so exactly one contender wins even
// when several race — removes the claim and retries the O_EXCL create.
func lockLease(fsys vfs.FS, dir string) (io.Closer, error) {
	path := filepath.Join(dir, lockName)
	for attempt := 0; attempt < 4; attempt++ {
		f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "pid %d\n", os.Getpid())
			if werr == nil {
				werr = f.Sync()
			}
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fsys.Remove(path)
				return nil, fmt.Errorf("metadata: writing lock file: %w", werr)
			}
			return leaseCloser{fsys: fsys, path: path}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("metadata: creating lock file: %w", err)
		}
		if !leaseStale(fsys, path) {
			return nil, fmt.Errorf("metadata: %s: %w", dir, ErrLocked)
		}
		if rerr := fsys.Rename(path, filepath.Join(dir, staleLockName)); rerr != nil {
			continue // lost the claim race (or the holder released); retry
		}
		fsys.Remove(filepath.Join(dir, staleLockName))
	}
	return nil, fmt.Errorf("metadata: lease takeover did not converge: %w", ErrLocked)
}

// leaseStale reports whether the lease file belongs to a dead owner.
// A file without a parseable pid is re-read after a grace period: a
// live creator writes its pid within microseconds of the O_EXCL
// create, so a still-empty file means the creator died inside that
// window.
func leaseStale(fsys vfs.FS, path string) bool {
	pid, ok := leasePid(fsys, path)
	if !ok {
		time.Sleep(10 * time.Millisecond)
		if pid, ok = leasePid(fsys, path); !ok {
			return true
		}
	}
	return pid != os.Getpid() && !pidAlive(pid)
}

// leasePid reads the owner pid recorded in the lease file.
func leasePid(fsys vfs.FS, path string) (int, bool) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var pid int
	if _, err := fmt.Sscanf(string(data), "pid %d", &pid); err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// leaseCloser releases a fallback lease by deleting its LOCK file —
// but only while the file still records this process's pid. If the
// lease was taken over (rightly after a liveness misjudgement, or
// wrongly by a buggy contender), the file now belongs to the new
// owner and deleting it would open the door to a third writer.
type leaseCloser struct {
	fsys vfs.FS
	path string
}

func (l leaseCloser) Close() error {
	data, err := l.fsys.ReadFile(l.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // taken over and already re-released
	}
	if err != nil {
		return fmt.Errorf("metadata: releasing lock file: %w", err)
	}
	var pid int
	if _, err := fmt.Sscanf(string(data), "pid %d", &pid); err != nil || pid != os.Getpid() {
		return nil // the file belongs to a takeover winner, not us
	}
	return l.fsys.Remove(l.path)
}
