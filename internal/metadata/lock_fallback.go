//go:build !unix

package metadata

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDir on platforms without flock falls back to an O_EXCL lease
// file for writers: creation fails while another holder exists. Unlike
// flock the lease is not crash-released — a crashed process leaves a
// stale LOCK that must be removed by hand — but it still prevents two
// live processes from interleaving appends. Read-only opens take no
// lease at all on these platforms (they must not create files, and an
// O_EXCL file cannot be shared), so only writer-vs-writer exclusion is
// enforced.
func lockDir(dir string, shared bool) (*os.File, error) {
	if shared {
		return nil, nil
	}
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if os.IsExist(err) {
		return nil, fmt.Errorf("metadata: %s: %w", dir, ErrLocked)
	}
	if err != nil {
		return nil, fmt.Errorf("metadata: creating lock file: %w", err)
	}
	return f, nil
}

// unlockDir releases the lease by removing the file.
func unlockDir(f *os.File) error {
	if f == nil {
		return nil
	}
	name := f.Name()
	err := f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	return err
}
