package metadata

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// stressRecord builds a self-consistent record: every field is a pure
// function of frame, so a reader can detect torn reads field-by-field.
func stressRecord(frame int) Record {
	return Record{
		Kind:     KindObservation,
		Frame:    frame,
		FrameEnd: frame + 1,
		Time:     time.Duration(frame) * 40 * time.Millisecond,
		Person:   frame % 4,
		Other:    -1,
		Label:    []string{"happy", "sad", "neutral"}[frame%3],
		Value:    float64(frame%97) / 97,
	}
}

func checkStressRecord(t *testing.T, rec Record) {
	t.Helper()
	want := stressRecord(rec.Frame)
	if rec.FrameEnd != want.FrameEnd || rec.Time != want.Time ||
		rec.Person != want.Person || rec.Label != want.Label ||
		rec.Value != want.Value {
		t.Errorf("torn record observed: %+v", rec)
	}
}

// TestStressConcurrentAppendQueryCompact hammers one durable repository
// with concurrent AppendBatch writers, streaming QueryIter readers and a
// Compact loop. Run under -race (scripts/check.sh does). Readers must
// never observe torn records, and an OrderID cursor must never yield
// out-of-order or duplicate IDs.
func TestStressConcurrentAppendQueryCompact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: check.sh runs the stress in its own -race pass")
	}
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const (
		writers   = 2
		batches   = 60
		batchSize = 40
	)
	var wg sync.WaitGroup
	writersDone := make(chan struct{})

	// Writers: disjoint frame ranges, batched appends.
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		wwg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer wwg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Record, batchSize)
				for i := range batch {
					batch[i] = stressRecord(w*1000000 + b*batchSize + i)
				}
				if err := r.AppendBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	go func() { wwg.Wait(); close(writersDone) }()

	// Compactor: rewrite the log continuously while everyone else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			if err := r.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Streaming readers: full OrderID cursors assert monotone IDs and
	// untorn fields; OrderFrame cursors with limits exercise the merge
	// and early Close (cancellation) paths.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-writersDone:
					if round > 0 {
						return
					}
				default:
				}
				it, err := r.QueryIter("label = 'happy' AND frame >= 0", QueryOpts{Order: OrderID})
				if err != nil {
					t.Error(err)
					return
				}
				var last uint64
				n := 0
				for {
					rec, ok := it.Next()
					if !ok {
						break
					}
					if rec.ID <= last {
						t.Errorf("OrderID cursor went backwards: %d after %d", rec.ID, last)
						it.Close()
						return
					}
					last = rec.ID
					checkStressRecord(t, rec)
					n++
				}
				if err := it.Close(); err != nil {
					t.Error(err)
					return
				}

				it2, err := r.QueryIter("person = 2 AND frame < 500000", QueryOpts{Order: OrderFrame, Limit: 5})
				if err != nil {
					t.Error(err)
					return
				}
				for {
					rec, ok := it2.Next()
					if !ok {
						break
					}
					checkStressRecord(t, rec)
				}
				it2.Close()

				// Abandon a cursor mid-stream: Close must cancel cleanly.
				it3, err := r.QueryIter("frame >= 0", QueryOpts{})
				if err != nil {
					t.Error(err)
					return
				}
				it3.Next()
				if err := it3.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	wg.Wait()

	// Post-quiescence: everything written is present exactly once.
	want := writers * batches * batchSize
	if r.Len() != want {
		t.Fatalf("len = %d, want %d", r.Len(), want)
	}
	seen := make(map[uint64]bool, want)
	if err := r.Scan(func(rec Record) bool {
		if seen[rec.ID] {
			t.Fatalf("duplicate ID %d", rec.ID)
		}
		seen[rec.ID] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClosedRepositorySentinel pins the ErrClosed contract across every
// read and write entry point after Close.
func TestClosedRepositorySentinel(t *testing.T) {
	r := NewMem()
	if _, err := r.Append(stressRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query("frame = 1"); !errors.Is(err, ErrClosed) {
		t.Errorf("Query err = %v, want ErrClosed", err)
	}
	if _, err := r.QueryIter("frame = 1", QueryOpts{}); !errors.Is(err, ErrClosed) {
		t.Errorf("QueryIter err = %v, want ErrClosed", err)
	}
	expr, err := Parse("frame = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.QueryExpr(expr); !errors.Is(err, ErrClosed) {
		t.Errorf("QueryExpr err = %v, want ErrClosed", err)
	}
	if _, err := r.NaiveQueryExpr(expr); !errors.Is(err, ErrClosed) {
		t.Errorf("NaiveQueryExpr err = %v, want ErrClosed", err)
	}
	if _, err := r.Aggregate("frame = 1", AggCount, GroupNone); !errors.Is(err, ErrClosed) {
		t.Errorf("Aggregate err = %v, want ErrClosed", err)
	}
	if _, err := r.Count("frame = 1"); !errors.Is(err, ErrClosed) {
		t.Errorf("Count err = %v, want ErrClosed", err)
	}
	if _, err := r.TimeHistogram("frame = 1", 10); !errors.Is(err, ErrClosed) {
		t.Errorf("TimeHistogram err = %v, want ErrClosed", err)
	}
	if err := r.Scan(func(Record) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan err = %v, want ErrClosed", err)
	}
	if _, err := r.Explain("frame = 1", QueryOpts{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Explain err = %v, want ErrClosed", err)
	}
	if err := r.AppendBatch([]Record{stressRecord(2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("AppendBatch err = %v, want ErrClosed", err)
	}
	if err := r.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact err = %v, want ErrClosed", err)
	}
}
