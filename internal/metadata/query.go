package metadata

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Query language: boolean filter expressions over record fields, giving
// the "rich query vocabulary" of paper §II-E. Grammar:
//
//	expr   := or
//	or     := and ( OR and )*
//	and    := unary ( AND unary )*
//	unary  := NOT unary | '(' expr ')' | cmp
//	cmp    := field op value
//	field  := kind | label | person | other | frame | frameend | time
//	        | value | tag.<name>
//	op     := = | != | < | <= | > | >=
//	value  := number | 'single-quoted string' | bareword
//
// Examples:
//
//	kind = event AND label = 'eye-contact' AND person = 1
//	label = 'happy' AND frame >= 250 AND frame < 500
//	tag.camera = 'C2' OR value > 0.9
//
// person/other values are 1-based in queries (P1, P2… as the paper
// labels participants) and converted to 0-based IDs internally.

// Expr is a compiled query expression.
type Expr interface {
	// Eval reports whether a record matches.
	Eval(Record) (bool, error)
	// String renders the expression back in query syntax. The rendering
	// is canonical: Parse(e.String()) succeeds and renders identically,
	// provided no string operand embeds a single quote (the grammar has
	// no escape sequence for it).
	String() string
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // = != < <= > >=
	tokLParen //
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!' && l.peek(1) == '=':
		l.pos += 2
		return token{kind: tokOp, text: "!=", pos: start}, nil
	case c == '<':
		if l.peek(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		if l.peek(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("metadata: unterminated string at %d: %w", start, ErrBadQuery)
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) ||
			l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
			l.src[l.pos] == '-' || l.src[l.pos] == '+') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	}
	// Identifiers decode as UTF-8 runes (not bytes): ToLower and String
	// re-rendering operate on runes, so byte-wise scanning would admit
	// invalid sequences that cannot round-trip.
	if r, size := utf8.DecodeRuneInString(l.src[l.pos:]); r != utf8.RuneError && (unicode.IsLetter(r) || r == '_') {
		l.pos += size
		for l.pos < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if r != utf8.RuneError && (unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-') {
				l.pos += size
				continue
			}
			break
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	return token{}, fmt.Errorf("metadata: unexpected %q at %d: %w", c, start, ErrBadQuery)
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

// --- parser ---

type parser struct {
	lex *lexer
	cur token
}

// Parse compiles a query string.
func Parse(q string) (Expr, error) {
	p := &parser{lex: &lexer{src: q}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("metadata: trailing input %q at %d: %w", p.cur.text, p.cur.pos, ErrBadQuery)
	}
	return e, nil
}

// ParseFollow compiles a query string that may carry a trailing FOLLOW
// keyword (`<expr> FOLLOW`), the dieventql form of a tail subscription
// (Repository.Tail). It reports whether FOLLOW was present; a query
// without the keyword parses exactly as Parse does.
func ParseFollow(q string) (Expr, bool, error) {
	p := &parser{lex: &lexer{src: q}}
	if err := p.advance(); err != nil {
		return nil, false, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, false, err
	}
	follow := false
	if p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "follow") {
		follow = true
		if err := p.advance(); err != nil {
			return nil, false, err
		}
	}
	if p.cur.kind != tokEOF {
		return nil, false, fmt.Errorf("metadata: trailing input %q at %d: %w", p.cur.text, p.cur.pos, ErrBadQuery)
	}
	return e, follow, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andExpr{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, "not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner}, nil
	case p.cur.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur.kind != tokRParen {
			return nil, fmt.Errorf("metadata: missing ')' at %d: %w", p.cur.pos, ErrBadQuery)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	if p.cur.kind != tokIdent {
		return nil, fmt.Errorf("metadata: expected field at %d, got %q: %w", p.cur.pos, p.cur.text, ErrBadQuery)
	}
	field := strings.ToLower(p.cur.text)
	pos := p.cur.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind != tokOp {
		return nil, fmt.Errorf("metadata: expected operator after %q at %d: %w", field, p.cur.pos, ErrBadQuery)
	}
	op := p.cur.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind != tokNumber && p.cur.kind != tokString && p.cur.kind != tokIdent {
		return nil, fmt.Errorf("metadata: expected value at %d: %w", p.cur.pos, ErrBadQuery)
	}
	valText := p.cur.text
	valIsString := p.cur.kind != tokNumber
	if err := p.advance(); err != nil {
		return nil, err
	}
	return buildCmp(field, op, valText, valIsString, pos)
}

// --- expression nodes ---

type andExpr struct{ l, r Expr }

func (e andExpr) Eval(rec Record) (bool, error) {
	ok, err := e.l.Eval(rec)
	if err != nil || !ok {
		return false, err
	}
	return e.r.Eval(rec)
}

func (e andExpr) String() string {
	return andSide(e.l) + " AND " + andSide(e.r)
}

// andSide renders an AND operand, parenthesising OR children (OR binds
// looser than AND).
func andSide(e Expr) string {
	if _, ok := e.(orExpr); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

type orExpr struct{ l, r Expr }

func (e orExpr) Eval(rec Record) (bool, error) {
	ok, err := e.l.Eval(rec)
	if err != nil {
		return false, err
	}
	if ok {
		return true, nil
	}
	return e.r.Eval(rec)
}

func (e orExpr) String() string {
	return e.l.String() + " OR " + e.r.String()
}

type notExpr struct{ inner Expr }

func (e notExpr) Eval(rec Record) (bool, error) {
	ok, err := e.inner.Eval(rec)
	return !ok, err
}

func (e notExpr) String() string {
	switch e.inner.(type) {
	case andExpr, orExpr:
		return "NOT (" + e.inner.String() + ")"
	}
	return "NOT " + e.inner.String()
}

// cmpExpr compares one field.
type cmpExpr struct {
	field string // normalised field name, or "tag" with key set
	key   string // tag key when field == "tag"
	op    string
	str   string  // string operand
	num   float64 // numeric operand
	isNum bool
}

func buildCmp(field, op, val string, valIsString bool, pos int) (Expr, error) {
	e := cmpExpr{op: op}
	if strings.HasPrefix(field, "tag.") {
		e.field = "tag"
		e.key = field[len("tag."):]
		if e.key == "" {
			return nil, fmt.Errorf("metadata: empty tag key at %d: %w", pos, ErrBadQuery)
		}
	} else {
		switch field {
		case "kind", "label", "person", "other", "frame", "frameend", "time", "value", "id":
			e.field = field
		default:
			return nil, fmt.Errorf("metadata: unknown field %q at %d: %w", field, pos, ErrBadQuery)
		}
	}
	if !valIsString {
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metadata: bad number %q at %d: %w", val, pos, ErrBadQuery)
		}
		e.num = n
		e.isNum = true
	} else {
		e.str = val
	}

	// Field-specific validation and normalisation.
	switch e.field {
	case "kind":
		if e.isNum {
			return nil, fmt.Errorf("metadata: kind compares by name at %d: %w", pos, ErrBadQuery)
		}
		if _, err := ParseKind(e.str); err != nil {
			return nil, err
		}
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("metadata: kind supports = and != only: %w", ErrBadQuery)
		}
	case "label", "tag":
		if e.isNum {
			return nil, fmt.Errorf("metadata: %s compares strings at %d: %w", e.field, pos, ErrBadQuery)
		}
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("metadata: %s supports = and != only: %w", e.field, ErrBadQuery)
		}
	case "person", "other", "frame", "frameend", "time", "value", "id":
		if !e.isNum {
			return nil, fmt.Errorf("metadata: %s compares numbers at %d: %w", e.field, pos, ErrBadQuery)
		}
	}
	return e, nil
}

func (e cmpExpr) Eval(rec Record) (bool, error) {
	switch e.field {
	case "kind":
		k, _ := ParseKind(e.str)
		if e.op == "=" {
			return rec.Kind == k, nil
		}
		return rec.Kind != k, nil
	case "label":
		if e.op == "=" {
			return rec.Label == e.str, nil
		}
		return rec.Label != e.str, nil
	case "tag":
		v, ok := rec.Tags[e.key]
		if e.op == "=" {
			return ok && v == e.str, nil
		}
		return !ok || v != e.str, nil
	case "person":
		// Queries are 1-based (P1 = 1); absent person (-1) never
		// matches equality.
		return cmpNum(float64(rec.Person+1), e.op, e.num), nil
	case "other":
		return cmpNum(float64(rec.Other+1), e.op, e.num), nil
	case "frame":
		return cmpNum(float64(rec.Frame), e.op, e.num), nil
	case "frameend":
		return cmpNum(float64(rec.FrameEnd), e.op, e.num), nil
	case "time":
		return cmpNum(rec.Time.Seconds(), e.op, e.num), nil
	case "value":
		return cmpNum(rec.Value, e.op, e.num), nil
	case "id":
		return cmpNum(float64(rec.ID), e.op, e.num), nil
	}
	return false, fmt.Errorf("metadata: unreachable field %q: %w", e.field, ErrBadQuery)
}

func (e cmpExpr) String() string {
	field := e.field
	if e.field == "tag" {
		field = "tag." + e.key
	}
	val := "'" + e.str + "'"
	if e.isNum {
		val = strconv.FormatFloat(e.num, 'g', -1, 64)
	}
	return field + " " + e.op + " " + val
}

func cmpNum(a float64, op string, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}
