package metadata

import "time"

// SegmentHealth describes one quarantined sealed segment: why strict
// replay rejected it and the hole its missing records leave in the
// frame/time axes.
type SegmentHealth struct {
	// Name is the quarantined segment's file name.
	Name string
	// Err is the strict-replay failure that caused the quarantine.
	Err string
	// Records and Bytes are the manifest's claims for the segment —
	// the upper bound on what the quarantine cost.
	Records int
	Bytes   int64
	// FrameGap brackets the hole: the frame of the last surviving
	// record before the quarantined range and of the first after it
	// (-1 when the hole touches the start or end of the store).
	FrameGap [2]int
	// TimeGap is the same bracket on the time axis (zero at the edges).
	TimeGap [2]time.Duration
}

// Health is the repository's degradation report: what recovery did at
// open, which segments are quarantined, and whether the append path is
// currently operating around a fault. A zero Degraded Health is the
// normal state.
type Health struct {
	// Degraded reports whether anything below is non-nominal.
	Degraded bool
	// Quarantined lists sealed segments isolated by WithQuarantine, in
	// manifest order.
	Quarantined []SegmentHealth
	// Recovery lists the recovery actions the most recent Open (or
	// fault repair) performed, oldest first: torn-tail truncation,
	// orphan sweeps, legacy-log migration, active-segment rewrites,
	// statistics-sidecar regeneration.
	Recovery []string
	// StatsMissing lists sealed segments with no usable statistics
	// sidecar (pre-stats repositories, damaged sidecars a read-only open
	// cannot regenerate). Queries stay exact but those segments are
	// never pruned; a writable open repairs them. Informational, not
	// Degraded — a pre-stats repository is healthy, just unoptimised.
	StatsMissing []string
	// PendingDirSync reports a cutover whose directory fsync has not
	// yet landed; appends retry it before acknowledging more records.
	PendingDirSync bool
	// WriteFault reports a failed active-segment write (e.g. ENOSPC)
	// that the next append will repair by rewriting the active segment
	// from memory.
	WriteFault bool
}

// Health returns the repository's degradation report. In-memory
// repositories are always healthy.
func (r *Repository) Health() (Health, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return Health{}, ErrClosed
	}
	h := Health{
		Quarantined:    append([]SegmentHealth(nil), r.health.Quarantined...),
		Recovery:       append([]string(nil), r.health.Recovery...),
		PendingDirSync: r.pendingDirSync,
		WriteFault:     r.writeFault,
	}
	for i := 0; i < len(r.segs)-1; i++ {
		if s := &r.segs[i]; s.sealed && !s.quarantined && s.stats == nil {
			h.StatsMissing = append(h.StatsMissing, s.name)
		}
	}
	h.Degraded = len(h.Quarantined) > 0 || h.PendingDirSync || h.WriteFault
	return h, nil
}
