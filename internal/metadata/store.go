package metadata

// recStore is the in-memory record array, laid out as fixed-size chunks
// instead of one contiguous slice. Appending never reallocates existing
// chunks (a full chunk is immutable except for its spare capacity), so
// ingesting the millionth record costs the same as the first — no
// doubling copy — and a snapshot is just the chunk list: O(chunks) slice
// headers, not O(records) bytes. Mutated only under the repository write
// lock; snapshots are read lock-free (see snap).
type recStore struct {
	chunks [][]Record
	n      int
}

// storeChunkShift sizes chunks at 8192 records (~1 MiB of Record
// headers), matching the executor's scan-segment granularity.
const (
	storeChunkShift = 13
	storeChunkSize  = 1 << storeChunkShift
	storeChunkMask  = storeChunkSize - 1
)

// append adds rec at position s.n.
func (s *recStore) append(rec Record) {
	if s.n>>storeChunkShift == len(s.chunks) {
		s.chunks = append(s.chunks, make([]Record, 0, storeChunkSize))
	}
	c := len(s.chunks) - 1
	s.chunks[c] = append(s.chunks[c], rec)
	s.n++
}

// at returns the record at pos. Caller holds at least a read lock and
// guarantees pos < s.n.
func (s *recStore) at(pos int) *Record {
	return &s.chunks[pos>>storeChunkShift][pos&storeChunkMask]
}

// snapshot captures an immutable view of the first s.n records. The
// chunk-header list is copied (the outer slice may be reallocated by
// later appends); the chunks themselves are shared — positions < n are
// never rewritten, and appends only touch spare capacity beyond each
// copied header's length, so the view is safe to read without locks
// while appends and compaction proceed.
func (s *recStore) snapshot() snap {
	return snap{chunks: append([][]Record(nil), s.chunks...), n: s.n}
}

// snap is an immutable point-in-time view over the record store — the
// "segment list" query plans execute against.
type snap struct {
	chunks [][]Record
	n      int
}

// at returns the record at pos (caller guarantees pos < s.n).
func (s snap) at(pos int) *Record {
	return &s.chunks[pos>>storeChunkShift][pos&storeChunkMask]
}
