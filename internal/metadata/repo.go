package metadata

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Repository is the embedded metadata store. Appends go to an append-only
// log on disk (when opened with a directory) and into the in-memory
// indexes; queries run against memory. Safe for concurrent use.
type Repository struct {
	mu sync.RWMutex

	dir     string   // "" for in-memory-only repositories
	logFile *os.File // nil for in-memory
	logBuf  *bufio.Writer
	encBuf  []byte

	records []Record // append order == ID order
	// Secondary indexes hold positions into records.
	byLabel  map[string][]int
	byPerson map[int][]int
	byKind   [numKinds][]int
	// Sorted range indexes over frame and time keys. In-order appends
	// extend the sorted run in O(1); out-of-order positions collect in a
	// bounded unsorted tail merged geometrically, so ingest never pays a
	// per-record O(n) shift (the planner scans the tail as extra
	// candidates and the executor's bound re-check keeps that exact).
	byFrame rangeIdx
	byTime  rangeIdx
	// frameKeyFn/timeKeyFn are the range-index sort keys, bound once so
	// the hot append path allocates no method-value closures.
	frameKeyFn func(int) float64
	timeKeyFn  func(int) float64

	nextID uint64
	closed bool
}

const logName = "metadata.log"

// Open opens (or creates) a repository persisted under dir. Existing log
// entries are replayed; a corrupt tail is truncated with only valid
// prefix records retained — the standard recovery contract for an
// append-only store.
func Open(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("metadata: creating %s: %w", dir, err)
	}
	r := newMem()
	r.dir = dir
	path := filepath.Join(dir, logName)

	// Replay.
	validBytes, err := r.replay(path)
	if err != nil {
		return nil, err
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metadata: opening log: %w", err)
	}
	// Drop any corrupt tail before appending.
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("metadata: truncating corrupt tail: %w", err)
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("metadata: seeking log end: %w", err)
	}
	r.logFile = f
	r.logBuf = bufio.NewWriter(f)
	return r, nil
}

// NewMem returns a purely in-memory repository (no durability) — used by
// tests and short-lived analyses.
func NewMem() *Repository { return newMem() }

func newMem() *Repository {
	r := &Repository{
		byLabel:  make(map[string][]int),
		byPerson: make(map[int][]int),
		nextID:   1,
	}
	r.frameKeyFn = func(pos int) float64 { return float64(r.records[pos].Frame) }
	r.timeKeyFn = func(pos int) float64 { return r.records[pos].Time.Seconds() }
	return r
}

// replay loads records from the log, returning the byte offset of the
// last fully valid entry.
func (r *Repository) replay(path string) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("metadata: opening log for replay: %w", err)
	}
	defer f.Close()

	cr := &countingReader{r: bufio.NewReader(f)}
	var valid int64
	for {
		rec, err := readRecord(cr)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Corrupt tail: keep the valid prefix, stop replaying.
			break
		}
		r.index(rec)
		if rec.ID >= r.nextID {
			r.nextID = rec.ID + 1
		}
		valid = cr.n
	}
	return valid, nil
}

// countingReader tracks consumed bytes for tail truncation.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// index inserts a record into memory structures. Caller holds the lock
// (or is constructing the repository).
func (r *Repository) index(rec Record) {
	pos := len(r.records)
	r.records = append(r.records, rec)
	r.byLabel[rec.Label] = append(r.byLabel[rec.Label], pos)
	if rec.Person >= 0 {
		r.byPerson[rec.Person] = append(r.byPerson[rec.Person], pos)
	}
	if rec.Other >= 0 && rec.Other != rec.Person {
		r.byPerson[rec.Other] = append(r.byPerson[rec.Other], pos)
	}
	r.byKind[rec.Kind] = append(r.byKind[rec.Kind], pos)
	r.byFrame.insert(pos, r.frameKeyFn)
	r.byTime.insert(pos, r.timeKeyFn)
}

// rangeIdx is a position index ordered by (key, position): a sorted run
// plus a bounded unsorted tail of recent out-of-order inserts. Mutated
// only under the repository write lock.
type rangeIdx struct {
	sorted []int
	tail   []int
}

// insert adds pos. In-order keys extend the sorted run directly (the
// common case: video ingest arrives frame-ordered); anything else lands
// in the tail, which merges once it outgrows max(1024, len/8) — O(1)
// amortized, never a per-record O(n) shift.
func (ri *rangeIdx) insert(pos int, key func(int) float64) {
	if len(ri.tail) == 0 {
		if n := len(ri.sorted); n == 0 || key(ri.sorted[n-1]) <= key(pos) {
			ri.sorted = append(ri.sorted, pos)
			return
		}
	}
	ri.tail = append(ri.tail, pos)
	limit := len(ri.sorted) / 8
	if limit < 1024 {
		limit = 1024
	}
	if len(ri.tail) > limit {
		ri.compact(key)
	}
}

// compact merges the tail into the sorted run: O(t log t + n).
func (ri *rangeIdx) compact(key func(int) float64) {
	t := ri.tail
	if len(t) == 0 {
		return
	}
	sort.Slice(t, func(i, j int) bool {
		ki, kj := key(t[i]), key(t[j])
		if ki != kj {
			return ki < kj
		}
		return t[i] < t[j]
	})
	merged := make([]int, 0, len(ri.sorted)+len(t))
	i, j := 0, 0
	for i < len(ri.sorted) && j < len(t) {
		a, b := ri.sorted[i], t[j]
		ka, kb := key(a), key(b)
		if ka < kb || (ka == kb && a < b) {
			merged = append(merged, a)
			i++
		} else {
			merged = append(merged, b)
			j++
		}
	}
	merged = append(merged, ri.sorted[i:]...)
	merged = append(merged, t[j:]...)
	ri.sorted = merged
	ri.tail = ri.tail[:0]
}

// Append validates, assigns an ID, persists and indexes a record,
// returning the assigned ID.
func (r *Repository) Append(rec Record) (uint64, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	return r.appendLocked(rec)
}

// appendLocked assigns an ID, persists and indexes one validated record.
// Caller holds the write lock.
func (r *Repository) appendLocked(rec Record) (uint64, error) {
	rec.ID = r.nextID
	r.nextID++
	if r.logBuf != nil {
		r.encBuf = appendRecord(r.encBuf[:0], rec)
		if _, err := r.logBuf.Write(r.encBuf); err != nil {
			return 0, fmt.Errorf("metadata: appending record: %w", err)
		}
	}
	r.index(rec)
	return rec.ID, nil
}

// AppendBatch appends many records under a single write-lock
// acquisition, then flushes once. Validation runs before the lock is
// taken, so a malformed record rejects the whole batch before anything
// is written. An I/O failure mid-batch behaves like the equivalent
// sequence of Appends: records appended before the failure remain
// appended (and a torn on-disk tail is truncated on reopen, the store's
// standard recovery contract).
func (r *Repository) AppendBatch(recs []Record) error {
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return fmt.Errorf("metadata: batch record %d: %w", i, err)
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	for i := range recs {
		if _, err := r.appendLocked(recs[i]); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("metadata: batch record %d: %w", i, err)
		}
	}
	r.mu.Unlock()
	return r.Flush()
}

// Flush forces buffered log writes to the OS.
func (r *Repository) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.logBuf == nil {
		return nil
	}
	if err := r.logBuf.Flush(); err != nil {
		return fmt.Errorf("metadata: flushing log: %w", err)
	}
	return nil
}

// Sync flushes and fsyncs the log.
func (r *Repository) Sync() error {
	if err := r.Flush(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.logFile == nil {
		return nil
	}
	if err := r.logFile.Sync(); err != nil {
		return fmt.Errorf("metadata: syncing log: %w", err)
	}
	return nil
}

// Close flushes and closes the repository.
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.logBuf != nil {
		if err := r.logBuf.Flush(); err != nil {
			r.logFile.Close()
			return fmt.Errorf("metadata: flushing on close: %w", err)
		}
	}
	if r.logFile != nil {
		if err := r.logFile.Close(); err != nil {
			return fmt.Errorf("metadata: closing log: %w", err)
		}
	}
	return nil
}

// Len returns the number of stored records.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}

// Get returns a record by ID.
func (r *Repository) Get(id uint64) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// IDs are dense and start at 1 unless the log was compacted; a
	// binary search over the ordered records handles both.
	i := sort.Search(len(r.records), func(i int) bool { return r.records[i].ID >= id })
	if i < len(r.records) && r.records[i].ID == id {
		return r.records[i], true
	}
	return Record{}, false
}

// Query parses and executes a query on the planner, returning matching
// records in frame order (time-invariant records first). Results are
// byte-identical to NaiveQueryExpr's.
func (r *Repository) Query(q string) ([]Record, error) {
	expr, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return r.QueryExpr(expr)
}

// QueryExpr executes a parsed expression through the planner and
// collects the full result set in frame order.
func (r *Repository) QueryExpr(expr Expr) ([]Record, error) {
	it, err := r.QueryExprIter(expr, QueryOpts{})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return it.Collect()
}

// QueryIter parses q and returns a streaming cursor over the planned
// execution (see QueryOpts for limit, order and projection).
func (r *Repository) QueryIter(q string, opts QueryOpts) (*Iter, error) {
	expr, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return r.QueryExprIter(expr, opts)
}

// QueryExprIter plans expr against the current snapshot and returns a
// streaming cursor. Planning happens under the read lock; execution runs
// lock-free over the immutable snapshot, so the cursor may be consumed
// at leisure while appends and compaction proceed concurrently.
func (r *Repository) QueryExprIter(expr Expr, opts QueryOpts) (*Iter, error) {
	mask, err := projMaskOf(opts.Project)
	if err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return nil, ErrClosed
	}
	p := r.planLocked(expr)
	r.mu.RUnlock()
	return newIter(p, opts, mask), nil
}

// NaiveQueryExpr is the reference interpreter: a sequential full scan
// evaluating expr on every record, sorted like QueryExpr. It is the
// oracle the planner is tested against (equivalence suite, benchmarks);
// planned execution must return byte-identical results.
func (r *Repository) NaiveQueryExpr(expr Expr) ([]Record, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	var out []Record
	for _, rec := range r.records {
		ok, err := expr.Eval(rec)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := out[i].Frame, out[j].Frame
		if fi != fj {
			return fi < fj
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Scan iterates all records in append order, stopping when fn returns
// false. The callback must not call back into the repository. Returns
// ErrClosed on a closed repository.
func (r *Repository) Scan(fn func(Record) bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrClosed
	}
	for _, rec := range r.records {
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// Compact rewrites the log with the current records only (dropping any
// previously truncated garbage and reclaiming buffering slack), then
// reopens it for appending. In-memory repositories are a no-op.
func (r *Repository) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.logFile == nil {
		return nil
	}
	if err := r.logBuf.Flush(); err != nil {
		return fmt.Errorf("metadata: flush before compact: %w", err)
	}
	tmp := filepath.Join(r.dir, logName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("metadata: creating compact file: %w", err)
	}
	w := bufio.NewWriter(f)
	buf := make([]byte, 0, 4096)
	for _, rec := range r.records {
		buf = appendRecord(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("metadata: writing compact file: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("metadata: flushing compact file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("metadata: syncing compact file: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("metadata: closing compact file: %w", err)
	}
	// Swap.
	r.logFile.Close()
	final := filepath.Join(r.dir, logName)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("metadata: swapping compact file: %w", err)
	}
	nf, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("metadata: reopening log: %w", err)
	}
	r.logFile = nf
	r.logBuf = bufio.NewWriter(nf)
	return nil
}
