package metadata

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vfs"
)

// Repository is the embedded metadata store. Appends go to the active
// segment of an append-only segmented log on disk (when opened with a
// directory) and into the in-memory indexes; queries run against
// memory. Safe for concurrent use. See DESIGN.md §5 for the on-disk
// format and crash-recovery contract.
type Repository struct {
	mu sync.RWMutex

	dir      string    // "" for in-memory-only repositories
	fsys     vfs.FS    // filesystem seam; nil for in-memory
	lockFile io.Closer // dir lease (flock handle or lease file); nil for in-memory
	opts     options

	segs      []segMeta // manifest order; the last entry is active
	nextSegID uint64

	active      vfs.File // active-segment handle; nil for in-memory
	activeBuf   *bufio.Writer
	activeBytes int64 // valid bytes written to the active segment
	encBuf      []byte
	// activeStats accumulates the active segment's statistics block
	// record by record, so sealing never rescans the segment; reset at
	// every roll. nil for in-memory and read-only repositories.
	activeStats *statsBuilder

	store recStore // records; position == append order == ID order
	// Secondary indexes hold positions into the store.
	byLabel  map[string][]int
	byPerson map[int][]int
	byKind   [numKinds][]int
	// Sorted range indexes over frame and time keys. In-order appends
	// extend the sorted run in O(1); out-of-order positions collect in a
	// bounded unsorted tail merged geometrically, so ingest never pays a
	// per-record O(n) shift (the planner scans the tail as extra
	// candidates and the executor's bound re-check keeps that exact).
	byFrame rangeIdx
	byTime  rangeIdx
	// frameKeyFn/timeKeyFn are the range-index sort keys — exact int64
	// values (frame index, time in nanoseconds), bound once so the hot
	// append path allocates no method-value closures.
	frameKeyFn func(int) int64
	timeKeyFn  func(int) int64

	nextID uint64
	closed bool
	// pendingDirSync is set when a cutover's manifest rename landed but
	// its directory fsync failed: the new manifest governs, yet a crash
	// could still revert it and orphan the segment new appends target.
	// Appends and Sync retry the fsync and refuse to proceed until it
	// succeeds, so no record is acknowledged into a segment a crash
	// could silently drop.
	pendingDirSync bool
	// writeFault is set when a write to the active segment failed (for
	// example ENOSPC or a short write): an unknown prefix of the encoded
	// record may be on disk and the bufio layer holds a sticky error, so
	// the next append/Sync first rewrites the active segment from memory
	// (repairActiveLocked) before accepting more work. The store stays
	// open and readable throughout — once space frees, the repair
	// succeeds and appends resume with no duplicated or lost records.
	writeFault bool

	// health accumulates the open-time recovery report and quarantined
	// segments (see Health).
	health Health

	// compactMu serialises Compact calls; it is held across the
	// unlocked segment rewrite while mu is free for appends and queries.
	compactMu sync.Mutex

	// subs are the live tail-cursor subscribers (see Tail). Membership
	// and each subscriber's lifecycle transition are guarded by mu; the
	// append path publishes to every subscriber while already holding
	// the write lock, so subscription registration and the history
	// watermark are atomic with respect to appends.
	subs []*tailSub
}

// SyncPolicy selects when the repository fsyncs the active segment.
// Manifest replacements and segment seals are always made durable
// (fsync + directory fsync) regardless of policy — the recovery
// contract depends on sealed segments being clean.
type SyncPolicy uint8

const (
	// SyncOnSeal (the default) fsyncs a segment when it seals and on
	// Sync/Close. A crash may lose buffered appends in the active
	// segment's tail; recovery truncates to the last valid entry.
	SyncOnSeal SyncPolicy = iota
	// SyncAlways additionally fsyncs after every Append/AppendBatch —
	// maximum durability, one fsync per call.
	SyncAlways
	// SyncNone never fsyncs appends to the active segment (only
	// explicit Sync, seals and compaction do). Fastest for bulk loads;
	// a crash loses only the active segment's un-synced tail, which
	// recovery truncates — sealed segments stay clean under every
	// policy.
	SyncNone
)

// DefaultSegmentSize is the roll threshold for the active segment.
const DefaultSegmentSize = 4 << 20

type options struct {
	segSize    int64
	sync       SyncPolicy
	readOnly   bool
	fsys       vfs.FS
	quarantine bool
	lockWait   time.Duration
	lockCtx    context.Context
	openFilter Expr
}

// Option configures Open.
type Option func(*options)

// WithSegmentSize sets the active-segment roll threshold in bytes;
// n <= 0 keeps the default. Once the active segment has reached the
// threshold it seals and a new one starts before the *next* append
// lands, so sealed segments may exceed the threshold by up to one
// encoded record.
func WithSegmentSize(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.segSize = n
		}
	}
}

// WithSyncPolicy sets the fsync policy for the active segment.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *options) { o.sync = p }
}

// WithReadOnly opens the repository for reading only: the directory
// lease is shared (any number of read-only opens coexist; a writer's
// exclusive lease still conflicts both ways), nothing on disk is
// created, repaired or deleted — a torn active tail replays as its
// valid prefix without being truncated — and Append/AppendBatch/
// Compact return ErrReadOnly. Read-only mode also opens
// pre-segmentation metadata.log directories in place, without
// migrating them. Caveat: on platforms without flock (non-unix
// builds), read-only opens take no lease at all, so only
// writer-vs-writer exclusion is enforced there and a read-only open
// racing a writer's repairs may observe a transiently inconsistent
// directory.
func WithReadOnly() Option {
	return func(o *options) { o.readOnly = true }
}

// WithFS runs the repository on an alternative filesystem — the
// crash-consistency and fault-injection suites pass a vfs.FaultFS
// here. Production opens omit it and get the real filesystem.
func WithFS(fsys vfs.FS) Option {
	return func(o *options) {
		if fsys != nil {
			o.fsys = fsys
		}
	}
}

// WithQuarantine degrades instead of refusing: a sealed segment that
// fails strict replay (checksum damage, byte/record counts diverging
// from the manifest, a missing file) is quarantined rather than
// failing Open with ErrCorrupt. The store opens with that segment's
// records absent, queries and appends proceed, and Health reports the
// quarantined segments with the frame/time gap their loss leaves.
// Compact refuses with ErrQuarantined while any segment is
// quarantined — merging would launder the gap into a clean-looking
// segment. Without this option (the default, and what the
// oracle-equivalence suites run under) corruption still fails Open.
func WithQuarantine() Option {
	return func(o *options) { o.quarantine = true }
}

// WithOpenFilter restricts a read-only open to the segments a query
// predicate cannot exclude: sealed segments whose statistics block
// (zone maps, kind counts, label/person bloom filters — see DESIGN.md
// §9) proves that no record can satisfy expr are skipped wholesale,
// never decoded. Queries over the resulting repository see only the
// surviving records, so expr (or something it implies) should be the
// query being served — the cold-open pushdown path: parse the query,
// open with its filter, run it, close. Statistics can only exclude
// conservatively, so any record matching expr is always loaded and
// pruned results stay byte-identical to a full-replay run of the same
// query. Requires WithReadOnly (a writer must replay everything);
// segments without statistics (pre-stats repositories, damaged
// sidecars) are loaded normally.
func WithOpenFilter(expr Expr) Option {
	return func(o *options) { o.openFilter = expr }
}

// WithLockWait makes Open wait up to max for a busy directory lease
// instead of failing fast, polling with exponential backoff (1ms
// doubling, capped at 50ms). A nil ctx waits the full budget; a
// cancelled ctx stops early with the cancellation cause and ErrLocked
// both in the error chain. Timeout surfaces ErrLocked.
func WithLockWait(ctx context.Context, max time.Duration) Option {
	return func(o *options) {
		o.lockCtx = ctx
		o.lockWait = max
	}
}

// Open opens (or creates) a repository persisted under dir, taking an
// exclusive directory lease (ErrLocked if another process holds it).
// Sealed segments are replayed in parallel and must be intact; a
// corrupt tail on the active segment is truncated with only valid
// prefix records retained — the standard recovery contract for an
// append-only store. A pre-segmentation metadata.log is migrated in
// place on first open.
func Open(dir string, opts ...Option) (*Repository, error) {
	o := options{segSize: DefaultSegmentSize, sync: SyncOnSeal, fsys: vfs.OS}
	for _, opt := range opts {
		opt(&o)
	}
	if o.openFilter != nil && !o.readOnly {
		return nil, fmt.Errorf("metadata: WithOpenFilter requires WithReadOnly (a writer must replay every segment): %w", ErrBadQuery)
	}
	if !o.readOnly {
		if err := o.fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("metadata: creating %s: %w", dir, err)
		}
	}
	lock, err := lockDir(o.fsys, dir, o)
	if err != nil {
		return nil, err
	}
	r := newMem()
	r.dir = dir
	r.fsys = o.fsys
	r.lockFile = lock
	r.opts = o
	if err := r.load(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	return r, nil
}

// NewMem returns a purely in-memory repository (no durability) — used by
// tests and short-lived analyses.
func NewMem() *Repository { return newMem() }

func newMem() *Repository {
	r := &Repository{
		byLabel:  make(map[string][]int),
		byPerson: make(map[int][]int),
		nextID:   1,
	}
	r.frameKeyFn = func(pos int) int64 { return int64(r.store.at(pos).Frame) }
	r.timeKeyFn = func(pos int) int64 { return r.store.at(pos).Time.Nanoseconds() }
	return r
}

// load reads the manifest, removes orphaned files, replays every
// segment (sealed ones in parallel) and opens the active segment for
// appending.
func (r *Repository) load() error {
	segs, haveManifest, err := readManifest(r.fsys, r.dir)
	if err != nil {
		return err
	}
	if !haveManifest {
		if r.opts.readOnly {
			return r.loadNoManifestReadOnly()
		}
		if err := ensureInitSafe(r.fsys, r.dir); err != nil {
			return err
		}
		segs, err = r.initLayout()
		if err != nil {
			return err
		}
	}
	if !r.opts.readOnly {
		removed, err := removeOrphans(r.fsys, r.dir, segs)
		if err != nil {
			return err
		}
		if removed > 0 {
			r.recovered("removed %d orphaned file(s)", removed)
		}
	}
	r.segs = segs
	r.nextSegID = nextSegIDAfter(segs)

	// Load each sealed segment's statistics sidecar (manifest-referenced
	// NNNNNN.sts). A sidecar that is missing, torn, or of a different
	// version than the manifest's sts= CRC simply stays nil: a writable
	// open regenerates it after replay, a read-only open forgoes pruning
	// for that segment. With an open filter (WithOpenFilter), segments
	// whose statistics exclude every possible match are marked skipped
	// before replay begins — their records are never decoded.
	var filterBranches []conjuncts
	if r.opts.openFilter != nil {
		filterBranches = pruneBranches(r.opts.openFilter)
	}
	skippedSegs := 0
	for i := 0; i < len(segs)-1; i++ {
		if !segs[i].hasStats {
			continue
		}
		st, err := readStats(r.fsys, r.dir, segs[i])
		if err != nil {
			continue
		}
		segs[i].stats = st
		if filterBranches != nil && excludedByAll(st, filterBranches) {
			segs[i].skipped = true
			skippedSegs++
		}
	}
	if skippedSegs > 0 {
		r.recovered("open filter skipped %d sealed segment(s) via statistics", skippedSegs)
	}

	// Replay sealed segments in parallel: decoding (CRC checks, payload
	// parsing, allocation) is the expensive part and is embarrassingly
	// parallel per segment; indexing stays sequential in manifest order
	// so positions equal append order. Decode and indexing pipeline —
	// segment i is indexed (and its decode buffer released) as soon as
	// it completes, so peak memory is the store plus the few segments
	// in flight, not a second decoded copy of the whole dataset.
	sealed := segs[:len(segs)-1]
	if len(sealed) > 0 {
		loads := make([]struct {
			recs       []Record
			err        error
			quarantine error
		}, len(sealed))
		done := make([]chan struct{}, len(sealed))
		for i := range done {
			done[i] = make(chan struct{})
		}
		workers := runtime.GOMAXPROCS(0)
		if workers > len(sealed) {
			workers = len(sealed)
		}
		// Backpressure: a worker claims a decode ticket per segment and
		// the indexer returns it once that segment is consumed, so at
		// most maxAhead decoded-but-unindexed segments exist at any
		// moment — peak memory is the store plus a bounded in-flight
		// window, never a second decoded copy of the dataset.
		maxAhead := 2 * workers
		tickets := make(chan struct{}, maxAhead)
		for i := 0; i < maxAhead; i++ {
			tickets <- struct{}{}
		}
		abort := make(chan struct{})
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			go func() {
				for {
					select {
					case <-tickets:
					case <-abort:
						return
					}
					i := int(next.Add(1) - 1)
					if i >= len(sealed) {
						return
					}
					select {
					case <-abort:
						return
					default:
					}
					if sealed[i].skipped {
						// Excluded by the open filter: the whole point of
						// the statistics block — no decode, no CRC pass,
						// no allocation for this segment.
						close(done[i])
						continue
					}
					recs, n, err := decodeSegment(r.fsys, filepath.Join(r.dir, sealed[i].name), true)
					if err == nil && (n != sealed[i].bytes || len(recs) != sealed[i].count) {
						err = fmt.Errorf("metadata: sealed segment %s: %d bytes/%d records, manifest says %d/%d: %w",
							sealed[i].name, n, len(recs), sealed[i].bytes, sealed[i].count, ErrCorrupt)
					}
					if err != nil && r.opts.quarantine {
						// Degraded open: isolate the damaged segment
						// instead of failing; its manifest entry stays so
						// the file is never swept as an orphan.
						recs, loads[i].quarantine, err = nil, err, nil
					}
					loads[i].recs, loads[i].err = recs, err
					close(done[i])
				}
			}()
		}
		for i := range sealed {
			<-done[i]
			if loads[i].err != nil {
				close(abort)
				return loads[i].err
			}
			r.segs[i].first = r.store.n
			if qerr := loads[i].quarantine; qerr != nil {
				r.segs[i].quarantined = true
				r.health.Quarantined = append(r.health.Quarantined, SegmentHealth{
					Name:    r.segs[i].name,
					Err:     qerr.Error(),
					Records: r.segs[i].count,
					Bytes:   r.segs[i].bytes,
				})
			}
			for _, rec := range loads[i].recs {
				r.indexReplayed(rec)
			}
			loads[i].recs = nil
			tickets <- struct{}{}
		}
		close(abort) // release workers parked on the ticket select
	}

	// Active segment: lenient replay, then truncate the torn tail (if
	// any) and make the truncation durable before appending over it.
	act := &r.segs[len(r.segs)-1]
	path := filepath.Join(r.dir, act.name)
	recs, validBytes, err := decodeSegment(r.fsys, path, false)
	if err != nil {
		return err
	}
	act.first = r.store.n
	for _, rec := range recs {
		r.indexReplayed(rec)
	}
	act.count = len(recs)
	act.bytes = validBytes
	r.fillGaps()

	if r.opts.readOnly {
		// No append handle, no tail repair: a torn tail simply replays
		// as its valid prefix on every read-only open.
		return nil
	}
	f, err := r.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("metadata: opening active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("metadata: active segment stat: %w", err)
	}
	if st.Size() != validBytes {
		if err := f.Truncate(validBytes); err != nil {
			f.Close()
			return fmt.Errorf("metadata: truncating corrupt tail: %w", err)
		}
		// Make the repair durable: fsync the file and its directory so a
		// crash cannot resurrect the severed tail under future appends.
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("metadata: syncing truncated segment: %w", err)
		}
		if err := syncDir(r.fsys, r.dir); err != nil {
			f.Close()
			return err
		}
		r.recovered("truncated torn tail of %s (%d → %d bytes)", act.name, st.Size(), validBytes)
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("metadata: seeking segment end: %w", err)
	}
	r.active = f
	r.activeBuf = bufio.NewWriter(f)
	r.activeBytes = validBytes
	// Seed the active segment's statistics builder from its replayed
	// records, so the next seal has them ready without a rescan.
	r.activeStats = newStatsBuilder()
	for pos := act.first; pos < r.store.n; pos++ {
		r.activeStats.add(*r.store.at(pos))
	}

	if !haveManifest {
		if _, err := writeManifest(r.fsys, r.dir, r.segs); err != nil {
			// Open fails wholesale here; whether or not the rename
			// landed, the on-disk state (fresh segment or migrated
			// legacy log, manifest or none) reopens consistently.
			f.Close()
			r.active = nil
			return err
		}
	}
	// Upgrade in place: rebuild any sealed segment's statistics sidecar
	// that is absent or failed verification, then reference the new CRCs
	// from a fresh manifest. Pre-stats repositories get their sidecars
	// here on first writable open; a crash mid-regeneration leaves
	// unreferenced sidecars the next open sweeps and retries.
	if regen, err := r.regenStatsLocked(); err != nil {
		f.Close()
		r.active = nil
		return err
	} else if regen > 0 {
		r.recovered("regenerated statistics sidecar(s) for %d sealed segment(s)", regen)
	}
	return nil
}

// regenStatsLocked rebuilds missing or damaged statistics sidecars for
// sealed segments from the replayed records, making them durable before
// a manifest rewrite binds their CRCs. Quarantined segments are skipped
// (their records are not in memory to rebuild from). Runs during load,
// writable opens only.
func (r *Repository) regenStatsLocked() (int, error) {
	n := 0
	view := r.store.snapshot()
	for i := 0; i < len(r.segs)-1; i++ {
		sm := &r.segs[i]
		if sm.quarantined || sm.stats != nil {
			continue
		}
		st := statsOfSnap(view, sm.first, r.segs[i+1].first)
		data := encodeStats(st)
		if err := writeStatsFile(r.fsys, r.dir, sm.name, data); err != nil {
			return n, err
		}
		sm.stats = st
		sm.hasStats = true
		sm.statsCRC = statsCRCOf(data)
		n++
	}
	if n == 0 {
		return 0, nil
	}
	if err := syncDir(r.fsys, r.dir); err != nil {
		return n, err
	}
	if _, err := writeManifest(r.fsys, r.dir, r.segs); err != nil {
		return n, err
	}
	return n, nil
}

// loadNoManifestReadOnly opens a manifest-less directory for reading:
// a pre-segmentation metadata.log, or a lone first segment from an
// interrupted first open, replays in place (lenient, nothing written);
// an empty directory reads as an empty repository. Segments beyond
// 000001.seg without a manifest still refuse (see ensureInitSafe).
func (r *Repository) loadNoManifestReadOnly() error {
	if err := ensureInitSafe(r.fsys, r.dir); err != nil {
		return err
	}
	for _, name := range []string{segFileName(1), legacyLogName} {
		path := filepath.Join(r.dir, name)
		if _, err := r.fsys.Stat(path); errors.Is(err, os.ErrNotExist) {
			continue
		} else if err != nil {
			return fmt.Errorf("metadata: probing %s: %w", name, err)
		}
		recs, valid, err := decodeSegment(r.fsys, path, false)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			r.indexReplayed(rec)
		}
		r.segs = []segMeta{{name: name, bytes: valid, count: len(recs)}}
		return nil
	}
	return nil
}

// initLayout builds the segment list for a directory with no manifest:
// either a fresh repository (one empty active segment) or a
// pre-segmentation metadata.log, which becomes the first — still
// active, so its tail remains truncatable — segment in place.
func (r *Repository) initLayout() ([]segMeta, error) {
	first := segFileName(1)
	legacy := filepath.Join(r.dir, legacyLogName)
	if _, err := r.fsys.Stat(legacy); err == nil {
		if err := r.fsys.Rename(legacy, filepath.Join(r.dir, first)); err != nil {
			return nil, fmt.Errorf("metadata: migrating legacy log: %w", err)
		}
		if err := syncDir(r.fsys, r.dir); err != nil {
			return nil, err
		}
		r.recovered("migrated legacy %s to %s", legacyLogName, first)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("metadata: probing legacy log: %w", err)
	}
	return []segMeta{{name: first}}, nil
}

// recovered records one open-time recovery action for Health.
func (r *Repository) recovered(format string, args ...any) {
	r.health.Recovery = append(r.health.Recovery, fmt.Sprintf(format, args...))
}

// fillGaps computes, for each quarantined segment, the frame/time
// bracket its missing records leave: the keys of the last surviving
// record before the hole and the first after it. Runs once replay has
// assigned every segment's first position.
func (r *Repository) fillGaps() {
	qi := 0
	for i := range r.segs {
		if !r.segs[i].quarantined {
			continue
		}
		h := &r.health.Quarantined[qi]
		qi++
		h.FrameGap = [2]int{-1, -1}
		if p := r.segs[i].first - 1; p >= 0 {
			h.FrameGap[0] = r.store.at(p).Frame
			h.TimeGap[0] = r.store.at(p).Time
		}
		if p := r.segs[i].first; p < r.store.n {
			h.FrameGap[1] = r.store.at(p).Frame
			h.TimeGap[1] = r.store.at(p).Time
		}
	}
}

// indexReplayed indexes one replayed record and advances the ID counter.
func (r *Repository) indexReplayed(rec Record) {
	r.index(rec)
	if rec.ID >= r.nextID {
		r.nextID = rec.ID + 1
	}
}

// countingReader tracks consumed bytes for tail truncation.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// index inserts a record into memory structures. Caller holds the lock
// (or is constructing the repository).
func (r *Repository) index(rec Record) {
	pos := r.store.n
	r.store.append(rec)
	r.byLabel[rec.Label] = append(r.byLabel[rec.Label], pos)
	if rec.Person >= 0 {
		r.byPerson[rec.Person] = append(r.byPerson[rec.Person], pos)
	}
	if rec.Other >= 0 && rec.Other != rec.Person {
		r.byPerson[rec.Other] = append(r.byPerson[rec.Other], pos)
	}
	r.byKind[rec.Kind] = append(r.byKind[rec.Kind], pos)
	r.byFrame.insert(pos, r.frameKeyFn)
	r.byTime.insert(pos, r.timeKeyFn)
}

// rangeIdx is a position index ordered by (key, position): a sorted run
// plus a bounded unsorted tail of recent out-of-order inserts. Mutated
// only under the repository write lock.
type rangeIdx struct {
	sorted []int
	tail   []int
}

// insert adds pos. In-order keys extend the sorted run directly (the
// common case: video ingest arrives frame-ordered); anything else lands
// in the tail, which merges once it outgrows max(1024, len/8) — O(1)
// amortized, never a per-record O(n) shift.
func (ri *rangeIdx) insert(pos int, key func(int) int64) {
	if len(ri.tail) == 0 {
		if n := len(ri.sorted); n == 0 || key(ri.sorted[n-1]) <= key(pos) {
			ri.sorted = append(ri.sorted, pos)
			return
		}
	}
	ri.tail = append(ri.tail, pos)
	limit := len(ri.sorted) / 8
	if limit < 1024 {
		limit = 1024
	}
	if len(ri.tail) > limit {
		ri.compact(key)
	}
}

// compact merges the tail into the sorted run: O(t log t + n).
func (ri *rangeIdx) compact(key func(int) int64) {
	t := ri.tail
	if len(t) == 0 {
		return
	}
	sort.Slice(t, func(i, j int) bool {
		ki, kj := key(t[i]), key(t[j])
		if ki != kj {
			return ki < kj
		}
		return t[i] < t[j]
	})
	merged := make([]int, 0, len(ri.sorted)+len(t))
	i, j := 0, 0
	for i < len(ri.sorted) && j < len(t) {
		a, b := ri.sorted[i], t[j]
		ka, kb := key(a), key(b)
		if ka < kb || (ka == kb && a < b) {
			merged = append(merged, a)
			i++
		} else {
			merged = append(merged, b)
			j++
		}
	}
	merged = append(merged, ri.sorted[i:]...)
	merged = append(merged, t[j:]...)
	ri.sorted = merged
	ri.tail = ri.tail[:0]
}

// Append validates, assigns an ID, persists and indexes a record,
// returning the assigned ID. When the returned ID is non-zero the
// record was appended and is visible to queries even if err is
// non-nil: under SyncAlways a flush/fsync failure reports a
// *durability* problem with an already-appended record, not a
// rejection — retrying the Append would store the record twice.
func (r *Repository) Append(rec Record) (uint64, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	if r.opts.readOnly {
		return 0, ErrReadOnly
	}
	id, err := r.appendLocked(rec)
	if err != nil {
		return 0, err
	}
	if r.opts.sync == SyncAlways {
		if err := r.flushLocked(true); err != nil {
			return id, err
		}
	}
	return id, nil
}

// appendLocked assigns an ID, persists and indexes one validated
// record. The active segment rolls *before* the write when it is
// already past the threshold, so a roll failure rejects the append
// cleanly with nothing written. Caller holds the write lock.
func (r *Repository) appendLocked(rec Record) (uint64, error) {
	if err := r.retryDirSyncLocked(); err != nil {
		return 0, err
	}
	if err := r.repairActiveLocked(); err != nil {
		return 0, err
	}
	if r.active != nil && r.activeBytes >= r.opts.segSize {
		if err := r.rollLocked(); err != nil {
			return 0, err
		}
	}
	rec.ID = r.nextID
	if r.active != nil {
		r.encBuf = appendRecord(r.encBuf[:0], rec)
		if _, err := r.activeBuf.Write(r.encBuf); err != nil {
			// The record is rejected (not indexed, not acknowledged),
			// but an unknown prefix of it may have reached the disk and
			// the bufio layer is now sticky — flag the fault so the next
			// append rewrites the active segment from memory instead of
			// appending after garbage.
			r.writeFault = true
			return 0, fmt.Errorf("metadata: appending record: %w", err)
		}
		r.activeBytes += int64(len(r.encBuf))
		act := &r.segs[len(r.segs)-1]
		act.bytes = r.activeBytes
		act.count++
	}
	r.nextID++
	r.index(rec)
	if r.activeStats != nil {
		r.activeStats.add(rec)
	}
	r.publishLocked(rec)
	return rec.ID, nil
}

// rollLocked seals the active segment and starts a new one. Ordering is
// crash-safe: the old segment is flushed and fsynced first (sealed
// segments must be clean), the new file is created and made durable,
// and only then does the manifest swap in — a crash between any two
// steps reopens consistently (at worst an orphan file, removed at
// Open). On error the repository keeps appending to the old active
// segment; the old handle is never closed until cutover succeeded.
func (r *Repository) rollLocked() error {
	if err := r.activeBuf.Flush(); err != nil {
		r.writeFault = true
		return fmt.Errorf("metadata: flushing before seal: %w", err)
	}
	// Seals fsync under every policy: strict sealed replay (and the
	// manifest's exact byte/record counts) depend on sealed segments
	// being clean after any crash.
	if err := r.active.Sync(); err != nil {
		r.writeFault = true
		return fmt.Errorf("metadata: syncing sealing segment: %w", err)
	}
	// Write the sealing segment's statistics sidecar before anything
	// references it. A failure aborts the roll cleanly (the sidecar is
	// unreferenced; appends continue on the old active segment and the
	// next roll rewrites it); a crash before the manifest lands leaves
	// an unreferenced sidecar the next open sweeps.
	sealingStats := r.activeStats.build()
	statsData := encodeStats(sealingStats)
	if err := writeStatsFile(r.fsys, r.dir, r.segs[len(r.segs)-1].name, statsData); err != nil {
		return err
	}
	newName := segFileName(r.nextSegID)
	f, err := r.fsys.OpenFile(filepath.Join(r.dir, newName), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("metadata: creating segment: %w", err)
	}
	if err := syncDir(r.fsys, r.dir); err != nil {
		f.Close()
		r.fsys.Remove(filepath.Join(r.dir, newName))
		return err
	}
	segs := make([]segMeta, len(r.segs)+1)
	copy(segs, r.segs)
	segs[len(segs)-2].sealed = true
	segs[len(segs)-2].stats = sealingStats
	segs[len(segs)-2].hasStats = true
	segs[len(segs)-2].statsCRC = statsCRCOf(statsData)
	segs[len(segs)-1] = segMeta{name: newName, first: r.store.n}
	installed, err := writeManifest(r.fsys, r.dir, segs)
	if err != nil && !installed {
		f.Close()
		r.fsys.Remove(filepath.Join(r.dir, newName))
		return err
	}
	// The new manifest governs (even if its directory fsync failed —
	// a crash may revert to the old manifest, which is also consistent
	// since the now-sealed segment stays in place); commit and retire
	// the old handle. A non-nil err still rejects the triggering
	// append, and pendingDirSync keeps rejecting appends until the
	// fsync lands — otherwise acknowledged records would accumulate in
	// a segment a crash-reverted manifest knows nothing about.
	r.active.Close()
	r.segs = segs
	r.nextSegID++
	r.active = f
	r.activeBuf.Reset(f)
	r.activeBytes = 0
	r.activeStats.reset()
	if err != nil {
		r.pendingDirSync = true
		return fmt.Errorf("metadata: sealing cutover not durable: %w", err)
	}
	return nil
}

// retryDirSyncLocked re-attempts a cutover's failed directory fsync
// (see pendingDirSync). Caller holds the write lock.
func (r *Repository) retryDirSyncLocked() error {
	if !r.pendingDirSync {
		return nil
	}
	if err := syncDir(r.fsys, r.dir); err != nil {
		return fmt.Errorf("metadata: cutover still not durable: %w", err)
	}
	r.pendingDirSync = false
	return nil
}

// repairActiveLocked recovers from a writeFault by rewriting the whole
// active segment from memory: truncate to zero, re-encode every
// acknowledged record the segment covers, flush and fsync. Memory is
// the source of truth — an acknowledged record is always in the store,
// a rejected one never is — so the rewrite can neither duplicate nor
// lose records regardless of what the failed write left on disk. The
// rewrite needs the fault gone (e.g. space freed); until then it fails
// and the flag stays set, with reads unaffected. No-op when healthy.
// Caller holds the write lock.
func (r *Repository) repairActiveLocked() error {
	if !r.writeFault {
		return nil
	}
	if r.active == nil {
		r.writeFault = false
		return nil
	}
	fail := func(err error) error {
		return fmt.Errorf("metadata: active segment still faulted: %w", err)
	}
	if err := r.active.Truncate(0); err != nil {
		return fail(err)
	}
	if _, err := r.active.Seek(0, io.SeekStart); err != nil {
		return fail(err)
	}
	r.activeBuf.Reset(r.active) // clears the sticky bufio error
	act := &r.segs[len(r.segs)-1]
	var size int64
	for pos := act.first; pos < r.store.n; pos++ {
		r.encBuf = appendRecord(r.encBuf[:0], *r.store.at(pos))
		if _, err := r.activeBuf.Write(r.encBuf); err != nil {
			return fail(err)
		}
		size += int64(len(r.encBuf))
	}
	if err := r.activeBuf.Flush(); err != nil {
		return fail(err)
	}
	if err := r.active.Sync(); err != nil {
		return fail(err)
	}
	r.activeBytes = size
	act.bytes = size
	act.count = r.store.n - act.first
	r.writeFault = false
	r.recovered("rewrote active segment %s after write fault (%d records)", act.name, act.count)
	return nil
}

// AppendBatch appends many records under a single write-lock
// acquisition, then flushes once. Validation runs before the lock is
// taken, so a malformed record rejects the whole batch before anything
// is written. An I/O failure mid-batch behaves like the equivalent
// sequence of Appends: records appended before the failure remain
// appended (and a torn on-disk tail is truncated on reopen, the store's
// standard recovery contract).
func (r *Repository) AppendBatch(recs []Record) error {
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return fmt.Errorf("metadata: batch record %d: %w", i, err)
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if r.opts.readOnly {
		r.mu.Unlock()
		return ErrReadOnly
	}
	for i := range recs {
		if _, err := r.appendLocked(recs[i]); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("metadata: batch record %d: %w", i, err)
		}
	}
	err := r.flushLocked(r.opts.sync == SyncAlways)
	r.mu.Unlock()
	return err
}

// flushLocked pushes buffered writes to the OS, fsyncing too when
// fsync is set. Caller holds the write lock.
func (r *Repository) flushLocked(fsync bool) error {
	if r.activeBuf == nil {
		return nil
	}
	if err := r.activeBuf.Flush(); err != nil {
		r.writeFault = true
		return fmt.Errorf("metadata: flushing segment: %w", err)
	}
	if fsync {
		if err := r.active.Sync(); err != nil {
			// After a failed fsync the kernel may have dropped the dirty
			// pages; treat the on-disk suffix as unknown and rewrite.
			r.writeFault = true
			return fmt.Errorf("metadata: syncing segment: %w", err)
		}
	}
	return nil
}

// Flush forces buffered log writes to the OS.
func (r *Repository) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	return r.flushLocked(false)
}

// Sync flushes and fsyncs the active segment.
func (r *Repository) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.active == nil {
		return nil
	}
	if err := r.retryDirSyncLocked(); err != nil {
		return err
	}
	if err := r.repairActiveLocked(); err != nil {
		return err
	}
	return r.flushLocked(true)
}

// Close flushes and closes the repository, releasing the directory
// lease.
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	for _, s := range r.subs {
		r.killSubLocked(s, ErrClosed)
	}
	r.subs = nil
	var err error
	if r.activeBuf != nil {
		err = r.flushLocked(r.opts.sync != SyncNone)
	}
	if r.active != nil {
		if cerr := r.active.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("metadata: closing segment: %w", cerr)
		}
	}
	if uerr := unlockDir(r.lockFile); err == nil && uerr != nil {
		err = fmt.Errorf("metadata: releasing lock: %w", uerr)
	}
	r.lockFile = nil
	return err
}

// Dir returns the repository's directory, or "" for in-memory
// repositories. The directory is leased exclusively while the
// repository is open, so callers planning a second Open on it must
// route elsewhere (or close this handle first).
func (r *Repository) Dir() string { return r.dir }

// Len returns the number of stored records.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store.n
}

// Get returns a record by ID.
func (r *Repository) Get(id uint64) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// IDs ascend with position but need not be dense; binary search.
	i := sort.Search(r.store.n, func(i int) bool { return r.store.at(i).ID >= id })
	if i < r.store.n && r.store.at(i).ID == id {
		return *r.store.at(i), true
	}
	return Record{}, false
}

// SegmentStat describes one on-disk segment for Stats.
type SegmentStat struct {
	// Name is the segment's file name within the repository directory.
	Name string
	// Records is the number of records the segment holds.
	Records int
	// Bytes is the segment's encoded size.
	Bytes int64
	// Sealed reports whether the segment is immutable (fsynced, only
	// the last, active segment accepts appends).
	Sealed bool
	// Quarantined reports a sealed segment isolated by WithQuarantine;
	// Records/Bytes then repeat the manifest's claims for a file whose
	// records are not in memory (see Health for the gap it leaves).
	Quarantined bool
	// Skipped reports a sealed segment excluded wholesale by
	// WithOpenFilter: its statistics proved no record could match, so it
	// was never decoded (Records/Bytes repeat the manifest's counts).
	Skipped bool
	// HasStats reports a verified statistics sidecar; the zone-map
	// fields below are meaningful only when it is set and Records > 0.
	HasStats bool
	// MinFrame/MaxFrame bound the segment's Frame values (−1 =
	// time-invariant records); MinTime/MaxTime bound its timestamps.
	MinFrame, MaxFrame int
	MinTime, MaxTime   time.Duration
}

// Stats reports repository storage statistics. Segments is nil for
// in-memory repositories.
type Stats struct {
	// Records is the total record count.
	Records int
	// Segments lists on-disk segments in manifest (append) order.
	Segments []SegmentStat
	// DiskBytes sums the encoded size of every segment.
	DiskBytes int64
	// Quarantined counts segments isolated by WithQuarantine.
	Quarantined int
	// SkippedSegments counts sealed segments WithOpenFilter excluded at
	// open (never decoded; their records are absent from Records).
	SkippedSegments int
}

// Stats returns storage statistics for the repository.
func (r *Repository) Stats() (Stats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return Stats{}, ErrClosed
	}
	st := Stats{Records: r.store.n}
	for _, s := range r.segs {
		seg := SegmentStat{
			Name: s.name, Records: s.count, Bytes: s.bytes,
			Sealed: s.sealed, Quarantined: s.quarantined, Skipped: s.skipped,
		}
		if s.stats != nil {
			seg.HasStats = true
			if s.stats.count > 0 {
				seg.MinFrame = int(s.stats.minFrame)
				seg.MaxFrame = int(s.stats.maxFrame)
				seg.MinTime = time.Duration(s.stats.minTime)
				seg.MaxTime = time.Duration(s.stats.maxTime)
			}
		}
		st.Segments = append(st.Segments, seg)
		st.DiskBytes += s.bytes
		if s.quarantined {
			st.Quarantined++
		}
		if s.skipped {
			st.SkippedSegments++
		}
	}
	return st, nil
}

// Query parses and executes a query on the planner, returning matching
// records in frame order (time-invariant records first). Results are
// byte-identical to NaiveQueryExpr's.
func (r *Repository) Query(q string) ([]Record, error) {
	expr, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return r.QueryExpr(expr)
}

// QueryExpr executes a parsed expression through the planner and
// collects the full result set in frame order.
func (r *Repository) QueryExpr(expr Expr) ([]Record, error) {
	it, err := r.QueryExprIter(expr, QueryOpts{})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return it.Collect()
}

// QueryIter parses q and returns a streaming cursor over the planned
// execution (see QueryOpts for limit, order and projection).
func (r *Repository) QueryIter(q string, opts QueryOpts) (*Iter, error) {
	expr, err := Parse(q)
	if err != nil {
		return nil, err
	}
	return r.QueryExprIter(expr, opts)
}

// QueryExprIter plans expr against the current snapshot and returns a
// streaming cursor. Planning happens under the read lock; execution runs
// lock-free over the immutable snapshot, so the cursor may be consumed
// at leisure while appends and compaction proceed concurrently.
func (r *Repository) QueryExprIter(expr Expr, opts QueryOpts) (*Iter, error) {
	mask, err := projMaskOf(opts.Project)
	if err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return nil, ErrClosed
	}
	p := r.planLocked(expr)
	r.mu.RUnlock()
	return newIter(p, opts, mask), nil
}

// NaiveQueryExpr is the reference interpreter: a sequential full scan
// evaluating expr on every record, sorted like QueryExpr. It is the
// oracle the planner is tested against (equivalence suite, benchmarks);
// planned execution must return byte-identical results.
func (r *Repository) NaiveQueryExpr(expr Expr) ([]Record, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	var out []Record
	for i := 0; i < r.store.n; i++ {
		rec := *r.store.at(i)
		ok, err := expr.Eval(rec)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := out[i].Frame, out[j].Frame
		if fi != fj {
			return fi < fj
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Scan iterates all records in append order, stopping when fn returns
// false. The callback must not call back into the repository. Returns
// ErrClosed on a closed repository.
func (r *Repository) Scan(fn func(Record) bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrClosed
	}
	for i := 0; i < r.store.n; i++ {
		if !fn(*r.store.at(i)) {
			return nil
		}
	}
	return nil
}

// Compact merges the sealed segments into one, reclaiming garbage and
// per-segment overhead. The merge is incremental and mostly unlocked:
// the repository write lock is held only to seal the current active
// segment (brief) and to swap the manifest at cutover (brief) — the
// segment rewrite itself runs against an immutable snapshot while
// appends and query cursors proceed concurrently. Concurrent Compact
// calls serialise. In-memory repositories are a no-op.
func (r *Repository) Compact() error {
	r.compactMu.Lock()
	defer r.compactMu.Unlock()

	// Phase 1 (write lock, brief): roll the active segment if it holds
	// records, so everything current becomes sealed and mergeable, and
	// snapshot the sealed prefix.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if r.opts.readOnly {
		r.mu.Unlock()
		return ErrReadOnly
	}
	for _, s := range r.segs {
		if s.quarantined {
			// Merging would fold the quarantined segment's gap into one
			// clean-looking segment and delete the damaged file — the
			// only copy of whatever a repair tool might still salvage.
			r.mu.Unlock()
			return fmt.Errorf("metadata: %s is quarantined: %w", s.name, ErrQuarantined)
		}
	}
	if r.active == nil {
		r.mu.Unlock()
		return nil
	}
	if len(r.segs) == 1 {
		// Only the active segment exists — there is nothing sealed to
		// merge it with; rolling here would just grow the layout by an
		// empty segment.
		r.mu.Unlock()
		return nil
	}
	if r.segs[len(r.segs)-1].count > 0 {
		if err := r.rollLocked(); err != nil {
			r.mu.Unlock()
			return err
		}
	}
	nSealed := len(r.segs) - 1
	view := r.store.snapshot()
	mergeCount := 0 // records covered by the sealed prefix
	if nSealed > 0 {
		last := r.segs[nSealed-1]
		mergeCount = last.first + last.count
	}
	sealedMeta := append([]segMeta(nil), r.segs[:nSealed]...)
	mergeID := r.nextSegID
	dir := r.dir
	if nSealed > 1 {
		r.nextSegID++ // reserve the merged segment's number
	}
	r.mu.Unlock()
	if nSealed <= 1 {
		return nil // nothing to merge
	}

	// Validate every sealed segment's statistics block against the
	// records it decoded to before folding them into one segment: a
	// divergence means either the sidecar or the segment is lying, and
	// compaction must not launder that into a clean-looking merged
	// segment. The rebuild is deterministic, so a byte-compare of the
	// encodings is exact.
	for i := range sealedMeta {
		sm := sealedMeta[i]
		if sm.stats == nil {
			continue
		}
		end := mergeCount
		if i+1 < len(sealedMeta) {
			end = sealedMeta[i+1].first
		}
		rebuilt := statsOfSnap(view, sm.first, end)
		if !bytes.Equal(encodeStats(rebuilt), encodeStats(sm.stats)) {
			return fmt.Errorf("metadata: segment %s statistics diverge from decoded contents: %w", sm.name, ErrCorrupt)
		}
	}

	// Phase 2 (no lock): write the merged segment from the snapshot.
	// Sealed records are immutable, so the snapshot prefix re-encodes
	// byte-identically to the original entries. The merged segment's
	// statistics sidecar is written (and fsynced) alongside, under its
	// final name — harmless and unreferenced until the manifest binds
	// its CRC at cutover.
	mergedName := segFileName(mergeID)
	tmp := filepath.Join(dir, mergedName+".tmp")
	mergedBytes, err := writeSegmentFile(r.fsys, tmp, view, mergeCount)
	if err != nil {
		r.fsys.Remove(tmp)
		return err
	}
	mergedStats := statsOfSnap(view, 0, mergeCount)
	mergedStatsData := encodeStats(mergedStats)
	mergedStatsPath := filepath.Join(dir, statsFileName(mergedName))
	if err := writeStatsFile(r.fsys, dir, mergedName, mergedStatsData); err != nil {
		r.fsys.Remove(tmp)
		return err
	}

	// Phase 3 (write lock, brief): cutover. Rename the merged segment
	// into place, fsync the directory, swap the manifest, fsync again.
	// The active segment's handle is never touched: any failure here
	// leaves the repository exactly as it was, still appending.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.fsys.Remove(tmp)
		r.fsys.Remove(mergedStatsPath)
		return ErrClosed
	}
	old := make([]string, 0, 2*nSealed)
	for i := 0; i < nSealed; i++ {
		old = append(old, r.segs[i].name)
		if r.segs[i].hasStats {
			old = append(old, statsFileName(r.segs[i].name))
		}
	}
	if err := r.fsys.Rename(tmp, filepath.Join(dir, mergedName)); err != nil {
		r.mu.Unlock()
		r.fsys.Remove(tmp)
		r.fsys.Remove(mergedStatsPath)
		return fmt.Errorf("metadata: installing merged segment: %w", err)
	}
	if err := syncDir(r.fsys, dir); err != nil {
		r.mu.Unlock()
		r.fsys.Remove(filepath.Join(dir, mergedName))
		r.fsys.Remove(mergedStatsPath)
		return err
	}
	segs := make([]segMeta, 0, len(r.segs)-nSealed+1)
	segs = append(segs, segMeta{
		name: mergedName, bytes: mergedBytes, count: mergeCount, sealed: true,
		hasStats: true, statsCRC: statsCRCOf(mergedStatsData), stats: mergedStats,
	})
	segs = append(segs, r.segs[nSealed:]...)
	installed, err := writeManifest(r.fsys, dir, segs)
	if err != nil && !installed {
		// Old manifest still reigns; the merged file and its sidecar are
		// orphans (also cleaned at next Open if these removes fail).
		r.mu.Unlock()
		r.fsys.Remove(filepath.Join(dir, mergedName))
		r.fsys.Remove(mergedStatsPath)
		return err
	}
	r.segs = segs
	if err != nil {
		// The rename landed, so the new manifest governs and memory
		// committed to it — but its directory fsync failed, so a crash
		// could still revert to the old manifest. Keep the replaced
		// segment files in place (a revert needs them; a later
		// successful swap or the next Open's orphan sweep removes
		// them), make appends retry the fsync before acknowledging
		// anything more, and surface the durability error.
		r.pendingDirSync = true
		r.mu.Unlock()
		return fmt.Errorf("metadata: compaction cutover not durable: %w", err)
	}
	r.mu.Unlock()

	// The old segments are no longer referenced; remove them outside
	// the lock (failures are harmless — Open removes orphans).
	for _, name := range old {
		r.fsys.Remove(filepath.Join(dir, name))
	}
	return nil
}

// writeSegmentFile encodes the first n snapshot records into path,
// flushed and fsynced before returning its size. The fsync is
// unconditional — whatever the repository's sync policy, the cutover
// deletes the originals, so the merged segment must be durable before
// the manifest can reference it.
func writeSegmentFile(fsys vfs.FS, path string, s snap, n int) (int64, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("metadata: creating merged segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var size int64
	buf := make([]byte, 0, 4096)
	for i := 0; i < n; i++ {
		buf = appendRecord(buf[:0], *s.at(i))
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return 0, fmt.Errorf("metadata: writing merged segment: %w", err)
		}
		size += int64(len(buf))
	}
	err = w.Flush()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("metadata: finishing merged segment: %w", err)
	}
	return size, nil
}
