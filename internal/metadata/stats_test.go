package metadata

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// Seal-time segment statistics (stats.go): sidecar encoding, bloom
// soundness, write-at-seal, in-place regeneration for pre-stats
// repositories, cold-open pushdown (WithOpenFilter), plan-time segment
// pruning, and the Compact/Fsck cross-checks. The governing invariant
// everywhere: statistics may only ever exclude conservatively, so every
// pruned result must stay byte-identical to the naive full-scan oracle.

// statsFixture builds a persisted repository whose frame-ordered
// records land in several small sealed segments, so zone maps are
// disjoint and pruning has something to prove.
func statsFixture(t *testing.T, dir string, n int) {
	t.Helper()
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"happy", "sad", "neutral", "eye-contact"}
	for i := 0; i < n; i++ {
		if _, err := r.Append(obs(i, i%5, labels[i%len(labels)], float64(i%7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func sealedSegs(t *testing.T, dir string) []segMeta {
	t.Helper()
	segs, ok, err := readManifest(vfs.OS, dir)
	if err != nil || !ok {
		t.Fatalf("reading manifest: ok=%v err=%v", ok, err)
	}
	return segs
}

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("label-%d-%d", i, rng.Int63())
	}
	b := newBloom(len(keys))
	for _, k := range keys {
		b.add(bloomHashString(k))
	}
	for _, k := range keys {
		if !b.has(bloomHashString(k)) {
			t.Fatalf("bloom false negative for %q", k)
		}
	}
	// An empty filter definitely contains nothing.
	var empty bloomFilter
	if empty.has(bloomHashString("anything")) {
		t.Fatal("empty bloom claims membership")
	}
	// Integer keys behave the same.
	ib := newBloom(50)
	for p := 0; p < 50; p++ {
		ib.add(bloomHashInt(p))
	}
	for p := 0; p < 50; p++ {
		if !ib.has(bloomHashInt(p)) {
			t.Fatalf("bloom false negative for person %d", p)
		}
	}
	// ~1% false positives at 10 bits/key: spot-check the rate is sane,
	// not a degenerate all-ones filter.
	fp := 0
	for i := 0; i < 1000; i++ {
		if b.has(bloomHashString(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 100 {
		t.Fatalf("bloom false-positive rate %d/1000 — filter degenerate", fp)
	}
}

func TestStatsEncodeDecodeRoundtrip(t *testing.T) {
	recs := []Record{
		obs(10, 0, "happy", 1),
		obs(500, 3, "sad", 2),
		{Kind: KindEvent, Frame: 20, FrameEnd: 25, Person: 1, Other: 4, Label: "eye-contact"},
		{Kind: KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1, Label: "location"},
	}
	s := statsOfRecords(recs)
	data := encodeStats(s)
	got, err := decodeStats(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("roundtrip diverged:\n got  %+v\n want %+v", got, s)
	}
	// Determinism: rebuilding from a permuted record multiset encodes
	// byte-identically (bloom bits are an OR of per-key masks).
	perm := []Record{recs[2], recs[0], recs[3], recs[1]}
	if !reflect.DeepEqual(encodeStats(statsOfRecords(perm)), data) {
		t.Fatal("statistics encoding depends on insertion order")
	}
	if s.count != 4 || s.minFrame != -1 || s.maxFrame != 500 {
		t.Fatalf("zone maps wrong: %+v", s)
	}
	if s.kinds[KindObservation] != 2 || s.kinds[KindEvent] != 1 || s.kinds[KindContext] != 1 {
		t.Fatalf("kind counts wrong: %v", s.kinds)
	}
	// The person bloom indexes Person and Other.
	if !s.persons.has(bloomHashInt(4)) {
		t.Fatal("Other participant missing from person bloom")
	}

	// Damage in any byte fails decode with ErrCorrupt.
	for _, mut := range []struct {
		name string
		f    func([]byte) []byte
	}{
		{"flipped bit", func(d []byte) []byte { d[10] ^= 1; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)-3] }},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"empty", func(d []byte) []byte { return nil }},
	} {
		bad := mut.f(append([]byte(nil), data...))
		if _, err := decodeStats(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: decode err = %v, want ErrCorrupt", mut.name, err)
		}
	}
}

func TestSealWritesStatsSidecar(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)

	// Every sealed manifest entry carries an sts= reference and its
	// sidecar file exists with the matching CRC.
	segs := sealedSegs(t, dir)
	if len(segs) < 3 {
		t.Fatalf("fixture produced only %d segments", len(segs))
	}
	for _, sm := range segs[:len(segs)-1] {
		if !sm.hasStats {
			t.Fatalf("sealed %s has no sts= reference", sm.name)
		}
		st, err := readStats(vfs.OS, dir, sm)
		if err != nil {
			t.Fatalf("sidecar for %s: %v", sm.name, err)
		}
		if st.count != sm.count {
			t.Fatalf("%s: stats count %d, manifest count %d", sm.name, st.count, sm.count)
		}
	}

	// Reopen: Stats surfaces the loaded zone maps; frame-ordered ingest
	// means sealed segments partition the frame axis in order.
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	lastMax := -1
	for _, s := range st.Segments {
		if !s.Sealed {
			continue
		}
		if !s.HasStats {
			t.Fatalf("sealed %s reopened without statistics", s.Name)
		}
		if s.MinFrame <= lastMax || s.MaxFrame < s.MinFrame {
			t.Fatalf("zone maps not ordered: %s [%d, %d] after max %d",
				s.Name, s.MinFrame, s.MaxFrame, lastMax)
		}
		lastMax = s.MaxFrame
	}
}

func TestPlanStatsPruning(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A frame window confined to one segment prunes the rest; results
	// stay byte-identical to the oracle.
	for _, q := range []string{
		"frame >= 90",
		"frame >= 10 AND frame < 20",
		"label = 'happy' AND frame < 8",
		"frame < 5 OR frame >= 95",                 // OR of zone-prunable branches
		"(frame < 5 AND value > 1) OR frame >= 95", // branches with residuals
	} {
		expr, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := r.NaiveQueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planned, naive) {
			t.Fatalf("%q: pruned plan diverged from oracle (%d vs %d rows)", q, len(planned), len(naive))
		}
		plan, err := r.Explain(q, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "stats: pruned") {
			t.Errorf("%q: explain lacks pruning step:\n%s", q, plan)
		}
	}

	// The OR shape has no index probe: it must scan surviving runs, not
	// the full store.
	plan, err := r.Explain("frame < 5 OR frame >= 95", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "run(s)") || strings.Contains(plan, "full scan") {
		t.Errorf("OR query not run-pruned:\n%s", plan)
	}

	// Unprunable shapes still work and skip the pruning step.
	plan, err = r.Explain("value > 3", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "stats: pruned") {
		t.Errorf("value-only query claims pruning:\n%s", plan)
	}
}

func TestOpenFilterRequiresReadOnly(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 20)
	expr, err := Parse("frame >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, WithOpenFilter(expr)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("writable open with filter: err = %v, want ErrBadQuery", err)
	}
}

func TestColdOpenFilterSkipsSegments(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)

	// Oracle: a plain read-only open replays everything.
	full, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	expr, err := Parse("frame >= 90")
	if err != nil {
		t.Fatal(err)
	}
	naive, err := full.NaiveQueryExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	if len(naive) != 10 {
		t.Fatalf("oracle rows = %d, want 10", len(naive))
	}

	r, err := Open(dir, WithReadOnly(), WithOpenFilter(expr))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedSegments == 0 {
		t.Fatal("selective cold open skipped no segments")
	}
	skipped := 0
	for _, s := range st.Segments {
		if s.Skipped {
			skipped++
			if s.MaxFrame >= 90 && s.Records > 0 {
				t.Fatalf("skipped segment %s overlaps the filter window [%d, %d]",
					s.Name, s.MinFrame, s.MaxFrame)
			}
		}
	}
	if skipped != st.SkippedSegments {
		t.Fatalf("per-segment Skipped (%d) disagrees with SkippedSegments (%d)", skipped, st.SkippedSegments)
	}
	got, err := r.QueryExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, naive) {
		t.Fatalf("cold-open results diverged: %d vs %d rows", len(got), len(naive))
	}

	// A filter nothing matches skips every sealed segment.
	none, err := Parse("label = 'nonexistent'")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, WithReadOnly(), WithOpenFilter(none))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	st2, err := r2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nSealed := len(st2.Segments) - 1; st2.SkippedSegments != nSealed {
		t.Fatalf("all-miss filter skipped %d of %d sealed segments", st2.SkippedSegments, nSealed)
	}
	if recs, err := r2.QueryExpr(none); err != nil || len(recs) != 0 {
		t.Fatalf("all-miss query: %d rows, err %v", len(recs), err)
	}
}

// TestColdOpenEquivalenceProperty is the pushdown soundness property:
// over a randomized record population and random queries spanning the
// full grammar, opening with the query as filter and executing it must
// be byte-identical to the full-replay naive interpreter. Statistics
// can only exclude; never a record the query would match.
func TestColdOpenEquivalenceProperty(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1207))
	r, err := Open(dir, WithSegmentSize(2048), WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, r, rng, 1200)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	queries := 40
	if testing.Short() {
		queries = 12
	}
	full, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	type oracle struct {
		q    string
		expr Expr
		want []Record
	}
	var oracles []oracle
	for i := 0; i < queries; i++ {
		q := genQuery(rng, 3)
		expr, err := Parse(q)
		if err != nil {
			t.Fatalf("generated query %q failed to parse: %v", q, err)
		}
		want, err := full.NaiveQueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, oracle{q, expr, want})
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}

	for _, o := range oracles {
		cold, err := Open(dir, WithReadOnly(), WithOpenFilter(o.expr))
		if err != nil {
			t.Fatalf("cold open for %q: %v", o.q, err)
		}
		got, err := cold.QueryExpr(o.expr)
		if cerr := cold.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("cold query %q: %v", o.q, err)
		}
		if !reflect.DeepEqual(got, o.want) {
			t.Fatalf("cold-open pushdown diverged for %q: %d vs %d rows", o.q, len(got), len(o.want))
		}
	}
}

// TestStatsRegenerateInPlace simulates a pre-stats repository (no
// sidecars, no sts= references): read-only opens serve it unpruned,
// and the first writable open upgrades it in place.
func TestStatsRegenerateInPlace(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)

	// Strip the statistics: rewrite the manifest without sts= tokens and
	// delete every sidecar.
	segs := sealedSegs(t, dir)
	for i := range segs {
		segs[i].hasStats, segs[i].statsCRC = false, 0
	}
	if _, err := writeManifest(vfs.OS, dir, segs); err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, sm := range segs[:len(segs)-1] {
		if err := os.Remove(filepath.Join(dir, statsFileName(sm.name))); err == nil {
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("fixture had no sidecars to strip")
	}

	// Read-only: opens fine, no statistics, queries still exact.
	ro, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ro.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st.Segments {
		if s.HasStats {
			t.Fatalf("%s has statistics after strip", s.Name)
		}
	}
	naive, err := ro.Query("frame >= 90")
	if err != nil {
		t.Fatal(err)
	}
	roh, err := ro.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(roh.StatsMissing) != len(segs)-1 || roh.Degraded {
		t.Fatalf("read-only health after strip: missing=%v degraded=%v", roh.StatsMissing, roh.Degraded)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// Writable: regenerates every sidecar and rebinds the manifest.
	w, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	h, err := w.Health()
	if err != nil {
		t.Fatal(err)
	}
	foundRegen := false
	for _, line := range h.Recovery {
		if strings.Contains(line, "regenerated statistics") {
			foundRegen = true
		}
	}
	if !foundRegen {
		t.Fatalf("no regeneration recovery line: %v", h.Recovery)
	}
	if len(h.StatsMissing) != 0 {
		t.Fatalf("statistics still missing after regeneration: %v", h.StatsMissing)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, sm := range sealedSegs(t, dir) {
		if !sm.sealed {
			continue
		}
		if !sm.hasStats {
			t.Fatalf("%s not rebound after regeneration", sm.name)
		}
		if _, err := readStats(vfs.OS, dir, sm); err != nil {
			t.Fatalf("regenerated sidecar for %s: %v", sm.name, err)
		}
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck after regeneration not clean: %+v", rep.Segments)
	}

	// The upgraded repository prunes cold opens again.
	expr, err := Parse("frame >= 90")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Open(dir, WithReadOnly(), WithOpenFilter(expr))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	cst, err := cold.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if cst.SkippedSegments == 0 {
		t.Fatal("regenerated statistics prune nothing")
	}
	got, err := cold.QueryExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, naive) {
		t.Fatalf("post-upgrade cold open diverged: %d vs %d rows", len(got), len(naive))
	}
}

// TestStatsDamagedSidecarRegenerates covers a torn or stale sidecar: a
// writable open rejects it via the CRC binding and rewrites it.
func TestStatsDamagedSidecarRegenerates(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)
	segs := sealedSegs(t, dir)
	victim := segs[0]
	path := filepath.Join(dir, statsFileName(victim.name))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed the damaged sidecar")
	}
	if q := rep.Quarantinable(); len(q) != 0 {
		t.Fatalf("sidecar damage must not quarantine the segment: %v", q)
	}

	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("writable open did not repair the sidecar: %+v", rep.Segments)
	}
}

// TestStatsVersionMismatchDetected rebinds nothing: a sidecar replaced
// by a different-but-valid version (CRC intact internally, not the
// version the manifest recorded) is rejected and regenerated.
func TestStatsVersionMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)
	segs := sealedSegs(t, dir)
	victim := segs[0]
	// A structurally valid sidecar built from the wrong records.
	wrong := encodeStats(statsOfRecords([]Record{obs(777777, 0, "bogus", 1)}))
	if err := writeStatsFile(vfs.OS, dir, victim.name, wrong); err != nil {
		t.Fatal(err)
	}
	if _, err := readStats(vfs.OS, dir, victim); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale sidecar accepted: %v", err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Segments {
		if s.Name == statsFileName(victim.name) && strings.Contains(s.Err, "version") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck did not flag the version mismatch: %+v", rep.Segments)
	}
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if rep, err = Fsck(dir); err != nil || !rep.Clean() {
		t.Fatalf("writable open did not regenerate: err=%v rep=%+v", err, rep)
	}
}

// TestCompactValidatesStats pins the compaction cross-check: a sidecar
// that is internally valid and manifest-bound but lies about the
// segment's contents fails Compact with ErrCorrupt instead of merging
// the lie forward.
func TestCompactValidatesStats(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)
	segs := sealedSegs(t, dir)
	victim := &segs[0]
	lie := encodeStats(statsOfRecords([]Record{obs(777777, 0, "bogus", 1)}))
	if err := writeStatsFile(vfs.OS, dir, victim.name, lie); err != nil {
		t.Fatal(err)
	}
	victim.hasStats, victim.statsCRC = true, statsCRCOf(lie)
	if _, err := writeManifest(vfs.OS, dir, segs); err != nil {
		t.Fatal(err)
	}

	// Fsck catches the divergence even though the CRC binding holds.
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Segments {
		if s.Name == statsFileName(victim.name) && strings.Contains(s.Err, "diverge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck did not flag the divergence: %+v", rep.Segments)
	}

	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Compact(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("compact over lying statistics: err = %v, want ErrCorrupt", err)
	}
}

func TestStatsOrphanSidecarSwept(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)
	stray := filepath.Join(dir, "000099.sts")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray sidecar survived the orphan sweep: %v", err)
	}
	// Referenced sidecars stay.
	for _, sm := range sealedSegs(t, dir) {
		if !sm.sealed {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, statsFileName(sm.name))); err != nil {
			t.Fatalf("referenced sidecar swept: %v", err)
		}
	}
}

// TestMissingSealedSegmentIsCorrupt is the satellite-2 regression: a
// sealed segment file that vanished is ErrCorrupt in strict mode even
// when the manifest records it as empty (0 bytes, 0 records) — the
// byte/count cross-check alone would wave that through.
func TestMissingSealedSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	statsFixture(t, dir, 100)
	segs := sealedSegs(t, dir)
	if err := os.Remove(filepath.Join(dir, segs[0].name)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, WithSegmentSize(300)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over missing sealed segment: err = %v, want ErrCorrupt", err)
	}
	r, err := Open(dir, WithSegmentSize(300), WithQuarantine())
	if err != nil {
		t.Fatalf("quarantine open: %v", err)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The empty-entry case: a manifest listing a sealed `0 0` segment
	// whose file does not exist.
	dir2 := t.TempDir()
	empty := []segMeta{
		{name: segFileName(1), sealed: true},
		{name: segFileName(2)},
	}
	if _, err := writeManifest(vfs.OS, dir2, empty); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over missing empty sealed segment: err = %v, want ErrCorrupt", err)
	}
}

// rawManifest renders manifest bytes with a correct CRC trailer, so the
// parser's per-entry validation — not the checksum — is what the
// rejection table exercises.
func rawManifest(lines ...string) []byte {
	body := manifestHeader + "\n"
	for _, l := range lines {
		body += l + "\n"
	}
	return []byte(fmt.Sprintf("%scrc32 %08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

// TestParseManifestRejections is the satellite-1 regression table: the
// old Sscanf parser accepted negative counts, ignored trailing garbage
// and admitted duplicate names — all CRC-valid, all able to corrupt
// first-position arithmetic downstream.
func TestParseManifestRejections(t *testing.T) {
	active := "seg 000002.seg active 0 0"
	cases := []struct {
		name string
		line string
	}{
		{"negative bytes", "seg 000001.seg sealed -5 2"},
		{"negative count", "seg 000001.seg sealed 10 -2"},
		{"float bytes", "seg 000001.seg sealed 1.5 2"},
		{"missing fields", "seg 000001.seg sealed 10"},
		{"trailing garbage", "seg 000001.seg sealed 10 2 extra"},
		{"bad keyword", "wat 000001.seg sealed 10 2"},
		{"bad name", "seg nope.seg sealed 10 2"},
		{"bad state", "seg 000001.seg melted 10 2"},
		{"bad stats hex", "seg 000001.seg sealed 10 2 sts=xyzxyzxy"},
		{"short stats hex", "seg 000001.seg sealed 10 2 sts=abc"},
		{"stats on active", "seg 000001.seg active 0 0 sts=00000000"},
		{"token after stats", "seg 000001.seg sealed 10 2 sts=00000000 junk"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lines := []string{c.line}
			if !strings.Contains(c.line, "active") {
				lines = append(lines, active)
			}
			if _, err := parseManifest(rawManifest(lines...)); !errors.Is(err, ErrCorrupt) {
				t.Errorf("line %q: err = %v, want ErrCorrupt", c.line, err)
			}
		})
	}
	// Duplicate names across entries.
	if _, err := parseManifest(rawManifest(
		"seg 000001.seg sealed 10 2", "seg 000001.seg active 0 0")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate names: err = %v, want ErrCorrupt", err)
	}
	// The happy path, with and without a stats reference.
	segs, err := parseManifest(rawManifest(
		"seg 000001.seg sealed 10 2 sts=00c0ffee", active))
	if err != nil {
		t.Fatal(err)
	}
	if !segs[0].hasStats || segs[0].statsCRC != 0x00c0ffee {
		t.Fatalf("stats reference not parsed: %+v", segs[0])
	}
	if segs[1].hasStats {
		t.Fatal("active entry grew a stats reference")
	}
}

// TestStatsCrashMatrix extends the crash-consistency matrix to the
// statistics machinery: for a snapshot before every counted filesystem
// operation of a seal/compact-heavy workload (sidecar writes included —
// FaultFS counts them like any other op), crash with and without a torn
// tail, reopen writable, and require that (a) recovery holds the usual
// prefix contract, (b) the repaired directory fscks clean — every
// sealed segment has a valid, bound, content-accurate sidecar — and
// (c) a cold open with a pushdown filter returns exactly what the
// full-replay oracle returns.
func TestStatsCrashMatrix(t *testing.T) {
	fsys := vfs.NewFaultFS()
	var points []crashPoint
	acked := 0
	fsys.OnOp = func(n int, op vfs.Op, path string, snap *vfs.FaultFS) {
		points = append(points, crashPoint{n: n, op: op, path: path, snap: snap, acked: acked})
	}
	r, err := Open("repo", WithFS(fsys), WithSegmentSize(300), WithSyncPolicy(SyncOnSeal))
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Record
	for i := 0; i < 60; i++ {
		rec := obs(i, i%3, "crash", 1)
		id, err := r.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		rec.ID = id
		oracle = append(oracle, rec)
		acked = len(oracle)
		if i == 30 {
			if err := r.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	fsys.OnOp = nil
	if len(points) == 0 {
		t.Fatal("workload produced no fault points")
	}

	expr, err := Parse("frame >= 40")
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for _, torn := range []int{0, 3} {
		for pi := 0; pi < len(points); pi += stride {
			pt := points[pi]
			ctx := fmt.Sprintf("op %d (%s %s) torn=%d", pt.n, pt.op, pt.path, torn)
			world := pt.snap.Clone()
			world.Crash(torn)

			// (a) writable reopen recovers a prefix and repairs in place.
			r, err := Open("repo", WithFS(world), WithSegmentSize(300))
			if err != nil {
				t.Fatalf("%s: reopen after crash: %v", ctx, err)
			}
			got := scanAll(t, r)
			if len(got) > len(oracle) {
				t.Fatalf("%s: recovered %d records, more than the %d acknowledged", ctx, len(got), len(oracle))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], oracle[i]) {
					t.Fatalf("%s: recovered record %d diverged", ctx, i)
				}
			}
			if err := r.Close(); err != nil {
				t.Fatalf("%s: close: %v", ctx, err)
			}

			// (b) after repair the statistics are whole again.
			rep, err := fsck(world, "repo")
			if err != nil {
				t.Fatalf("%s: fsck: %v", ctx, err)
			}
			if !rep.Clean() {
				t.Fatalf("%s: fsck not clean after writable reopen: %+v", ctx, rep.Segments)
			}

			// (c) pushdown over the repaired store matches full replay.
			full, err := Open("repo", WithFS(world), WithReadOnly())
			if err != nil {
				t.Fatalf("%s: read-only reopen: %v", ctx, err)
			}
			want, err := full.NaiveQueryExpr(expr)
			if err != nil {
				t.Fatalf("%s: oracle query: %v", ctx, err)
			}
			if err := full.Close(); err != nil {
				t.Fatalf("%s: oracle close: %v", ctx, err)
			}
			cold, err := Open("repo", WithFS(world), WithReadOnly(), WithOpenFilter(expr))
			if err != nil {
				t.Fatalf("%s: cold open: %v", ctx, err)
			}
			pruned, err := cold.QueryExpr(expr)
			if err != nil {
				t.Fatalf("%s: cold query: %v", ctx, err)
			}
			if err := cold.Close(); err != nil {
				t.Fatalf("%s: cold close: %v", ctx, err)
			}
			if !reflect.DeepEqual(pruned, want) {
				t.Fatalf("%s: pushdown diverged from oracle (%d vs %d rows)", ctx, len(pruned), len(want))
			}
		}
	}
}
