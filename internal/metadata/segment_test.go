package metadata

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// scanAll collects every record in append order.
func scanAll(t *testing.T, r *Repository) []Record {
	t.Helper()
	var out []Record
	if err := r.Scan(func(rec Record) bool { out = append(out, rec); return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.Append(obs(i, i%4, "happy", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) < 3 {
		t.Fatalf("300-byte segments over 100 records: only %d segments", len(st.Segments))
	}
	total := 0
	for i, s := range st.Segments {
		if s.Sealed != (i < len(st.Segments)-1) {
			t.Errorf("segment %s: sealed = %v at position %d/%d", s.Name, s.Sealed, i, len(st.Segments))
		}
		total += s.Records
	}
	if total != 100 || st.Records != 100 {
		t.Errorf("segment record counts sum to %d (stats %d), want 100", total, st.Records)
	}
	want := scanAll(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen changed records: %d vs %d", len(got), len(want))
	}
	if id, err := r2.Append(obs(100, 0, "sad", 1)); err != nil || id != 101 {
		t.Fatalf("post-reopen append: id=%d err=%v", id, err)
	}
}

func TestLegacyLogMigration(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a pre-segmentation repository: a bare metadata.log with
	// three records and no MANIFEST.
	var buf []byte
	for i := 0; i < 3; i++ {
		rec := obs(i, 0, "legacy", float64(i))
		rec.ID = uint64(i + 1)
		buf = appendRecord(buf, rec)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyLogName), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("migrated %d records, want 3", r.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, legacyLogName)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("legacy log still present after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segFileName(1))); err != nil {
		t.Errorf("migrated segment missing: %v", err)
	}
	if _, err := r.Append(obs(10, 1, "fresh", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 4 {
		t.Errorf("after migration + append + reopen: %d records, want 4", r2.Len())
	}
}

func TestCompactMergesSealedSegments(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 80; i++ {
		if _, err := r.Append(obs(i, i%3, "happy", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := scanAll(t, r)
	before, _ := r.Stats()
	if len(before.Segments) < 3 {
		t.Fatalf("fixture too small: %d segments", len(before.Segments))
	}

	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Everything merged into one sealed segment plus a fresh empty
	// active segment.
	if len(after.Segments) != 2 || !after.Segments[0].Sealed || after.Segments[1].Records != 0 {
		t.Fatalf("post-compact layout: %+v", after.Segments)
	}
	if after.Segments[0].Records != 80 {
		t.Fatalf("merged segment holds %d records, want 80", after.Segments[0].Records)
	}
	if got := scanAll(t, r); !reflect.DeepEqual(got, want) {
		t.Fatal("compact changed record contents")
	}
	// Old segment files are gone; only manifest-listed files remain.
	for _, s := range before.Segments[:len(before.Segments)-1] {
		if s.Name == after.Segments[0].Name {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, s.Name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("pre-compact segment %s survived cutover", s.Name)
		}
	}
	// Post-compact appends and reopen round-trip.
	if _, err := r.Append(obs(999, 0, "sad", 1)); err != nil {
		t.Fatal(err)
	}
	want = scanAll(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, want) {
		t.Fatal("reopen after compact changed records")
	}
}

// TestCompactSingleSegmentNoop pins that Compact on a repository with
// no sealed segments does nothing: there is nothing to merge, and
// rolling would only grow the layout by an empty segment.
func TestCompactSingleSegmentNoop(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 10; i++ {
		if _, err := r.Append(obs(i, 0, "x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) != 1 || st.Segments[0].Sealed {
		t.Fatalf("compact of single-segment repo changed layout: %+v", st.Segments)
	}
	if r.Len() != 10 {
		t.Fatalf("len = %d, want 10", r.Len())
	}
}

// TestCompactRenameFailureLeavesRepoUsable is the regression test for
// the wedged-handle bug: a failed compaction cutover must leave the
// repository fully writable (the pre-segmentation Compact closed the
// live log handle before renaming, so a rename failure left every later
// Append buffering into a dead writer).
func TestCompactRenameFailureLeavesRepoUsable(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS()
	r, err := Open(dir, WithSegmentSize(256), WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 60; i++ {
		if _, err := r.Append(obs(i, 0, "happy", 1)); err != nil {
			t.Fatal(err)
		}
	}

	// Fail the merged-segment rename (manifest renames keep working, so
	// the pre-compaction roll succeeds and the failure lands exactly at
	// cutover).
	boom := errors.New("injected rename failure")
	fsys.Inject = func(n int, op vfs.Op, path string) error {
		if op == vfs.OpRename && strings.HasSuffix(path, segSuffix) {
			return boom
		}
		return nil
	}

	if err := r.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact err = %v, want injected failure", err)
	}
	// The repository is not wedged: appends land, flush and fsync see no
	// stale error, and everything is durable.
	for i := 0; i < 20; i++ {
		if _, err := r.Append(obs(1000+i, 1, "sad", 1)); err != nil {
			t.Fatalf("append after failed compact: %v", err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatalf("sync after failed compact: %v", err)
	}
	want := scanAll(t, r)

	// With the fault cleared the next compaction succeeds.
	fsys.Inject = nil
	if err := r.Compact(); err != nil {
		t.Fatalf("retry compact: %v", err)
	}
	if got := scanAll(t, r); !reflect.DeepEqual(got, want) {
		t.Fatal("records changed across failed+retried compact")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, want) {
		t.Fatal("reopen lost records after failed+retried compact")
	}
}

func TestOpenLocked(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open err = %v, want ErrLocked", err)
	}
	// A writer also blocks read-only opens.
	if _, err := Open(dir, WithReadOnly()); !errors.Is(err, ErrLocked) {
		t.Fatalf("read-only Open under writer err = %v, want ErrLocked", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	r2.Close()
}

// TestOpenReadOnly pins the shared-lease read path: concurrent
// read-only opens coexist, writers are excluded while readers hold the
// lease, mutations are rejected, and nothing on disk changes — even a
// torn active tail is replayed, not repaired.
func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := r.Append(obs(i, 0, "happy", 1)); err != nil {
			t.Fatal(err)
		}
	}
	want := scanAll(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the active tail: read-only opens must replay the valid
	// prefix without truncating the file.
	segPath := activeSegPath(t, dir)
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	ro1, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro1.Close()
	ro2, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatalf("second read-only Open: %v", err)
	}
	defer ro2.Close()
	if got := scanAll(t, ro1); !reflect.DeepEqual(got, want[:len(want)-1]) {
		t.Fatalf("read-only replay: %d records, want %d", len(got), len(want)-1)
	}
	if _, err := ro1.Append(obs(99, 0, "x", 1)); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Append err = %v, want ErrReadOnly", err)
	}
	if err := ro1.AppendBatch([]Record{obs(99, 0, "x", 1)}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AppendBatch err = %v, want ErrReadOnly", err)
	}
	if err := ro1.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Compact err = %v, want ErrReadOnly", err)
	}
	// Readers exclude writers.
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("writer Open under readers err = %v, want ErrLocked", err)
	}
	// The torn file was not repaired.
	after, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(raw)-3 {
		t.Fatalf("read-only open modified the segment: %d bytes, want %d", len(after), len(raw)-3)
	}
	ro1.Close()
	ro2.Close()
	// With readers gone a writer opens and repairs the tail as usual.
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Len() != len(want)-1 {
		t.Fatalf("writer after readers: %d records, want %d", w.Len(), len(want)-1)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(obs(1, 0, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt manifest: err = %v, want ErrCorrupt", err)
	}
}

func TestSealedSegmentCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := r.Append(obs(i, 0, "happy", 1)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := r.Stats()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !st.Segments[0].Sealed {
		t.Fatal("fixture produced no sealed segment")
	}
	path := filepath.Join(dir, st.Segments[0].Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Sealed segments were fsynced before the manifest referenced them:
	// damage there is real corruption and must surface, never be
	// silently truncated away like an active tail.
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt sealed segment: err = %v, want ErrCorrupt", err)
	}
}

// TestManifestLossWithSegmentsRefusesInit pins the guard against
// out-of-band manifest loss: a directory holding segments beyond
// 000001.seg but no MANIFEST must refuse to open (initialising fresh
// would orphan-sweep the surviving data), and must not delete anything.
func TestManifestLossWithSegmentsRefusesInit(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := r.Append(obs(i, 0, "happy", 1)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := r.Stats()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) < 2 {
		t.Fatal("fixture needs multiple segments")
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open without manifest over multi-segment data: err = %v, want ErrCorrupt", err)
	}
	for _, s := range st.Segments {
		if _, err := os.Stat(filepath.Join(dir, s.Name)); err != nil {
			t.Errorf("segment %s touched by refused init: %v", s.Name, err)
		}
	}
}

func TestOrphanSegmentCleanup(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(obs(1, 0, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between segment creation / compaction cutover and
	// the manifest write: stray files the manifest knows nothing about.
	for _, name := range []string{segFileName(99), "000042.seg.tmp", manifestTmp} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 1 {
		t.Fatalf("len = %d, want 1", r2.Len())
	}
	for _, name := range []string{segFileName(99), "000042.seg.tmp", manifestTmp} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s not cleaned up", name)
		}
	}
}

// TestCompactUnderLoadMatchesOracle runs compaction concurrently with
// batched appends and streaming queries, then asserts planned execution
// stays byte-identical to the naive oracle and that a reopen replays
// exactly what the writers stored.
func TestCompactUnderLoadMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: check.sh runs the oracle check in its own -race pass")
	}
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	const rounds, batch = 40, 25
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for b := 0; b < rounds; b++ {
			recs := make([]Record, batch)
			for i := range recs {
				recs[i] = stressRecord(b*batch + i)
			}
			if err := r.AppendBatch(recs); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := r.Compact(); err != nil {
				t.Error(err)
				return
			}
			it, err := r.QueryIter("label = 'happy'", QueryOpts{Limit: 10})
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			it.Close()
		}
	}()
	wg.Wait()

	for _, q := range []string{"label = 'sad'", "frame >= 100 AND frame < 500", "person = 2"} {
		expr, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := r.NaiveQueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planned, naive) {
			t.Errorf("query %q diverged from oracle after compact-under-load", q)
		}
	}
	want := scanAll(t, r)
	if len(want) != rounds*batch {
		t.Fatalf("stored %d records, want %d", len(want), rounds*batch)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := scanAll(t, r2); !reflect.DeepEqual(got, want) {
		t.Fatal("reopen diverged after compact-under-load")
	}
}

// TestSyncPolicies exercises the three fsync policies end to end (the
// crash semantics themselves cannot be asserted in-process, but every
// policy must produce an identical, replayable store).
func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncOnSeal, SyncAlways, SyncNone} {
		t.Run(fmt.Sprintf("policy%d", p), func(t *testing.T) {
			dir := t.TempDir()
			r, err := Open(dir, WithSegmentSize(512), WithSyncPolicy(p))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if _, err := r.Append(obs(i, 0, "x", 1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			r2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if r2.Len() != 40 {
				t.Fatalf("policy %d: reopened %d records, want 40", p, r2.Len())
			}
		})
	}
}
