package metadata

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// On-disk layout (DESIGN.md §5): the repository directory holds
// numbered segment files plus a checksummed MANIFEST naming them in
// order. All segments but the last are sealed — fsynced, immutable,
// replayed strictly (any corruption is an error, never silently
// truncated). The last segment is active: appends go there, and only
// its tail may legitimately be torn by a crash, so corrupt-tail
// truncation applies to it alone.
//
//	000001.seg   sealed
//	000002.seg   sealed
//	000003.seg   active
//	MANIFEST     segment list + CRC, replaced atomically
//
// The directory itself is flock'd while open — exclusively by writers,
// shared by read-only opens (LOCK is the non-unix fallback lease file).
//
// Every manifest replacement and segment creation is followed by a
// parent-directory fsync, so a crash can neither resurrect a
// pre-compaction segment set nor lose a just-created segment.

const (
	manifestName  = "MANIFEST"
	manifestTmp   = "MANIFEST.tmp"
	lockName      = "LOCK"
	segSuffix     = ".seg"
	legacyLogName = "metadata.log" // pre-segmentation single-file log
)

// segMeta describes one segment: its file, the contiguous run of
// in-memory positions it covers, and whether it is sealed.
type segMeta struct {
	name   string // file name within the repository dir ("000001.seg")
	bytes  int64  // encoded size; exact for sealed segments
	count  int    // records stored; exact for sealed segments
	first  int    // first in-memory position (derived at open, not persisted)
	sealed bool
	// quarantined marks a sealed segment that failed strict replay under
	// WithQuarantine: its manifest entry (and file) stay in place, its
	// records are absent from memory, and Compact refuses to run.
	quarantined bool
	// hasStats reports that the manifest entry references a statistics
	// sidecar (sts=<crc>); statsCRC is the sidecar version it binds to.
	hasStats bool
	statsCRC uint32
	// stats is the loaded (or freshly built) statistics block; nil when
	// the sidecar is absent or failed verification. Runtime only.
	stats *segStats
	// skipped marks a sealed segment excluded wholesale by an open-time
	// filter (WithOpenFilter): its records were never decoded and it
	// covers a zero-width position range. Runtime only, read-only opens.
	skipped bool
}

// segFileName renders the numbered segment file name.
func segFileName(id uint64) string {
	return fmt.Sprintf("%06d%s", id, segSuffix)
}

// segFileID parses the numeric part of a segment file name.
func segFileID(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segSuffix)
	if !ok || base == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// syncDir fsyncs a directory, making preceding renames and file
// creations within it durable. All filesystem access below goes
// through the vfs seam (internal/vfs) so the crash-consistency
// harness can inject faults at every operation.
func syncDir(fsys vfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("metadata: fsyncing dir %s: %w", dir, err)
	}
	return nil
}

// --- manifest ---

const manifestHeader = "dievent-manifest v1"

// encodeManifest renders the segment list:
//
//	dievent-manifest v1
//	seg 000001.seg sealed 12345 678 sts=deadbeef
//	seg 000002.seg active 90 12
//	crc32 deadbeef
//
// The trailing CRC covers every preceding byte; sealed byte/record
// counts are validated against the files at open. The optional sts=
// token on sealed entries names the CRC of the segment's statistics
// sidecar (NNNNNN.sts, see stats.go) — entries without it are the
// pre-stats format and their sidecars regenerate on a writable open.
func encodeManifest(segs []segMeta) []byte {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, s := range segs {
		state := "active"
		if s.sealed {
			state = "sealed"
		}
		fmt.Fprintf(&b, "seg %s %s %d %d", s.name, state, s.bytes, s.count)
		if s.sealed && s.hasStats {
			fmt.Fprintf(&b, " sts=%08x", s.statsCRC)
		}
		b.WriteByte('\n')
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc32 %08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

// parseManifest validates and decodes a manifest: header, CRC trailer,
// at least one segment, exactly one active segment in last position.
func parseManifest(data []byte) ([]segMeta, error) {
	text := string(data)
	crcAt := strings.LastIndex(text, "crc32 ")
	if crcAt < 0 || !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("metadata: manifest missing crc trailer: %w", ErrCorrupt)
	}
	wantCRC, err := strconv.ParseUint(strings.TrimSpace(text[crcAt+len("crc32 "):]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("metadata: manifest crc trailer: %w", ErrCorrupt)
	}
	body := text[:crcAt]
	if crc32.ChecksumIEEE([]byte(body)) != uint32(wantCRC) {
		return nil, fmt.Errorf("metadata: manifest checksum mismatch: %w", ErrCorrupt)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("metadata: manifest header: %w", ErrCorrupt)
	}
	var segs []segMeta
	seen := make(map[string]bool)
	for _, line := range lines[1:] {
		// Token-exact parsing: Sscanf would accept negative counts and
		// silently ignore trailing garbage, letting a CRC-valid but
		// hand-damaged entry flow a negative count into first-position
		// arithmetic and compaction's mergeCount.
		fields := strings.Fields(line)
		entryErr := func(what string) ([]segMeta, error) {
			return nil, fmt.Errorf("metadata: manifest entry %q: %s: %w", line, what, ErrCorrupt)
		}
		if len(fields) < 5 || fields[0] != "seg" {
			return entryErr("malformed")
		}
		name, state := fields[1], fields[2]
		nbytes, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || nbytes < 0 {
			return entryErr("bad byte count")
		}
		count, err := strconv.Atoi(fields[4])
		if err != nil || count < 0 {
			return entryErr("bad record count")
		}
		if _, ok := segFileID(name); !ok {
			return nil, fmt.Errorf("metadata: manifest segment name %q: %w", name, ErrCorrupt)
		}
		if state != "sealed" && state != "active" {
			return nil, fmt.Errorf("metadata: manifest segment state %q: %w", state, ErrCorrupt)
		}
		if seen[name] {
			return entryErr("duplicate segment name")
		}
		seen[name] = true
		sm := segMeta{name: name, bytes: nbytes, count: count, sealed: state == "sealed"}
		rest := fields[5:]
		if len(rest) > 0 && sm.sealed && strings.HasPrefix(rest[0], "sts=") {
			hex := strings.TrimPrefix(rest[0], "sts=")
			crc, err := strconv.ParseUint(hex, 16, 32)
			if err != nil || len(hex) != 8 {
				return entryErr("bad stats reference")
			}
			sm.hasStats, sm.statsCRC = true, uint32(crc)
			rest = rest[1:]
		}
		if len(rest) > 0 {
			return entryErr("trailing tokens")
		}
		segs = append(segs, sm)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("metadata: manifest lists no segments: %w", ErrCorrupt)
	}
	for i, s := range segs {
		if s.sealed != (i < len(segs)-1) {
			return nil, fmt.Errorf("metadata: manifest active segment misplaced: %w", ErrCorrupt)
		}
	}
	return segs, nil
}

// writeManifest atomically replaces the manifest: write a temp file,
// fsync it, rename over MANIFEST, fsync the directory. A crash leaves
// either the old or the new manifest, never a torn one. installed
// reports whether the rename happened: from that point the new
// manifest governs the live filesystem even if the trailing directory
// fsync failed, so on (installed, err) callers must commit to the new
// segment list — and in particular must NOT delete files it references
// — rather than rolling back; only a crash can revert to the old
// manifest, whose own files callers keep in place until a fully
// successful swap.
func writeManifest(fsys vfs.FS, dir string, segs []segMeta) (installed bool, err error) {
	tmp := filepath.Join(dir, manifestTmp)
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return false, fmt.Errorf("metadata: creating manifest temp: %w", err)
	}
	_, werr := f.Write(encodeManifest(segs))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return false, fmt.Errorf("metadata: writing manifest: %w", werr)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		fsys.Remove(tmp)
		return false, fmt.Errorf("metadata: installing manifest: %w", err)
	}
	return true, syncDir(fsys, dir)
}

// readManifest loads the manifest; ok is false when none exists yet.
func readManifest(fsys vfs.FS, dir string) (segs []segMeta, ok bool, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("metadata: reading manifest: %w", err)
	}
	segs, err = parseManifest(data)
	if err != nil {
		return nil, false, err
	}
	return segs, true, nil
}

// --- segment decoding ---

// decodeSegment replays one segment file. In strict mode (sealed
// segments) any malformed entry is an error — sealed segments were
// fsynced before the manifest referenced them, so corruption there is
// real damage, not a torn tail. In lenient mode (the active segment)
// decoding stops at the first bad entry and validBytes reports the end
// of the valid prefix, which the caller truncates to. A missing file is
// real damage in strict mode — a sealed segment was durable before its
// manifest entry existed, so its absence is ErrCorrupt even when the
// manifest records it as empty (0 bytes, 0 records); the byte/count
// cross-check alone would wave that case through. Leniently (the active
// segment, which a first open may not have created yet) a missing file
// decodes as empty.
func decodeSegment(fsys vfs.FS, path string, strict bool) (recs []Record, validBytes int64, err error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		if strict {
			return nil, 0, fmt.Errorf("metadata: sealed segment %s missing: %w", filepath.Base(path), ErrCorrupt)
		}
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("metadata: opening segment for replay: %w", err)
	}
	defer f.Close()
	cr := &countingReader{r: bufio.NewReaderSize(f, 1<<16)}
	for {
		rec, rerr := readRecord(cr)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			if strict {
				return nil, 0, fmt.Errorf("metadata: sealed segment %s: %w", filepath.Base(path), rerr)
			}
			break // torn active tail: keep the valid prefix
		}
		recs = append(recs, rec)
		validBytes = cr.n
	}
	return recs, validBytes, nil
}

// removeOrphans deletes files a crash may have stranded: segment files
// the manifest does not reference (created before a manifest write that
// never landed, or left behind by an interrupted compaction cutover),
// statistics sidecars no manifest entry binds to (written just before a
// seal or regeneration whose manifest never landed — their CRC is
// unreferenced, so they can never be trusted anyway), and stale
// temporaries. Runs after the manifest is loaded, before replay.
func removeOrphans(fsys vfs.FS, dir string, segs []segMeta) (removed int, err error) {
	known := make(map[string]bool, len(segs))
	knownStats := make(map[string]bool, len(segs))
	for _, s := range segs {
		known[s.name] = true
		if s.hasStats {
			knownStats[statsFileName(s.name)] = true
		}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("metadata: listing repository dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stray := strings.HasSuffix(name, ".tmp") || name == staleLockName
		if _, isSeg := segFileID(name); isSeg && !known[name] {
			stray = true
		}
		if strings.HasSuffix(name, statsSuffix) && !knownStats[name] {
			stray = true
		}
		if stray {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return removed, fmt.Errorf("metadata: removing orphan %s: %w", name, err)
			}
			removed++
		}
	}
	return removed, nil
}

// ensureInitSafe refuses to initialise a manifest-less directory that
// contains segment files beyond 000001.seg. A crash can never produce
// that state — the manifest exists before any roll can create
// 000002.seg, and manifest replacement is an atomic rename — so it
// means the MANIFEST was lost out-of-band (partial restore, stray
// deletion) while the data survived; initialising fresh would let the
// orphan sweep silently destroy every segment the lost manifest
// referenced. (A lone 000001.seg is the legitimate crash window of a
// first open or legacy migration and replays as the active segment.)
func ensureInitSafe(fsys vfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("metadata: listing repository dir: %w", err)
	}
	for _, e := range entries {
		if id, ok := segFileID(e.Name()); ok && id != 1 {
			return fmt.Errorf("metadata: segment %s present but MANIFEST missing (restore the manifest or move the segments aside): %w",
				e.Name(), ErrCorrupt)
		}
	}
	return nil
}

// nextSegIDAfter derives the next unused segment number from a
// manifest's segment list.
func nextSegIDAfter(segs []segMeta) uint64 {
	var max uint64
	for _, s := range segs {
		if id, ok := segFileID(s.name); ok && id > max {
			max = id
		}
	}
	return max + 1
}
