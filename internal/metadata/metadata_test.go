package metadata

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vfs"
)

// activeSegPath locates the active segment file via the manifest.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, ok, err := readManifest(vfs.OS, dir)
	if err != nil || !ok {
		t.Fatalf("reading manifest: ok=%v err=%v", ok, err)
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func obs(frame, person int, label string, v float64) Record {
	return Record{
		Kind: KindObservation, Frame: frame, FrameEnd: frame + 1,
		Time:   time.Duration(frame) * 40 * time.Millisecond,
		Person: person, Other: -1, Label: label, Value: v,
	}
}

func TestRecordValidate(t *testing.T) {
	good := obs(1, 0, "happy", 0.9)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Record)
	}{
		{"bad kind", func(r *Record) { r.Kind = 99 }},
		{"empty label", func(r *Record) { r.Label = "" }},
		{"huge label", func(r *Record) { r.Label = string(make([]byte, 300)) }},
		{"negative frame", func(r *Record) { r.Frame = -1 }},
		{"inverted interval", func(r *Record) { r.FrameEnd = 0; r.Frame = 5 }},
		{"empty tag key", func(r *Record) { r.Tags = map[string]string{"": "x"} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := good
			c.mut(&r)
			if err := r.Validate(); !errors.Is(err, ErrBadRecord) {
				t.Errorf("err = %v", err)
			}
		})
	}
	// Context records may omit the frame.
	ctx := Record{Kind: KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1, Label: "location"}
	if err := ctx.Validate(); err != nil {
		t.Errorf("context record: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := []Record{
		obs(10, 2, "happy", 0.83),
		{Kind: KindEvent, Frame: 100, FrameEnd: 160, Time: 4 * time.Second,
			Person: 0, Other: 2, Label: "eye-contact", Value: 1,
			Tags: map[string]string{"camera": "C1", "scene": "3"}},
		{Kind: KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
			Label: "location", Tags: map[string]string{"value": "meeting room"}},
	}
	for i, want := range recs {
		want.ID = uint64(i + 1)
		buf := appendRecord(nil, want)
		got, err := readRecord(byteReader(buf))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		assertRecordEq(t, got, want)
	}
}

func byteReader(b []byte) *countingReader {
	return &countingReader{r: bytes.NewReader(b)}
}

func assertRecordEq(t *testing.T, got, want Record) {
	t.Helper()
	if got.ID != want.ID || got.Kind != want.Kind || got.Frame != want.Frame ||
		got.FrameEnd != want.FrameEnd || got.Time != want.Time ||
		got.Person != want.Person || got.Other != want.Other ||
		got.Label != want.Label || got.Value != want.Value {
		t.Fatalf("record mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Tags) != len(want.Tags) {
		t.Fatalf("tags mismatch: %v vs %v", got.Tags, want.Tags)
	}
	for k, v := range want.Tags {
		if got.Tags[k] != v {
			t.Fatalf("tag %q: %q vs %q", k, got.Tags[k], v)
		}
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(id uint64, frame uint16, person int8, label string, value float64, tagV string) bool {
		if label == "" {
			label = "x"
		}
		if len(label) > 200 {
			label = label[:200]
		}
		if len(tagV) > 500 {
			tagV = tagV[:500]
		}
		want := Record{
			ID: id, Kind: KindObservation, Frame: int(frame), FrameEnd: int(frame) + 1,
			Person: int(person), Other: -1, Label: label, Value: value,
			Tags: map[string]string{"k": tagV},
		}
		buf := appendRecord(nil, want)
		got, err := readRecord(byteReader(buf))
		if err != nil {
			return false
		}
		if got.Label != want.Label || got.Tags["k"] != want.Tags["k"] ||
			got.Frame != want.Frame || got.Person != want.Person {
			return false
		}
		// NaN values survive as NaN (bit-level round trip).
		if value != value {
			return got.Value != got.Value
		}
		return got.Value == want.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRepositoryAppendQuery(t *testing.T) {
	r := NewMem()
	for i := 0; i < 100; i++ {
		rec := obs(i, i%4, []string{"neutral", "happy", "sad"}[i%3], float64(i)/100)
		if _, err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	got, err := r.Query("label = 'happy' AND frame < 30")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range got {
		if rec.Label != "happy" || rec.Frame >= 30 {
			t.Errorf("stray record %v", rec)
		}
	}
	if len(got) != 10 {
		t.Errorf("got %d records, want 10", len(got))
	}
	// Results sorted by frame.
	for i := 1; i < len(got); i++ {
		if got[i].Frame < got[i-1].Frame {
			t.Error("results not frame-ordered")
		}
	}
}

func TestRepositoryPersonQuery(t *testing.T) {
	r := NewMem()
	if _, err := r.Append(Record{
		Kind: KindEvent, Frame: 50, FrameEnd: 80, Person: 0, Other: 2,
		Label: "eye-contact", Value: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(obs(10, 3, "happy", 1)); err != nil {
		t.Fatal(err)
	}
	// person is 1-based in queries; the EC record involves P1 (ID 0)
	// as person and P3 (ID 2) as other.
	got, err := r.Query("person = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Label != "eye-contact" {
		t.Errorf("person=1 → %v", got)
	}
	// other = 3 finds the same record.
	got, err = r.Query("other = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("other=3 → %v", got)
	}
}

func TestQueryOperatorsAndGrouping(t *testing.T) {
	r := NewMem()
	for i := 0; i < 20; i++ {
		if _, err := r.Append(obs(i, 0, "happy", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Query("(frame < 5 OR frame >= 15) AND value != 3")
	if err != nil {
		t.Fatal(err)
	}
	want := 9 // frames 0,1,2,4 + 15..19
	if len(got) != want {
		t.Errorf("got %d, want %d", len(got), want)
	}
	got, err = r.Query("NOT frame < 18")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("NOT query got %d", len(got))
	}
}

func TestQueryTagAndKind(t *testing.T) {
	r := NewMem()
	rec := obs(5, 1, "gaze", 0.7)
	rec.Tags = map[string]string{"camera": "C2"}
	if _, err := r.Append(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(obs(6, 1, "gaze", 0.7)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Query("tag.camera = 'C2'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Frame != 5 {
		t.Errorf("tag query → %v", got)
	}
	// tag != matches records lacking the tag too.
	got, err = r.Query("tag.camera != 'C2'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Frame != 6 {
		t.Errorf("tag != query → %v", got)
	}
	got, err = r.Query("kind = observation")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("kind query → %d", len(got))
	}
}

func TestQuerySyntaxErrors(t *testing.T) {
	r := NewMem()
	bad := []string{
		"",
		"label =",
		"= 'x'",
		"label = 'unterminated",
		"bogusfield = 3",
		"frame = 'str'",
		"label < 'x'",
		"kind = 99",
		"kind = nosuchkind",
		"(frame = 1",
		"frame = 1 extra",
		"tag. = 'x'",
	}
	for _, q := range bad {
		if _, err := r.Query(q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("query %q: err = %v, want ErrBadQuery", q, err)
		}
	}
}

func TestQueryPlannerMatchesFullScan(t *testing.T) {
	// Property: the indexed path returns exactly what a brute-force
	// scan returns.
	r := NewMem()
	labels := []string{"happy", "sad", "eye-contact", "shot"}
	for i := 0; i < 200; i++ {
		rec := obs(i, i%5, labels[i%len(labels)], float64(i%7))
		if i%3 == 0 {
			rec.Kind = KindEvent
		}
		if _, err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"label = 'happy'",
		"label = 'happy' AND person = 2",
		"kind = event AND value > 3",
		"person = 3 AND frame >= 100",
		"label = 'sad' OR label = 'shot'",
	}
	for _, q := range queries {
		expr, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		var brute []Record
		r.Scan(func(rec Record) bool {
			ok, err := expr.Eval(rec)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				brute = append(brute, rec)
			}
			return true
		})
		if len(indexed) != len(brute) {
			t.Errorf("query %q: indexed %d vs brute %d", q, len(indexed), len(brute))
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 50; i++ {
		id, err := r.Append(obs(i, i%4, "happy", float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 50 {
		t.Fatalf("recovered %d records, want 50", r2.Len())
	}
	if rec, ok := r2.Get(ids[10]); !ok || rec.Frame != 10 {
		t.Errorf("Get(%d) = %v, %v", ids[10], rec, ok)
	}
	// Appends continue with fresh IDs.
	id, err := r2.Append(obs(99, 0, "sad", 1))
	if err != nil {
		t.Fatal(err)
	}
	if id != 51 {
		t.Errorf("next id = %d, want 51", id)
	}
}

func TestRecoveryTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := r.Append(obs(i, 0, "happy", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the last few bytes of the active segment (torn final
	// write).
	path := activeSegPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 19 {
		t.Errorf("recovered %d records after torn tail, want 19", r2.Len())
	}
	// The store remains writable and the new record is durable.
	if _, err := r2.Append(obs(100, 0, "sad", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	r3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if r3.Len() != 20 {
		t.Errorf("after repair-and-append: %d records, want 20", r3.Len())
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := r.Append(obs(i, 0, "happy", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compact appends work.
	if _, err := r.Append(obs(99, 1, "sad", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 31 {
		t.Errorf("after compact+append reopen: %d, want 31", r2.Len())
	}
}

func TestClosedRepositoryRejects(t *testing.T) {
	r := NewMem()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(obs(1, 0, "x", 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("append err = %v", err)
	}
	if _, err := r.Query("frame = 1"); !errors.Is(err, ErrClosed) {
		t.Errorf("query err = %v", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestKindParse(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %v round trip: %v %v", k, back, err)
		}
	}
	if _, err := ParseKind("nope"); !errors.Is(err, ErrBadQuery) {
		t.Error("unknown kind should fail")
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind should render")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{ID: 3, Kind: KindEvent, Frame: 10, FrameEnd: 60, Person: 0, Other: 2,
		Label: "eye-contact", Value: 1, Tags: map[string]string{"a": "b"}}
	if r.String() == "" {
		t.Error("record should render")
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	r := NewMem()
	defer r.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := r.Append(obs(i, w, "happy", 0.5))
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers, interleaved.
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := r.Query("label = 'happy' AND frame < 100"); err != nil {
					errs <- err
					return
				}
				if _, err := r.Count("person = 2"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.Len() != 800 {
		t.Errorf("len = %d, want 800", r.Len())
	}
	// IDs must be unique and dense.
	seen := map[uint64]bool{}
	r.Scan(func(rec Record) bool {
		if seen[rec.ID] {
			t.Fatalf("duplicate ID %d", rec.ID)
		}
		seen[rec.ID] = true
		return true
	})
}
