// Package metadata implements DiEvent's metadata repository (paper
// §II-E): durable storage for collected (time-invariant context) and
// extracted (per-frame observations, detected events) metadata, with
// inverted and temporal indexes and a small query language so scenes can
// be retrieved "w.r.t. a particular context" with a rich vocabulary.
//
// The engine is an embedded append-only store: records are appended to
// the active segment of a CRC-protected segmented log (fixed-size
// segments plus a checksummed MANIFEST, see DESIGN.md §5), kept in
// memory with secondary indexes, and recovered by replay on open —
// sealed segments in parallel, with a corrupt tail on the active
// segment truncated rather than fatal.
package metadata

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind classifies records.
type Kind uint8

// Record kinds.
const (
	// KindContext is time-invariant event metadata (location, menu,
	// occasion, participants).
	KindContext Kind = iota
	// KindObservation is per-frame extracted metadata (emotion, gaze
	// direction, detection confidence).
	KindObservation
	// KindEvent is a detected interval or instant (eye contact, shot
	// boundary, scene, alert).
	KindEvent
	// KindAnnotation is free-form human annotation.
	KindAnnotation

	numKinds
)

var kindNames = [numKinds]string{"context", "observation", "event", "annotation"}

// String names the kind.
func (k Kind) String() string {
	if int(k) >= int(numKinds) {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// ParseKind maps a name to its Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("metadata: unknown kind %q: %w", s, ErrBadQuery)
}

// Record is one unit of metadata. A Record is immutable once appended;
// the ID is assigned by the repository.
type Record struct {
	// ID is the repository-assigned sequence number (1-based).
	ID uint64
	// Kind classifies the record.
	Kind Kind
	// Frame is the frame index the record refers to, or -1 for
	// time-invariant records. For interval events, Frame is the start
	// and FrameEnd the exclusive end.
	Frame int
	// FrameEnd is the exclusive end frame for intervals (== Frame+1
	// for instants, -1 for time-invariant records).
	FrameEnd int
	// Time is the timestamp of Frame.
	Time time.Duration
	// Person is the primary participant ID, or -1.
	Person int
	// Other is the secondary participant (eye-contact partner), or -1.
	Other int
	// Label is the record's vocabulary term ("happy", "eye-contact",
	// "shot-boundary", "scene", "dominance", …).
	Label string
	// Value is a numeric payload (confidence, score, count).
	Value float64
	// Tags carries free-form key→value metadata (camera, location…).
	Tags map[string]string
}

// Validate checks structural invariants before append.
func (r Record) Validate() error {
	if int(r.Kind) >= int(numKinds) {
		return fmt.Errorf("metadata: kind %d: %w", r.Kind, ErrBadRecord)
	}
	if r.Label == "" {
		return fmt.Errorf("metadata: empty label: %w", ErrBadRecord)
	}
	if len(r.Label) > 255 {
		return fmt.Errorf("metadata: label %d bytes exceeds 255: %w", len(r.Label), ErrBadRecord)
	}
	if r.Kind != KindContext && r.Frame < 0 {
		return fmt.Errorf("metadata: %v record without frame: %w", r.Kind, ErrBadRecord)
	}
	if r.FrameEnd >= 0 && r.FrameEnd < r.Frame {
		return fmt.Errorf("metadata: interval [%d,%d) inverted: %w", r.Frame, r.FrameEnd, ErrBadRecord)
	}
	for k, v := range r.Tags {
		if k == "" || len(k) > 255 || len(v) > 1024 {
			return fmt.Errorf("metadata: bad tag %q: %w", k, ErrBadRecord)
		}
	}
	return nil
}

// Package errors.
var (
	ErrBadRecord = errors.New("metadata: bad record")
	ErrBadQuery  = errors.New("metadata: bad query")
	ErrClosed    = errors.New("metadata: repository closed")
	ErrCorrupt   = errors.New("metadata: corrupt log")
	// ErrLocked reports that another process holds a conflicting lease
	// on the repository directory (see Open and WithReadOnly).
	ErrLocked = errors.New("metadata: repository locked by another process")
	// ErrReadOnly rejects mutations on a repository opened with
	// WithReadOnly.
	ErrReadOnly = errors.New("metadata: repository opened read-only")
	// ErrQuarantined rejects operations (Compact) that would need the
	// records of a segment quarantined by WithQuarantine.
	ErrQuarantined = errors.New("metadata: repository has quarantined segments")
	// ErrLagging terminates a tail cursor whose subscriber queue
	// overflowed: the consumer fell behind the append rate and the
	// repository dropped the subscription rather than block writers or
	// buffer without bound. The consumer drains what was queued, then
	// Next returns this error; re-subscribe with Tail to resume.
	ErrLagging = errors.New("metadata: tail cursor lagging, subscription dropped")
	// ErrTailEnded terminates a tail cursor on a read-only repository
	// once its history is exhausted: no writer can exist in that
	// process, so the live phase can never fire and blocking would
	// block forever. It is the cursor's natural end (like io.EOF), not
	// a failure — TailCursor.Close does not report it.
	ErrTailEnded = errors.New("metadata: tail ended, repository is read-only (no live feed)")
)

// String renders a record compactly.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %v %q", r.ID, r.Kind, r.Label)
	if r.Frame >= 0 {
		if r.FrameEnd > r.Frame+1 {
			fmt.Fprintf(&b, " frames[%d,%d)", r.Frame, r.FrameEnd)
		} else {
			fmt.Fprintf(&b, " frame %d", r.Frame)
		}
	}
	if r.Person >= 0 {
		fmt.Fprintf(&b, " P%d", r.Person+1)
	}
	if r.Other >= 0 {
		fmt.Fprintf(&b, "↔P%d", r.Other+1)
	}
	if r.Value != 0 {
		fmt.Fprintf(&b, " v=%.3f", r.Value)
	}
	if len(r.Tags) > 0 {
		keys := make([]string, 0, len(r.Tags))
		for k := range r.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, r.Tags[k])
		}
	}
	return b.String()
}
