package metadata

import (
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func planFixture(t *testing.T) *Repository {
	t.Helper()
	r := NewMem()
	labels := []string{"happy", "sad", "neutral", "eye-contact"}
	for i := 0; i < 400; i++ {
		rec := obs(i, i%5, labels[i%len(labels)], float64(i%7))
		if i%4 == 3 {
			rec.Kind = KindEvent
			rec.Other = (i + 2) % 5
		}
		if _, err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestPlanUsesIndexIntersection(t *testing.T) {
	r := planFixture(t)
	defer r.Close()
	expr, err := Parse("label = 'eye-contact' AND kind = event AND person = 4 AND frame >= 100")
	if err != nil {
		t.Fatal(err)
	}
	r.mu.RLock()
	p := r.planLocked(expr)
	r.mu.RUnlock()
	if p.full {
		t.Fatal("sargable query planned as full scan")
	}
	if len(p.cand) >= 400 {
		t.Fatalf("no narrowing: %d candidates", len(p.cand))
	}
	// Candidates must cover all true matches (superset property).
	naive, err := r.NaiveQueryExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	inCand := map[int]bool{}
	for _, pos := range p.cand {
		inCand[pos] = true
	}
	for _, rec := range naive {
		if !inCand[int(rec.ID-1)] {
			t.Fatalf("match #%d missing from candidate set", rec.ID)
		}
	}
	// Person equality must survive in the residual (superset index).
	if p.residual == nil || !strings.Contains(p.residual.String(), "person") {
		t.Fatalf("person conjunct dropped from residual: %v", p.residual)
	}
	// Label/kind equalities and frame bounds must be dropped.
	for _, gone := range []string{"label", "kind", "frame"} {
		if p.residual != nil && strings.Contains(p.residual.String(), gone) {
			t.Errorf("%s conjunct kept in residual: %v", gone, p.residual)
		}
	}
}

func TestPlanFrameWindow(t *testing.T) {
	r := planFixture(t)
	defer r.Close()
	for _, q := range []string{
		"frame >= 100 AND frame < 110",
		"frame > 99.5 AND frame <= 109.25",
		"frame = 105",
		"time >= 4 AND time < 4.4",
	} {
		expr, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		r.mu.RLock()
		p := r.planLocked(expr)
		r.mu.RUnlock()
		if p.full {
			t.Errorf("range query %q planned as full scan", q)
			continue
		}
		if len(p.cand) > 20 {
			t.Errorf("range query %q: window too wide (%d)", q, len(p.cand))
		}
		naive, _ := r.NaiveQueryExpr(expr)
		planned, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		if len(planned) != len(naive) {
			t.Errorf("range query %q: planned %d vs naive %d", q, len(planned), len(naive))
		}
	}
}

// TestRangeIndexOutOfOrderIngest drives the range index's worst case —
// every insert out of order (descending frames), forcing repeated tail
// compactions — and checks range queries stay exact throughout.
func TestRangeIndexOutOfOrderIngest(t *testing.T) {
	r := NewMem()
	defer r.Close()
	const n = 5000
	for i := n - 1; i >= 0; i-- {
		if _, err := r.Append(obs(i, i%4, "happy", float64(i%7))); err != nil {
			t.Fatal(err)
		}
		// Query mid-ingest a few times so a non-empty tail is live.
		if i%1700 == 0 {
			expr, err := Parse("frame >= 100 AND frame < 200")
			if err != nil {
				t.Fatal(err)
			}
			naive, err := r.NaiveQueryExpr(expr)
			if err != nil {
				t.Fatal(err)
			}
			planned, err := r.QueryExpr(expr)
			if err != nil {
				t.Fatal(err)
			}
			if len(planned) != len(naive) {
				t.Fatalf("at %d remaining: planned %d vs naive %d", i, len(planned), len(naive))
			}
		}
	}
	recs, err := r.Query("frame >= 2000 AND frame < 2010")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("descending ingest range query: %d rows, want 10", len(recs))
	}
	// Time bounds exercise the second range index the same way.
	nTime, err := r.Count("time >= 80 AND time < 80.4")
	if err != nil {
		t.Fatal(err)
	}
	if nTime != 10 {
		t.Fatalf("time range query: %d rows, want 10", nTime)
	}
}

func TestPlanEmptyRange(t *testing.T) {
	r := planFixture(t)
	defer r.Close()
	// Contradictory bounds must plan to an empty window, not explode.
	recs, err := r.Query("frame > 100 AND frame < 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("contradictory range returned %d rows", len(recs))
	}
}

func TestExplainOutput(t *testing.T) {
	r := planFixture(t)
	defer r.Close()
	out, err := r.Explain("label = 'happy' AND person = 1 AND frame >= 100",
		QueryOpts{Limit: 10, Project: []string{"id", "frame"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"query:", "plan:", `index label="happy"`, "index person P1",
		"residual: person = 1", "exec:", "order: frame", "limit: 10", "project: id,frame",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	out, err = r.Explain("value > 3", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "full scan") {
		t.Errorf("unsargable query should explain a full scan:\n%s", out)
	}
	if _, err := r.Explain("bogus ===", QueryOpts{}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad query explain err = %v", err)
	}
}

func TestQueryOptsValidation(t *testing.T) {
	r := planFixture(t)
	defer r.Close()
	if _, err := r.QueryIter("frame = 1", QueryOpts{Project: []string{"nope"}}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("unknown projection field err = %v", err)
	}
	if _, err := r.QueryIter("frame = 1", QueryOpts{Order: 99}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("unknown order err = %v", err)
	}
	if _, err := r.QueryIter("frame = 1", QueryOpts{Limit: -1}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative limit err = %v", err)
	}
	if _, err := r.QueryIter("bogus", QueryOpts{}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("parse error err = %v", err)
	}
}

func TestProjection(t *testing.T) {
	r := NewMem()
	defer r.Close()
	rec := obs(10, 2, "happy", 0.5)
	rec.Tags = map[string]string{"camera": "C1"}
	if _, err := r.Append(rec); err != nil {
		t.Fatal(err)
	}
	it, err := r.QueryIter("frame = 10", QueryOpts{Project: []string{"label", "value"}})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got, ok := it.Next()
	if !ok {
		t.Fatal("no row")
	}
	if got.Label != "happy" || got.Value != 0.5 {
		t.Errorf("projected fields lost: %+v", got)
	}
	// Unprojected fields reset to absent sentinels, never fake P1/frame 0.
	if got.ID != 0 || got.Frame != -1 || got.Person != -1 || got.Other != -1 || got.Tags != nil {
		t.Errorf("unprojected fields leaked: %+v", got)
	}
}

func TestExprString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"label='happy'", "label = 'happy'"},
		{"kind = event AND label = happy", "kind = 'event' AND label = 'happy'"},
		{"(frame < 5 OR frame >= 15) AND value != 3", "(frame < 5 OR frame >= 15) AND value != 3"},
		{"NOT (frame < 18 AND person = 1)", "NOT (frame < 18 AND person = 1)"},
		{"NOT frame < 18", "NOT frame < 18"},
		{"tag.camera != 'C2'", "tag.camera != 'C2'"},
		{"time >= 1.5 AND frameend <= 60", "time >= 1.5 AND frameend <= 60"},
		{"value = 1e+21", "value = 1e+21"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestScanCallbackStops pins Scan's early-stop contract alongside its
// new error return.
func TestScanCallbackStops(t *testing.T) {
	r := planFixture(t)
	defer r.Close()
	n := 0
	if err := r.Scan(func(Record) bool { n++; return n < 10 }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("scan visited %d records, want 10", n)
	}
}

// TestTimeWindowNanosecondBoundary is the regression test for the lossy
// float time keys: the byTime range index keys on int64 nanoseconds,
// and at large offsets (here ~200 days, where one float64-seconds ulp
// spans several nanoseconds) a window probe converted naively from the
// query's float bound could exclude a record whose float re-evaluation
// accepts it. The widened probes must keep planned results
// byte-identical to the naive interpreter at every boundary operator.
func TestTimeWindowNanosecondBoundary(t *testing.T) {
	r := NewMem()
	defer r.Close()
	base := 200 * 24 * time.Hour // ulp of .Seconds() here ≈ 3.7 ns
	for i := -3; i <= 3; i++ {
		rec := Record{
			Kind: KindObservation, Frame: 1000 + i, FrameEnd: 1001 + i,
			Time:   base + time.Duration(i),
			Person: 0, Other: -1, Label: "t", Value: float64(i),
		}
		if _, err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Fillers far away keep the index non-trivial.
	for i := 0; i < 50; i++ {
		if _, err := r.Append(obs(i, 1, "filler", 1)); err != nil {
			t.Fatal(err)
		}
	}
	v := strconv.FormatFloat(base.Seconds(), 'g', -1, 64)
	for _, op := range []string{">=", ">", "<=", "<", "=", "!="} {
		q := "time " + op + " " + v
		expr, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := r.NaiveQueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planned, naive) {
			t.Errorf("query %q: planned %d records, naive %d — boundary mismatch",
				q, len(planned), len(naive))
		}
	}
	// Same property for very large frame numbers, where float64 can no
	// longer represent every integer (2^53 + k collapses pairwise).
	huge := int64(1) << 53
	for i := int64(0); i < 4; i++ {
		rec := Record{
			Kind: KindObservation, Frame: int(huge + i), FrameEnd: int(huge + i + 1),
			Person: 0, Other: -1, Label: "h", Value: 1,
		}
		if _, err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	fv := strconv.FormatFloat(float64(huge+1), 'g', -1, 64)
	for _, op := range []string{">=", "<", "="} {
		q := "frame " + op + " " + fv
		expr, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := r.NaiveQueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planned, naive) {
			t.Errorf("query %q: planned %d records, naive %d — boundary mismatch",
				q, len(planned), len(naive))
		}
	}
}
