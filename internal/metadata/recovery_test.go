package metadata

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestTornWriteRecoveryMatrix is the exhaustive crash-recovery property
// test: a repository with N records in its active segment is truncated
// at *every* byte offset of the final entry — every possible torn final
// write — and each truncation must reopen cleanly with exactly the
// valid prefix surviving and the next append round-tripping.
func TestTornWriteRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: check.sh runs the matrix in its own pass")
	}
	const n = 6
	base := t.TempDir()
	r, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := obs(i, i%3, "happy", float64(i))
		rec.Tags = map[string]string{"camera": "C1"}
		if _, err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	segPath := activeSegPath(t, base)
	segBytes, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(base, manifestName))
	if err != nil {
		t.Fatal(err)
	}

	// Decode entry boundaries: offsets[i] is the byte length of a file
	// holding exactly i+1 valid entries.
	cr := &countingReader{r: bytes.NewReader(segBytes)}
	var offsets []int64
	for {
		if _, err := readRecord(cr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding fixture segment: %v", err)
		}
		offsets = append(offsets, cr.n)
	}
	if len(offsets) != n || offsets[n-1] != int64(len(segBytes)) {
		t.Fatalf("fixture: %d entries over %d bytes", len(offsets), len(segBytes))
	}
	lastStart := offsets[n-2]

	segName := filepath.Base(segPath)
	for cut := lastStart; cut <= int64(len(segBytes)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName), segBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		want := n - 1
		if cut == int64(len(segBytes)) {
			want = n // nothing torn
		}
		if r.Len() != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, r.Len(), want)
		}
		// The surviving prefix is exactly the first `want` records.
		i := 0
		r.Scan(func(rec Record) bool {
			if rec.ID != uint64(i+1) || rec.Frame != i {
				t.Fatalf("cut %d: record %d corrupted: %v", cut, i, rec)
			}
			i++
			return true
		})
		// The next append lands after the truncated tail and survives a
		// reopen.
		id, err := r.Append(obs(100, 0, "sad", 0.5))
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		r2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if r2.Len() != want+1 {
			t.Fatalf("cut %d: after append reopen: %d records, want %d", cut, r2.Len(), want+1)
		}
		if rec, ok := r2.Get(id); !ok || rec.Frame != 100 || rec.Label != "sad" {
			t.Fatalf("cut %d: appended record did not round-trip: %v %v", cut, rec, ok)
		}
		r2.Close()
	}
}
