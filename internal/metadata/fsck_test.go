package metadata

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// fsckDamaged returns the entries of rep that carry an error.
func fsckDamaged(rep *FsckReport) []FsckSegment {
	var out []FsckSegment
	for _, s := range rep.Segments {
		if s.Err != "" {
			out = append(out, s)
		}
	}
	return out
}

func TestFsckCleanRepo(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "/repo"
	oracle, sealed := buildSealedRepo(t, fsys, dir, 60)
	if len(sealed) < 2 {
		t.Fatalf("want >=2 sealed segments, got %d", len(sealed))
	}
	rep, err := fsck(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean repo reported damage: %+v", fsckDamaged(rep))
	}
	if rep.Records != len(oracle) {
		t.Errorf("fsck decoded %d records, want %d", rep.Records, len(oracle))
	}
	if q := rep.Quarantinable(); len(q) != 0 {
		t.Errorf("clean repo quarantinable = %v", q)
	}
}

func TestFsckReportsCorruptSealedSegment(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "/repo"
	_, sealed := buildSealedRepo(t, fsys, dir, 60)
	victim := sealed[0].name
	corruptByte(t, fsys, filepath.Join(dir, victim))

	rep, err := fsck(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a flipped byte in a sealed segment")
	}
	if q := rep.Quarantinable(); len(q) != 1 || q[0] != victim {
		t.Errorf("quarantinable = %v, want [%s]", q, victim)
	}
	for _, s := range rep.Segments {
		if s.Name != victim && s.Err != "" {
			t.Errorf("undamaged %s reported: %s", s.Name, s.Err)
		}
	}
}

// TestFsckRespectsLeaseFileWithoutFlock: where flock is unsupported
// the shared lease cannot be taken; fsck falls back to probing the
// writer's LOCK lease file and refuses to race a live owner.
func TestFsckRespectsLeaseFileWithoutFlock(t *testing.T) {
	fsys := vfs.NewFaultFS()
	fsys.NoFlock = true
	dir := "/repo"
	buildSealedRepo(t, fsys, dir, 30)

	writeLockFile(t, fsys, dir, "pid 999999\n")
	stubPidAlive(t, true)
	if _, err := fsck(fsys, dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("fsck under live lease owner err = %v, want ErrLocked", err)
	}

	// A dead owner's stale lease does not block an offline check.
	stubPidAlive(t, false)
	rep, err := fsck(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("damage reported under stale lease: %+v", fsckDamaged(rep))
	}
}

func TestFsckReportsMissingSealedSegment(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "/repo"
	_, sealed := buildSealedRepo(t, fsys, dir, 60)
	victim := sealed[1].name
	if err := fsys.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	rep, err := fsck(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if q := rep.Quarantinable(); len(q) != 1 || q[0] != victim {
		t.Fatalf("quarantinable = %v, want [%s]", q, victim)
	}
}

func TestFsckRefusesLiveWriter(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "/repo"
	r, err := Open(dir, WithFS(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := fsck(fsys, dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("fsck under a live writer: err = %v, want ErrLocked", err)
	}
}

func TestFsckNotesTornActiveTail(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "/repo"
	buildSealedRepo(t, fsys, dir, 60)

	var active string
	var size int64
	segs, _, err := readManifest(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range segs {
		if !sm.sealed {
			active = sm.name
		}
	}
	if active == "" {
		t.Fatal("no active segment in manifest")
	}
	path := filepath.Join(dir, active)
	info, err := fsys.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size = info.Size()
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x12, 0x34, 0x56}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := fsck(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A torn tail is recoverable (open truncates it), so the repo is
	// still clean — but the finding must be surfaced.
	if !rep.Clean() {
		t.Fatalf("torn active tail reported as damage: %+v", fsckDamaged(rep))
	}
	found := false
	for _, s := range rep.Segments {
		if s.Name == active && strings.Contains(s.Note, "torn tail") {
			found = true
		}
	}
	if !found {
		t.Errorf("no torn-tail note for %s in %+v", active, rep.Segments)
	}
}

func TestFsckReportsLostManifest(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "/repo"
	buildSealedRepo(t, fsys, dir, 60)
	if err := fsys.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	rep, err := fsck(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a lost manifest over multiple segments")
	}
	if len(rep.Segments) != 1 || rep.Segments[0].Name != manifestName {
		t.Fatalf("report = %+v, want a single MANIFEST finding", rep.Segments)
	}
}

// TestFsckRealFilesystem exercises the exported entry point end to
// end on the real OS filesystem.
func TestFsckRealFilesystem(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := r.Append(obs(i, i%3, "q", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 40 {
		t.Fatalf("clean=%v records=%d, want clean with 40 records (%+v)",
			rep.Clean(), rep.Records, fsckDamaged(rep))
	}
}
