package metadata

import (
	"context"
	"errors"
	"fmt"
)

// Tail cursors (DESIGN.md §10): a query subscription that first drains
// every matching record already in the repository, then switches to a
// change-data-capture feed of new appends. Registration and the
// history/live watermark are taken under the repository's write lock, so
// the two phases partition the record sequence exactly: records appended
// before Tail returns arrive from the history scan, records appended
// after arrive from the live feed, each exactly once and in ID order
// across the seam.
//
// The live feed is decoupled from segment layout — the append path
// publishes in-memory record values, and neither a segment roll nor a
// 3-phase Compact touches the in-memory store or the subscriber
// registry — so cursors survive both without loss, duplication, or
// reordering. The cost of a subscriber on the append hot path is one
// non-blocking channel send per append.
//
// Backpressure is pluggable (DESIGN.md §11): by default a subscriber
// whose queue overflows is dropped with ErrLagging (the append path
// never blocks and never buffers without bound), but a TailOverflow
// policy can divert the overflow elsewhere — e.g. a disk-backed FIFO —
// and feed it back to the cursor in order.

// defaultTailBuffer is the live-queue capacity when TailOpts.Buffer is 0.
const defaultTailBuffer = 1024

// TailOverflow is a pluggable backpressure policy consulted when a tail
// subscriber's live queue is full. Once the first record is diverted the
// subscription permanently routes every subsequent append through the
// policy — the cursor drains the queued channel prefix, then switches to
// the policy's feed, so order is preserved across the seam.
//
// Divert runs on the append path under the repository's write lock: it
// must not block (an in-memory or buffered-file append is fine; a
// network round trip is not). Returning an error terminates the
// subscription with that error once the cursor has drained what was
// already buffered.
//
// TryNext and Ready are called only by the cursor's consumer goroutine.
// The policy must synchronise Divert against TryNext itself. Ready's
// channel must receive (or be closeable) after every Divert so a parked
// consumer wakes; the capacity-1 notification pattern
// (select { case ready <- struct{}{}: default: }) is sufficient because
// the consumer always drains TryNext to empty before parking again.
type TailOverflow interface {
	// Divert absorbs one record the live queue could not hold.
	Divert(rec Record) error
	// TryNext returns the next diverted record without blocking; ok
	// reports whether one was available. A non-nil error is terminal
	// for the cursor (e.g. the spill file went bad).
	TryNext() (rec Record, ok bool, err error)
	// Ready returns a channel that receives after records become
	// available, so the consumer can park between TryNext polls.
	Ready() <-chan struct{}
}

// TailOpts tunes a tail subscription.
type TailOpts struct {
	// Buffer is the live-feed queue capacity in records (default 1024).
	// The append path never blocks on a slow subscriber: when the queue
	// is full the subscription is dropped and the cursor, after draining
	// what was queued, terminates with ErrLagging — unless Overflow is
	// set, in which case the overflow diverts there instead. The queue
	// receives every append — filtering happens on the consumer side —
	// so size it for the repository's total append rate, not the match
	// rate.
	Buffer int
	// Overflow, when non-nil, replaces the drop-with-ErrLagging overflow
	// behaviour: records the queue cannot hold divert to the policy and
	// the cursor replays them, in order, after the queued prefix. A
	// Divert error (e.g. a spill quota exhausted) terminates the
	// subscription with that error instead.
	Overflow TailOverflow
}

// tailSub is the repository-side half of a tail cursor. Membership in
// Repository.subs and the done/divert transitions are guarded by
// Repository.mu; the consumer reads err only after done is closed, so
// the close happens-before edge publishes it.
type tailSub struct {
	ch       chan Record   // live feed, publisher → consumer
	done     chan struct{} // closed (under mu) on overflow, cursor Close, or repository Close
	divert   chan struct{} // closed (under mu) when the overflow policy takes over
	overflow TailOverflow  // nil = drop with ErrLagging on overflow
	err      error         // terminal reason, written before close(done)
	dead     bool          // guarded by mu; makes the done transition idempotent
	diverted bool          // guarded by mu; all further publishes route to overflow
}

// publishLocked feeds one freshly appended record to every live
// subscriber. Caller holds the write lock. Sends never block: a full
// queue either drops that subscription with ErrLagging or, with a
// TailOverflow policy, diverts the record (and all subsequent ones) to
// the policy instead of stalling the append path or buffering without
// bound.
func (r *Repository) publishLocked(rec Record) {
	if len(r.subs) == 0 {
		return
	}
	live := r.subs[:0]
	for _, s := range r.subs {
		if s.dead {
			continue
		}
		if s.diverted {
			if err := s.overflow.Divert(rec); err != nil {
				r.killSubLocked(s, err)
			} else {
				live = append(live, s)
			}
			continue
		}
		select {
		case s.ch <- rec:
			live = append(live, s)
		default:
			if s.overflow == nil {
				r.killSubLocked(s, ErrLagging)
				continue
			}
			// First overflow: switch the subscription to the policy.
			// Everything from this record on diverts, so the consumer
			// sees the queued channel prefix followed by the policy's
			// feed — the original order.
			s.diverted = true
			close(s.divert)
			if err := s.overflow.Divert(rec); err != nil {
				r.killSubLocked(s, err)
			} else {
				live = append(live, s)
			}
		}
	}
	for i := len(live); i < len(r.subs); i++ {
		r.subs[i] = nil
	}
	r.subs = live
}

// killSubLocked terminates a subscription with the given reason.
// Idempotent; caller holds the write lock.
func (r *Repository) killSubLocked(s *tailSub, err error) {
	if s.dead {
		return
	}
	s.dead = true
	s.err = err
	close(s.done)
}

// dropSubLocked removes s from the registry (cursor Close path).
func (r *Repository) dropSubLocked(s *tailSub) {
	for i, cur := range r.subs {
		if cur == s {
			last := len(r.subs) - 1
			r.subs[i] = r.subs[last]
			r.subs[last] = nil
			r.subs = r.subs[:last]
			return
		}
	}
}

// TailCursor streams query matches: history first, then live appends.
// Like Iter it is a single-consumer cursor — Next and Close must be
// called from one goroutine, but it may run concurrently with appends,
// segment rolls, and Compact on the same repository.
type TailCursor struct {
	repo     *Repository
	sub      *tailSub
	expr     Expr
	hist     *Iter // history phase; nil once drained
	noLive   bool  // read-only repository: no live phase can ever fire
	spilling bool  // live feed switched to the overflow policy
	err      error // terminal state for the consumer side
	closed   bool  // Close ran; makes Close idempotent
	closeRet error // what Close returned (stable across double Close)
}

// Tail subscribes to expr: the cursor first yields every matching record
// already appended (in ID order, via the query planner), then blocks on
// a live feed of matching future appends. The cursor must be Closed when
// abandoned. On a read-only repository no writer can exist in this
// process, so there is no live phase: once history is exhausted Next
// terminates with ErrTailEnded instead of blocking forever. See TailOpts
// for the overflow contract.
func (r *Repository) Tail(expr Expr, opts TailOpts) (*TailCursor, error) {
	if expr == nil {
		return nil, fmt.Errorf("metadata: nil tail expression: %w", ErrBadQuery)
	}
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("metadata: negative tail buffer %d: %w", opts.Buffer, ErrBadQuery)
	}
	buf := opts.Buffer
	if buf == 0 {
		buf = defaultTailBuffer
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	// Plan and subscribe under one write-lock hold: the plan's snapshot
	// ends exactly where the live feed begins.
	p := r.planLocked(expr)
	c := &TailCursor{
		repo: r,
		expr: expr,
		hist: newIter(p, QueryOpts{Order: OrderID}, 0),
	}
	if r.opts.readOnly {
		// Appends are structurally impossible through this handle, so a
		// subscription would never fire; the cursor is history-only.
		c.noLive = true
		r.mu.Unlock()
		return c, nil
	}
	sub := &tailSub{
		ch:       make(chan Record, buf),
		done:     make(chan struct{}),
		divert:   make(chan struct{}),
		overflow: opts.Overflow,
	}
	r.subs = append(r.subs, sub)
	c.sub = sub
	r.mu.Unlock()
	return c, nil
}

// Next blocks until the next matching record, the context is cancelled,
// or the subscription terminates. A context error is returned as-is and
// is not terminal — the cursor remains usable. Terminal errors are
// ErrLagging (queue overflow without an Overflow policy), a Divert or
// TryNext error from the policy, ErrTailEnded (history exhausted on a
// read-only repository, which has no live phase), ErrClosed (repository
// or cursor closed), or a query-evaluation error.
func (c *TailCursor) Next(ctx context.Context) (Record, error) {
	if c.err != nil {
		return Record{}, c.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// History phase: drain the planner's snapshot in ID order.
	if c.hist != nil {
		if err := ctx.Err(); err != nil {
			return Record{}, err
		}
		if rec, ok := c.hist.Next(); ok {
			return rec, nil
		}
		if err := c.hist.Err(); err != nil {
			c.fail(err)
			return Record{}, err
		}
		c.hist.Close()
		c.hist = nil
	}
	if c.noLive {
		c.err = ErrTailEnded
		return Record{}, c.err
	}
	// Live phase: the feed carries every append; filter consumer-side so
	// the publisher stays O(1) per subscriber regardless of expression.
	for {
		if c.spilling {
			rec, ok, err := c.pollOverflow()
			if err != nil {
				return Record{}, err
			}
			if ok {
				return rec, nil
			}
			select {
			case <-c.sub.overflow.Ready():
				continue
			case <-c.sub.done:
				return c.drainDone()
			case <-ctx.Done():
				return Record{}, ctx.Err()
			}
		}
		select {
		case rec := <-c.sub.ch:
			ok, err := c.eval(rec)
			if err != nil {
				return Record{}, err
			}
			if ok {
				return rec, nil
			}
		case <-c.sub.divert:
			// The publisher switched to the overflow policy. Drain the
			// queued channel prefix first — it precedes every diverted
			// record — then poll the policy.
			for !c.spilling {
				select {
				case rec := <-c.sub.ch:
					ok, err := c.eval(rec)
					if err != nil {
						return Record{}, err
					}
					if ok {
						return rec, nil
					}
				default:
					c.spilling = true
				}
			}
		case <-c.sub.done:
			return c.drainDone()
		case <-ctx.Done():
			return Record{}, ctx.Err()
		}
	}
}

// drainDone runs after the subscription terminated: deliver what the
// publisher queued (channel prefix, then any diverted records) before
// surfacing the terminal reason — a killed subscription never swallows
// records it already accepted.
func (c *TailCursor) drainDone() (Record, error) {
	for {
		select {
		case rec := <-c.sub.ch:
			ok, err := c.eval(rec)
			if err != nil {
				return Record{}, err
			}
			if ok {
				return rec, nil
			}
		default:
			if c.sub.diverted {
				rec, ok, err := c.pollOverflow()
				if err != nil {
					return Record{}, err
				}
				if ok {
					return rec, nil
				}
			}
			c.err = c.sub.err
			if c.err == nil {
				c.err = ErrClosed
			}
			return Record{}, c.err
		}
	}
}

// eval applies the subscription's expression to one live record, failing
// the cursor on evaluation errors.
func (c *TailCursor) eval(rec Record) (bool, error) {
	ok, err := c.expr.Eval(rec)
	if err != nil {
		c.fail(err)
		return false, err
	}
	return ok, nil
}

// pollOverflow pops diverted records until one matches the expression
// or the policy reports empty. It must fully drain non-matching records
// in one call — TailOverflow.Ready only signals new Diverts, so a
// consumer that parked with records still queued would miss its wakeup.
func (c *TailCursor) pollOverflow() (Record, bool, error) {
	for {
		rec, ok, err := c.sub.overflow.TryNext()
		if err != nil {
			c.fail(err)
			return Record{}, false, err
		}
		if !ok {
			return Record{}, false, nil
		}
		hit, err := c.eval(rec)
		if err != nil {
			return Record{}, false, err
		}
		if hit {
			return rec, true, nil
		}
	}
}

// fail records a terminal consumer-side error and unsubscribes so the
// publisher stops feeding a cursor nobody will drain.
func (c *TailCursor) fail(err error) {
	c.err = err
	if c.sub == nil {
		return
	}
	r := c.repo
	r.mu.Lock()
	r.dropSubLocked(c.sub)
	r.killSubLocked(c.sub, err)
	r.mu.Unlock()
}

// Kill terminates the subscription with reason (e.g. a server's drain
// sentinel). The standard kill contract applies: Next first drains the
// already-queued matching records (and any diverted ones), then
// surfaces reason as the terminal error. Safe to call from any
// goroutine, concurrently with Next; no-op on history-only cursors and
// on cursors already terminal.
func (c *TailCursor) Kill(reason error) {
	if c.sub == nil || reason == nil {
		return
	}
	r := c.repo
	r.mu.Lock()
	r.dropSubLocked(c.sub)
	r.killSubLocked(c.sub, reason)
	r.mu.Unlock()
}

// Err returns the cursor's terminal error, if any (nil while live).
// It is stable: Close never masks a prior terminal error.
func (c *TailCursor) Err() error { return c.err }

// Close unsubscribes and releases the cursor. Idempotent: a second
// Close returns the same value as the first, and Next after Close
// reports the cursor's terminal error (ErrClosed after a clean close).
//
// Close surfaces a prior terminal *failure* — ErrLagging, an overflow
// policy error, a query-evaluation error, an error from the history
// iterator's own close — so a deferred Close does not silently discard
// it. The benign terminal states are not failures and return nil: a
// clean close of a live cursor, ErrTailEnded (the read-only cursor's
// natural end), and ErrClosed (the repository closed under the cursor).
func (c *TailCursor) Close() error {
	if c.closed {
		return c.closeRet
	}
	c.closed = true
	if c.hist != nil {
		if herr := c.hist.Close(); herr != nil && c.err == nil {
			c.err = herr
		}
		c.hist = nil
	}
	prior := c.err
	if c.err == nil {
		c.err = ErrClosed
	}
	if c.sub != nil {
		r := c.repo
		r.mu.Lock()
		r.dropSubLocked(c.sub)
		r.killSubLocked(c.sub, ErrClosed)
		r.mu.Unlock()
	}
	if prior != nil && !errors.Is(prior, ErrClosed) && !errors.Is(prior, ErrTailEnded) {
		c.closeRet = prior
	}
	return c.closeRet
}
