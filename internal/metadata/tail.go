package metadata

import (
	"context"
	"fmt"
)

// Tail cursors (DESIGN.md §10): a query subscription that first drains
// every matching record already in the repository, then switches to a
// change-data-capture feed of new appends. Registration and the
// history/live watermark are taken under the repository's write lock, so
// the two phases partition the record sequence exactly: records appended
// before Tail returns arrive from the history scan, records appended
// after arrive from the live feed, each exactly once and in ID order
// across the seam.
//
// The live feed is decoupled from segment layout — the append path
// publishes in-memory record values, and neither a segment roll nor a
// 3-phase Compact touches the in-memory store or the subscriber
// registry — so cursors survive both without loss, duplication, or
// reordering. The cost of a subscriber on the append hot path is one
// non-blocking channel send per append.

// defaultTailBuffer is the live-queue capacity when TailOpts.Buffer is 0.
const defaultTailBuffer = 1024

// TailOpts tunes a tail subscription.
type TailOpts struct {
	// Buffer is the live-feed queue capacity in records (default 1024).
	// The append path never blocks on a slow subscriber: when the queue
	// is full the subscription is dropped and the cursor, after draining
	// what was queued, terminates with ErrLagging. The queue receives
	// every append — filtering happens on the consumer side — so size it
	// for the repository's total append rate, not the match rate.
	Buffer int
}

// tailSub is the repository-side half of a tail cursor. Membership in
// Repository.subs and the done transition are guarded by Repository.mu;
// the consumer reads err only after done is closed, so the close
// happens-before edge publishes it.
type tailSub struct {
	ch   chan Record   // live feed, publisher → consumer
	done chan struct{} // closed (under mu) on overflow, cursor Close, or repository Close
	err  error         // terminal reason, written before close(done)
	dead bool          // guarded by mu; makes the done transition idempotent
}

// publishLocked feeds one freshly appended record to every live
// subscriber. Caller holds the write lock. Sends never block: a full
// queue drops that subscription with ErrLagging instead of stalling the
// append path or buffering without bound.
func (r *Repository) publishLocked(rec Record) {
	if len(r.subs) == 0 {
		return
	}
	live := r.subs[:0]
	for _, s := range r.subs {
		if s.dead {
			continue
		}
		select {
		case s.ch <- rec:
			live = append(live, s)
		default:
			r.killSubLocked(s, ErrLagging)
		}
	}
	for i := len(live); i < len(r.subs); i++ {
		r.subs[i] = nil
	}
	r.subs = live
}

// killSubLocked terminates a subscription with the given reason.
// Idempotent; caller holds the write lock.
func (r *Repository) killSubLocked(s *tailSub, err error) {
	if s.dead {
		return
	}
	s.dead = true
	s.err = err
	close(s.done)
}

// dropSubLocked removes s from the registry (cursor Close path).
func (r *Repository) dropSubLocked(s *tailSub) {
	for i, cur := range r.subs {
		if cur == s {
			last := len(r.subs) - 1
			r.subs[i] = r.subs[last]
			r.subs[last] = nil
			r.subs = r.subs[:last]
			return
		}
	}
}

// TailCursor streams query matches: history first, then live appends.
// Like Iter it is a single-consumer cursor — Next and Close must be
// called from one goroutine — but it may run concurrently with appends,
// segment rolls, and Compact on the same repository.
type TailCursor struct {
	repo *Repository
	sub  *tailSub
	expr Expr
	hist *Iter // history phase; nil once drained
	err  error // terminal state for the consumer side
}

// Tail subscribes to expr: the cursor first yields every matching record
// already appended (in ID order, via the query planner), then blocks on
// a live feed of matching future appends. The cursor must be Closed when
// abandoned. Works on read-only repositories too (the live phase then
// simply never fires). See TailOpts for the overflow contract.
func (r *Repository) Tail(expr Expr, opts TailOpts) (*TailCursor, error) {
	if expr == nil {
		return nil, fmt.Errorf("metadata: nil tail expression: %w", ErrBadQuery)
	}
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("metadata: negative tail buffer %d: %w", opts.Buffer, ErrBadQuery)
	}
	buf := opts.Buffer
	if buf == 0 {
		buf = defaultTailBuffer
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	// Plan and subscribe under one write-lock hold: the plan's snapshot
	// ends exactly where the live feed begins.
	p := r.planLocked(expr)
	sub := &tailSub{ch: make(chan Record, buf), done: make(chan struct{})}
	r.subs = append(r.subs, sub)
	r.mu.Unlock()
	return &TailCursor{
		repo: r,
		sub:  sub,
		expr: expr,
		hist: newIter(p, QueryOpts{Order: OrderID}, 0),
	}, nil
}

// Next blocks until the next matching record, the context is cancelled,
// or the subscription terminates. A context error is returned as-is and
// is not terminal — the cursor remains usable. Terminal errors are
// ErrLagging (queue overflow), ErrClosed (repository or cursor closed),
// or a query-evaluation error.
func (c *TailCursor) Next(ctx context.Context) (Record, error) {
	if c.err != nil {
		return Record{}, c.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// History phase: drain the planner's snapshot in ID order.
	if c.hist != nil {
		if err := ctx.Err(); err != nil {
			return Record{}, err
		}
		if rec, ok := c.hist.Next(); ok {
			return rec, nil
		}
		if err := c.hist.Err(); err != nil {
			c.fail(err)
			return Record{}, err
		}
		c.hist.Close()
		c.hist = nil
	}
	// Live phase: the feed carries every append; filter consumer-side so
	// the publisher stays O(1) per subscriber regardless of expression.
	for {
		select {
		case rec := <-c.sub.ch:
			ok, err := c.expr.Eval(rec)
			if err != nil {
				c.fail(err)
				return Record{}, err
			}
			if ok {
				return rec, nil
			}
		case <-c.sub.done:
			// Drain what the publisher queued before the subscription
			// terminated, then surface the terminal reason.
			for {
				select {
				case rec := <-c.sub.ch:
					ok, err := c.expr.Eval(rec)
					if err != nil {
						c.fail(err)
						return Record{}, err
					}
					if ok {
						return rec, nil
					}
				default:
					c.err = c.sub.err
					if c.err == nil {
						c.err = ErrClosed
					}
					return Record{}, c.err
				}
			}
		case <-ctx.Done():
			return Record{}, ctx.Err()
		}
	}
}

// fail records a terminal consumer-side error and unsubscribes so the
// publisher stops feeding a cursor nobody will drain.
func (c *TailCursor) fail(err error) {
	c.err = err
	r := c.repo
	r.mu.Lock()
	r.dropSubLocked(c.sub)
	r.killSubLocked(c.sub, err)
	r.mu.Unlock()
}

// Err returns the cursor's terminal error, if any (nil while live).
func (c *TailCursor) Err() error { return c.err }

// Close unsubscribes and releases the cursor. Idempotent.
func (c *TailCursor) Close() error {
	if c.hist != nil {
		c.hist.Close()
		c.hist = nil
	}
	if c.err == nil {
		c.err = ErrClosed
	}
	r := c.repo
	r.mu.Lock()
	r.dropSubLocked(c.sub)
	r.killSubLocked(c.sub, ErrClosed)
	r.mu.Unlock()
	return nil
}
