package metadata

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// Planner/interpreter equivalence: a seeded, deterministic generator of
// records and query expressions asserts that planned parallel execution
// returns exactly what the naive interpreter returns — across orders,
// limits and projections. Every reference transformation (sort, limit,
// projection) is reimplemented here rather than shared with the engine,
// so a bug in the engine's helpers cannot hide itself.

var equivLabels = []string{"happy", "sad", "neutral", "eye-contact", "shot", "alert", "phase"}

// genRecord draws one valid record; roughly 1 in 10 is a time-invariant
// context record, frames arrive unsorted to exercise range-index
// insertion, and tags/partners appear sporadically.
func genRecord(rng *rand.Rand) Record {
	if rng.Intn(10) == 0 {
		rec := Record{
			Kind: KindContext, Frame: -1, FrameEnd: -1, Person: rng.Intn(7) - 1, Other: -1,
			Label: equivLabels[rng.Intn(len(equivLabels))],
			Value: float64(rng.Intn(9)) / 4,
		}
		if rng.Intn(2) == 0 {
			rec.Tags = map[string]string{"camera": fmt.Sprintf("C%d", rng.Intn(4))}
		}
		return rec
	}
	frame := rng.Intn(1000)
	rec := Record{
		Kind:   []Kind{KindObservation, KindObservation, KindEvent, KindAnnotation}[rng.Intn(4)],
		Frame:  frame,
		Person: rng.Intn(7) - 1,
		Other:  -1,
		Label:  equivLabels[rng.Intn(len(equivLabels))],
		Value:  float64(rng.Intn(200)-100) / 8,
		Time:   time.Duration(frame) * 40 * time.Millisecond,
	}
	switch rng.Intn(3) {
	case 0:
		rec.FrameEnd = frame + 1
	case 1:
		rec.FrameEnd = frame + 1 + rng.Intn(60)
	default:
		rec.FrameEnd = -1
	}
	if rec.Kind == KindEvent && rng.Intn(2) == 0 {
		rec.Other = rng.Intn(6)
	}
	if rng.Intn(4) == 0 {
		rec.Tags = map[string]string{"camera": fmt.Sprintf("C%d", rng.Intn(4))}
	}
	return rec
}

// genQuery builds a random query string with the full grammar: nested
// AND/OR/NOT over every field, operators valid per field, values both in
// and out of the stored distributions (plus fractional frame and person
// values probing the sargable-range float handling).
func genQuery(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(10) {
		case 0:
			return fmt.Sprintf("kind %s %s",
				[]string{"=", "!="}[rng.Intn(2)], kindNames[rng.Intn(int(numKinds))])
		case 1:
			return fmt.Sprintf("label %s '%s'",
				[]string{"=", "!="}[rng.Intn(2)],
				append(equivLabels, "absent")[rng.Intn(len(equivLabels)+1)])
		case 2:
			return fmt.Sprintf("person %s %s", cmpOp(rng),
				[]string{"-1", "0", "1", "2", "3", "7", "1.5"}[rng.Intn(7)])
		case 3:
			return fmt.Sprintf("other %s %d", cmpOp(rng), rng.Intn(8)-1)
		case 4:
			return fmt.Sprintf("frame %s %s", cmpOp(rng),
				[]string{"-1", "0", "250", "250.5", "500", "999", "2000"}[rng.Intn(7)])
		case 5:
			return fmt.Sprintf("frameend %s %d", cmpOp(rng), rng.Intn(1100)-10)
		case 6:
			return fmt.Sprintf("time %s %g", cmpOp(rng), float64(rng.Intn(4500))/100)
		case 7:
			return fmt.Sprintf("value %s %g", cmpOp(rng), float64(rng.Intn(220)-110)/8)
		case 8:
			return fmt.Sprintf("id %s %d", cmpOp(rng), rng.Intn(4000))
		default:
			return fmt.Sprintf("tag.camera %s 'C%d'",
				[]string{"=", "!="}[rng.Intn(2)], rng.Intn(5))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("NOT (%s)", genQuery(rng, depth-1))
	case 1:
		return fmt.Sprintf("(%s) OR (%s)", genQuery(rng, depth-1), genQuery(rng, depth-1))
	default: // bias toward AND: that is the sargable shape
		return fmt.Sprintf("(%s) AND (%s)", genQuery(rng, depth-1), genQuery(rng, depth-1))
	}
}

func cmpOp(rng *rand.Rand) string {
	return []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
}

// refSort orders records the reference way, per Order semantics.
func refSort(recs []Record, order Order) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		switch order {
		case OrderID:
			return a.ID < b.ID
		case OrderFrameDesc:
			if a.Frame != b.Frame {
				return a.Frame > b.Frame
			}
			return a.ID > b.ID
		default:
			if a.Frame != b.Frame {
				return a.Frame < b.Frame
			}
			return a.ID < b.ID
		}
	})
}

// refProject is an independent reimplementation of projection.
func refProject(rec Record, fields []string) Record {
	if len(fields) == 0 {
		return rec
	}
	out := Record{Frame: -1, FrameEnd: -1, Person: -1, Other: -1}
	for _, f := range fields {
		switch f {
		case "id":
			out.ID = rec.ID
		case "kind":
			out.Kind = rec.Kind
		case "frame":
			out.Frame = rec.Frame
		case "frameend":
			out.FrameEnd = rec.FrameEnd
		case "time":
			out.Time = rec.Time
		case "person":
			out.Person = rec.Person
		case "other":
			out.Other = rec.Other
		case "label":
			out.Label = rec.Label
		case "value":
			out.Value = rec.Value
		case "tags":
			out.Tags = rec.Tags
		}
	}
	return out
}

func fillRepo(t *testing.T, r *Repository, rng *rand.Rand, n int) {
	t.Helper()
	batch := make([]Record, 0, 64)
	for i := 0; i < n; i++ {
		batch = append(batch, genRecord(rng))
		if len(batch) == cap(batch) || i == n-1 {
			if err := r.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
}

func runEquivalence(t *testing.T, r *Repository, seed int64, queries int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	orders := []Order{OrderFrame, OrderID, OrderFrameDesc}
	limits := []int{0, 1, 7, 1000000}
	projections := [][]string{nil, {"id", "label"}, {"frame", "person", "value", "tags"}}

	for qi := 0; qi < queries; qi++ {
		q := genQuery(rng, 3)
		expr, err := Parse(q)
		if err != nil {
			t.Fatalf("generated query %q failed to parse: %v", q, err)
		}
		naive, err := r.NaiveQueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		// The collect-all path must be byte-identical to the oracle.
		planned, err := r.QueryExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planned, naive) {
			t.Fatalf("QueryExpr diverged from interpreter for %q:\n planned %d rows\n naive   %d rows",
				q, len(planned), len(naive))
		}
		// Every (order, limit, projection) combination over the cursor.
		order := orders[qi%len(orders)]
		for _, limit := range limits {
			for _, proj := range projections {
				want := append([]Record(nil), naive...)
				refSort(want, order)
				if limit > 0 && limit < len(want) {
					want = want[:limit]
				}
				for i := range want {
					want[i] = refProject(want[i], proj)
				}
				if len(want) == 0 {
					want = nil
				}
				it, err := r.QueryExprIter(expr, QueryOpts{Limit: limit, Order: order, Project: proj})
				if err != nil {
					t.Fatal(err)
				}
				got, err := it.Collect()
				if cerr := it.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					i := 0
					for i < len(got) && i < len(want) && reflect.DeepEqual(got[i], want[i]) {
						i++
					}
					t.Fatalf("planned execution diverged for %q (order=%v limit=%d proj=%v):\n got %d rows, want %d; first divergence at row %d",
						q, order, limit, proj, len(got), len(want), i)
				}
			}
		}
	}
}

func TestPlannerEquivalenceInMemory(t *testing.T) {
	seeds := []int64{1, 42, 20260725}
	queries := 120
	if testing.Short() {
		seeds = seeds[:1]
		queries = 40
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := NewMem()
			defer r.Close()
			rng := rand.New(rand.NewSource(seed))
			fillRepo(t, r, rng, 3000)
			runEquivalence(t, r, seed*31+7, queries)
		})
	}
}

// TestPlannerEquivalencePersisted covers the replay-built indexes and a
// post-Compact store: the same guarantees must hold for a repository
// recovered from its log.
func TestPlannerEquivalencePersisted(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	fillRepo(t, r, rng, 1500)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 1500 {
		t.Fatalf("recovered %d records, want 1500", r2.Len())
	}
	runEquivalence(t, r2, 100, 40)
	if err := r2.Compact(); err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, r2, 101, 40)
}

// TestIterLimitStopsEarly pins the cursor contract: Next returns false
// exactly at the limit and Err stays nil.
func TestIterLimitStopsEarly(t *testing.T) {
	r := NewMem()
	defer r.Close()
	rng := rand.New(rand.NewSource(5))
	fillRepo(t, r, rng, 500)
	it, err := r.QueryIter("frame >= 0", QueryOpts{Limit: 3, Order: OrderID})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var ids []uint64
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		ids = append(ids, rec.ID)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(ids) != 3 {
		t.Fatalf("limit 3 yielded %d rows", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("OrderID not ascending: %v", ids)
		}
	}
	// Next after exhaustion keeps returning false.
	if _, ok := it.Next(); ok {
		t.Fatal("Next after limit returned a record")
	}
}
