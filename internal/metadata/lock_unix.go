//go:build unix

package metadata

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes the repository directory's advisory flock — exclusive
// for writers, shared for read-only opens (any number of readers
// coexist; readers and a writer conflict both ways). Locking the
// directory fd itself means read-only mode creates nothing on disk. A
// busy lease fails fast with ErrLocked instead of interleaving appends
// into one log; any other flock failure (e.g. a filesystem without
// lock support) surfaces verbatim. The kernel releases the lease when
// the handle closes, including on crash, so no stale-lock recovery is
// needed.
func lockDir(dir string, shared bool) (*os.File, error) {
	f, err := os.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("metadata: opening %s for locking: %w", dir, err)
	}
	how := syscall.LOCK_EX
	if shared {
		how = syscall.LOCK_SH
	}
	if err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("metadata: %s: %w", dir, ErrLocked)
		}
		return nil, fmt.Errorf("metadata: flock %s: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the lease (closing the handle drops the flock).
func unlockDir(f *os.File) error {
	if f == nil {
		return nil
	}
	return f.Close()
}
