package metadata

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// buildSealedRepo fills a FaultFS-backed repository with frames
// 0..n-1 under a small segment size, returning the oracle and the
// sealed-segment layout (name, first oracle index, record count).
type sealedSeg struct {
	name    string
	first   int
	records int
}

func buildSealedRepo(t *testing.T, fsys *vfs.FaultFS, dir string, n int) ([]Record, []sealedSeg) {
	t.Helper()
	r, err := Open(dir, WithFS(fsys), WithSegmentSize(300))
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Record
	for i := 0; i < n; i++ {
		rec := obs(i, i%3, "q", 1)
		id, err := r.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		rec.ID = id
		oracle = append(oracle, rec)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var sealed []sealedSeg
	first := 0
	for _, s := range st.Segments {
		if s.Sealed {
			sealed = append(sealed, sealedSeg{name: s.Name, first: first, records: s.Records})
		}
		first += s.Records
	}
	if len(sealed) < 3 {
		t.Fatalf("want ≥3 sealed segments, got %d", len(sealed))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return oracle, sealed
}

// corruptByte flips one byte in the middle of a file on the FaultFS.
func corruptByte(t *testing.T, fsys *vfs.FaultFS, path string) {
	t.Helper()
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(int64(len(data)/2), io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{data[len(data)/2] ^ 0xff}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineIsolatesCorruptSealedSegment(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "repo"
	oracle, sealed := buildSealedRepo(t, fsys, dir, 90)
	victim := sealed[1] // middle segment: both gap edges exist
	corruptByte(t, fsys, filepath.Join(dir, victim.name))

	// Strict mode (the default) still refuses the whole open.
	if _, err := Open(dir, WithFS(fsys)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict Open err = %v, want ErrCorrupt", err)
	}

	// Degraded mode opens, serving everything but the damaged segment.
	r, err := Open(dir, WithFS(fsys), WithQuarantine())
	if err != nil {
		t.Fatalf("quarantine Open: %v", err)
	}
	defer r.Close()
	if got, want := r.Len(), len(oracle)-victim.records; got != want {
		t.Fatalf("Len = %d, want %d (oracle minus quarantined)", got, want)
	}

	// Surviving records are intact and queryable.
	recs, err := r.Query(`label = 'q'`)
	if err != nil {
		t.Fatalf("query on degraded store: %v", err)
	}
	if len(recs) != len(oracle)-victim.records {
		t.Fatalf("query returned %d records, want %d", len(recs), len(oracle)-victim.records)
	}

	// Health names the segment and brackets the gap.
	h, err := r.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || len(h.Quarantined) != 1 {
		t.Fatalf("health = %+v, want one quarantined segment", h)
	}
	q := h.Quarantined[0]
	if q.Name != victim.name || q.Records != victim.records || q.Err == "" {
		t.Fatalf("quarantined = %+v, want name %s records %d", q, victim.name, victim.records)
	}
	wantLo := oracle[victim.first-1]
	wantHi := oracle[victim.first+victim.records]
	if q.FrameGap != [2]int{wantLo.Frame, wantHi.Frame} {
		t.Fatalf("FrameGap = %v, want [%d %d]", q.FrameGap, wantLo.Frame, wantHi.Frame)
	}
	if q.TimeGap[0] != wantLo.Time || q.TimeGap[1] != wantHi.Time {
		t.Fatalf("TimeGap = %v, want [%v %v]", q.TimeGap, wantLo.Time, wantHi.Time)
	}

	// Stats agrees.
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}

	// Compact refuses to launder the gap away.
	if err := r.Compact(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Compact err = %v, want ErrQuarantined", err)
	}

	// The store still accepts appends, durably.
	id, err := r.Append(obs(5000, 0, "post", 1))
	if err != nil {
		t.Fatalf("append on degraded store: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, WithFS(fsys), WithQuarantine())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Get(id); !ok {
		t.Fatal("append on degraded store lost across reopen")
	}
	// The damaged file was preserved (never swept as an orphan).
	if _, err := fsys.Stat(filepath.Join(dir, victim.name)); err != nil {
		t.Fatalf("quarantined segment file: %v", err)
	}
}

func TestQuarantineMissingSealedSegment(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "repo"
	oracle, sealed := buildSealedRepo(t, fsys, dir, 90)
	victim := sealed[0]
	if err := fsys.Remove(filepath.Join(dir, victim.name)); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, WithFS(fsys)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict Open err = %v, want ErrCorrupt", err)
	}
	r, err := Open(dir, WithFS(fsys), WithQuarantine())
	if err != nil {
		t.Fatalf("quarantine Open over missing segment: %v", err)
	}
	defer r.Close()
	if got, want := r.Len(), len(oracle)-victim.records; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	h, err := r.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Quarantined) != 1 || h.Quarantined[0].Name != victim.name {
		t.Fatalf("health = %+v", h)
	}
	// The hole touches the start of the store: no left bracket.
	if h.Quarantined[0].FrameGap[0] != -1 {
		t.Fatalf("FrameGap = %v, want open left edge", h.Quarantined[0].FrameGap)
	}
}

func TestQuarantineUnderConcurrentLoad(t *testing.T) {
	fsys := vfs.NewFaultFS()
	dir := "repo"
	_, sealed := buildSealedRepo(t, fsys, dir, 90)
	corruptByte(t, fsys, filepath.Join(dir, sealed[1].name))

	r, err := Open(dir, WithFS(fsys), WithQuarantine())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Raced readers, writers and health probes against the degraded
	// store: no torn state, no failed queries (run under -race in CI).
	done := make(chan error, 3)
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := r.Append(obs(10000+i, 0, "load", 1)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := r.Query(`label = 'q'`); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 200; i++ {
			h, err := r.Health()
			if err != nil {
				done <- err
				return
			}
			if len(h.Quarantined) != 1 {
				done <- errors.New("quarantine report changed under load")
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
