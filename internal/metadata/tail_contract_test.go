package metadata

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTailReadOnlyEndsWithSentinel is the regression test for the
// read-only Tail contract: the live phase can never fire on a read-only
// repository (no writer exists in the process), so the cursor must
// terminate with ErrTailEnded once history is exhausted instead of
// blocking forever.
func TestTailReadOnlyEndsWithSentinel(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		label := "hit"
		if i%2 == 1 {
			label = "miss"
		}
		if _, err := w.Append(tailRecord(i, label)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// History must drain in full, in ID order.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for want := 0; want < 20; want += 2 {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("history Next(frame %d): %v", want, err)
		}
		if rec.Frame != want {
			t.Fatalf("history record frame %d, want %d", rec.Frame, want)
		}
	}
	// Then the sentinel, immediately — not a block until ctx expiry.
	start := time.Now()
	if _, err := cur.Next(ctx); !errors.Is(err, ErrTailEnded) {
		t.Fatalf("post-history Next = %v, want ErrTailEnded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("ErrTailEnded took seconds to surface; cursor blocked")
	}
	// Terminal: sticky across Next, visible via Err, benign for Close.
	if _, err := cur.Next(ctx); !errors.Is(err, ErrTailEnded) {
		t.Fatalf("second post-history Next = %v, want ErrTailEnded", err)
	}
	if !errors.Is(cur.Err(), ErrTailEnded) {
		t.Fatalf("Err() = %v, want ErrTailEnded", cur.Err())
	}
	if cerr := cur.Close(); cerr != nil {
		t.Fatalf("Close after natural end = %v, want nil", cerr)
	}
}

// mustParse compiles a query or fails the test.
func mustParse(t *testing.T, q string) Expr {
	t.Helper()
	expr, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return expr
}

// badEvalExpr evaluates fine on most records but errors on a trigger
// label, driving the cursor's evaluation-failure path.
type badEvalExpr struct{ trigger string }

func (e badEvalExpr) Eval(rec Record) (bool, error) {
	if rec.Label == e.trigger {
		return false, fmt.Errorf("metadata: boom on %q: %w", rec.Label, ErrBadQuery)
	}
	return true, nil
}
func (e badEvalExpr) String() string { return "label != '" + e.trigger + "'" }

// TestTailCloseContract is the table test for the Close/Err/Next
// contracts: Close surfaces prior terminal failures, treats benign ends
// (clean close, ErrTailEnded, repository ErrClosed) as nil, is
// idempotent, and Next after Close reports the terminal state.
func TestTailCloseContract(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		// arrange returns a cursor driven into the desired pre-Close
		// state plus the error Close should return.
		arrange func(t *testing.T) (*TailCursor, error)
		// wantNext is what Next must report after Close.
		wantNext error
	}{
		{
			name: "clean close while live",
			arrange: func(t *testing.T) (*TailCursor, error) {
				r := NewMem()
				t.Cleanup(func() { r.Close() })
				cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{})
				if err != nil {
					t.Fatal(err)
				}
				return cur, nil
			},
			wantNext: ErrClosed,
		},
		{
			name: "after ErrLagging",
			arrange: func(t *testing.T) (*TailCursor, error) {
				r := NewMem()
				t.Cleanup(func() { r.Close() })
				cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{Buffer: 2})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 5; i++ {
					if _, err := r.Append(tailRecord(i, "hit")); err != nil {
						t.Fatal(err)
					}
				}
				for { // drain the queued prefix to the terminal error
					if _, err := cur.Next(ctx); err != nil {
						if !errors.Is(err, ErrLagging) {
							t.Fatalf("drive to lagging: %v", err)
						}
						break
					}
				}
				return cur, ErrLagging
			},
			wantNext: ErrLagging,
		},
		{
			name: "after evaluation error",
			arrange: func(t *testing.T) (*TailCursor, error) {
				r := NewMem()
				t.Cleanup(func() { r.Close() })
				cur, err := r.Tail(badEvalExpr{trigger: "boom"}, TailOpts{})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.Append(tailRecord(0, "boom")); err != nil {
					t.Fatal(err)
				}
				if _, err := cur.Next(ctx); err == nil || !errors.Is(err, ErrBadQuery) {
					t.Fatalf("drive to eval error: %v", err)
				}
				return cur, ErrBadQuery
			},
			wantNext: ErrBadQuery,
		},
		{
			name: "after repository close",
			arrange: func(t *testing.T) (*TailCursor, error) {
				r := NewMem()
				cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{})
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
				if _, err := cur.Next(ctx); !errors.Is(err, ErrClosed) {
					t.Fatalf("drive to repo-closed: %v", err)
				}
				return cur, nil // benign: not the cursor's fault
			},
			wantNext: ErrClosed,
		},
		{
			name: "after ErrTailEnded (read-only natural end)",
			arrange: func(t *testing.T) (*TailCursor, error) {
				dir := t.TempDir()
				w, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.Append(tailRecord(0, "hit")); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				r, err := Open(dir, WithReadOnly())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { r.Close() })
				cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := cur.Next(ctx); err != nil {
					t.Fatal(err)
				}
				if _, err := cur.Next(ctx); !errors.Is(err, ErrTailEnded) {
					t.Fatalf("drive to tail end: %v", err)
				}
				return cur, nil // benign: the cursor's io.EOF
			},
			wantNext: ErrTailEnded,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cur, wantClose := c.arrange(t)
			got := cur.Close()
			if (wantClose == nil) != (got == nil) || (wantClose != nil && !errors.Is(got, wantClose)) {
				t.Fatalf("Close() = %v, want %v", got, wantClose)
			}
			// Idempotent: the second Close returns the same value.
			if got2 := cur.Close(); (got == nil) != (got2 == nil) || (got != nil && !errors.Is(got2, got)) {
				t.Fatalf("double Close() = %v, first was %v", got2, got)
			}
			// Next after Close is terminal with the documented state.
			if _, err := cur.Next(ctx); !errors.Is(err, c.wantNext) {
				t.Fatalf("Next after Close = %v, want %v", err, c.wantNext)
			}
			// Err stays consistent: a prior terminal failure is never
			// masked by Close; a clean close reads ErrClosed.
			if c.wantNext != nil && !errors.Is(cur.Err(), c.wantNext) {
				t.Fatalf("Err() after Close = %v, want %v", cur.Err(), c.wantNext)
			}
		})
	}
}

// TestTailLaggingDrainContract deterministically pins the drain loop: a
// subscription killed by overflow still delivers every already-queued
// matching record, in order, before surfacing ErrLagging — interleaved
// with non-matching records the consumer-side filter must skip during
// the drain.
func TestTailLaggingDrainContract(t *testing.T) {
	r := NewMem()
	defer r.Close()
	const buffer = 8
	cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{Buffer: buffer})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Fill the queue exactly (alternating hit/miss), then overflow it.
	// All appends run on this goroutine, so the queue contents are
	// deterministic: frames 0..7 queued, frame 8+ dropped the sub.
	for i := 0; i < buffer+4; i++ {
		label := "hit"
		if i%2 == 1 {
			label = "miss"
		}
		if _, err := r.Append(tailRecord(i, label)); err != nil {
			t.Fatal(err)
		}
	}
	// The subscription is already dead (killed at frame 8), but the
	// queued prefix must drain first: hits 0, 2, 4, 6 in order.
	ctx := context.Background()
	for want := 0; want < buffer; want += 2 {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("drain Next(frame %d) = %v; terminal error surfaced before the queue drained", want, err)
		}
		if rec.Frame != want || rec.Label != "hit" {
			t.Fatalf("drain record frame %d %q, want frame %d \"hit\"", rec.Frame, rec.Label, want)
		}
	}
	// Only now the terminal reason.
	if _, err := cur.Next(ctx); !errors.Is(err, ErrLagging) {
		t.Fatalf("post-drain Next = %v, want ErrLagging", err)
	}
	if !errors.Is(cur.Err(), ErrLagging) {
		t.Fatalf("Err() = %v, want ErrLagging", cur.Err())
	}
	// And Close reports the failure too (satellite: no silent discard).
	if cerr := cur.Close(); !errors.Is(cerr, ErrLagging) {
		t.Fatalf("Close() = %v, want ErrLagging", cerr)
	}
}

// memOverflow is an in-memory TailOverflow policy for the hook's
// contract tests: an unbounded (optionally capped) FIFO with the
// capacity-1 ready notification the interface documents.
type memOverflow struct {
	mu      sync.Mutex
	recs    []Record
	ready   chan struct{}
	cap     int // 0 = unbounded
	divErr  error
	diverts int
}

func newMemOverflow(capacity int) *memOverflow {
	return &memOverflow{ready: make(chan struct{}, 1), cap: capacity}
}

func (m *memOverflow) Divert(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cap > 0 && len(m.recs) >= m.cap {
		m.divErr = fmt.Errorf("overflow policy full at %d records: %w", m.cap, ErrLagging)
		return m.divErr
	}
	m.diverts++
	m.recs = append(m.recs, rec)
	select {
	case m.ready <- struct{}{}:
	default:
	}
	return nil
}

func (m *memOverflow) TryNext() (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recs) == 0 {
		return Record{}, false, nil
	}
	rec := m.recs[0]
	m.recs = m.recs[1:]
	return rec, true, nil
}

func (m *memOverflow) Ready() <-chan struct{} { return m.ready }

// TestTailOverflowPolicyPreservesOrder: with a TailOverflow policy, an
// overflowing subscription is not killed — the stream continues through
// the policy, in order, across the queue→policy seam, and concurrent
// appends keep flowing while the consumer lags.
func TestTailOverflowPolicyPreservesOrder(t *testing.T) {
	r := NewMem()
	defer r.Close()
	pol := newMemOverflow(0)
	const buffer = 4
	cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{Buffer: buffer, Overflow: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	const total = 100
	for i := 0; i < total; i++ {
		label := "hit"
		if i%3 == 2 {
			label = "miss"
		}
		if _, err := r.Append(tailRecord(i, label)); err != nil {
			t.Fatal(err)
		}
	}
	if pol.diverts == 0 {
		t.Fatal("policy never consulted despite a full queue")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for want := 0; want < total; want++ {
		if want%3 == 2 {
			continue
		}
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("Next(frame %d): %v", want, err)
		}
		if rec.Frame != want {
			t.Fatalf("got frame %d, want %d (loss/dup/reorder across the spill seam)", rec.Frame, want)
		}
	}
	// Appends after the consumer catches up still arrive (via the
	// policy — diversion is permanent once it starts).
	if _, err := r.Append(tailRecord(total, "hit")); err != nil {
		t.Fatal(err)
	}
	rec, err := cur.Next(ctx)
	if err != nil || rec.Frame != total {
		t.Fatalf("post-catch-up Next = (%d, %v), want frame %d", rec.Frame, err, total)
	}
}

// TestTailOverflowPolicyDivertErrorKills: a Divert failure (e.g. spill
// quota exhausted) terminates the subscription with that error — after
// the already-accepted records drain.
func TestTailOverflowPolicyDivertErrorKills(t *testing.T) {
	r := NewMem()
	defer r.Close()
	pol := newMemOverflow(3) // accepts 3 diverted records, then fails
	const buffer = 2
	cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{Buffer: buffer, Overflow: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// 2 queued + 3 diverted + 1 that overflows the policy and kills.
	for i := 0; i < buffer+3+1; i++ {
		if _, err := r.Append(tailRecord(i, "hit")); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for want := 0; want < buffer+3; want++ {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("accepted record %d lost to early termination: %v", want, err)
		}
		if rec.Frame != want {
			t.Fatalf("got frame %d, want %d", rec.Frame, want)
		}
	}
	if _, err := cur.Next(ctx); !errors.Is(err, ErrLagging) {
		t.Fatalf("post-drain Next = %v, want the policy's quota error (ErrLagging chain)", err)
	}
	if cerr := cur.Close(); !errors.Is(cerr, ErrLagging) {
		t.Fatalf("Close() = %v, want the terminal failure", cerr)
	}
}

// TestTailOverflowPolicyConcurrent races a slow consumer against a fast
// producer through the policy seam under -race: every matching record
// arrives exactly once, in order.
func TestTailOverflowPolicyConcurrent(t *testing.T) {
	r := NewMem()
	defer r.Close()
	pol := newMemOverflow(0)
	cur, err := r.Tail(mustParse(t, "label = 'hit'"), TailOpts{Buffer: 8, Overflow: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	const total = 5000
	go func() {
		for i := 0; i < total; i++ {
			label := "hit"
			if i%2 == 1 {
				label = "miss"
			}
			if _, err := r.Append(tailRecord(i, label)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for want := 0; want < total; want += 2 {
		rec, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("Next(frame %d): %v", want, err)
		}
		if rec.Frame != want {
			t.Fatalf("got frame %d, want %d", rec.Frame, want)
		}
	}
}
