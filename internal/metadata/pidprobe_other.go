//go:build !unix

package metadata

// pidAliveImpl: liveness probing is unsupported here — on Windows,
// os.Process.Signal returns "not supported by windows" for signal 0
// even when the process is alive, so a probe would misreport every
// live owner as dead and let a second writer steal the lease. Treat
// any pid-bearing lease as live instead; a crashed owner's lease must
// be cleared manually (or by a unix host), which is the same
// conservative behaviour the pre-takeover fallback had.
func pidAliveImpl(pid int) bool { return true }
