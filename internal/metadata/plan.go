package metadata

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Query planning (DESIGN.md §4): a compiled Expr is decomposed into
// sargable conjuncts — label/kind/person equalities and frame/time range
// bounds pulled off the top-level AND chain — plus a residual predicate.
// The equalities probe the secondary indexes and are intersected; range
// bounds either carve a window out of a sorted index (when no equality
// narrowed the search) or ride along as cheap per-record filters. The
// resulting candidate set is a superset of the true matches, and the
// executor re-checks bounds and residual on every candidate, so planned
// results are byte-identical to the naive interpreter's.

// bound is one side of a numeric range constraint.
type bound struct {
	val  float64
	incl bool
	set  bool
}

// tightenLo narrows a lower bound (keep the larger / stricter one).
func (b *bound) tightenLo(v float64, incl bool) {
	if !b.set || v > b.val || (v == b.val && b.incl && !incl) {
		b.val, b.incl, b.set = v, incl, true
	}
}

// tightenHi narrows an upper bound (keep the smaller / stricter one).
func (b *bound) tightenHi(v float64, incl bool) {
	if !b.set || v < b.val || (v == b.val && b.incl && !incl) {
		b.val, b.incl, b.set = v, incl, true
	}
}

func (b bound) okLo(x float64) bool {
	if !b.set {
		return true
	}
	if b.incl {
		return x >= b.val
	}
	return x > b.val
}

func (b bound) okHi(x float64) bool {
	if !b.set {
		return true
	}
	if b.incl {
		return x <= b.val
	}
	return x < b.val
}

// conjuncts is the sargable decomposition of a query expression.
type conjuncts struct {
	labels           []string
	kinds            []Kind
	persons          []int // 0-based IDs usable as byPerson probes
	frameLo, frameHi bound
	timeLo, timeHi   bound
	residual         []Expr // conjuncts the indexes cannot enforce
}

// analyze flattens the top-level AND chain of e into conjuncts. OR and
// NOT subtrees are opaque (their matches may fall outside any index
// bucket) and land in the residual wholesale.
func analyze(e Expr) conjuncts {
	var c conjuncts
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case andExpr:
			walk(v.l)
			walk(v.r)
		case cmpExpr:
			if !c.absorb(v) {
				c.residual = append(c.residual, v)
			}
		default:
			c.residual = append(c.residual, e)
		}
	}
	walk(e)
	return c
}

// absorb records what the indexes can enforce about one comparison and
// reports whether they enforce it *exactly* (true = the conjunct can be
// dropped from the residual). Person probes are supersets — byPerson
// also indexes eye-contact partners — so person equalities stay in the
// residual even when probed.
func (c *conjuncts) absorb(v cmpExpr) bool {
	switch v.field {
	case "label":
		if v.op == "=" {
			c.labels = append(c.labels, v.str)
			return true
		}
	case "kind":
		if v.op == "=" {
			if k, err := ParseKind(v.str); err == nil {
				c.kinds = append(c.kinds, k)
				return true
			}
		}
	case "person":
		// Queries are 1-based; only integral IDs ≥ 1 have index buckets.
		if v.op == "=" && v.num == math.Trunc(v.num) && v.num >= 1 && v.num <= 1e9 {
			c.persons = append(c.persons, int(v.num)-1)
		}
		return false
	case "frame":
		return absorbRange(&c.frameLo, &c.frameHi, v.op, v.num)
	case "time":
		return absorbRange(&c.timeLo, &c.timeHi, v.op, v.num)
	}
	return false
}

func absorbRange(lo, hi *bound, op string, v float64) bool {
	switch op {
	case "=":
		lo.tightenLo(v, true)
		hi.tightenHi(v, true)
	case ">":
		lo.tightenLo(v, false)
	case ">=":
		lo.tightenLo(v, true)
	case "<":
		hi.tightenHi(v, false)
	case "<=":
		hi.tightenHi(v, true)
	default: // != is not a range
		return false
	}
	return true
}

// boundsOK applies the combined frame/time range checks to one record,
// using the exact same float comparisons as cmpExpr.Eval.
func (c *conjuncts) boundsOK(rec Record) bool {
	if c.frameLo.set || c.frameHi.set {
		f := float64(rec.Frame)
		if !c.frameLo.okLo(f) || !c.frameHi.okHi(f) {
			return false
		}
	}
	if c.timeLo.set || c.timeHi.set {
		s := rec.Time.Seconds()
		if !c.timeLo.okLo(s) || !c.timeHi.okHi(s) {
			return false
		}
	}
	return true
}

// conjoin rebuilds an AND chain from residual conjuncts (nil when empty).
func conjoin(list []Expr) Expr {
	if len(list) == 0 {
		return nil
	}
	e := list[0]
	for _, next := range list[1:] {
		e = andExpr{e, next}
	}
	return e
}

func rangeString(name string, lo, hi bound) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(" ∈ ")
	if lo.set {
		if lo.incl {
			b.WriteByte('[')
		} else {
			b.WriteByte('(')
		}
		fmt.Fprintf(&b, "%g", lo.val)
	} else {
		b.WriteString("(-∞")
	}
	b.WriteString(", ")
	if hi.set {
		fmt.Fprintf(&b, "%g", hi.val)
		if hi.incl {
			b.WriteByte(']')
		} else {
			b.WriteByte(')')
		}
	} else {
		b.WriteString("+∞)")
	}
	return b.String()
}

// --- plan construction ---

// queryPlan is an executable plan over an immutable snapshot of the
// store. Everything it references — the snapshot's chunk list and the
// candidate positions — stays valid and unchanged after the repository
// lock is released, because record chunks are append-only and candidate
// lists are copied (or taken from append-only index slices) at plan
// time.
type queryPlan struct {
	recs snap  // snapshot; positions index into this
	cand []int // ascending positions to scan; nil when full or runs
	full bool  // scan every record (no index narrowed the search)
	// runs is the segment-pruned variant of a full scan: the ascending,
	// disjoint position ranges that survive statistics pruning (the
	// complement of the excluded segments' ranges). prefix holds the
	// cumulative run lengths, so the executor can map a flat candidate
	// index to its run by binary search.
	runs     [][2]int
	prefix   []int
	cj       conjuncts
	residual Expr
	steps    []string // explain lines, in plan order
}

// scanCount is the number of candidate positions the executor will visit.
func (p *queryPlan) scanCount() int {
	if p.runs != nil {
		if len(p.prefix) == 0 {
			return 0
		}
		return p.prefix[len(p.prefix)-1]
	}
	if p.full {
		return p.recs.n
	}
	return len(p.cand)
}

// planLocked builds a plan for expr. Caller holds at least a read lock.
func (r *Repository) planLocked(expr Expr) *queryPlan {
	cj := analyze(expr)
	p := &queryPlan{recs: r.store.snapshot(), cj: cj, residual: conjoin(cj.residual)}

	// Segment pruning (DESIGN.md §9): sealed segments whose statistics
	// block excludes every top-level OR branch of the query drop their
	// whole position range from the scan. Exclusion is conservative
	// (widened zone bounds, no-false-negative blooms, exact kind counts)
	// and the executor still re-checks bounds and residual on every
	// surviving candidate, so results stay byte-identical to the naive
	// oracle — the same superset-then-recheck discipline as keyRange.
	excl, nPruned, nConsidered := r.statsPruneLocked(expr, &cj)
	exclN := 0
	for _, e := range excl {
		exclN += e[1] - e[0]
	}
	pruneStep := func() {
		if nPruned > 0 {
			p.steps = append(p.steps, fmt.Sprintf("stats: pruned %d of %d sealed segment(s), %d positions excluded",
				nPruned, nConsidered, exclN))
		}
	}

	type idxList struct {
		desc string
		list []int
	}
	var lists []idxList
	for _, l := range cj.labels {
		lists = append(lists, idxList{fmt.Sprintf("index label=%q", l), r.byLabel[l]})
	}
	for _, k := range cj.kinds {
		lists = append(lists, idxList{fmt.Sprintf("index kind=%v", k), r.byKind[k]})
	}
	for _, pid := range cj.persons {
		lists = append(lists, idxList{fmt.Sprintf("index person P%d (superset: includes partners)", pid+1), r.byPerson[pid]})
	}

	switch {
	case len(lists) > 0:
		// Equality probes: intersect all lists, smallest first. Range
		// bounds ride along as per-record filters in the executor.
		sort.SliceStable(lists, func(i, j int) bool { return len(lists[i].list) < len(lists[j].list) })
		for _, l := range lists {
			p.steps = append(p.steps, fmt.Sprintf("%s: %d positions", l.desc, len(l.list)))
		}
		cand := append([]int(nil), lists[0].list...)
		for _, l := range lists[1:] {
			cand = intersect(cand, l.list)
		}
		if len(lists) > 1 {
			p.steps = append(p.steps, fmt.Sprintf("intersect: %d candidates", len(cand)))
		}
		p.cand = pruneCand(cand, excl)
		pruneStep()
		p.boundSteps()
	case cj.frameLo.set || cj.frameHi.set || cj.timeLo.set || cj.timeHi.set:
		// No equality probe: carve the narrower sorted-index window. The
		// index's unsorted tail (recent out-of-order inserts, bounded)
		// rides along wholesale — the executor re-checks bounds anyway.
		// Float query bounds convert to widened integer key bounds (see
		// keyRange), so the window is a superset of the float-exact
		// matches; the executor's bound re-check restores exactness.
		fLoK, fHiK := keyRange(cj.frameLo, cj.frameHi, 1)
		fLo, fHi := window(r.byFrame.sorted, r.frameKeyFn, fLoK, fHiK)
		fN := fHi - fLo + len(r.byFrame.tail)
		tLoK, tHiK := keyRange(cj.timeLo, cj.timeHi, 1e9)
		tLo, tHi := window(r.byTime.sorted, r.timeKeyFn, tLoK, tHiK)
		tN := tHi - tLo + len(r.byTime.tail)
		useTime := (cj.timeLo.set || cj.timeHi.set) &&
			(!(cj.frameLo.set || cj.frameHi.set) || tN < fN)
		var win, tail []int
		if useTime {
			win, tail = r.byTime.sorted[tLo:tHi], r.byTime.tail
			p.steps = append(p.steps, fmt.Sprintf("range %s via time index: %d positions (+%d unsorted tail)",
				rangeString("time", cj.timeLo, cj.timeHi), len(win), len(tail)))
		} else {
			win, tail = r.byFrame.sorted[fLo:fHi], r.byFrame.tail
			p.steps = append(p.steps, fmt.Sprintf("range %s via frame index: %d positions (+%d unsorted tail)",
				rangeString("frame", cj.frameLo, cj.frameHi), len(win), len(tail)))
		}
		// Copy under the lock: compaction rewrites these slices. Restore
		// position (== ID) order for the segment scan.
		cand := make([]int, 0, len(win)+len(tail))
		cand = append(append(cand, win...), tail...)
		sort.Ints(cand)
		p.cand = pruneCand(cand, excl)
		pruneStep()
		p.boundSteps()
	default:
		if len(excl) > 0 {
			// No index narrowed the search, but segment statistics did
			// (an OR of indexable branches, say): scan the complement of
			// the excluded ranges instead of every record.
			p.runs, p.prefix = complementRuns(r.store.n, excl)
			pruneStep()
			p.steps = append(p.steps, fmt.Sprintf("scan %d of %d records in %d run(s)",
				p.scanCount(), r.store.n, len(p.runs)))
		} else {
			p.full = true
			p.steps = append(p.steps, fmt.Sprintf("full scan: %d records", r.store.n))
		}
	}
	if p.residual != nil {
		p.steps = append(p.steps, "residual: "+p.residual.String())
	}
	return p
}

// boundSteps records the bound-filter explain lines (bounds are always
// re-checked by the executor, whatever narrowed the candidates).
func (p *queryPlan) boundSteps() {
	cj := &p.cj
	if cj.frameLo.set || cj.frameHi.set {
		p.steps = append(p.steps, "filter "+rangeString("frame", cj.frameLo, cj.frameHi))
	}
	if cj.timeLo.set || cj.timeHi.set {
		p.steps = append(p.steps, "filter "+rangeString("time", cj.timeLo, cj.timeHi))
	}
}

// pruneBranches decomposes e into the conjunct sets of its top-level OR
// branches. A record matching e must match some branch, and a record
// matching a branch satisfies every conjunct that branch absorbed — so
// a segment whose statistics exclude *every* branch can hold no match.
// Anything that is not a top-level OR is a single branch (NOT subtrees
// and nested ORs under AND stay opaque inside their branch's residual,
// where they cannot weaken the absorbed conjuncts).
func pruneBranches(e Expr) []conjuncts {
	if v, ok := e.(orExpr); ok {
		return append(pruneBranches(v.l), pruneBranches(v.r)...)
	}
	return []conjuncts{analyze(e)}
}

// prunable reports whether a branch carries any conjunct the statistics
// block can check. A branch with none can never be excluded.
func prunable(cj *conjuncts) bool {
	return len(cj.labels) > 0 || len(cj.kinds) > 0 || len(cj.persons) > 0 ||
		cj.frameLo.set || cj.frameHi.set || cj.timeLo.set || cj.timeHi.set
}

// excludedByAll reports whether the statistics exclude every branch.
func excludedByAll(s *segStats, branches []conjuncts) bool {
	for i := range branches {
		if !s.exclude(&branches[i]) {
			return false
		}
	}
	return true
}

// statsPruneLocked computes the ascending, coalesced position ranges of
// sealed segments whose statistics exclude every OR branch of expr (cj
// is the pre-computed analysis of expr, reused for the common non-OR
// case). Quarantined and open-filter-skipped segments cover zero-width
// ranges and are never considered; the active segment has no persisted
// statistics and is never pruned. Caller holds at least a read lock.
func (r *Repository) statsPruneLocked(expr Expr, cj *conjuncts) (excl [][2]int, pruned, considered int) {
	if len(r.segs) < 2 {
		return nil, 0, 0
	}
	var branches []conjuncts
	if _, ok := expr.(orExpr); ok {
		branches = pruneBranches(expr)
	} else {
		branches = []conjuncts{*cj}
	}
	for i := range branches {
		if !prunable(&branches[i]) {
			return nil, 0, 0 // this branch can never be excluded
		}
	}
	for i := 0; i < len(r.segs)-1; i++ {
		sm := &r.segs[i]
		lo, hi := sm.first, r.segs[i+1].first
		if hi <= lo || sm.stats == nil {
			continue
		}
		considered++
		if !excludedByAll(sm.stats, branches) {
			continue
		}
		pruned++
		if n := len(excl); n > 0 && excl[n-1][1] == lo {
			excl[n-1][1] = hi // coalesce adjacent excluded segments
		} else {
			excl = append(excl, [2]int{lo, hi})
		}
	}
	return excl, pruned, considered
}

// pruneCand drops candidate positions falling inside the excluded
// ranges (both ascending; single merge walk, filtered in place).
func pruneCand(cand []int, excl [][2]int) []int {
	if len(excl) == 0 || len(cand) == 0 {
		return cand
	}
	out := cand[:0]
	j := 0
	for _, pos := range cand {
		for j < len(excl) && pos >= excl[j][1] {
			j++
		}
		if j < len(excl) && pos >= excl[j][0] {
			continue
		}
		out = append(out, pos)
	}
	return out
}

// complementRuns converts excluded ranges into the surviving scan runs
// over [0, n) plus their cumulative-length prefix sums.
func complementRuns(n int, excl [][2]int) (runs [][2]int, prefix []int) {
	runs = [][2]int{}
	at, total := 0, 0
	emit := func(lo, hi int) {
		if hi > lo {
			runs = append(runs, [2]int{lo, hi})
			total += hi - lo
			prefix = append(prefix, total)
		}
	}
	for _, e := range excl {
		emit(at, e[0])
		at = e[1]
	}
	emit(at, n)
	return runs, prefix
}

// intersect merges two ascending position lists.
func intersect(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// keyRange converts float query bounds to inclusive int64 key bounds,
// widened so the index window never excludes a record the executor's
// exact float re-check would accept. The range indexes key on exact
// integers (frame index, time in *nanoseconds* — scale maps query units
// to key units), while query predicates evaluate in float64, where
// nanosecond distinctions collapse at large offsets (the ulp of 10^18
// is ~128); a naive conversion could therefore place the boundary a few
// keys too tight. Widening by a generous relative slack (~4500 ulps,
// still only ~1 ms of extra window per 11 days of timestamp) keeps the
// window a strict superset, and the executor's boundsOK re-check makes
// results byte-identical to the naive interpreter.
func keyRange(lo, hi bound, scale float64) (loK, hiK int64) {
	loK, hiK = math.MinInt64, math.MaxInt64
	if lo.set {
		loK = widenDown(lo.val * scale)
	}
	if hi.set {
		hiK = widenUp(hi.val * scale)
	}
	return loK, hiK
}

// widenDown returns a conservative integer lower bound below x.
func widenDown(x float64) int64 {
	f := math.Floor(x - slackFor(x))
	if f <= float64(math.MinInt64) {
		return math.MinInt64
	}
	if f >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(f)
}

// widenUp returns a conservative integer upper bound above x.
func widenUp(x float64) int64 {
	c := math.Ceil(x + slackFor(x))
	if c >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	if c <= float64(math.MinInt64) {
		return math.MinInt64
	}
	return int64(c)
}

// slackFor bounds the rounding error of the unit conversion and of
// float key comparisons: ~4500 ulps of x, at least 1.
func slackFor(x float64) float64 {
	return math.Abs(x)*1e-12 + 1
}

// window locates the half-open index range [lo, hi) of a sorted
// position index whose keys fall within the inclusive [loK, hiK] key
// bounds. Keys are ascending, so both predicates are monotone.
func window(idx []int, key func(int) int64, loK, hiK int64) (int, int) {
	n := len(idx)
	loI := 0
	if loK != math.MinInt64 {
		loI = sort.Search(n, func(i int) bool { return key(idx[i]) >= loK })
	}
	hiI := n
	if hiK != math.MaxInt64 {
		hiI = sort.Search(n, func(i int) bool { return key(idx[i]) > hiK })
	}
	if hiI < loI {
		hiI = loI
	}
	return loI, hiI
}

// Explain parses q, plans it, and renders the plan without executing it
// — the REPL's EXPLAIN mode. opts contributes the order/limit/projection
// and execution-layout lines.
func (r *Repository) Explain(q string, opts QueryOpts) (string, error) {
	expr, err := Parse(q)
	if err != nil {
		return "", err
	}
	if _, err := projMaskOf(opts.Project); err != nil {
		return "", err
	}
	if err := opts.validate(); err != nil {
		return "", err
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return "", ErrClosed
	}
	p := r.planLocked(expr)
	r.mu.RUnlock()

	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\nplan:\n", expr)
	for _, s := range p.steps {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	if p.residual == nil {
		b.WriteString("  residual: none\n")
	}
	n := p.scanCount()
	nseg, workers := segmentLayout(n)
	fmt.Fprintf(&b, "  exec: %d of %d records, %d segment(s) × %d, %d worker(s)\n",
		n, p.recs.n, nseg, querySegmentSize, workers)
	fmt.Fprintf(&b, "  order: %v", opts.Order)
	if opts.Limit > 0 {
		fmt.Fprintf(&b, ", limit: %d", opts.Limit)
	}
	if len(opts.Project) > 0 {
		fmt.Fprintf(&b, ", project: %s", strings.Join(opts.Project, ","))
	}
	b.WriteByte('\n')
	return b.String(), nil
}
