package metadata

import (
	"strings"
	"testing"
	"time"
)

// fuzzSampleRecords exercise Eval across the field space: context
// records without frames, intervals, partner pairs, tags, negative and
// NaN-free extreme values.
var fuzzSampleRecords = []Record{
	{ID: 1, Kind: KindContext, Frame: -1, FrameEnd: -1, Person: -1, Other: -1,
		Label: "location", Tags: map[string]string{"value": "meeting room"}},
	{ID: 2, Kind: KindObservation, Frame: 0, FrameEnd: 1, Person: 0, Other: -1,
		Label: "happy", Value: 0.83, Time: 40 * time.Millisecond},
	{ID: 3, Kind: KindEvent, Frame: 100, FrameEnd: 160, Person: 1, Other: 3,
		Label: "eye-contact", Value: 1, Time: 4 * time.Second,
		Tags: map[string]string{"camera": "C2"}},
	{ID: 4, Kind: KindAnnotation, Frame: 999999, FrameEnd: 999999, Person: 7, Other: 7,
		Label: "note", Value: -1e300},
}

// renderable reports whether e survives the grammar's one rendering gap:
// string operands containing a single quote cannot be re-quoted (the
// language has no escape sequence), so String() for them is lossy.
func renderable(e Expr) bool {
	switch v := e.(type) {
	case andExpr:
		return renderable(v.l) && renderable(v.r)
	case orExpr:
		return renderable(v.l) && renderable(v.r)
	case notExpr:
		return renderable(v.inner)
	case cmpExpr:
		return v.isNum || !strings.Contains(v.str, "'")
	}
	return false
}

// FuzzParseQuery drives the lexer/parser with arbitrary input: parsing
// must never panic, accepted queries must evaluate panic-free, and the
// canonical rendering must round-trip (parse → String → parse → String
// is a fixed point) whenever the expression is renderable.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		// Documented examples and grammar basics.
		"kind = event AND label = 'eye-contact' AND person = 1",
		"label = 'happy' AND frame >= 250 AND frame < 500",
		"tag.camera = 'C2' OR value > 0.9",
		"(frame < 5 OR frame >= 15) AND value != 3",
		"NOT frame < 18",
		"NOT NOT NOT value > 0",
		"other != 2 AND frameend <= 60",
		"time >= 1.5 AND time < 24e0",
		// Numbers: signs, exponents, floats, extremes.
		"frame >= 1e3 AND frame < 1e+4",
		"value <= -3.25e-2",
		"value = -0",
		"frame = 010",
		"value = 9007199254740993",
		"id > 0",
		// Person edge cases (1-based; 0 addresses absent participants).
		"person = 0",
		"person = -1",
		"person = 1.5",
		// Bareword values, dotted tag keys, whitespace soup.
		"label = happy",
		"kind = observation",
		"tag.a.b-c_d = 'x'",
		"  label\t=\n'x'  ",
		"label='x'AND person=1",
		// Unicode content.
		"label = 'héllo wörld'",
		"tag.caméra = 'C1'",
		// Malformed: each should error cleanly, never panic.
		"",
		"label =",
		"= 'x'",
		"label = 'unterminated",
		"bogusfield = 3",
		"frame = 'str'",
		"label < 'x'",
		"kind = 99",
		"kind = nosuchkind",
		"(((frame = 1",
		"frame = 1 extra",
		"tag. = 'x'",
		"value < 1e999",
		"1 = frame",
		"AND AND AND",
		"NOT",
		"()",
		"frame != != 1",
		"'lone string'",
		"frame = 1 OR",
		"-",
		"--1 = value",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		e, err := Parse(q)
		if err != nil {
			if e != nil {
				t.Fatalf("Parse(%q) returned expr AND error %v", q, err)
			}
			return
		}
		// Accepted queries evaluate without panicking on every record
		// shape (built-in exprs never error either).
		for _, rec := range fuzzSampleRecords {
			if _, err := e.Eval(rec); err != nil {
				t.Fatalf("Eval(%q, #%d): %v", q, rec.ID, err)
			}
		}
		if !renderable(e) {
			return
		}
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse of %q (rendered from %q) failed: %v", s, q, err)
		}
		if s2 := e2.String(); s2 != s {
			t.Fatalf("canonical round-trip diverged:\n  in:  %q\n  1st: %q\n  2nd: %q", q, s, s2)
		}
		// The rendering must also mean the same thing.
		for _, rec := range fuzzSampleRecords {
			got1, _ := e.Eval(rec)
			got2, _ := e2.Eval(rec)
			if got1 != got2 {
				t.Fatalf("rendering changed semantics for %q on #%d: %v vs %v", q, rec.ID, got1, got2)
			}
		}
	})
}
