package metadata

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Parallel execution (DESIGN.md §4): the candidate set of a queryPlan is
// partitioned into fixed-size segments scanned by a worker pool; each
// worker emits its segment's matches pre-sorted for the requested order,
// and the Iter k-way-merges segment outputs on demand, so results stream
// to the caller without materialising the merged set and a Limit stops
// the merge early.

// Order selects the result ordering of a planned query.
type Order uint8

const (
	// OrderFrame sorts by (Frame, ID) ascending — Query's order, with
	// time-invariant (frame −1) records first.
	OrderFrame Order = iota
	// OrderID yields append (ID) order.
	OrderID
	// OrderFrameDesc sorts by (Frame, ID) descending — latest first.
	OrderFrameDesc

	numOrders
)

// String names the order.
func (o Order) String() string {
	switch o {
	case OrderFrame:
		return "frame"
	case OrderID:
		return "id"
	case OrderFrameDesc:
		return "frame-desc"
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// QueryOpts tunes planned query execution.
type QueryOpts struct {
	// Limit caps the number of records yielded; 0 means unlimited.
	Limit int
	// Order selects the result ordering (default OrderFrame).
	Order Order
	// Project names the record fields to retain ("id", "kind", "frame",
	// "frameend", "time", "person", "other", "label", "value", "tags");
	// nil keeps full records. Unprojected fields are zeroed to their
	// absent sentinels (−1 for frame/person fields).
	Project []string
	// Ctx, when non-nil, cancels the query: segment scans stop at their
	// next cancellation check and Next reports false with Err returning
	// the context's error. nil means not cancellable.
	Ctx context.Context
}

func (o QueryOpts) validate() error {
	if o.Order >= numOrders {
		return fmt.Errorf("metadata: unknown order %d: %w", o.Order, ErrBadQuery)
	}
	if o.Limit < 0 {
		return fmt.Errorf("metadata: negative limit %d: %w", o.Limit, ErrBadQuery)
	}
	return nil
}

// --- projection ---

type projMask uint16

const (
	projID projMask = 1 << iota
	projKind
	projFrame
	projFrameEnd
	projTime
	projPerson
	projOther
	projLabel
	projValue
	projTags
)

var projFields = map[string]projMask{
	"id": projID, "kind": projKind, "frame": projFrame,
	"frameend": projFrameEnd, "time": projTime, "person": projPerson,
	"other": projOther, "label": projLabel, "value": projValue,
	"tags": projTags,
}

// projMaskOf compiles a projection field list (0 = keep everything).
func projMaskOf(fields []string) (projMask, error) {
	var m projMask
	for _, f := range fields {
		bit, ok := projFields[strings.ToLower(f)]
		if !ok {
			return 0, fmt.Errorf("metadata: unknown projection field %q: %w", f, ErrBadQuery)
		}
		m |= bit
	}
	return m, nil
}

// projectRecord keeps only the masked fields; the rest reset to absent
// sentinels so a projected record never fabricates P1 or frame 0.
func projectRecord(rec Record, m projMask) Record {
	if m == 0 {
		return rec
	}
	out := Record{Frame: -1, FrameEnd: -1, Person: -1, Other: -1}
	if m&projID != 0 {
		out.ID = rec.ID
	}
	if m&projKind != 0 {
		out.Kind = rec.Kind
	}
	if m&projFrame != 0 {
		out.Frame = rec.Frame
	}
	if m&projFrameEnd != 0 {
		out.FrameEnd = rec.FrameEnd
	}
	if m&projTime != 0 {
		out.Time = rec.Time
	}
	if m&projPerson != 0 {
		out.Person = rec.Person
	}
	if m&projOther != 0 {
		out.Other = rec.Other
	}
	if m&projLabel != 0 {
		out.Label = rec.Label
	}
	if m&projValue != 0 {
		out.Value = rec.Value
	}
	if m&projTags != 0 {
		out.Tags = rec.Tags
	}
	return out
}

// orderLess compares candidate *positions*. Positions ascend in ID
// order, so the position itself is the ID tiebreak (and the whole key
// for OrderID).
func orderLess(o Order, recs snap) func(a, b int) bool {
	switch o {
	case OrderID:
		return func(a, b int) bool { return a < b }
	case OrderFrameDesc:
		return func(a, b int) bool {
			fa, fb := recs.at(a).Frame, recs.at(b).Frame
			if fa != fb {
				return fa > fb
			}
			return a > b
		}
	default:
		return func(a, b int) bool {
			fa, fb := recs.at(a).Frame, recs.at(b).Frame
			if fa != fb {
				return fa < fb
			}
			return a < b
		}
	}
}

// --- segment layout ---

// querySegmentSize is the number of candidate positions per scan
// segment; single-segment queries run inline with no goroutines.
const querySegmentSize = 8192

// segmentLayout sizes the worker pool for n candidates.
func segmentLayout(n int) (nseg, workers int) {
	nseg = (n + querySegmentSize - 1) / querySegmentSize
	if nseg == 0 {
		nseg = 1
	}
	workers = runtime.GOMAXPROCS(0)
	if workers > nseg {
		workers = nseg
	}
	return nseg, workers
}

// --- iterator ---

// Iter streams the results of a planned query. It is a single-consumer
// cursor: Next/Err/Close must be called from one goroutine, but many
// Iters may run concurrently with appends and compaction (each executes
// over an immutable snapshot taken at creation). Close releases the
// worker pool early; abandoning an Iter without Close leaks no resources
// once its workers finish their segments.
type Iter struct {
	p     *queryPlan
	limit int
	mask  projMask
	less  func(a, b int) bool
	sortS bool // segments need an in-segment sort (order ≠ OrderID)

	// Segments hold matched *positions*, not records: 8-byte pointers
	// into the snapshot instead of 112-byte copies, so a scan's working
	// set stays small and each record is copied exactly once, on yield.
	segs   [][]int
	errs   []error
	nseg   int
	wg     sync.WaitGroup
	cancel atomic.Bool

	waited  bool
	err     error
	heads   []int // per-segment read cursor
	heap    []int // segment indexes, min-heap by current head position
	yielded int
	closed  bool
	ctx     context.Context // nil when the query is not cancellable
}

func newIter(p *queryPlan, opts QueryOpts, mask projMask) *Iter {
	it := &Iter{
		p:     p,
		limit: opts.Limit,
		mask:  mask,
		less:  orderLess(opts.Order, p.recs),
		sortS: opts.Order != OrderID,
		ctx:   opts.Ctx,
	}
	it.start()
	return it
}

// start partitions the candidate set and launches the worker pool.
// Single-segment plans evaluate inline: no goroutine, no latency.
func (it *Iter) start() {
	n := it.p.scanCount()
	nseg, workers := segmentLayout(n)
	it.nseg = nseg
	it.segs = make([][]int, nseg)
	it.errs = make([]error, nseg)
	if nseg == 1 {
		it.evalSegment(0)
		it.waited = true
		it.finishWait()
		return
	}
	var next atomic.Int64
	it.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer it.wg.Done()
			for {
				si := int(next.Add(1) - 1)
				if si >= nseg || it.cancel.Load() {
					return
				}
				it.evalSegment(si)
			}
		}()
	}
}

// evalSegment scans candidate positions [si*seg, (si+1)*seg), applying
// the plan's bound filters and residual predicate, and leaves the
// segment's matches sorted for the merge. Flat candidate index i maps
// to a snapshot position three ways: identity (full scan), the cand
// list (index probes), or run arithmetic (segment-pruned full scan —
// binary-search the run containing lo, then walk the runs in step).
func (it *Iter) evalSegment(si int) {
	lo := si * querySegmentSize
	hi := lo + querySegmentSize
	if n := it.p.scanCount(); hi > n {
		hi = n
	}
	cj := &it.p.cj
	var out []int
	runIdx, runPos := 0, 0
	if it.p.runs != nil && lo < hi {
		runIdx = sort.SearchInts(it.p.prefix, lo+1)
		base := 0
		if runIdx > 0 {
			base = it.p.prefix[runIdx-1]
		}
		runPos = it.p.runs[runIdx][0] + (lo - base)
	}
	for i := lo; i < hi; i++ {
		if i&1023 == 0 {
			if it.cancel.Load() {
				return
			}
			if it.ctx != nil {
				if err := it.ctx.Err(); err != nil {
					it.errs[si] = err
					return
				}
			}
		}
		var pos int
		switch {
		case it.p.runs != nil:
			pos = runPos
			runPos++
			if runPos >= it.p.runs[runIdx][1] && runIdx+1 < len(it.p.runs) {
				runIdx++
				runPos = it.p.runs[runIdx][0]
			}
		case it.p.full:
			pos = i
		default:
			pos = it.p.cand[i]
		}
		rec := it.p.recs.at(pos)
		if !cj.boundsOK(*rec) {
			continue
		}
		if it.p.residual != nil {
			ok, err := it.p.residual.Eval(*rec)
			if err != nil {
				it.errs[si] = err
				return
			}
			if !ok {
				continue
			}
		}
		out = append(out, pos)
	}
	// Candidate positions ascend, so OrderID segments are born sorted.
	if it.sortS && len(out) > 1 {
		sort.Slice(out, func(i, j int) bool { return it.less(out[i], out[j]) })
	}
	it.segs[si] = out
}

// wait blocks until every segment is evaluated, then seeds the merge
// heap. Errors surface in segment order (deterministic).
func (it *Iter) wait() {
	if it.waited {
		return
	}
	it.wg.Wait()
	it.waited = true
	it.finishWait()
}

func (it *Iter) finishWait() {
	for _, e := range it.errs {
		if e != nil {
			it.err = e
			return
		}
	}
	it.heads = make([]int, it.nseg)
	for si := 0; si < it.nseg; si++ {
		if len(it.segs[si]) > 0 {
			it.heap = append(it.heap, si)
		}
	}
	for i := len(it.heap)/2 - 1; i >= 0; i-- {
		it.siftDown(i)
	}
}

func (it *Iter) head(si int) int { return it.segs[si][it.heads[si]] }

func (it *Iter) heapLess(i, j int) bool {
	return it.less(it.head(it.heap[i]), it.head(it.heap[j]))
}

func (it *Iter) siftDown(i int) {
	n := len(it.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && it.heapLess(l, min) {
			min = l
		}
		if r < n && it.heapLess(r, min) {
			min = r
		}
		if min == i {
			return
		}
		it.heap[i], it.heap[min] = it.heap[min], it.heap[i]
		i = min
	}
}

// Next yields the next record in the requested order, with the
// projection applied. It reports false when the results are exhausted,
// the Limit is reached, an evaluation error occurred (see Err), or the
// iterator was closed.
func (it *Iter) Next() (Record, bool) {
	if it.closed || it.err != nil {
		return Record{}, false
	}
	if it.ctx != nil {
		if err := it.ctx.Err(); err != nil {
			it.cancel.Store(true)
			it.wait()
			it.err = err
			return Record{}, false
		}
	}
	it.wait()
	if it.err != nil || len(it.heap) == 0 {
		return Record{}, false
	}
	if it.limit > 0 && it.yielded >= it.limit {
		return Record{}, false
	}
	si := it.heap[0]
	pos := it.head(si)
	it.heads[si]++
	if it.heads[si] >= len(it.segs[si]) {
		last := len(it.heap) - 1
		it.heap[0] = it.heap[last]
		it.heap = it.heap[:last]
	}
	if len(it.heap) > 0 {
		it.siftDown(0)
	}
	it.yielded++
	return projectRecord(*it.p.recs.at(pos), it.mask), true
}

// Err returns the first evaluation error, if any. It is meaningful after
// Next has returned false (or after Close).
func (it *Iter) Err() error { return it.err }

// Close cancels outstanding segment scans and waits for the worker pool
// to drain. Idempotent; returns Err().
func (it *Iter) Close() error {
	if it.closed {
		return it.err
	}
	it.cancel.Store(true)
	if !it.waited {
		it.wg.Wait()
		it.waited = true
		// Cancelled segments are incomplete; keep any error for Err but
		// do not seed the merge heap.
		for _, e := range it.errs {
			if e != nil {
				it.err = e
				break
			}
		}
	}
	it.closed = true
	return it.err
}

// Collect drains the iterator into an exactly-sized slice.
func (it *Iter) Collect() ([]Record, error) {
	var out []Record
	if n := it.remaining(); n > 0 {
		out = make([]Record, 0, n)
	}
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	if it.err != nil {
		return nil, it.err
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// remaining counts the records Next will still yield (0 on error/close).
func (it *Iter) remaining() int {
	if it.closed || it.err != nil {
		return 0
	}
	it.wait()
	if it.err != nil {
		return 0
	}
	n := 0
	for si := range it.segs {
		n += len(it.segs[si]) - it.heads[si]
	}
	if it.limit > 0 && n > it.limit-it.yielded {
		n = it.limit - it.yielded
	}
	if n < 0 {
		n = 0
	}
	return n
}
