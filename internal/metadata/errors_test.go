package metadata

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/vfs"
)

// TestSentinelChains pins the error-wrapping audit: every public
// failure path must keep its sentinel reachable through errors.Is, so
// callers can branch on ErrCorrupt/ErrLocked/ErrClosed/... without
// string matching, no matter how many %w layers the path added.
func TestSentinelChains(t *testing.T) {
	closedRepo := func(t *testing.T) *Repository {
		r, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := []struct {
		name string
		want error
		err  func(t *testing.T) error
	}{
		{"open/manifest-garbage", ErrCorrupt, func(t *testing.T) error {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not a manifest\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(dir)
			return err
		}},
		{"open/manifest-bad-crc", ErrCorrupt, func(t *testing.T) error {
			dir := t.TempDir()
			body := manifestHeader + "\nseg 000001.seg active 0 0\n"
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body+"crc32 00000000\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(dir)
			return err
		}},
		{"open/corrupt-sealed-segment", ErrCorrupt, func(t *testing.T) error {
			fsys := vfs.NewFaultFS()
			_, sealed := buildSealedRepo(t, fsys, "repo", 90)
			corruptByte(t, fsys, filepath.Join("repo", sealed[0].name))
			_, err := Open("repo", WithFS(fsys))
			return err
		}},
		{"open/manifest-lost-with-segments", ErrCorrupt, func(t *testing.T) error {
			fsys := vfs.NewFaultFS()
			buildSealedRepo(t, fsys, "repo", 90)
			if err := fsys.Remove(filepath.Join("repo", manifestName)); err != nil {
				t.Fatal(err)
			}
			_, err := Open("repo", WithFS(fsys))
			return err
		}},
		{"open/flock-held", ErrLocked, func(t *testing.T) error {
			dir := t.TempDir()
			r, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			_, err = Open(dir)
			return err
		}},
		{"open/lease-held", ErrLocked, func(t *testing.T) error {
			fsys := noFlockFS()
			dir := t.TempDir()
			r, err := Open(dir, WithFS(fsys))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			_, err = Open(dir, WithFS(fsys))
			return err
		}},
		{"closed/append", ErrClosed, func(t *testing.T) error {
			_, err := closedRepo(t).Append(obs(1, 0, "x", 1))
			return err
		}},
		{"closed/append-batch", ErrClosed, func(t *testing.T) error {
			return closedRepo(t).AppendBatch([]Record{obs(1, 0, "x", 1)})
		}},
		{"closed/sync", ErrClosed, func(t *testing.T) error {
			return closedRepo(t).Sync()
		}},
		{"closed/flush", ErrClosed, func(t *testing.T) error {
			return closedRepo(t).Flush()
		}},
		{"closed/stats", ErrClosed, func(t *testing.T) error {
			_, err := closedRepo(t).Stats()
			return err
		}},
		{"closed/health", ErrClosed, func(t *testing.T) error {
			_, err := closedRepo(t).Health()
			return err
		}},
		{"closed/query", ErrClosed, func(t *testing.T) error {
			_, err := closedRepo(t).Query("frame = 1")
			return err
		}},
		{"closed/scan", ErrClosed, func(t *testing.T) error {
			return closedRepo(t).Scan(func(Record) bool { return true })
		}},
		{"closed/compact", ErrClosed, func(t *testing.T) error {
			return closedRepo(t).Compact()
		}},
		{"read-only/append", ErrReadOnly, func(t *testing.T) error {
			dir := t.TempDir()
			w, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Open(dir, WithReadOnly())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			_, err = r.Append(obs(1, 0, "x", 1))
			return err
		}},
		{"quarantine/compact", ErrQuarantined, func(t *testing.T) error {
			fsys := vfs.NewFaultFS()
			_, sealed := buildSealedRepo(t, fsys, "repo", 90)
			corruptByte(t, fsys, filepath.Join("repo", sealed[1].name))
			r, err := Open("repo", WithFS(fsys), WithQuarantine())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			return r.Compact()
		}},
		{"append/bad-record", ErrBadRecord, func(t *testing.T) error {
			_, err := NewMem().Append(Record{})
			return err
		}},
		{"query/bad-syntax", ErrBadQuery, func(t *testing.T) error {
			_, err := NewMem().Query("((")
			return err
		}},
		{"append/enospc-passthrough", syscall.ENOSPC, func(t *testing.T) error {
			fsys := vfs.NewFaultFS()
			r, err := Open("repo", WithFS(fsys), WithSyncPolicy(SyncAlways))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			fsys.Inject = func(n int, op vfs.Op, path string) error {
				if op == vfs.OpWrite && strings.HasSuffix(path, segSuffix) {
					return vfs.ErrNoSpace
				}
				return nil
			}
			t.Cleanup(func() { fsys.Inject = nil })
			_, err = r.Append(obs(1, 0, "x", 1))
			return err
		}},
		{"segment/torn-record", ErrCorrupt, func(t *testing.T) error {
			// readRecord's corruption errors chain ErrCorrupt even from
			// the raw codec layer.
			_, err := readRecord(&countingReader{r: strings.NewReader("\xff\xff\xff\xff garbage")})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err(t)
			if err == nil {
				t.Fatalf("want error chaining %v, got nil", tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, does not chain %v", err, tc.want)
			}
		})
	}
}

// TestSentinelChainLockWait pins the two-sentinel chain on a cancelled
// lock wait: callers can distinguish "gave up because locked" from
// "gave up because cancelled" — both are present.
func TestSentinelChainLockWait(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := Open(dir, WithLockWait(nil, 10*time.Millisecond)); !errors.Is(err, ErrLocked) {
		t.Fatalf("nil-ctx lock wait err = %v, want ErrLocked", err)
	}
}
