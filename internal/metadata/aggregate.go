package metadata

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Aggregations over query results — the analytical half of the paper's
// "rich query vocabulary": counting eye contacts per pair, averaging
// emotion confidence per participant, histogramming events over time.

// AggOp selects the aggregation function.
type AggOp uint8

// Aggregation operators over Record.Value.
const (
	// AggCount counts matching records (Value ignored).
	AggCount AggOp = iota
	// AggSum sums Value.
	AggSum
	// AggAvg averages Value.
	AggAvg
	// AggMin takes the minimum Value.
	AggMin
	// AggMax takes the maximum Value.
	AggMax
)

// String names the operator.
func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("agg(%d)", uint8(op))
}

// GroupKey selects the grouping dimension.
type GroupKey uint8

// Grouping dimensions.
const (
	// GroupNone aggregates everything into one row.
	GroupNone GroupKey = iota
	// GroupByLabel groups by Record.Label.
	GroupByLabel
	// GroupByPerson groups by Record.Person (1-based in output keys,
	// matching query syntax; person-less records group under "P0").
	GroupByPerson
	// GroupByPair groups by the (Person, Other) pair, unordered.
	GroupByPair
	// GroupByKind groups by Record.Kind.
	GroupByKind
)

// AggRow is one aggregation result row.
type AggRow struct {
	// Key identifies the group ("" for GroupNone).
	Key string
	// N is the number of records in the group.
	N int
	// Value is the aggregated value (N for AggCount).
	Value float64
}

// ErrEmptyAgg is returned by Aggregate when min/max meet no rows.
var ErrEmptyAgg = errors.New("metadata: aggregation over empty set")

// Aggregate filters records with the query and folds Value with op,
// grouped by key. Rows are sorted by Key. AggMin/AggMax over an empty
// result return ErrEmptyAgg; the other operators return a single zero
// row for GroupNone and no rows otherwise.
func (r *Repository) Aggregate(query string, op AggOp, key GroupKey) ([]AggRow, error) {
	expr, err := Parse(query)
	if err != nil {
		return nil, err
	}
	// Stream the planned execution: records fold into their groups as
	// segments merge, so the matched set is never materialised. Frame
	// order keeps float accumulation identical to the historical path;
	// pure counting is order-insensitive and skips the segment sorts.
	ord := OrderFrame
	if op == AggCount {
		ord = OrderID
	}
	it, err := r.QueryExprIter(expr, QueryOpts{Order: ord})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	groups := make(map[string]*AggRow)
	get := func(k string) *AggRow {
		g, ok := groups[k]
		if !ok {
			g = &AggRow{Key: k}
			if op == AggMin {
				g.Value = math.Inf(1)
			}
			if op == AggMax {
				g.Value = math.Inf(-1)
			}
			groups[k] = g
		}
		return g
	}
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		g := get(groupKey(rec, key))
		g.N++
		switch op {
		case AggCount:
			g.Value = float64(g.N)
		case AggSum, AggAvg:
			g.Value += rec.Value
		case AggMin:
			if rec.Value < g.Value {
				g.Value = rec.Value
			}
		case AggMax:
			if rec.Value > g.Value {
				g.Value = rec.Value
			}
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		if op == AggMin || op == AggMax {
			return nil, fmt.Errorf("metadata: %v of %q: %w", op, query, ErrEmptyAgg)
		}
		if key == GroupNone {
			return []AggRow{{}}, nil
		}
		return nil, nil
	}
	out := make([]AggRow, 0, len(groups))
	for _, g := range groups {
		if op == AggAvg && g.N > 0 {
			g.Value /= float64(g.N)
		}
		out = append(out, *g)
	}
	sortAggRows(out, key)
	return out, nil
}

// sortAggRows orders result rows for presentation: person and pair keys
// sort by participant index (P2 before P10 — a lexical sort would
// misplace every scene with ten or more participants), labels and kinds
// lexically.
func sortAggRows(rows []AggRow, key GroupKey) {
	switch key {
	case GroupByPerson:
		sort.Slice(rows, func(i, j int) bool {
			a, aok := personIndex(rows[i].Key)
			b, bok := personIndex(rows[j].Key)
			if aok && bok {
				return a < b
			}
			return rows[i].Key < rows[j].Key
		})
	case GroupByPair:
		sort.Slice(rows, func(i, j int) bool {
			a1, a2, aok := pairIndexes(rows[i].Key)
			b1, b2, bok := pairIndexes(rows[j].Key)
			if aok && bok {
				if a1 != b1 {
					return a1 < b1
				}
				return a2 < b2
			}
			return rows[i].Key < rows[j].Key
		})
	default:
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	}
}

// personIndex parses a "P<n>" group key.
func personIndex(key string) (int, bool) {
	if len(key) < 2 || key[0] != 'P' {
		return 0, false
	}
	n, err := strconv.Atoi(key[1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// pairIndexes parses a "P<a>-P<b>" group key.
func pairIndexes(key string) (int, int, bool) {
	l, r, ok := strings.Cut(key, "-")
	if !ok {
		return 0, 0, false
	}
	a, aok := personIndex(l)
	b, bok := personIndex(r)
	if !aok || !bok {
		return 0, 0, false
	}
	return a, b, true
}

// Count is shorthand for a GroupNone AggCount.
func (r *Repository) Count(query string) (int, error) {
	rows, err := r.Aggregate(query, AggCount, GroupNone)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}
	return rows[0].N, nil
}

// groupKey renders the group key of a record.
func groupKey(rec Record, key GroupKey) string {
	switch key {
	case GroupByLabel:
		return rec.Label
	case GroupByPerson:
		return fmt.Sprintf("P%d", rec.Person+1)
	case GroupByPair:
		a, b := rec.Person, rec.Other
		if a > b {
			a, b = b, a
		}
		return fmt.Sprintf("P%d-P%d", a+1, b+1)
	case GroupByKind:
		return rec.Kind.String()
	}
	return ""
}

// TimeHistogram buckets matching records into fixed-width frame bins and
// returns per-bin counts — the "activity over time" view a sociologist
// scans first. binFrames must be positive; bins are [i*bin, (i+1)*bin).
func (r *Repository) TimeHistogram(query string, binFrames int) (map[int]int, error) {
	if binFrames <= 0 {
		return nil, fmt.Errorf("metadata: bin width %d: %w", binFrames, ErrBadQuery)
	}
	expr, err := Parse(query)
	if err != nil {
		return nil, err
	}
	// Bin counting is order-insensitive: OrderID skips the segment sorts.
	it, err := r.QueryExprIter(expr, QueryOpts{Order: OrderID, Project: []string{"frame"}})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := make(map[int]int)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if rec.Frame < 0 {
			continue
		}
		out[rec.Frame/binFrames]++
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
