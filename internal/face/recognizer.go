package face

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/img"
)

// EmbedSize is the side length of the embedding patch; embeddings are
// EmbedSize² floats.
const EmbedSize = 16

// Embedding is a face descriptor filling the role of the paper's
// OpenFace face-recognition embeddings: a zero-mean, L2-normalised
// downsampled patch (structure) plus the mean intensity (tone). Patch
// normalisation alone is deliberately illumination-invariant, which also
// erases the absolute-brightness identity cue — so tone is carried
// separately and weighed back in by Similarity.
type Embedding struct {
	// Patch is the zero-mean unit-norm 16×16 face patch.
	Patch [EmbedSize * EmbedSize]float64
	// Tone is the mean crop intensity in [0,1].
	Tone float64
}

// toneWeight converts tone difference into similarity penalty: a 25-level
// (≈0.1) tone gap costs ≈0.4 similarity.
const toneWeight = 4.0

// patchPool recycles the EmbedSize² resample buffer used by Identify so
// concurrent recognition stops allocating per call.
var patchPool = sync.Pool{New: func() any { return img.New(EmbedSize, EmbedSize) }}

// Embed computes the embedding of a face crop.
func Embed(face *img.Gray) Embedding {
	p := patchPool.Get().(*img.Gray)
	defer patchPool.Put(p)
	p = face.ResizeInto(EmbedSize, EmbedSize, p)
	var e Embedding
	var mean float64
	for i, v := range p.Pix {
		e.Patch[i] = float64(v)
		mean += e.Patch[i]
	}
	mean /= float64(len(e.Patch))
	e.Tone = mean / 255
	var norm float64
	for i := range e.Patch {
		e.Patch[i] -= mean
		norm += e.Patch[i] * e.Patch[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		e.Patch = [EmbedSize * EmbedSize]float64{} // flat crop
		return e
	}
	for i := range e.Patch {
		e.Patch[i] /= norm
	}
	return e
}

// Cosine returns the cosine similarity of the two structure patches in
// [-1, 1] (tone excluded).
func (e Embedding) Cosine(o Embedding) float64 {
	var s float64
	for i := range e.Patch {
		s += e.Patch[i] * o.Patch[i]
	}
	return s
}

// Similarity combines patch cosine with a tone penalty; 1 means an
// identical face, lower values increasingly different ones.
func (e Embedding) Similarity(o Embedding) float64 {
	return similarity(&e, &o)
}

// similarity is Similarity on pointers — the Identify hot loop calls
// it once per centroid, and the value form would copy two 2KB structs
// per call. Same expressions, same result.
func similarity(e, o *Embedding) float64 {
	d := e.Tone - o.Tone
	if d < 0 {
		d = -d
	}
	var s float64
	for i := range e.Patch {
		s += e.Patch[i] * o.Patch[i]
	}
	return s - toneWeight*d
}

// Recognizer assigns identities to face crops by nearest enrolled
// centroid. Safe for concurrent Identify calls; Enroll must not race
// with Identify.
type Recognizer struct {
	mu      sync.RWMutex
	ids     []string
	centres map[string]*centroid
	// cents caches the centroids in ids order so the Identify hot loop
	// walks a dense slice instead of hashing every identity per face.
	// Rebuilt on Enroll.
	cents []*centroid
	// MinSim is the acceptance threshold: crops whose best similarity
	// falls below it are reported unknown (default 0.6).
	MinSim float64
}

type centroid struct {
	sum Embedding
	n   int
	// mean caches the normalised centroid, recomputed on Enroll so the
	// Identify hot path is read-only (and allocation-free).
	mean Embedding
}

func (c *centroid) recompute() {
	var m Embedding
	if c.n == 0 {
		c.mean = m
		return
	}
	m.Tone = c.sum.Tone / float64(c.n)
	var norm float64
	for i := range c.sum.Patch {
		m.Patch[i] = c.sum.Patch[i] / float64(c.n)
		norm += m.Patch[i] * m.Patch[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		m.Patch = [EmbedSize * EmbedSize]float64{}
		c.mean = m
		return
	}
	for i := range m.Patch {
		m.Patch[i] /= norm
	}
	c.mean = m
}

// ErrUnknownFace is returned when no enrolled identity matches.
var ErrUnknownFace = errors.New("face: unknown identity")

// NewRecognizer returns an empty gallery.
func NewRecognizer() *Recognizer {
	return &Recognizer{centres: make(map[string]*centroid), MinSim: 0.6}
}

// Enroll adds a face sample for an identity; identities accumulate into
// centroids, so several samples per person sharpen the gallery.
func (r *Recognizer) Enroll(id string, face *img.Gray) error {
	if id == "" {
		return fmt.Errorf("face: empty identity: %w", ErrBadOptions)
	}
	e := Embed(face)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.centres[id]
	if !ok {
		c = &centroid{}
		r.centres[id] = c
		r.ids = append(r.ids, id)
		sort.Strings(r.ids)
		r.cents = r.cents[:0]
		for _, name := range r.ids {
			r.cents = append(r.cents, r.centres[name])
		}
	}
	for i := range e.Patch {
		c.sum.Patch[i] += e.Patch[i]
	}
	c.sum.Tone += e.Tone
	c.n++
	c.recompute()
	return nil
}

// Identities returns the enrolled identities, sorted.
func (r *Recognizer) Identities() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.ids...)
}

// Identify returns the best-matching identity and similarity for a face
// crop, or ErrUnknownFace when the gallery is empty or no centroid
// passes MinSim.
func (r *Recognizer) Identify(face *img.Gray) (string, float64, error) {
	e := Embed(face)
	r.mu.RLock()
	best, bestSim := r.identifyLocked(&e)
	r.mu.RUnlock()
	if best == "" {
		return "", bestSim, fmt.Errorf("face: best similarity %.3f below %.3f: %w",
			bestSim, r.MinSim, ErrUnknownFace)
	}
	return best, bestSim, nil
}

// IdentifyBatch identifies a whole set of face crops under one gallery
// lock, appending each crop's identity (empty when unknown — no error
// value to allocate on the expected miss path) and best similarity to
// ids and sims. Per-crop decisions are identical to Identify. Safe for
// concurrent callers.
func (r *Recognizer) IdentifyBatch(faces []*img.Gray, ids []string, sims []float64) ([]string, []float64) {
	ids, sims = ids[:0], sims[:0]
	if len(faces) == 0 {
		return ids, sims
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range faces {
		e := Embed(f)
		id, sim := r.identifyLocked(&e)
		ids = append(ids, id)
		sims = append(sims, sim)
	}
	return ids, sims
}

// identifyLocked scans the centroid cache for the best match; the
// caller holds at least a read lock. Returns "" (with the best
// similarity seen) when the gallery is empty or no centroid passes
// MinSim.
func (r *Recognizer) identifyLocked(e *Embedding) (string, float64) {
	best, bestSim := -1, math.Inf(-1)
	for i, c := range r.cents {
		sim := similarity(e, &c.mean)
		if sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best < 0 || bestSim < r.MinSim {
		return "", bestSim
	}
	return r.ids[best], bestSim
}
