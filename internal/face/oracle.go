package face

import "repro/internal/img"

// This file retains the pre-engine detection path — the per-window
// CropInto + Variance + img.NCC scan — as the reference oracle the
// fused template-matching engine is tested against (DESIGN.md §6):
// detectOracle must produce byte-identical boxes and scores within
// 1e-9 of DetectIntegrals across the seeded scenario suite. It is not
// called outside tests.

// detectOracle is the exhaustive crop-based Detect.
func (d *Detector) detectOracle(g *img.Gray) []Detection {
	integral := img.NewIntegral(g)
	var raw []Detection
	// One crop buffer serves every candidate window of the scan.
	var crop *img.Gray
	for _, h := range d.opt.Scales {
		tpl := d.templates[h]
		w := tpl.W
		if w > g.W || h > g.H {
			continue
		}
		stride := int(float64(h) * d.opt.StrideFrac)
		if stride < 1 {
			stride = 1
		}
		for y := 0; y+h <= g.H; y += stride {
			for x := 0; x+w <= g.W; x += stride {
				win := img.Rect{X: x, Y: y, W: w, H: h}
				centre := integral.RegionMean(img.Rect{X: x + w/4, Y: y + h/4, W: w / 2, H: h / 2})
				border := integral.RegionMean(win)
				diff := centre - border
				if diff < 0 {
					diff = -diff
				}
				if diff*diff < d.opt.MinVariance/4 {
					continue
				}
				c, err := g.CropInto(win, crop)
				if err != nil {
					continue
				}
				crop = c
				if crop.Variance() < d.opt.MinVariance {
					continue
				}
				score := img.NCC(crop, tpl)
				if score < d.opt.CoarseScore {
					continue
				}
				var best Detection
				var ok bool
				if best, ok, crop = d.refineOracle(g, tpl, win, stride, score, crop); ok {
					raw = append(raw, best)
				}
			}
		}
	}
	return nms(raw, d.opt.NMSIoU)
}

// refineOracle is the exhaustive crop-based refine: every candidate is
// cropped and scored with img.NCC, revisits included.
func (d *Detector) refineOracle(g *img.Gray, tpl *img.Gray, win img.Rect, stride int, score float64, crop *img.Gray) (Detection, bool, *img.Gray) {
	best := Detection{Box: win, Score: score}
	for step := stride / 2; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, off := range [4][2]int{{-step, 0}, {step, 0}, {0, -step}, {0, step}} {
				cand := img.Rect{X: best.Box.X + off[0], Y: best.Box.Y + off[1], W: win.W, H: win.H}
				c, err := g.CropInto(cand, crop)
				if err != nil {
					continue
				}
				crop = c
				if s := img.NCC(crop, tpl); s > best.Score {
					best = Detection{Box: cand, Score: s}
					improved = true
				}
			}
		}
	}
	if best.Score < d.opt.MinScore {
		return Detection{}, false, crop
	}
	return best, true, crop
}
