// Package face implements DiEvent's face components (paper §II-C): face
// detection on video frames, face recognition for identity assignment
// (the paper's OpenFace-library role), and multi-face tracking across
// frames (Kalman filtering + Hungarian data association).
package face

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/emotion"
	"repro/internal/img"
)

// Detection is one detected face.
type Detection struct {
	// Box is the face bounding box in pixels.
	Box img.Rect
	// Score is the detector confidence in [0,1] (template NCC).
	Score float64
}

// DetectorOptions tune the sliding-window detector.
type DetectorOptions struct {
	// Scales are the window heights (pixels) to scan (default
	// 24, 34, 48, 68, 96 — a √2 pyramid).
	Scales []int
	// StrideFrac is the scan stride as a fraction of window size
	// (default 0.25).
	StrideFrac float64
	// MinScore is the NCC acceptance threshold after refinement
	// (default 0.55).
	MinScore float64
	// CoarseScore is the lower threshold that promotes a coarse-grid
	// window to sub-stride refinement (default 0.33).
	CoarseScore float64
	// MinVariance skips windows flatter than this (default 100) —
	// cheap integral-image pre-filter.
	MinVariance float64
	// NMSIoU is the overlap above which weaker detections are
	// suppressed (default 0.3).
	NMSIoU float64
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if len(o.Scales) == 0 {
		o.Scales = []int{24, 34, 48, 68, 96}
	}
	if o.StrideFrac == 0 {
		o.StrideFrac = 0.25
	}
	if o.MinScore == 0 {
		o.MinScore = 0.55
	}
	if o.CoarseScore == 0 {
		o.CoarseScore = 0.33
	}
	if o.MinVariance == 0 {
		o.MinVariance = 100
	}
	if o.NMSIoU == 0 {
		o.NMSIoU = 0.3
	}
	return o
}

// ErrBadOptions reports invalid detector configuration.
var ErrBadOptions = errors.New("face: bad options")

// Detector finds faces by multi-scale normalised cross-correlation
// against a canonical face template — the classical pre-CNN approach,
// adequate because the synthetic renderer and the template share the
// same face geometry (see DESIGN.md §1 on substitutions).
type Detector struct {
	opt DetectorOptions
	// templates holds the canonical face resized per scale, wider
	// aspect matching the renderer's 1:1.2 face boxes.
	templates map[int]*img.Gray
}

// NewDetector builds a detector.
func NewDetector(opt DetectorOptions) (*Detector, error) {
	opt = opt.withDefaults()
	for _, s := range opt.Scales {
		if s < 8 {
			return nil, fmt.Errorf("face: scale %d too small: %w", s, ErrBadOptions)
		}
	}
	if opt.StrideFrac <= 0 || opt.StrideFrac > 1 {
		return nil, fmt.Errorf("face: stride %v outside (0,1]: %w", opt.StrideFrac, ErrBadOptions)
	}
	// Canonical neutral face, mid tone, no jitter.
	base := emotion.GenerateFace(emotion.Neutral, 0, 180)
	d := &Detector{opt: opt, templates: make(map[int]*img.Gray, len(opt.Scales))}
	for _, h := range opt.Scales {
		w := h * 5 / 6 // renderer draws faces slightly taller than wide
		d.templates[h] = base.Resize(w, h)
	}
	return d, nil
}

// Detect scans the frame and returns non-overlapping face detections,
// strongest first. Scanning is coarse-to-fine: a strided grid pass
// promotes promising windows (score ≥ CoarseScore) to a local sub-stride
// refinement, and only refined scores are thresholded at MinScore.
func (d *Detector) Detect(g *img.Gray) []Detection {
	integral := img.NewIntegral(g)
	var raw []Detection
	// One crop buffer serves every candidate window of the scan —
	// function-local, so concurrent Detect calls stay independent.
	var crop *img.Gray
	for _, h := range d.opt.Scales {
		tpl := d.templates[h]
		w := tpl.W
		if w > g.W || h > g.H {
			continue
		}
		stride := int(float64(h) * d.opt.StrideFrac)
		if stride < 1 {
			stride = 1
		}
		for y := 0; y+h <= g.H; y += stride {
			for x := 0; x+w <= g.W; x += stride {
				win := img.Rect{X: x, Y: y, W: w, H: h}
				// Cheap integral-image pre-filter: faces have a
				// bright centre against a darker surround.
				centre := integral.RegionMean(img.Rect{X: x + w/4, Y: y + h/4, W: w / 2, H: h / 2})
				border := integral.RegionMean(win)
				diff := centre - border
				if diff < 0 {
					diff = -diff
				}
				if diff*diff < d.opt.MinVariance/4 {
					continue
				}
				c, err := g.CropInto(win, crop)
				if err != nil {
					continue
				}
				crop = c
				if crop.Variance() < d.opt.MinVariance {
					continue
				}
				score := img.NCC(crop, tpl)
				if score < d.opt.CoarseScore {
					continue
				}
				var best Detection
				var ok bool
				if best, ok, crop = d.refine(g, tpl, win, stride, score, crop); ok {
					raw = append(raw, best)
				}
			}
		}
	}
	return nms(raw, d.opt.NMSIoU)
}

// refine hill-climbs the window position at progressively finer steps to
// undo the coarse grid's localisation loss, returning the best detection
// if it clears MinScore. The crop scratch is threaded through and
// returned so the caller keeps reusing one buffer.
func (d *Detector) refine(g *img.Gray, tpl *img.Gray, win img.Rect, stride int, score float64, crop *img.Gray) (Detection, bool, *img.Gray) {
	best := Detection{Box: win, Score: score}
	for step := stride / 2; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, off := range [4][2]int{{-step, 0}, {step, 0}, {0, -step}, {0, step}} {
				cand := img.Rect{X: best.Box.X + off[0], Y: best.Box.Y + off[1], W: win.W, H: win.H}
				c, err := g.CropInto(cand, crop)
				if err != nil {
					continue
				}
				crop = c
				if s := img.NCC(crop, tpl); s > best.Score {
					best = Detection{Box: cand, Score: s}
					improved = true
				}
			}
		}
	}
	if best.Score < d.opt.MinScore {
		return Detection{}, false, crop
	}
	return best, true, crop
}

// nms performs greedy non-maximum suppression by IoU.
func nms(dets []Detection, iou float64) []Detection {
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	var out []Detection
	for _, d := range dets {
		keep := true
		for _, k := range out {
			if d.Box.IoU(k.Box) > iou {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}
