// Package face implements DiEvent's face components (paper §II-C): face
// detection on video frames, face recognition for identity assignment
// (the paper's OpenFace-library role), and multi-face tracking across
// frames (Kalman filtering + Hungarian data association).
package face

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/emotion"
	"repro/internal/img"
)

// Detection is one detected face.
type Detection struct {
	// Box is the face bounding box in pixels.
	Box img.Rect
	// Score is the detector confidence in [0,1] (template NCC).
	Score float64
}

// DetectorOptions tune the sliding-window detector.
type DetectorOptions struct {
	// Scales are the window heights (pixels) to scan (default
	// 24, 34, 48, 68, 96 — a √2 pyramid).
	Scales []int
	// StrideFrac is the scan stride as a fraction of window size
	// (default 0.25).
	StrideFrac float64
	// MinScore is the NCC acceptance threshold after refinement
	// (default 0.55).
	MinScore float64
	// CoarseScore is the lower threshold that promotes a coarse-grid
	// window to sub-stride refinement (default 0.33).
	CoarseScore float64
	// MinVariance skips windows flatter than this (default 100) —
	// cheap integral-image pre-filter.
	MinVariance float64
	// NMSIoU is the overlap above which weaker detections are
	// suppressed (default 0.3).
	NMSIoU float64
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if len(o.Scales) == 0 {
		o.Scales = []int{24, 34, 48, 68, 96}
	}
	if o.StrideFrac == 0 {
		o.StrideFrac = 0.25
	}
	if o.MinScore == 0 {
		o.MinScore = 0.55
	}
	if o.CoarseScore == 0 {
		o.CoarseScore = 0.33
	}
	if o.MinVariance == 0 {
		o.MinVariance = 100
	}
	if o.NMSIoU == 0 {
		o.NMSIoU = 0.3
	}
	return o
}

// ErrBadOptions reports invalid detector configuration.
var ErrBadOptions = errors.New("face: bad options")

// Detector finds faces by multi-scale normalised cross-correlation
// against a canonical face template — the classical pre-CNN approach,
// adequate because the synthetic renderer and the template share the
// same face geometry (see DESIGN.md §1 on substitutions).
//
// Scanning runs on the fused template-matching engine (DESIGN.md §6):
// each scale's zero-mean template is precomputed once here, window
// mean/variance come from per-frame summed-area tables in O(1), and
// the NCC numerator is a single in-place dot product over the frame —
// no per-window crop or mean pass. The pre-engine crop-and-img.NCC
// scan is retained as detectOracle, the tested reference the fused
// path must match box-for-box.
type Detector struct {
	opt DetectorOptions
	// templates holds the canonical face resized per scale, wider
	// aspect matching the renderer's 1:1.2 face boxes. Retained for
	// the oracle path.
	templates map[int]*img.Gray
	// matchers holds each scale's precomputed zero-mean template.
	matchers map[int]*img.TemplateMatcher
	// tables pools per-frame summed-area table pairs for Detect
	// callers that don't supply their own, keeping concurrent Detect
	// calls allocation-free in steady state.
	tables sync.Pool
	// scratch pools per-call cascade state (block pyramid, cell-skip
	// bitmap, refinement memo) for DetectIntegrals, so the pooled and
	// shared-table entry points run the identical machinery and both
	// stay allocation-free in steady state.
	scratch sync.Pool
}

// integralPair is one pooled (plain, squared) table pair.
type integralPair struct {
	in *img.Integral
	sq *img.IntegralSq
}

// detScratch is one pooled DetectIntegrals working set.
type detScratch struct {
	pyr  img.Pyramid
	skip []bool
	memo map[uint32]memoEntry
}

// memoEntry is one refinement-memo record for a window position: the
// exact score when exact, otherwise an upper bound the true score is
// strictly below.
type memoEntry struct {
	v     float64
	exact bool
}

// memoKey packs a window anchor; frame dimensions are far below 64k.
func memoKey(x, y int) uint32 { return uint32(y)<<16 | uint32(x) }

// NewDetector builds a detector.
func NewDetector(opt DetectorOptions) (*Detector, error) {
	opt = opt.withDefaults()
	for _, s := range opt.Scales {
		if s < 8 {
			return nil, fmt.Errorf("face: scale %d too small: %w", s, ErrBadOptions)
		}
	}
	if opt.StrideFrac <= 0 || opt.StrideFrac > 1 {
		return nil, fmt.Errorf("face: stride %v outside (0,1]: %w", opt.StrideFrac, ErrBadOptions)
	}
	// Canonical neutral face, mid tone, no jitter.
	base := emotion.GenerateFace(emotion.Neutral, 0, 180)
	d := &Detector{
		opt:       opt,
		templates: make(map[int]*img.Gray, len(opt.Scales)),
		matchers:  make(map[int]*img.TemplateMatcher, len(opt.Scales)),
	}
	for _, h := range opt.Scales {
		w := h * 5 / 6 // renderer draws faces slightly taller than wide
		tpl := base.Resize(w, h)
		d.templates[h] = tpl
		d.matchers[h] = img.NewTemplateMatcher(tpl)
	}
	return d, nil
}

// Detect scans the frame and returns non-overlapping face detections,
// strongest first. Scanning is coarse-to-fine: a strided grid pass
// promotes promising windows (score ≥ CoarseScore) to a local
// sub-stride refinement, and only refined scores are thresholded at
// MinScore. Both passes run on the fused matching kernel over
// frame-wide summed-area tables built here; callers that already hold
// the tables (the extraction engine builds them once per
// (camera, frame)) should use DetectIntegrals.
func (d *Detector) Detect(g *img.Gray) []Detection {
	p, _ := d.tables.Get().(*integralPair)
	if p == nil {
		p = &integralPair{}
	}
	p.in, p.sq = img.BuildIntegrals(g, p.in, p.sq)
	dets := d.DetectIntegrals(g, p.in, p.sq)
	d.tables.Put(p)
	return dets
}

// DetectIntegrals is Detect with caller-supplied summed-area tables of
// g (plain and squared), sharing one table build across every consumer
// of the frame. in and sq must have been built from exactly g.
//
// Scanning runs the reject cascade of DESIGN.md §12: a per-frame block
// pyramid is built once and shared across every scale, a flat-cell
// tier clears 2×2 groups of scan anchors with one dilated-window probe
// where the contrast pre-filter provably fails, survivors bound
// through the pyramid tier before any full-resolution kernel work, and
// refinement climbs share an exact-score/upper-bound memo per scale.
// Every skip is proven below the corresponding oracle threshold, so
// output stays byte-identical to the exhaustive detectOracle.
func (d *Detector) DetectIntegrals(g *img.Gray, in *img.Integral, sq *img.IntegralSq) []Detection {
	sc, _ := d.scratch.Get().(*detScratch)
	if sc == nil {
		sc = &detScratch{memo: make(map[uint32]memoEntry, 256)}
	}
	img.BuildPyramid(g, in, &sc.pyr)
	var raw []Detection
	for _, h := range d.opt.Scales {
		m := d.matchers[h]
		w := m.W
		if w > g.W || h > g.H {
			continue
		}
		stride := d.scanStride(h)
		nax := (g.W-w)/stride + 1
		nay := (g.H-h)/stride + 1
		sc.buildCellSkip(in, sq, nax, nay, stride, w, h, d.opt.MinVariance)
		clear(sc.memo)
		for ay := 0; ay < nay; ay++ {
			y := ay * stride
			for ax := 0; ax < nax; ax++ {
				if sc.skip[ay*nax+ax] {
					continue
				}
				x := ax * stride
				win := img.Rect{X: x, Y: y, W: w, H: h}
				// Cheap integral-image pre-filter: faces have a
				// bright centre against a darker surround. Scan
				// windows are in-bounds by construction, so the
				// unclipped lookups apply.
				centre := in.RegionMeanUnclipped(img.Rect{X: x + w/4, Y: y + h/4, W: w / 2, H: h / 2})
				border := in.RegionMeanUnclipped(win)
				diff := centre - border
				if diff < 0 {
					diff = -diff
				}
				if diff*diff < d.opt.MinVariance/4 {
					continue
				}
				// Variance gate + coarse score behind the pyramid
				// tier: full-resolution kernel work only for windows
				// the block-level bound cannot reject.
				score, ok := m.ScoreCascade(g, in, sq, &sc.pyr, x, y, d.opt.CoarseScore, d.opt.MinVariance)
				if ok {
					// Exact scores seed the refinement memo — climbs
					// from neighbouring promotions revisit grid
					// positions. A (0,false) reject is not memoised:
					// it may come from the variance gate, which bounds
					// nothing about the score.
					sc.memo[memoKey(x, y)] = memoEntry{v: score, exact: true}
				}
				if !ok || score < d.opt.CoarseScore {
					continue
				}
				var best Detection
				if best, ok = d.refine(g, m, in, sq, &sc.pyr, sc.memo, win, stride, score); ok {
					raw = append(raw, best)
				}
			}
		}
	}
	d.scratch.Put(sc)
	return nms(raw, d.opt.NMSIoU)
}

// buildCellSkip fills sc.skip (one flag per scan anchor) by probing
// 2×2 anchor cells through their dilated union window: with μ the
// dilated region's mean and dev its deviation mass Σ(f−μ)², every
// window inside the region has variance da ≤ dev, and the contrast
// pre-filter's |centre−border| is at most 2√(da/n) (the centre rect is
// a quarter of the window, and centre−border averages f−border over
// it). So dev < n·MinVariance/16 proves all four windows fail the
// pre-filter, and one 8-load probe replaces four. Cells are decided in
// a separate pass so the scan loop's window order — and therefore the
// NMS input order — is untouched.
func (sc *detScratch) buildCellSkip(in *img.Integral, sq *img.IntegralSq, nax, nay, stride, w, h int, minVar float64) {
	if cap(sc.skip) < nax*nay {
		sc.skip = make([]bool, nax*nay)
	}
	sc.skip = sc.skip[:nax*nay]
	clear(sc.skip)
	// The margin covers the probe's single float rounding, mirroring
	// the kernel's early-out discipline.
	cellCut := float64(w*h)*minVar/16 - 1e-6
	dw, dh := w+stride, h+stride
	nD := uint64(dw * dh)
	for ay := 0; ay+1 < nay; ay += 2 {
		row0 := ay * nax
		for ax := 0; ax+1 < nax; ax += 2 {
			// The dilated rect is in-frame because anchor
			// (ax+1, ay+1) is a valid scan anchor.
			dr := img.Rect{X: ax * stride, Y: ay * stride, W: dw, H: dh}
			s := in.RegionSumUnclipped(dr)
			q := sq.RegionSumUnclipped(dr)
			if float64(nD*q-s*s)/float64(nD) < cellCut {
				sc.skip[row0+ax] = true
				sc.skip[row0+ax+1] = true
				sc.skip[row0+nax+ax] = true
				sc.skip[row0+nax+ax+1] = true
			}
		}
	}
}

// refine hill-climbs the window position at progressively finer steps
// to undo the coarse grid's localisation loss, returning the best
// detection if it clears MinScore. Candidates score through the reject
// cascade with the current best as the early-out bound (no variance
// gate — the oracle refine scores every candidate), and every scored
// position lands in the per-scale memo shared across climbs: an exact
// entry is reused directly (the oracle would recompute the identical
// value), and a bound entry u proves score < u, so whenever u is at or
// below the current best the candidate provably cannot improve —
// decisions match the exhaustive climb exactly. When a candidate is
// rescored past a stale higher bound, the lower bound replaces it.
func (d *Detector) refine(g *img.Gray, m *img.TemplateMatcher, in *img.Integral, sq *img.IntegralSq, pyr *img.Pyramid, memo map[uint32]memoEntry, win img.Rect, stride int, score float64) (Detection, bool) {
	best := Detection{Box: win, Score: score}
	for step := stride / 2; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, off := range [4][2]int{{-step, 0}, {step, 0}, {0, -step}, {0, step}} {
				cand := img.Rect{X: best.Box.X + off[0], Y: best.Box.Y + off[1], W: win.W, H: win.H}
				if cand.X < 0 || cand.Y < 0 || cand.X+cand.W > g.W || cand.Y+cand.H > g.H {
					continue
				}
				key := memoKey(cand.X, cand.Y)
				if e, ok := memo[key]; ok {
					if e.exact {
						if e.v > best.Score {
							best = Detection{Box: cand, Score: e.v}
							improved = true
						}
						continue
					}
					if e.v <= best.Score {
						continue
					}
				}
				if s, ok := m.ScoreCascade(g, in, sq, pyr, cand.X, cand.Y, best.Score, -1); ok {
					memo[key] = memoEntry{v: s, exact: true}
					if s > best.Score {
						best = Detection{Box: cand, Score: s}
						improved = true
					}
				} else {
					memo[key] = memoEntry{v: best.Score}
				}
			}
		}
	}
	if best.Score < d.opt.MinScore {
		return Detection{}, false
	}
	return best, true
}

// scanStride is the coarse-grid step for one scale — shared by the
// scan loops and GridWindows so the two can't drift.
func (d *Detector) scanStride(h int) int {
	stride := int(float64(h) * d.opt.StrideFrac)
	if stride < 1 {
		stride = 1
	}
	return stride
}

// GridWindows returns the number of coarse-grid windows one Detect
// pass evaluates over a w×h frame, summed across scales — the
// denominator of windows/second throughput reporting. Geometry comes
// from the built matchers, so it always matches the scan.
func (d *Detector) GridWindows(w, h int) int {
	var total int
	for _, sh := range d.opt.Scales {
		sw := d.matchers[sh].W
		if sw > w || sh > h {
			continue
		}
		stride := d.scanStride(sh)
		total += ((h-sh)/stride + 1) * ((w-sw)/stride + 1)
	}
	return total
}

// nms performs greedy non-maximum suppression by IoU.
func nms(dets []Detection, iou float64) []Detection {
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	var out []Detection
	for _, d := range dets {
		keep := true
		for _, k := range out {
			if d.Box.IoU(k.Box) > iou {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}
