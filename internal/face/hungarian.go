package face

import "math"

// hungarian solves the rectangular min-cost assignment problem using the
// potentials (Kuhn–Munkres) algorithm in O(n²m). cost[i][j] is the cost
// of assigning row i to column j; the return value maps each row to its
// column, or −1 when rows exceed columns and the row stays unassigned.
//
// Infinite costs mark forbidden pairs; rows whose only options are
// forbidden end up matched to a forbidden column — callers must check
// the cost of the returned pairs (the tracker treats such pairs as
// unmatched).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	transposed := false
	if n > m {
		// The algorithm needs rows ≤ columns; transpose if necessary.
		t := make([][]float64, m)
		for j := 0; j < m; j++ {
			t[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				t[j][i] = cost[i][j]
			}
		}
		cost = t
		n, m = m, n
		transposed = true
	}

	// Potentials-based Hungarian, 1-indexed internally.
	const inf = math.MaxFloat64 / 4
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				c := cost[i0-1][j-1]
				if c > inf {
					c = inf
				}
				cur := c - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	// Extract row → column mapping.
	rowToCol := make([]int, n)
	for i := range rowToCol {
		rowToCol[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	if !transposed {
		return rowToCol
	}
	// Undo the transpose: we solved columns→rows.
	out := make([]int, m)
	for i := range out {
		out[i] = -1
	}
	for col, row := range rowToCol {
		if row >= 0 {
			out[row] = col
		}
	}
	return out
}
