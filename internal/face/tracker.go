package face

import (
	"fmt"
	"math"

	"repro/internal/img"
)

// TrackState is the lifecycle state of a track.
type TrackState uint8

// Track lifecycle states.
const (
	// Tentative tracks have too few hits to be trusted yet.
	Tentative TrackState = iota
	// Confirmed tracks have been matched ConfirmHits times.
	Confirmed
	// Lost tracks have missed more than MaxMisses consecutive frames
	// and are about to be removed.
	Lost
)

// String names the state.
func (s TrackState) String() string {
	switch s {
	case Tentative:
		return "tentative"
	case Confirmed:
		return "confirmed"
	case Lost:
		return "lost"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Track is one tracked face.
type Track struct {
	// ID is the stable track identifier, assigned on creation.
	ID int
	// Box is the latest associated (or predicted) bounding box.
	Box img.Rect
	// State is the lifecycle state.
	State TrackState
	// Identity is the recognized person label, empty until a
	// recognizer labels the track.
	Identity string
	// Hits and Misses count consecutive association outcomes.
	Hits, Misses int
	// Age is the number of frames since creation.
	Age int

	kf *kalman
}

// Center returns the estimated face centre.
func (t *Track) Center() (float64, float64) { return t.kf.pos() }

// Velocity returns the estimated centre velocity in pixels/frame.
func (t *Track) Velocity() (float64, float64) { return t.kf.vel() }

// TrackerOptions tune the tracker.
type TrackerOptions struct {
	// MaxDist is the gating distance in pixels: detections farther
	// than this from a track prediction can never match it (default 60).
	MaxDist float64
	// ConfirmHits promotes a tentative track after this many total
	// hits (default 3).
	ConfirmHits int
	// MaxMisses drops a track after this many consecutive missed
	// frames (default 10).
	MaxMisses int
	// ProcessNoise and MeasNoise parameterise the Kalman filters
	// (defaults 1.0 and 4.0).
	ProcessNoise, MeasNoise float64
}

func (o TrackerOptions) withDefaults() TrackerOptions {
	if o.MaxDist == 0 {
		o.MaxDist = 60
	}
	if o.ConfirmHits == 0 {
		o.ConfirmHits = 3
	}
	if o.MaxMisses == 0 {
		o.MaxMisses = 10
	}
	if o.ProcessNoise == 0 {
		o.ProcessNoise = 1
	}
	if o.MeasNoise == 0 {
		o.MeasNoise = 4
	}
	return o
}

// Tracker maintains face tracks across frames: Kalman prediction,
// Hungarian association on centre distance, and track lifecycle
// management — the paper's "human face tracking" component.
type Tracker struct {
	opt    TrackerOptions
	tracks []*Track
	nextID int
}

// NewTracker returns an empty tracker.
func NewTracker(opt TrackerOptions) *Tracker {
	return &Tracker{opt: opt.withDefaults(), nextID: 1}
}

// Tracks returns the live tracks (tentative and confirmed).
func (tr *Tracker) Tracks() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		if t.State != Lost {
			out = append(out, t)
		}
	}
	return out
}

// Confirmed returns only confirmed tracks.
func (tr *Tracker) Confirmed() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		if t.State == Confirmed {
			out = append(out, t)
		}
	}
	return out
}

// Step advances one frame: predicts all tracks, associates the given
// detections, updates matched tracks, ages unmatched ones, and starts
// new tentative tracks for unmatched detections. It returns the tracks
// associated with each detection (aligned with dets; nil where the
// detection started a brand-new track this frame... which also is
// returned, so every entry is non-nil).
func (tr *Tracker) Step(dets []Detection) []*Track {
	// 1. Predict.
	for _, t := range tr.tracks {
		t.kf.predict()
		t.Age++
	}

	// 2. Associate confirmed+tentative tracks to detections by centre
	// distance with gating.
	live := tr.tracks
	assigned := make([]*Track, len(dets))
	const forbidden = math.MaxFloat64 / 8
	if len(live) > 0 && len(dets) > 0 {
		cost := make([][]float64, len(live))
		for i, t := range live {
			cost[i] = make([]float64, len(dets))
			px, py := t.kf.pos()
			for j, d := range dets {
				cx, cy := d.Box.Center()
				dist := math.Hypot(cx-px, cy-py)
				if dist > tr.opt.MaxDist {
					cost[i][j] = forbidden
				} else {
					cost[i][j] = dist
				}
			}
		}
		match := hungarian(cost)
		for i, j := range match {
			if j < 0 || cost[i][j] >= forbidden {
				continue
			}
			t := live[i]
			d := dets[j]
			cx, cy := d.Box.Center()
			t.kf.update(cx, cy)
			t.Box = d.Box
			t.Hits++
			t.Misses = 0
			if t.State == Tentative && t.Hits >= tr.opt.ConfirmHits {
				t.State = Confirmed
			}
			assigned[j] = t
		}
	}

	// 3. Age unmatched tracks.
	matched := make(map[*Track]bool, len(dets))
	for _, t := range assigned {
		if t != nil {
			matched[t] = true
		}
	}
	keep := tr.tracks[:0]
	for _, t := range tr.tracks {
		if !matched[t] {
			t.Misses++
			// Keep the predicted box roughly centred on the estimate.
			px, py := t.kf.pos()
			t.Box = img.Rect{
				X: int(px) - t.Box.W/2, Y: int(py) - t.Box.H/2,
				W: t.Box.W, H: t.Box.H,
			}
			if t.Misses > tr.opt.MaxMisses ||
				(t.State == Tentative && t.Misses > 1) {
				t.State = Lost
				continue // dropped
			}
		}
		keep = append(keep, t)
	}
	tr.tracks = keep

	// 4. Spawn new tracks for unmatched detections.
	for j, d := range dets {
		if assigned[j] != nil {
			continue
		}
		cx, cy := d.Box.Center()
		t := &Track{
			ID:    tr.nextID,
			Box:   d.Box,
			State: Tentative,
			Hits:  1,
			kf:    newKalman(cx, cy, tr.opt.ProcessNoise, tr.opt.MeasNoise),
		}
		tr.nextID++
		tr.tracks = append(tr.tracks, t)
		assigned[j] = t
	}
	return assigned
}
