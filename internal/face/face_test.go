package face

import (
	"errors"
	"math"
	"testing"

	"repro/internal/emotion"
	"repro/internal/img"
)

// frameWithFaces draws n faces at known positions on a plain background.
func frameWithFaces(positions []img.Rect, tones []uint8) *img.Gray {
	g := img.New(640, 480)
	g.Fill(45)
	for i, r := range positions {
		emotion.RenderFaceInto(g, r, tones[i], emotion.Neutral, uint64(i)*7919+1)
	}
	return g
}

func TestDetectorFindsFaces(t *testing.T) {
	positions := []img.Rect{
		{X: 100, Y: 100, W: 40, H: 48},
		{X: 400, Y: 250, W: 56, H: 68},
	}
	g := frameWithFaces(positions, []uint8{200, 150})
	det, err := NewDetector(DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := det.Detect(g)
	if len(found) < 2 {
		t.Fatalf("found %d faces, want ≥ 2: %v", len(found), found)
	}
	for _, want := range positions {
		ok := false
		for _, d := range found {
			if d.Box.IoU(want) > 0.3 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("face at %v not detected; detections: %v", want, found)
		}
	}
}

func TestDetectorEmptyFrame(t *testing.T) {
	g := img.New(320, 240)
	g.Fill(45)
	det, _ := NewDetector(DetectorOptions{})
	if found := det.Detect(g); len(found) != 0 {
		t.Errorf("flat frame produced %d detections", len(found))
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewDetector(DetectorOptions{Scales: []int{2}}); !errors.Is(err, ErrBadOptions) {
		t.Error("tiny scale should fail")
	}
	if _, err := NewDetector(DetectorOptions{StrideFrac: 2}); !errors.Is(err, ErrBadOptions) {
		t.Error("stride > 1 should fail")
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Detection{
		{Box: img.Rect{X: 0, Y: 0, W: 10, H: 10}, Score: 0.9},
		{Box: img.Rect{X: 1, Y: 1, W: 10, H: 10}, Score: 0.8}, // overlaps first
		{Box: img.Rect{X: 100, Y: 100, W: 10, H: 10}, Score: 0.7},
	}
	out := nms(dets, 0.3)
	if len(out) != 2 {
		t.Fatalf("nms kept %d, want 2", len(out))
	}
	if out[0].Score != 0.9 || out[1].Score != 0.7 {
		t.Errorf("nms kept wrong boxes: %v", out)
	}
}

func TestEmbeddingProperties(t *testing.T) {
	a := emotion.GenerateFace(emotion.Neutral, 1, 200)
	e := Embed(a)
	var norm float64
	for _, v := range e.Patch {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("embedding norm² = %v, want 1", norm)
	}
	if s := e.Cosine(e); math.Abs(s-1) > 1e-9 {
		t.Errorf("self-similarity = %v", s)
	}
	flat := img.New(64, 64)
	flat.Fill(128)
	fe := Embed(flat)
	for _, v := range fe.Patch {
		if v != 0 {
			t.Fatal("flat crop should embed to zero")
		}
	}
}

func TestRecognizerIdentifiesEnrolled(t *testing.T) {
	r := NewRecognizer()
	// Enroll four synthetic identities differing in tone and variant —
	// mirroring the prototype's four participants.
	tones := []uint8{230, 190, 150, 110}
	for i, tone := range tones {
		id := []string{"P1", "P2", "P3", "P4"}[i]
		for v := 0; v < 3; v++ {
			face := emotion.GenerateFace(emotion.Neutral, uint64(i)*7919+1, tone)
			if err := r.Enroll(id, face); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := r.Identities(); len(got) != 4 {
		t.Fatalf("identities = %v", got)
	}
	// Probe with a *different expression* of each identity.
	for i, tone := range tones {
		want := []string{"P1", "P2", "P3", "P4"}[i]
		probe := emotion.GenerateFace(emotion.Happy, uint64(i)*7919+1, tone)
		got, sim, err := r.Identify(probe)
		if err != nil {
			t.Fatalf("identify %s: %v (sim %v)", want, err, sim)
		}
		if got != want {
			t.Errorf("identified %s as %s (sim %.3f)", want, got, sim)
		}
	}
}

func TestRecognizerUnknownAndEmpty(t *testing.T) {
	r := NewRecognizer()
	if _, _, err := r.Identify(img.New(64, 64)); !errors.Is(err, ErrUnknownFace) {
		t.Errorf("empty gallery err = %v", err)
	}
	if err := r.Enroll("", img.New(64, 64)); err == nil {
		t.Error("empty id should fail")
	}
	face := emotion.GenerateFace(emotion.Neutral, 1, 200)
	if err := r.Enroll("P1", face); err != nil {
		t.Fatal(err)
	}
	// A flat probe must not match anything.
	flat := img.New(64, 64)
	flat.Fill(99)
	if _, _, err := r.Identify(flat); !errors.Is(err, ErrUnknownFace) {
		t.Errorf("flat probe err = %v", err)
	}
}

func TestKalmanConvergesToConstantVelocity(t *testing.T) {
	k := newKalman(0, 0, 1, 4)
	// Feed measurements of a target moving (2, 1) px/frame.
	for i := 1; i <= 50; i++ {
		k.predict()
		k.update(float64(i)*2, float64(i)*1)
	}
	vx, vy := k.vel()
	if math.Abs(vx-2) > 0.2 || math.Abs(vy-1) > 0.2 {
		t.Errorf("velocity = (%v, %v), want ≈ (2, 1)", vx, vy)
	}
	px, py := k.pos()
	if math.Abs(px-100) > 2 || math.Abs(py-50) > 2 {
		t.Errorf("position = (%v, %v), want ≈ (100, 50)", px, py)
	}
}

func TestKalmanPredictionCoasting(t *testing.T) {
	k := newKalman(0, 0, 0.5, 2)
	for i := 1; i <= 30; i++ {
		k.predict()
		k.update(float64(i)*3, 0)
	}
	// Coast 5 frames without measurements: position should continue at
	// the learned velocity.
	for i := 0; i < 5; i++ {
		k.predict()
	}
	px, _ := k.pos()
	if math.Abs(px-(90+5*3)) > 3 {
		t.Errorf("coasted to %v, want ≈ 105", px)
	}
}

func TestHungarianOptimal(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	m := hungarian(cost)
	// Optimal: r0→c1 (1), r1→c0 (2), r2→c2 (2) = 5.
	want := []int{1, 0, 2}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", m, want)
		}
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns: one row stays unassigned.
	cost := [][]float64{
		{1, 10},
		{2, 1},
		{10, 10},
	}
	m := hungarian(cost)
	used := map[int]bool{}
	assigned := 0
	for _, c := range m {
		if c >= 0 {
			if used[c] {
				t.Fatal("column used twice")
			}
			used[c] = true
			assigned++
		}
	}
	if assigned != 2 {
		t.Fatalf("assigned %d of 2 columns: %v", assigned, m)
	}
	// r0→c0 and r1→c1 is the optimum.
	if m[0] != 0 || m[1] != 1 || m[2] != -1 {
		t.Errorf("assignment = %v, want [0 1 -1]", m)
	}

	// More columns than rows.
	cost2 := [][]float64{{5, 1, 9}}
	m2 := hungarian(cost2)
	if m2[0] != 1 {
		t.Errorf("wide assignment = %v, want [1]", m2)
	}

	if hungarian(nil) != nil {
		t.Error("empty cost should give nil")
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	// Property: on small random square instances, the Hungarian result
	// equals exhaustive-search optimum.
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		n := 2 + int(seed%4)
		cost := make([][]float64, n)
		h := seed
		next := func() float64 {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			return float64(h % 100)
		}
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = next()
			}
		}
		m := hungarian(cost)
		var got float64
		for i, j := range m {
			got += cost[i][j]
		}
		want := bruteForceAssign(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: hungarian %v vs brute force %v (m=%v)", seed, got, want, m)
		}
	}
}

// bruteForceAssign finds the optimal assignment cost by permutation.
func bruteForceAssign(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(TrackerOptions{ConfirmHits: 3, MaxMisses: 2})
	det := func(x int) []Detection {
		return []Detection{{Box: img.Rect{X: x, Y: 100, W: 40, H: 48}, Score: 0.9}}
	}
	// Frame 1: new tentative track.
	got := tr.Step(det(100))
	if len(got) != 1 || got[0].State != Tentative {
		t.Fatalf("first frame: %+v", got)
	}
	id := got[0].ID
	// Frames 2-3: same face drifting right — confirms.
	tr.Step(det(103))
	got = tr.Step(det(106))
	if got[0].ID != id {
		t.Fatalf("track ID changed: %d -> %d", id, got[0].ID)
	}
	if got[0].State != Confirmed {
		t.Errorf("state after 3 hits = %v, want confirmed", got[0].State)
	}
	// Miss 3 frames: track dies (MaxMisses 2).
	tr.Step(nil)
	tr.Step(nil)
	tr.Step(nil)
	if live := tr.Tracks(); len(live) != 0 {
		t.Errorf("%d tracks alive after misses", len(live))
	}
}

func TestTrackerKeepsIdentitiesApart(t *testing.T) {
	tr := NewTracker(TrackerOptions{ConfirmHits: 2})
	mk := func(x1, x2 int) []Detection {
		return []Detection{
			{Box: img.Rect{X: x1, Y: 100, W: 40, H: 48}, Score: 0.9},
			{Box: img.Rect{X: x2, Y: 300, W: 40, H: 48}, Score: 0.9},
		}
	}
	first := tr.Step(mk(100, 100))
	idA, idB := first[0].ID, first[1].ID
	if idA == idB {
		t.Fatal("two detections got one track")
	}
	// Both drift right over 10 frames; IDs must persist.
	for i := 1; i <= 10; i++ {
		got := tr.Step(mk(100+3*i, 100+3*i))
		if got[0].ID != idA || got[1].ID != idB {
			t.Fatalf("frame %d: IDs swapped or changed: %d,%d", i, got[0].ID, got[1].ID)
		}
	}
}

func TestTrackerSurvivesShortOcclusion(t *testing.T) {
	tr := NewTracker(TrackerOptions{ConfirmHits: 2, MaxMisses: 8})
	det := func(x int) []Detection {
		return []Detection{{Box: img.Rect{X: x, Y: 100, W: 40, H: 48}, Score: 0.9}}
	}
	var id int
	for i := 0; i < 6; i++ {
		got := tr.Step(det(100 + 4*i))
		id = got[0].ID
	}
	// 4-frame occlusion.
	for i := 0; i < 4; i++ {
		tr.Step(nil)
	}
	// Reappears where the motion model predicts (x continues +4/frame).
	got := tr.Step(det(100 + 4*10))
	if got[0].ID != id {
		t.Errorf("track not re-acquired after occlusion: %d -> %d", id, got[0].ID)
	}
}

func TestTrackerGatingRejectsFarMatches(t *testing.T) {
	tr := NewTracker(TrackerOptions{ConfirmHits: 2, MaxDist: 30})
	got := tr.Step([]Detection{{Box: img.Rect{X: 100, Y: 100, W: 40, H: 48}}})
	id := got[0].ID
	// A detection 300px away must start a new track, not steal the old.
	got = tr.Step([]Detection{{Box: img.Rect{X: 400, Y: 100, W: 40, H: 48}}})
	if got[0].ID == id {
		t.Error("far detection stole the track")
	}
}
