package face

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/camera"
	"repro/internal/emotion"
	"repro/internal/img"
	"repro/internal/scene"
	"repro/internal/video"
)

// assertDetectionsMatch enforces the engine's correctness bar: boxes
// byte-identical to the oracle, scores within 1e-9.
func assertDetectionsMatch(t *testing.T, name string, fused, oracle []Detection) {
	t.Helper()
	if len(fused) != len(oracle) {
		t.Fatalf("%s: fused found %d detections, oracle %d\nfused:  %v\noracle: %v",
			name, len(fused), len(oracle), fused, oracle)
	}
	for i := range fused {
		if fused[i].Box != oracle[i].Box {
			t.Errorf("%s: box %d differs: fused %v, oracle %v", name, i, fused[i].Box, oracle[i].Box)
		}
		if d := math.Abs(fused[i].Score - oracle[i].Score); d > 1e-9 {
			t.Errorf("%s: score %d differs by %g (fused %v, oracle %v)",
				name, i, d, fused[i].Score, oracle[i].Score)
		}
	}
}

// TestDetectMatchesOracleScenario runs the fused engine against the
// retained crop-and-NCC oracle on rendered prototype-scenario frames —
// multiple cameras, multiple timestamps, with and without sensor
// noise.
func TestDetectMatchesOracleScenario(t *testing.T) {
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, noise := range []float64{0, 1.5} {
		for _, cam := range []int{0, 2} {
			r := video.NewRenderer(sim, rig.Cameras[cam], video.RenderOptions{NoiseSigma: noise})
			for _, frame := range []int{0, 100, 250, 400, 609} {
				g := r.Render(frame).Pixels
				assertDetectionsMatch(t, "scenario frame",
					det.Detect(g), det.detectOracle(g))
			}
		}
	}
}

// TestDetectMatchesOracleSynthetic sweeps seeded synthetic frames:
// faces at random positions and scales over noisy backgrounds, plus a
// flat frame and a no-face clutter frame.
func TestDetectMatchesOracleSynthetic(t *testing.T) {
	det, err := NewDetector(DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := img.New(320, 240)
		g.Fill(uint8(40 + rng.Intn(30)))
		for i := range g.Pix {
			if rng.Intn(4) == 0 {
				g.Pix[i] = uint8(int(g.Pix[i]) + rng.Intn(12))
			}
		}
		for f := 0; f < 1+rng.Intn(3); f++ {
			h := 24 + rng.Intn(60)
			w := h * 5 / 6
			x := rng.Intn(g.W - w)
			y := rng.Intn(g.H - h)
			tone := uint8(120 + rng.Intn(120))
			emotion.RenderFaceInto(g, img.Rect{X: x, Y: y, W: w, H: h}, tone, emotion.Neutral, uint64(seed))
		}
		assertDetectionsMatch(t, "synthetic frame", det.Detect(g), det.detectOracle(g))
	}

	flat := img.New(200, 160)
	flat.Fill(45)
	assertDetectionsMatch(t, "flat frame", det.Detect(flat), det.detectOracle(flat))
}

// TestDetectConcurrentSharedDetector drives concurrent Detect calls
// through one shared detector (the engine does exactly this from its
// worker pool) and checks every goroutine gets results identical to a
// serial run. Run under -race this is the matcher's thread-safety
// gate.
func TestDetectConcurrentSharedDetector(t *testing.T) {
	sim, err := scene.NewSimulator(scene.PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	rig, err := camera.PrototypeRig(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*img.Gray, 4)
	serial := make([][]Detection, len(frames))
	for i := range frames {
		r := video.NewRenderer(sim, rig.Cameras[i%len(rig.Cameras)], video.RenderOptions{})
		frames[i] = r.Render(100 * i).Pixels
		serial[i] = det.Detect(frames[i])
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (gi + rep) % len(frames)
				if got := det.Detect(frames[i]); !reflect.DeepEqual(got, serial[i]) {
					errs <- "concurrent Detect diverged from serial result"
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestGridWindows sanity-checks the throughput denominator.
func TestGridWindows(t *testing.T) {
	det, err := NewDetector(DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := det.GridWindows(640, 480)
	if n <= 0 {
		t.Fatalf("GridWindows = %d", n)
	}
	// Smallest scale alone contributes ((480-24)/6+1)*((640-20)/6+1).
	if min := ((480 - 24) / 6) * ((640 - 20) / 6); n < min {
		t.Errorf("GridWindows = %d, want ≥ %d", n, min)
	}
	if det.GridWindows(10, 10) != 0 {
		t.Error("tiny frame should fit no windows")
	}
}
