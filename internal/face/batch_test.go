package face

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/emotion"
	"repro/internal/img"
)

// galleryCrops renders a set of identity crops from the synthetic face
// generator: per person a fixed (variant, tone) pair, several jittered
// samples each.
func galleryCrops(n int) map[string][]*img.Gray {
	out := make(map[string][]*img.Gray, n)
	for p := 0; p < n; p++ {
		id := string(rune('A' + p))
		tone := uint8(90 + 30*p)
		for v := uint64(0); v < 3; v++ {
			out[id] = append(out[id], emotion.GenerateFace(emotion.Neutral, uint64(p)*10+v, tone))
		}
	}
	return out
}

// TestIdentifyBatchMatchesIdentify checks the batched recognizer path
// agrees with per-crop Identify on hits and misses alike.
func TestIdentifyBatchMatchesIdentify(t *testing.T) {
	rec := NewRecognizer()
	gallery := galleryCrops(4)
	for id, crops := range gallery {
		for _, c := range crops {
			if err := rec.Enroll(id, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	var probes []*img.Gray
	for _, crops := range gallery {
		probes = append(probes, crops...)
	}
	// Unknown probes: a flat crop and an unrelated emotion/tone.
	flat := img.New(40, 48)
	flat.Fill(128)
	probes = append(probes, flat, emotion.GenerateFace(emotion.Surprise, 99, 250))

	ids, sims := rec.IdentifyBatch(probes, nil, nil)
	if len(ids) != len(probes) || len(sims) != len(probes) {
		t.Fatalf("batch sizes %d/%d for %d probes", len(ids), len(sims), len(probes))
	}
	for i, p := range probes {
		id, sim, err := rec.Identify(p)
		if err != nil {
			if !errors.Is(err, ErrUnknownFace) {
				t.Fatal(err)
			}
			id = ""
		}
		if ids[i] != id || sims[i] != sim {
			t.Fatalf("probe %d: batch (%q,%v) != single (%q,%v)", i, ids[i], sims[i], id, sim)
		}
	}

	// Empty gallery and empty batch behave like Identify's misses.
	empty := NewRecognizer()
	ids, sims = empty.IdentifyBatch(probes[:2], ids, sims)
	for i := range ids {
		if ids[i] != "" {
			t.Fatalf("empty gallery probe %d matched %q", i, ids[i])
		}
		_ = sims[i]
	}
	if ids, sims = rec.IdentifyBatch(nil, ids, sims); len(ids) != 0 || len(sims) != 0 {
		t.Fatal("empty batch must return empty slices")
	}
}

// TestIdentifyBatchConcurrent hammers one shared recognizer from many
// goroutines mixing IdentifyBatch and Identify — run under -race this
// is the gallery-lock safety gate.
func TestIdentifyBatchConcurrent(t *testing.T) {
	rec := NewRecognizer()
	gallery := galleryCrops(3)
	for id, crops := range gallery {
		for _, c := range crops {
			if err := rec.Enroll(id, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	var probes []*img.Gray
	for _, crops := range gallery {
		probes = append(probes, crops[0])
	}
	wantIDs, wantSims := rec.IdentifyBatch(probes, nil, nil)
	wi := append([]string(nil), wantIDs...)
	ws := append([]float64(nil), wantSims...)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ids []string
			var sims []float64
			for iter := 0; iter < 20; iter++ {
				if g%2 == 0 {
					ids, sims = rec.IdentifyBatch(probes, ids, sims)
					for i := range wi {
						if ids[i] != wi[i] || sims[i] != ws[i] {
							t.Errorf("batch drifted at probe %d", i)
							return
						}
					}
				} else {
					for i, p := range probes {
						id, sim, err := rec.Identify(p)
						if err != nil || id != wi[i] || sim != ws[i] {
							t.Errorf("single drifted at probe %d: %v", i, err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCellSkipContract is the flat-cell tier's never-wrong-skip
// contract: every anchor buildCellSkip marks skippable must genuinely
// fail the contrast pre-filter the scan loop would have applied, so
// skipping can never change the detector's output.
func TestCellSkipContract(t *testing.T) {
	det, err := NewDetector(DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	g := img.New(320, 240)
	g.Fill(50)
	for i := range g.Pix {
		if rng.Intn(9) == 0 {
			g.Pix[i] = uint8(int(g.Pix[i]) + rng.Intn(4))
		}
	}
	emotion.RenderFaceInto(g, img.Rect{X: 60, Y: 40, W: 40, H: 48}, 180, emotion.Neutral, 1)
	emotion.RenderFaceInto(g, img.Rect{X: 200, Y: 120, W: 60, H: 72}, 220, emotion.Happy, 2)
	in, sq := img.BuildIntegrals(g, nil, nil)

	sc := &detScratch{}
	minVar := det.opt.MinVariance
	totalSkipped := 0
	for _, h := range det.opt.Scales {
		m := det.matchers[h]
		w := m.W
		if w > g.W || h > g.H {
			continue
		}
		stride := det.scanStride(h)
		nax := (g.W-w)/stride + 1
		nay := (g.H-h)/stride + 1
		sc.buildCellSkip(in, sq, nax, nay, stride, w, h, minVar)
		skipped := 0
		for ay := 0; ay < nay; ay++ {
			for ax := 0; ax < nax; ax++ {
				if !sc.skip[ay*nax+ax] {
					continue
				}
				skipped++
				x, y := ax*stride, ay*stride
				win := img.Rect{X: x, Y: y, W: w, H: h}
				centre := in.RegionMeanUnclipped(img.Rect{X: x + w/4, Y: y + h/4, W: w / 2, H: h / 2})
				border := in.RegionMeanUnclipped(win)
				diff := centre - border
				if diff*diff >= minVar/4 {
					t.Fatalf("scale %d anchor (%d,%d): skipped but pre-filter diff²=%v ≥ %v",
						h, x, y, diff*diff, minVar/4)
				}
			}
		}
		totalSkipped += skipped
	}
	// The tier must actually fire on a mostly-flat frame, or the
	// contract test proves nothing.
	if totalSkipped == 0 {
		t.Error("cell skip rejected nothing on a mostly-flat frame")
	}
}
