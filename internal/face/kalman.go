package face

// Kalman filter with a constant-velocity motion model for face centres:
// state x = (cx, cy, vx, vy), measurement z = (cx, cy). Hand-rolled for
// the fixed 4/2 dimensions — no general matrix library needed.

// kalman tracks one face centre.
type kalman struct {
	// x is the state estimate.
	x [4]float64
	// p is the state covariance (4×4).
	p [4][4]float64
	// q is process noise intensity, r measurement noise variance.
	q, r float64
}

// newKalman initialises a filter at the measured position with zero
// velocity and generous velocity uncertainty.
func newKalman(cx, cy, processNoise, measNoise float64) *kalman {
	k := &kalman{q: processNoise, r: measNoise}
	k.x = [4]float64{cx, cy, 0, 0}
	for i := 0; i < 4; i++ {
		k.p[i][i] = 10
	}
	k.p[2][2], k.p[3][3] = 100, 100 // unknown initial velocity
	return k
}

// predict advances the state one frame (dt = 1 frame).
func (k *kalman) predict() {
	// x' = F x with F = [[1,0,1,0],[0,1,0,1],[0,0,1,0],[0,0,0,1]].
	k.x[0] += k.x[2]
	k.x[1] += k.x[3]

	// P' = F P Fᵀ + Q. Compute FP first.
	var fp [4][4]float64
	for j := 0; j < 4; j++ {
		fp[0][j] = k.p[0][j] + k.p[2][j]
		fp[1][j] = k.p[1][j] + k.p[3][j]
		fp[2][j] = k.p[2][j]
		fp[3][j] = k.p[3][j]
	}
	var pp [4][4]float64
	for i := 0; i < 4; i++ {
		pp[i][0] = fp[i][0] + fp[i][2]
		pp[i][1] = fp[i][1] + fp[i][3]
		pp[i][2] = fp[i][2]
		pp[i][3] = fp[i][3]
	}
	// Q: white-acceleration model, diagonal approximation.
	pp[0][0] += k.q * 0.25
	pp[1][1] += k.q * 0.25
	pp[2][2] += k.q
	pp[3][3] += k.q
	k.p = pp
}

// update fuses a position measurement.
func (k *kalman) update(zx, zy float64) {
	// Innovation.
	yx := zx - k.x[0]
	yy := zy - k.x[1]
	// S = H P Hᵀ + R is the top-left 2×2 of P plus R on the diagonal.
	s00 := k.p[0][0] + k.r
	s11 := k.p[1][1] + k.r
	s01 := k.p[0][1]
	det := s00*s11 - s01*s01
	if det <= 1e-12 {
		return // degenerate covariance; skip the update
	}
	i00, i01, i11 := s11/det, -s01/det, s00/det
	// K = P Hᵀ S⁻¹ : columns 0,1 of P times S⁻¹.
	var kGain [4][2]float64
	for i := 0; i < 4; i++ {
		kGain[i][0] = k.p[i][0]*i00 + k.p[i][1]*i01
		kGain[i][1] = k.p[i][0]*i01 + k.p[i][1]*i11
	}
	for i := 0; i < 4; i++ {
		k.x[i] += kGain[i][0]*yx + kGain[i][1]*yy
	}
	// P = (I − K H) P : subtract K times the top two rows of P.
	var np [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			np[i][j] = k.p[i][j] - kGain[i][0]*k.p[0][j] - kGain[i][1]*k.p[1][j]
		}
	}
	k.p = np
}

// pos returns the estimated centre.
func (k *kalman) pos() (float64, float64) { return k.x[0], k.x[1] }

// vel returns the estimated velocity.
func (k *kalman) vel() (float64, float64) { return k.x[2], k.x[3] }
