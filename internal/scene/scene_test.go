package scene

import (
	"errors"
	"testing"
	"time"

	"repro/internal/emotion"
	"repro/internal/geom"
)

func validScenario() Scenario {
	return Scenario{
		Name: "t",
		Persons: []PersonSpec{
			{ID: 0, Name: "P1", Seat: geom.V3(1, 0, 1.2), HeadRadius: 0.12},
			{ID: 1, Name: "P2", Seat: geom.V3(-1, 0, 1.2), HeadRadius: 0.12},
		},
		Segments: []Segment{
			{Start: 0, Gaze: map[int]GazeTarget{0: AtPerson(1), 1: AtPerson(0)}, Speaker: -1},
		},
		NumFrames: 50, FPS: 25,
		TableW: 1.8, TableD: 1.0, TableH: 0.75, RoomW: 6, RoomD: 5,
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	sc := validScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want error
	}{
		{"no persons", func(s *Scenario) { s.Persons = nil }, ErrNoPersons},
		{"no segments", func(s *Scenario) { s.Segments = nil }, ErrNoSegments},
		{"zero frames", func(s *Scenario) { s.NumFrames = 0 }, ErrBadFrames},
		{"zero fps", func(s *Scenario) { s.FPS = 0 }, ErrBadFrames},
		{"dup person", func(s *Scenario) {
			s.Persons = append(s.Persons, PersonSpec{ID: 0, Name: "dup", HeadRadius: 0.12})
		}, ErrBadSegments},
		{"bad head radius", func(s *Scenario) { s.Persons[0].HeadRadius = 0 }, ErrBadSegments},
		{"first segment not 0", func(s *Scenario) { s.Segments[0].Start = 5 }, ErrBadSegments},
		{"self target", func(s *Scenario) {
			s.Segments[0].Gaze[0] = AtPerson(0)
		}, ErrBadSegments},
		{"unknown target", func(s *Scenario) {
			s.Segments[0].Gaze[0] = AtPerson(9)
		}, ErrBadSegments},
		{"unknown person scripted", func(s *Scenario) {
			s.Segments[0].Gaze[7] = AtTable()
		}, ErrBadSegments},
		{"unsorted segments", func(s *Scenario) {
			s.Segments = append(s.Segments, Segment{Start: 30}, Segment{Start: 10})
		}, ErrBadSegments},
		{"duplicate starts", func(s *Scenario) {
			s.Segments = append(s.Segments, Segment{Start: 0})
		}, ErrBadSegments},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := validScenario()
			c.mut(&sc)
			if err := sc.Validate(); !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestDuration(t *testing.T) {
	sc := validScenario()
	if got := sc.Duration(); got != 2*time.Second {
		t.Errorf("duration = %v, want 2s", got)
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	sc := PrototypeScenario()
	s1, err := NewSimulator(sc)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSimulator(sc)
	for _, i := range []int{0, 99, 250, 375, 609} {
		a, b := s1.FrameState(i), s2.FrameState(i)
		for j := range a.Persons {
			if !a.Persons[j].Head.ApproxEq(b.Persons[j].Head, 0) {
				t.Fatalf("frame %d person %d head differs between identical sims", i, j)
			}
			if a.Persons[j].Gaze != b.Persons[j].Gaze {
				t.Fatalf("frame %d person %d gaze differs", i, j)
			}
		}
	}
}

func TestSimulatorRandomAccessMatchesSequential(t *testing.T) {
	s, err := NewSimulator(PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	want := s.FrameState(300)
	// Access out of order first.
	_ = s.FrameState(500)
	_ = s.FrameState(10)
	got := s.FrameState(300)
	for j := range want.Persons {
		if !got.Persons[j].Head.ApproxEq(want.Persons[j].Head, 0) {
			t.Fatal("frame state depends on access order")
		}
	}
}

func TestSimulatorClampsFrameIndex(t *testing.T) {
	s, _ := NewSimulator(validScenario())
	if got := s.FrameState(-5).Index; got != 0 {
		t.Errorf("negative index clamps to %d", got)
	}
	if got := s.FrameState(1000).Index; got != 49 {
		t.Errorf("overflow index clamps to %d", got)
	}
}

func TestGazeAimsAtTarget(t *testing.T) {
	s, _ := NewSimulator(validScenario())
	fs := s.FrameState(10)
	p0, _ := fs.Person(0)
	p1, _ := fs.Person(1)
	// P0's gaze must point from P0's seat toward P1's head.
	want := p1.Head.Position.Sub(p0.Head.Position).Unit()
	if !p0.Gaze.ApproxEq(want, 1e-9) {
		t.Errorf("gaze = %v, want %v", p0.Gaze, want)
	}
	// Head forward should roughly align with gaze (within jitter).
	if ang := p0.Head.Forward().AngleTo(p0.Gaze); ang > geom.Deg2Rad(5) {
		t.Errorf("head forward off gaze by %v°", geom.Rad2Deg(ang))
	}
}

func TestTrueLookAtMatrix(t *testing.T) {
	s, _ := NewSimulator(validScenario())
	m := s.FrameState(0).TrueLookAt()
	// Mutual gaze: both off-diagonal entries set.
	if m[0][1] != 1 || m[1][0] != 1 {
		t.Errorf("matrix = %v, want mutual", m)
	}
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Error("diagonal must be zero")
	}
}

func TestFramesChannel(t *testing.T) {
	s, _ := NewSimulator(validScenario())
	n := 0
	for fs := range s.Frames() {
		if fs.Index != n {
			t.Fatalf("frame %d arrived at position %d", fs.Index, n)
		}
		n++
	}
	if n != 50 {
		t.Errorf("streamed %d frames, want 50", n)
	}
}

func TestScriptStatePersistsAcrossSegments(t *testing.T) {
	sc := validScenario()
	sc.NumFrames = 100
	// Second segment only changes person 0; person 1 keeps target.
	sc.Segments = append(sc.Segments, Segment{
		Start:    50,
		Gaze:     map[int]GazeTarget{0: AtTable()},
		Emotions: map[int]emotion.Label{0: emotion.Happy},
		Speaker:  0,
	})
	s, err := NewSimulator(sc)
	if err != nil {
		t.Fatal(err)
	}
	fs := s.FrameState(75)
	p0, _ := fs.Person(0)
	p1, _ := fs.Person(1)
	if p0.Target.Kind != LookAtTable {
		t.Error("p0 should have switched to table")
	}
	if p1.Target.Kind != LookAtPerson || p1.Target.Person != 0 {
		t.Error("p1 should keep previous target")
	}
	if p0.Emotion != emotion.Happy {
		t.Error("p0 emotion should update")
	}
	if !p0.Speaking || p1.Speaking {
		t.Error("speaker flag wrong")
	}
}

func TestPersonLookups(t *testing.T) {
	sc := validScenario()
	if _, ok := sc.Person(0); !ok {
		t.Error("Person(0) should exist")
	}
	if _, ok := sc.Person(42); ok {
		t.Error("Person(42) should not exist")
	}
	s, _ := NewSimulator(sc)
	fs := s.FrameState(0)
	if _, ok := fs.Person(42); ok {
		t.Error("FrameState.Person(42) should not exist")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseEating.String() != "eating" {
		t.Error("phase name wrong")
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase should still render")
	}
}

// TestTrueLookAtRowInvariant: in any scripted frame each participant
// looks at no more than one other participant and never at themselves.
func TestTrueLookAtRowInvariant(t *testing.T) {
	sims := []*Simulator{}
	s1, err := NewSimulator(PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	sims = append(sims, s1)
	dc, err := DinnerScenario(DinnerOptions{Persons: 6, Frames: 1200, Seed: 17, Enjoyment: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSimulator(dc)
	if err != nil {
		t.Fatal(err)
	}
	sims = append(sims, s2)
	for _, sim := range sims {
		for f := 0; f < sim.NumFrames(); f += 7 {
			m := sim.FrameState(f).TrueLookAt()
			for i := range m {
				row := 0
				for j := range m[i] {
					if i == j && m[i][j] != 0 {
						t.Fatalf("frame %d: self gaze", f)
					}
					row += m[i][j]
				}
				if row > 1 {
					t.Fatalf("frame %d: person %d looks at %d targets", f, i, row)
				}
			}
		}
	}
}
