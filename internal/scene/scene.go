// Package scene simulates dining social events: a room with a table,
// seated participants with scripted gaze behaviour, head-pose dynamics
// and emotion processes. It substitutes for the recorded surveillance
// video the paper's prototype used (see DESIGN.md §1) and doubles as the
// ground-truth oracle for every experiment: each frame's true head poses,
// gaze targets, emotions and activity phase are known exactly.
package scene

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/emotion"
	"repro/internal/geom"
)

// DefaultHeadRadius is the head-sphere radius (metres) of paper Eq. 3 —
// an average adult head modelled as a 12 cm sphere.
const DefaultHeadRadius = 0.12

// PersonSpec describes one participant: identity, display colour (the
// paper identifies prototype participants by shirt colour), and seat.
type PersonSpec struct {
	// ID is the participant index, 0-based; P1 is ID 0.
	ID int
	// Name is the paper-style label ("P1").
	Name string
	// Color is the display colour used by the prototype figures
	// ("yellow", "blue", "green", "black").
	Color string
	// Seat is the head rest position in world coordinates (metres).
	Seat geom.Vec3
	// HeadRadius is the eye-contact sphere radius (paper Eq. 3).
	HeadRadius float64
	// Intensity is the base gray level the renderer uses for this
	// person's face (identity cue for face recognition).
	FaceTone uint8
}

// TargetKind says what a participant's gaze is scripted to rest on.
type TargetKind uint8

// Gaze target kinds.
const (
	// LookAtPerson aims at another participant's head.
	LookAtPerson TargetKind = iota
	// LookAtTable aims at the participant's plate on the table.
	LookAtTable
	// LookAway aims at a fixed point away from the table (distraction).
	LookAway
)

// GazeTarget is a scripted gaze destination.
type GazeTarget struct {
	Kind TargetKind
	// Person is the target participant ID, valid when Kind == LookAtPerson.
	Person int
}

// AtPerson builds a person-directed gaze target.
func AtPerson(id int) GazeTarget { return GazeTarget{Kind: LookAtPerson, Person: id} }

// AtTable builds a plate-directed gaze target.
func AtTable() GazeTarget { return GazeTarget{Kind: LookAtTable} }

// Away builds a distraction gaze target.
func Away() GazeTarget { return GazeTarget{Kind: LookAway} }

// Phase is the dining-activity phase of a frame, the hidden state the HMM
// baseline (Gao et al. [16]) tries to recover.
type Phase uint8

// Dining phases in temporal order of a typical dinner.
const (
	PhaseArriving Phase = iota
	PhaseOrdering
	PhaseEating
	PhaseTalking
	PhasePaying

	numPhases
)

// NumPhases is the number of dining-activity phases.
const NumPhases = int(numPhases)

var phaseNames = [NumPhases]string{"arriving", "ordering", "eating", "talking", "paying"}

// String returns the phase name.
func (p Phase) String() string {
	if int(p) >= NumPhases {
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
	return phaseNames[p]
}

// Segment scripts behaviour from frame Start (inclusive) until the next
// segment's Start: per-person gaze targets, emotions, the speaker, and
// the dining phase.
type Segment struct {
	Start int
	// Gaze maps participant ID → scripted target. Persons absent from
	// the map keep their previous target.
	Gaze map[int]GazeTarget
	// Emotions maps participant ID → scripted emotion; absent persons
	// keep their previous emotion.
	Emotions map[int]emotion.Label
	// Speaker is the ID of the person speaking, or -1 for silence.
	Speaker int
	// Phase is the dining-activity phase.
	Phase Phase
}

// Scenario is a complete scripted dining event.
type Scenario struct {
	Name    string
	Persons []PersonSpec
	// Segments must be sorted by Start; the first must start at 0.
	Segments []Segment
	// NumFrames is the total length (paper prototype: 610).
	NumFrames int
	// FPS is the capture rate (paper: 25).
	FPS float64
	// TableW, TableD are the table dimensions (metres), centred at the
	// world origin with top at TableH.
	TableW, TableD, TableH float64
	// RoomW, RoomD are the room dimensions (metres).
	RoomW, RoomD float64
	// Seed drives all per-frame jitter; same seed → identical event.
	Seed int64
	// HeadJitterDeg is the σ of per-frame head-orientation jitter in
	// degrees (models natural micro-movement).
	HeadJitterDeg float64
}

// Validation errors.
var (
	ErrNoPersons   = errors.New("scene: scenario has no participants")
	ErrNoSegments  = errors.New("scene: scenario has no segments")
	ErrBadSegments = errors.New("scene: segments malformed")
	ErrBadFrames   = errors.New("scene: frame count must be positive")
)

// Validate checks scenario invariants.
func (sc *Scenario) Validate() error {
	if len(sc.Persons) == 0 {
		return ErrNoPersons
	}
	ids := make(map[int]bool, len(sc.Persons))
	for _, p := range sc.Persons {
		if p.ID < 0 || p.Name == "" {
			return fmt.Errorf("scene: person %+v invalid: %w", p, ErrBadSegments)
		}
		if ids[p.ID] {
			return fmt.Errorf("scene: duplicate person ID %d: %w", p.ID, ErrBadSegments)
		}
		ids[p.ID] = true
		if p.HeadRadius <= 0 {
			return fmt.Errorf("scene: person %s head radius %v: %w", p.Name, p.HeadRadius, ErrBadSegments)
		}
	}
	if sc.NumFrames <= 0 {
		return ErrBadFrames
	}
	if sc.FPS <= 0 {
		return fmt.Errorf("scene: fps %v: %w", sc.FPS, ErrBadFrames)
	}
	if len(sc.Segments) == 0 {
		return ErrNoSegments
	}
	if sc.Segments[0].Start != 0 {
		return fmt.Errorf("scene: first segment starts at %d: %w", sc.Segments[0].Start, ErrBadSegments)
	}
	if !sort.SliceIsSorted(sc.Segments, func(i, j int) bool {
		return sc.Segments[i].Start < sc.Segments[j].Start
	}) {
		return fmt.Errorf("scene: segments not sorted: %w", ErrBadSegments)
	}
	for i := 1; i < len(sc.Segments); i++ {
		if sc.Segments[i].Start == sc.Segments[i-1].Start {
			return fmt.Errorf("scene: duplicate segment start %d: %w", sc.Segments[i].Start, ErrBadSegments)
		}
	}
	for _, seg := range sc.Segments {
		for id, g := range seg.Gaze {
			if !ids[id] {
				return fmt.Errorf("scene: segment@%d scripts unknown person %d: %w", seg.Start, id, ErrBadSegments)
			}
			if g.Kind == LookAtPerson {
				if !ids[g.Person] {
					return fmt.Errorf("scene: segment@%d targets unknown person %d: %w", seg.Start, g.Person, ErrBadSegments)
				}
				if g.Person == id {
					return fmt.Errorf("scene: segment@%d person %d targets self: %w", seg.Start, id, ErrBadSegments)
				}
			}
		}
	}
	return nil
}

// Duration returns the event length.
func (sc *Scenario) Duration() time.Duration {
	return time.Duration(float64(sc.NumFrames) / sc.FPS * float64(time.Second))
}

// Person returns the spec for an ID.
func (sc *Scenario) Person(id int) (PersonSpec, bool) {
	for _, p := range sc.Persons {
		if p.ID == id {
			return p, true
		}
	}
	return PersonSpec{}, false
}

// PersonState is the ground-truth state of one participant in one frame.
type PersonState struct {
	ID    int
	Name  string
	Color string
	// Head is the true head pose in the world frame; Forward() is the
	// facing direction.
	Head geom.Pose
	// HeadRadius is the eye-contact sphere radius.
	HeadRadius float64
	// Gaze is the true unit gaze direction in the world frame.
	Gaze geom.Vec3
	// Target is the scripted gaze target (ground truth).
	Target GazeTarget
	// Emotion is the scripted emotion.
	Emotion emotion.Label
	// Speaking reports whether this person is the scripted speaker.
	Speaking bool
	// FaceTone is the person's identity gray level for rendering.
	FaceTone uint8
}

// FrameState is the ground truth of a single frame.
type FrameState struct {
	Index   int
	Time    time.Duration
	Phase   Phase
	Persons []PersonState
}

// Person returns the state of a participant by ID.
func (f *FrameState) Person(id int) (PersonState, bool) {
	for _, p := range f.Persons {
		if p.ID == id {
			return p, true
		}
	}
	return PersonState{}, false
}

// TrueLookAt returns the ground-truth look-at matrix of the frame:
// M[x][y] = 1 iff Px's scripted target is Py (indices are positions in
// Persons order, which follows ascending ID).
func (f FrameState) TrueLookAt() [][]int {
	n := len(f.Persons)
	idx := make(map[int]int, n)
	for i, p := range f.Persons {
		idx[p.ID] = i
	}
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for i, p := range f.Persons {
		if p.Target.Kind == LookAtPerson {
			if j, ok := idx[p.Target.Person]; ok {
				m[i][j] = 1
			}
		}
	}
	return m
}
