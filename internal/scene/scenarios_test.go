package scene

import (
	"testing"

	"repro/internal/emotion"
)

// TestPrototypeFig7 checks the exact t = 10 s (frame 250) look-at
// configuration of paper Fig. 7: green ↔ yellow mutual eye contact,
// black → blue, blue → green.
func TestPrototypeFig7(t *testing.T) {
	s, err := NewSimulator(PrototypeScenario())
	if err != nil {
		t.Fatal(err)
	}
	fs := s.FrameState(250)
	if fs.Time.Seconds() != 10 {
		t.Fatalf("frame 250 at %v, want 10 s", fs.Time)
	}
	m := fs.TrueLookAt()
	// Indices: 0=P1 yellow, 1=P2 blue, 2=P3 green, 3=P4 black.
	want := [4][4]int{
		{0, 0, 1, 0}, // yellow → green
		{0, 0, 1, 0}, // blue → green
		{1, 0, 0, 0}, // green → yellow
		{0, 1, 0, 0}, // black → blue
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if m[i][j] != want[i][j] {
				t.Errorf("M[%d][%d] = %d, want %d", i, j, m[i][j], want[i][j])
			}
		}
	}
	// Eye contact (paper: both (x,y) and (y,x) equal 1) holds exactly
	// for yellow-green.
	if !(m[0][2] == 1 && m[2][0] == 1) {
		t.Error("yellow-green eye contact missing")
	}
}

// TestPrototypeFig8 checks the t = 15 s (frame 375) configuration of
// Fig. 8: green, blue and black all look at yellow.
func TestPrototypeFig8(t *testing.T) {
	s, _ := NewSimulator(PrototypeScenario())
	fs := s.FrameState(375)
	if fs.Time.Seconds() != 15 {
		t.Fatalf("frame 375 at %v, want 15 s", fs.Time)
	}
	m := fs.TrueLookAt()
	for _, from := range []int{1, 2, 3} {
		if m[from][0] != 1 {
			t.Errorf("P%d should look at P1 (yellow)", from+1)
		}
	}
	// Yellow looks at the table — no person-directed edge from row 0.
	for j := 0; j < 4; j++ {
		if m[0][j] != 0 {
			t.Errorf("P1 row should be empty, M[0][%d]=%d", j, m[0][j])
		}
	}
}

// TestPrototypeFig9Summary checks the 610-frame summary matrix shape of
// Fig. 9: zero diagonal, P1 (yellow) column sum maximal (dominance), and
// P1 → P3 the largest entry at exactly 357.
func TestPrototypeFig9Summary(t *testing.T) {
	s, _ := NewSimulator(PrototypeScenario())
	if s.NumFrames() != 610 {
		t.Fatalf("prototype has %d frames, want 610", s.NumFrames())
	}
	sum := s.TrueSummary()
	// Zero diagonal.
	for i := 0; i < 4; i++ {
		if sum[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %d, want 0", i, i, sum[i][i])
		}
	}
	// Headline number: yellow looked at green 357 times.
	if sum[0][2] != 357 {
		t.Errorf("P1→P3 = %d, want 357", sum[0][2])
	}
	// Dominance: P1's column sum strictly maximal.
	col := func(j int) int {
		c := 0
		for i := 0; i < 4; i++ {
			c += sum[i][j]
		}
		return c
	}
	c0 := col(0)
	for j := 1; j < 4; j++ {
		if col(j) >= c0 {
			t.Errorf("column %d sum %d >= P1 column %d — P1 must dominate", j, col(j), c0)
		}
	}
	// Every row total ≤ frame count.
	for i := 0; i < 4; i++ {
		row := 0
		for j := 0; j < 4; j++ {
			row += sum[i][j]
		}
		if row > 610 {
			t.Errorf("row %d total %d exceeds frame count", i, row)
		}
	}
}

func TestPrototypePersons(t *testing.T) {
	sc := PrototypeScenario()
	if len(sc.Persons) != 4 {
		t.Fatal("prototype needs 4 participants")
	}
	wantColors := map[string]string{"P1": "yellow", "P2": "blue", "P3": "green", "P4": "black"}
	for _, p := range sc.Persons {
		if wantColors[p.Name] != p.Color {
			t.Errorf("%s color = %s, want %s", p.Name, p.Color, wantColors[p.Name])
		}
	}
}

func TestDinnerScenarioValidation(t *testing.T) {
	if _, err := DinnerScenario(DinnerOptions{Persons: 1, Frames: 1000}); err == nil {
		t.Error("party of 1 should fail")
	}
	if _, err := DinnerScenario(DinnerOptions{Persons: 9, Frames: 1000}); err == nil {
		t.Error("party of 9 should fail")
	}
	if _, err := DinnerScenario(DinnerOptions{Persons: 4, Frames: 10}); err == nil {
		t.Error("too-short dinner should fail")
	}
	if _, err := DinnerScenario(DinnerOptions{Persons: 4, Frames: 1000, Enjoyment: 2}); err == nil {
		t.Error("enjoyment > 1 should fail")
	}
}

func TestDinnerScenarioStructure(t *testing.T) {
	sc, err := DinnerScenario(DinnerOptions{Persons: 4, Frames: 2000, Seed: 7, Enjoyment: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("generated dinner invalid: %v", err)
	}
	s, err := NewSimulator(sc)
	if err != nil {
		t.Fatal(err)
	}
	// All five phases must appear, in order.
	seen := make(map[Phase]int)
	lastPhase := Phase(0)
	ordered := true
	for i := 0; i < sc.NumFrames; i += 25 {
		ph := s.FrameState(i).Phase
		seen[ph]++
		if ph < lastPhase {
			ordered = false
		}
		lastPhase = ph
	}
	if len(seen) != NumPhases {
		t.Errorf("saw %d phases, want %d (%v)", len(seen), NumPhases, seen)
	}
	if !ordered {
		t.Error("phases should be non-decreasing over the dinner")
	}
}

func TestDinnerEnjoymentShiftsEmotions(t *testing.T) {
	count := func(enjoyment float64) (happy, negative int) {
		sc, err := DinnerScenario(DinnerOptions{Persons: 4, Frames: 2000, Seed: 11, Enjoyment: enjoyment})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := NewSimulator(sc)
		for i := 0; i < sc.NumFrames; i += 10 {
			for _, p := range s.FrameState(i).Persons {
				if p.Emotion == emotion.Happy {
					happy++
				}
				if p.Emotion.Negative() {
					negative++
				}
			}
		}
		return happy, negative
	}
	goodHappy, goodNeg := count(0.95)
	badHappy, badNeg := count(0.05)
	if goodHappy <= badHappy {
		t.Errorf("enjoyable dinner should show more happiness: %d vs %d", goodHappy, badHappy)
	}
	if goodNeg >= badNeg {
		t.Errorf("bad dinner should show more negative affect: %d vs %d", goodNeg, badNeg)
	}
}

func TestDinnerDeterministicAcrossCalls(t *testing.T) {
	a, _ := DinnerScenario(DinnerOptions{Persons: 5, Frames: 1500, Seed: 3, Enjoyment: 0.5})
	b, _ := DinnerScenario(DinnerOptions{Persons: 5, Frames: 1500, Seed: 3, Enjoyment: 0.5})
	if len(a.Segments) != len(b.Segments) {
		t.Fatal("same seed must give same segment count")
	}
	for i := range a.Segments {
		if a.Segments[i].Speaker != b.Segments[i].Speaker {
			t.Fatal("same seed must give same speakers")
		}
	}
}

func TestFrameRandDistribution(t *testing.T) {
	// Sanity: the counter-based PRNG's normal output has roughly unit
	// variance and zero mean.
	r := newFrameRand(42, 1, 2)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean > 0.05 || mean < -0.05 {
		t.Errorf("mean = %v, want ≈ 0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("variance = %v, want ≈ 1", variance)
	}
}

func TestFrameRandIndependentStreams(t *testing.T) {
	a := newFrameRand(1, 10, 0)
	b := newFrameRand(1, 11, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.next() == b.next() {
			same++
		}
	}
	if same > 0 {
		t.Error("adjacent frame streams should not collide")
	}
}
