package scene

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/emotion"
	"repro/internal/geom"
)

// Simulator evaluates a Scenario frame by frame. Frame states are a pure
// function of (scenario, frame index): random jitter is derived from a
// counter-based PRNG keyed on (seed, frame, person), so frames can be
// generated in any order, in parallel, and are bit-identical across runs.
type Simulator struct {
	sc      Scenario
	persons []PersonSpec // sorted by ID
}

// NewSimulator validates the scenario and returns a simulator.
func NewSimulator(sc Scenario) (*Simulator, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scene: invalid scenario %q: %w", sc.Name, err)
	}
	ps := make([]PersonSpec, len(sc.Persons))
	copy(ps, sc.Persons)
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
	return &Simulator{sc: sc, persons: ps}, nil
}

// Scenario returns the validated scenario.
func (s *Simulator) Scenario() Scenario { return s.sc }

// NumFrames returns the event length in frames.
func (s *Simulator) NumFrames() int { return s.sc.NumFrames }

// Persons returns the participant specs in ascending ID order.
func (s *Simulator) Persons() []PersonSpec {
	out := make([]PersonSpec, len(s.persons))
	copy(out, s.persons)
	return out
}

// scriptState is the cumulative script effective at one frame.
type scriptState struct {
	gaze    map[int]GazeTarget
	emo     map[int]emotion.Label
	speaker int
	phase   Phase
}

// scriptAt folds segments up to frame i. Per-person entries persist until
// overridden, matching how a human scripter thinks about a timeline.
func (s *Simulator) scriptAt(i int) scriptState {
	st := scriptState{
		gaze:    make(map[int]GazeTarget, len(s.persons)),
		emo:     make(map[int]emotion.Label, len(s.persons)),
		speaker: -1,
	}
	for _, p := range s.persons {
		st.gaze[p.ID] = AtTable()
		st.emo[p.ID] = emotion.Neutral
	}
	for _, seg := range s.sc.Segments {
		if seg.Start > i {
			break
		}
		for id, g := range seg.Gaze {
			st.gaze[id] = g
		}
		for id, e := range seg.Emotions {
			st.emo[id] = e
		}
		st.speaker = seg.Speaker
		st.phase = seg.Phase
	}
	return st
}

// FrameState returns the ground truth for frame i. Frames outside
// [0, NumFrames) are clamped — stream consumers at boundaries prefer a
// repeated frame over a crash.
func (s *Simulator) FrameState(i int) FrameState {
	if i < 0 {
		i = 0
	}
	if i >= s.sc.NumFrames {
		i = s.sc.NumFrames - 1
	}
	st := s.scriptAt(i)
	fs := FrameState{
		Index:   i,
		Time:    time.Duration(float64(i) / s.sc.FPS * float64(time.Second)),
		Phase:   st.phase,
		Persons: make([]PersonState, 0, len(s.persons)),
	}
	for _, p := range s.persons {
		target := st.gaze[p.ID]
		gazePoint := s.gazePoint(p, target)
		head := geom.LookAt(p.Seat, gazePoint)

		// Natural micro-movement: small deterministic per-frame jitter
		// of the head orientation (breathing, balance). The scripted
		// gaze *target* stays the truth; the head pose wobbles around
		// it the way a real head does.
		if s.sc.HeadJitterDeg > 0 {
			rng := newFrameRand(s.sc.Seed, uint64(i), uint64(p.ID))
			jy := rng.NormFloat64() * geom.Deg2Rad(s.sc.HeadJitterDeg)
			jp := rng.NormFloat64() * geom.Deg2Rad(s.sc.HeadJitterDeg)
			head.Orientation = head.Orientation.
				Mul(geom.RotZ(jy)).
				Mul(geom.RotY(jp))
		}

		fs.Persons = append(fs.Persons, PersonState{
			ID:         p.ID,
			Name:       p.Name,
			Color:      p.Color,
			Head:       head,
			HeadRadius: p.HeadRadius,
			Gaze:       gazePoint.Sub(p.Seat).Unit(),
			Target:     target,
			Emotion:    st.emo[p.ID],
			Speaking:   st.speaker == p.ID,
			FaceTone:   p.FaceTone,
		})
	}
	return fs
}

// gazePoint resolves a scripted target to a world point.
func (s *Simulator) gazePoint(p PersonSpec, t GazeTarget) geom.Vec3 {
	switch t.Kind {
	case LookAtPerson:
		if q, ok := s.sc.Person(t.Person); ok {
			return q.Seat
		}
		return geom.V3(0, 0, s.sc.TableH)
	case LookAtTable:
		// The plate sits on the table edge nearest the person.
		dir := geom.V3(-p.Seat.X, -p.Seat.Y, 0).Unit()
		plate := p.Seat.Add(dir.Scale(0.35))
		plate.Z = s.sc.TableH
		return plate
	default: // LookAway: over the opposite shoulder, toward the wall.
		away := geom.V3(p.Seat.X, p.Seat.Y, 0).Unit().Scale(math.Max(s.sc.RoomW, s.sc.RoomD))
		away.Z = p.Seat.Z + 0.2
		return away
	}
}

// Frames streams all frame states in order. The channel is closed after
// the last frame. A small buffer lets the producer run ahead of slow
// consumers (the renderer).
func (s *Simulator) Frames() <-chan FrameState {
	ch := make(chan FrameState, 8)
	go func() {
		defer close(ch)
		for i := 0; i < s.sc.NumFrames; i++ {
			ch <- s.FrameState(i)
		}
	}()
	return ch
}

// TrueSummary sums the ground-truth look-at matrices over all frames —
// the oracle for the paper's Fig. 9 summary matrix.
func (s *Simulator) TrueSummary() [][]int {
	n := len(s.persons)
	sum := make([][]int, n)
	for i := range sum {
		sum[i] = make([]int, n)
	}
	for i := 0; i < s.sc.NumFrames; i++ {
		m := s.FrameState(i).TrueLookAt()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				sum[a][b] += m[a][b]
			}
		}
	}
	return sum
}

// frameRand is a tiny counter-based PRNG (splitmix64 core) giving each
// (seed, frame, person) triple an independent deterministic stream. Unlike
// math/rand it needs no locking and no sequential draw order.
type frameRand struct {
	state uint64
	// cached spare normal (Box–Muller generates pairs)
	spare    float64
	hasSpare bool
}

func newFrameRand(seed int64, frame, person uint64) *frameRand {
	x := uint64(seed) ^ frame*0x9E3779B97F4A7C15 ^ person*0xBF58476D1CE4E5B9
	return &frameRand{state: x}
}

func (r *frameRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0,1).
func (r *frameRand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal sample (Box–Muller).
func (r *frameRand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 1e-12 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}
