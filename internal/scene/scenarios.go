package scene

import (
	"fmt"
	"math"

	"repro/internal/emotion"
	"repro/internal/geom"
)

// Prototype participant colours, matching §III and Figs. 7–9: the paper
// names yellow (P1), green (P3) explicitly; blue and black fill P2/P4.
var prototypeColors = []string{"yellow", "blue", "green", "black"}

// PrototypeScenario reproduces the paper's §III prototype exactly: four
// participants around a rectangular table in a meeting room, 610 frames
// at 25 fps (40 s). The gaze script is constructed so that
//
//   - at t = 10 s (frame 250) the look-at map matches Fig. 7: green and
//     yellow in mutual eye contact, black → blue, blue → green;
//   - at t = 15 s (frame 375) the map matches Fig. 8: green, blue and
//     black all look at yellow;
//   - the 610-frame summary matches Fig. 9's shape: zero diagonal,
//     P1's (yellow's) column sum maximal (meeting dominance), and
//     P1 → P3 (yellow → green) the largest single entry at exactly 357.
func PrototypeScenario() Scenario {
	// Seats around a 1.8 × 1.0 m rectangular table centred at the
	// origin; heads at sitting height 1.2 m.
	const headZ = 1.2
	persons := []PersonSpec{
		{ID: 0, Name: "P1", Color: prototypeColors[0], Seat: geom.V3(1.15, 0, headZ), HeadRadius: DefaultHeadRadius, FaceTone: 230},
		{ID: 1, Name: "P2", Color: prototypeColors[1], Seat: geom.V3(0, 0.8, headZ), HeadRadius: DefaultHeadRadius, FaceTone: 190},
		{ID: 2, Name: "P3", Color: prototypeColors[2], Seat: geom.V3(-1.15, 0, headZ), HeadRadius: DefaultHeadRadius, FaceTone: 150},
		{ID: 3, Name: "P4", Color: prototypeColors[3], Seat: geom.V3(0, -0.8, headZ), HeadRadius: DefaultHeadRadius, FaceTone: 110},
	}

	// Gaze script. P1 = 0, P2 = 1, P3 = 2, P4 = 3.
	// P1→P3 frame count: (207−100) + (300−207) + (346−300) + (518−450)
	// + (610−567) = 107+93+46+68+43 = 357, pinning Fig. 9's headline
	// number.
	segments := []Segment{
		{ // P1 eats; the others chat around him.
			Start: 0,
			Gaze: map[int]GazeTarget{
				0: AtTable(), 1: AtPerson(0), 2: AtPerson(1), 3: AtPerson(2),
			},
			Emotions: map[int]emotion.Label{0: emotion.Neutral, 1: emotion.Neutral, 2: emotion.Happy, 3: emotion.Neutral},
			Speaker:  1, Phase: PhaseTalking,
		},
		{ // P1 starts speaking to P3; all attention on P1.
			Start: 100,
			Gaze: map[int]GazeTarget{
				0: AtPerson(2), 1: AtPerson(0), 2: AtPerson(0), 3: AtPerson(0),
			},
			Speaker: 0, Phase: PhaseTalking,
		},
		{ // Fig. 7 configuration (covers frame 250, t = 10 s):
			// yellow ↔ green mutual, blue → green, black → blue.
			Start: 207,
			Gaze: map[int]GazeTarget{
				0: AtPerson(2), 1: AtPerson(2), 2: AtPerson(0), 3: AtPerson(1),
			},
			Speaker: 0, Phase: PhaseTalking,
		},
		{ // Side conversation collapses; back to P1.
			Start: 300,
			Gaze: map[int]GazeTarget{
				0: AtPerson(2), 1: AtPerson(0), 2: AtPerson(0), 3: AtPerson(0),
			},
			Speaker: 0, Phase: PhaseTalking,
		},
		{ // Fig. 8 configuration (covers frame 375, t = 15 s):
			// green, blue, black → yellow; yellow glances at his notes.
			Start: 346,
			Gaze: map[int]GazeTarget{
				0: AtTable(), 1: AtPerson(0), 2: AtPerson(0), 3: AtPerson(0),
			},
			Emotions: map[int]emotion.Label{0: emotion.Happy},
			Speaker:  0, Phase: PhaseTalking,
		},
		{ // P1 resumes with P3; P2 drifts to P4.
			Start: 450,
			Gaze: map[int]GazeTarget{
				0: AtPerson(2), 1: AtPerson(3), 2: AtPerson(0), 3: AtPerson(0),
			},
			Speaker: 0, Phase: PhaseTalking,
		},
		{ // Brief exchange P1 ↔ P2.
			Start: 518,
			Gaze: map[int]GazeTarget{
				0: AtPerson(1), 1: AtPerson(0), 2: AtPerson(0), 3: AtPerson(0),
			},
			Speaker: 1, Phase: PhaseTalking,
		},
		{ // Closing: P1 back to P3, P2 follows the talk.
			Start: 567,
			Gaze: map[int]GazeTarget{
				0: AtPerson(2), 1: AtPerson(2), 2: AtPerson(0), 3: AtPerson(0),
			},
			Speaker: 0, Phase: PhaseTalking,
		},
	}

	return Scenario{
		Name:          "prototype",
		Persons:       persons,
		Segments:      segments,
		NumFrames:     610,
		FPS:           25,
		TableW:        1.8,
		TableD:        1.0,
		TableH:        0.75,
		RoomW:         6,
		RoomD:         5,
		Seed:          20180416, // ICDEW 2018 workshop date
		HeadJitterDeg: 0.8,
	}
}

// DinnerOptions parameterises the synthetic restaurant dinner used by the
// smart-restaurant experiments and the HMM baseline.
type DinnerOptions struct {
	// Persons is the party size (2–8).
	Persons int
	// Frames is the total length.
	Frames int
	// Seed drives the emotion/gaze randomisation.
	Seed int64
	// Enjoyment in [0,1] biases emotions positive — the knob the
	// recipe-evaluation experiment turns.
	Enjoyment float64
}

// DinnerScenario generates a full dinner with the five dining phases
// (arriving → ordering → eating → talking → paying), speaker rotation,
// plausible gaze behaviour (diners watch the speaker or their plates) and
// emotion dynamics biased by the Enjoyment knob. It provides ground truth
// for the activity-segmentation baseline (T-E) and the satisfaction
// analytics (Fig. 5 and the smart-restaurant example).
func DinnerScenario(opt DinnerOptions) (Scenario, error) {
	if opt.Persons < 2 || opt.Persons > 8 {
		return Scenario{}, fmt.Errorf("scene: dinner party of %d outside [2,8]: %w", opt.Persons, ErrNoPersons)
	}
	if opt.Frames < NumPhases*10 {
		return Scenario{}, fmt.Errorf("scene: %d frames too short for a dinner: %w", opt.Frames, ErrBadFrames)
	}
	if opt.Enjoyment < 0 || opt.Enjoyment > 1 {
		return Scenario{}, fmt.Errorf("scene: enjoyment %v outside [0,1]: %w", opt.Enjoyment, ErrBadSegments)
	}

	// Seats spaced around an ellipse fitting the table.
	const headZ = 1.2
	tones := []uint8{230, 200, 170, 140, 110, 90, 70, 50}
	persons := make([]PersonSpec, opt.Persons)
	for i := range persons {
		ang := 2 * 3.141592653589793 * float64(i) / float64(opt.Persons)
		persons[i] = PersonSpec{
			ID:         i,
			Name:       fmt.Sprintf("P%d", i+1),
			Color:      dinnerColors[i%len(dinnerColors)],
			Seat:       geom.V3(1.15*cos(ang), 0.8*sin(ang), headZ),
			HeadRadius: DefaultHeadRadius,
			FaceTone:   tones[i%len(tones)],
		}
	}

	rng := newFrameRand(opt.Seed, 0xD1EE, 0)

	// Phase boundaries: arriving 10%, ordering 15%, eating 40%,
	// talking 25%, paying 10%.
	cuts := []float64{0, 0.10, 0.25, 0.65, 0.90}
	phases := []Phase{PhaseArriving, PhaseOrdering, PhaseEating, PhaseTalking, PhasePaying}

	var segments []Segment
	for pi, frac := range cuts {
		phaseStart := int(frac * float64(opt.Frames))
		phaseEnd := opt.Frames
		if pi+1 < len(cuts) {
			phaseEnd = int(cuts[pi+1] * float64(opt.Frames))
		}
		ph := phases[pi]
		// Sub-segments of ~2 s (50 frames) within the phase, each with
		// fresh gaze/emotion assignments.
		for s := phaseStart; s < phaseEnd; s += 50 {
			seg := Segment{
				Start:    s,
				Gaze:     make(map[int]GazeTarget, opt.Persons),
				Emotions: make(map[int]emotion.Label, opt.Persons),
				Speaker:  -1,
				Phase:    ph,
			}
			// A speaker (if any) for this sub-segment.
			speaker := -1
			if ph != PhaseEating || rng.Float64() < 0.3 {
				speaker = int(rng.Float64() * float64(opt.Persons))
				seg.Speaker = speaker
			}
			for _, p := range persons {
				seg.Gaze[p.ID] = dinnerGaze(ph, p.ID, speaker, opt.Persons, rng)
				seg.Emotions[p.ID] = dinnerEmotion(ph, opt.Enjoyment, rng)
			}
			segments = append(segments, seg)
		}
	}

	return Scenario{
		Name:          fmt.Sprintf("dinner-%dp", opt.Persons),
		Persons:       persons,
		Segments:      segments,
		NumFrames:     opt.Frames,
		FPS:           25,
		TableW:        1.8,
		TableD:        1.0,
		TableH:        0.75,
		RoomW:         6,
		RoomD:         5,
		Seed:          opt.Seed,
		HeadJitterDeg: 0.8,
	}, nil
}

var dinnerColors = []string{"yellow", "blue", "green", "black", "red", "white", "orange", "purple"}

// dinnerGaze picks a plausible gaze target for a phase: diners watch the
// speaker while talking/ordering, their plates while eating, and wander
// while arriving or paying.
func dinnerGaze(ph Phase, self, speaker, n int, rng *frameRand) GazeTarget {
	other := func() GazeTarget {
		t := int(rng.Float64() * float64(n))
		if t == self {
			t = (t + 1) % n
		}
		return AtPerson(t)
	}
	r := rng.Float64()
	switch ph {
	case PhaseEating:
		switch {
		case r < 0.70:
			return AtTable()
		case r < 0.9:
			return other()
		default:
			return Away()
		}
	case PhaseTalking, PhaseOrdering:
		if speaker >= 0 && speaker != self && r < 0.75 {
			return AtPerson(speaker)
		}
		if r < 0.9 {
			return other()
		}
		return AtTable()
	case PhaseArriving, PhasePaying:
		switch {
		case r < 0.4:
			return Away()
		case r < 0.8:
			return other()
		default:
			return AtTable()
		}
	}
	return AtTable()
}

// dinnerEmotion samples an emotion biased by the enjoyment knob and the
// dining phase. Affect expression is strongly phase-coupled — people
// react to the food while eating, arrive near-neutral, and sour a little
// at the bill — following the food-and-emotion coupling the paper cites
// (Canetti et al. [5]).
func dinnerEmotion(ph Phase, enjoyment float64, rng *frameRand) emotion.Label {
	r := rng.Float64()
	var pHappy, pNegative float64
	switch ph {
	case PhaseArriving:
		pHappy, pNegative = 0.10*enjoyment, 0.05
	case PhaseOrdering:
		pHappy, pNegative = 0.10+0.25*enjoyment, 0.10*(1-enjoyment)
	case PhaseEating:
		pHappy, pNegative = 0.10+0.70*enjoyment, 0.55*(1-enjoyment)
	case PhaseTalking:
		pHappy, pNegative = 0.10+0.40*enjoyment, 0.25*(1-enjoyment)
	case PhasePaying:
		pHappy, pNegative = 0.10*enjoyment, 0.15+0.25*(1-enjoyment)
	}
	switch {
	case r < pHappy:
		return emotion.Happy
	case r < pHappy+pNegative:
		// Split negatives: disgust dominates for bad food.
		switch int(rng.Float64() * 3) {
		case 0:
			return emotion.Sad
		case 1:
			return emotion.Disgust
		default:
			return emotion.Angry
		}
	case r < pHappy+pNegative+0.08:
		return emotion.Surprise
	default:
		return emotion.Neutral
	}
}

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }
