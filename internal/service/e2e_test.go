package service_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/dievent/client"
	"repro/internal/metadata"
)

// TestDieventdEndToEnd is the server smoke gate check.sh runs: build
// the real dieventd binary, start it on a scratch root, run concurrent
// ingest+query+FOLLOW against it, SIGTERM mid-traffic, and assert the
// drain completes within its deadline, the process exits 0, the
// follower received the drain envelope, and a post-mortem offline Fsck
// of every tenant is clean.
func TestDieventdEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "dieventd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/dieventd")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dieventd: %v\n%s", err, out)
	}

	root := filepath.Join(scratch, "root")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-root", root,
		"-backpressure", "spill",
		"-drain-timeout", "30s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address once listening.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "dieventd listening on "); ok {
			base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address: %v", sc.Err())
	}
	go func() { // drain remaining stdout so the child never blocks on the pipe
		for sc.Scan() {
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	newClient := func(tenant string) *client.Client {
		c, err := client.New(client.Config{Base: base, Tenant: tenant, MaxRetries: 4, Backoff: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Concurrent traffic: two ingest tenants, a query loop, a follower.
	const perTenant = 5000
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for _, tenant := range []string{"rig-a", "rig-b"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			c := newClient(tenant)
			for lo := 0; lo < perTenant; lo += 250 {
				if err := c.Append(ctx, batch(lo, lo+250, "e2e")); err != nil {
					errCh <- fmt.Errorf("ingest %s: %w", tenant, err)
					return
				}
			}
		}(tenant)
	}
	queryStop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := newClient("rig-a")
		for {
			select {
			case <-queryStop:
				return
			default:
			}
			if _, err := c.Query(ctx, "label = 'e2e'", client.QueryOpts{Limit: 20, Timeout: 10 * time.Second}); err != nil {
				errCh <- fmt.Errorf("query: %w", err)
				return
			}
		}
	}()

	followRecords := make(chan int, 1)
	followTerm := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := newClient("rig-a")
		fs, err := c.Follow(ctx, "label = 'e2e'")
		if err != nil {
			errCh <- fmt.Errorf("follow subscribe: %w", err)
			followTerm <- err
			return
		}
		defer fs.Close()
		n := 0
		for {
			if _, err := fs.Next(); err != nil {
				followRecords <- n
				followTerm <- err
				return
			}
			n++
		}
	}()

	// Wait for ingest to finish so there is real data, keep the query
	// and follow streams live, then SIGTERM mid-traffic.
	ingestDone := make(chan struct{})
	go func() {
		// Only the two ingest goroutines matter here; query/follow run on.
		c := newClient("rig-b")
		for {
			st, err := c.Stats(ctx)
			if err == nil && st.Records >= perTenant {
				close(ingestDone)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	select {
	case <-ingestDone:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(90 * time.Second):
		t.Fatal("ingest never completed")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	close(queryStop)

	// Drain must finish well inside its 30s deadline; give the whole
	// process 45s including exec overhead.
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("dieventd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("dieventd did not drain+exit within deadline")
	}

	// The follower was terminated with the drain sentinel (or the
	// socket closed under it mid-drain, which still ends the stream).
	select {
	case err := <-followTerm:
		if !errors.Is(err, client.ErrDraining) {
			t.Logf("follower terminal error: %v (want ErrDraining; tolerated if the stream broke at socket close)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never terminated")
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		// Refusals during the drain window are the documented behaviour.
		if errors.Is(err, client.ErrDraining) || errors.Is(err, context.Canceled) {
			continue
		}
		t.Error(err)
	}

	// Post-mortem: leases released, stores sealed, zero damage.
	for _, tenant := range []string{"rig-a", "rig-b"} {
		rep, err := metadata.Fsck(filepath.Join(root, tenant))
		if err != nil {
			t.Fatalf("fsck %s: %v", tenant, err)
		}
		if !rep.Clean() {
			t.Errorf("fsck %s not clean after drain:\n%+v", tenant, rep)
		}
	}
}
