package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metadata"
)

// maxAppendBody bounds one ingest request's body.
const maxAppendBody = 32 << 20

// routes wires the API. Go 1.22 pattern routing carries the method and
// the {tenant} wildcard.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/records", s.handleAppend)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/follow", s.handleFollow)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/stats", s.handleStats)
}

// ServeHTTP implements http.Handler: health probes bypass admission
// (they must answer precisely when the server is overloaded or
// draining); everything else passes the admission gate — refused with
// 503 while draining and 429 at MaxInflight, both with Retry-After so
// well-behaved clients back off instead of hammering.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
		s.mux.ServeHTTP(w, r)
		return
	}
	if s.draining.Load() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	if !s.admit() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusTooManyRequests, "service: at capacity, retry later")
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Done()
	admitted := &admissionToken{s: s}
	defer admitted.release()
	r = r.WithContext(context.WithValue(r.Context(), admissionKey{}, admitted))
	s.mux.ServeHTTP(w, r)
}

// admissionToken lets the follow handler release its admission slot
// once the stream is established (long-lived streams are bounded by
// MaxFollowers, not MaxInflight).
type admissionToken struct {
	s        *Server
	released bool
}

type admissionKey struct{}

func (a *admissionToken) release() {
	if !a.released {
		a.released = true
		a.s.unadmit()
	}
}

// retryAfter stamps the Retry-After header (whole seconds, rounded up,
// minimum 1).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// handleAppend is batched ingest: a JSON array of records, appended
// atomically-per-record under one lock hold (AppendBatch). Refusals:
// 429 when the tenant's token bucket is dry (Retry-After says when to
// come back), 507 when the tenant is degraded read-only (disk quota or
// ENOSPC), 400 on malformed input.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("tenant"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var wires []WireRecord
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAppendBody))
	if err := dec.Decode(&wires); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("service: decoding records: %v", err))
		return
	}
	if len(wires) == 0 {
		httpError(w, http.StatusBadRequest, "service: empty batch")
		return
	}
	if t.isDegraded() {
		httpError(w, http.StatusInsufficientStorage, "service: tenant degraded to read-only (disk quota/ENOSPC)")
		return
	}
	if ok, wait := t.bucket.take(float64(len(wires)), s.cfg.now()); !ok {
		retryAfter(w, wait)
		httpError(w, http.StatusTooManyRequests, "service: append quota exhausted")
		return
	}
	recs := make([]metadata.Record, len(wires))
	for i, wr := range wires {
		rec, err := FromWire(wr)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("service: record %d: %v", i, err))
			return
		}
		recs[i] = rec
	}
	repo, err := t.acquire(r.Context(), s)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.release(s.cfg.now())
	if err := repo.AppendBatch(recs); err != nil {
		s.noteAppendError(t, err)
		switch {
		case isNoSpace(err):
			httpError(w, http.StatusInsufficientStorage, fmt.Sprintf("service: append: %v", err))
		case errors.Is(err, metadata.ErrBadRecord):
			httpError(w, http.StatusBadRequest, fmt.Sprintf("service: append: %v", err))
		default:
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("service: append: %v", err))
		}
		return
	}
	s.overQuota(t, repo)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"appended": len(recs)})
}

// parseQueryOpts reads limit/order/timeout from the URL.
func parseQueryOpts(r *http.Request) (metadata.QueryOpts, context.CancelFunc, error) {
	var opts metadata.QueryOpts
	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, nil, fmt.Errorf("service: bad limit %q", v)
		}
		opts.Limit = n
	}
	switch v := q.Get("order"); v {
	case "", "frame":
		opts.Order = metadata.OrderFrame
	case "id":
		opts.Order = metadata.OrderID
	default:
		return opts, nil, fmt.Errorf("service: bad order %q (want frame|id)", v)
	}
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return opts, nil, fmt.Errorf("service: bad timeout %q", v)
		}
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	opts.Ctx = ctx
	return opts, cancel, nil
}

// handleQuery executes a one-shot query and streams matches as NDJSON
// envelopes, ending with {"eof":true}. The request context (plus the
// optional ?timeout=) propagates into the executor via QueryOpts.Ctx,
// so a gone client cancels the worker pool instead of scanning on.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("tenant"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := r.URL.Query().Get("q")
	expr, _, err := metadata.ParseFollow(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("service: %v", err))
		return
	}
	opts, cancel, err := parseQueryOpts(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()
	repo, err := t.acquire(r.Context(), s)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.release(s.cfg.now())
	it, err := repo.QueryExprIter(expr, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("service: %v", err))
		return
	}
	defer it.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		wr := ToWire(rec)
		if err := enc.Encode(Envelope{Record: &wr}); err != nil {
			return // client gone
		}
	}
	if err := it.Err(); err != nil {
		enc.Encode(Envelope{Error: err.Error(), Code: CodeInternal})
		return
	}
	enc.Encode(Envelope{EOF: true})
}

// handleFollow upgrades to a live NDJSON stream over Repository.Tail:
// history first, then matching appends as they land, one envelope per
// line, flushed per record. The stream ends with a terminal envelope —
// "lagging" (overflow under DropLagging, or spill quota exhausted
// under SpillToDisk), "draining" (server shutdown), "closed"
// (repository closed) — or silently when the client goes away.
func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("tenant"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	expr, _, err := metadata.ParseFollow(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("service: %v", err))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "service: streaming unsupported")
		return
	}
	if !t.reserveFollower(s.cfg.MaxFollowers) {
		retryAfter(w, time.Second)
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("service: tenant follower limit (%d) reached", s.cfg.MaxFollowers))
		return
	}
	defer t.releaseFollower()
	repo, err := t.acquire(r.Context(), s)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.release(s.cfg.now())

	topts := metadata.TailOpts{Buffer: s.cfg.FollowBuffer}
	if s.cfg.Backpressure == SpillToDisk {
		spill, err := newDiskSpill(s.cfg.Root, func(delta int64) error {
			return t.chargeSpill(delta, s.cfg.MaxDiskBytes)
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		defer spill.Close()
		topts.Overflow = spill
	}
	cur, err := repo.Tail(expr, topts)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("service: %v", err))
		return
	}
	defer cur.Close()

	// The stream is up: hand the admission slot back (long-lived
	// followers are bounded by MaxFollowers) and watch both the client
	// and the drain signal.
	if tok, ok := r.Context().Value(admissionKey{}).(*admissionToken); ok {
		tok.release()
	}
	// Drain terminates the follower via the cursor's own kill contract:
	// Kill(ErrDraining) lets Next deliver everything already queued,
	// then surface the drain sentinel — deterministic, unlike cancelling
	// the context (which races against queued records in Next's select).
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.drainCh:
			cur.Kill(ErrDraining)
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	for {
		rec, err := cur.Next(ctx)
		if err != nil {
			enc.Encode(Envelope{Error: err.Error(), Code: followCode(err)})
			flusher.Flush()
			return
		}
		wr := ToWire(rec)
		if err := enc.Encode(Envelope{Record: &wr}); err != nil {
			return // client gone
		}
		flusher.Flush()
	}
}

// followCode maps a terminal cursor error to its envelope code.
func followCode(err error) string {
	switch {
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, metadata.ErrLagging):
		return CodeLagging
	case errors.Is(err, metadata.ErrTailEnded):
		return CodeEnded
	case errors.Is(err, metadata.ErrClosed):
		return CodeClosed
	default:
		return CodeInternal
	}
}

// handleStats reports one tenant's status (repository statistics,
// health, quota state).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("tenant"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Pin the repo so Records/DiskBytes/Health are populated even if
	// the tenant was idle-closed.
	if _, err := t.acquire(r.Context(), s); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.release(s.cfg.now())
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(t.status())
}

// handleHealthz is the liveness+honesty probe: always 200 while the
// process serves, with a body that reports per-tenant degradation
// (service-level read-only, repository Health) truthfully.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rep := HealthReport{Status: "ok"}
	if s.draining.Load() {
		rep.Status = "draining"
	}
	for _, t := range s.tenantList() {
		st := t.status()
		rep.Tenants = append(rep.Tenants, st)
		if rep.Status == "ok" && (st.ReadOnlyDegraded || (st.Health != nil && st.Health.Degraded)) {
			rep.Status = "degraded"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// handleReadyz is the load-balancer probe: 503 once draining starts so
// traffic moves away while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ready\"}\n"))
}
