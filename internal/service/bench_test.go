package service_test

import (
	"context"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/dievent/client"
	"repro/internal/service"
)

// benchServer stands up a dieventd service over httptest with quotas
// opened wide — the benchmarks measure the ingest/query path, not the
// admission limiter.
func benchServer(b *testing.B) (*service.Server, string) {
	b.Helper()
	svc, err := service.New(service.Config{
		Root:        b.TempDir(),
		MaxInflight: 1024,
		AppendRate:  1 << 30,
		AppendBurst: 1 << 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(svc)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			b.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	return svc, hs.URL
}

func benchClient(b *testing.B, base, tenant string) *client.Client {
	b.Helper()
	c, err := client.New(client.Config{Base: base, Tenant: tenant, MaxRetries: 2, Backoff: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkServiceAppend measures sustained ingest throughput through
// the whole stack — HTTP, admission, quota, wire decode, AppendBatch —
// reporting the headline appends/s (records per second, not batches).
func BenchmarkServiceAppend(b *testing.B) {
	_, base := benchServer(b)
	c := benchClient(b, base, "bench")
	ctx := context.Background()
	const batchSize = 500
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := c.Append(ctx, batch(i*batchSize, (i+1)*batchSize, "bench")); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*batchSize/elapsed.Seconds(), "appends/s")
	}
}

// BenchmarkServiceQueryUnderLoad measures query latency while four
// ingest clients append continuously to the same tenant — the paper's
// "query the event while it is still being recorded" shape — and
// reports the p50/p99 of the individual query round-trips.
func BenchmarkServiceQueryUnderLoad(b *testing.B) {
	_, base := benchServer(b)
	ctx := context.Background()

	// Seed enough history that queries do real scan work.
	seed := benchClient(b, base, "bench")
	const seeded = 20_000
	for lo := 0; lo < seeded; lo += 500 {
		if err := seed.Append(ctx, batch(lo, lo+500, "bench")); err != nil {
			b.Fatal(err)
		}
	}

	// Concurrent ingest load for the duration of the measurement.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := benchClient(b, base, "bench")
			for lo := seeded + w*10_000_000; ; lo += 250 {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.Append(ctx, batch(lo, lo+250, "load")); err != nil {
					return // drain/teardown race; the queries are the measurement
				}
			}
		}(w)
	}

	c := benchClient(b, base, "bench")
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := c.Query(ctx, "label = 'bench' AND value >= 100", client.QueryOpts{Limit: 50}); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
	}
}
