package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"regexp"
	"sync"
	"syscall"
	"time"

	"repro/internal/metadata"
)

// tokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens refilled at `rate` tokens/second. take never blocks — on
// refusal it reports how long the caller should wait, which the HTTP
// layer forwards as Retry-After.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take attempts to remove n tokens. On refusal it returns the duration
// after which n tokens will have accumulated (never zero).
func (b *tokenBucket) take(n float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt.Seconds()*b.rate)
		b.last = now
	}
	if n <= b.tokens {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	wait := time.Duration(need / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return false, wait
}

// tenantNameRe is the allowed tenant-name shape: it doubles as path
// sanitisation (no separators, no dots, no traversal) because the name
// becomes a directory under the service root.
var tenantNameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// errBadTenant rejects names that could escape the service root.
var errBadTenant = errors.New("service: invalid tenant name")

// tenant is the server-side state of one isolated repository. The repo
// handle comes and goes (idle tenants close it to release the writer
// lease for out-of-band WithReadOnly tools) while the quota and
// degradation state persist for the server's lifetime.
type tenant struct {
	name string
	dir  string

	mu   sync.Mutex
	repo *metadata.Repository // nil when idle-closed
	refs int                  // in-flight requests holding the repo open
	last time.Time            // end of the most recent request

	bucket    *tokenBucket
	followers int   // open FOLLOW streams
	spill     int64 // bytes of live follower spill on disk

	// degraded flips the tenant to service-level read-only: appends are
	// refused with 507 while queries and follows continue. Set on disk
	// quota breach or an ENOSPC append failure; reset by Reopen-style
	// administrative action only (conservative: space reappearing is
	// not observable without retrying the write).
	degraded bool
	// degradedWhy records the trigger for healthz.
	degradedWhy string
}

// acquire opens (or re-opens) the tenant's repository and pins it for
// the duration of a request. Callers must release. The open waits on
// the directory lease so a transient out-of-band reader (WithReadOnly
// holds a shared lease) delays rather than fails the request.
func (t *tenant) acquire(ctx context.Context, s *Server) (*metadata.Repository, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.repo == nil {
		opts := append([]metadata.Option{}, s.cfg.RepoOpts...)
		if s.cfg.FS != nil {
			opts = append(opts, metadata.WithFS(s.cfg.FS))
		}
		opts = append(opts, metadata.WithLockWait(ctx, s.cfg.LockWait))
		repo, err := metadata.Open(t.dir, opts...)
		if err != nil {
			return nil, fmt.Errorf("service: opening tenant %s: %w", t.name, err)
		}
		t.repo = repo
	}
	t.refs++
	return t.repo, nil
}

// release unpins the repository and stamps the idle clock.
func (t *tenant) release(now time.Time) {
	t.mu.Lock()
	t.refs--
	t.last = now
	t.mu.Unlock()
}

// closeIfIdle closes the repository when unreferenced and idle longer
// than maxIdle, releasing the writer lease so out-of-band tools can
// take a read-only lease. Reports whether the repo is now closed.
func (t *tenant) closeIfIdle(now time.Time, maxIdle time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.repo == nil {
		return true
	}
	if t.refs > 0 || now.Sub(t.last) < maxIdle {
		return false
	}
	t.repo.Close()
	t.repo = nil
	return true
}

// shutdown closes the repository unconditionally (drain path). Safe to
// call with requests already drained.
func (t *tenant) shutdown() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.repo == nil {
		return nil
	}
	err := t.repo.Close()
	t.repo = nil
	return err
}

// degrade flips the tenant read-only with a reason (first one wins).
func (t *tenant) degrade(why string) {
	t.mu.Lock()
	if !t.degraded {
		t.degraded = true
		t.degradedWhy = why
	}
	t.mu.Unlock()
}

// isDegraded reports the service-level read-only state.
func (t *tenant) isDegraded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.degraded
}

// reserveFollower claims a follower slot against the per-tenant cap.
func (t *tenant) reserveFollower(max int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max > 0 && t.followers >= max {
		return false
	}
	t.followers++
	return true
}

// releaseFollower returns a follower slot.
func (t *tenant) releaseFollower() {
	t.mu.Lock()
	t.followers--
	t.mu.Unlock()
}

// chargeSpill is the disk-spill accounting hook handed to SpillToDisk
// followers: delta > 0 reserves bytes against the tenant's disk quota
// (shared with the repository's own segments), delta < 0 returns them.
// Over-quota reservations fail with an ErrLagging-chained error so the
// follower terminates with the documented overflow semantics.
func (t *tenant) chargeSpill(delta int64, quota int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if delta > 0 && quota > 0 && t.spill+delta > quota {
		return fmt.Errorf("service: tenant %s spill quota (%d bytes) exhausted: %w",
			t.name, quota, metadata.ErrLagging)
	}
	t.spill += delta
	if t.spill < 0 {
		t.spill = 0
	}
	return nil
}

// status snapshots the tenant for healthz/stats. Repository statistics
// are read only when the repo is open — status never forces an open.
func (t *tenant) status() TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStatus{
		Tenant:           t.name,
		Open:             t.repo != nil,
		ReadOnlyDegraded: t.degraded,
		SpillBytes:       t.spill,
		Followers:        t.followers,
	}
	if t.repo != nil {
		if rs, err := t.repo.Stats(); err == nil {
			st.Records = rs.Records
			st.DiskBytes = rs.DiskBytes
		}
		if h, err := t.repo.Health(); err == nil {
			st.Health = &h
		}
	}
	return st
}

// isNoSpace reports an ENOSPC-chained error (vfs.ErrNoSpace is
// syscall.ENOSPC; FaultFS injects exactly that).
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}
