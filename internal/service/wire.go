// Package service implements dieventd: a long-running multi-tenant
// ingest/query HTTP server over the metadata repository (DESIGN.md §11).
// Each tenant is an isolated repository under the service root; the
// server holds the writer lease, applies admission control and
// per-tenant quotas, streams queries and FOLLOW subscriptions, and
// drains gracefully on shutdown.
package service

import (
	"fmt"
	"time"

	"repro/internal/metadata"
)

// WireRecord is the JSON shape of a metadata.Record on the HTTP API.
// Frame-axis and participant fields are pointers so "absent" (→ the
// repository's -1 convention) is distinguishable from an explicit 0.
type WireRecord struct {
	ID       uint64            `json:"id,omitempty"`
	Kind     string            `json:"kind"`
	Frame    *int              `json:"frame,omitempty"`
	FrameEnd *int              `json:"frame_end,omitempty"`
	TimeUS   int64             `json:"time_us,omitempty"`
	Person   *int              `json:"person,omitempty"`
	Other    *int              `json:"other,omitempty"`
	Label    string            `json:"label"`
	Value    float64           `json:"value,omitempty"`
	Tags     map[string]string `json:"tags,omitempty"`
}

// ToWire converts a repository record to its wire shape.
func ToWire(rec metadata.Record) WireRecord {
	w := WireRecord{
		ID:     rec.ID,
		Kind:   rec.Kind.String(),
		TimeUS: rec.Time.Microseconds(),
		Label:  rec.Label,
		Value:  rec.Value,
		Tags:   rec.Tags,
	}
	if rec.Frame >= 0 {
		f := rec.Frame
		w.Frame = &f
	}
	if rec.FrameEnd >= 0 {
		fe := rec.FrameEnd
		w.FrameEnd = &fe
	}
	if rec.Person >= 0 {
		p := rec.Person
		w.Person = &p
	}
	if rec.Other >= 0 {
		o := rec.Other
		w.Other = &o
	}
	return w
}

// FromWire converts a wire record to the repository's shape. The ID is
// ignored — the repository assigns it. Validation is left to
// Record.Validate on the append path.
func FromWire(w WireRecord) (metadata.Record, error) {
	kind, err := metadata.ParseKind(w.Kind)
	if err != nil {
		return metadata.Record{}, fmt.Errorf("service: record kind: %w", err)
	}
	rec := metadata.Record{
		Kind:     kind,
		Frame:    -1,
		FrameEnd: -1,
		Time:     time.Duration(w.TimeUS) * time.Microsecond,
		Person:   -1,
		Other:    -1,
		Label:    w.Label,
		Value:    w.Value,
		Tags:     w.Tags,
	}
	if w.Frame != nil {
		rec.Frame = *w.Frame
		if w.FrameEnd == nil {
			rec.FrameEnd = rec.Frame + 1
		}
	}
	if w.FrameEnd != nil {
		rec.FrameEnd = *w.FrameEnd
	}
	if w.Person != nil {
		rec.Person = *w.Person
	}
	if w.Other != nil {
		rec.Other = *w.Other
	}
	return rec, nil
}

// Envelope is one NDJSON line on a streaming response (query or
// follow): either a record or a terminal error. Code distinguishes the
// documented terminal reasons so clients can map them back to
// sentinels without string matching.
type Envelope struct {
	Record *WireRecord `json:"record,omitempty"`
	// Error is the human-readable terminal reason; the envelope
	// carrying it is the last line of the stream.
	Error string `json:"error,omitempty"`
	// Code classifies terminal errors: "lagging" (follower overflow),
	// "draining" (server shutdown), "ended" (read-only tail exhausted),
	// "closed" (repository closed), "internal".
	Code string `json:"code,omitempty"`
	// EOF marks the clean end of a bounded stream (one-shot query).
	EOF bool `json:"eof,omitempty"`
}

// Terminal-error codes on streaming envelopes.
const (
	CodeLagging  = "lagging"
	CodeDraining = "draining"
	CodeEnded    = "ended"
	CodeClosed   = "closed"
	CodeInternal = "internal"
)

// TenantStatus is one tenant's entry in /healthz and /v1/.../stats.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	// Open reports whether the server currently holds the tenant's
	// repository open (idle tenants are closed to release the writer
	// lease for out-of-band read-only tools).
	Open bool `json:"open"`
	// ReadOnlyDegraded reports the service-level degradation: the
	// tenant exceeded its disk quota or hit ENOSPC and now rejects
	// appends (507) while continuing to serve reads.
	ReadOnlyDegraded bool `json:"read_only_degraded,omitempty"`
	// Records and DiskBytes mirror Repository.Stats.
	Records   int   `json:"records"`
	DiskBytes int64 `json:"disk_bytes"`
	// SpillBytes is the tenant's current follower-spill disk usage.
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// Followers is the number of open FOLLOW streams.
	Followers int `json:"followers"`
	// Health is the repository's own degradation report.
	Health *metadata.Health `json:"health,omitempty"`
}

// HealthReport is the /healthz body.
type HealthReport struct {
	// Status is "ok", "degraded", or "draining".
	Status  string         `json:"status"`
	Tenants []TenantStatus `json:"tenants,omitempty"`
}
