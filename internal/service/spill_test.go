package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metadata"
)

func spillRecord(i int) metadata.Record {
	return metadata.Record{
		Kind:     metadata.KindObservation,
		Frame:    i,
		FrameEnd: i + 1,
		Time:     time.Duration(i) * time.Millisecond,
		Person:   i % 4,
		Other:    -1,
		Label:    "hit",
		Value:    float64(i),
		Tags:     map[string]string{"pad": strings.Repeat("x", 64)},
	}
}

// TestDiskSpillOrderAndReclaim pushes enough frames through a
// diskSpill to force multiple chunk flushes and refills, then drains
// and checks order, quota return, and file reclamation.
func TestDiskSpillOrderAndReclaim(t *testing.T) {
	var mu sync.Mutex
	var charged int64
	d, err := newDiskSpill(t.TempDir(), func(delta int64) error {
		mu.Lock()
		charged += delta
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const total = 20000 // ~150B/frame ≫ spillChunk, forces file traffic
	for i := 0; i < total; i++ {
		rec := spillRecord(i)
		rec.ID = uint64(i + 1)
		if err := d.Divert(rec); err != nil {
			t.Fatalf("Divert(%d): %v", i, err)
		}
	}
	if d.wOff == 0 {
		t.Fatal("no chunk ever reached the file; chunking is broken or the test is too small")
	}
	for i := 0; i < total; i++ {
		rec, ok, err := d.TryNext()
		if err != nil {
			t.Fatalf("TryNext(%d): %v", i, err)
		}
		if !ok {
			t.Fatalf("TryNext(%d): empty with %d frames outstanding", i, total-i)
		}
		if rec.Frame != i || rec.ID != uint64(i+1) {
			t.Fatalf("frame %d id %d, want frame %d id %d (order broken)", rec.Frame, rec.ID, i, i+1)
		}
	}
	if _, ok, err := d.TryNext(); ok || err != nil {
		t.Fatalf("TryNext after drain = (ok=%v, err=%v), want empty", ok, err)
	}
	mu.Lock()
	left := charged
	mu.Unlock()
	if left != 0 {
		t.Fatalf("quota charge after full drain = %d, want 0", left)
	}
	if d.wOff != 0 {
		t.Fatalf("file not reclaimed after catch-up: wOff=%d", d.wOff)
	}
}

// TestDiskSpillInterleaved alternates producer and consumer so frames
// cross the file/pending seam in every combination.
func TestDiskSpillInterleaved(t *testing.T) {
	d, err := newDiskSpill(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	next := 0 // next frame to divert
	want := 0 // next frame expected out
	for round := 0; round < 200; round++ {
		for i := 0; i < 37; i++ {
			rec := spillRecord(next)
			if err := d.Divert(rec); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for i := 0; i < 23; i++ {
			rec, ok, err := d.TryNext()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("round %d: empty with %d outstanding", round, next-want)
			}
			if rec.Frame != want {
				t.Fatalf("round %d: frame %d, want %d", round, rec.Frame, want)
			}
			want++
		}
	}
	for want < next {
		rec, ok, err := d.TryNext()
		if err != nil || !ok {
			t.Fatalf("final drain at %d: ok=%v err=%v", want, ok, err)
		}
		if rec.Frame != want {
			t.Fatalf("final drain: frame %d, want %d", rec.Frame, want)
		}
		want++
	}
}

// TestDiskSpillQuota: a charge-hook refusal propagates out of Divert
// so the subscription terminates with the tenant's quota error.
func TestDiskSpillQuota(t *testing.T) {
	var used int64
	limit := int64(1024)
	d, err := newDiskSpill(t.TempDir(), func(delta int64) error {
		if delta > 0 && used+delta > limit {
			return fmt.Errorf("quota: %w", metadata.ErrLagging)
		}
		used += delta
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var derr error
	n := 0
	for i := 0; i < 100; i++ {
		if derr = d.Divert(spillRecord(i)); derr != nil {
			break
		}
		n++
	}
	if derr == nil {
		t.Fatal("quota never enforced")
	}
	if !errors.Is(derr, metadata.ErrLagging) {
		t.Fatalf("Divert over quota = %v, want ErrLagging chain", derr)
	}
	// Already-accepted frames still drain in order.
	for i := 0; i < n; i++ {
		rec, ok, err := d.TryNext()
		if err != nil || !ok || rec.Frame != i {
			t.Fatalf("drain %d: (%d, %v, %v)", i, rec.Frame, ok, err)
		}
	}
}

// TestDiskSpillCloseReturnsQuota: closing with frames outstanding
// returns the whole charge.
func TestDiskSpillCloseReturnsQuota(t *testing.T) {
	var used int64
	d, err := newDiskSpill(t.TempDir(), func(delta int64) error {
		used += delta
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Divert(spillRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if used == 0 {
		t.Fatal("nothing charged")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Fatalf("charge after Close = %d, want 0", used)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

// TestTokenBucket pins the refill/refusal arithmetic.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 5) // 10 tokens/s, burst 5
	now := time.Unix(1000, 0)
	if ok, _ := b.take(5, now); !ok {
		t.Fatal("burst refused")
	}
	ok, wait := b.take(1, now)
	if ok {
		t.Fatal("empty bucket granted")
	}
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("wait = %v, want ~100ms for 1 token at 10/s", wait)
	}
	// After the advertised wait, the token is there.
	if ok, _ := b.take(1, now.Add(wait)); !ok {
		t.Fatal("token absent after advertised wait")
	}
	// Refill caps at burst.
	if ok, _ := b.take(5, now.Add(time.Hour)); !ok {
		t.Fatal("burst absent after long idle")
	}
	if ok, _ := b.take(1, now.Add(time.Hour)); ok {
		t.Fatal("bucket exceeded burst cap")
	}
}

// TestAdmission pins the bounded in-flight gate.
func TestAdmission(t *testing.T) {
	s, err := New(Config{Root: t.TempDir(), MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.admit() || !s.admit() {
		t.Fatal("slots refused below the bound")
	}
	if s.admit() {
		t.Fatal("admitted past MaxInflight")
	}
	s.unadmit()
	if !s.admit() {
		t.Fatal("slot not returned")
	}
}

// TestTenantNameValidation: names are path components; anything that
// could traverse is refused.
func TestTenantNameValidation(t *testing.T) {
	s, err := New(Config{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "a/b", "a\\b", ".hidden", "UPPER", strings.Repeat("a", 65)} {
		if _, err := s.tenant(bad); !errors.Is(err, errBadTenant) {
			t.Fatalf("tenant(%q) = %v, want errBadTenant", bad, err)
		}
	}
	for _, good := range []string{"a", "rig-07", "cam_3", "0abc"} {
		if _, err := s.tenant(good); err != nil {
			t.Fatalf("tenant(%q) = %v", good, err)
		}
	}
}
